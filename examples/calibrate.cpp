// Developer tool: prints exact-result counts of the canned queries at
// several manual relaxation fractions, to verify each query plays its
// intended role (SEL: empty -> selective; LOS: empty -> avalanche).
// Not part of the benchmark suite.

#include <cstdio>
#include <cstdlib>

#include "core/refiner.h"
#include "data/grid_synthetic.h"
#include "data/queries.h"

int main(int argc, char** argv) {
  using namespace dqr;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : (1 << 20);

  auto synth = data::MakeSyntheticDataset(n, 42).value();
  auto wave = data::MakeWaveformDataset(n, 1234).value();

  const data::QueryKind kinds[] = {
      data::QueryKind::kSSel, data::QueryKind::kSLos,
      data::QueryKind::kMSel, data::QueryKind::kMLos,
      data::QueryKind::kMSelPrime};
  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  for (const auto kind : kinds) {
    const data::DatasetBundle& bundle =
        (kind == data::QueryKind::kSSel || kind == data::QueryKind::kSLos)
            ? synth
            : wave;
    std::printf("%-7s:", data::QueryKindName(kind));
    for (const double f : fractions) {
      data::QueryTuning tuning;
      tuning.relax_fraction = f;
      searchlight::QuerySpec query = data::MakeQuery(bundle, kind, tuning);
      core::RefineOptions options;
      options.enable = false;  // plain search, count all exact results
      options.time_budget_s = 10.0;
      auto run = core::ExecuteQuery(query, options).value();
      std::printf("  f=%.2f:%8zu%s (%.2fs)", f, run.results.size(),
                  run.stats.completed ? "" : "+", run.stats.total_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // 2-D canned queries.
  auto grid = data::MakeGridDataset(1 << 10, n >> 10, 42).value();
  for (const bool selective : {true, false}) {
    std::printf("%-7s:", selective ? "G-SEL" : "G-LOS");
    for (const double f : fractions) {
      data::GridQueryTuning tuning;
      tuning.selective = selective;
      tuning.relax_fraction = f;
      const auto query = data::MakeGridQuery(grid, tuning);
      core::RefineOptions options;
      options.enable = false;
      options.time_budget_s = 10.0;
      auto run = core::ExecuteQuery(query, options).value();
      std::printf("  f=%.2f:%8zu%s (%.2fs)", f, run.results.size(),
                  run.stats.completed ? "" : "+", run.stats.total_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
