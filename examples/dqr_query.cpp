// dqr_query: command-line front end for the canned exploration queries.
// Generates (or loads) a data set, runs one query with the chosen
// refinement configuration, and prints results as they are confirmed.
//
// Usage:
//   dqr_query [--dataset=synthetic|waveform] [--kind=S-SEL|S-LOS|M-SEL|
//             M-LOS|M-SEL'] [--n=2097152] [--k=10] [--seed=42]
//             [--relax-fraction=0.0] [--mode=auto|plain]
//             [--constrain=rank|skyline|none] [--instances=4]
//             [--speculative] [--stream] [--time-budget=0]
//             [--query-file=path.query]
//             [--save=path.bin] [--load=path.bin]
//
// Examples:
//   dqr_query --kind=M-SEL --k=10                # auto relaxation
//   dqr_query --kind=M-LOS --relax-fraction=1 --constrain=skyline
//   dqr_query --dataset=waveform --save=abp.bin  # persist the data set

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "array/io.h"
#include "core/refiner.h"
#include "data/queries.h"
#include "data/query_parser.h"
#include "synopsis/synopsis.h"

using namespace dqr;

namespace {

struct Args {
  std::string dataset = "waveform";
  std::string kind = "M-SEL";
  std::string mode = "auto";
  std::string constrain = "rank";
  std::string save_path;
  std::string load_path;
  std::string query_file;  // overrides --kind with a parsed query file
  int64_t n = 1 << 21;
  int64_t k = 10;
  uint64_t seed = 42;
  double relax_fraction = 0.0;
  double time_budget = 0.0;
  int instances = 4;
  bool speculative = false;
  bool stream = false;
};

bool ParseArg(const char* arg, Args* out) {
  const auto match = [&](const char* name, std::string* value) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    return false;
  };
  std::string v;
  if (match("--dataset", &out->dataset)) return true;
  if (match("--kind", &out->kind)) return true;
  if (match("--mode", &out->mode)) return true;
  if (match("--constrain", &out->constrain)) return true;
  if (match("--save", &out->save_path)) return true;
  if (match("--load", &out->load_path)) return true;
  if (match("--query-file", &out->query_file)) return true;
  if (match("--n", &v)) return (out->n = std::atoll(v.c_str())) > 0;
  if (match("--k", &v)) return (out->k = std::atoll(v.c_str())) >= 0;
  if (match("--seed", &v)) {
    out->seed = std::strtoull(v.c_str(), nullptr, 10);
    return true;
  }
  if (match("--relax-fraction", &v)) {
    out->relax_fraction = std::atof(v.c_str());
    return out->relax_fraction >= 0.0 && out->relax_fraction <= 1.0;
  }
  if (match("--time-budget", &v)) {
    out->time_budget = std::atof(v.c_str());
    return out->time_budget >= 0.0;
  }
  if (match("--instances", &v)) {
    out->instances = std::atoi(v.c_str());
    return out->instances >= 1;
  }
  if (std::strcmp(arg, "--speculative") == 0) {
    out->speculative = true;
    return true;
  }
  if (std::strcmp(arg, "--stream") == 0) {
    out->stream = true;
    return true;
  }
  return false;
}

data::QueryKind KindFromName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "S-SEL") return data::QueryKind::kSSel;
  if (name == "S-LOS") return data::QueryKind::kSLos;
  if (name == "M-SEL") return data::QueryKind::kMSel;
  if (name == "M-LOS") return data::QueryKind::kMLos;
  if (name == "M-SEL'") return data::QueryKind::kMSelPrime;
  *ok = false;
  return data::QueryKind::kMSel;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], &args)) {
      std::fprintf(stderr, "bad argument: %s (see file header for usage)\n",
                   argv[i]);
      return 2;
    }
  }

  // Data set: load from disk or generate.
  data::DatasetBundle bundle;
  if (!args.load_path.empty()) {
    auto array = array::LoadArray(args.load_path);
    if (!array.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   array.status().ToString().c_str());
      return 1;
    }
    bundle.array = std::move(array).value();
    auto synopsis = synopsis::Synopsis::Build(*bundle.array,
                                              synopsis::SynopsisOptions{});
    if (!synopsis.ok()) {
      std::fprintf(stderr, "synopsis: %s\n",
                   synopsis.status().ToString().c_str());
      return 1;
    }
    bundle.synopsis = std::move(synopsis).value();
    bundle.array->ResetAccessStats();
  } else {
    auto result = args.dataset == "synthetic"
                      ? data::MakeSyntheticDataset(args.n, args.seed)
                      : data::MakeWaveformDataset(args.n, args.seed);
    if (!result.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    bundle = std::move(result).value();
  }
  if (!args.save_path.empty()) {
    if (Status s = array::SaveArray(*bundle.array, args.save_path);
        !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved %lld cells to %s\n",
                static_cast<long long>(bundle.array->length()),
                args.save_path.c_str());
  }

  searchlight::QuerySpec query;
  if (!args.query_file.empty()) {
    auto parsed = data::ParseQueryFile(args.query_file, bundle);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query file: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    query = std::move(parsed).value();
  } else {
    bool kind_ok = false;
    const data::QueryKind kind = KindFromName(args.kind, &kind_ok);
    if (!kind_ok) {
      std::fprintf(stderr, "unknown query kind: %s\n", args.kind.c_str());
      return 2;
    }
    data::QueryTuning tuning;
    tuning.k = args.k;
    tuning.relax_fraction = args.relax_fraction;
    query = data::MakeQuery(bundle, kind, tuning);
  }

  core::RefineOptions options;
  options.enable = args.mode != "plain";
  options.num_instances = args.instances;
  options.speculative = args.speculative;
  options.time_budget_s = args.time_budget;
  if (args.constrain == "skyline") {
    options.constrain = core::ConstrainMode::kSkyline;
  } else if (args.constrain == "none") {
    options.constrain = core::ConstrainMode::kNone;
  }
  std::mutex stream_mu;
  if (args.stream) {
    options.on_result = [&stream_mu](const core::Solution& s) {
      std::lock_guard<std::mutex> lock(stream_mu);
      std::printf("  confirmed: %s\n", s.ToString().c_str());
    };
  }

  auto run = core::ExecuteQuery(query, options);
  if (!run.ok()) {
    std::fprintf(stderr, "query: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const core::RunResult& result = run.value();

  std::printf("\n%s over %lld cells (%s mode, %d instances)%s\n",
              query.name.c_str(),
              static_cast<long long>(bundle.array->length()),
              options.enable ? "auto-refine" : "plain", args.instances,
              result.stats.completed ? "" : "  [TIMED OUT]");
  std::printf("results: %zu  (exact %lld, relaxed accepted %lld)\n",
              result.results.size(),
              static_cast<long long>(result.stats.exact_results),
              static_cast<long long>(result.stats.relaxed_accepted));
  std::printf("time: %.2fs total, %.2fs to first result\n",
              result.stats.total_s, result.stats.first_result_s);
  std::printf("search: %lld nodes, %lld fails (%lld recorded, %lld "
              "replayed); %lld candidates, %lld validated\n",
              static_cast<long long>(result.stats.main_search.nodes +
                                     result.stats.replay_search.nodes),
              static_cast<long long>(result.stats.main_search.fails),
              static_cast<long long>(result.stats.fails_recorded),
              static_cast<long long>(result.stats.replays),
              static_cast<long long>(result.stats.candidates),
              static_cast<long long>(result.stats.validated));
  const size_t show = std::min<size_t>(result.results.size(), 20);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %2zu. %s\n", i + 1, result.results[i].ToString().c_str());
  }
  if (show < result.results.size()) {
    std::printf("  ... and %zu more\n", result.results.size() - show);
  }
  return 0;
}
