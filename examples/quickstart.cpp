// Quickstart: build a small data set, run an over-constrained search
// query, and let the dynamic refinement framework relax it automatically
// to the requested cardinality.
//
//   $ ./quickstart
//
// The query is the paper's running MIMIC example: find 8-16 cell intervals
// whose average amplitude lies in [150, 200] and whose maximum exceeds the
// maxima of both 8-cell neighborhoods by at least a threshold.

#include <cstdio>

#include "core/refiner.h"
#include "data/queries.h"

int main() {
  using namespace dqr;

  // 1. Data: a deterministic ABP-like waveform plus its synopsis.
  auto bundle_result = data::MakeWaveformDataset(1 << 18, /*seed=*/7);
  if (!bundle_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 bundle_result.status().ToString().c_str());
    return 1;
  }
  const data::DatasetBundle bundle = std::move(bundle_result).value();

  // 2. Query: the canned M-SEL query, k = 10 results wanted.
  data::QueryTuning tuning;
  tuning.k = 10;
  searchlight::QuerySpec query =
      data::MakeQuery(bundle, data::QueryKind::kMSel, tuning);

  // 3. Execute with automatic refinement (paper defaults).
  core::RefineOptions options;
  auto run_result = core::ExecuteQuery(query, options);
  if (!run_result.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 run_result.status().ToString().c_str());
    return 1;
  }
  const core::RunResult& run = run_result.value();

  std::printf("query %s: %zu results (exact=%lld, relaxed accepted=%lld)\n",
              query.name.c_str(), run.results.size(),
              static_cast<long long>(run.stats.exact_results),
              static_cast<long long>(run.stats.relaxed_accepted));
  std::printf(
      "time %.3fs (first result %.3fs), main nodes=%lld fails=%lld "
      "recorded=%lld replays=%lld candidates=%lld validated=%lld\n",
      run.stats.total_s, run.stats.first_result_s,
      static_cast<long long>(run.stats.main_search.nodes),
      static_cast<long long>(run.stats.main_search.fails),
      static_cast<long long>(run.stats.fails_recorded),
      static_cast<long long>(run.stats.replays),
      static_cast<long long>(run.stats.candidates),
      static_cast<long long>(run.stats.validated));
  for (const core::Solution& s : run.results) {
    std::printf("  x=%lld len=%lld  avg=%.1f contrastL=%.1f contrastR=%.1f"
                "  RP=%.3f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]), s.values[0],
                s.values[1], s.values[2], s.rp);
  }
  return 0;
}
