// Skyline constraining (§3.2): instead of collapsing multiple criteria
// into one scalar rank, return every non-dominated result. Here an
// analyst wants waveform events that are simultaneously high-amplitude
// and high-contrast; the skyline shows the whole trade-off frontier.
//
//   $ ./skyline_frontier [length]

#include <cstdio>
#include <cstdlib>

#include "core/refiner.h"
#include "data/queries.h"

using namespace dqr;

int main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : (1 << 19);

  auto bundle = data::MakeWaveformDataset(n, 1234).value();

  // A loose query (many exact results) so constraining has work to do.
  data::QueryTuning tuning;
  tuning.k = 10;
  tuning.relax_fraction = 1.0;
  searchlight::QuerySpec query =
      data::MakeQuery(bundle, data::QueryKind::kMLos, tuning);

  // Scalar top-k for comparison.
  core::RefineOptions rank_opts;
  rank_opts.constrain = core::ConstrainMode::kRank;
  auto ranked = core::ExecuteQuery(query, rank_opts).value();

  // The skyline of (avg, contrastL, contrastR), all maximized.
  core::RefineOptions sky_opts;
  sky_opts.constrain = core::ConstrainMode::kSkyline;
  auto skyline = core::ExecuteQuery(query, sky_opts).value();

  std::printf("scalar top-%zu (RK-ranked):\n", ranked.results.size());
  for (const core::Solution& s : ranked.results) {
    std::printf("  x=%-9lld len=%-3lld avg=%-7.1f cL=%-6.1f cR=%-6.1f "
                "RK=%.3f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]), s.values[0],
                s.values[1], s.values[2], s.rk);
  }

  std::printf("\nskyline (%zu non-dominated results; may exceed k):\n",
              skyline.results.size());
  for (const core::Solution& s : skyline.results) {
    std::printf("  x=%-9lld len=%-3lld avg=%-7.1f cL=%-6.1f cR=%-6.1f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]), s.values[0],
                s.values[1], s.values[2]);
  }
  std::printf(
      "\nconstraining pruned the search: rank run visited %lld nodes "
      "(%lld dynamic prunes), skyline run %lld nodes (%lld prunes)\n",
      static_cast<long long>(ranked.stats.main_search.nodes),
      static_cast<long long>(ranked.stats.main_search.monitor_prunes),
      static_cast<long long>(skyline.stats.main_search.nodes),
      static_cast<long long>(skyline.stats.main_search.monitor_prunes));
  return 0;
}
