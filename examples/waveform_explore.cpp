// The paper's introduction scenario (Figure 1), end to end: a researcher
// studies ABP (arterial blood pressure) waveform data and wants intervals
// of 8-16 seconds whose average amplitude lies in [150, 200] and whose
// maximum exceeds both 8-second neighborhoods' maxima by at least 80.
//
// Instead of hand-tuning bounds across repeated runs, the query is
// submitted once with a target cardinality; the engine relaxes or
// constrains it automatically.
//
//   $ ./waveform_explore [length] [k]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/refiner.h"
#include "data/waveform.h"
#include "searchlight/functions.h"
#include "synopsis/synopsis.h"

using namespace dqr;

namespace {

// Builds the intro query against the waveform: variables (x, lx),
// constraints c1 = avg in [150, 200], c2/c3 = contrast >= 80.
searchlight::QuerySpec BuildIntroQuery(
    std::shared_ptr<array::Array> array,
    std::shared_ptr<const synopsis::Synopsis> synopsis, int64_t k) {
  searchlight::QuerySpec query;
  query.name = "abp_intervals";
  query.k = k;
  const int64_t n = array->length();
  query.domains = {cp::IntDomain(8, n - 16 - 9),  // start anywhere
                   cp::IntDomain(8, 16)};         // 8..16 seconds

  searchlight::WindowFunctionContext ctx;
  ctx.array = array;
  ctx.synopsis = synopsis;

  searchlight::QueryConstraint c1;
  searchlight::WindowFunctionContext avg_ctx = ctx;
  avg_ctx.value_range = Interval(50, 250);  // ABP amplitudes (paper §3.1)
  c1.make_function = [avg_ctx] {
    return std::make_unique<searchlight::AvgFunction>(avg_ctx);
  };
  c1.bounds = Interval(150, 200);
  c1.name = "c1";
  query.constraints.push_back(std::move(c1));

  for (const auto side :
       {searchlight::NeighborhoodContrastFunction::Side::kLeft,
        searchlight::NeighborhoodContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext con_ctx = ctx;
    con_ctx.value_range = Interval(0, 200);
    c.make_function = [con_ctx, side] {
      return std::make_unique<searchlight::NeighborhoodContrastFunction>(
          con_ctx, side, 8);
    };
    c.bounds = Interval(80, std::numeric_limits<double>::infinity());
    c.name = side == searchlight::NeighborhoodContrastFunction::Side::kLeft
                 ? "c2"
                 : "c3";
    query.constraints.push_back(std::move(c));
  }
  return query;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : (1 << 19);
  const int64_t k = argc > 2 ? std::atoll(argv[2]) : 5;

  data::WaveformOptions wave_opts;
  wave_opts.length = n;
  auto array = data::GenerateAbpWaveform(wave_opts).value();
  auto synopsis =
      synopsis::Synopsis::Build(*array, synopsis::SynopsisOptions{})
          .value();
  array->ResetAccessStats();

  const searchlight::QuerySpec query =
      BuildIntroQuery(array, synopsis, k);

  core::RefineOptions options;          // paper defaults
  options.speculative = true;           // early relaxed feedback
  // Keep returned intervals at least 30 seconds apart (any length):
  // without this, the top-k clusters around the single best event, the
  // "many overlapping intervals" problem of the paper's Figure 1.
  options.result_spacing = {30, 1 << 20};
  auto run = core::ExecuteQuery(query, options).value();

  std::printf("ABP exploration over %lld seconds of signal\n",
              static_cast<long long>(n));
  std::printf("requested %lld intervals; got %zu (exact matches: %lld)\n",
              static_cast<long long>(k), run.results.size(),
              static_cast<long long>(run.stats.exact_results));
  std::printf("completed in %.2fs (first interval after %.2fs)\n\n",
              run.stats.total_s, run.stats.first_result_s);

  std::printf("%-10s %-5s %-8s %-10s %-10s %-8s\n", "start", "len", "avg",
              "contrastL", "contrastR", "RP");
  for (const core::Solution& s : run.results) {
    std::printf("%-10lld %-5lld %-8.1f %-10.1f %-10.1f %-8.3f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]), s.values[0],
                s.values[1], s.values[2], s.rp);
  }
  if (run.stats.exact_results < k) {
    std::printf(
        "\nThe original constraints were too strict; the %zu closest "
        "intervals (lowest relaxation penalty RP, spaced >= 30s apart) "
        "were returned instead of manual trial and error.\n",
        run.results.size());
  }
  return 0;
}
