// Two-dimensional exploration: find h x w rectangular regions of a 2-D
// amplitude field whose average lies in a band and whose maximum stands
// out against the horizontal neighborhoods — Searchlight's original
// multidimensional workload shape. The refinement framework is
// dimension-agnostic: the same relax/constrain machinery drives the
// four-variable search.
//
//   $ ./grid_explore [rows] [cols] [k]

#include <cstdio>
#include <cstdlib>

#include "core/refiner.h"
#include "data/grid_synthetic.h"

using namespace dqr;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 768;
  const int64_t cols = argc > 2 ? std::atoll(argv[2]) : 1024;
  const int64_t k = argc > 3 ? std::atoll(argv[3]) : 8;

  auto bundle = data::MakeGridDataset(rows, cols, /*seed=*/7).value();

  data::GridQueryTuning tuning;
  tuning.k = k;
  tuning.selective = true;  // over-constrained: relaxation will engage
  const searchlight::QuerySpec query =
      data::MakeGridQuery(bundle, tuning);

  core::RefineOptions options;
  options.num_instances = 2;
  auto run = core::ExecuteQuery(query, options).value();

  std::printf("G-SEL over a %lld x %lld grid: %zu results "
              "(exact %lld) in %.2fs\n\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              run.results.size(),
              static_cast<long long>(run.stats.exact_results),
              run.stats.total_s);
  std::printf("%-6s %-6s %-4s %-4s %-9s %-9s %-9s %-7s\n", "y", "x", "h",
              "w", "avg", "cL", "cR", "RP");
  for (const core::Solution& s : run.results) {
    std::printf("%-6lld %-6lld %-4lld %-4lld %-9.1f %-9.1f %-9.1f %-7.3f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]),
                static_cast<long long>(s.point[2]),
                static_cast<long long>(s.point[3]), s.values[0],
                s.values[1], s.values[2], s.rp);
  }
  std::printf("\nsearch: %lld nodes, %lld fails recorded, %lld replays\n",
              static_cast<long long>(run.stats.main_search.nodes +
                                     run.stats.replay_search.nodes),
              static_cast<long long>(run.stats.fails_recorded),
              static_cast<long long>(run.stats.replays));
  return 0;
}
