// A §1.1 budget scenario: a business monitors a per-minute activity
// signal and wants to schedule a promotion during exactly `k` short
// windows of elevated-but-not-saturated engagement — their campaign
// budget covers only k slots. Cardinality is the *requirement*; the
// thresholds are merely the analyst's first guess.
//
// With plain search, a wrong guess returns zero windows or thousands;
// with a target cardinality, the engine constrains an over-productive
// query down to the top-k (by ranking), or relaxes an over-strict one.
//
//   $ ./budget_campaign [budget_k]

#include <cstdio>
#include <cstdlib>

#include "core/refiner.h"
#include "data/synthetic.h"
#include "searchlight/functions.h"
#include "synopsis/synopsis.h"

using namespace dqr;

int main(int argc, char** argv) {
  const int64_t budget = argc > 1 ? std::atoll(argv[1]) : 8;

  // A week of per-minute activity with busy regions and bursts.
  data::SyntheticOptions data_opts;
  data_opts.length = 7 * 24 * 60 * 4;
  data_opts.region_len = 6 * 60;
  data_opts.seed = 99;
  auto array = data::GenerateSynthetic(data_opts).value();
  auto synopsis =
      synopsis::Synopsis::Build(*array,
                                synopsis::SynopsisOptions{{4096, 512, 64},
                                                          32})
          .value();
  array->ResetAccessStats();

  // Windows of 30-60 minutes with average activity in [120, 200] and a
  // burst at least 30 above the preceding half hour.
  searchlight::QuerySpec query;
  query.name = "campaign_slots";
  query.k = budget;
  query.domains = {cp::IntDomain(30, array->length() - 100),
                   cp::IntDomain(30, 60)};

  searchlight::WindowFunctionContext ctx;
  ctx.array = array;
  ctx.synopsis = synopsis;

  {
    searchlight::QueryConstraint avg;
    searchlight::WindowFunctionContext avg_ctx = ctx;
    avg_ctx.value_range = Interval(50, 250);
    avg.make_function = [avg_ctx] {
      return std::make_unique<searchlight::AvgFunction>(avg_ctx);
    };
    avg.bounds = Interval(120, 200);
    // Rank preference: busier slots are better.
    avg.preference = searchlight::RankPreference::kMaximize;
    avg.rank_weight = 0.7;
    query.constraints.push_back(std::move(avg));
  }
  {
    searchlight::QueryConstraint burst;
    searchlight::WindowFunctionContext b_ctx = ctx;
    b_ctx.value_range = Interval(0, 200);
    burst.make_function = [b_ctx] {
      return std::make_unique<searchlight::NeighborhoodContrastFunction>(
          b_ctx, searchlight::NeighborhoodContrastFunction::Side::kLeft,
          30);
    };
    burst.bounds = Interval(30, std::numeric_limits<double>::infinity());
    burst.preference = searchlight::RankPreference::kMaximize;
    burst.rank_weight = 0.3;
    query.constraints.push_back(std::move(burst));
  }

  core::RefineOptions options;
  options.constrain = core::ConstrainMode::kRank;  // top-k if too many
  auto run = core::ExecuteQuery(query, options).value();

  std::printf("campaign budget: %lld slots; engine returned %zu\n",
              static_cast<long long>(budget), run.results.size());
  std::printf("(query matched %lld windows exactly; %s)\n\n",
              static_cast<long long>(run.stats.exact_results),
              run.stats.exact_results >
                      static_cast<int64_t>(run.results.size())
                  ? "constrained to the best-ranked k"
              : run.stats.exact_results <
                      static_cast<int64_t>(run.results.size())
                  ? "relaxed to fill the budget"
                  : "exactly on budget");

  std::printf("%-10s %-6s %-9s %-8s %-8s %-8s\n", "minute", "len", "avg",
              "burst", "RP", "RK");
  for (const core::Solution& s : run.results) {
    std::printf("%-10lld %-6lld %-9.1f %-8.1f %-8.3f %-8.3f\n",
                static_cast<long long>(s.point[0]),
                static_cast<long long>(s.point[1]), s.values[0],
                s.values[1], s.rp, s.rk);
  }
  return 0;
}
