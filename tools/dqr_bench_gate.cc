// Bench regression gate: compares current benchmark JSON output (the
// array files bench binaries write via --json) against the committed
// BENCH_baseline.json ledger and fails on a median p50 regression.
//
//   dqr_bench_gate --baseline BENCH_baseline.json
//       --current bench_synopsis=bench_synopsis.json
//       --current bench_serve=bench_serve.json
//       [--max-regress 0.25] [--report diff.txt]
//
// Records are matched by (name, config); per matched record the gate
// computes current_seconds / baseline_seconds, then takes the *median*
// ratio per bench — one noisy record cannot fail the gate, a broad
// slowdown cannot hide behind one fast record. A bench fails when its
// median ratio exceeds 1 + max-regress.
//
//   dqr_bench_gate --write-baseline BENCH_baseline.json
//       --current bench_synopsis=bench_synopsis.json ...
//
// rewrites the named benches inside the ledger (creating it if absent),
// preserving benches not mentioned — how the ledger is refreshed after
// an intentional perf change.
//
// Exit codes: 0 = within budget, 1 = regression or malformed input,
// 2 = bad usage or unreadable file.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_util.h"

namespace {

namespace json = dqr::obs::json;

struct BenchRecord {
  std::string key;  // name + canonicalized config
  double seconds = 0.0;
};

struct BenchFile {
  std::string bench;         // e.g. "bench_synopsis"
  std::string path;          // its --json output
  std::string raw;           // file contents (for --write-baseline)
  std::vector<BenchRecord> records;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: dqr_bench_gate --baseline LEDGER.json\n"
      "           --current BENCH=FILE.json [--current ...]\n"
      "           [--max-regress 0.25] [--report FILE]\n"
      "       dqr_bench_gate --write-baseline LEDGER.json\n"
      "           --current BENCH=FILE.json [--current ...]\n");
}

int ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "dqr_bench_gate: cannot open %s\n",
                 path.c_str());
    return 2;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return 0;
}

// (name, config) identity of one record: config values re-serialized in
// file order, so the key is stable across runs of the same bench build.
std::string RecordKey(const json::Value& rec) {
  std::string key;
  if (const json::Value* name = rec.Find("name");
      name != nullptr && name->kind == json::Value::kString) {
    key = name->str;
  }
  if (const json::Value* config = rec.Find("config");
      config != nullptr && config->kind == json::Value::kObject) {
    for (const auto& [k, v] : config->obj) {
      key += '|';
      key += k;
      key += '=';
      if (v.kind == json::Value::kString) {
        key += v.str;
      } else if (v.kind == json::Value::kNumber) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
        key += buf;
      }
    }
  }
  return key;
}

// Parses one bench's record array (the --json file format).
int ParseRecords(const json::Value& arr, const std::string& what,
                 std::vector<BenchRecord>* out) {
  if (arr.kind != json::Value::kArray) {
    std::fprintf(stderr, "dqr_bench_gate: %s is not a JSON array\n",
                 what.c_str());
    return 1;
  }
  for (const json::Value& rec : arr.arr) {
    if (rec.kind != json::Value::kObject) {
      std::fprintf(stderr, "dqr_bench_gate: %s holds a non-object record\n",
                   what.c_str());
      return 1;
    }
    BenchRecord r;
    r.key = RecordKey(rec);
    r.seconds = json::NumberOr(rec.Find("seconds"), -1.0);
    if (r.key.empty() || r.seconds < 0.0) {
      std::fprintf(stderr,
                   "dqr_bench_gate: %s record lacks name/seconds\n",
                   what.c_str());
      return 1;
    }
    out->push_back(std::move(r));
  }
  return 0;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string write_path;
  std::string report_path;
  double max_regress = 0.25;
  std::vector<BenchFile> currents;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage(), 2;
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (v == nullptr) return Usage(), 2;
      write_path = v;
    } else if (arg == "--current") {
      const char* v = next();
      if (v == nullptr) return Usage(), 2;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') return Usage(), 2;
      BenchFile bf;
      bf.bench.assign(v, eq - v);
      bf.path = eq + 1;
      currents.push_back(std::move(bf));
    } else if (arg == "--max-regress") {
      const char* v = next();
      if (v == nullptr) return Usage(), 2;
      max_regress = std::atof(v);
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return Usage(), 2;
      report_path = v;
    } else if (arg == "--help") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "dqr_bench_gate: unknown argument '%s'\n",
                   argv[i]);
      Usage();
      return 2;
    }
  }
  if (currents.empty() ||
      (baseline_path.empty() == write_path.empty())) {
    Usage();
    return 2;
  }

  // Load every current bench file.
  for (BenchFile& bf : currents) {
    if (const int rc = ReadFile(bf.path, &bf.raw); rc != 0) return rc;
    dqr::Result<json::Value> doc = json::Parse(bf.raw);
    if (!doc.ok()) {
      std::fprintf(stderr, "dqr_bench_gate: %s: %s\n", bf.path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    if (const int rc = ParseRecords(doc.value(), bf.path, &bf.records);
        rc != 0) {
      return rc;
    }
  }

  if (!write_path.empty()) {
    // Refresh mode: carry over unmentioned benches from an existing
    // ledger, then splice in the new record arrays verbatim.
    std::vector<std::pair<std::string, std::string>> benches;
    std::string existing;
    if (ReadFile(write_path, &existing) == 0) {
      dqr::Result<json::Value> doc = json::Parse(existing);
      if (doc.ok() && doc.value().kind == json::Value::kObject) {
        if (const json::Value* b = doc.value().Find("benches");
            b != nullptr && b->kind == json::Value::kObject) {
          // Re-serialization would lose formatting; instead keep old
          // benches only if they are not being rewritten, re-encoded
          // compactly from the parsed tree.
          for (const auto& [name, arr] : b->obj) {
            bool rewritten = false;
            for (const BenchFile& bf : currents) {
              if (bf.bench == name) rewritten = true;
            }
            if (rewritten || arr.kind != json::Value::kArray) continue;
            std::string enc = "[";
            // Old entries survive as {key, seconds} pairs only — the
            // gate never reads anything else.
            bool first_rec = true;
            for (const json::Value& rec : arr.arr) {
              if (rec.kind != json::Value::kObject) continue;
              if (!first_rec) enc += ", ";
              first_rec = false;
              std::string name_field;
              json::AppendQuoted(name_field, RecordKey(rec));
              char secs[32];
              std::snprintf(secs, sizeof(secs), "%.6f",
                            json::NumberOr(rec.Find("seconds"), 0.0));
              enc += "{\"name\": " + name_field +
                     ", \"config\": {}, \"seconds\": " + secs +
                     ", \"results\": {}}";
            }
            enc += "]";
            benches.emplace_back(name, std::move(enc));
          }
        }
      }
    }
    for (const BenchFile& bf : currents) {
      std::string raw = bf.raw;
      // The bench files already hold a well-formed JSON array; strip
      // the trailing newline so the ledger stays tidy.
      while (!raw.empty() && (raw.back() == '\n' || raw.back() == ' ')) {
        raw.pop_back();
      }
      benches.emplace_back(bf.bench, std::move(raw));
    }
    std::sort(benches.begin(), benches.end());
    std::string out = "{\n  \"version\": 1,\n  \"benches\": {\n";
    for (size_t i = 0; i < benches.size(); ++i) {
      std::string name_field;
      json::AppendQuoted(name_field, benches[i].first);
      out += "    " + name_field + ": " + benches[i].second;
      out += i + 1 < benches.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    std::FILE* f = std::fopen(write_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "dqr_bench_gate: cannot write %s\n",
                   write_path.c_str());
      return 2;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu benches)\n", write_path.c_str(),
                benches.size());
    return 0;
  }

  // Gate mode.
  std::string baseline_raw;
  if (const int rc = ReadFile(baseline_path, &baseline_raw); rc != 0) {
    return rc;
  }
  dqr::Result<json::Value> ledger = json::Parse(baseline_raw);
  if (!ledger.ok()) {
    std::fprintf(stderr, "dqr_bench_gate: %s: %s\n",
                 baseline_path.c_str(),
                 ledger.status().ToString().c_str());
    return 1;
  }
  const json::Value* benches =
      ledger.value().kind == json::Value::kObject
          ? ledger.value().Find("benches")
          : nullptr;
  if (benches == nullptr || benches->kind != json::Value::kObject) {
    std::fprintf(stderr,
                 "dqr_bench_gate: %s has no \"benches\" object\n",
                 baseline_path.c_str());
    return 1;
  }

  std::string report;
  bool failed = false;
  for (const BenchFile& bf : currents) {
    const json::Value* base_arr = benches->Find(bf.bench);
    if (base_arr == nullptr) {
      report += bf.bench + ": NOT IN BASELINE (run --write-baseline)\n";
      failed = true;
      continue;
    }
    std::vector<BenchRecord> base_records;
    if (ParseRecords(*base_arr, baseline_path + ":" + bf.bench,
                     &base_records) != 0) {
      return 1;
    }
    std::vector<double> ratios;
    int matched = 0;
    for (const BenchRecord& cur : bf.records) {
      for (const BenchRecord& base : base_records) {
        if (base.key != cur.key) continue;
        ++matched;
        const double ratio =
            base.seconds > 0.0 ? cur.seconds / base.seconds : 1.0;
        ratios.push_back(ratio);
        char line[512];
        std::snprintf(line, sizeof(line),
                      "  %-60s %10.6fs -> %10.6fs (%+.1f%%)\n",
                      cur.key.substr(0, 60).c_str(), base.seconds,
                      cur.seconds, (ratio - 1.0) * 100.0);
        report += line;
        break;
      }
    }
    if (matched == 0) {
      report += bf.bench + ": NO MATCHING RECORDS vs baseline\n";
      failed = true;
      continue;
    }
    const double med = Median(ratios);
    const bool over = med > 1.0 + max_regress;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s: median ratio %.3f over %d records (budget %.3f) "
                  "%s\n",
                  bf.bench.c_str(), med, matched, 1.0 + max_regress,
                  over ? "FAIL" : "ok");
    report += line;
    failed = failed || over;
  }

  std::fputs(report.c_str(), stdout);
  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(report.c_str(), f);
      std::fclose(f);
    }
  }
  return failed ? 1 : 0;
}
