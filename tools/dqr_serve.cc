// dqr_serve: the network front end as a standalone daemon.
//
// Serves the framed query protocol (src/serve/protocol.h) on localhost,
// admitting queries into the process-shared engine session through the
// weighted-fair tenant scheduler:
//
//   dqr_serve --port=7433 --dataset=icu:waveform:65536:7
//             --tenant=dashboards:8 --tenant=batch:1
//
// Runs until SIGINT/SIGTERM, then drains in-flight queries and prints
// the final Prometheus exposition to stdout.
//
// Exit codes: 0 = clean shutdown, 2 = bad usage or startup failure.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/queries.h"
#include "serve/server.h"

namespace {

using dqr::Result;
using dqr::Status;

void Usage() {
  std::fprintf(
      stderr,
      "usage: dqr_serve [options]\n"
      "\n"
      "  --port=N             TCP port on 127.0.0.1 (default 0 = pick an\n"
      "                       ephemeral port and print it)\n"
      "  --dataset=SPEC       register a dataset; SPEC is\n"
      "                       name:kind:length:seed with kind one of\n"
      "                       synthetic|waveform. Repeatable. Default:\n"
      "                       \"synthetic:synthetic:16384:1\"\n"
      "  --tenant=SPEC        configure a tenant; SPEC is\n"
      "                       name:weight[:max_inflight[:max_demand]]\n"
      "                       (0 = unlimited). Repeatable.\n"
      "  --history=N          completed-query records kept for the\n"
      "                       METRICS id= / TRACE id= / PROFILE id=\n"
      "                       endpoints (default 64)\n"
      "  --http-metrics-port=N\n"
      "                       also serve the Prometheus exposition as\n"
      "                       plain HTTP on 127.0.0.1:N (GET /metrics;\n"
      "                       0 = ephemeral). Off by default.\n"
      "  --quiet              skip the final metrics dump on shutdown\n");
}

bool MatchFlag(const char* arg, const char* name) {
  return std::strcmp(arg, name) == 0;
}

bool MatchValue(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int64_t ParseInt(const std::string& text, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "dqr_serve: %s wants an integer, got '%s'\n", what,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

std::vector<std::string> SplitColon(const std::string& spec) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
}

struct DatasetSpec {
  std::string name;
  std::string kind;
  int64_t length = 0;
  uint64_t seed = 0;
};

DatasetSpec ParseDataset(const std::string& spec) {
  const std::vector<std::string> parts = SplitColon(spec);
  if (parts.size() != 4 || parts[0].empty()) {
    std::fprintf(stderr,
                 "dqr_serve: --dataset wants name:kind:length:seed, got "
                 "'%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  DatasetSpec out;
  out.name = parts[0];
  out.kind = parts[1];
  if (out.kind != "synthetic" && out.kind != "waveform") {
    std::fprintf(stderr,
                 "dqr_serve: dataset kind must be synthetic|waveform, got "
                 "'%s'\n",
                 out.kind.c_str());
    std::exit(2);
  }
  out.length = ParseInt(parts[2], "--dataset length");
  out.seed = static_cast<uint64_t>(ParseInt(parts[3], "--dataset seed"));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dqr::serve::ServerOptions options;
  std::vector<DatasetSpec> datasets;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (MatchValue(arg, "--port", &value)) {
      options.port = static_cast<int>(ParseInt(value, "--port"));
    } else if (MatchValue(arg, "--dataset", &value)) {
      datasets.push_back(ParseDataset(value));
    } else if (MatchValue(arg, "--tenant", &value)) {
      const std::vector<std::string> parts = SplitColon(value);
      if (parts.size() < 2 || parts.size() > 4 || parts[0].empty()) {
        std::fprintf(stderr,
                     "dqr_serve: --tenant wants "
                     "name:weight[:max_inflight[:max_demand]], got '%s'\n",
                     value);
        return 2;
      }
      dqr::serve::TenantConfig tc;
      tc.weight = static_cast<double>(ParseInt(parts[1], "--tenant weight"));
      if (parts.size() > 2) {
        tc.max_in_flight = ParseInt(parts[2], "--tenant max_inflight");
      }
      if (parts.size() > 3) {
        tc.max_task_demand = ParseInt(parts[3], "--tenant max_demand");
      }
      options.tenants[parts[0]] = tc;
    } else if (MatchValue(arg, "--history", &value)) {
      options.history_capacity =
          static_cast<size_t>(ParseInt(value, "--history"));
    } else if (MatchValue(arg, "--http-metrics-port", &value)) {
      options.http_metrics_port =
          static_cast<int>(ParseInt(value, "--http-metrics-port"));
    } else if (MatchFlag(arg, "--quiet")) {
      quiet = true;
    } else if (MatchFlag(arg, "--help") || MatchFlag(arg, "-h")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "dqr_serve: unknown argument '%s'\n\n", arg);
      Usage();
      return 2;
    }
  }
  if (datasets.empty()) {
    datasets.push_back(DatasetSpec{"synthetic", "synthetic", 16384, 1});
  }

  // Block the shutdown signals before Start so every thread the server
  // spawns inherits the mask and sigwait below is the sole receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  dqr::serve::Server server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "dqr_serve: %s\n", started.ToString().c_str());
    return 2;
  }

  for (const DatasetSpec& d : datasets) {
    Result<dqr::data::DatasetBundle> bundle =
        d.kind == "waveform" ? dqr::data::MakeWaveformDataset(d.length, d.seed)
                             : dqr::data::MakeSyntheticDataset(d.length,
                                                               d.seed);
    if (!bundle.ok()) {
      std::fprintf(stderr, "dqr_serve: dataset '%s': %s\n", d.name.c_str(),
                   bundle.status().ToString().c_str());
      return 2;
    }
    const Status reg =
        server.RegisterDataset(d.name, std::move(bundle).value());
    if (!reg.ok()) {
      std::fprintf(stderr, "dqr_serve: dataset '%s': %s\n", d.name.c_str(),
                   reg.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "dqr_serve: dataset %s (%s, %lld cells, seed %llu)\n",
                 d.name.c_str(), d.kind.c_str(),
                 static_cast<long long>(d.length),
                 static_cast<unsigned long long>(d.seed));
  }
  for (const auto& [name, tc] : options.tenants) {
    std::fprintf(stderr,
                 "dqr_serve: tenant %s weight=%g max_inflight=%lld "
                 "max_demand=%lld\n",
                 name.c_str(), tc.weight,
                 static_cast<long long>(tc.max_in_flight),
                 static_cast<long long>(tc.max_task_demand));
  }
  std::fprintf(stderr, "dqr_serve: listening on 127.0.0.1:%d\n",
               server.port());
  if (options.http_metrics_port >= 0) {
    std::fprintf(stderr,
                 "dqr_serve: metrics on http://127.0.0.1:%d/metrics\n",
                 server.http_port());
  }

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "dqr_serve: signal %d, draining\n", sig);
  server.Stop();

  const dqr::serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "dqr_serve: %lld connections, %lld queries completed, "
               "%lld failed\n",
               static_cast<long long>(stats.connections_accepted),
               static_cast<long long>(stats.queries_completed),
               static_cast<long long>(stats.queries_failed));
  if (!quiet) std::fputs(server.MetricsText().c_str(), stdout);
  return 0;
}
