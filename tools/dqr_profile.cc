// Inspector for the per-query profile JSON the engine emits
// (obs/profile.h): the PROFILE frame body of dqr_serve, or whatever a
// harness wrote ProfileToJson() into.
//
//   dqr_profile out.json            pretty attribution tree + stats
//   dqr_profile --json out.json     canonical JSON (round-tripped)
//   dqr_profile --diff A.json B.json
//                                   per-path busy / latency / counter
//                                   deltas with percent changes
//
// Exit codes: 0 = ok, 1 = malformed profile, 2 = bad usage or
// unreadable file.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dqr_profile [--json] FILE.json\n"
               "       dqr_profile --diff A.json B.json\n"
               "\n"
               "  (default)   print the attribution tree, latency\n"
               "              summaries, estimator accuracy and counters\n"
               "  --json      re-emit the profile as canonical JSON\n"
               "  --diff      compare two profiles (B relative to A)\n");
}

int ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "dqr_profile: cannot open %s\n", path.c_str());
    return 2;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return 0;
}

int LoadProfile(const std::string& path, dqr::obs::QueryProfile* out) {
  std::string text;
  if (const int rc = ReadFile(path, &text); rc != 0) return rc;
  dqr::Result<dqr::obs::QueryProfile> p =
      dqr::obs::ProfileFromJson(text);
  if (!p.ok()) {
    std::fprintf(stderr, "dqr_profile: %s: %s\n", path.c_str(),
                 p.status().ToString().c_str());
    return 1;
  }
  *out = std::move(p).value();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool diff = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "dqr_profile: unknown flag '%s'\n", argv[i]);
      Usage();
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (diff ? (json || paths.size() != 2) : paths.size() != 1) {
    Usage();
    return 2;
  }

  if (diff) {
    dqr::obs::QueryProfile a, b;
    if (const int rc = LoadProfile(paths[0], &a); rc != 0) return rc;
    if (const int rc = LoadProfile(paths[1], &b); rc != 0) return rc;
    std::printf("diff: %s -> %s\n%s", paths[0].c_str(), paths[1].c_str(),
                dqr::obs::DiffProfiles(a, b).c_str());
    return 0;
  }

  dqr::obs::QueryProfile p;
  if (const int rc = LoadProfile(paths[0], &p); rc != 0) return rc;
  if (json) {
    std::printf("%s\n", dqr::obs::ProfileToJson(p).c_str());
  } else {
    std::printf("profile: %s\n%s", paths[0].c_str(),
                dqr::obs::FormatProfile(p).c_str());
  }
  return 0;
}
