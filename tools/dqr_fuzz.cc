// Oracle-differential fuzz driver.
//
// Campaign mode (the default) runs N seeded workloads under a per-seed
// engine-config matrix and compares every run against the brute-force
// oracle:
//
//   dqr_fuzz --seeds=200 --mode=all
//
// Replay mode reruns exactly one case — what a reproducer line encodes:
//
//   dqr_fuzz --seed=92 --mode=relax --config="inst=3;shards=8;..."
//
// Exit codes: 0 = all cases agreed with the oracle, 1 = at least one
// mismatch or error, 2 = bad usage.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/harness.h"

namespace {

using dqr::fuzz::CaseConfig;
using dqr::fuzz::CaseResult;
using dqr::fuzz::EngineConfig;
using dqr::fuzz::FuzzMode;
using dqr::fuzz::FuzzOptions;
using dqr::fuzz::FuzzReport;
using dqr::fuzz::InjectedBug;

void Usage() {
  std::fprintf(
      stderr,
      "usage: dqr_fuzz [options]\n"
      "\n"
      "campaign mode:\n"
      "  --seeds=N           number of seeds to run (default 100)\n"
      "  --start=S           first seed (default 1)\n"
      "  --mode=M            relax|constrain|skyline|all (default all)\n"
      "  --configs=N         engine configs per seed, 3..8 (default 4)\n"
      "  --jobs=N            driver threads running seeds concurrently\n"
      "                      (default 1; >1 pins the simd dimension)\n"
      "  --time-budget=SEC   stop early after SEC seconds\n"
      "  --repro-dir=DIR     write repro files for failures into DIR\n"
      "  --inject-bug=B      none|drop-last|perturb-rp (self-test)\n"
      "  --trace-mix         enable flight-recorder tracing on ~half the\n"
      "                      cases (tracing must never change an answer)\n"
      "  --sessions          run correlated query sessions (seeded\n"
      "                      mutation chains) warm-cache vs cold instead\n"
      "                      of the single-query matrix\n"
      "  --serve             route eligible cases through a loopback\n"
      "                      dqr_serve server (text IR over the framed\n"
      "                      protocol; answers must stay byte-identical)\n"
      "  --verbose           log every passing case too\n"
      "\n"
      "replay mode (all from a reproducer line):\n"
      "  --seed=S            replay exactly this seed\n"
      "  --config=STR        engine config, e.g. \"inst=3;shards=8\"\n"
      "  --grid              replay the seed's 2-D grid workload\n"
      "  --session=N         replay the seed's N-step session case\n"
      "  --len-cap=N --max-cons=N --k-cap=N --x-width-cap=N\n"
      "  --no-diversity --default-alpha\n"
      "  --shrink            shrink the replayed case if it fails\n");
}

bool MatchFlag(const char* arg, const char* name) {
  return std::strcmp(arg, name) == 0;
}

// Matches "--name=value"; on success points *value at the value part.
bool MatchValue(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int64_t ParseInt(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "dqr_fuzz: %s wants an integer, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  CaseConfig replay;
  bool have_seed = false;
  bool have_config = false;
  bool shrink_replay = false;
  std::string mode_name = "all";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (MatchValue(arg, "--seeds", &value)) {
      options.num_seeds = static_cast<int>(ParseInt(value, "--seeds"));
    } else if (MatchValue(arg, "--start", &value)) {
      options.start_seed = static_cast<uint64_t>(ParseInt(value, "--start"));
    } else if (MatchValue(arg, "--mode", &value)) {
      mode_name = value;
    } else if (MatchValue(arg, "--configs", &value)) {
      options.configs_per_seed =
          static_cast<int>(ParseInt(value, "--configs"));
    } else if (MatchValue(arg, "--jobs", &value)) {
      options.jobs = static_cast<int>(ParseInt(value, "--jobs"));
      if (options.jobs < 1 || options.jobs > 64) {
        std::fprintf(stderr, "dqr_fuzz: --jobs wants a value in [1, 64]\n");
        return 2;
      }
    } else if (MatchValue(arg, "--time-budget", &value)) {
      options.time_budget_ms = 1000 * ParseInt(value, "--time-budget");
    } else if (MatchValue(arg, "--repro-dir", &value)) {
      options.repro_dir = value;
    } else if (MatchValue(arg, "--inject-bug", &value)) {
      auto bug = dqr::fuzz::InjectedBugFromName(value);
      if (!bug.ok()) {
        std::fprintf(stderr, "dqr_fuzz: %s\n",
                     bug.status().ToString().c_str());
        return 2;
      }
      options.inject_bug = bug.value();
    } else if (MatchFlag(arg, "--trace-mix")) {
      options.trace_mix = true;
    } else if (MatchFlag(arg, "--sessions")) {
      options.sessions = true;
    } else if (MatchFlag(arg, "--serve")) {
      options.serve = true;
    } else if (MatchValue(arg, "--session", &value)) {
      replay.session = static_cast<int>(ParseInt(value, "--session"));
      if (replay.session < 1) {
        std::fprintf(stderr, "dqr_fuzz: --session wants a value >= 1\n");
        return 2;
      }
    } else if (MatchFlag(arg, "--verbose")) {
      options.verbose = true;
    } else if (MatchValue(arg, "--seed", &value)) {
      replay.seed = static_cast<uint64_t>(ParseInt(value, "--seed"));
      have_seed = true;
    } else if (MatchValue(arg, "--config", &value)) {
      auto config = EngineConfig::FromString(value);
      if (!config.ok()) {
        std::fprintf(stderr, "dqr_fuzz: %s\n",
                     config.status().ToString().c_str());
        return 2;
      }
      replay.config = config.value();
      have_config = true;
    } else if (MatchFlag(arg, "--grid")) {
      replay.grid = true;
    } else if (MatchValue(arg, "--len-cap", &value)) {
      replay.overrides.length_cap = ParseInt(value, "--len-cap");
    } else if (MatchValue(arg, "--max-cons", &value)) {
      replay.overrides.max_constraints =
          static_cast<int>(ParseInt(value, "--max-cons"));
    } else if (MatchValue(arg, "--k-cap", &value)) {
      replay.overrides.k_cap = ParseInt(value, "--k-cap");
    } else if (MatchValue(arg, "--x-width-cap", &value)) {
      replay.overrides.x_width_cap = ParseInt(value, "--x-width-cap");
    } else if (MatchFlag(arg, "--no-diversity")) {
      replay.overrides.no_diversity = true;
    } else if (MatchFlag(arg, "--default-alpha")) {
      replay.overrides.default_alpha = true;
    } else if (MatchFlag(arg, "--shrink")) {
      shrink_replay = true;
    } else if (MatchFlag(arg, "--help") || MatchFlag(arg, "-h")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "dqr_fuzz: unknown argument '%s'\n\n", arg);
      Usage();
      return 2;
    }
  }

  std::vector<FuzzMode> modes;
  if (mode_name != "all") {
    auto mode = dqr::fuzz::FuzzModeFromName(mode_name);
    if (!mode.ok()) {
      std::fprintf(stderr, "dqr_fuzz: %s\n",
                   mode.status().ToString().c_str());
      return 2;
    }
    modes.push_back(mode.value());
  }

  if (have_seed) {
    // --- replay mode ---
    replay.mode = modes.empty() ? FuzzMode::kRelax : modes[0];
    if (!have_config) replay.config = EngineConfig{};
    CaseResult r = dqr::fuzz::RunAnyCase(replay, options.inject_bug);
    std::fprintf(stderr, "dqr_fuzz: %s %s\n", r.ok ? "ok  " : "FAIL",
                 r.detail.c_str());
    if (r.ok) return 0;
    if (!r.error.empty()) {
      std::fprintf(stderr, "dqr_fuzz: %s\n", r.error.c_str());
    } else {
      std::fprintf(stderr, "--- expected (oracle):\n%s\n",
                   r.expected.empty() ? "<empty>" : r.expected.c_str());
      std::fprintf(stderr, "--- actual (engine):\n%s\n",
                   r.actual.empty() ? "<empty>" : r.actual.c_str());
    }
    if (shrink_replay) {
      const CaseConfig shrunk =
          dqr::fuzz::Shrink(replay, options.inject_bug);
      std::fprintf(stderr, "dqr_fuzz: shrunk reproducer: %s\n",
                   dqr::fuzz::ReproLine(shrunk).c_str());
      if (!options.repro_dir.empty()) {
        const CaseResult sr =
            dqr::fuzz::RunAnyCase(shrunk, options.inject_bug);
        auto file =
            dqr::fuzz::WriteReproFile(options.repro_dir, shrunk, sr);
        if (file.ok()) {
          std::fprintf(stderr, "dqr_fuzz: repro file: %s\n",
                       file.value().c_str());
        }
      }
    }
    return 1;
  }

  // --- campaign mode ---
  options.modes = std::move(modes);
  const FuzzReport report = dqr::fuzz::RunFuzz(options);
  std::fprintf(stderr,
               "dqr_fuzz: %lld cases over %lld seeds: %lld mismatches, "
               "%lld errors\n",
               static_cast<long long>(report.cases_run),
               static_cast<long long>(report.seeds_run),
               static_cast<long long>(report.mismatches),
               static_cast<long long>(report.errors));
  return report.clean() ? 0 : 1;
}
