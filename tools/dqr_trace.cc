// Trace inspector for the Chrome trace_event JSON the engine exports.
//
// Summary mode (the default) prints the per-phase/per-instance digest:
//
//   dqr_trace out.json
//
// Check mode validates the schema (the CI gate for exporter changes) and
// prints nothing on success:
//
//   dqr_trace --check out.json
//
// Exit codes: 0 = ok, 1 = malformed trace (check failed), 2 = bad usage
// or unreadable file.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_reader.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dqr_trace [--check] FILE.json\n"
               "\n"
               "  (default)   print per-instance busy fractions, phase\n"
               "              transitions, time-to-first-result, and the\n"
               "              shard handoff latency histogram\n"
               "  --check     validate the trace schema; exit 1 if bad\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "dqr_trace: unknown flag '%s'\n", argv[i]);
      Usage();
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  dqr::Result<dqr::obs::LoadedTrace> loaded =
      dqr::obs::LoadChromeTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "dqr_trace: %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    // A parse failure is a schema failure in check mode, an I/O-ish
    // failure otherwise.
    return check_only ? 1 : 2;
  }
  // A structurally valid document with zero events is never a real
  // capture — it is a truncated write or a run that never attached the
  // trace. Passing it silently made `dqr_trace --check` a no-op gate.
  if (loaded.value().events.empty()) {
    std::fprintf(stderr,
                 "dqr_trace: %s: trace contains no events (truncated "
                 "file or a run that never attached the trace?)\n",
                 path.c_str());
    return 1;
  }

  if (const dqr::Status status =
          dqr::obs::CheckChromeTrace(loaded.value());
      !status.ok()) {
    std::fprintf(stderr, "dqr_trace: %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  if (check_only) {
    std::printf("%s: ok (%zu events)\n", path.c_str(),
                loaded.value().events.size());
    return 0;
  }

  const dqr::obs::TraceSummary summary =
      dqr::obs::Summarize(loaded.value());
  std::printf("trace: %s\n%s", path.c_str(),
              dqr::obs::FormatSummary(summary).c_str());
  return 0;
}
