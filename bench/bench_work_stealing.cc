// Work stealing vs static partitioning on a deliberately skewed workload.
// All interesting structure (plateaus + spikes) is packed into the first
// eighth of the signal, i.e. entirely inside instance 0's slice under the
// legacy static 1-slice-per-instance split: instance 0 grinds while the
// rest idle. With morsel-style stealing the hot region shatters across
// many pool shards and every instance stays busy.
//
// Two experiments:
//   * main-search skew — plenty of exact results, no relaxation; measures
//     the shard pool alone (completion time + per-instance busy spread);
//   * replay skew — scarce bounds force relaxation; fails recorded in the
//     hot region are replayed from the shared global pool by whichever
//     instance is free (stolen-replay counts show the balance).
//
// Accepts --json <path> (or DQR_BENCH_JSON) for machine-readable records.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "array/array.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "searchlight/functions.h"
#include "searchlight/query.h"
#include "synopsis/synopsis.h"

namespace {

using namespace dqr;
using namespace dqr::bench;

struct SkewedBundle {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<synopsis::Synopsis> synopsis;
};

// Calm baseline ~100 everywhere; the first eighth of the signal carries
// plateaus at ~140/150 and periodic spikes — the only region where the
// query below has work to do.
SkewedBundle MakeSkewedBundle(int64_t n) {
  Rng rng(77);
  std::vector<double> data(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    data[static_cast<size_t>(i)] = 100.0 + 2.0 * rng.NextGaussian();
  }
  const int64_t hot = n / 8;
  for (int64_t i = 0; i < hot; ++i) {
    // Alternating plateaus keep the avg constraint straddling its bounds
    // so the search tree stays deep across the whole hot region.
    data[static_cast<size_t>(i)] += (i / 64) % 2 == 0 ? 40.0 : 50.0;
  }
  for (int64_t i = 32; i < hot; i += 96) {  // spikes for the contrast UDF
    for (int64_t j = i; j < i + 3 && j < hot; ++j) {
      data[static_cast<size_t>(j)] += 55.0;
    }
  }
  for (double& v : data) v = std::clamp(v, 50.0, 250.0);

  array::ArraySchema schema;
  schema.name = "skewed_bench";
  schema.length = n;
  schema.chunk_size = 256;
  SkewedBundle bundle;
  bundle.array = array::Array::FromData(schema, std::move(data)).value();
  bundle.synopsis =
      synopsis::Synopsis::Build(*bundle.array,
                                synopsis::SynopsisOptions{{256, 32}, 32})
          .value();
  return bundle;
}

searchlight::QuerySpec MakeSkewedQuery(const SkewedBundle& bundle,
                                       Interval avg_bounds, int64_t k,
                                       int64_t cost_ns) {
  searchlight::QuerySpec query;
  query.name = "skewed";
  query.k = k;
  const int64_t n = bundle.array->length();
  constexpr int64_t kNbhd = 8;
  constexpr int64_t kLenHi = 12;
  query.domains = {cp::IntDomain(kNbhd, n - kLenHi - kNbhd - 1),
                   cp::IntDomain(4, kLenHi)};

  searchlight::WindowFunctionContext ctx;
  ctx.array = bundle.array;
  ctx.synopsis = bundle.synopsis;
  ctx.x_var = 0;
  ctx.len_var = 1;
  ctx.estimate_cost_ns = cost_ns;
  // Latency-bound misses (cold chunk fetches): sleeping threads overlap,
  // so the scheduling comparison is meaningful even on a small host.
  ctx.cost_is_latency = true;

  {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext avg_ctx = ctx;
    avg_ctx.value_range = Interval(50, 250);
    c.make_function = [avg_ctx] {
      return std::make_unique<searchlight::AvgFunction>(avg_ctx);
    };
    c.bounds = avg_bounds;
    c.name = "avg";
    query.constraints.push_back(std::move(c));
  }
  for (const auto side :
       {searchlight::NeighborhoodContrastFunction::Side::kLeft,
        searchlight::NeighborhoodContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext con_ctx = ctx;
    con_ctx.value_range = Interval(0, 200);
    const int64_t width = kNbhd;
    c.make_function = [con_ctx, side, width] {
      return std::make_unique<searchlight::NeighborhoodContrastFunction>(
          con_ctx, side, width);
    };
    c.bounds = Interval(25.0, std::numeric_limits<double>::infinity());
    c.relaxable = true;
    query.constraints.push_back(std::move(c));
  }
  return query;
}

struct SpreadRow {
  double total_s = 0.0;
  double busy_min = 0.0;
  double busy_max = 0.0;
  std::string points;
  core::RunStats stats;
  std::vector<core::RunStats> per_instance;
};

SpreadRow RunConfig(const searchlight::QuerySpec& query, int instances,
                    int shards_per_instance) {
  core::RefineOptions options;
  options.num_instances = instances;
  options.shards_per_instance = shards_per_instance;
  options.trace = BenchTrace();
  options.profile = BenchProfile();
  // With tracing on, run the heartbeat/lease machinery too so the trace
  // shows the full per-instance track set (solver/validator/heartbeat);
  // the detector's zero-fault overhead is ~1% (bench_fault_recovery).
  if (options.trace != nullptr) options.enable_failure_detector = true;
  auto run = core::ExecuteQuery(query, options);
  DQR_CHECK_MSG(run.ok(), run.status().ToString().c_str());
  if (options.profile != nullptr) WriteBenchProfile();
  const core::RunResult& result = run.value();

  SpreadRow row;
  row.total_s = result.stats.total_s;
  row.stats = result.stats;
  row.per_instance = result.per_instance;
  row.busy_min = result.per_instance.empty()
                     ? 0.0
                     : result.per_instance.front().main_busy_s;
  for (const core::RunStats& s : result.per_instance) {
    row.busy_min = std::min(row.busy_min, s.main_busy_s);
    row.busy_max = std::max(row.busy_max, s.main_busy_s);
  }
  for (const core::Solution& s : result.results) row.points += s.ToString();
  return row;
}

void EmitJson(const std::string& experiment, int instances, int shards,
              const SpreadRow& row, bool same_results) {
  JsonRecord record;
  record.name = "bench_work_stealing/" + experiment;
  record.config = {
      {"instances", std::to_string(instances)},
      {"shards_per_instance", std::to_string(shards)},
  };
  record.seconds = row.total_s;
  record.results = {
      {"busy_min_s", std::to_string(row.busy_min)},
      {"busy_max_s", std::to_string(row.busy_max)},
      {"shards_executed", std::to_string(row.stats.shards_executed)},
      {"replays", std::to_string(row.stats.replays)},
      {"replays_stolen", std::to_string(row.stats.replays_stolen)},
      {"results_identical", same_results ? "true" : "false"},
  };
  RecordJson(record);
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::FromEnv();
  const int64_t n =
      std::max<int64_t>(1 << 12, std::min<int64_t>(env.synth_length, 1 << 13));
  const SkewedBundle bundle = MakeSkewedBundle(n);
  const int instances = env.num_instances;
  // Misses model chunk-fetch latency here; the OS timer floor makes
  // sub-20us sleeps meaningless, so raise the default accordingly.
  const int64_t cost_ns = std::max<int64_t>(env.estimate_cost_ns, 20000);

  // ---- Experiment 1: main-search skew (no relaxation needed) ----------
  {
    const searchlight::QuerySpec query = MakeSkewedQuery(
        bundle, Interval(135, 160), /*k=*/10, cost_ns);
    TablePrinter table(
        "Work stealing vs static partitioning (main-search skew, " +
            std::to_string(instances) + " instances)",
        {"Shards/inst", "Time (s)", "Busy min (s)", "Busy max (s)",
         "Spread", "Results"});

    std::string reference;
    double static_s = 0.0;
    double stolen_s = 0.0;
    for (const int shards : {1, 4, 8}) {
      const SpreadRow row = RunConfig(query, instances, shards);
      if (reference.empty()) reference = row.points;
      if (shards == 1) static_s = row.total_s;
      if (shards == 8) stolen_s = row.total_s;
      const bool same = row.points == reference;
      const double spread =
          row.busy_min > 1e-9 ? row.busy_max / row.busy_min : -1.0;
      char spread_str[32];
      std::snprintf(spread_str, sizeof(spread_str), "%.1fx", spread);
      table.AddRow({std::to_string(shards), Secs(row.total_s),
                    Secs(row.busy_min), Secs(row.busy_max),
                    spread < 0.0 ? "inf" : spread_str,
                    same ? "same" : "DIFFERENT!"});
      EmitJson("main_search_skew", instances, shards, row, same);
    }
    table.Print();
    std::printf(
        "Static (1 shard/inst) vs stealing (8): %.2fx speedup. Every row "
        "must report \"same\" — the result set is invariant under the "
        "shard count.\n",
        stolen_s > 0.0 ? static_s / stolen_s : 0.0);
  }

  // ---- Experiment 2: replay skew (relaxation from the shared pool) ----
  {
    const searchlight::QuerySpec query = MakeSkewedQuery(
        bundle, Interval(220, 250), /*k=*/10, cost_ns);
    TablePrinter table(
        "Shared replay pool (replay skew, scarce bounds, " +
            std::to_string(instances) + " instances)",
        {"Shards/inst", "Time (s)", "Replays", "Stolen", "Per-inst replays",
         "Results"});

    std::string reference;
    for (const int shards : {1, 8}) {
      const SpreadRow row = RunConfig(query, instances, shards);
      if (reference.empty()) reference = row.points;
      const bool same = row.points == reference;
      std::string split;
      for (const core::RunStats& s : row.per_instance) {
        if (!split.empty()) split += "/";
        split += std::to_string(s.replays);
      }
      table.AddRow({std::to_string(shards), Secs(row.total_s),
                    std::to_string(row.stats.replays),
                    std::to_string(row.stats.replays_stolen), split,
                    same ? "same" : "DIFFERENT!"});
      EmitJson("replay_skew", instances, shards, row, same);
    }
    table.Print();
    std::printf(
        "Fails recorded in the hot region are replayed by every instance "
        "(the per-instance split), not only by their recorder — the "
        "stolen count is the cross-instance share.\n");
  }
  return 0;
}
