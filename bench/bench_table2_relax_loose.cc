// Reproduces Table 2 of the paper: query completion times for the loose
// queries S-LOS and M-LOS under automatic relaxation vs the manual
// scenarios. The maximally relaxed manual query (USER-MAX) produces an
// avalanche of results and is stopped at the timeout, mirroring the
// paper's ">3600" entries.
//
// Paper: S-LOS: SL 105  USER-3 314  USER-2 208 (106)  USER-MAX >3600
//        M-LOS: SL 91   USER-3 177  USER-2 118 (83)   USER-MAX >3600
//        First result: S-LOS 92 vs 108; M-LOS 45 vs 77.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 2: S/M-LOS query completion times (secs) for query "
      "relaxation",
      {"Query", "SL", "USER-3", "USER-2", "USER-MAX", "SL(paper)",
       "U3(paper)", "U2(paper)", "UMAX(paper)"});
  TablePrinter first("Table 2 (text): time to first result (secs)",
                     {"Query", "SL", "USER-2", "SL(paper)",
                      "USER-2(paper)"});

  struct PaperRow {
    data::QueryKind kind;
    const char* sl;
    const char* u3;
    const char* u2;
    const char* first_sl;
    const char* first_u2;
  };
  const PaperRow rows[] = {
      {data::QueryKind::kSLos, "105", "314", "208 (106)", "92", "108"},
      {data::QueryKind::kMLos, "91", "177", "118 (83)", "45", "77"},
  };

  for (const PaperRow& row : rows) {
    const data::DatasetBundle& bundle =
        BundleFor(env, row.kind, synth, wave);
    const UserFractions fr = FractionsFor(row.kind);

    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, row.kind, tuning);

    const RunOutcome sl = Run(query, AutoOptions(env));
    const RunOutcome u3 = RunManualScenario(
        env, bundle, row.kind, {0.0, fr.cautious, fr.correct});
    const RunOutcome u2 =
        RunManualScenario(env, bundle, row.kind, {0.0, fr.correct});
    const RunOutcome umax =
        RunManualScenario(env, bundle, row.kind, {0.0, 1.0});

    table.AddRow({data::QueryKindName(row.kind), Secs(sl.total_s),
                  Secs(u3.total_s, !u3.completed),
                  Secs(u2.total_s, !u2.completed),
                  umax.completed ? Secs(umax.total_s)
                                 : Secs(env.timeout_s, true),
                  row.sl, row.u3, row.u2, ">3600"});
    first.AddRow({data::QueryKindName(row.kind), Secs(sl.first_s),
                  Secs(u2.first_s), row.first_sl, row.first_u2});

    std::printf(
        "[%s] SL: %zu results, fails recorded %lld, replays %lld, "
        "USER-MAX %s\n",
        data::QueryKindName(row.kind), sl.results,
        static_cast<long long>(sl.stats.fails_recorded),
        static_cast<long long>(sl.stats.replays),
        umax.completed ? "completed" : "timed out (avalanche)");
  }

  table.Print();
  first.Print();
  return 0;
}
