// bench_serve: the cost of the network front end.
//
// Measures what the dqr_serve transport adds on top of direct in-process
// execution: each query goes once through EngineSession::Execute and once
// over a loopback socket as a framed QUERY (parse, admission through the
// tenant scheduler, progress streaming, FINAL with the canonical body),
// at client counts {1, 2, 4, 8} sharing one server. Queries are small,
// so the per-query transport cost — framing, TCP round trips, the
// per-query thread — is the dominant term and the overhead ratio is an
// upper bound on what interactive exploration would see.
//
//   bench_serve [--max-overhead1=X] [--json <path>]
//
// Every streamed answer is checked byte-identical to a precomputed
// direct baseline; exit 1 on any mismatch or error, or when the
// single-client serve/direct latency ratio exceeds --max-overhead1
// (default: report only).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "exec/engine_session.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "testing/generator.h"

namespace {

using dqr::bench::JsonRecord;
using dqr::bench::RecordJson;
using dqr::bench::TablePrinter;
using dqr::fuzz::EngineConfig;
using dqr::fuzz::FuzzMode;
using dqr::fuzz::MakeWorkload;
using dqr::fuzz::Workload;
using dqr::fuzz::WorkloadOverrides;

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kLevels[] = {1, 2, 4, 8};
constexpr int kQueriesPerLevel = 64;

struct LegResult {
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  int64_t mismatches = 0;
  int64_t errors = 0;
};

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

// The QUERY frame for a workload with default engine attributes — the
// server-side execution the frame triggers matches the direct leg's
// default EngineConfig by construction (serve transport contract).
dqr::serve::Frame QueryFrameFor(const std::string& id,
                                const std::string& dataset,
                                const Workload& w) {
  dqr::serve::Frame q;
  q.type = dqr::serve::frame::kQuery;
  q.Set("id", id);
  q.Set("dataset", dataset);
  q.Set("alpha", w.alpha);
  q.Set("constrain",
        w.constrain == dqr::core::ConstrainMode::kNone     ? "none"
        : w.constrain == dqr::core::ConstrainMode::kRank   ? "rank"
                                                           : "skyline");
  if (!w.result_spacing.empty()) {
    std::string spacing;
    for (int64_t s : w.result_spacing) {
      if (!spacing.empty()) spacing += ',';
      spacing += std::to_string(s);
    }
    q.Set("spacing", spacing);
    q.Set("divpool", w.diversity_pool_factor);
  }
  q.body = w.query_text;
  return q;
}

// `clients` threads, each running its share of kQueriesPerLevel queries.
// With `server` null the leg executes directly on `session`; otherwise
// each thread holds one connection and round-trips framed queries.
LegResult RunLeg(int clients, const std::vector<Workload>& workloads,
                 const std::vector<std::string>& baselines,
                 dqr::exec::EngineSession* session,
                 dqr::serve::Server* server) {
  LegResult out;
  const int per_client = kQueriesPerLevel / clients;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> errors{0};

  const double started = NowS();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& lats = latencies[static_cast<size_t>(c)];
      lats.reserve(static_cast<size_t>(per_client));
      dqr::serve::Client client;
      if (server != nullptr) {
        if (!client.Connect(server->port()).ok() ||
            !client.Hello("bench").ok()) {
          ++errors;
          return;
        }
      }
      for (int q = 0; q < per_client; ++q) {
        const size_t wi =
            static_cast<size_t>(c * per_client + q) % workloads.size();
        const Workload& workload = workloads[wi];
        const double t0 = NowS();
        std::string canonical;
        if (server != nullptr) {
          const std::string id =
              "c" + std::to_string(c) + "q" + std::to_string(q);
          auto run = client.RunQuery(QueryFrameFor(
              id, "w" + std::to_string(workload.seed), workload));
          lats.push_back(NowS() - t0);
          if (!run.ok()) {
            ++errors;
            continue;
          }
          canonical = run.value().canonical();
        } else {
          const dqr::core::RefineOptions options =
              EngineConfig{}.ToOptions(workload, nullptr);
          auto run = session->Execute(workload.query, options);
          lats.push_back(NowS() - t0);
          if (!run.ok() || !run.value().stats.completed) {
            ++errors;
            continue;
          }
          canonical = dqr::core::Canonicalize(run.value().results);
        }
        if (canonical != baselines[wi]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_s = NowS() - started;

  std::vector<double> all;
  all.reserve(static_cast<size_t>(clients * per_client));
  for (const std::vector<double>& lats : latencies) {
    all.insert(all.end(), lats.begin(), lats.end());
  }
  out.qps = out.wall_s > 0
                ? static_cast<double>(all.size()) / out.wall_s
                : 0.0;
  out.p50_ms = 1000.0 * Percentile(all, 0.50);
  out.p95_ms = 1000.0 * Percentile(all, 0.95);
  out.mismatches = mismatches.load();
  out.errors = errors.load();
  return out;
}

std::string Fmt(double v, const char* format = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  dqr::bench::InitBenchJson(argc, argv);
  double max_overhead1 = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-overhead1=", 16) == 0) {
      max_overhead1 = std::atof(argv[i] + 16);
    }
  }

  // Small mixed-shape interactive queries (as in bench_concurrent): the
  // transport must not dominate exactly where queries are cheapest.
  WorkloadOverrides overrides;
  overrides.length_cap = 64;
  overrides.max_constraints = 1;
  overrides.k_cap = 2;
  constexpr uint64_t kSeeds[] = {1, 2, 3, 5};
  std::vector<Workload> workloads;
  std::vector<std::string> baselines;
  for (size_t i = 0; i < std::size(kSeeds); ++i) {
    const FuzzMode mode =
        i % 2 == 0 ? FuzzMode::kRelax : FuzzMode::kConstrain;
    workloads.push_back(MakeWorkload(kSeeds[i], mode, overrides));
    const auto run = dqr::core::ExecuteQuery(
        workloads[i].query, EngineConfig{}.ToOptions(workloads[i], nullptr));
    if (!run.ok() || !run.value().stats.completed) {
      std::fprintf(stderr, "bench_serve: baseline run failed\n");
      return 1;
    }
    baselines.push_back(dqr::core::Canonicalize(run.value().results));
  }

  // One session for both legs, one server on top of it for the serve
  // legs — the difference between the legs is the transport alone.
  dqr::exec::WorkerPool pool(8);
  dqr::exec::TimerWheel wheel;
  dqr::exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 8;
  dqr::exec::EngineSession session(session_options);

  dqr::serve::ServerOptions server_options;
  server_options.session = &session;
  dqr::serve::Server server(server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "bench_serve: server failed to start\n");
    return 1;
  }
  for (const Workload& w : workloads) {
    const dqr::Status st = server.RegisterDataset(
        "w" + std::to_string(w.seed),
        dqr::data::DatasetBundle{w.array, w.synopsis});
    if (!st.ok()) {
      std::fprintf(stderr, "bench_serve: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  TablePrinter table(
      "bench_serve: loopback serve transport vs direct execution",
      {"clients", "direct qps", "serve qps", "ratio",
       "direct p50/p95 ms", "serve p50/p95 ms"});

  int64_t mismatches = 0;
  int64_t errors = 0;
  double overhead1 = 0.0;
  std::vector<JsonRecord> records;
  for (const int clients : kLevels) {
    // Best of five interleaved repeats per leg: scheduler noise at
    // sub-millisecond query sizes dwarfs the transport cost under test.
    std::vector<LegResult> direct_runs;
    std::vector<LegResult> serve_runs;
    for (int rep = 0; rep < 5; ++rep) {
      direct_runs.push_back(
          RunLeg(clients, workloads, baselines, &session, nullptr));
      serve_runs.push_back(
          RunLeg(clients, workloads, baselines, &session, &server));
    }
    const auto best_run = [](std::vector<LegResult>* runs) {
      std::sort(runs->begin(), runs->end(),
                [](const LegResult& a, const LegResult& b) {
                  return a.qps < b.qps;
                });
      return runs->back();
    };
    LegResult direct = best_run(&direct_runs);
    LegResult served = best_run(&serve_runs);
    direct.mismatches = direct.errors = 0;
    served.mismatches = served.errors = 0;
    for (const LegResult& r : direct_runs) {
      direct.mismatches += r.mismatches;
      direct.errors += r.errors;
    }
    for (const LegResult& r : serve_runs) {
      served.mismatches += r.mismatches;
      served.errors += r.errors;
    }
    mismatches += direct.mismatches + served.mismatches;
    errors += direct.errors + served.errors;

    const double ratio =
        direct.p50_ms > 0 ? served.p50_ms / direct.p50_ms : 0.0;
    if (clients == 1) overhead1 = ratio;
    table.AddRow({std::to_string(clients), Fmt(direct.qps, "%.1f"),
                  Fmt(served.qps, "%.1f"), Fmt(ratio) + "x",
                  Fmt(direct.p50_ms) + "/" + Fmt(direct.p95_ms),
                  Fmt(served.p50_ms) + "/" + Fmt(served.p95_ms)});

    JsonRecord record;
    record.name = "bench_serve_c" + std::to_string(clients);
    record.config = {
        {"clients", std::to_string(clients)},
        {"queries", std::to_string(kQueriesPerLevel)},
        {"pool_threads", std::to_string(pool.thread_count())},
    };
    record.seconds = served.wall_s;
    record.results = {
        {"direct_qps", std::to_string(direct.qps)},
        {"serve_qps", std::to_string(served.qps)},
        {"p50_ratio", std::to_string(ratio)},
        {"direct_p50_ms", std::to_string(direct.p50_ms)},
        {"direct_p95_ms", std::to_string(direct.p95_ms)},
        {"serve_p50_ms", std::to_string(served.p50_ms)},
        {"serve_p95_ms", std::to_string(served.p95_ms)},
        {"mismatches",
         std::to_string(direct.mismatches + served.mismatches)},
    };
    records.push_back(record);
  }

  table.Print();
  // Stop before reading stats: a query thread can still be folding its
  // counters in for an instant after the client saw FINAL.
  server.Stop();
  const dqr::serve::ServerStats stats = server.stats();
  std::printf(
      "server: %lld connections, %lld queries completed, %lld failed, "
      "%lld frames sent\n",
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.queries_completed),
      static_cast<long long>(stats.queries_failed),
      static_cast<long long>(stats.frames_sent));
  std::printf("single-client p50 overhead (serve/direct): %.2fx\n",
              overhead1);

  for (const JsonRecord& record : records) RecordJson(record);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr, "bench_serve: FAIL %lld mismatches, %lld errors\n",
                 static_cast<long long>(mismatches),
                 static_cast<long long>(errors));
    return 1;
  }
  if (max_overhead1 > 0 && overhead1 > max_overhead1) {
    std::fprintf(stderr,
                 "bench_serve: FAIL single-client overhead %.2fx above "
                 "allowed %.2fx\n",
                 overhead1, max_overhead1);
    return 1;
  }
  return 0;
}
