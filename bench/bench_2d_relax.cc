// Beyond the paper's tables: the Table 1/2 experiment repeated on the
// two-dimensional substrate (Searchlight's original synthetic workload is
// 2-D). The same shapes must hold: automatic relaxation (SL) beats the
// manual guess-and-rerun scenarios, and the loose variant's maximal
// manual relaxation drowns in results.

#include <cstdio>

#include "bench_common.h"
#include "data/grid_synthetic.h"

namespace {

using namespace dqr;
using namespace dqr::bench;

bench::RunOutcome RunManual2d(const BenchEnv& env,
                              const data::GridBundle& bundle,
                              bool selective,
                              const std::vector<double>& fractions) {
  core::RefineOptions options = ManualOptions(env);
  bench::RunOutcome total;
  for (const double fraction : fractions) {
    data::GridQueryTuning tuning;
    tuning.k = env.k;
    tuning.selective = selective;
    tuning.relax_fraction = fraction;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const bench::RunOutcome step =
        Run(data::MakeGridQuery(bundle, tuning), options);
    total.total_s += step.total_s;
    total.results = step.results;
    total.completed = total.completed && step.completed;
    if (!step.completed) break;
  }
  return total;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  // Grid sized so rows*cols is comparable to the 1-D lengths.
  const int64_t side = 1 << 10;
  auto bundle =
      data::MakeGridDataset(side, env.synth_length / side, 42).value();

  TablePrinter table(
      "2-D relaxation (beyond-paper): G-SEL / G-LOS completion times "
      "(secs)",
      {"Query", "SL", "USER-3", "USER-2", "USER-MAX"});

  for (const bool selective : {true, false}) {
    data::GridQueryTuning tuning;
    tuning.k = env.k;
    tuning.selective = selective;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeGridQuery(bundle, tuning);

    const bench::RunOutcome sl = Run(query, AutoOptions(env));
    const bench::RunOutcome u3 =
        RunManual2d(env, bundle, selective, {0.0, 0.1, 0.3});
    const bench::RunOutcome u2 =
        RunManual2d(env, bundle, selective, {0.0, 0.3});
    const bench::RunOutcome umax =
        RunManual2d(env, bundle, selective, {0.0, 1.0});

    table.AddRow({selective ? "G-SEL" : "G-LOS", Secs(sl.total_s),
                  Secs(u3.total_s, !u3.completed),
                  Secs(u2.total_s, !u2.completed),
                  umax.completed ? Secs(umax.total_s)
                                 : Secs(env.timeout_s, true)});
    std::printf("[%s] SL results=%zu fails=%lld replays=%lld\n",
                selective ? "G-SEL" : "G-LOS", sl.results,
                static_cast<long long>(sl.stats.fails_recorded),
                static_cast<long long>(sl.stats.replays));
  }
  table.Print();
  std::printf("Expected shape (as in Tables 1-2): SL < USER-2 < USER-3; "
              "G-LOS USER-MAX hits the cap.\n");
  return 0;
}
