// Beyond the paper's tables: the Table 1/2 experiment repeated on the
// two-dimensional substrate (Searchlight's original synthetic workload is
// 2-D). The same shapes must hold: automatic relaxation (SL) beats the
// manual guess-and-rerun scenarios, and the loose variant's maximal
// manual relaxation drowns in results.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/grid_synthetic.h"

namespace {

using namespace dqr;
using namespace dqr::bench;

bench::RunOutcome RunManual2d(const BenchEnv& env,
                              const data::GridBundle& bundle,
                              bool selective,
                              const std::vector<double>& fractions) {
  core::RefineOptions options = ManualOptions(env);
  bench::RunOutcome total;
  for (const double fraction : fractions) {
    data::GridQueryTuning tuning;
    tuning.k = env.k;
    tuning.selective = selective;
    tuning.relax_fraction = fraction;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const bench::RunOutcome step =
        Run(data::MakeGridQuery(bundle, tuning), options);
    total.total_s += step.total_s;
    total.results = step.results;
    total.completed = total.completed && step.completed;
    if (!step.completed) break;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchJson(argc, argv);
  const BenchEnv env = BenchEnv::FromEnv();
  // Grid sized so rows*cols is comparable to the 1-D lengths.
  const int64_t side = 1 << 10;
  auto bundle =
      data::MakeGridDataset(side, env.synth_length / side, 42).value();

  TablePrinter table(
      "2-D relaxation (beyond-paper): G-SEL / G-LOS completion times "
      "(secs)",
      {"Query", "SL", "USER-3", "USER-2", "USER-MAX"});

  for (const bool selective : {true, false}) {
    data::GridQueryTuning tuning;
    tuning.k = env.k;
    tuning.selective = selective;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeGridQuery(bundle, tuning);

    const bench::RunOutcome sl = Run(query, AutoOptions(env));
    const bench::RunOutcome u3 =
        RunManual2d(env, bundle, selective, {0.0, 0.1, 0.3});
    const bench::RunOutcome u2 =
        RunManual2d(env, bundle, selective, {0.0, 0.3});
    const bench::RunOutcome umax =
        RunManual2d(env, bundle, selective, {0.0, 1.0});

    table.AddRow({selective ? "G-SEL" : "G-LOS", Secs(sl.total_s),
                  Secs(u3.total_s, !u3.completed),
                  Secs(u2.total_s, !u2.completed),
                  umax.completed ? Secs(umax.total_s)
                                 : Secs(env.timeout_s, true)});
    std::printf("[%s] SL results=%zu fails=%lld replays=%lld\n",
                selective ? "G-SEL" : "G-LOS", sl.results,
                static_cast<long long>(sl.stats.fails_recorded),
                static_cast<long long>(sl.stats.replays));
    RecordJson({"2d_relax",
                {{"query", JsonStr(selective ? "G-SEL" : "G-LOS")},
                 {"side", std::to_string(side)}},
                sl.total_s,
                {{"results", std::to_string(sl.results)},
                 {"user3_s", std::to_string(u3.total_s)},
                 {"user2_s", std::to_string(u2.total_s)},
                 {"usermax_s",
                  std::to_string(umax.completed ? umax.total_s
                                                : env.timeout_s)},
                 {"usermax_capped", umax.completed ? "false" : "true"},
                 {"fails", std::to_string(sl.stats.fails_recorded)},
                 {"replays", std::to_string(sl.stats.replays)}}});
  }
  table.Print();
  std::printf("Expected shape (as in Tables 1-2): SL < USER-2 < USER-3; "
              "G-LOS USER-MAX hits the cap.\n");

  // Raw synopsis bounds-query throughput on the bench dataset's own
  // synopsis: the O(1) rectangle path the relaxation runs above lean on.
  {
    const auto& syn = *bundle.synopsis;
    const int64_t rows = bundle.grid->rows();
    const int64_t cols = bundle.grid->cols();
    constexpr int kProbes = 200000;
    Rng rng(515);
    std::vector<int64_t> r0(kProbes), r1(kProbes), c0(kProbes),
        c1(kProbes);
    // Reduced-scale runs (CI smoke) can shrink a dimension below the
    // nominal span range; clamp so probes always fit.
    const int64_t max_span =
        std::min<int64_t>(256, std::min(rows, cols));
    const int64_t min_span = std::min<int64_t>(8, max_span);
    for (int i = 0; i < kProbes; ++i) {
      const int64_t span = rng.UniformInt(min_span, max_span);
      r0[i] = rng.UniformInt(0, rows - span);
      c0[i] = rng.UniformInt(0, cols - span);
      r1[i] = r0[i] + span;
      c1[i] = c0[i] + span;
    }
    double sink = 0.0;
    Stopwatch watch;
    for (int i = 0; i < kProbes; ++i) {
      const auto max_b = syn.MaxBounds(r0[i], r1[i], c0[i], c1[i]);
      const auto val_b = syn.ValueBounds(r0[i], r1[i], c0[i], c1[i]);
      sink += max_b.lo + val_b.hi;
    }
    const double seconds = watch.ElapsedSeconds();
    const double qps = 2.0 * kProbes / seconds;
    std::printf("bounds queries: %.0f queries/sec (%d probes, checksum "
                "%.3f)\n",
                qps, kProbes, sink);
    RecordJson({"2d_bounds_throughput",
                {{"rows", std::to_string(rows)},
                 {"cols", std::to_string(cols)},
                 {"probes", std::to_string(2 * kProbes)}},
                seconds,
                {{"queries_per_sec", std::to_string(qps)}}});
  }
  return 0;
}
