// Reproduces Table 3 of the paper: the overhead of keeping automatic
// relaxation always on for queries that do not need it. Each query is the
// USER-2 scenario's correctly relaxed second query (which returns >= k
// results), run with refinement off vs on.
//
// Paper: Off: S-LOS 106  M-LOS 83  S-SEL 120  M-SEL 240
//        On:  S-LOS 116  M-LOS 98  S-SEL 127  M-SEL 290
// Expected shape: On adds little or no time (M-LOS was the paper's worst
// case).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 3: query completion times (secs) for queries not needing "
      "relaxation",
      {"Relax", "S-LOS", "M-LOS", "S-SEL", "M-SEL"});

  const data::QueryKind kinds[] = {
      data::QueryKind::kSLos, data::QueryKind::kMLos,
      data::QueryKind::kSSel, data::QueryKind::kMSel};

  std::vector<std::string> off_row = {"Off"};
  std::vector<std::string> on_row = {"On"};
  for (const data::QueryKind kind : kinds) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    tuning.relax_fraction = FractionsFor(kind).correct;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    // "Off": plain Searchlight (outputs all results; the user would rank
    // the >= k results manually). "On": relaxation armed, constraining
    // disabled so the baseline work is identical.
    core::RefineOptions off = ManualOptions(env);
    off.time_budget_s = 20 * env.timeout_s;
    core::RefineOptions on = AutoOptions(env);
    on.constrain = core::ConstrainMode::kNone;

    const RunOutcome r_off = Run(query, off);
    const RunOutcome r_on = Run(query, on);
    off_row.push_back(Secs(r_off.total_s));
    on_row.push_back(Secs(r_on.total_s));
    std::printf("[%s] off results=%zu  on results=%zu  fails tracked=%lld\n",
                data::QueryKindName(kind), r_off.results, r_on.results,
                static_cast<long long>(r_on.stats.fails_recorded));
  }
  table.AddRow(off_row);
  table.AddRow(on_row);
  table.AddRow({"Off(paper)", "106", "83", "120", "240"});
  table.AddRow({"On(paper)", "116", "98", "127", "290"});
  table.Print();
  return 0;
}
