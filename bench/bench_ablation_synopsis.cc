// Ablation: synopsis resolution and per-query cell budget. The synopsis
// is the engine's only view of the data during search; coarser grids
// prune less (more candidates reach the Validator), finer grids cost
// more memory. Not a paper table — this quantifies the design choice
// DESIGN.md makes for the multi-resolution synopsis.

#include <cstdio>

#include "bench_common.h"
#include "data/waveform.h"
#include "synopsis/synopsis.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  BenchEnv env = BenchEnv::FromEnv();
  env.wave_length = std::min<int64_t>(env.wave_length, 1 << 20);

  data::WaveformOptions wave_opts;
  wave_opts.length = env.wave_length;
  auto array = data::GenerateAbpWaveform(wave_opts).value();

  struct Config {
    const char* name;
    synopsis::SynopsisOptions options;
  };
  const Config configs[] = {
      {"coarse (64k cells only)", {{65536}, 64}},
      {"two-level (64k/4k)", {{65536, 4096}, 64}},
      {"default (64k/8k/1k/128)", {{65536, 8192, 1024, 128}, 64}},
      {"fine (16k/1k/64/16)", {{16384, 1024, 64, 16}, 64}},
      {"default, tiny budget", {{65536, 8192, 1024, 128}, 8}},
      {"default, large budget", {{65536, 8192, 1024, 128}, 512}},
  };

  TablePrinter table(
      "Ablation: synopsis resolution vs M-SEL auto-relaxation cost",
      {"Synopsis", "Memory", "Time (s)", "Nodes", "Candidates",
       "False pos."});

  for (const Config& config : configs) {
    auto synopsis = synopsis::Synopsis::Build(*array, config.options);
    if (!synopsis.ok()) continue;
    array->ResetAccessStats();
    data::DatasetBundle bundle;
    bundle.array = array;
    bundle.synopsis = std::move(synopsis).value();

    data::QueryTuning tuning;
    tuning.k = env.k;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, data::QueryKind::kMSel, tuning);
    const RunOutcome run = Run(query, AutoOptions(env));

    char mem[32];
    std::snprintf(mem, sizeof(mem), "%lld KiB",
                  static_cast<long long>(bundle.synopsis->MemoryBytes() /
                                         1024));
    table.AddRow({config.name, mem, Secs(run.total_s, !run.completed),
                  std::to_string(run.stats.main_search.nodes +
                                 run.stats.replay_search.nodes),
                  std::to_string(run.stats.candidates),
                  std::to_string(run.stats.false_positives)});
  }
  table.Print();
  std::printf(
      "Expected shape: finer synopses and larger budgets shrink the "
      "search tree and the candidate stream at a memory premium; the\n"
      "multi-resolution default balances both.\n");
  return 0;
}
