#ifndef DQR_BENCH_BENCH_COMMON_H_
#define DQR_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/refiner.h"
#include "data/queries.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace dqr::bench {

// Shared benchmark configuration, overridable via environment variables:
//   DQR_BENCH_SCALE      multiplies data set lengths (default 1.0)
//   DQR_BENCH_TIMEOUT_S  cap for runs the paper reports as ">1h"
//   DQR_BENCH_COST_NS    artificial cost per uncached synopsis lookup
// The paper ran 100 GB data sets on a 4-instance AWS cluster; the default
// configuration reproduces the *shapes* of its tables at laptop scale
// (see EXPERIMENTS.md for the paper-vs-measured record).
struct BenchEnv {
  int64_t synth_length = 1 << 21;
  int64_t wave_length = 1 << 21;
  double timeout_s = 30.0;
  int64_t estimate_cost_ns = 1500;
  int num_instances = 4;
  int64_t k = 10;

  static BenchEnv FromEnv();
};

// Builds the data sets once per binary.
data::DatasetBundle SynthBundle(const BenchEnv& env);
data::DatasetBundle WaveBundle(const BenchEnv& env);
const data::DatasetBundle& BundleFor(const BenchEnv& env,
                                     data::QueryKind kind,
                                     const data::DatasetBundle& synth,
                                     const data::DatasetBundle& wave);

// Default refinement options for benchmarks (paper defaults + the bench
// cluster size).
core::RefineOptions AutoOptions(const BenchEnv& env);
// Plain-Searchlight options for the manual USER-x scenarios.
core::RefineOptions ManualOptions(const BenchEnv& env);

struct RunOutcome {
  double total_s = 0.0;
  double first_s = -1.0;
  size_t results = 0;
  bool completed = true;
  core::RunStats stats;
};

// Runs one query; aborts the process on query errors (benchmarks are
// trusted inputs).
RunOutcome Run(const searchlight::QuerySpec& query,
               const core::RefineOptions& options);

// Runs the manual scenario: one plain (refinement-off) execution per
// relax fraction, in order, accumulating wall time. `first_s` is the
// first-result time within the first iteration that produced >= k
// results, offset by the preceding iterations (the user waits through
// them). A non-completed iteration (timeout) marks the outcome capped.
RunOutcome RunManualScenario(const BenchEnv& env,
                             const data::DatasetBundle& bundle,
                             data::QueryKind kind,
                             const std::vector<double>& fractions);

// The manual relaxation fractions per query kind: {cautious, correct}.
// USER-3 = {0, cautious, correct}; USER-2 = {0, correct};
// USER-MAX = {0, 1}.
struct UserFractions {
  double cautious = 0.1;
  double correct = 0.3;
};
UserFractions FractionsFor(data::QueryKind kind);

// Formats seconds like the paper's tables: "97", "2.4", "2h 8m"; capped
// runs render as ">30".
std::string Secs(double s, bool capped = false);

// --- machine-readable output ---
// One benchmark measurement: written as
//   {"name": ..., "config": {...}, "seconds": ..., "results": {...}}
// config/results entries map a key to an *already JSON-encoded* value —
// numbers via std::to_string, strings via JsonStr.
struct JsonRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> config;
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> results;
};

// JSON string literal with quoting/escaping.
std::string JsonStr(const std::string& raw);

// Enables JSON output to `path`. Benches call the argc/argv overload to
// honor `--json <path>`; independent of that, the DQR_BENCH_JSON
// environment variable enables it for benches run without flags. With
// neither configured, RecordJson is a no-op. The argc/argv overload also
// handles the shared `--trace` flag (see InitBenchTrace below), so every
// bench that parses its CLI through here can dump a timeline.
void InitBenchJson(const std::string& path);
void InitBenchJson(int argc, char** argv);

// --- flight-recorder tracing (DESIGN.md §8) ---
// Enables tracing for every Run() in this binary and dumps a Chrome
// trace_event JSON file at process exit (open in ui.perfetto.dev or
// chrome://tracing, inspect with tools/dqr_trace). Benches get it via
// `--trace <path>` / `--trace=<path>` through InitBenchJson(argc, argv),
// or via the DQR_BENCH_TRACE environment variable.
void InitBenchTrace(const std::string& path);
void InitBenchTrace(int argc, char** argv);
// The shared per-binary Trace; null when tracing is disabled. Benches
// that build RefineOptions by hand attach it as `options.trace`.
obs::Trace* BenchTrace();
// Writes/rewrites the configured trace file now (no-op when disabled);
// also registered via atexit, so explicit calls are optional.
void WriteBenchTrace();

// --- per-query profiling (DESIGN.md §12) ---
// Attaches an obs::Profile to every Run() in this binary and rewrites
// `path` with the profile JSON of the most recent run after each query
// (inspect with tools/dqr_profile; partial output survives an abort).
// Benches get it via `--profile <path>` / `--profile=<path>` through
// InitBenchJson(argc, argv), or via the DQR_BENCH_PROFILE environment
// variable. Profiling is answer-preserving (the fuzz campaign's
// `profile` dimension proves it), so enabling it never changes a
// bench's byte-compared legs.
void InitBenchProfile(const std::string& path);
// The shared per-binary Profile; null when profiling is disabled.
// Benches that build RefineOptions by hand attach it as
// `options.profile`.
obs::Profile* BenchProfile();
// Writes/rewrites the configured profile file now (no-op when disabled).
void WriteBenchProfile();

// Appends one record and rewrites the configured file as a JSON array, so
// partial output survives an aborted run (`BENCH_*.json` perf trajectory).
void RecordJson(const JsonRecord& record);

// A fixed-width table printer with a title and a trailing note.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqr::bench

#endif  // DQR_BENCH_BENCH_COMMON_H_
