// bench_session: correlated-session replay, cold vs warm semantic cache.
//
// Replays seeded interactive exploration sessions (tighten/relax/shift
// mutations around one base query, heavy on revisits — the access pattern
// DESIGN.md "Cross-query semantic cache" targets) twice: once per-query
// cold, once through a warm SemanticCache. Every step's canonical result
// set must be byte-identical across legs; the headline number is the
// warm-over-cold wall-clock speedup (target >= 5x: exact hits and
// subsumption skip execution entirely, the shared bounds memo skips the
// per-miss synopsis estimate cost on the steps that do execute).
//
//   bench_session [--min-speedup=X] [--json <path>]
//
// DQR_BENCH_COST_NS sets the artificial per-miss estimate cost (default
// 1500 ns, the same knob the overhead benches use). Exit 1 on any
// cross-leg mismatch, or when the measured speedup falls below
// --min-speedup (default 0 = report only).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/semantic_cache.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "testing/generator.h"

namespace {

using dqr::bench::BenchEnv;
using dqr::bench::JsonRecord;
using dqr::bench::JsonStr;
using dqr::bench::RecordJson;
using dqr::bench::TablePrinter;
using dqr::fuzz::EngineConfig;
using dqr::fuzz::FuzzMode;
using dqr::fuzz::MakeSession;
using dqr::fuzz::QuerySession;
using dqr::fuzz::SessionMutation;
using dqr::fuzz::SessionPlan;
using dqr::fuzz::Workload;
using dqr::fuzz::WorkloadOverrides;

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A slider-nudging exploration loop: the user tightens in on a region,
// re-runs while tweaking the view, occasionally relaxes or pans, and
// keeps revisiting queries already asked.
SessionPlan InteractivePlan() {
  SessionPlan plan;
  plan.steps = {
      SessionMutation::kTighten, SessionMutation::kRepeat,
      SessionMutation::kTighten, SessionMutation::kRepeat,
      SessionMutation::kRepeat,  SessionMutation::kRelax,
      SessionMutation::kRepeat,  SessionMutation::kShift,
      SessionMutation::kRepeat,  SessionMutation::kTighten,
      SessionMutation::kRepeat,  SessionMutation::kRepeat,
  };
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  dqr::bench::InitBenchJson(argc, argv);
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    }
  }

  const BenchEnv env = BenchEnv::FromEnv();
  WorkloadOverrides overrides;
  overrides.cost_ns = env.estimate_cost_ns;
  const SessionPlan plan = InteractivePlan();
  const EngineConfig config;  // sequential baseline: stable timings

  constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6};
  double cold_total_s = 0.0;
  double warm_total_s = 0.0;
  int64_t steps = 0;
  int64_t mismatches = 0;
  dqr::cache::SemanticCache::Stats agg;

  TablePrinter table("bench_session: warm semantic cache vs per-query cold",
                     {"seed", "steps", "cold s", "warm s", "speedup",
                      "cache trail"});

  for (const uint64_t seed : kSeeds) {
    const FuzzMode mode =
        seed % 2 == 0 ? FuzzMode::kConstrain : FuzzMode::kRelax;
    const bool grid = seed % 3 == 0;
    const QuerySession cold =
        MakeSession(seed, mode, plan, overrides, grid);
    dqr::cache::SemanticCache sem;
    const QuerySession warm =
        MakeSession(seed, mode, plan, overrides, grid, &sem.memo(),
                    sem.MemoSpace(cold.dataset_id));

    double cold_s = 0.0;
    double warm_s = 0.0;
    std::string trail;
    for (size_t i = 0; i < cold.steps.size(); ++i) {
      const Workload& cw = cold.steps[i];
      const Workload& ww = warm.steps[i];

      double t0 = NowS();
      const auto cold_run =
          dqr::core::ExecuteQuery(cw.query, config.ToOptions(cw, nullptr));
      cold_s += NowS() - t0;
      if (!cold_run.ok()) {
        std::fprintf(stderr, "bench_session: cold error: %s\n",
                     cold_run.status().ToString().c_str());
        return 1;
      }

      dqr::cache::CachedQuery cq;
      cq.query = ww.query;
      cq.dataset_id = cold.dataset_id;
      cq.function_ids = ww.function_ids;
      dqr::cache::CacheOutcome outcome = dqr::cache::CacheOutcome::kMiss;
      t0 = NowS();
      const auto warm_run = dqr::cache::ExecuteQueryCached(
          &sem, cq, config.ToOptions(ww, nullptr), &outcome);
      warm_s += NowS() - t0;
      if (!warm_run.ok()) {
        std::fprintf(stderr, "bench_session: warm error: %s\n",
                     warm_run.status().ToString().c_str());
        return 1;
      }

      if (!trail.empty()) trail += ',';
      trail += dqr::cache::CacheOutcomeName(outcome);
      ++steps;
      if (dqr::core::Canonicalize(cold_run.value().results) !=
          dqr::core::Canonicalize(warm_run.value().results)) {
        ++mismatches;
        std::fprintf(stderr,
                     "bench_session: MISMATCH seed %llu step %zu (%s)\n",
                     static_cast<unsigned long long>(seed), i,
                     cw.summary.c_str());
      }
    }
    cold_total_s += cold_s;
    warm_total_s += warm_s;
    const dqr::cache::SemanticCache::Stats s = sem.stats();
    agg.exact_hits += s.exact_hits;
    agg.subsume_hits += s.subsume_hits;
    agg.warm_starts += s.warm_starts;
    agg.misses += s.misses;

    char cold_buf[32];
    char warm_buf[32];
    char speed_buf[32];
    std::snprintf(cold_buf, sizeof(cold_buf), "%.3f", cold_s);
    std::snprintf(warm_buf, sizeof(warm_buf), "%.3f", warm_s);
    std::snprintf(speed_buf, sizeof(speed_buf), "%.1fx",
                  warm_s > 0 ? cold_s / warm_s : 0.0);
    table.AddRow({std::to_string(seed),
                  std::to_string(cold.steps.size()), cold_buf, warm_buf,
                  speed_buf, trail});
  }

  const double speedup =
      warm_total_s > 0 ? cold_total_s / warm_total_s : 0.0;
  table.Print();
  std::printf(
      "total: cold %.3fs warm %.3fs speedup %.1fx over %lld steps "
      "(exact %lld, subsume %lld, warm-start %lld, miss %lld)\n",
      cold_total_s, warm_total_s, speedup, static_cast<long long>(steps),
      static_cast<long long>(agg.exact_hits),
      static_cast<long long>(agg.subsume_hits),
      static_cast<long long>(agg.warm_starts),
      static_cast<long long>(agg.misses));

  JsonRecord record;
  record.name = "bench_session";
  record.config = {
      {"seeds", std::to_string(std::size(kSeeds))},
      {"steps_per_session", std::to_string(plan.steps.size() + 1)},
      {"cost_ns", std::to_string(env.estimate_cost_ns)},
      {"plan", JsonStr(plan.ToString())},
  };
  record.seconds = warm_total_s;
  record.results = {
      {"cold_s", std::to_string(cold_total_s)},
      {"warm_s", std::to_string(warm_total_s)},
      {"speedup", std::to_string(speedup)},
      {"steps", std::to_string(steps)},
      {"mismatches", std::to_string(mismatches)},
      {"exact_hits", std::to_string(agg.exact_hits)},
      {"subsume_hits", std::to_string(agg.subsume_hits)},
      {"warm_starts", std::to_string(agg.warm_starts)},
      {"misses", std::to_string(agg.misses)},
  };
  RecordJson(record);

  if (mismatches > 0) {
    std::fprintf(stderr, "bench_session: %lld mismatches\n",
                 static_cast<long long>(mismatches));
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_session: speedup %.2fx below target %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
