// Reproduces Table 7 of the paper: speculative relaxation (§4.2) —
// additional solvers replay recorded fails while the main search is still
// running and the validators are idle. Expected shape: markedly earlier
// first results for some queries, at some completion-time cost (the
// speculative solver competes for CPU).
//
// Paper: On:  S-LOS 128(7)   M-LOS 90(45)  S-SEL 115(2)  M-SEL 152(47)
//        Off: S-LOS 105(90)  M-LOS 91(45)  S-SEL 97(42)  M-SEL 150(45)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 7: query completion and first-result times (secs) for "
      "speculative relaxation",
      {"Speculation", "S-LOS", "M-LOS", "S-SEL", "M-SEL"});

  const data::QueryKind kinds[] = {
      data::QueryKind::kSLos, data::QueryKind::kMLos,
      data::QueryKind::kSSel, data::QueryKind::kMSel};

  std::vector<std::string> on_row = {"On"};
  std::vector<std::string> off_row = {"Off"};
  for (const data::QueryKind kind : kinds) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    core::RefineOptions on = AutoOptions(env);
    on.speculative = true;
    core::RefineOptions off = AutoOptions(env);
    off.speculative = false;

    const RunOutcome r_on = Run(query, on);
    const RunOutcome r_off = Run(query, off);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%s(%s)", Secs(r_on.total_s).c_str(),
                  Secs(r_on.first_s).c_str());
    on_row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%s(%s)",
                  Secs(r_off.total_s).c_str(),
                  Secs(r_off.first_s).c_str());
    off_row.push_back(cell);
    std::printf("[%s] speculative replays: %lld\n",
                data::QueryKindName(kind),
                static_cast<long long>(r_on.stats.speculative_replays));
  }

  table.AddRow(on_row);
  table.AddRow(off_row);
  table.AddRow({"On(paper)", "128(7)", "90(45)", "115(2)", "152(47)"});
  table.AddRow({"Off(paper)", "105(90)", "91(45)", "97(42)", "150(45)"});
  table.Print();
  return 0;
}
