// Reproduces the "additional experiments" of §5.3:
//   (a) sorting the Validator candidate queue on BRP instead of FIFO —
//       the paper saw 8-12% faster completion for some queries at larger
//       cardinalities;
//   (b) replaying fails in encounter order (FIFO, i.e. "searching through
//       the fail") instead of best-BRP-first — the paper saw slowdowns of
//       up to several orders of magnitude (S-LOS: 105 s -> 56 min).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  // (a) Validator queue order, at k = 10 and a larger k. BRP sorting pays
  // off when validation is the bottleneck (the paper's Validators lag
  // behind the Solvers on disk-resident data): better candidates validate
  // first, MRP shrinks sooner, and more of the remaining queue is dropped
  // by the BRP pre-check before touching the base data. Emulate
  // disk-resident base data with a per-chunk access cost.
  TablePrinter queue_table(
      "Extra (a): validator queue order, completion times (secs) and "
      "validations; paper: BRP sorting gains 8-12% for some queries",
      {"Query", "k", "FIFO", "BRP-sorted", "FIFO valid.", "BRP valid."});
  struct QueueConfig {
    data::QueryKind kind;
    std::vector<int64_t> ks;
  };
  const QueueConfig queue_configs[] = {
      {data::QueryKind::kSLos, {10, 100}},
      {data::QueryKind::kMLos, {100}},
  };
  for (const QueueConfig& config : queue_configs) {
    const data::QueryKind kind = config.kind;
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    bundle.array->set_chunk_access_cost_ns(10000);
    for (const int64_t k : config.ks) {
      data::QueryTuning tuning;
      tuning.k = k;
      tuning.estimate_cost_ns = env.estimate_cost_ns;
      const searchlight::QuerySpec query =
          data::MakeQuery(bundle, kind, tuning);

      core::RefineOptions fifo = AutoOptions(env);
      fifo.validator_queue = core::ValidatorQueueOrder::kFifo;
      core::RefineOptions brp = AutoOptions(env);
      brp.validator_queue = core::ValidatorQueueOrder::kBrpPriority;

      const RunOutcome r_fifo = Run(query, fifo);
      const RunOutcome r_brp = Run(query, brp);
      queue_table.AddRow({data::QueryKindName(kind), std::to_string(k),
                          Secs(r_fifo.total_s, !r_fifo.completed),
                          Secs(r_brp.total_s, !r_brp.completed),
                          std::to_string(r_fifo.stats.validated),
                          std::to_string(r_brp.stats.validated)});
    }
    bundle.array->set_chunk_access_cost_ns(0);
  }
  queue_table.Print();

  // (b) Replay order: best-first vs encounter order.
  TablePrinter replay_table(
      "Extra (b): replay order, completion times (secs); paper: FIFO "
      "replays blew S-LOS up from 105 s to 56 min",
      {"Query", "Best-first", "FIFO", "FIFO replays"});
  for (const data::QueryKind kind :
       {data::QueryKind::kSLos, data::QueryKind::kMLos}) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    core::RefineOptions best = AutoOptions(env);
    best.replay_order = core::ReplayOrder::kBestFirst;
    core::RefineOptions fifo = AutoOptions(env);
    fifo.replay_order = core::ReplayOrder::kFifo;
    fifo.time_budget_s = env.timeout_s * 4;

    const RunOutcome r_best = Run(query, best);
    const RunOutcome r_fifo = Run(query, fifo);
    replay_table.AddRow(
        {data::QueryKindName(kind), Secs(r_best.total_s, !r_best.completed),
         r_fifo.completed ? Secs(r_fifo.total_s)
                          : Secs(fifo.time_budget_s, true),
         std::to_string(r_fifo.stats.replays)});
  }
  replay_table.Print();
  return 0;
}
