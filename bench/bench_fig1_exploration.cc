// Reproduces the Figure 1 scenario of the paper's introduction: manual
// exploration of the ABP waveform. The user's original query returns
// nothing; their over-relaxed retry floods them with overlapping
// intervals; a tightened retry finally returns a workable set. The
// automatic framework reaches a top-k answer in a single run.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Figure 1 scenario: exploring the ABP waveform (result "
      "cardinalities per manual iteration)",
      {"Iteration", "Query", "Results", "Time (s)"});

  const core::RefineOptions manual = ManualOptions(env);

  // Top band: the original, over-constrained query.
  data::QueryTuning original;
  original.k = env.k;
  original.estimate_cost_ns = env.estimate_cost_ns;
  const RunOutcome top =
      Run(data::MakeQuery(wave, data::QueryKind::kMLos, original), manual);
  table.AddRow({"1 (original)", "avg in [150,200], contrast >= 122",
                std::to_string(top.results), Secs(top.total_s)});

  // Middle band: over-relaxed, an avalanche of overlapping intervals.
  data::QueryTuning over;
  over.k = env.k;
  over.estimate_cost_ns = env.estimate_cost_ns;
  over.relax_fraction = 0.8;
  const RunOutcome middle =
      Run(data::MakeQuery(wave, data::QueryKind::kMLos, over), manual);
  table.AddRow({"2 (over-relaxed)", "bounds widened by 80%",
                middle.completed ? std::to_string(middle.results)
                                 : std::to_string(middle.results) + "+",
                Secs(middle.total_s, !middle.completed)});

  // Bottom band: tightened again to a workable set.
  data::QueryTuning tightened;
  tightened.k = env.k;
  tightened.estimate_cost_ns = env.estimate_cost_ns;
  tightened.relax_fraction = 0.3;
  const RunOutcome bottom =
      Run(data::MakeQuery(wave, data::QueryKind::kMLos, tightened),
          manual);
  table.AddRow({"3 (tightened)", "bounds widened by 30%",
                std::to_string(bottom.results), Secs(bottom.total_s)});
  table.Print();

  // The automatic alternative: one run, top-k by relaxation penalty.
  data::QueryTuning auto_tuning;
  auto_tuning.k = env.k;
  auto_tuning.estimate_cost_ns = env.estimate_cost_ns;
  const RunOutcome auto_run = Run(
      data::MakeQuery(wave, data::QueryKind::kMLos, auto_tuning),
      AutoOptions(env));
  std::printf(
      "\nAutomatic refinement: %zu results in %s (vs %s over three manual "
      "iterations)\n",
      auto_run.results, Secs(auto_run.total_s).c_str(),
      Secs(top.total_s + middle.total_s + bottom.total_s,
           !middle.completed)
          .c_str());
  return 0;
}
