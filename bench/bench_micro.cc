// Micro-benchmarks of the refinement hot paths (google-benchmark):
// synopsis interval queries, penalty/rank computation, skyline dominance,
// fail registry operations, and candidate queue operations.

#include <benchmark/benchmark.h>

#include "core/fail_registry.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "core/skyline.h"
#include "data/queries.h"
#include "searchlight/candidate_queue.h"

namespace dqr {
namespace {

const data::DatasetBundle& Bundle() {
  static const data::DatasetBundle* bundle = [] {
    auto result = data::MakeSyntheticDataset(1 << 18, 42);
    return new data::DatasetBundle(std::move(result).value());
  }();
  return *bundle;
}

void BM_SynopsisAvgBounds(benchmark::State& state) {
  const auto& synopsis = *Bundle().synopsis;
  int64_t pos = 0;
  const int64_t span = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synopsis.AvgBounds(pos, pos + span));
    pos = (pos + 4097) % ((1 << 18) - span);
  }
}
BENCHMARK(BM_SynopsisAvgBounds)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SynopsisMaxBounds(benchmark::State& state) {
  const auto& synopsis = *Bundle().synopsis;
  int64_t pos = 0;
  const int64_t span = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synopsis.MaxBounds(pos, pos + span));
    pos = (pos + 4097) % ((1 << 18) - span);
  }
}
BENCHMARK(BM_SynopsisMaxBounds)->Arg(16)->Arg(1024)->Arg(65536);

void BM_PenaltyBestPenalty(benchmark::State& state) {
  const searchlight::QuerySpec query =
      data::MakeQuery(Bundle(), data::QueryKind::kSSel, {});
  const core::PenaltyModel model =
      core::BuildPenaltyModel(query, 0.5).value();
  const std::vector<Interval> estimates = {
      Interval(120, 140), Interval(10, 60), Interval(90, 150)};
  const std::vector<char> known = {1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.BestPenalty(estimates, known));
  }
}
BENCHMARK(BM_PenaltyBestPenalty);

void BM_RankBestRank(benchmark::State& state) {
  const searchlight::QuerySpec query =
      data::MakeQuery(Bundle(), data::QueryKind::kSSel, {});
  const core::RankModel model = core::BuildRankModel(query).value();
  const std::vector<Interval> estimates = {
      Interval(150, 190), Interval(100, 180), Interval(90, 150)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.BestRank(estimates));
  }
}
BENCHMARK(BM_RankBestRank);

void BM_SkylineDominanceCheck(benchmark::State& state) {
  core::Skyline skyline;
  for (int i = 0; i < state.range(0); ++i) {
    core::SkylineEntry entry;
    entry.oriented = {static_cast<double>(i),
                      static_cast<double>(state.range(0) - i), 1.0};
    skyline.Add(std::move(entry));
  }
  const std::vector<double> corner = {state.range(0) / 2.0,
                                      state.range(0) / 2.0, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyline.DominatesBox(corner));
  }
}
BENCHMARK(BM_SkylineDominanceCheck)->Arg(8)->Arg(64)->Arg(512);

void BM_FailRegistryRecordPop(benchmark::State& state) {
  const bool best_first = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    core::FailRegistry registry(best_first ? core::ReplayOrder::kBestFirst
                                           : core::ReplayOrder::kFifo,
                                1 << 20);
    state.ResumeTiming();
    for (int i = 0; i < 1024; ++i) {
      core::FailRecord record;
      record.box = {cp::IntDomain(i, i + 1), cp::IntDomain(0, 8)};
      record.estimates = {Interval(0, 1)};
      record.evaluated = {1};
      record.brp = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
      registry.Record(std::move(record), 1.0);
    }
    while (registry.Pop(1.0).has_value()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FailRegistryRecordPop)->Arg(0)->Arg(1);

void BM_CandidateQueuePushPop(benchmark::State& state) {
  const bool priority = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    searchlight::CandidateQueue queue(
        priority ? searchlight::CandidateQueue::Order::kPriority
                 : searchlight::CandidateQueue::Order::kFifo,
        4096);
    state.ResumeTiming();
    for (int i = 0; i < 1024; ++i) {
      searchlight::Candidate c;
      c.point = {i, 8};
      c.priority = static_cast<double>((i * 48271) % 997);
      queue.Push(std::move(c));
    }
    for (int i = 0; i < 1024; ++i) {
      queue.Pop();
      queue.FinishedCurrent();
    }
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_CandidateQueuePushPop)->Arg(0)->Arg(1);

}  // namespace
}  // namespace dqr

BENCHMARK_MAIN();
