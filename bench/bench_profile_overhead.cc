// Measures the cost of per-query profiling (DESIGN.md §12): the same
// query run with RefineOptions::profile unset (the baseline — assembly
// code paths exist but are gated behind a null check) vs attached (the
// engine records steal/bound latencies, the validator feeds the
// estimator-accuracy ledger, and the profile is assembled from the
// flight-recorder rings after the run).
//
// Answers must be byte-identical across legs — profiling is
// observe-only by contract (the fuzz campaign's `profile` dimension
// proves it at scale; this bench re-checks it on every iteration and
// exits 1 on a mismatch).
//
// Controlled runs show the profiled leg within ~2% of baseline; the CI
// gate (--max-overhead) is deliberately looser because shared runners
// are too noisy for a tight wall-clock threshold.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "obs/profile.h"

namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dqr;
  using namespace dqr::bench;

  InitBenchJson(argc, argv);
  double max_overhead = 1.30;  // ratio gate: profiled p50 / baseline p50
  int iters = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      max_overhead = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    }
  }

  const BenchEnv env = BenchEnv::FromEnv();
  const auto wave = WaveBundle(env);
  data::QueryTuning tuning;
  tuning.k = env.k;
  tuning.estimate_cost_ns = env.estimate_cost_ns;
  tuning.relax_fraction = FractionsFor(data::QueryKind::kSLos).correct;
  const searchlight::QuerySpec query =
      data::MakeQuery(wave, data::QueryKind::kSLos, tuning);
  core::RefineOptions options = AutoOptions(env);

  // Warm-up: page in the dataset and synopsis before timing anything.
  {
    auto warm = core::ExecuteQuery(query, options);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm-up failed: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
  }

  std::vector<double> off_s, on_s;
  std::string baseline_answer;
  int64_t accuracy_samples = 0;
  for (int i = 0; i < iters; ++i) {
    auto off = core::ExecuteQuery(query, options);
    if (!off.ok()) {
      std::fprintf(stderr, "baseline run failed: %s\n",
                   off.status().ToString().c_str());
      return 1;
    }
    off_s.push_back(off.value().stats.total_s);
    const std::string off_canonical =
        core::Canonicalize(off.value().results);
    if (baseline_answer.empty()) baseline_answer = off_canonical;

    obs::Profile profile;
    core::RefineOptions profiled = options;
    profiled.profile = &profile;
    auto on = core::ExecuteQuery(query, profiled);
    if (!on.ok()) {
      std::fprintf(stderr, "profiled run failed: %s\n",
                   on.status().ToString().c_str());
      return 1;
    }
    on_s.push_back(on.value().stats.total_s);
    const std::string on_canonical =
        core::Canonicalize(on.value().results);
    if (off_canonical != baseline_answer ||
        on_canonical != baseline_answer) {
      std::fprintf(stderr,
                   "ANSWER MISMATCH at iteration %d: profiling must be "
                   "observe-only\n",
                   i);
      return 1;
    }
    if (profile.query().root.children.empty() ||
        profile.query().stats.query_latency.empty()) {
      std::fprintf(stderr,
                   "profiled run produced an empty profile at iteration "
                   "%d\n",
                   i);
      return 1;
    }
    accuracy_samples =
        profile.query().stats.estimator_accuracy.total_samples();
  }

  const double p50_off = Median(off_s);
  const double p50_on = Median(on_s);
  const double ratio = p50_off > 0.0 ? p50_on / p50_off : 1.0;

  TablePrinter table("Profiling overhead (S-LOS, " +
                         std::to_string(iters) + " iterations)",
                     {"Leg", "p50", "min"});
  table.AddRow({"profile off", Secs(p50_off),
                Secs(*std::min_element(off_s.begin(), off_s.end()))});
  table.AddRow({"profile on", Secs(p50_on),
                Secs(*std::min_element(on_s.begin(), on_s.end()))});
  table.Print();
  std::printf("overhead: %.2f%% (gate %.0f%%), accuracy samples: %lld\n",
              (ratio - 1.0) * 100.0, (max_overhead - 1.0) * 100.0,
              static_cast<long long>(accuracy_samples));

  JsonRecord record;
  record.name = "profile_overhead";
  record.config.emplace_back("iters", std::to_string(iters));
  record.seconds = p50_on;
  record.results.emplace_back("p50_off_s", std::to_string(p50_off));
  record.results.emplace_back("p50_on_s", std::to_string(p50_on));
  record.results.emplace_back("overhead_ratio", std::to_string(ratio));
  record.results.emplace_back("accuracy_samples",
                              std::to_string(accuracy_samples));
  RecordJson(record);

  if (ratio > max_overhead) {
    std::fprintf(stderr, "FAIL: overhead ratio %.3f exceeds %.3f\n",
                 ratio, max_overhead);
    return 1;
  }
  return 0;
}
