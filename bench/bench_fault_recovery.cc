// Cost of the instance-failure model (DESIGN.md §7), two experiments:
//
//   * zero-fault overhead — the production posture (heartbeat threads +
//     failure detector + shard leases) against the same run with the
//     detector off. The paper's contract is that fault tolerance is
//     effectively free until a fault happens; the budget here is < 2%.
//   * time-to-recover — one instance is crashed mid-run by a seeded fault
//     plan; the extra wall time over the fault-free run bounds detection
//     (the lease timeout) plus re-execution of the lost work. The result
//     set must be byte-identical to the fault-free run.
//
// Accepts --json <path> (or DQR_BENCH_JSON) for machine-readable records.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "array/array.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/fault.h"
#include "searchlight/functions.h"
#include "searchlight/query.h"
#include "synopsis/synopsis.h"

namespace {

using namespace dqr;
using namespace dqr::bench;

struct BenchBundle {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<synopsis::Synopsis> synopsis;
};

// Busy signal: plateaus and spikes spread over the whole array so every
// shard carries real work and all instances stay active — overhead and
// recovery are measured against a genuinely parallel baseline.
BenchBundle MakeBenchBundle(int64_t n) {
  Rng rng(19);
  std::vector<double> data(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double v = 100.0 + 2.0 * rng.NextGaussian();
    if ((i / 256) % 3 == 0) v += 42.0;  // recurring plateaus
    data[static_cast<size_t>(i)] = v;
  }
  for (int64_t i = 48; i < n; i += 512) {  // spikes for the contrast UDF
    for (int64_t j = i; j < i + 3 && j < n; ++j) {
      data[static_cast<size_t>(j)] += 55.0;
    }
  }
  for (double& v : data) v = std::clamp(v, 50.0, 250.0);

  array::ArraySchema schema;
  schema.name = "fault_bench";
  schema.length = n;
  schema.chunk_size = 256;
  BenchBundle bundle;
  bundle.array = array::Array::FromData(schema, std::move(data)).value();
  bundle.synopsis =
      synopsis::Synopsis::Build(*bundle.array,
                                synopsis::SynopsisOptions{{256, 32}, 32})
          .value();
  return bundle;
}

searchlight::QuerySpec MakeBenchQuery(const BenchBundle& bundle, int64_t k,
                                      int64_t cost_ns) {
  searchlight::QuerySpec query;
  query.name = "fault_bench";
  query.k = k;
  const int64_t n = bundle.array->length();
  constexpr int64_t kNbhd = 8;
  constexpr int64_t kLenHi = 12;
  query.domains = {cp::IntDomain(kNbhd, n - kLenHi - kNbhd - 1),
                   cp::IntDomain(4, kLenHi)};

  searchlight::WindowFunctionContext ctx;
  ctx.array = bundle.array;
  ctx.synopsis = bundle.synopsis;
  ctx.x_var = 0;
  ctx.len_var = 1;
  // CPU-bound (spinning) miss cost: long enough runs that the few extra
  // microseconds per second of beat-thread wakeups are resolvable against
  // timer and scheduler noise.
  ctx.estimate_cost_ns = cost_ns;

  {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext avg_ctx = ctx;
    avg_ctx.value_range = Interval(50, 250);
    c.make_function = [avg_ctx] {
      return std::make_unique<searchlight::AvgFunction>(avg_ctx);
    };
    c.bounds = Interval(138, 170);  // straddles the plateaus: deep trees
    c.name = "avg";
    query.constraints.push_back(std::move(c));
  }
  for (const auto side :
       {searchlight::NeighborhoodContrastFunction::Side::kLeft,
        searchlight::NeighborhoodContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext con_ctx = ctx;
    con_ctx.value_range = Interval(0, 200);
    const int64_t width = kNbhd;
    c.make_function = [con_ctx, side, width] {
      return std::make_unique<searchlight::NeighborhoodContrastFunction>(
          con_ctx, side, width);
    };
    c.bounds = Interval(25.0, std::numeric_limits<double>::infinity());
    c.relaxable = true;
    query.constraints.push_back(std::move(c));
  }
  return query;
}

std::string Points(const std::vector<core::Solution>& results) {
  std::string out;
  for (const core::Solution& s : results) out += s.ToString();
  return out;
}

core::RunResult RunOnce(const searchlight::QuerySpec& query,
                        const core::RefineOptions& options) {
  auto run = core::ExecuteQuery(query, options);
  DQR_CHECK_MSG(run.ok(), run.status().ToString().c_str());
  return std::move(run).value();
}

// Runs both configurations back to back each rep, alternating which goes
// first, and keeps each one's *fastest* run: scheduler noise only ever
// adds time, so the min isolates the systematic difference between the
// configurations far better than a median does on a busy host.
std::pair<double, double> BestPair(const searchlight::QuerySpec& query,
                                   const core::RefineOptions& a,
                                   const core::RefineOptions& b, int reps) {
  double ta = std::numeric_limits<double>::infinity();
  double tb = ta;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      ta = std::min(ta, RunOnce(query, a).stats.total_s);
      tb = std::min(tb, RunOnce(query, b).stats.total_s);
    } else {
      tb = std::min(tb, RunOnce(query, b).stats.total_s);
      ta = std::min(ta, RunOnce(query, a).stats.total_s);
    }
  }
  return {ta, tb};
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::FromEnv();
  const int64_t n = std::max<int64_t>(
      1 << 13, std::min<int64_t>(env.synth_length, 1 << 18));
  const BenchBundle bundle = MakeBenchBundle(n);
  const int instances = std::max(2, env.num_instances);
  const searchlight::QuerySpec query =
      MakeBenchQuery(bundle, env.k, env.estimate_cost_ns);
  constexpr int kReps = 13;

  core::RefineOptions base;
  base.num_instances = instances;
  base.shards_per_instance = 8;

  // ---- Experiment 1: zero-fault heartbeat/detector overhead -----------
  {
    core::RefineOptions guarded = base;
    guarded.enable_failure_detector = true;

    const auto [off_s, on_s] = BestPair(query, base, guarded, kReps);
    const double overhead_pct = off_s > 0 ? (on_s - off_s) / off_s * 100.0
                                          : 0.0;

    TablePrinter table(
        "Failure-model overhead, zero faults (" +
            std::to_string(instances) + " instances, best of " +
            std::to_string(kReps) + ")",
        {"detector", "total_s", "overhead_%"});
    table.AddRow({"off", Secs(off_s), "-"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", overhead_pct);
    table.AddRow({"on", Secs(on_s), buf});
    table.Print();
    std::printf("  budget: < 2%% — heartbeats are one relaxed atomic store"
                " per interval per instance.\n\n");

    JsonRecord record;
    record.name = "bench_fault_recovery/heartbeat_overhead";
    record.config = {
        {"instances", std::to_string(instances)},
        {"heartbeat_interval_us",
         std::to_string(guarded.heartbeat_interval_us)},
        {"reps", std::to_string(kReps)},
    };
    record.seconds = on_s;
    record.results = {
        {"baseline_s", std::to_string(off_s)},
        {"overhead_pct", std::to_string(overhead_pct)},
        {"budget_pct", "2"},
    };
    RecordJson(record);
  }

  // ---- Experiment 2: time to recover one lost instance ----------------
  {
    const core::RunResult fault_free = RunOnce(query, base);

    core::FaultPlan plan;
    // Kill instance 1 a few shards into the main search — the detector
    // must notice via the lease timeout, requeue the in-flight shard and
    // redistribute the rest.
    plan.Crash(1, core::FaultSite::kShardPickup, 4);
    core::RefineOptions faulty = base;
    faulty.fault_plan = &plan;
    const core::RunResult recovered = RunOnce(query, faulty);

    const double recover_s =
        recovered.stats.total_s - fault_free.stats.total_s;
    const bool identical =
        Points(recovered.results) == Points(fault_free.results);
    DQR_CHECK(identical);
    DQR_CHECK(recovered.stats.instances_lost == 1);

    TablePrinter table(
        "Time to recover one instance lost mid-run (" +
            std::to_string(instances) + " instances)",
        {"run", "total_s", "lost", "requeued", "reclaimed"});
    table.AddRow({"fault-free", Secs(fault_free.stats.total_s), "0", "0",
                  "0"});
    table.AddRow({"1 crash", Secs(recovered.stats.total_s),
                  std::to_string(recovered.stats.instances_lost),
                  std::to_string(recovered.stats.shards_requeued),
                  std::to_string(recovered.stats.replays_reclaimed)});
    table.Print();
    std::printf("  recovery overhead %.3fs (detection bound: lease timeout"
                " %.3fs) — results byte-identical.\n",
                recover_s, faulty.lease_timeout_us / 1e6);

    JsonRecord record;
    record.name = "bench_fault_recovery/time_to_recover";
    record.config = {
        {"instances", std::to_string(instances)},
        {"lease_timeout_us", std::to_string(faulty.lease_timeout_us)},
        {"crash_site", JsonStr("shard_pickup@4")},
    };
    record.seconds = recovered.stats.total_s;
    record.results = {
        {"fault_free_s", std::to_string(fault_free.stats.total_s)},
        {"recovery_overhead_s", std::to_string(recover_s)},
        {"instances_lost", std::to_string(recovered.stats.instances_lost)},
        {"shards_requeued",
         std::to_string(recovered.stats.shards_requeued)},
        {"candidates_revalidated",
         std::to_string(recovered.stats.candidates_revalidated)},
        {"results_identical", identical ? "true" : "false"},
    };
    RecordJson(record);
  }
  return 0;
}
