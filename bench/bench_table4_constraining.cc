// Reproduces Table 4 of the paper: query completion times for query
// constraining. The queries are the maximally relaxed versions of the
// canned queries (they output far more than k results). "Off" runs the
// query to completion and would rank at the client (for the loose queries
// this exceeds the timeout, as the paper's 2h+ entries did); "Rank" uses
// the dynamic BRK >= MRK constraint; "Skyline" uses vector domination.
//
// Paper: Off:     S-LOS 2h 8m  M-LOS 2h 24m  S-SEL 120  M-SEL 240  M-SEL' 263
//        Rank:    S-LOS 60     M-LOS 154     S-SEL 29   M-SEL 139  M-SEL' 135
//        Skyline: S-LOS 314    M-LOS 13m     S-SEL 93   M-SEL 269  M-SEL' 218

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 4: query completion times (secs) for query constraining",
      {"Method", "S-LOS", "M-LOS", "S-SEL", "M-SEL", "M-SEL'"});

  const data::QueryKind kinds[] = {
      data::QueryKind::kSLos, data::QueryKind::kMLos,
      data::QueryKind::kSSel, data::QueryKind::kMSel,
      data::QueryKind::kMSelPrime};

  std::vector<std::string> off_row = {"Off"};
  std::vector<std::string> rank_row = {"Rank"};
  std::vector<std::string> sky_row = {"Skyline"};

  for (const data::QueryKind kind : kinds) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    tuning.relax_fraction = 1.0;  // maximally relaxed: many results
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    const RunOutcome off = Run(query, ManualOptions(env));

    core::RefineOptions rank = AutoOptions(env);
    rank.constrain = core::ConstrainMode::kRank;
    const RunOutcome r_rank = Run(query, rank);

    core::RefineOptions sky = AutoOptions(env);
    sky.constrain = core::ConstrainMode::kSkyline;
    const RunOutcome r_sky = Run(query, sky);

    off_row.push_back(off.completed ? Secs(off.total_s)
                                    : Secs(env.timeout_s, true));
    rank_row.push_back(Secs(r_rank.total_s, !r_rank.completed));
    sky_row.push_back(Secs(r_sky.total_s, !r_sky.completed));

    std::printf(
        "[%s] off=%zu results%s  rank: top-%zu (MRK prunes %lld nodes)  "
        "skyline: %zu members\n",
        data::QueryKindName(kind), off.results,
        off.completed ? "" : " (timed out)", r_rank.results,
        static_cast<long long>(r_rank.stats.main_search.monitor_prunes),
        r_sky.results);
  }

  table.AddRow(off_row);
  table.AddRow(rank_row);
  table.AddRow(sky_row);
  table.AddRow({"Off(paper)", "2h 8m", "2h 24m", "120", "240", "263"});
  table.AddRow({"Rank(paper)", "60", "154", "29", "139", "135"});
  table.AddRow({"Skyline(paper)", "314", "13m", "93", "269", "218"});
  table.Print();
  return 0;
}
