// Reproduces Figure 2 of the paper: the fail recording / replaying
// walk-through of the running MIMIC query. Part 1 recomputes the figure's
// numbers (fail BRPs, the MRP-driven interval tightening) through the
// library's PenaltyModel; part 2 runs a tiny end-to-end query and prints
// the recorded-fail/replay trace counters.

#include <cstdio>

#include "bench_common.h"
#include "core/model_builders.h"
#include "core/penalty.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  std::printf("Figure 2 walk-through (library-computed values)\n\n");

  // The running MIMIC query: c1 = avg in [150, 200] over [50, 250];
  // c2/c3 = contrast >= 80 over [0, 200]; alpha = 0.5, weights 1.
  const double inf = std::numeric_limits<double>::infinity();
  core::PenaltyModel model(
      {{Interval(150, 200), Interval(50, 250), 1.0, true},
       {Interval(80, inf), Interval(0, 200), 1.0, true},
       {Interval(80, inf), Interval(0, 200), 1.0, true}},
      0.5);
  const std::vector<char> known = {1, 1, 1};

  // Lower fail: c1 estimate [10, 110] (violated), c2 estimate [10, 60]
  // (violated); c3 satisfied.
  const std::vector<Interval> lower = {Interval(10, 110), Interval(10, 60),
                                       Interval(90, 150)};
  std::printf("  lower fail:  c1 in [10,110], c2 in [10,60]  ->  BRP = "
              "%.2f (paper: 0.53)\n",
              model.BestPenalty(lower, known));

  // Upper fail: only c2 violated.
  const std::vector<Interval> upper = {Interval(150, 200),
                                       Interval(10, 60), Interval(90, 150)};
  std::printf("  upper fail:  c2 in [10,60]              ->  BRP = %.2f "
              "(paper: 0.29)\n",
              model.BestPenalty(upper, known));

  // Tightening at replay: MRP = 0.5, VC = 2/3 -> RD <= 1/3, so c2's
  // recorded [10, 60] tightens to [53, 60].
  const double allowed = model.MaxAllowedDistance(0.5, 2.0 / 3.0);
  const Interval relaxed = model.RelaxedBounds(1, allowed);
  std::printf("  replay tightening at MRP = 0.5: RD <= %.2f, c2 relaxed "
              "to [%.0f, 60] (paper: [53, 60])\n\n",
              allowed, relaxed.lo);

  // Part 2: a small waveform query, tracing fail/replay counters.
  BenchEnv env = BenchEnv::FromEnv();
  env.wave_length = std::min<int64_t>(env.wave_length, 1 << 18);
  const auto wave = WaveBundle(env);
  data::QueryTuning tuning;
  tuning.k = env.k;
  const searchlight::QuerySpec query =
      data::MakeQuery(wave, data::QueryKind::kMSel, tuning);
  const RunOutcome run = Run(query, AutoOptions(env));

  std::printf("End-to-end trace on a %lld-cell waveform (M-SEL, k=%lld):\n",
              static_cast<long long>(env.wave_length),
              static_cast<long long>(env.k));
  std::printf("  main search: %lld nodes, %lld fails\n",
              static_cast<long long>(run.stats.main_search.nodes),
              static_cast<long long>(run.stats.main_search.fails));
  std::printf("  fails recorded %lld (discarded at record %lld, at pop "
              "%lld)\n",
              static_cast<long long>(run.stats.fails_recorded),
              static_cast<long long>(run.stats.fails_discarded_at_record),
              static_cast<long long>(run.stats.fails_discarded_at_pop));
  std::printf("  replays %lld (+%lld discarded), repeated fails %lld\n",
              static_cast<long long>(run.stats.replays),
              static_cast<long long>(run.stats.replays_discarded),
              static_cast<long long>(run.stats.fails_recorded -
                                     run.stats.main_search.fails));
  std::printf("  candidates %lld, validated %lld, pre-check drops %lld\n",
              static_cast<long long>(run.stats.candidates),
              static_cast<long long>(run.stats.validated),
              static_cast<long long>(run.stats.dropped_precheck));
  std::printf("  results: %zu (MRP updates %lld)\n", run.results,
              static_cast<long long>(run.stats.mrp_updates));
  return 0;
}
