// bench_concurrent: N concurrent query sessions, shared worker pool vs
// per-query thread spawning.
//
// The tentpole experiment for DESIGN.md §10: C client threads each run a
// stream of small refinement queries, once through the legacy engine
// (every query spawns its own solver/validator/heartbeat threads) and
// once through an EngineSession multiplexing all slots over one
// persistent WorkerPool + TimerWheel. Queries are deliberately small so
// the per-query thread spawn/join storm is the dominant cost — exactly
// the interactive-exploration regime the paper targets (many short
// queries, not one long scan). Every result is checked byte-identical to
// a precomputed serial baseline, so the speedup is never bought with a
// wrong answer.
//
//   bench_concurrent [--min-speedup8=X] [--max-single-regress=F]
//                    [--json <path>] [--trace <path>]
//
// Reports throughput (queries/s) and p50/p95 latency per concurrency
// level in {1, 2, 4, 8, 16}. Exit 1 on any result mismatch, when the
// pool-over-baseline throughput ratio at 8 concurrent clients falls
// below --min-speedup8, or when single-query (C=1) pool latency exceeds
// --max-single-regress times the baseline (defaults: report only).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "exec/engine_session.h"
#include "testing/generator.h"

namespace {

using dqr::bench::JsonRecord;
using dqr::bench::RecordJson;
using dqr::bench::TablePrinter;
using dqr::fuzz::EngineConfig;
using dqr::fuzz::FuzzMode;
using dqr::fuzz::MakeWorkload;
using dqr::fuzz::Workload;
using dqr::fuzz::WorkloadOverrides;

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kLevels[] = {1, 2, 4, 8, 16};
// Total queries per leg, split across the level's clients — every level
// does the same work, so throughput numbers are directly comparable.
constexpr int kQueriesPerLevel = 96;

struct LegResult {
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  int64_t mismatches = 0;
  int64_t errors = 0;
};

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

// Runs `kQueriesPerLevel` queries split over `clients` threads. With a
// session the queries multiplex over its pool; without one each query
// runs on freshly spawned legacy threads. `trace` (pool leg only)
// attaches the flight recorder to every query in the leg.
LegResult RunLeg(int clients, const std::vector<Workload>& workloads,
                 const std::vector<EngineConfig>& configs,
                 const std::vector<std::string>& baselines,
                 dqr::exec::EngineSession* session,
                 dqr::obs::Trace* trace) {
  LegResult out;
  const int per_client = kQueriesPerLevel / clients;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> errors{0};

  const double started = NowS();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& lats = latencies[static_cast<size_t>(c)];
      lats.reserve(static_cast<size_t>(per_client));
      for (int q = 0; q < per_client; ++q) {
        const size_t wi =
            static_cast<size_t>(c * per_client + q) % workloads.size();
        const Workload& workload = workloads[wi];
        dqr::core::RefineOptions options =
            configs[wi].ToOptions(workload, nullptr);
        if (trace != nullptr) {
          options.trace = trace;
          options.trace_buffer_events = 1 << 12;
        }
        const double t0 = NowS();
        const auto run =
            session != nullptr
                ? session->Execute(workload.query, options)
                : dqr::core::ExecuteQuery(workload.query, options);
        lats.push_back(NowS() - t0);
        if (!run.ok() || !run.value().stats.completed) {
          ++errors;
          continue;
        }
        if (dqr::core::Canonicalize(run.value().results) !=
            baselines[wi]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_s = NowS() - started;

  std::vector<double> all;
  all.reserve(static_cast<size_t>(clients * per_client));
  for (const std::vector<double>& lats : latencies) {
    all.insert(all.end(), lats.begin(), lats.end());
  }
  out.qps = out.wall_s > 0
                ? static_cast<double>(all.size()) / out.wall_s
                : 0.0;
  out.p50_ms = 1000.0 * Percentile(all, 0.50);
  out.p95_ms = 1000.0 * Percentile(all, 0.95);
  out.mismatches = mismatches.load();
  out.errors = errors.load();
  return out;
}

std::string Fmt(double v, const char* format = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  dqr::bench::InitBenchJson(argc, argv);
  double min_speedup8 = 0.0;
  double max_single_regress = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup8=", 15) == 0) {
      min_speedup8 = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--max-single-regress=", 21) == 0) {
      max_single_regress = std::atof(argv[i] + 21);
    }
  }

  // Small interactive queries over mixed shapes: spawn/join cost must be
  // a visible fraction of each query, as it is in exploration sessions.
  WorkloadOverrides overrides;
  overrides.length_cap = 64;
  overrides.max_constraints = 1;
  overrides.k_cap = 2;
  constexpr uint64_t kSeeds[] = {1, 2, 3, 5};
  std::vector<Workload> workloads;
  std::vector<EngineConfig> configs;
  std::vector<std::string> baselines;
  for (size_t i = 0; i < std::size(kSeeds); ++i) {
    const FuzzMode mode =
        i % 2 == 0 ? FuzzMode::kRelax : FuzzMode::kConstrain;
    workloads.push_back(MakeWorkload(kSeeds[i], mode, overrides));
    // Detector on, as deployed: legacy mode pays per-query heartbeat
    // threads (one per instance) plus a detector thread on top of the
    // solver/validator spawns; pool mode folds all of that into shared
    // timer-wheel beats, which is a big part of the win under test.
    EngineConfig config;
    config.num_instances = 4;
    config.shards_per_instance = 2;
    config.enable_failure_detector = true;
    configs.push_back(config);
    const auto run = dqr::core::ExecuteQuery(
        workloads[i].query, config.ToOptions(workloads[i], nullptr));
    if (!run.ok() || !run.value().stats.completed) {
      std::fprintf(stderr, "bench_concurrent: baseline run failed\n");
      return 1;
    }
    baselines.push_back(dqr::core::Canonicalize(run.value().results));
  }

  // One pool + wheel + session for all pool legs: that is the deployment
  // shape (a process-wide pool), and reusing it across levels is exactly
  // the warm-worker effect under test.
  // Slots are capped at half the pool's query capacity so every admitted
  // task lands on a warm worker — admission queueing is cheaper than
  // overflow thread spawns, which is the point of the slot discipline.
  dqr::exec::WorkerPool pool(16);
  dqr::exec::TimerWheel wheel;
  dqr::exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 2;
  dqr::exec::EngineSession session(session_options);

  TablePrinter table(
      "bench_concurrent: shared worker pool vs per-query threads",
      {"clients", "base qps", "pool qps", "speedup", "base p50/p95 ms",
       "pool p50/p95 ms"});

  int64_t mismatches = 0;
  int64_t errors = 0;
  double speedup8 = 0.0;
  double single_ratio = 0.0;
  std::vector<JsonRecord> records;
  for (const int clients : kLevels) {
    // Five interleaved repeats per leg, keeping each leg's best-qps run:
    // single-core scheduler noise at sub-millisecond query sizes dwarfs
    // the effect floor, and best-of gives both legs their least-disturbed
    // measurement.
    std::vector<LegResult> base_runs;
    std::vector<LegResult> pool_runs;
    for (int rep = 0; rep < 5; ++rep) {
      base_runs.push_back(
          RunLeg(clients, workloads, configs, baselines, nullptr, nullptr));
      pool_runs.push_back(RunLeg(clients, workloads, configs, baselines,
                                 &session, nullptr));
    }
    const auto best_run = [](std::vector<LegResult>* runs) {
      std::sort(runs->begin(), runs->end(),
                [](const LegResult& a, const LegResult& b) {
                  return a.qps < b.qps;
                });
      return runs->back();
    };
    LegResult base = best_run(&base_runs);
    LegResult pooled = best_run(&pool_runs);
    // Correctness counters aggregate over every repeat, not just the
    // median one — a wrong answer in any run fails the bench.
    base.mismatches = base.errors = 0;
    pooled.mismatches = pooled.errors = 0;
    for (const LegResult& r : base_runs) {
      base.mismatches += r.mismatches;
      base.errors += r.errors;
    }
    for (const LegResult& r : pool_runs) {
      pooled.mismatches += r.mismatches;
      pooled.errors += r.errors;
    }
    mismatches += base.mismatches + pooled.mismatches;
    errors += base.errors + pooled.errors;

    const double speedup =
        base.qps > 0 ? pooled.qps / base.qps : 0.0;
    if (clients == 8) speedup8 = speedup;
    if (clients == 1 && base.p50_ms > 0) {
      single_ratio = pooled.p50_ms / base.p50_ms;
    }
    table.AddRow({std::to_string(clients), Fmt(base.qps, "%.1f"),
                  Fmt(pooled.qps, "%.1f"), Fmt(speedup) + "x",
                  Fmt(base.p50_ms) + "/" + Fmt(base.p95_ms),
                  Fmt(pooled.p50_ms) + "/" + Fmt(pooled.p95_ms)});

    JsonRecord record;
    record.name = "bench_concurrent_c" + std::to_string(clients);
    record.config = {
        {"clients", std::to_string(clients)},
        {"queries", std::to_string(kQueriesPerLevel)},
        {"pool_threads", std::to_string(pool.thread_count())},
    };
    record.seconds = pooled.wall_s;
    record.results = {
        {"base_qps", std::to_string(base.qps)},
        {"pool_qps", std::to_string(pooled.qps)},
        {"speedup", std::to_string(speedup)},
        {"base_p50_ms", std::to_string(base.p50_ms)},
        {"base_p95_ms", std::to_string(base.p95_ms)},
        {"pool_p50_ms", std::to_string(pooled.p50_ms)},
        {"pool_p95_ms", std::to_string(pooled.p95_ms)},
        {"mismatches",
         std::to_string(base.mismatches + pooled.mismatches)},
    };
    records.push_back(record);
  }

  // A separate, untimed traced pass at the contended level: the emitted
  // trace shows slot multiplexing (one process group per query slot,
  // dqr_trace --check verifies integrity in CI) without the recorder's
  // ring bookkeeping distorting the measured legs above.
  if (dqr::obs::Trace* trace = dqr::bench::BenchTrace()) {
    const LegResult traced =
        RunLeg(8, workloads, configs, baselines, &session, trace);
    mismatches += traced.mismatches;
    errors += traced.errors;
  }

  table.Print();
  const dqr::exec::SessionStats stats = session.stats();
  std::printf(
      "pool: %d threads, %lld dispatched (%lld warm, %lld overflow); "
      "session: %lld admitted, %lld queued, peak %d slots\n",
      stats.pool.threads, static_cast<long long>(stats.pool.dispatched),
      static_cast<long long>(stats.pool.spawn_avoided),
      static_cast<long long>(stats.pool.overflow_spawns),
      static_cast<long long>(stats.queries_admitted),
      static_cast<long long>(stats.queries_queued), stats.peak_slots);
  std::printf("speedup at 8 clients: %.2fx; single-query p50 ratio "
              "(pool/base): %.2f\n",
              speedup8, single_ratio);

  for (const JsonRecord& record : records) RecordJson(record);

  if (mismatches > 0 || errors > 0) {
    std::fprintf(stderr,
                 "bench_concurrent: FAIL %lld mismatches, %lld errors\n",
                 static_cast<long long>(mismatches),
                 static_cast<long long>(errors));
    return 1;
  }
  if (min_speedup8 > 0 && speedup8 < min_speedup8) {
    std::fprintf(stderr,
                 "bench_concurrent: FAIL speedup at 8 clients %.2fx "
                 "below required %.2fx\n",
                 speedup8, min_speedup8);
    return 1;
  }
  if (max_single_regress > 0 && single_ratio > max_single_regress) {
    std::fprintf(stderr,
                 "bench_concurrent: FAIL single-query p50 ratio %.2f "
                 "above allowed %.2f\n",
                 single_ratio, max_single_regress);
    return 1;
  }
  return 0;
}
