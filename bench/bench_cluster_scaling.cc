// Ablation: simulated cluster width and broadcast latency. The paper ran
// a fixed 4-instance cluster; this sweeps the instance count and the
// MRP/MRK broadcast delay. Note: instances are threads sharing this
// machine's cores, so wall-clock scaling reflects the host — the
// interesting outputs are the per-instance work split and the robustness
// of the result (identical top-k regardless of width/latency).

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dqr;
  using namespace dqr::bench;

  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::FromEnv();
  env.wave_length = std::min<int64_t>(env.wave_length, 1 << 20);
  const auto wave = WaveBundle(env);

  data::QueryTuning tuning;
  tuning.k = env.k;
  const searchlight::QuerySpec query =
      data::MakeQuery(wave, data::QueryKind::kMSel, tuning);

  TablePrinter table(
      "Ablation: cluster width / broadcast latency (M-SEL, auto "
      "relaxation)",
      {"Instances", "Delay (us)", "Time (s)", "First (s)", "Nodes",
       "Results"});

  std::string reference_points;
  for (const int instances : {1, 2, 4, 8}) {
    for (const int64_t delay_us : {int64_t{0}, int64_t{2000}}) {
      core::RefineOptions options = AutoOptions(env);
      options.num_instances = instances;
      options.broadcast_delay_us = delay_us;
      auto run = core::ExecuteQuery(query, options);
      if (!run.ok()) continue;
      const core::RunResult& result = run.value();

      std::string points;
      for (const core::Solution& s : result.results) {
        points += s.ToString();
      }
      if (reference_points.empty()) reference_points = points;

      JsonRecord record;
      record.name = "bench_cluster_scaling/msel_auto";
      record.config = {{"instances", std::to_string(instances)},
                       {"broadcast_delay_us", std::to_string(delay_us)}};
      record.seconds = result.stats.total_s;
      record.results = {
          {"first_result_s", std::to_string(result.stats.first_result_s)},
          {"nodes", std::to_string(result.stats.main_search.nodes +
                                   result.stats.replay_search.nodes)},
          {"result_count", std::to_string(result.results.size())},
          {"results_identical",
           points == reference_points ? "true" : "false"},
      };
      RecordJson(record);

      table.AddRow({std::to_string(instances), std::to_string(delay_us),
                    Secs(result.stats.total_s),
                    Secs(result.stats.first_result_s),
                    std::to_string(result.stats.main_search.nodes +
                                   result.stats.replay_search.nodes),
                    points == reference_points
                        ? std::to_string(result.results.size()) + " (same)"
                        : std::to_string(result.results.size()) +
                              " (DIFFERENT!)"});
    }
  }
  table.Print();
  std::printf(
      "Every configuration must report \"same\": the refinement "
      "guarantees are independent of partitioning and broadcast "
      "latency.\n");
  return 0;
}
