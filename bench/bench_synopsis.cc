// Synopsis estimator microbenchmark: ns/query for the sparse-table kernel
// vs a replica of the pre-change estimator, swept over span sizes that
// route to every level of the default configuration, plus build time
// (bottom-up vs the per-level base-array rescans it replaced) and the
// per-level memory cost of the sparse tables.
//
// The old-path replica reproduces all three costs this PR removed: the
// array-of-structs cell layout (24-byte stride scans), the per-level
// division walk of the old PickLevel, and the global atomic query
// counter. Its cells are copies of the same aggregates, so a sanity pass
// checks both implementations return bit-identical intervals when
// evaluated at the same level.
//
// Accepts --json <path> (or DQR_BENCH_JSON) for machine-readable records.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/array.h"
#include "array/grid.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "synopsis/grid_synopsis.h"
#include "synopsis/synopsis.h"

namespace {

using namespace dqr;
using namespace dqr::bench;

using View = synopsis::Synopsis::LevelView;
using GridView = synopsis::GridSynopsis::LevelView;

std::shared_ptr<array::Array> MakeArray(int64_t n) {
  Rng rng(2026);
  std::vector<double> data(static_cast<size_t>(n));
  for (double& v : data) v = rng.Uniform(50, 250);
  array::ArraySchema schema;
  schema.name = "bench_synopsis";
  schema.length = n;
  schema.chunk_size = 4096;
  return array::Array::FromData(schema, data).value();
}

// ---------------------------------------------------------------------
// Old-path replica. The pre-change estimator stored each level as
// std::vector<SynopsisCell> (AoS); cells here are copied from the new SoA
// arrays so both sides aggregate identical doubles.

struct AosLevel {
  int64_t cell_size = 0;
  std::vector<synopsis::SynopsisCell> cells;
};

std::vector<AosLevel> MakeAosReplica(const synopsis::Synopsis& syn) {
  std::vector<AosLevel> levels(syn.num_levels());
  for (size_t li = 0; li < syn.num_levels(); ++li) {
    const View v = syn.level_view(li);
    levels[li].cell_size = v.cell_size;
    levels[li].cells.resize(static_cast<size_t>(v.num_cells));
    for (int64_t c = 0; c < v.num_cells; ++c) {
      levels[li].cells[static_cast<size_t>(c)] = {v.min[c], v.max[c],
                                                  v.sum[c]};
    }
  }
  return levels;
}

// Pre-change PickLevel: one division per level, worst-case cell estimate
// span / cell_size + 2.
size_t OldPickLevel(const std::vector<AosLevel>& levels, int64_t budget,
                    int64_t span) {
  size_t chosen = 0;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (span / levels[i].cell_size + 2 <= budget) chosen = i;
  }
  return chosen;
}

// Pre-change ValueBounds: linear scan over the overlapped AoS cells.
Interval OldValueBounds(const AosLevel& level, int64_t lo, int64_t hi) {
  const int64_t first = lo / level.cell_size;
  const int64_t last = (hi - 1) / level.cell_size;
  double mn = level.cells[static_cast<size_t>(first)].min;
  double mx = level.cells[static_cast<size_t>(first)].max;
  for (int64_t c = first + 1; c <= last; ++c) {
    mn = std::min(mn, level.cells[static_cast<size_t>(c)].min);
    mx = std::max(mx, level.cells[static_cast<size_t>(c)].max);
  }
  return Interval(mn, mx);
}

// Pre-change MaxBounds: per-cell scan with containment tests.
Interval OldMaxBounds(const AosLevel& level, int64_t length, int64_t lo,
                      int64_t hi) {
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;
  double upper = level.cells[static_cast<size_t>(first)].max;
  double overlap_floor = level.cells[static_cast<size_t>(first)].min;
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t c = first; c <= last; ++c) {
    const synopsis::SynopsisCell& cell =
        level.cells[static_cast<size_t>(c)];
    upper = std::max(upper, cell.max);
    overlap_floor = std::max(overlap_floor, cell.min);
    const int64_t cell_lo = c * cs;
    const int64_t cell_end = std::min(length, cell_lo + cs);
    if (lo <= cell_lo && cell_end <= hi) {
      witness = have_contained ? std::max(witness, cell.max) : cell.max;
      have_contained = true;
    }
  }
  return Interval(
      have_contained ? std::max(witness, overlap_floor) : overlap_floor,
      upper);
}

struct QuerySet {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

QuerySet MakeQueries(int64_t n, int64_t span, int count, uint64_t seed) {
  QuerySet q;
  Rng rng(seed);
  q.lo.reserve(static_cast<size_t>(count));
  q.hi.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int64_t lo = rng.UniformInt(0, n - span);
    q.lo.push_back(lo);
    q.hi.push_back(lo + span);
  }
  return q;
}

double Checksum(const Interval& i) { return i.lo + i.hi; }

// The pre-change implementation bumped one global atomic per query (the
// contention hotspot the sharded counter replaced); the old-path loops
// charge the same increment.
std::atomic<int64_t> old_queries{0};

// ---------------------------------------------------------------------
// 2-D old-path replica. The pre-change GridSynopsis stored each level as
// a row-major vector of {min, max, sum} cell structs and answered every
// bounds query with a scan over all overlapped cells; cells here are
// copied from the new SoA planes so both sides aggregate identical
// doubles, and the sanity pass demands bit-identical intervals.

struct AosGridLevel {
  int64_t cell_size = 0;
  int64_t cell_rows = 0;
  int64_t cell_cols = 0;
  std::vector<synopsis::SynopsisCell> cells;
};

std::vector<AosGridLevel> MakeAosGridReplica(
    const synopsis::GridSynopsis& syn) {
  std::vector<AosGridLevel> levels(syn.num_levels());
  for (size_t li = 0; li < syn.num_levels(); ++li) {
    const GridView v = syn.level_view(li);
    levels[li].cell_size = v.cell_size;
    levels[li].cell_rows = v.cell_rows;
    levels[li].cell_cols = v.cell_cols;
    levels[li].cells.resize(
        static_cast<size_t>(v.cell_rows * v.cell_cols));
    for (int64_t c = 0; c < v.cell_rows * v.cell_cols; ++c) {
      levels[li].cells[static_cast<size_t>(c)] = {v.min[c], v.max[c],
                                                  v.sum[c]};
    }
  }
  return levels;
}

// Pre-change PickLevel: the same worst-case overlapped-cell estimate the
// new PickLevelIndex preserves, evaluated with one walk over the levels.
size_t OldGridPickLevel(const std::vector<AosGridLevel>& levels,
                        int64_t budget, int64_t rspan, int64_t cspan) {
  size_t chosen = 0;
  for (size_t i = 0; i < levels.size(); ++i) {
    const int64_t cells = (rspan / levels[i].cell_size + 2) *
                          (cspan / levels[i].cell_size + 2);
    if (cells <= budget) chosen = i;
  }
  return chosen;
}

// Pre-change ValueBounds: row-major scan over every overlapped cell.
Interval OldGridValueBounds(const AosGridLevel& level, int64_t r0,
                            int64_t r1, int64_t c0, int64_t c1) {
  const int64_t cs = level.cell_size;
  const int64_t cc = level.cell_cols;
  const int64_t i0 = r0 / cs;
  const int64_t i1 = (r1 - 1) / cs;
  const int64_t j0 = c0 / cs;
  const int64_t j1 = (c1 - 1) / cs;
  double mn = level.cells[static_cast<size_t>(i0 * cc + j0)].min;
  double mx = level.cells[static_cast<size_t>(i0 * cc + j0)].max;
  for (int64_t i = i0; i <= i1; ++i) {
    for (int64_t j = j0; j <= j1; ++j) {
      const synopsis::SynopsisCell& cell =
          level.cells[static_cast<size_t>(i * cc + j)];
      mn = std::min(mn, cell.min);
      mx = std::max(mx, cell.max);
    }
  }
  return Interval(mn, mx);
}

// Pre-change MaxBounds: all-cell scan with containment tests; contained
// cells witness their max from below, any overlapped cell guarantees its
// min is attained somewhere in the overlap.
Interval OldGridMaxBounds(const AosGridLevel& level, int64_t rows,
                          int64_t cols, int64_t r0, int64_t r1, int64_t c0,
                          int64_t c1) {
  const int64_t cs = level.cell_size;
  const int64_t cc = level.cell_cols;
  const int64_t i0 = r0 / cs;
  const int64_t i1 = (r1 - 1) / cs;
  const int64_t j0 = c0 / cs;
  const int64_t j1 = (c1 - 1) / cs;
  double upper = level.cells[static_cast<size_t>(i0 * cc + j0)].max;
  double floor = level.cells[static_cast<size_t>(i0 * cc + j0)].min;
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t i = i0; i <= i1; ++i) {
    for (int64_t j = j0; j <= j1; ++j) {
      const synopsis::SynopsisCell& cell =
          level.cells[static_cast<size_t>(i * cc + j)];
      upper = std::max(upper, cell.max);
      floor = std::max(floor, cell.min);
      const int64_t cr0 = i * cs;
      const int64_t cr1 = std::min(rows, cr0 + cs);
      const int64_t cc0 = j * cs;
      const int64_t cc1 = std::min(cols, cc0 + cs);
      if (r0 <= cr0 && cr1 <= r1 && c0 <= cc0 && cc1 <= c1) {
        witness = have_contained ? std::max(witness, cell.max) : cell.max;
        have_contained = true;
      }
    }
  }
  return Interval(
      have_contained ? std::max(witness, floor) : floor, upper);
}

struct GridQuerySet {
  std::vector<int64_t> r0, r1, c0, c1;
};

GridQuerySet MakeGridQueries(int64_t side, int64_t span, int count,
                             uint64_t seed) {
  GridQuerySet q;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const int64_t r = rng.UniformInt(0, side - span);
    const int64_t c = rng.UniformInt(0, side - span);
    q.r0.push_back(r);
    q.r1.push_back(r + span);
    q.c0.push_back(c);
    q.c1.push_back(c + span);
  }
  return q;
}

std::shared_ptr<array::Grid> MakeBenchGrid(int64_t side) {
  Rng rng(2027);
  std::vector<double> data(static_cast<size_t>(side * side));
  for (double& v : data) v = rng.Uniform(50, 250);
  array::GridSchema schema;
  schema.name = "bench_grid_synopsis";
  schema.rows = side;
  schema.cols = side;
  schema.tile_size = 256;
  return array::Grid::FromData(std::move(schema), std::move(data)).value();
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchJson(argc, argv);
  const BenchEnv env = BenchEnv::FromEnv();
  const int64_t n = env.synth_length;

  const auto array = MakeArray(n);
  synopsis::SynopsisOptions options;  // default {65536,8192,1024,128}/64

  // --- build time: bottom-up vs emulated per-level rescan -------------
  Stopwatch build_watch;
  auto syn = synopsis::Synopsis::Build(*array, options).value();
  const double build_s = build_watch.ElapsedSeconds();

  // The pre-change build scanned the base array once per level; building
  // one single-level synopsis per cell size reproduces that cost.
  Stopwatch rescan_watch;
  for (const int64_t cs : options.cell_sizes) {
    synopsis::SynopsisOptions single;
    single.cell_sizes = {cs};
    single.max_cells_per_query = options.max_cells_per_query;
    auto s = synopsis::Synopsis::Build(*array, single).value();
    DQR_CHECK(s->MemoryBytes() > 0);
  }
  const double rescan_s = rescan_watch.ElapsedSeconds();

  TablePrinter build_table(
      "synopsis build (n = " + std::to_string(n) + ")",
      {"strategy", "seconds"});
  build_table.AddRow({"bottom-up", Secs(build_s)});
  build_table.AddRow({"per-level rescan", Secs(rescan_s)});
  build_table.Print();
  RecordJson({"synopsis_build",
              {{"n", std::to_string(n)},
               {"levels", std::to_string(options.cell_sizes.size())}},
              build_s,
              {{"rescan_seconds", std::to_string(rescan_s)},
               {"speedup", std::to_string(rescan_s / build_s)}}});

  // --- per-level memory cost of the sparse tables ---------------------
  TablePrinter mem_table("per-level memory (SoA+RMQ vs AoS cells)",
                         {"cell_size", "cells", "bytes", "baseline",
                          "growth"});
  for (size_t li = 0; li < syn->num_levels(); ++li) {
    const View v = syn->level_view(li);
    // The AoS layout this PR replaced: one 24-byte {min,max,sum} struct
    // per cell plus the prefix-sum array.
    const int64_t baseline =
        v.num_cells * 24 + (v.num_cells + 1) * 8;
    const int64_t bytes = syn->LevelMemoryBytes(li);
    const double growth =
        static_cast<double>(bytes) / static_cast<double>(baseline);
    mem_table.AddRow({std::to_string(v.cell_size),
                      std::to_string(v.num_cells), std::to_string(bytes),
                      std::to_string(baseline),
                      std::to_string(growth)});
    RecordJson({"synopsis_memory",
                {{"cell_size", std::to_string(v.cell_size)},
                 {"cells", std::to_string(v.num_cells)}},
                0.0,
                {{"bytes", std::to_string(bytes)},
                 {"baseline_bytes", std::to_string(baseline)},
                 {"growth", std::to_string(growth)}}});
  }
  mem_table.Print();

  // --- ns/query sweep: spans routing to every level -------------------
  // Span in elements, chosen so the old worst-case estimate and the new
  // exact count route to the same level for (almost) every query — the
  // comparison then measures the same number of cells on both sides.
  // 7936 is the largest span the old estimate keeps on the finest level
  // (62 + 2 = 64 cells); whole-array spans fall back to the coarsest.
  const std::vector<int64_t> spans = {512,  1024,  4096,   7936,
                                      8192, 65536, 524288, n};
  const int kQueries = 2000;
  const int kRounds = 20;
  const int kReps = 7;

  const auto aos = MakeAosReplica(*syn);

  // Noise-robust ns/query: each rep times kRounds passes over the query
  // set; the minimum across reps is the least-disturbed run.
  const auto measure = [&](const auto& body) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      for (int r = 0; r < kRounds; ++r) body();
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best * 1e9 / (kRounds * kQueries);
  };

  TablePrinter query_table(
      "bounds queries (ns/query, " + std::to_string(kQueries * kRounds) +
          " queries per cell)",
      {"span", "level_cs", "cells", "value_rmq", "value_old", "max_rmq",
       "max_old", "speedup"});

  double sink = 0.0;
  for (const int64_t span : spans) {
    if (span > n) continue;
    const QuerySet q = MakeQueries(n, span, kQueries, 7777);
    const size_t li = syn->PickLevelIndex(q.lo[0], q.hi[0]);
    const View v = syn->level_view(li);
    const int64_t cells = (q.hi[0] - 1) / v.cell_size -
                          q.lo[0] / v.cell_size + 1;

    // Sanity: at the same level, both implementations must agree
    // interval-for-interval.
    for (int i = 0; i < kQueries; ++i) {
      const Interval fast = syn->ValueBounds(q.lo[i], q.hi[i]);
      const Interval slow = OldValueBounds(
          aos[syn->PickLevelIndex(q.lo[i], q.hi[i])], q.lo[i], q.hi[i]);
      DQR_CHECK(fast == slow);
    }

    const double value_rmq_ns = measure([&] {
      for (int i = 0; i < kQueries; ++i) {
        sink += Checksum(syn->ValueBounds(q.lo[i], q.hi[i]));
      }
    });

    const double value_old_ns = measure([&] {
      for (int i = 0; i < kQueries; ++i) {
        old_queries.fetch_add(1, std::memory_order_relaxed);
        const size_t pli = OldPickLevel(aos, options.max_cells_per_query,
                                        q.hi[i] - q.lo[i]);
        sink += Checksum(OldValueBounds(aos[pli], q.lo[i], q.hi[i]));
      }
    });

    const double max_rmq_ns = measure([&] {
      for (int i = 0; i < kQueries; ++i) {
        sink += Checksum(syn->MaxBounds(q.lo[i], q.hi[i]));
      }
    });

    const double max_old_ns = measure([&] {
      for (int i = 0; i < kQueries; ++i) {
        old_queries.fetch_add(1, std::memory_order_relaxed);
        const size_t pli = OldPickLevel(aos, options.max_cells_per_query,
                                        q.hi[i] - q.lo[i]);
        sink += Checksum(
            OldMaxBounds(aos[pli], n, q.lo[i], q.hi[i]));
      }
    });

    const double speedup = value_old_ns / value_rmq_ns;
    char speedup_buf[32];
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
    query_table.AddRow(
        {std::to_string(span), std::to_string(v.cell_size),
         std::to_string(cells), std::to_string(value_rmq_ns),
         std::to_string(value_old_ns), std::to_string(max_rmq_ns),
         std::to_string(max_old_ns), speedup_buf});
    RecordJson({"synopsis_query",
                {{"span", std::to_string(span)},
                 {"level_cell_size", std::to_string(v.cell_size)},
                 {"cells", std::to_string(cells)}},
                value_rmq_ns * kRounds * kQueries / 1e9,
                {{"value_rmq_ns", std::to_string(value_rmq_ns)},
                 {"value_old_ns", std::to_string(value_old_ns)},
                 {"max_rmq_ns", std::to_string(max_rmq_ns)},
                 {"max_old_ns", std::to_string(max_old_ns)},
                 {"value_speedup", std::to_string(speedup)},
                 {"max_speedup",
                  std::to_string(max_old_ns / max_rmq_ns)}}});
  }
  query_table.Print();
  std::printf("checksum %.3f, queries served %lld (+%lld old-path)\n",
              sink, static_cast<long long>(syn->queries_served()),
              static_cast<long long>(
                  old_queries.load(std::memory_order_relaxed)));

  // =====================================================================
  // 2-D: the same differential on GridSynopsis (blocked 2-D RMQ + SIMD
  // fringe folds vs the per-cell AoS scan it replaced).
  const int64_t side = 2048;
  const auto grid = MakeBenchGrid(side);
  synopsis::GridSynopsisOptions grid_options;  // default {512,64,16}/256

  Stopwatch grid_build_watch;
  auto gsyn = synopsis::GridSynopsis::Build(*grid, grid_options).value();
  const double grid_build_s = grid_build_watch.ElapsedSeconds();

  // The pre-change build scanned the base grid once per level.
  Stopwatch grid_rescan_watch;
  for (const int64_t cs : grid_options.cell_sizes) {
    synopsis::GridSynopsisOptions single;
    single.cell_sizes = {cs};
    single.max_cells_per_query = grid_options.max_cells_per_query;
    auto s = synopsis::GridSynopsis::Build(*grid, single).value();
    DQR_CHECK(s->MemoryBytes() > 0);
  }
  const double grid_rescan_s = grid_rescan_watch.ElapsedSeconds();

  TablePrinter grid_build_table(
      "2-D synopsis build (" + std::to_string(side) + "x" +
          std::to_string(side) + ")",
      {"strategy", "seconds"});
  grid_build_table.AddRow({"bottom-up", Secs(grid_build_s)});
  grid_build_table.AddRow({"per-level rescan", Secs(grid_rescan_s)});
  grid_build_table.Print();
  RecordJson({"grid_synopsis_build",
              {{"side", std::to_string(side)},
               {"levels",
                std::to_string(grid_options.cell_sizes.size())}},
              grid_build_s,
              {{"rescan_seconds", std::to_string(grid_rescan_s)},
               {"speedup",
                std::to_string(grid_rescan_s / grid_build_s)}}});

  // Square spans routed (by the shared worst-case estimate) to each
  // level: cs=16 up to span 224, cs=64 up to span 896, cs=512 beyond.
  const std::vector<int64_t> grid_spans = {64, 128, 224, 512, 896, 2048};
  const auto grid_aos = MakeAosGridReplica(*gsyn);

  TablePrinter grid_query_table(
      "2-D bounds queries (ns/query, " +
          std::to_string(kQueries * kRounds) + " queries per cell)",
      {"span", "level_cs", "cells", "value_rmq", "value_old", "max_rmq",
       "max_old", "speedup"});

  // Interleave the two paths rep by rep so both sample the same
  // frequency / scheduler-noise windows, and take more reps than the 1-D
  // sweep — a grid rep is only a few milliseconds, and run-to-run noise
  // otherwise dominates the comparison.
  const auto measure_pair = [&](const auto& a, const auto& b) {
    constexpr int kGridReps = 21;
    double best_a = std::numeric_limits<double>::infinity();
    double best_b = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kGridReps; ++rep) {
      {
        Stopwatch watch;
        for (int r = 0; r < kRounds; ++r) a();
        best_a = std::min(best_a, watch.ElapsedSeconds());
      }
      {
        Stopwatch watch;
        for (int r = 0; r < kRounds; ++r) b();
        best_b = std::min(best_b, watch.ElapsedSeconds());
      }
    }
    const double scale = 1e9 / (kRounds * kQueries);
    return std::make_pair(best_a * scale, best_b * scale);
  };

  for (const int64_t span : grid_spans) {
    if (span > side) continue;
    const GridQuerySet q = MakeGridQueries(side, span, kQueries, 8888);
    const size_t li =
        gsyn->PickLevelIndex(q.r0[0], q.r1[0], q.c0[0], q.c1[0]);
    const GridView v = gsyn->level_view(li);
    const int64_t cells_per_dim =
        (q.r1[0] - 1) / v.cell_size - q.r0[0] / v.cell_size + 1;

    // Sanity: bit-identical intervals, value and max, at the same level.
    for (int i = 0; i < kQueries; ++i) {
      const size_t pli =
          gsyn->PickLevelIndex(q.r0[i], q.r1[i], q.c0[i], q.c1[i]);
      DQR_CHECK(gsyn->ValueBounds(q.r0[i], q.r1[i], q.c0[i], q.c1[i]) ==
                OldGridValueBounds(grid_aos[pli], q.r0[i], q.r1[i],
                                   q.c0[i], q.c1[i]));
      DQR_CHECK(gsyn->MaxBounds(q.r0[i], q.r1[i], q.c0[i], q.c1[i]) ==
                OldGridMaxBounds(grid_aos[pli], side, side, q.r0[i],
                                 q.r1[i], q.c0[i], q.c1[i]));
    }

    const auto [value_rmq_ns, value_old_ns] = measure_pair(
        [&] {
          for (int i = 0; i < kQueries; ++i) {
            sink += Checksum(
                gsyn->ValueBounds(q.r0[i], q.r1[i], q.c0[i], q.c1[i]));
          }
        },
        [&] {
          for (int i = 0; i < kQueries; ++i) {
            old_queries.fetch_add(1, std::memory_order_relaxed);
            const size_t pli = OldGridPickLevel(
                grid_aos, grid_options.max_cells_per_query,
                q.r1[i] - q.r0[i], q.c1[i] - q.c0[i]);
            sink += Checksum(OldGridValueBounds(
                grid_aos[pli], q.r0[i], q.r1[i], q.c0[i], q.c1[i]));
          }
        });

    const auto [max_rmq_ns, max_old_ns] = measure_pair(
        [&] {
          for (int i = 0; i < kQueries; ++i) {
            sink += Checksum(
                gsyn->MaxBounds(q.r0[i], q.r1[i], q.c0[i], q.c1[i]));
          }
        },
        [&] {
          for (int i = 0; i < kQueries; ++i) {
            old_queries.fetch_add(1, std::memory_order_relaxed);
            const size_t pli = OldGridPickLevel(
                grid_aos, grid_options.max_cells_per_query,
                q.r1[i] - q.r0[i], q.c1[i] - q.c0[i]);
            sink += Checksum(OldGridMaxBounds(grid_aos[pli], side, side,
                                              q.r0[i], q.r1[i], q.c0[i],
                                              q.c1[i]));
          }
        });

    const double speedup = value_old_ns / value_rmq_ns;
    char speedup_buf[32];
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
    grid_query_table.AddRow(
        {std::to_string(span), std::to_string(v.cell_size),
         std::to_string(cells_per_dim * cells_per_dim),
         std::to_string(value_rmq_ns), std::to_string(value_old_ns),
         std::to_string(max_rmq_ns), std::to_string(max_old_ns),
         speedup_buf});
    RecordJson({"grid_synopsis_query",
                {{"span", std::to_string(span)},
                 {"level_cell_size", std::to_string(v.cell_size)},
                 {"cells",
                  std::to_string(cells_per_dim * cells_per_dim)}},
                value_rmq_ns * kRounds * kQueries / 1e9,
                {{"value_rmq_ns", std::to_string(value_rmq_ns)},
                 {"value_old_ns", std::to_string(value_old_ns)},
                 {"max_rmq_ns", std::to_string(max_rmq_ns)},
                 {"max_old_ns", std::to_string(max_old_ns)},
                 {"value_speedup", std::to_string(speedup)},
                 {"max_speedup",
                  std::to_string(max_old_ns / max_rmq_ns)}}});
  }
  grid_query_table.Print();
  std::printf(
      "2-D checksum %.3f, grid queries served %lld (+%lld old-path)\n",
      sink, static_cast<long long>(gsyn->queries_served()),
      static_cast<long long>(old_queries.load(std::memory_order_relaxed)));
  return 0;
}
