// Reproduces Table 6 of the paper: the impact of saving UDF computation
// states when recording fails (§4.2). With saving on, a replay restores
// the memoized window bounds captured at the fail and avoids recomputing
// them; with saving off every replay starts cold.
//
// Paper: On:  S-LOS 105(90)   M-LOS 91(45)   S-SEL 97(42)  M-SEL 150(45)
//        Off: S-LOS 113(111)  M-LOS 104(70)  S-SEL 97(40)  M-SEL 154(46)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  BenchEnv env = BenchEnv::FromEnv();
  // State saving pays off when estimation is expensive (§4.2: "in the
  // presence of a large number of fails with expensive functions").
  env.estimate_cost_ns = std::max<int64_t>(env.estimate_cost_ns, 8000);
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 6: query completion and first-result times (secs) for the "
      "UDF state saving optimization",
      {"UDF saving", "S-LOS", "M-LOS", "S-SEL", "M-SEL"});

  const data::QueryKind kinds[] = {
      data::QueryKind::kSLos, data::QueryKind::kMLos,
      data::QueryKind::kSSel, data::QueryKind::kMSel};

  std::vector<std::string> on_row = {"On"};
  std::vector<std::string> off_row = {"Off"};
  int64_t bytes_per_save = 0;
  for (const data::QueryKind kind : kinds) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    core::RefineOptions on = AutoOptions(env);
    on.save_function_state = true;
    core::RefineOptions off = AutoOptions(env);
    off.save_function_state = false;

    const RunOutcome r_on = Run(query, on);
    const RunOutcome r_off = Run(query, off);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%s(%s)", Secs(r_on.total_s).c_str(),
                  Secs(r_on.first_s).c_str());
    on_row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%s(%s)",
                  Secs(r_off.total_s).c_str(),
                  Secs(r_off.first_s).c_str());
    off_row.push_back(cell);
    if (r_on.stats.fails_recorded > 0) {
      bytes_per_save = r_on.stats.peak_fail_bytes /
                       std::max<int64_t>(1, r_on.stats.peak_fail_count);
    }
  }

  table.AddRow(on_row);
  table.AddRow(off_row);
  table.AddRow({"On(paper)", "105(90)", "91(45)", "97(42)", "150(45)"});
  table.AddRow(
      {"Off(paper)", "113(111)", "104(70)", "97(40)", "154(46)"});
  table.Print();
  std::printf(
      "Memory footprint: ~%lld bytes per recorded fail (paper: ~80 bytes "
      "per saved aggregate state)\n",
      static_cast<long long>(bytes_per_save));
  return 0;
}
