// Reproduces Table 8 of the paper: the Replay Relaxation Distance (RRD)
// sweep on the loose queries. Replaying early fails with maximal
// relaxation (RRD = 1.0) can make a replay traverse most of the search
// tree (the paper's M-LOS exploded to 54 minutes); partial relaxation
// keeps replays focused at the cost of a few more repeated fails.
//
// Paper: S-LOS: 106 105 106 106 106
//        M-LOS:  87  91 112 145 54m    (RRD = 0.1 0.3 0.5 0.7 1.0)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  const double rrds[] = {0.1, 0.3, 0.5, 0.7, 1.0};
  TablePrinter table(
      "Table 8: query completion times (secs) for different RRD values",
      {"Query\\RRD", "0.1", "0.3", "0.5", "0.7", "1.0"});

  struct Config {
    data::QueryKind kind;
    int64_t k;
  };
  // The higher-cardinality M-LOS run keeps MRP loose for longer, so
  // maximally relaxed replays (RRD = 1.0) stay unfocused — the regime
  // where the paper's M-LOS exploded.
  const Config configs[] = {{data::QueryKind::kSLos, env.k},
                            {data::QueryKind::kMLos, env.k},
                            {data::QueryKind::kMLos, 20 * env.k}};
  for (const Config& config : configs) {
    const data::QueryKind kind = config.kind;
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = config.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    std::vector<std::string> row = {std::string(data::QueryKindName(kind)) +
                                    " k=" + std::to_string(config.k)};
    for (const double rrd : rrds) {
      core::RefineOptions options = AutoOptions(env);
      options.time_budget_s = 4 * env.timeout_s;
      options.replay_relaxation_distance = rrd;
      const RunOutcome r = Run(query, options);
      row.push_back(Secs(r.total_s, !r.completed));
      std::printf("[%s rrd=%.1f] replays=%lld repeated fails=%lld\n",
                  data::QueryKindName(kind), rrd,
                  static_cast<long long>(r.stats.replays),
                  static_cast<long long>(r.stats.fails_recorded -
                                         r.stats.main_search.fails));
    }
    table.AddRow(row);
  }
  table.AddRow({"S-LOS(paper)", "106", "105", "106", "106", "106"});
  table.AddRow({"M-LOS(paper)", "87", "91", "112", "145", "54m"});
  table.Print();
  return 0;
}
