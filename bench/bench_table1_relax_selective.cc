// Reproduces Table 1 of the paper: query completion times for the
// selective queries S-SEL and M-SEL under automatic relaxation (SL) vs
// the manual USER-3 / USER-2 / USER-MAX scenarios, plus the
// time-to-first-result comparison discussed in §5.1.
//
// Paper (100 GB, 4-node cluster):
//   S-SEL: SL 97   USER-3 327  USER-2 210 (120)  USER-MAX 216
//   M-SEL: SL 150  USER-3 544  USER-2 380 (240)  USER-MAX 380
//   First result: S-SEL 42 vs 91; M-SEL 45 vs 198.
// Expected shape: SL < USER-2 < USER-3, USER-MAX ~ USER-2; SL's first
// result arrives earlier than USER-2's.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  const BenchEnv env = BenchEnv::FromEnv();
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 1: S/M-SEL query completion times (secs) for query "
      "relaxation",
      {"Query", "SL", "USER-3", "USER-2", "USER-MAX", "SL(paper)",
       "U3(paper)", "U2(paper)", "UMAX(paper)"});
  TablePrinter first(
      "Table 1 (text): time to first result (secs)",
      {"Query", "SL", "USER-2", "SL(paper)", "USER-2(paper)"});

  struct PaperRow {
    data::QueryKind kind;
    const char* sl;
    const char* u3;
    const char* u2;
    const char* umax;
    const char* first_sl;
    const char* first_u2;
  };
  const PaperRow rows[] = {
      {data::QueryKind::kSSel, "97", "327", "210 (120)", "216", "42", "91"},
      {data::QueryKind::kMSel, "150", "544", "380 (240)", "380", "45",
       "198"},
  };

  for (const PaperRow& row : rows) {
    const data::DatasetBundle& bundle =
        BundleFor(env, row.kind, synth, wave);
    const UserFractions fr = FractionsFor(row.kind);

    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, row.kind, tuning);

    const RunOutcome sl = Run(query, AutoOptions(env));
    const RunOutcome u3 = RunManualScenario(
        env, bundle, row.kind, {0.0, fr.cautious, fr.correct});
    const RunOutcome u2 =
        RunManualScenario(env, bundle, row.kind, {0.0, fr.correct});
    const RunOutcome umax =
        RunManualScenario(env, bundle, row.kind, {0.0, 1.0});

    table.AddRow({data::QueryKindName(row.kind), Secs(sl.total_s),
                  Secs(u3.total_s, !u3.completed),
                  Secs(u2.total_s, !u2.completed),
                  Secs(umax.total_s, !umax.completed), row.sl, row.u3,
                  row.u2, row.umax});
    first.AddRow({data::QueryKindName(row.kind), Secs(sl.first_s),
                  Secs(u2.first_s), row.first_sl, row.first_u2});

    std::printf("[%s] SL: %zu results, fails recorded %lld, replays %lld\n",
                data::QueryKindName(row.kind), sl.results,
                static_cast<long long>(sl.stats.fails_recorded),
                static_cast<long long>(sl.stats.replays));
  }

  table.Print();
  first.Print();
  return 0;
}
