// Reproduces Table 5 of the paper: query completion and first-result
// times under the two strategies for computing constraint functions at
// fails — "Full" (evaluate every C^r function when a fail is recorded)
// vs "Lazy" (record only what the search already computed; evaluate the
// rest if/when the fail is replayed, §4.2).
//
// Paper: Full: S-LOS 120(100)  M-LOS 81(45)  S-SEL 112(46)  M-SEL 149(45)
//        Lazy: S-LOS 105(90)   M-LOS 91(45)  S-SEL 97(42)   M-SEL 150(45)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace dqr;
  using namespace dqr::bench;

  BenchEnv env = BenchEnv::FromEnv();
  // The fail-recording optimizations target expensive constraint
  // functions (the paper saw their benefits on "more expensive synthetic
  // queries"); model that with a higher per-lookup estimation cost.
  env.estimate_cost_ns = std::max<int64_t>(env.estimate_cost_ns, 8000);
  const auto synth = SynthBundle(env);
  const auto wave = WaveBundle(env);

  TablePrinter table(
      "Table 5: query completion and first-result times (secs) for fail "
      "recording methods",
      {"Method", "S-LOS", "M-LOS", "S-SEL", "M-SEL"});

  const data::QueryKind kinds[] = {
      data::QueryKind::kSLos, data::QueryKind::kMLos,
      data::QueryKind::kSSel, data::QueryKind::kMSel};

  std::vector<std::string> full_row = {"Full"};
  std::vector<std::string> lazy_row = {"Lazy"};
  for (const data::QueryKind kind : kinds) {
    const data::DatasetBundle& bundle = BundleFor(env, kind, synth, wave);
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);

    core::RefineOptions full = AutoOptions(env);
    full.fail_eval = core::FailEvalMode::kFull;
    core::RefineOptions lazy = AutoOptions(env);
    lazy.fail_eval = core::FailEvalMode::kLazy;

    const RunOutcome r_full = Run(query, full);
    const RunOutcome r_lazy = Run(query, lazy);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%s(%s)",
                  Secs(r_full.total_s).c_str(),
                  Secs(r_full.first_s).c_str());
    full_row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%s(%s)",
                  Secs(r_lazy.total_s).c_str(),
                  Secs(r_lazy.first_s).c_str());
    lazy_row.push_back(cell);
  }

  table.AddRow(full_row);
  table.AddRow(lazy_row);
  table.AddRow({"Full(paper)", "120(100)", "81(45)", "112(46)", "149(45)"});
  table.AddRow({"Lazy(paper)", "105(90)", "91(45)", "97(42)", "150(45)"});
  table.Print();
  return 0;
}
