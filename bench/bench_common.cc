#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "obs/export_chrome.h"

namespace dqr::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

// JSON output state: the target path (empty = disabled) and every record
// serialized so far; the file is rewritten on each append.
std::string& JsonPath() {
  static std::string path = [] {
    const char* env = std::getenv("DQR_BENCH_JSON");
    return std::string(env == nullptr ? "" : env);
  }();
  return path;
}

std::vector<std::string>& JsonRecords() {
  static std::vector<std::string> records;
  return records;
}

// Trace output state: the target path (empty = disabled).
std::string& TracePath() {
  static std::string path = [] {
    const char* env = std::getenv("DQR_BENCH_TRACE");
    return std::string(env == nullptr ? "" : env);
  }();
  return path;
}

// Profile output state: the target path (empty = disabled).
std::string& ProfilePath() {
  static std::string path = [] {
    const char* env = std::getenv("DQR_BENCH_PROFILE");
    return std::string(env == nullptr ? "" : env);
  }();
  return path;
}

std::string JsonObject(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonStr(fields[i].first) + ": " + fields[i].second;
  }
  return out + "}";
}

}  // namespace

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  const double scale = EnvDouble("DQR_BENCH_SCALE", 1.0);
  env.synth_length = static_cast<int64_t>(env.synth_length * scale);
  env.wave_length = static_cast<int64_t>(env.wave_length * scale);
  env.timeout_s = EnvDouble("DQR_BENCH_TIMEOUT_S", env.timeout_s);
  env.estimate_cost_ns = static_cast<int64_t>(
      EnvDouble("DQR_BENCH_COST_NS",
                static_cast<double>(env.estimate_cost_ns)));
  return env;
}

data::DatasetBundle SynthBundle(const BenchEnv& env) {
  auto result = data::MakeSyntheticDataset(env.synth_length, 42);
  DQR_CHECK_MSG(result.ok(), "synthetic dataset generation failed");
  return std::move(result).value();
}

data::DatasetBundle WaveBundle(const BenchEnv& env) {
  auto result = data::MakeWaveformDataset(env.wave_length, 1234);
  DQR_CHECK_MSG(result.ok(), "waveform dataset generation failed");
  return std::move(result).value();
}

const data::DatasetBundle& BundleFor(const BenchEnv& env,
                                     data::QueryKind kind,
                                     const data::DatasetBundle& synth,
                                     const data::DatasetBundle& wave) {
  (void)env;
  const bool synthetic = kind == data::QueryKind::kSSel ||
                         kind == data::QueryKind::kSLos;
  return synthetic ? synth : wave;
}

core::RefineOptions AutoOptions(const BenchEnv& env) {
  core::RefineOptions options;
  options.num_instances = env.num_instances;
  options.time_budget_s = 20 * env.timeout_s;  // safety net only
  return options;
}

core::RefineOptions ManualOptions(const BenchEnv& env) {
  core::RefineOptions options;
  options.enable = false;
  options.num_instances = env.num_instances;
  options.time_budget_s = env.timeout_s;
  return options;
}

RunOutcome Run(const searchlight::QuerySpec& query,
               const core::RefineOptions& options) {
  core::RefineOptions traced = options;
  traced.trace = BenchTrace();
  traced.profile = BenchProfile();
  auto result = core::ExecuteQuery(query, traced);
  DQR_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  if (traced.profile != nullptr) WriteBenchProfile();
  RunOutcome outcome;
  outcome.total_s = result.value().stats.total_s;
  outcome.first_s = result.value().stats.first_result_s;
  outcome.results = result.value().results.size();
  outcome.completed = result.value().stats.completed;
  outcome.stats = result.value().stats;
  return outcome;
}

RunOutcome RunManualScenario(const BenchEnv& env,
                             const data::DatasetBundle& bundle,
                             data::QueryKind kind,
                             const std::vector<double>& fractions) {
  const core::RefineOptions options = ManualOptions(env);
  RunOutcome total;
  for (const double fraction : fractions) {
    data::QueryTuning tuning;
    tuning.k = env.k;
    tuning.estimate_cost_ns = env.estimate_cost_ns;
    tuning.relax_fraction = fraction;
    const searchlight::QuerySpec query =
        data::MakeQuery(bundle, kind, tuning);
    const RunOutcome step = Run(query, options);
    if (step.first_s >= 0.0 && total.first_s < 0.0 &&
        step.results >= static_cast<size_t>(env.k)) {
      total.first_s = total.total_s + step.first_s;
    }
    total.total_s += step.total_s;
    total.results = step.results;
    total.completed = total.completed && step.completed;
    if (!step.completed) break;  // the user gave up on this iteration
  }
  return total;
}

UserFractions FractionsFor(data::QueryKind kind) {
  switch (kind) {
    case data::QueryKind::kSSel:
      return {0.10, 0.30};
    case data::QueryKind::kSLos:
      return {0.10, 0.30};
    case data::QueryKind::kMSel:
      return {0.25, 0.55};
    case data::QueryKind::kMLos:
      return {0.10, 0.30};
    case data::QueryKind::kMSelPrime:
      return {0.10, 0.30};
  }
  return {};
}

std::string JsonStr(const std::string& raw) {
  std::string out = "\"";
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

void InitBenchJson(const std::string& path) { JsonPath() = path; }

void InitBenchJson(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      InitBenchJson(argv[i + 1]);
      ++i;
    } else if (arg == "--trace" && i + 1 < argc) {
      InitBenchTrace(argv[i + 1]);
      ++i;
    } else if (arg.rfind("--trace=", 0) == 0) {
      InitBenchTrace(arg.substr(8));
    } else if (arg == "--profile" && i + 1 < argc) {
      InitBenchProfile(argv[i + 1]);
      ++i;
    } else if (arg.rfind("--profile=", 0) == 0) {
      InitBenchProfile(arg.substr(10));
    }
  }
}

void InitBenchTrace(const std::string& path) { TracePath() = path; }

void InitBenchTrace(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      InitBenchTrace(argv[i + 1]);
      return;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      InitBenchTrace(arg.substr(8));
      return;
    }
  }
}

obs::Trace* BenchTrace() {
  if (TracePath().empty()) return nullptr;
  // Created on first use; the atexit hook makes sure whatever was
  // recorded lands on disk even if the bench never calls WriteBenchTrace.
  static obs::Trace* trace = [] {
    std::atexit(WriteBenchTrace);
    return new obs::Trace;
  }();
  return trace;
}

void WriteBenchTrace() {
  if (TracePath().empty()) return;
  const Status status = obs::WriteChromeTrace(*BenchTrace(), TracePath());
  if (!status.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "trace written to %s (%lld events, %lld dropped)\n",
               TracePath().c_str(),
               static_cast<long long>(BenchTrace()->total_emitted()),
               static_cast<long long>(BenchTrace()->total_dropped()));
}

void InitBenchProfile(const std::string& path) { ProfilePath() = path; }

obs::Profile* BenchProfile() {
  if (ProfilePath().empty()) return nullptr;
  static obs::Profile* profile = new obs::Profile;
  return profile;
}

void WriteBenchProfile() {
  if (ProfilePath().empty()) return;
  const std::string json = obs::ProfileToJson(BenchProfile()->query());
  std::FILE* f = std::fopen(ProfilePath().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "profile write failed: cannot open %s\n",
                 ProfilePath().c_str());
    return;
  }
  std::fputs(json.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
}

void RecordJson(const JsonRecord& record) {
  if (JsonPath().empty()) return;
  char seconds[32];
  std::snprintf(seconds, sizeof(seconds), "%.6f", record.seconds);
  std::string obj = "{";
  obj += JsonStr("name") + ": " + JsonStr(record.name) + ", ";
  obj += JsonStr("config") + ": " + JsonObject(record.config) + ", ";
  obj += JsonStr("seconds") + ": " + seconds + ", ";
  obj += JsonStr("results") + ": " + JsonObject(record.results);
  obj += "}";
  JsonRecords().push_back(std::move(obj));

  std::FILE* f = std::fopen(JsonPath().c_str(), "w");
  if (f == nullptr) return;  // diagnostics-only output: ignore IO errors
  std::fputs("[\n", f);
  for (size_t i = 0; i < JsonRecords().size(); ++i) {
    std::fputs("  ", f);
    std::fputs(JsonRecords()[i].c_str(), f);
    std::fputs(i + 1 < JsonRecords().size() ? ",\n" : "\n", f);
  }
  std::fputs("]\n", f);
  std::fclose(f);
}

std::string Secs(double s, bool capped) {
  char buf[64];
  if (capped) {
    std::snprintf(buf, sizeof(buf), ">%.0f", s);
    return buf;
  }
  if (s < 0.0) return "-";
  if (s >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.0fh %.0fm", std::floor(s / 3600.0),
                  std::floor(s / 60.0 - 60.0 * std::floor(s / 3600.0)));
  } else if (s >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", s);
  }
  return buf;
}

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DQR_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c],
                                                       row[c].size());
  }
  std::printf("\n%s\n", title_.c_str());
  auto print_sep = [&] {
    std::printf("+");
    for (const size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]),
                  cells[c].c_str());
    }
    std::printf("\n");
  };
  print_sep();
  print_row(columns_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

}  // namespace dqr::bench
