#include "cp/domain.h"

#include <gtest/gtest.h>

namespace dqr::cp {
namespace {

TEST(IntDomainTest, Basics) {
  const IntDomain d(2, 5);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.size(), 4);
  EXPECT_FALSE(d.IsBound());
  EXPECT_TRUE(d.Contains(2));
  EXPECT_TRUE(d.Contains(5));
  EXPECT_FALSE(d.Contains(6));

  const IntDomain bound(3, 3);
  EXPECT_TRUE(bound.IsBound());
  EXPECT_EQ(bound.value(), 3);

  const IntDomain empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.ToString(), "{}");
  EXPECT_EQ(bound.ToString(), "{3}");
  EXPECT_EQ(d.ToString(), "[2..5]");
}

TEST(IntDomainTest, Equality) {
  EXPECT_EQ(IntDomain(1, 2), IntDomain(1, 2));
  EXPECT_FALSE(IntDomain(1, 2) == IntDomain(1, 3));
  EXPECT_EQ(IntDomain(5, 1), IntDomain(3, 2));  // all empties equal
}

TEST(DomainBoxTest, BoundAndPoint) {
  DomainBox box = {IntDomain(1, 1), IntDomain(4, 4)};
  EXPECT_TRUE(IsBound(box));
  EXPECT_EQ(BoundPoint(box), (std::vector<int64_t>{1, 4}));

  box[1] = IntDomain(4, 5);
  EXPECT_FALSE(IsBound(box));
}

TEST(DomainBoxTest, Cardinality) {
  EXPECT_EQ(BoxCardinality({IntDomain(0, 9), IntDomain(1, 4)}), 40);
  EXPECT_EQ(BoxCardinality({IntDomain(0, 9), IntDomain()}), 0);
  EXPECT_EQ(BoxCardinality({}), 1);
  // Saturation: two huge domains overflow to INT64_MAX.
  EXPECT_EQ(BoxCardinality({IntDomain(0, INT64_MAX / 2),
                            IntDomain(0, INT64_MAX / 2)}),
            INT64_MAX);
}

TEST(IntDomainDeathTest, ValueOnUnboundAborts) {
  const IntDomain d(1, 2);
  EXPECT_DEATH((void)d.value(), "DQR_CHECK");
}

}  // namespace
}  // namespace dqr::cp
