// PROFILE over the wire (DESIGN.md §12): a QUERY submitted with
// profile=1 streams a PROFILE frame right behind its FINAL, carrying
// the same profile JSON `obs::ProfileToJson` emits in-process; the
// record stays fetchable via `PROFILE id=` from the history window.
// Profiling over the transport must not perturb the answer, and an
// unprofiled query's fetch must fail with a precise error, not an
// empty document.

#include <gtest/gtest.h>

#include <string>

#include "core/canonical.h"
#include "core/refiner.h"
#include "exec/engine_session.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "obs/profile.h"
#include "serve/client.h"
#include "serve/server.h"
#include "testing/generator.h"

namespace dqr::serve {
namespace {

TEST(ServeProfile, ProfileFrameRoundTripsAndPreservesAnswer) {
  const fuzz::Workload workload =
      fuzz::MakeWorkload(3, fuzz::FuzzMode::kRelax);

  // Direct leg: the canonical answer the streamed run must reproduce.
  const core::RefineOptions options =
      fuzz::EngineConfig{}.ToOptions(workload, nullptr);
  Result<core::RunResult> direct = core::ExecuteQuery(workload.query, options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string canonical = core::Canonicalize(direct.value().results);

  exec::WorkerPool pool(4);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  exec::EngineSession session(session_options);

  ServerOptions server_options;
  server_options.session = &session;
  Server server(server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server
                  .RegisterDataset("w", data::DatasetBundle{workload.array,
                                                            workload.synopsis})
                  .ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Hello("tester").ok());

  Frame profiled;
  profiled.type = frame::kQuery;
  profiled.Set("id", std::string("q-prof"));
  profiled.Set("dataset", std::string("w"));
  profiled.Set("alpha", workload.alpha);
  profiled.Set("profile", std::string("1"));
  profiled.body = workload.query_text;
  Result<QueryRun> run = client.RunQuery(profiled);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().canonical(), canonical)
      << "profiling over the wire changed the answer";

  // The pushed PROFILE body is a well-formed §12 profile with a phase
  // tree and the run's one query-latency sample.
  ASSERT_FALSE(run.value().profile_json.empty());
  Result<obs::QueryProfile> pushed =
      obs::ProfileFromJson(run.value().profile_json);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  EXPECT_FALSE(pushed.value().root.children.empty());
  EXPECT_EQ(pushed.value().stats.query_latency.count(), 1);

  // PROFILE id= serves the identical document from history.
  Result<std::string> fetched = client.FetchProfile("q-prof");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched.value(), run.value().profile_json);

  // An unprofiled query has no profile record; the fetch names the fix.
  Frame plain;
  plain.type = frame::kQuery;
  plain.Set("id", std::string("q-plain"));
  plain.Set("dataset", std::string("w"));
  plain.Set("alpha", workload.alpha);
  plain.body = workload.query_text;
  Result<QueryRun> plain_run = client.RunQuery(plain);
  ASSERT_TRUE(plain_run.ok()) << plain_run.status().ToString();
  EXPECT_EQ(plain_run.value().canonical(), canonical);
  EXPECT_TRUE(plain_run.value().profile_json.empty());
  Result<std::string> missing = client.FetchProfile("q-plain");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("submit with profile=1"),
            std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace dqr::serve
