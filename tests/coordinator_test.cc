#include "core/coordinator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dqr::core {
namespace {

RankModel SimpleRank() {
  return RankModel({{Interval(0, 10), Interval(0, 10), -1.0, true, true}});
}

TEST(DelayedBroadcastTest, ImmediateModePublishesInstantly) {
  DelayedBroadcast value(1.0, /*delay_us=*/0);
  EXPECT_DOUBLE_EQ(value.Read(), 1.0);
  value.Publish(0.5);
  EXPECT_DOUBLE_EQ(value.Read(), 0.5);
}

TEST(DelayedBroadcastTest, DelayedModeHidesFreshUpdates) {
  DelayedBroadcast value(1.0, /*delay_us=*/50000);  // 50 ms
  value.Publish(0.5);
  EXPECT_DOUBLE_EQ(value.Read(), 1.0);  // still in flight
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_DOUBLE_EQ(value.Read(), 0.5);  // delivered
}

TEST(DelayedBroadcastTest, UpdatesDeliverInOrder) {
  DelayedBroadcast value(1.0, /*delay_us=*/10000);
  value.Publish(0.7);
  value.Publish(0.4);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_DOUBLE_EQ(value.Read(), 0.4);  // latest wins after delay
}

// Pins the flip-visibility contract the lock-free restructure must keep:
// delayed-mode updates flip on the *first read at or after* the due time,
// even when nobody polled during the delay window and Publish has been
// idle since. A reader must never have to wait for a second Publish (or a
// second Read) to observe an elapsed update.
TEST(DelayedBroadcastTest, FirstReadAfterDelayObservesUpdate) {
  DelayedBroadcast value(1.0, /*delay_us=*/5000);  // 5 ms
  value.Publish(0.25);
  // No reads during the delay window; Publish stays idle.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_DOUBLE_EQ(value.Read(), 0.25);  // the very first read flips
  EXPECT_DOUBLE_EQ(value.Read(), 0.25);  // and it stays flipped
}

TEST(DelayedBroadcastTest, FastPathReadsDoNotFlipEarly) {
  DelayedBroadcast value(1.0, /*delay_us=*/200000);  // 200 ms
  value.Publish(0.5);
  // Hammer the fast path while the update is still in flight.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(value.Read(), 1.0);
  }
}

TEST(DelayedBroadcastTest, ConcurrentReadersAgreeAfterDelay) {
  DelayedBroadcast value(1.0, /*delay_us=*/2000);
  value.Publish(0.3);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::vector<std::thread> readers;
  std::atomic<int> flipped{0};
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      if (value.Read() == 0.3) flipped.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(flipped.load(), 4);
}

TEST(CoordinatorTest, ShardPoolDrainsInSeededOrder) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(2, 5, ConstrainMode::kNone, &rank, 0);
  coordinator.SeedShards({cp::IntDomain(0, 9), cp::IntDomain(10, 19),
                          cp::IntDomain(20, 29)});
  EXPECT_EQ(coordinator.shards_seeded(), 3);
  auto a = coordinator.PopShard();
  auto b = coordinator.PopShard();
  auto c = coordinator.PopShard();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->lo, 0);
  EXPECT_EQ(b->lo, 10);
  EXPECT_EQ(c->lo, 20);
  EXPECT_FALSE(coordinator.PopShard().has_value());  // drained
}

TEST(CoordinatorTest, CancelledPoolStopsHandingOutShards) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 5, ConstrainMode::kNone, &rank, 0);
  coordinator.SeedShards({cp::IntDomain(0, 9), cp::IntDomain(10, 19)});
  ASSERT_TRUE(coordinator.PopShard().has_value());
  coordinator.Cancel();
  EXPECT_FALSE(coordinator.PopShard().has_value());
  coordinator.ArriveMainSearchDone();  // must not deadlock or assert
}

TEST(CoordinatorTest, BarrierReleasesOnceWorkStealersDrainPool) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(3, 5, ConstrainMode::kNone, &rank, 0);
  coordinator.SeedShards({cp::IntDomain(0, 4), cp::IntDomain(5, 9),
                          cp::IntDomain(10, 14), cp::IntDomain(15, 19),
                          cp::IntDomain(20, 24)});
  std::atomic<int> popped{0};
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      while (coordinator.PopShard().has_value()) popped.fetch_add(1);
      coordinator.ArriveMainSearchDone();
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), 5);    // every shard executed exactly once
  EXPECT_EQ(released.load(), 3);  // barrier == pool drained + quiescent
}

TEST(CoordinatorTest, TracksFirstResultOnce) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 5, ConstrainMode::kNone, &rank, 0);
  EXPECT_LT(coordinator.first_result_s(), 0.0);
  coordinator.NoteResult();
  const double first = coordinator.first_result_s();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  coordinator.NoteResult();
  EXPECT_DOUBLE_EQ(coordinator.first_result_s(), first);  // idempotent
}

TEST(CoordinatorTest, PublishProgressMirrorsTracker) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 1, ConstrainMode::kNone, &rank, 0);
  EXPECT_DOUBLE_EQ(coordinator.CurrentMrp(), 1.0);

  Solution s;
  s.point = {3};
  s.values = {3.0};
  s.rp = 0.4;
  coordinator.tracker().Add(std::move(s));
  coordinator.PublishProgress();
  EXPECT_DOUBLE_EQ(coordinator.CurrentMrp(), 0.4);
}

TEST(CoordinatorTest, BarrierReleasesWhenAllArrive) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(3, 5, ConstrainMode::kNone, &rank, 0);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      coordinator.ArriveMainSearchDone();
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(CoordinatorTest, CancellationFlag) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 5, ConstrainMode::kNone, &rank, 0);
  EXPECT_FALSE(coordinator.cancelled());
  coordinator.Cancel();
  EXPECT_TRUE(coordinator.cancelled());
  EXPECT_TRUE(coordinator.cancel_flag().load());
}

}  // namespace
}  // namespace dqr::core
