#include "core/coordinator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dqr::core {
namespace {

RankModel SimpleRank() {
  return RankModel({{Interval(0, 10), Interval(0, 10), -1.0, true, true}});
}

TEST(DelayedBroadcastTest, ImmediateModePublishesInstantly) {
  DelayedBroadcast value(1.0, /*delay_us=*/0);
  EXPECT_DOUBLE_EQ(value.Read(), 1.0);
  value.Publish(0.5);
  EXPECT_DOUBLE_EQ(value.Read(), 0.5);
}

TEST(DelayedBroadcastTest, DelayedModeHidesFreshUpdates) {
  DelayedBroadcast value(1.0, /*delay_us=*/50000);  // 50 ms
  value.Publish(0.5);
  EXPECT_DOUBLE_EQ(value.Read(), 1.0);  // still in flight
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_DOUBLE_EQ(value.Read(), 0.5);  // delivered
}

TEST(DelayedBroadcastTest, UpdatesDeliverInOrder) {
  DelayedBroadcast value(1.0, /*delay_us=*/10000);
  value.Publish(0.7);
  value.Publish(0.4);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_DOUBLE_EQ(value.Read(), 0.4);  // latest wins after delay
}

TEST(CoordinatorTest, TracksFirstResultOnce) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 5, ConstrainMode::kNone, &rank, 0);
  EXPECT_LT(coordinator.first_result_s(), 0.0);
  coordinator.NoteResult();
  const double first = coordinator.first_result_s();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  coordinator.NoteResult();
  EXPECT_DOUBLE_EQ(coordinator.first_result_s(), first);  // idempotent
}

TEST(CoordinatorTest, PublishProgressMirrorsTracker) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 1, ConstrainMode::kNone, &rank, 0);
  EXPECT_DOUBLE_EQ(coordinator.CurrentMrp(), 1.0);

  Solution s;
  s.point = {3};
  s.values = {3.0};
  s.rp = 0.4;
  coordinator.tracker().Add(std::move(s));
  coordinator.PublishProgress();
  EXPECT_DOUBLE_EQ(coordinator.CurrentMrp(), 0.4);
}

TEST(CoordinatorTest, BarrierReleasesWhenAllArrive) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(3, 5, ConstrainMode::kNone, &rank, 0);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      coordinator.ArriveMainSearchDone();
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(CoordinatorTest, CancellationFlag) {
  const RankModel rank = SimpleRank();
  Coordinator coordinator(1, 5, ConstrainMode::kNone, &rank, 0);
  EXPECT_FALSE(coordinator.cancelled());
  coordinator.Cancel();
  EXPECT_TRUE(coordinator.cancelled());
  EXPECT_TRUE(coordinator.cancel_flag().load());
}

}  // namespace
}  // namespace dqr::core
