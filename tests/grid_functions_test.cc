#include "searchlight/grid_functions.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "data/grid_synthetic.h"

namespace dqr::searchlight {
namespace {

data::GridBundle MakeBundle(int64_t rows, int64_t cols, uint64_t seed) {
  return data::MakeGridDataset(rows, cols, seed).value();
}

GridFunctionContext Ctx(const data::GridBundle& bundle) {
  GridFunctionContext ctx;
  ctx.grid = bundle.grid;
  ctx.synopsis = bundle.synopsis;
  return ctx;
}

TEST(GridFunctionsTest, EvaluateMatchesNaive) {
  const auto bundle = MakeBundle(60, 80, 11);
  RectAvgFunction avg(Ctx(bundle));
  RectMaxFunction mx(Ctx(bundle));
  RectContrastFunction left(Ctx(bundle),
                            RectContrastFunction::Side::kLeft, 4);
  RectContrastFunction right(Ctx(bundle),
                             RectContrastFunction::Side::kRight, 4);

  Rng rng(5);
  for (int iter = 0; iter < 150; ++iter) {
    const int64_t y = rng.UniformInt(0, 58);
    const int64_t x = rng.UniformInt(0, 78);
    const int64_t h = rng.UniformInt(1, 6);
    const int64_t w = rng.UniformInt(1, 6);
    const std::vector<int64_t> point = {y, x, h, w};
    const int64_t r1 = std::min<int64_t>(60, y + h);
    const int64_t c1 = std::min<int64_t>(80, x + w);

    EXPECT_NEAR(avg.Evaluate(point),
                bundle.grid->AggregateRect(y, r1, x, c1).avg(), 1e-9);
    EXPECT_DOUBLE_EQ(mx.Evaluate(point),
                     bundle.grid->MaxOver(y, r1, x, c1));

    const double main = bundle.grid->MaxOver(y, r1, x, c1);
    const double expected_left =
        x == 0 ? 0.0
               : std::abs(main - bundle.grid->MaxOver(
                                     y, r1, std::max<int64_t>(0, x - 4),
                                     x));
    EXPECT_DOUBLE_EQ(left.Evaluate(point), expected_left);
    const double expected_right =
        c1 >= 80 ? 0.0
                 : std::abs(main - bundle.grid->MaxOver(
                                       y, r1, c1,
                                       std::min<int64_t>(80, c1 + 4)));
    EXPECT_DOUBLE_EQ(right.Evaluate(point), expected_right);
  }
}

// The load-bearing property in 2-D: estimates contain the exact value at
// every assignment of the box, including grid edges.
class GridFunctionSoundnessTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridFunctionSoundnessTest, EstimateContainsAllExactValues) {
  const auto bundle = MakeBundle(48, 64, GetParam());
  std::vector<std::unique_ptr<cp::ConstraintFunction>> fns;
  fns.push_back(std::make_unique<RectAvgFunction>(Ctx(bundle)));
  fns.push_back(std::make_unique<RectMaxFunction>(Ctx(bundle)));
  fns.push_back(std::make_unique<RectContrastFunction>(
      Ctx(bundle), RectContrastFunction::Side::kLeft, 3));
  fns.push_back(std::make_unique<RectContrastFunction>(
      Ctx(bundle), RectContrastFunction::Side::kRight, 3));

  Rng rng(GetParam() ^ 0x7777);
  for (int iter = 0; iter < 60; ++iter) {
    const int64_t y_lo = rng.UniformInt(0, 46);
    const int64_t y_hi = rng.UniformInt(y_lo, std::min<int64_t>(47, y_lo + 10));
    const int64_t x_lo = rng.UniformInt(0, 62);
    const int64_t x_hi = rng.UniformInt(x_lo, std::min<int64_t>(63, x_lo + 10));
    const int64_t h_lo = rng.UniformInt(1, 4);
    const int64_t h_hi = h_lo + rng.UniformInt(0, 3);
    const int64_t w_lo = rng.UniformInt(1, 4);
    const int64_t w_hi = w_lo + rng.UniformInt(0, 3);
    const cp::DomainBox box = {
        cp::IntDomain(y_lo, y_hi), cp::IntDomain(x_lo, x_hi),
        cp::IntDomain(h_lo, h_hi), cp::IntDomain(w_lo, w_hi)};

    for (auto& fn : fns) {
      const Interval estimate = fn->Estimate(box);
      ASSERT_FALSE(estimate.empty());
      for (int64_t y = y_lo; y <= y_hi; ++y) {
        for (int64_t x = x_lo; x <= x_hi; ++x) {
          for (int64_t h = h_lo; h <= h_hi; ++h) {
            for (int64_t w = w_lo; w <= w_hi; ++w) {
              const double exact = fn->Evaluate({y, x, h, w});
              ASSERT_TRUE(estimate.Contains(exact))
                  << fn->name() << " at (" << y << "," << x << "," << h
                  << "," << w << ") exact=" << exact
                  << " est=" << estimate.ToString();
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridFunctionSoundnessTest,
                         ::testing::Values(2u, 4u, 6u, 21u));

TEST(GridFunctionsTest, StateSaveRestoreRoundTrip) {
  const auto bundle = MakeBundle(64, 64, 31);
  RectMaxFunction mx(Ctx(bundle));
  const cp::DomainBox box = {cp::IntDomain(10, 20), cp::IntDomain(5, 25),
                             cp::IntDomain(2, 4), cp::IntDomain(2, 4)};
  const Interval before = mx.Estimate(box);
  auto state = mx.SaveState(box);
  ASSERT_NE(state, nullptr);
  mx.ClearState();
  mx.RestoreState(*state);
  EXPECT_EQ(mx.Estimate(box), before);
}

TEST(GridFunctionsTest, BoundRectTighterThanRoot) {
  const auto bundle = MakeBundle(64, 64, 41);
  RectMaxFunction mx(Ctx(bundle));
  const Interval root =
      mx.Estimate({cp::IntDomain(0, 50), cp::IntDomain(0, 50),
                   cp::IntDomain(2, 6), cp::IntDomain(2, 6)});
  const Interval leaf =
      mx.Estimate({cp::IntDomain(20, 20), cp::IntDomain(20, 20),
                   cp::IntDomain(3, 3), cp::IntDomain(3, 3)});
  EXPECT_LE(root.lo, leaf.lo);
  EXPECT_GE(root.hi, leaf.hi);
}

}  // namespace
}  // namespace dqr::searchlight
