#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/refiner.h"
#include "core/skyline.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

// A loose query with plenty of exact results: avg >= 105 (any elevated
// area) and contrast >= 20 (any spike).
TestQueryParams Loose() {
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  p.k = 7;
  return p;
}

std::vector<Solution> TopKByRank(std::vector<Solution> exact, int64_t k) {
  std::sort(exact.begin(), exact.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rk != b.rk) return a.rk > b.rk;
              return a.point < b.point;
            });
  if (static_cast<int64_t>(exact.size()) > k) {
    exact.resize(static_cast<size_t>(k));
  }
  return exact;
}

TEST(ConstrainTest, RankModeMatchesBruteForceTopK) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();
  const searchlight::QuerySpec query = MakeTestQuery(bundle, params);

  const auto exact = ExactOnly(BruteForceAll(query));
  ASSERT_GT(exact.size(), static_cast<size_t>(params.k));
  const auto expected = TopKByRank(exact, params.k);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  const auto run = ExecuteQuery(query, options).value();

  ASSERT_EQ(run.results.size(), static_cast<size_t>(params.k));
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(run.results[i].point, expected[i].point) << "rank " << i;
    EXPECT_NEAR(run.results[i].rk, expected[i].rk, 1e-9);
    EXPECT_DOUBLE_EQ(run.results[i].rp, 0.0);
  }
  EXPECT_GT(run.stats.mrk_updates, 0);
}

TEST(ConstrainTest, RankModeMultiInstanceAgrees) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();
  const searchlight::QuerySpec query = MakeTestQuery(bundle, params);
  const auto expected =
      TopKByRank(ExactOnly(BruteForceAll(query)), params.k);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  options.num_instances = 3;
  const auto run = ExecuteQuery(query, options).value();
  EXPECT_EQ(Points(run.results), Points(expected));
}

TEST(ConstrainTest, SkylineModeMatchesBruteForcePareto) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();
  searchlight::QuerySpec query = MakeTestQuery(bundle, params);

  const auto exact = ExactOnly(BruteForceAll(query));
  ASSERT_GT(exact.size(), static_cast<size_t>(params.k));

  const RankModel rank = BuildRankModel(query).value();
  std::set<std::vector<int64_t>> expected;
  for (const Solution& s : exact) {
    const auto sv = rank.OrientForSkyline(s.values);
    bool dominated = false;
    for (const Solution& t : exact) {
      if (Skyline::Dominates(rank.OrientForSkyline(t.values), sv)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expected.insert(s.point);
  }
  ASSERT_FALSE(expected.empty());

  RefineOptions options;
  options.constrain = ConstrainMode::kSkyline;
  const auto run = ExecuteQuery(query, options).value();

  std::set<std::vector<int64_t>> actual;
  for (const Solution& s : run.results) actual.insert(s.point);
  EXPECT_EQ(actual, expected);
}

TEST(ConstrainTest, OffModeReturnsEveryExactResult) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();
  const searchlight::QuerySpec query = MakeTestQuery(bundle, params);
  const auto exact = ExactOnly(BruteForceAll(query));

  RefineOptions options;
  options.constrain = ConstrainMode::kNone;
  const auto run = ExecuteQuery(query, options).value();

  auto expected_points = Points(exact);
  std::sort(expected_points.begin(), expected_points.end());
  EXPECT_EQ(Points(run.results), expected_points);
}

TEST(ConstrainTest, MinimizePreferenceInvertsRanking) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();
  searchlight::QuerySpec query = MakeTestQuery(bundle, params);
  // Prefer small averages instead of large ones.
  query.constraints[0].preference = searchlight::RankPreference::kMinimize;

  auto exact = ExactOnly(BruteForceAll(query));
  const RankModel rank = BuildRankModel(query).value();
  for (Solution& s : exact) s.rk = rank.Rank(s.values);
  const auto expected = TopKByRank(std::move(exact), params.k);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  const auto run = ExecuteQuery(query, options).value();
  EXPECT_EQ(Points(run.results), Points(expected));
}

TEST(ConstrainTest, RankWeightsChangeWinners) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = Loose();

  searchlight::QuerySpec weighted = MakeTestQuery(bundle, params);
  weighted.constraints[0].rank_weight = 0.9;  // avg dominates the rank
  weighted.constraints[1].rank_weight = 0.05;
  weighted.constraints[2].rank_weight = 0.05;

  auto exact = ExactOnly(BruteForceAll(weighted));
  const RankModel rank = BuildRankModel(weighted).value();
  for (Solution& s : exact) s.rk = rank.Rank(s.values);
  const auto expected = TopKByRank(std::move(exact), params.k);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  const auto run = ExecuteQuery(weighted, options).value();
  EXPECT_EQ(Points(run.results), Points(expected));
}

TEST(ConstrainTest, ExactlyKResultsNeedNoRefinement) {
  // Tune the contrast threshold so the exact-result count is >= k with
  // constraining off vs on: both return the same set when count == k.
  const auto bundle = MakeSmallBundle();
  TestQueryParams p = Loose();
  const searchlight::QuerySpec probe = MakeTestQuery(bundle, p);
  const auto exact = ExactOnly(BruteForceAll(probe));
  ASSERT_GT(exact.size(), 0u);

  TestQueryParams exact_k = p;
  exact_k.k = static_cast<int64_t>(exact.size());
  const searchlight::QuerySpec query = MakeTestQuery(bundle, exact_k);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  const auto run = ExecuteQuery(query, options).value();
  auto expected_points = Points(exact);
  std::sort(expected_points.begin(), expected_points.end());
  auto actual_points = Points(run.results);
  std::sort(actual_points.begin(), actual_points.end());
  EXPECT_EQ(actual_points, expected_points);
}

}  // namespace
}  // namespace dqr::core
