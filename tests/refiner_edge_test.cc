#include <gtest/gtest.h>

#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

TEST(RefinerEdgeTest, RejectsMalformedQueries) {
  const auto bundle = MakeSmallBundle();
  searchlight::QuerySpec query = MakeTestQuery(bundle, TestQueryParams{});

  searchlight::QuerySpec no_vars = query;
  no_vars.domains.clear();
  EXPECT_FALSE(ExecuteQuery(no_vars, RefineOptions{}).ok());

  searchlight::QuerySpec empty_domain = query;
  empty_domain.domains[0] = cp::IntDomain(5, 3);
  EXPECT_FALSE(ExecuteQuery(empty_domain, RefineOptions{}).ok());

  searchlight::QuerySpec bad_k = query;
  bad_k.k = -1;
  EXPECT_FALSE(ExecuteQuery(bad_k, RefineOptions{}).ok());

  searchlight::QuerySpec no_factory = query;
  no_factory.constraints[0].make_function = nullptr;
  EXPECT_FALSE(ExecuteQuery(no_factory, RefineOptions{}).ok());

  searchlight::QuerySpec bad_weight = query;
  bad_weight.constraints[0].relax_weight = 2.0;
  EXPECT_FALSE(ExecuteQuery(bad_weight, RefineOptions{}).ok());
}

TEST(RefinerEdgeTest, RejectsMalformedOptions) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, TestQueryParams{});

  RefineOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_FALSE(ExecuteQuery(query, bad_alpha).ok());

  RefineOptions bad_rrd;
  bad_rrd.replay_relaxation_distance = 0.0;
  EXPECT_FALSE(ExecuteQuery(query, bad_rrd).ok());

  RefineOptions bad_instances;
  bad_instances.num_instances = 0;
  EXPECT_FALSE(ExecuteQuery(query, bad_instances).ok());

  RefineOptions bad_cap;
  bad_cap.max_recorded_fails = 0;
  EXPECT_FALSE(ExecuteQuery(query, bad_cap).ok());
}

TEST(RefinerEdgeTest, KZeroReturnsEveryExactResult) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  p.k = 0;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto exact = ExactOnly(BruteForceAll(query));
  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  auto expected = Points(exact);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Points(run.results), expected);
  EXPECT_EQ(run.stats.fails_recorded, 0);  // refinement inactive
}

TEST(RefinerEdgeTest, TimeBudgetCancelsCleanly) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);
  RefineOptions options;
  options.time_budget_s = 1e-7;  // expires immediately
  const auto run = ExecuteQuery(query, options).value();
  EXPECT_FALSE(run.stats.completed);
}

TEST(RefinerEdgeTest, MoreInstancesThanDomainValues) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  searchlight::QuerySpec query = MakeTestQuery(bundle, p);
  // Shrink variable 0 to three values.
  query.domains[0] = cp::IntDomain(300, 302);

  RefineOptions options;
  options.num_instances = 16;  // more than |domain 0|
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const auto all = BruteForceAll(query);
  EXPECT_EQ(run.value().results.size(),
            std::min(all.size(), static_cast<size_t>(query.k)));
}

TEST(RefinerEdgeTest, SingleValueDomains) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(50, 250);  // always satisfied
  p.contrast_min = 0.0;
  searchlight::QuerySpec query = MakeTestQuery(bundle, p);
  query.domains[0] = cp::IntDomain(100, 100);
  query.domains[1] = cp::IntDomain(6, 6);
  query.k = 10;

  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].point, (std::vector<int64_t>{100, 6}));
}

TEST(RefinerEdgeTest, RepeatedExecutionIsDeterministic) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  RefineOptions options;
  options.num_instances = 2;
  const auto run1 = ExecuteQuery(query, options).value();
  const auto run2 = ExecuteQuery(query, options).value();
  EXPECT_EQ(Points(run1.results), Points(run2.results));
}

}  // namespace
}  // namespace dqr::core
