// Property tests for the cross-query semantic cache (DESIGN.md
// "Cross-query semantic cache"): warm-start bounds must be admissible
// (injecting them never changes the answer), subsumption must never
// synthesize a wrong answer (whenever it fires, its output is
// byte-identical to a cold run), and the session codec round-trips.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/bounds_memo.h"
#include "cache/semantic_cache.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "testing/generator.h"

namespace dqr::fuzz {
namespace {

// Cold-runs a workload under the sequential baseline config.
Result<core::RunResult> ColdRun(const Workload& w) {
  EngineConfig config;
  return core::ExecuteQuery(w.query, config.ToOptions(w, nullptr));
}

// Packages a completed cold run as the CachedAnswer the cache would have
// stored for it.
cache::CachedAnswer MakeAnswer(const Workload& w, const std::string& dataset,
                               const core::RunResult& run) {
  cache::CachedAnswer answer;
  answer.dataset_id = dataset;
  answer.query = w.query;
  answer.function_ids = w.function_ids;
  answer.alpha = w.alpha;
  answer.constrain = w.constrain;
  answer.result_spacing = w.result_spacing;
  answer.results = run.results;
  answer.exact_results = run.stats.exact_results;
  return answer;
}

cache::CachedQuery AsCachedQuery(const Workload& w,
                                 const std::string& dataset) {
  cache::CachedQuery cq;
  cq.query = w.query;
  cq.dataset_id = dataset;
  cq.function_ids = w.function_ids;
  return cq;
}

TEST(SessionCodecTest, PlanRoundTripsAndRejectsGarbage) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const SessionPlan plan =
        MakeSessionPlan(seed, static_cast<int>(1 + seed % 5));
    const auto back = SessionPlan::FromString(plan.ToString());
    ASSERT_TRUE(back.ok()) << plan.ToString();
    EXPECT_EQ(back.value().ToString(), plan.ToString());
  }
  const auto empty = SessionPlan::FromString("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().steps.empty());
  EXPECT_FALSE(SessionPlan::FromString("relax,,shift").ok());
  EXPECT_FALSE(SessionPlan::FromString("relax,sideways").ok());
  for (const SessionMutation m :
       {SessionMutation::kRepeat, SessionMutation::kRelax,
        SessionMutation::kTighten, SessionMutation::kShift}) {
    const auto back = SessionMutationFromName(SessionMutationName(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), m);
  }
}

TEST(SessionCodecTest, PlansArePrefixStable) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const SessionPlan longer = MakeSessionPlan(seed, 6);
    const SessionPlan shorter = MakeSessionPlan(seed, 3);
    ASSERT_EQ(longer.steps.size(), 6u);
    for (size_t i = 0; i < shorter.steps.size(); ++i) {
      EXPECT_EQ(longer.steps[i], shorter.steps[i]) << "seed " << seed;
    }
  }
}

TEST(SessionGeneratorTest, SessionsAreDeterministicAndShareFunctions) {
  const SessionPlan plan = MakeSessionPlan(7, 4);
  const QuerySession a = MakeSession(7, FuzzMode::kRelax, plan);
  const QuerySession b = MakeSession(7, FuzzMode::kRelax, plan);
  ASSERT_EQ(a.steps.size(), 5u);
  EXPECT_EQ(a.dataset_id, b.dataset_id);
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].summary, b.steps[i].summary);
    // Mutations only move bounds/domains — function identity is fixed.
    EXPECT_EQ(a.steps[i].function_ids, a.steps.front().function_ids);
    ASSERT_EQ(a.steps[i].function_ids.size(),
              a.steps[i].query.constraints.size());
  }
}

TEST(SharedBoundsMemoTest, EpochInvalidationErasesTheSpace) {
  cache::SemanticCache sem;
  const std::string dataset = "epoch_test";
  const uint64_t space = sem.MemoSpace(dataset);
  // Insert reports evictions, not success; a fresh memo has room.
  ASSERT_FALSE(sem.memo().Insert(space, 0, 3, 9, Interval(1.0, 2.0)));
  Interval got;
  ASSERT_TRUE(sem.memo().Lookup(space, 0, 3, 9, &got));
  EXPECT_EQ(got.lo, 1.0);
  EXPECT_EQ(got.hi, 2.0);

  const uint64_t epoch_before = sem.CurrentEpoch(dataset);
  EXPECT_EQ(sem.InvalidateDataset(dataset), epoch_before + 1);
  // The new space key differs and the old entries are gone.
  EXPECT_NE(sem.MemoSpace(dataset), space);
  EXPECT_FALSE(sem.memo().Lookup(space, 0, 3, 9, &got));
  EXPECT_FALSE(sem.memo().Lookup(sem.MemoSpace(dataset), 0, 3, 9, &got));
}

// The headline warm-start property: bounds derived from a cached looser
// answer must be admissible for the tighter query — running with them
// injected returns byte-identical results to the cold run, and no final
// result ever lies beyond the injected cap/floor.
TEST(WarmStartInvariantsTest, WarmBoundsAreAdmissible) {
  int derived = 0;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const FuzzMode mode =
        seed % 2 == 0 ? FuzzMode::kConstrain : FuzzMode::kRelax;
    WorkloadOverrides overrides;
    overrides.no_diversity = true;
    SessionPlan plan;
    plan.steps = {SessionMutation::kTighten};
    const QuerySession session =
        MakeSession(seed, mode, plan, overrides, seed % 4 == 3);
    const Workload& loose = session.steps[0];
    const Workload& tight = session.steps[1];

    const auto loose_run = ColdRun(loose);
    ASSERT_TRUE(loose_run.ok()) << loose.summary;
    const auto answer = std::make_shared<const cache::CachedAnswer>(
        MakeAnswer(loose, session.dataset_id, loose_run.value()));

    EngineConfig config;
    core::RefineOptions options = config.ToOptions(tight, nullptr);
    const cache::WarmBounds warm = cache::ComputeWarmBounds(
        AsCachedQuery(tight, session.dataset_id), options, {answer});

    const auto cold = ColdRun(tight);
    ASSERT_TRUE(cold.ok()) << tight.summary;
    const std::string baseline = core::Canonicalize(cold.value().results);

    if (warm.any()) {
      ++derived;
      // Structural admissibility: the true top-k survives the bounds.
      for (const core::Solution& s : cold.value().results) {
        EXPECT_LE(s.rp, warm.mrp_cap + 1e-12) << tight.summary;
        if (s.rp == 0.0) {
          EXPECT_GE(s.rk, warm.mrk_floor - 1e-12) << tight.summary;
        }
      }
    }
    // End-to-end admissibility: injected bounds never change the answer
    // (vacuously true when warm.any() is false — still worth running).
    core::RefineOptions warmed = config.ToOptions(tight, nullptr);
    warmed.warm_mrp_cap = warm.mrp_cap;
    warmed.warm_mrk_floor = warm.mrk_floor;
    const auto warm_run = core::ExecuteQuery(tight.query, warmed);
    ASSERT_TRUE(warm_run.ok()) << tight.summary;
    EXPECT_EQ(core::Canonicalize(warm_run.value().results), baseline)
        << tight.summary;
  }
  // The property must not pass vacuously.
  EXPECT_GT(derived, 0) << "no seed ever derived warm bounds";
}

// The headline subsumption property: whenever TrySubsume certifies an
// answer for the tighter query out of the looser cached one, that answer
// is byte-identical to actually executing the tighter query.
TEST(SubsumptionInvariantsTest, SubsumedAnswersAreNeverWrong) {
  int subsumed = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const FuzzMode mode =
        seed % 2 == 0 ? FuzzMode::kConstrain : FuzzMode::kRelax;
    WorkloadOverrides overrides;
    overrides.no_diversity = true;
    // Base plus one relaxation: the base is the tight query, the relaxed
    // step the loose cached one.
    SessionPlan plan;
    plan.steps = {SessionMutation::kRelax};
    const QuerySession session =
        MakeSession(seed, mode, plan, overrides, seed % 4 == 3);
    const Workload& tight = session.steps[0];
    const Workload& loose = session.steps[1];

    const auto loose_run = ColdRun(loose);
    ASSERT_TRUE(loose_run.ok()) << loose.summary;
    const cache::CachedAnswer answer =
        MakeAnswer(loose, session.dataset_id, loose_run.value());

    EngineConfig config;
    core::RefineOptions options = config.ToOptions(tight, nullptr);
    const auto synthesized = cache::TrySubsume(
        AsCachedQuery(tight, session.dataset_id), options, answer);
    if (!synthesized.has_value()) continue;
    ++subsumed;

    const auto cold = ColdRun(tight);
    ASSERT_TRUE(cold.ok()) << tight.summary;
    EXPECT_EQ(core::Canonicalize(*synthesized),
              core::Canonicalize(cold.value().results))
        << tight.summary << " | loose " << loose.summary;
  }
  EXPECT_GT(subsumed, 0) << "no seed ever subsumed";
}

// End-to-end cache behavior: a repeated query is an exact hit with a
// byte-identical answer; invalidation forces re-execution.
TEST(SemanticCacheTest, ExactHitsAndInvalidation) {
  cache::SemanticCache sem;
  const SessionPlan plan = MakeSessionPlan(3, 0);
  const QuerySession session = MakeSession(3, FuzzMode::kConstrain, plan, {},
                                           false, &sem.memo(),
                                           sem.MemoSpace("fuzz_3"));
  const Workload& w = session.steps[0];
  EngineConfig config;
  const cache::CachedQuery cq = AsCachedQuery(w, session.dataset_id);

  cache::CacheOutcome outcome = cache::CacheOutcome::kBypass;
  const auto first = cache::ExecuteQueryCached(
      &sem, cq, config.ToOptions(w, nullptr), &outcome);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(outcome, cache::CacheOutcome::kMiss);
  const std::string baseline = core::Canonicalize(first.value().results);

  const auto second = cache::ExecuteQueryCached(
      &sem, cq, config.ToOptions(w, nullptr), &outcome);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(outcome, cache::CacheOutcome::kExactHit);
  EXPECT_EQ(core::Canonicalize(second.value().results), baseline);
  EXPECT_EQ(second.value().stats.answer_cache_exact_hits, 1);
  EXPECT_TRUE(second.value().stats.completed);

  sem.InvalidateDataset(session.dataset_id);
  const auto third = cache::ExecuteQueryCached(
      &sem, cq, config.ToOptions(w, nullptr), &outcome);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(outcome, cache::CacheOutcome::kExactHit);
  EXPECT_EQ(core::Canonicalize(third.value().results), baseline);

  const cache::SemanticCache::Stats stats = sem.stats();
  EXPECT_EQ(stats.exact_hits, 1);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_GE(stats.insertions, 2);
}

// A mismatched function id must fence off every reuse path: same spec,
// different id => no exact hit, no subsumption, no warm bounds.
TEST(SemanticCacheTest, FunctionIdentityFencesReuse) {
  cache::SemanticCache sem;
  const QuerySession session =
      MakeSession(5, FuzzMode::kRelax, SessionPlan{}, {}, false, &sem.memo(),
                  sem.MemoSpace("fuzz_5"));
  const Workload& w = session.steps[0];
  EngineConfig config;

  cache::CacheOutcome outcome = cache::CacheOutcome::kBypass;
  const auto first = cache::ExecuteQueryCached(
      &sem, AsCachedQuery(w, session.dataset_id),
      config.ToOptions(w, nullptr), &outcome);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(outcome, cache::CacheOutcome::kMiss);

  cache::CachedQuery renamed = AsCachedQuery(w, session.dataset_id);
  renamed.function_ids[0] += ";vr=other";
  const auto second = cache::ExecuteQueryCached(
      &sem, renamed, config.ToOptions(w, nullptr), &outcome);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(outcome, cache::CacheOutcome::kMiss);
  EXPECT_EQ(core::Canonicalize(second.value().results),
            core::Canonicalize(first.value().results));
}

}  // namespace
}  // namespace dqr::fuzz
