#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/waveform.h"

namespace dqr::data {
namespace {

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticOptions options;
  options.length = 4096;
  auto a = GenerateSynthetic(options).value();
  auto b = GenerateSynthetic(options).value();
  for (int64_t i = 0; i < options.length; i += 37) {
    EXPECT_DOUBLE_EQ(a->At(i), b->At(i));
  }
  options.seed = 43;
  auto c = GenerateSynthetic(options).value();
  bool differs = false;
  for (int64_t i = 0; i < options.length && !differs; ++i) {
    differs = a->At(i) != c->At(i);
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, ValuesClampedToDeclaredRange) {
  SyntheticOptions options;
  options.length = 8192;
  auto arr = GenerateSynthetic(options).value();
  const array::WindowAggregates agg =
      arr->AggregateWindow(0, options.length);
  EXPECT_GE(agg.min, options.value_lo);
  EXPECT_LE(agg.max, options.value_hi);
}

TEST(SyntheticTest, ContainsRegionStructure) {
  SyntheticOptions options;
  options.length = 1 << 16;
  options.noise_sigma = 1.0;
  auto arr = GenerateSynthetic(options).value();
  // Distinct regions have visibly different means.
  const double m1 = arr->AggregateWindow(1000, 2000).avg();
  bool found_different = false;
  for (int64_t r = 1; r < options.length / options.region_len; ++r) {
    const int64_t lo = r * options.region_len + 1000;
    const double m = arr->AggregateWindow(lo, lo + 1000).avg();
    if (std::abs(m - m1) > 20.0) {
      found_different = true;
      break;
    }
  }
  EXPECT_TRUE(found_different);
}

TEST(SyntheticTest, RejectsBadOptions) {
  SyntheticOptions options;
  options.length = 0;
  EXPECT_FALSE(GenerateSynthetic(options).ok());
  options.length = 100;
  options.region_len = 0;
  EXPECT_FALSE(GenerateSynthetic(options).ok());
}

TEST(WaveformTest, DeterministicAndClamped) {
  WaveformOptions options;
  options.length = 8192;
  auto a = GenerateAbpWaveform(options).value();
  auto b = GenerateAbpWaveform(options).value();
  for (int64_t i = 0; i < options.length; i += 41) {
    EXPECT_DOUBLE_EQ(a->At(i), b->At(i));
  }
  const array::WindowAggregates agg =
      a->AggregateWindow(0, options.length);
  EXPECT_GE(agg.min, options.value_lo);
  EXPECT_LE(agg.max, options.value_hi);
}

TEST(WaveformTest, BaselineNearBasePressure) {
  WaveformOptions options;
  options.length = 1 << 16;
  options.episodes_per_million = 0;  // baseline only
  options.events_per_million = 0;
  auto arr = GenerateAbpWaveform(options).value();
  const double mean = arr->AggregateWindow(0, options.length).avg();
  EXPECT_NEAR(mean, options.base_pressure, 8.0);
}

TEST(WaveformTest, EpisodesRaiseLocalAverages) {
  WaveformOptions calm;
  calm.length = 1 << 16;
  calm.episodes_per_million = 0;
  calm.events_per_million = 0;
  WaveformOptions busy = calm;
  busy.episodes_per_million = 2000.0;

  auto calm_arr = GenerateAbpWaveform(calm).value();
  auto busy_arr = GenerateAbpWaveform(busy).value();
  EXPECT_GT(busy_arr->AggregateWindow(0, busy.length).avg(),
            calm_arr->AggregateWindow(0, calm.length).avg() + 5.0);
}

TEST(WaveformTest, RejectsBadOptions) {
  WaveformOptions options;
  options.length = -5;
  EXPECT_FALSE(GenerateAbpWaveform(options).ok());
  options.length = 100;
  options.episode_len_lo = 10;
  options.episode_len_hi = 5;
  EXPECT_FALSE(GenerateAbpWaveform(options).ok());
}

}  // namespace
}  // namespace dqr::data
