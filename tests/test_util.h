#ifndef DQR_TESTS_TEST_UTIL_H_
#define DQR_TESTS_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "cp/domain.h"
#include "cp/function.h"

namespace dqr::testutil {

// A constraint function over integer decision variables defined by a
// scalar lambda, with *exact* interval estimates obtained by evaluating
// the lambda on every assignment in the box (test domains are tiny).
// Estimates are therefore sound and maximally tight, which makes search
// behaviour fully predictable in tests.
class ExactFunction : public cp::ConstraintFunction {
 public:
  using Fn = std::function<double(const std::vector<int64_t>&)>;

  ExactFunction(std::string name, Fn fn, Interval value_range)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        value_range_(value_range) {}

  std::string name() const override { return name_; }

  Interval Estimate(const cp::DomainBox& box) override {
    ++estimate_calls_;
    Interval out = Interval::Empty();
    std::vector<int64_t> point(box.size());
    EnumerateBox(box, 0, &point, &out);
    return out;
  }

  double Evaluate(const std::vector<int64_t>& point) override {
    ++evaluate_calls_;
    return fn_(point);
  }

  Interval value_range() const override { return value_range_; }

  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<ExactFunction>(name_, fn_, value_range_);
  }

  int64_t estimate_calls() const { return estimate_calls_; }
  int64_t evaluate_calls() const { return evaluate_calls_; }

 private:
  void EnumerateBox(const cp::DomainBox& box, size_t var,
                    std::vector<int64_t>* point, Interval* out) {
    if (var == box.size()) {
      *out = out->Union(Interval::Point(fn_(*point)));
      return;
    }
    for (int64_t v = box[var].lo; v <= box[var].hi; ++v) {
      (*point)[var] = v;
      EnumerateBox(box, var + 1, point, out);
    }
  }

  std::string name_;
  Fn fn_;
  Interval value_range_;
  int64_t estimate_calls_ = 0;
  int64_t evaluate_calls_ = 0;
};

// A loose variant: pads the exact estimate by `slack` on both sides
// (clipped to the value range), modelling a lossy synopsis. Still sound.
class PaddedFunction : public ExactFunction {
 public:
  PaddedFunction(std::string name, Fn fn, Interval value_range,
                 double slack)
      : ExactFunction(std::move(name), std::move(fn), value_range),
        slack_(slack) {}

  Interval Estimate(const cp::DomainBox& box) override {
    const Interval exact = ExactFunction::Estimate(box);
    return Interval(exact.lo - slack_, exact.hi + slack_)
        .Intersect(value_range());
  }

  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return nullptr;  // not needed in tests that use PaddedFunction
  }

 private:
  double slack_;
};

// Enumerates every assignment in `box` into a vector of points, in
// lexicographic order.
inline std::vector<std::vector<int64_t>> AllPoints(
    const cp::DomainBox& box) {
  std::vector<std::vector<int64_t>> points;
  std::vector<int64_t> point(box.size());
  const std::function<void(size_t)> rec = [&](size_t var) {
    if (var == box.size()) {
      points.push_back(point);
      return;
    }
    for (int64_t v = box[var].lo; v <= box[var].hi; ++v) {
      point[var] = v;
      rec(var + 1);
    }
  };
  rec(0);
  return points;
}

}  // namespace dqr::testutil

#endif  // DQR_TESTS_TEST_UTIL_H_
