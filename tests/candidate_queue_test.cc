#include "searchlight/candidate_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dqr::searchlight {
namespace {

Candidate Cand(int64_t x, double priority) {
  Candidate c;
  c.point = {x};
  c.priority = priority;
  return c;
}

TEST(CandidateQueueTest, FifoPreservesArrivalOrder) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 16);
  q.Push(Cand(1, 9.0));
  q.Push(Cand(2, 1.0));
  q.Push(Cand(3, 5.0));
  EXPECT_EQ(q.Pop()->point[0], 1);
  q.FinishedCurrent();
  EXPECT_EQ(q.Pop()->point[0], 2);
  q.FinishedCurrent();
  EXPECT_EQ(q.Pop()->point[0], 3);
  q.FinishedCurrent();
}

TEST(CandidateQueueTest, PriorityPopsLowestFirst) {
  CandidateQueue q(CandidateQueue::Order::kPriority, 16);
  q.Push(Cand(1, 0.9));
  q.Push(Cand(2, 0.1));
  q.Push(Cand(3, 0.5));
  EXPECT_EQ(q.Pop()->point[0], 2);
  q.FinishedCurrent();
  EXPECT_EQ(q.Pop()->point[0], 3);
  q.FinishedCurrent();
  EXPECT_EQ(q.Pop()->point[0], 1);
  q.FinishedCurrent();
}

TEST(CandidateQueueTest, CloseReleasesConsumer) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 4);
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
  });
  q.Close();
  consumer.join();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(Cand(1, 0)));
}

TEST(CandidateQueueTest, PendingCandidatesSurviveClose) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 4);
  q.Push(Cand(7, 0));
  q.Close();
  auto c = q.Pop();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->point[0], 7);
  q.FinishedCurrent();
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(CandidateQueueTest, BackpressureBlocksProducerUntilPop) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 1);
  q.Push(Cand(1, 0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(Cand(2, 0));
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  q.Pop();
  q.FinishedCurrent();
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(CandidateQueueTest, WaitDrainedWaitsForInFlightWork) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 4);
  q.Push(Cand(1, 0));
  std::atomic<bool> drained{false};

  auto cand = q.Pop();  // queue empty, but one candidate in flight
  ASSERT_TRUE(cand.has_value());

  std::thread waiter([&] {
    q.WaitDrained();
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());
  q.FinishedCurrent();
  waiter.join();
  EXPECT_TRUE(drained.load());
}

TEST(CandidateQueueTest, PeakSizeTracksHighWater) {
  CandidateQueue q(CandidateQueue::Order::kFifo, 8);
  q.Push(Cand(1, 0));
  q.Push(Cand(2, 0));
  q.Push(Cand(3, 0));
  q.Pop();
  q.FinishedCurrent();
  EXPECT_EQ(q.peak_size(), 3);
  EXPECT_EQ(q.size(), 2u);
}

// N producers vs 1 consumer with Close() racing the pushes: every
// successfully pushed candidate must be popped exactly once, nothing may
// be popped after the close-drain, and peak_size() must be monotone.
TEST(CandidateQueueTest, CloseRacingPushStress) {
  for (int round = 0; round < 25; ++round) {
    CandidateQueue q(round % 2 == 0 ? CandidateQueue::Order::kFifo
                                    : CandidateQueue::Order::kPriority,
                     8);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 250;
    std::atomic<int> accepted{0};
    std::atomic<int> consumed{0};

    std::thread consumer([&] {
      int64_t last_peak = 0;
      while (auto c = q.Pop()) {
        consumed.fetch_add(1);
        const int64_t peak = q.peak_size();
        EXPECT_GE(peak, last_peak);  // high-water mark never shrinks
        last_peak = peak;
        q.FinishedCurrent();
      }
    });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          if (q.Push(Cand(p * kPerProducer + i, i * 0.01))) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    // Close at a varying point in the middle of the push storm.
    std::thread closer([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      q.Close();
    });

    for (auto& t : producers) t.join();
    closer.join();
    consumer.join();

    // Exactly the accepted candidates were delivered (pending candidates
    // survive Close; rejected pushes are dropped), and the drained queue
    // stays drained.
    EXPECT_EQ(consumed.load(), accepted.load()) << "round " << round;
    EXPECT_FALSE(q.Pop().has_value());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_GE(q.peak_size(), 0);
  }
}

TEST(CandidateQueueTest, ConcurrentProducersConsumersDeliverEverything) {
  CandidateQueue q(CandidateQueue::Order::kPriority, 8);
  constexpr int kPerProducer = 200;
  std::atomic<int> consumed{0};

  std::thread c1([&] {
    while (q.Pop().has_value()) {
      consumed.fetch_add(1);
      q.FinishedCurrent();
    }
  });
  std::thread p1([&] {
    for (int i = 0; i < kPerProducer; ++i) q.Push(Cand(i, i * 0.001));
  });
  std::thread p2([&] {
    for (int i = 0; i < kPerProducer; ++i) q.Push(Cand(i, -i * 0.001));
  });
  p1.join();
  p2.join();
  q.WaitDrained();
  q.Close();
  c1.join();
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
}

}  // namespace
}  // namespace dqr::searchlight
