// Session-differential harness (the headline test of the semantic-cache
// layer): every seeded session of correlated queries is replayed twice —
// per-query cold and against one warm SemanticCache — and both legs must
// match the brute-force oracle byte-for-byte at every step. The harness's
// own failure paths are exercised with injected bugs, and the shrinker
// must shorten failing sessions while keeping them failing.

#include <gtest/gtest.h>

#include <string>

#include "testing/harness.h"

namespace dqr::fuzz {
namespace {

CaseConfig SessionCase(uint64_t seed, size_t config_index) {
  CaseConfig c;
  c.seed = seed;
  c.mode = seed % 3 == 0   ? FuzzMode::kSkyline
           : seed % 3 == 1 ? FuzzMode::kRelax
                           : FuzzMode::kConstrain;
  c.grid = seed % 4 == 3;
  c.session = 2 + static_cast<int>(seed % 3);
  c.config = MakeConfigMatrix(seed, 3)[config_index];
  return c;
}

TEST(SessionDifferentialTest, WarmCacheMatchesColdAndOracleAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const CaseResult r = RunSessionCase(SessionCase(seed, 0));
    EXPECT_TRUE(r.ok) << r.detail << "\n" << r.error;
    // The trail proves the cache actually participated at every step.
    EXPECT_NE(r.detail.find("cache="), std::string::npos) << r.detail;
  }
}

TEST(SessionDifferentialTest, WarmCacheSurvivesWorkStealingConfigs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const CaseResult r = RunSessionCase(SessionCase(seed, 1));
    EXPECT_TRUE(r.ok) << r.detail << "\n" << r.error;
  }
}

TEST(SessionDifferentialTest, RepeatStepsHitTheCacheExactly) {
  // A seed whose plan is forced to repeat by replaying the base query:
  // run a 3-step session and demand at least one non-miss outcome shows
  // up in the trail for some seed (repeat => exact, tighten => warm or
  // subsume). Checked across seeds so the expectation is not tied to one
  // plan draw.
  bool any_reuse = false;
  for (uint64_t seed = 1; seed <= 10 && !any_reuse; ++seed) {
    CaseConfig c = SessionCase(seed, 0);
    const CaseResult r = RunSessionCase(c);
    ASSERT_TRUE(r.ok) << r.detail << "\n" << r.error;
    any_reuse = r.detail.find("exact") != std::string::npos ||
                r.detail.find("subsume") != std::string::npos ||
                r.detail.find("warm") != std::string::npos;
  }
  EXPECT_TRUE(any_reuse) << "no session ever reused cache state";
}

TEST(SessionDifferentialTest, InjectedBugIsCaughtAndSessionShrinks) {
  CaseConfig c;
  bool found = false;
  // Find a session whose clean run passes and returns results, so a
  // dropped result must be detected.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    c = SessionCase(seed, 0);
    const CaseResult clean = RunSessionCase(c);
    ASSERT_TRUE(clean.ok) << clean.detail << "\n" << clean.error;
    const CaseResult buggy = RunSessionCase(c, InjectedBug::kDropLast);
    if (buggy.failed() && buggy.error.empty()) {
      // The failure names the warm leg and carries the cache trail.
      EXPECT_NE(buggy.detail.find("leg=warm"), std::string::npos)
          << buggy.detail;
      EXPECT_NE(buggy.detail.find("cache="), std::string::npos)
          << buggy.detail;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no seed produced a catchable dropped result";

  const CaseConfig shrunk = Shrink(c, InjectedBug::kDropLast);
  const CaseResult still_failing =
      RunSessionCase(shrunk, InjectedBug::kDropLast);
  EXPECT_TRUE(still_failing.failed());
  // The shrinker must reach the session floor and keep the case a session.
  EXPECT_EQ(shrunk.session, 1);
  EXPECT_EQ(shrunk.config.num_instances, 1);
  EXPECT_NE(ReproLine(shrunk).find("--session=1"), std::string::npos)
      << ReproLine(shrunk);
}

TEST(SessionDifferentialTest, CampaignRunsSessionsClean) {
  FuzzOptions options;
  options.start_seed = 1;
  options.num_seeds = 4;
  options.sessions = true;
  const FuzzReport report = RunFuzz(options);
  EXPECT_TRUE(report.clean())
      << report.mismatches << " mismatches, " << report.errors << " errors";
  // Two configs per seed in session mode.
  EXPECT_EQ(report.cases_run, 8);
}

TEST(SessionDifferentialTest, ReproLineCarriesTheSessionDimension) {
  CaseConfig c = SessionCase(6, 0);
  const std::string line = ReproLine(c);
  EXPECT_NE(line.find("--session=" + std::to_string(c.session)),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("--seed=6"), std::string::npos) << line;
}

}  // namespace
}  // namespace dqr::fuzz
