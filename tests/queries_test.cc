#include "data/queries.h"

#include <gtest/gtest.h>

#include "core/refiner.h"

namespace dqr::data {
namespace {

TEST(QueriesTest, KindNames) {
  EXPECT_STREQ(QueryKindName(QueryKind::kSSel), "S-SEL");
  EXPECT_STREQ(QueryKindName(QueryKind::kSLos), "S-LOS");
  EXPECT_STREQ(QueryKindName(QueryKind::kMSel), "M-SEL");
  EXPECT_STREQ(QueryKindName(QueryKind::kMLos), "M-LOS");
  EXPECT_STREQ(QueryKindName(QueryKind::kMSelPrime), "M-SEL'");
}

TEST(QueriesTest, DatasetBundlesBuild) {
  auto synth = MakeSyntheticDataset(1 << 14, 42);
  ASSERT_TRUE(synth.ok());
  EXPECT_EQ(synth.value().array->length(), 1 << 14);
  EXPECT_EQ(synth.value().array->GetAccessStats().cells_read, 0);

  auto wave = MakeWaveformDataset(1 << 14, 7);
  ASSERT_TRUE(wave.ok());
  EXPECT_GT(wave.value().synopsis->MemoryBytes(), 0);
}

TEST(QueriesTest, QueryShape) {
  auto bundle = MakeSyntheticDataset(1 << 14, 42).value();
  QueryTuning tuning;
  const searchlight::QuerySpec query =
      MakeQuery(bundle, QueryKind::kSSel, tuning);
  EXPECT_EQ(query.name, "S-SEL");
  EXPECT_EQ(query.k, tuning.k);
  ASSERT_EQ(query.domains.size(), 2u);
  EXPECT_EQ(query.domains[1], cp::IntDomain(8, 16));
  ASSERT_EQ(query.constraints.size(), 3u);
  EXPECT_EQ(query.constraints[0].name, "c1_avg");
  EXPECT_EQ(query.constraints[1].name, "c2_left");
  EXPECT_EQ(query.constraints[2].name, "c3_right");
  // Factories build independent instances.
  auto f1 = query.constraints[0].make_function();
  auto f2 = query.constraints[0].make_function();
  EXPECT_NE(f1.get(), f2.get());
  EXPECT_EQ(f1->value_range(), f2->value_range());
}

TEST(QueriesTest, RelaxFractionWidensBounds) {
  auto bundle = MakeSyntheticDataset(1 << 14, 42).value();
  QueryTuning original;
  QueryTuning relaxed;
  relaxed.relax_fraction = 1.0;
  const auto q0 = MakeQuery(bundle, QueryKind::kSSel, original);
  const auto q1 = MakeQuery(bundle, QueryKind::kSSel, relaxed);
  for (size_t c = 0; c < q0.constraints.size(); ++c) {
    EXPECT_TRUE(q1.constraints[c].bounds.Contains(q0.constraints[c].bounds))
        << "constraint " << c;
  }
  // Fully relaxed SEL bounds equal the hard ranges, so nothing can be
  // relaxed further.
  auto fn = q1.constraints[0].make_function();
  EXPECT_DOUBLE_EQ(q1.constraints[0].bounds.lo, fn->value_range().lo);
  EXPECT_DOUBLE_EQ(q1.constraints[0].bounds.hi, fn->value_range().hi);
}

TEST(QueriesTest, MonotoneResultCountsInRelaxFraction) {
  // Large enough to contain several amplitude regions with strong spikes.
  auto bundle = MakeSyntheticDataset(1 << 19, 42).value();
  core::RefineOptions plain;
  plain.enable = false;

  size_t last = 0;
  for (const double f : {0.0, 0.5, 1.0}) {
    QueryTuning tuning;
    tuning.relax_fraction = f;
    const auto query = MakeQuery(bundle, QueryKind::kSSel, tuning);
    const auto run = core::ExecuteQuery(query, plain).value();
    EXPECT_GE(run.results.size(), last) << "fraction " << f;
    last = run.results.size();
  }
  EXPECT_GT(last, 0u);  // maximally relaxed S-SEL finds something
}

TEST(QueriesTest, LooseKindsUseFullSignalRange) {
  auto bundle = MakeSyntheticDataset(1 << 14, 42).value();
  const auto sel = MakeQuery(bundle, QueryKind::kSSel, QueryTuning{});
  const auto los = MakeQuery(bundle, QueryKind::kSLos, QueryTuning{});
  auto sel_fn = sel.constraints[0].make_function();
  auto los_fn = los.constraints[0].make_function();
  EXPECT_LT(sel_fn->value_range().width(), los_fn->value_range().width());
}

}  // namespace
}  // namespace dqr::data
