// Concurrency determinism: N queries multiplexed over one shared
// WorkerPool/TimerWheel (DESIGN.md §10) must produce results
// byte-identical to the same queries run serially on dedicated threads.
// Scheduling is answer-preserving (§3), and the per-slot state —
// coordinator, fail registry, replay pool, DelayedBroadcast epochs — is
// constructed per ExecuteQuery call; these tests are the executable form
// of that slot-isolation claim, including a crash-plan case where one
// slot loses an instance mid-run while its neighbors stay clean.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cache/semantic_cache.h"
#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "exec/engine_session.h"
#include "testing/generator.h"

namespace dqr::fuzz {
namespace {

// The serial baseline: legacy dedicated-thread engine, no pool.
std::string SerialCanonical(const Workload& workload,
                            const EngineConfig& config) {
  core::FaultPlan plan;
  core::RefineOptions options = config.ToOptions(workload, &plan);
  const auto run = core::ExecuteQuery(workload.query, options);
  if (!run.ok()) return "error: " + run.status().ToString();
  if (!run.value().stats.completed) return "error: incomplete";
  return core::Canonicalize(run.value().results);
}

struct Client {
  Workload workload;
  EngineConfig config;
  std::string baseline;  // serial canonical result
  std::string got;       // concurrent canonical result
};

// Runs every client's query concurrently through `session` (one thread
// per client, all slots multiplexed over the session's pool) and stores
// each canonical result in client.got.
void RunConcurrently(exec::EngineSession* session,
                     std::vector<Client>* clients) {
  std::vector<std::thread> threads;
  threads.reserve(clients->size());
  for (Client& client : *clients) {
    threads.emplace_back([session, &client] {
      core::FaultPlan plan;
      core::RefineOptions options = client.config.ToOptions(client.workload,
                                                            &plan);
      const auto run = session->Execute(client.workload.query, options);
      if (!run.ok()) {
        client.got = "error: " + run.status().ToString();
        return;
      }
      if (!run.value().stats.completed) {
        client.got = "error: incomplete";
        return;
      }
      client.got = core::Canonicalize(run.value().results);
    });
  }
  for (std::thread& t : threads) t.join();
}

struct Shape {
  int instances;
  int shards;
};

class ConcurrentDeterminismTest
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

// Four distinct seeded workloads, one cluster shape, one pool size: the
// concurrent answers must equal the serial ones byte-for-byte.
TEST_P(ConcurrentDeterminismTest, ConcurrentMatchesSerial) {
  const Shape shape = std::get<0>(GetParam());
  const int pool_threads = std::get<1>(GetParam());

  constexpr FuzzMode kModes[] = {FuzzMode::kRelax, FuzzMode::kConstrain,
                                 FuzzMode::kSkyline, FuzzMode::kRelax};
  std::vector<Client> clients;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Client client;
    client.workload = MakeWorkload(seed, kModes[seed - 1]);
    client.config.num_instances = shape.instances;
    client.config.shards_per_instance = shape.shards;
    client.config.speculative = seed % 2 == 0;
    client.baseline = SerialCanonical(client.workload, client.config);
    ASSERT_EQ(client.baseline.rfind("error:", 0), std::string::npos)
        << client.workload.summary << ": " << client.baseline;
    clients.push_back(std::move(client));
  }

  exec::WorkerPool pool(pool_threads);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 4;
  exec::EngineSession session(session_options);

  RunConcurrently(&session, &clients);
  for (const Client& client : clients) {
    EXPECT_EQ(client.got, client.baseline) << client.workload.summary;
  }

  const exec::SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries_admitted, 4);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_GT(stats.pool.dispatched, 0);
  EXPECT_EQ(stats.tasks_in_flight, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesByPools, ConcurrentDeterminismTest,
    ::testing::Combine(::testing::Values(Shape{2, 4}, Shape{4, 8}),
                       ::testing::Values(2, 8)),
    [](const auto& info) {
      const Shape shape = std::get<0>(info.param);
      return "inst" + std::to_string(shape.instances) + "x" +
             std::to_string(shape.shards) + "_pool" +
             std::to_string(std::get<1>(info.param));
    });

// Slot isolation under failure: one slot runs a crash plan (an instance
// dies mid-run, the failure detector reclaims its work) while two clean
// slots run concurrently in the same session. Every slot must still
// match its serial baseline — the dying instance's fail registry,
// coordinator, and lease state belong to its slot alone.
TEST(ConcurrentDeterminismTest, CrashingSlotDoesNotLeakIntoNeighbors) {
  std::vector<Client> clients;
  {
    Client crash;
    crash.workload = MakeWorkload(11, FuzzMode::kRelax);
    crash.config.num_instances = 3;
    crash.config.shards_per_instance = 8;
    crash.config.fault_crashes = 1;
    crash.config.enable_failure_detector = true;
    clients.push_back(std::move(crash));
  }
  for (uint64_t seed = 12; seed <= 13; ++seed) {
    Client clean;
    clean.workload =
        MakeWorkload(seed, seed % 2 == 0 ? FuzzMode::kConstrain
                                         : FuzzMode::kSkyline);
    clean.config.num_instances = 2;
    clean.config.shards_per_instance = 4;
    clients.push_back(std::move(clean));
  }
  for (Client& client : clients) {
    client.baseline = SerialCanonical(client.workload, client.config);
    ASSERT_EQ(client.baseline.rfind("error:", 0), std::string::npos)
        << client.workload.summary << ": " << client.baseline;
  }

  exec::WorkerPool pool(4);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 3;
  exec::EngineSession session(session_options);

  RunConcurrently(&session, &clients);
  for (const Client& client : clients) {
    EXPECT_EQ(client.got, client.baseline) << client.workload.summary;
  }
}

// Admission control: a session capped at one slot serializes concurrent
// callers (peak_slots == 1) without changing any answer, and the second
// caller's wait is visible in queries_queued.
TEST(ConcurrentDeterminismTest, SingleSlotSessionSerializes) {
  std::vector<Client> clients;
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    Client client;
    client.workload = MakeWorkload(seed, FuzzMode::kRelax);
    client.config.num_instances = 2;
    client.config.shards_per_instance = 4;
    client.baseline = SerialCanonical(client.workload, client.config);
    ASSERT_EQ(client.baseline.rfind("error:", 0), std::string::npos)
        << client.workload.summary << ": " << client.baseline;
    clients.push_back(std::move(client));
  }

  exec::WorkerPool pool(2);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 1;
  exec::EngineSession session(session_options);

  RunConcurrently(&session, &clients);
  for (const Client& client : clients) {
    EXPECT_EQ(client.got, client.baseline) << client.workload.summary;
  }
  const exec::SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries_admitted, 3);
  EXPECT_EQ(stats.peak_slots, 1);
}

// Satellite of the cache-stats contract: N concurrent ExecuteCached
// calls for the same semantic query race the insert/lookup/stat paths of
// one SemanticCache (plus its SharedBoundsMemo and EpochRegistry). Every
// caller must get the serial answer, and the outcome counters must add
// up — this is the test the CI TSan job leans on for satellite 1.
TEST(ConcurrentDeterminismTest, ConcurrentCachedQueriesShareOneCache) {
  const Workload workload = MakeWorkload(31, FuzzMode::kRelax);
  EngineConfig config;
  config.num_instances = 2;
  config.shards_per_instance = 4;
  const std::string baseline = SerialCanonical(workload, config);
  ASSERT_EQ(baseline.rfind("error:", 0), std::string::npos) << baseline;

  exec::WorkerPool pool(4);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 4;
  exec::EngineSession session(session_options);

  cache::SemanticCache sem;
  constexpr int kClients = 4;
  std::vector<std::string> got(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      cache::CachedQuery cq;
      cq.query = workload.query;
      cq.dataset_id = "concurrent-cache-test";
      cq.function_ids = workload.function_ids;
      core::FaultPlan plan;
      core::RefineOptions options = config.ToOptions(workload, &plan);
      const auto run = session.ExecuteCached(&sem, cq, options);
      got[static_cast<size_t>(t)] =
          run.ok() ? core::Canonicalize(run.value().results)
                   : "error: " + run.status().ToString();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)], baseline) << "client " << t;
  }

  const cache::SemanticCache::Stats stats = sem.stats();
  EXPECT_EQ(stats.exact_hits + stats.subsume_hits + stats.warm_starts +
                stats.misses,
            kClients);
}

}  // namespace
}  // namespace dqr::fuzz
