// Wire-format tests for the dqr_serve framed protocol (serve/protocol.h):
// encode/decode identity for every frame type, precise rejection of
// malformed frames, and decoder resilience to arbitrary read
// fragmentation — every split point of a multi-frame stream must produce
// the same frame sequence.

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace dqr::serve {
namespace {

// Decodes a whole wire string fed in one chunk; fails the test on any
// decoder error.
std::vector<Frame> DecodeAll(const std::string& wire) {
  FrameReader reader;
  EXPECT_TRUE(reader.Feed(wire).ok());
  std::vector<Frame> out;
  for (;;) {
    std::optional<Frame> frame;
    const Status st = reader.Poll(&frame);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok() || !frame.has_value()) break;
    out.push_back(std::move(*frame));
  }
  EXPECT_TRUE(reader.Finish().ok()) << reader.Finish().ToString();
  return out;
}

TEST(ServeProtocol, RoundTripsEveryFrameType) {
  const char* kTypes[] = {
      frame::kHello,  frame::kWelcome, frame::kQuery,   frame::kAccepted,
      frame::kPhase,  frame::kBound,   frame::kResult,  frame::kFinal,
      frame::kError,  frame::kMetrics, frame::kTrace,   frame::kProfile,
      frame::kBye,
  };
  for (const char* type : kTypes) {
    Frame f;
    f.type = type;
    f.Set("id", std::string("q1"));
    f.Set("n", static_cast<int64_t>(-42));
    f.Set("x", 0.1);
    f.body = std::string("line one\nline two with spaces\n\x01\x02 binary");
    Result<std::string> wire = EncodeFrame(f);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    const std::vector<Frame> decoded = DecodeAll(wire.value());
    ASSERT_EQ(decoded.size(), 1u) << type;
    EXPECT_TRUE(decoded[0] == f) << type;
  }
}

TEST(ServeProtocol, RoundTripsEmptyBodyAndNoAttrs) {
  Frame f;
  f.type = frame::kBye;
  Result<std::string> wire = EncodeFrame(f);
  ASSERT_TRUE(wire.ok());
  const std::vector<Frame> decoded = DecodeAll(wire.value());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0] == f);
}

TEST(ServeProtocol, AttributeOrderAndDuplicatesRoundTrip) {
  Frame f;
  f.type = frame::kPhase;
  f.Set("id", std::string("a"));
  f.Set("phase", std::string("collecting"));
  f.Set("id", std::string("b"));  // duplicate key, preserved
  Result<std::string> wire = EncodeFrame(f);
  ASSERT_TRUE(wire.ok());
  const std::vector<Frame> decoded = DecodeAll(wire.value());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0] == f);
  // Get returns the first occurrence.
  ASSERT_NE(decoded[0].Get("id"), nullptr);
  EXPECT_EQ(*decoded[0].Get("id"), "a");
}

TEST(ServeProtocol, DoublesRoundTripAtFullPrecision) {
  const double kValues[] = {0.1, 1.0 / 3.0, -2.5e-17, 1e300,
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
  for (double v : kValues) {
    Frame f;
    f.type = frame::kBound;
    f.Set("value", v);
    Result<std::string> wire = EncodeFrame(f);
    ASSERT_TRUE(wire.ok());
    const std::vector<Frame> decoded = DecodeAll(wire.value());
    ASSERT_EQ(decoded.size(), 1u);
    Result<double> back = decoded[0].GetDouble("value", 0.0);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ServeProtocol, TypedGettersFallBackAndReject) {
  Frame f;
  f.type = frame::kFinal;
  f.Set("n", std::string("12x"));
  f.Set("x", std::string("wide"));
  EXPECT_EQ(f.GetInt("absent", 7).value(), 7);
  EXPECT_EQ(f.GetDouble("absent", 0.5).value(), 0.5);
  Result<int64_t> bad_int = f.GetInt("n", 0);
  ASSERT_FALSE(bad_int.ok());
  EXPECT_EQ(bad_int.status().message(),
            "frame attribute 'n' is not an integer: '12x'");
  Result<double> bad_double = f.GetDouble("x", 0);
  ASSERT_FALSE(bad_double.ok());
  EXPECT_EQ(bad_double.status().message(),
            "frame attribute 'x' is not a number: 'wide'");
}

TEST(ServeProtocol, EncodeRejectsMalformedHeaders) {
  Frame empty_type;
  Result<std::string> r = EncodeFrame(empty_type);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "frame type must be non-empty");

  Frame spacey;
  spacey.type = "QUE RY";
  r = EncodeFrame(spacey);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "frame type 'QUE RY' contains whitespace");

  Frame eq_key;
  eq_key.type = frame::kQuery;
  eq_key.Set("a=b", std::string("v"));
  r = EncodeFrame(eq_key);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "frame attribute key 'a=b' contains '='");

  Frame empty_value;
  empty_value.type = frame::kQuery;
  empty_value.Set("k", std::string(""));
  r = EncodeFrame(empty_value);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "frame attribute value must be non-empty");

  Frame newline_value;
  newline_value.type = frame::kQuery;
  newline_value.Set("k", std::string("a\nb"));
  r = EncodeFrame(newline_value);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "frame attribute value 'a\nb' contains whitespace");
}

TEST(ServeProtocol, EncodeRejectsOversizedPayload) {
  Frame f;
  f.type = frame::kResult;
  f.body.assign(kMaxFramePayload, 'x');  // + header line pushes it over
  Result<std::string> r = EncodeFrame(f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "frame length " + std::to_string(f.body.size() + 7) +
                " exceeds limit " + std::to_string(kMaxFramePayload));
}

TEST(ServeProtocol, ReaderRejectsZeroLengthFrame) {
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(std::string(4, '\0')).ok());
  std::optional<Frame> frame;
  Status st = reader.Poll(&frame);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "frame length 0: a frame must carry a header line");
  // Sticky: the same error again, and Feed refuses more input.
  EXPECT_EQ(reader.Poll(&frame).message(), st.message());
  EXPECT_EQ(reader.Feed("more").message(), st.message());
  EXPECT_EQ(reader.Finish().message(), st.message());
}

TEST(ServeProtocol, ReaderRejectsOversizedLengthPrefix) {
  // 0x7fffffff far exceeds the 8 MiB cap; the reader must reject the
  // prefix without waiting for (or buffering) the bytes it promises.
  std::string wire;
  wire.push_back(0x7f);
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  wire.push_back(static_cast<char>(0xff));
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(wire).ok());
  std::optional<Frame> frame;
  Status st = reader.Poll(&frame);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "frame length 2147483647 exceeds limit " +
                              std::to_string(kMaxFramePayload));
}

TEST(ServeProtocol, ReaderRejectsMalformedPayloads) {
  struct Case {
    std::string payload;
    std::string message;
  };
  const Case kCases[] = {
      {"QUERY id=1", "frame header: missing terminating newline"},
      {"QUERY  id=1\n", "frame header: empty token (doubled or leading space)"},
      {" QUERY\n", "frame header: empty token (doubled or leading space)"},
      {"QUERY id\n", "frame header: attribute 'id' missing '='"},
      {"QUERY =v\n", "frame header: attribute '=v' missing '='"},
      {"QUERY id=\n", "frame header: attribute 'id=' missing '='"},
  };
  for (const Case& c : kCases) {
    std::string wire;
    const uint32_t n = static_cast<uint32_t>(c.payload.size());
    wire.push_back(static_cast<char>((n >> 24) & 0xff));
    wire.push_back(static_cast<char>((n >> 16) & 0xff));
    wire.push_back(static_cast<char>((n >> 8) & 0xff));
    wire.push_back(static_cast<char>(n & 0xff));
    wire += c.payload;
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(wire).ok());
    std::optional<Frame> frame;
    Status st = reader.Poll(&frame);
    ASSERT_FALSE(st.ok()) << c.payload;
    EXPECT_EQ(st.message(), c.message) << c.payload;
  }
}

TEST(ServeProtocol, FinishReportsTruncatedStream) {
  Frame f;
  f.type = frame::kResult;
  f.Set("id", std::string("q"));
  f.body = "0 1 2\n";
  Result<std::string> wire = EncodeFrame(f);
  ASSERT_TRUE(wire.ok());
  // Drop the last 3 bytes: the reader has an incomplete frame buffered.
  const std::string cut = wire.value().substr(0, wire.value().size() - 3);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(cut).ok());
  std::optional<Frame> frame;
  ASSERT_TRUE(reader.Poll(&frame).ok());
  EXPECT_FALSE(frame.has_value());
  const Status st = reader.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "frame truncated: stream ended with " +
                              std::to_string(cut.size()) +
                              " unconsumed bytes inside a frame");
}

// The fragmentation sweep: a three-frame stream split at every byte
// boundary into two feeds must decode identically to the one-shot feed.
// This is the property that makes the reader safe over real sockets,
// where recv() returns arbitrary prefixes.
TEST(ServeProtocol, EverySplitPointDecodesIdentically) {
  std::vector<Frame> frames;
  {
    Frame hello;
    hello.type = frame::kHello;
    hello.Set("tenant", std::string("t0"));
    frames.push_back(hello);
    Frame query;
    query.type = frame::kQuery;
    query.Set("id", std::string("q1"));
    query.Set("alpha", 0.25);
    query.body = "k=5\nvars x len\n";
    frames.push_back(query);
    Frame fin;
    fin.type = frame::kFinal;
    fin.Set("id", std::string("q1"));
    fin.Set("results", static_cast<int64_t>(3));
    fin.body = "1 2 3\n4 5 6\n";
    frames.push_back(fin);
  }
  std::string wire;
  for (const Frame& f : frames) {
    Result<std::string> one = EncodeFrame(f);
    ASSERT_TRUE(one.ok());
    wire += one.value();
  }

  for (size_t split = 0; split <= wire.size(); ++split) {
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(wire.substr(0, split)).ok());
    std::vector<Frame> decoded;
    std::optional<Frame> frame;
    for (;;) {
      ASSERT_TRUE(reader.Poll(&frame).ok());
      if (!frame.has_value()) break;
      decoded.push_back(std::move(*frame));
    }
    ASSERT_TRUE(reader.Feed(wire.substr(split)).ok());
    for (;;) {
      ASSERT_TRUE(reader.Poll(&frame).ok());
      if (!frame.has_value()) break;
      decoded.push_back(std::move(*frame));
    }
    ASSERT_TRUE(reader.Finish().ok()) << "split=" << split;
    ASSERT_EQ(decoded.size(), frames.size()) << "split=" << split;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_TRUE(decoded[i] == frames[i])
          << "split=" << split << " frame=" << i;
    }
  }
}

// One-byte-at-a-time feeding, plus buffer-compaction coverage: enough
// frames that pos_ crosses the compaction threshold mid-stream.
TEST(ServeProtocol, ByteAtATimeFeedingAndCompaction) {
  std::string wire;
  std::vector<Frame> frames;
  for (int i = 0; i < 64; ++i) {
    Frame f;
    f.type = frame::kResult;
    f.Set("id", std::string("q"));
    f.Set("seq", static_cast<int64_t>(i));
    f.body.assign(128, static_cast<char>('a' + (i % 26)));
    frames.push_back(f);
    Result<std::string> one = EncodeFrame(f);
    ASSERT_TRUE(one.ok());
    wire += one.value();
  }
  FrameReader reader;
  std::vector<Frame> decoded;
  for (char c : wire) {
    ASSERT_TRUE(reader.Feed(&c, 1).ok());
    std::optional<Frame> frame;
    ASSERT_TRUE(reader.Poll(&frame).ok());
    if (frame.has_value()) decoded.push_back(std::move(*frame));
  }
  ASSERT_TRUE(reader.Finish().ok());
  EXPECT_EQ(reader.pending_bytes(), 0u);
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(decoded[i] == frames[i]) << i;
  }
}

}  // namespace
}  // namespace dqr::serve
