#include "searchlight/functions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "synopsis/synopsis.h"

namespace dqr::searchlight {
namespace {

struct Fixture {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<synopsis::Synopsis> synopsis;
  std::vector<double> data;

  WindowFunctionContext Ctx() const {
    WindowFunctionContext ctx;
    ctx.array = array;
    ctx.synopsis = synopsis;
    ctx.x_var = 0;
    ctx.len_var = 1;
    return ctx;
  }
};

Fixture MakeFixture(int64_t n, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  f.data.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < f.data.size(); ++i) {
    f.data[i] = rng.Uniform(50, 250);
    // Occasional plateaus exercise the max-witness logic.
    if (rng.Bernoulli(0.05)) f.data[i] = 240.0;
  }
  array::ArraySchema schema;
  schema.name = "fn_test";
  schema.length = n;
  schema.chunk_size = 32;
  f.array = array::Array::FromData(schema, f.data).value();
  f.synopsis =
      synopsis::Synopsis::Build(*f.array,
                                synopsis::SynopsisOptions{{64, 8}, 16})
          .value();
  return f;
}

double NaiveMax(const std::vector<double>& data, int64_t lo, int64_t hi) {
  double mx = data[static_cast<size_t>(lo)];
  for (int64_t i = lo; i < hi; ++i) {
    mx = std::max(mx, data[static_cast<size_t>(i)]);
  }
  return mx;
}

double NaiveAvg(const std::vector<double>& data, int64_t lo, int64_t hi) {
  double sum = 0.0;
  for (int64_t i = lo; i < hi; ++i) sum += data[static_cast<size_t>(i)];
  return sum / static_cast<double>(hi - lo);
}

TEST(FunctionsTest, EvaluateMatchesNaive) {
  Fixture f = MakeFixture(300, 21);
  AvgFunction avg(f.Ctx());
  MaxFunction mx(f.Ctx());
  MinFunction mn(f.Ctx());
  NeighborhoodContrastFunction left(
      f.Ctx(), NeighborhoodContrastFunction::Side::kLeft, 8);
  NeighborhoodContrastFunction right(
      f.Ctx(), NeighborhoodContrastFunction::Side::kRight, 8);

  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t x = rng.UniformInt(0, 299);
    const int64_t l = rng.UniformInt(1, 20);
    const int64_t hi = std::min<int64_t>(300, x + l);
    const std::vector<int64_t> point = {x, l};

    EXPECT_NEAR(avg.Evaluate(point), NaiveAvg(f.data, x, hi), 1e-9);
    EXPECT_DOUBLE_EQ(mx.Evaluate(point), NaiveMax(f.data, x, hi));

    const double expected_left =
        x == 0 ? 0.0
               : std::abs(NaiveMax(f.data, x, hi) -
                          NaiveMax(f.data, std::max<int64_t>(0, x - 8), x));
    EXPECT_DOUBLE_EQ(left.Evaluate(point), expected_left);

    const double expected_right =
        hi >= 300
            ? 0.0
            : std::abs(NaiveMax(f.data, x, hi) -
                       NaiveMax(f.data, hi, std::min<int64_t>(300, hi + 8)));
    EXPECT_DOUBLE_EQ(right.Evaluate(point), expected_right);

    (void)mn;
  }
}

// The load-bearing property: for every box, the estimate contains the
// exact value at every assignment in the box (including array edges).
class FunctionSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FunctionSoundnessTest, EstimateContainsAllExactValues) {
  Fixture f = MakeFixture(200, GetParam());
  std::vector<std::unique_ptr<cp::ConstraintFunction>> fns;
  fns.push_back(std::make_unique<AvgFunction>(f.Ctx()));
  fns.push_back(std::make_unique<MaxFunction>(f.Ctx()));
  fns.push_back(std::make_unique<MinFunction>(f.Ctx()));
  fns.push_back(std::make_unique<NeighborhoodContrastFunction>(
      f.Ctx(), NeighborhoodContrastFunction::Side::kLeft, 6));
  fns.push_back(std::make_unique<NeighborhoodContrastFunction>(
      f.Ctx(), NeighborhoodContrastFunction::Side::kRight, 6));

  Rng rng(GetParam() ^ 0x9999);
  for (int iter = 0; iter < 120; ++iter) {
    const int64_t x_lo = rng.UniformInt(0, 198);
    const int64_t x_hi = rng.UniformInt(x_lo, std::min<int64_t>(199, x_lo + 40));
    const int64_t l_lo = rng.UniformInt(1, 10);
    const int64_t l_hi = rng.UniformInt(l_lo, l_lo + 8);
    const cp::DomainBox box = {cp::IntDomain(x_lo, x_hi),
                               cp::IntDomain(l_lo, l_hi)};

    for (auto& fn : fns) {
      const Interval estimate = fn->Estimate(box);
      ASSERT_FALSE(estimate.empty());
      for (int64_t x = x_lo; x <= x_hi; ++x) {
        for (int64_t l = l_lo; l <= l_hi; ++l) {
          const double exact = fn->Evaluate({x, l});
          EXPECT_TRUE(estimate.Contains(exact))
              << fn->name() << " box=(" << x_lo << ".." << x_hi << ", "
              << l_lo << ".." << l_hi << ") point=(" << x << "," << l
              << ") exact=" << exact << " est=" << estimate.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionSoundnessTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(FunctionsTest, BoundWindowEstimatesAreTighterThanRootEstimates) {
  Fixture f = MakeFixture(256, 31);
  MaxFunction mx(f.Ctx());
  const Interval root =
      mx.Estimate({cp::IntDomain(0, 200), cp::IntDomain(4, 16)});
  const Interval leaf =
      mx.Estimate({cp::IntDomain(100, 100), cp::IntDomain(8, 8)});
  EXPECT_LE(root.lo, leaf.lo);
  EXPECT_GE(root.hi, leaf.hi);
  EXPECT_LT(leaf.width(), root.width());
}

TEST(FunctionsTest, StateSaveRestoreRoundTrip) {
  Fixture f = MakeFixture(256, 41);
  MaxFunction mx(f.Ctx());
  const cp::DomainBox box = {cp::IntDomain(50, 80), cp::IntDomain(4, 8)};
  const Interval before = mx.Estimate(box);

  auto state = mx.SaveState(box);
  ASSERT_NE(state, nullptr);
  EXPECT_GT(state->SizeBytes(), 0);

  mx.ClearState();
  mx.RestoreState(*state);
  const Interval after = mx.Estimate(box);
  EXPECT_EQ(before, after);

  // Cloned states are independent.
  auto clone = state->Clone();
  EXPECT_EQ(clone->SizeBytes(), state->SizeBytes());
}

TEST(FunctionsTest, SaveStateStaysSmallUnderHeavyUse) {
  // Fail-time snapshots capture only the recently touched window bounds,
  // so their size stays bounded no matter how much the search estimated —
  // the paper reports ~80 bytes per saved aggregate state.
  Fixture f = MakeFixture(512, 43);
  MaxFunction mx(f.Ctx());
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int64_t lo = rng.UniformInt(0, 480);
    (void)mx.Estimate({cp::IntDomain(lo, lo + 16), cp::IntDomain(4, 8)});
  }
  auto state = mx.SaveState({cp::IntDomain(0, 500), cp::IntDomain(4, 16)});
  ASSERT_NE(state, nullptr);
  EXPECT_LE(state->SizeBytes(), 6 * 64);
}

TEST(FunctionsTest, CloneIsIndependent) {
  Fixture f = MakeFixture(128, 51);
  AvgFunction avg(f.Ctx());
  auto clone = avg.Clone();
  const cp::DomainBox box = {cp::IntDomain(5, 20), cp::IntDomain(2, 6)};
  EXPECT_EQ(avg.Estimate(box), clone->Estimate(box));
  EXPECT_EQ(avg.value_range(), clone->value_range());
}

TEST(FunctionsTest, ContrastDefaultValueRangeSpansGlobalWidth) {
  Fixture f = MakeFixture(128, 61);
  NeighborhoodContrastFunction fn(
      f.Ctx(), NeighborhoodContrastFunction::Side::kLeft, 4);
  EXPECT_DOUBLE_EQ(fn.value_range().lo, 0.0);
  EXPECT_DOUBLE_EQ(fn.value_range().hi,
                   f.synopsis->global_value_range().width());
}

// ---------------------------------------------------------------------
// BoundsCache eviction policy.

TEST(BoundsCacheTest, EvictsIncrementallyNeverWholesale) {
  BoundsCache cache(/*capacity=*/16);
  for (int64_t i = 0; i < 200; ++i) {
    cache.Insert(0, i, i + 1, Interval(0.0, static_cast<double>(i)));
    // The old policy cleared the whole map when full, dropping the size
    // to 1 right after crossing capacity; second-chance FIFO keeps the
    // cache pinned at capacity instead.
    EXPECT_LE(cache.size(), 16u);
    if (i >= 16) EXPECT_EQ(cache.size(), 16u);
  }
  const cp::FunctionMemoStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 200 - 16);
  EXPECT_EQ(stats.restore_evictions, 0);
}

TEST(BoundsCacheTest, RecentlyTouchedEntriesSurviveEviction) {
  BoundsCache cache(/*capacity=*/16);
  // Fill, then keep one entry hot by touching it while a stream of cold
  // inserts forces evictions: the hot entry must survive (it is what
  // SaveRecent would snapshot).
  for (int64_t i = 0; i < 16; ++i) {
    cache.Insert(0, i, i + 1, Interval(0.0, 1.0));
  }
  for (int64_t i = 16; i < 200; ++i) {
    ASSERT_NE(cache.Find(0, 0, 1), nullptr) << "hot entry evicted at " << i;
    cache.Insert(0, i, i + 1, Interval(0.0, 1.0));
  }
  EXPECT_NE(cache.Find(0, 0, 1), nullptr);
}

TEST(BoundsCacheTest, SaveRecentSurvivesInsertStorm) {
  Fixture f = MakeFixture(512, 43);
  MaxFunction mx(f.Ctx());
  const cp::DomainBox box = {cp::IntDomain(50, 80), cp::IntDomain(4, 8)};
  const Interval before = mx.Estimate(box);
  auto state = mx.SaveState(box);
  ASSERT_NE(state, nullptr);

  // Hammer the function with other windows, then restore: the snapshot
  // must land regardless of how full the cache got in between.
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const int64_t lo = rng.UniformInt(0, 480);
    (void)mx.Estimate({cp::IntDomain(lo, lo + 16), cp::IntDomain(4, 8)});
  }
  mx.ClearState();
  mx.RestoreState(*state);
  EXPECT_EQ(mx.Estimate(box), before);
}

TEST(BoundsCacheTest, RestoreAlwaysLandsAndCountsEvictions) {
  BoundsCache donor(/*capacity=*/16);
  donor.Insert(0, 1000, 1001, Interval(1.0, 2.0));
  donor.Insert(0, 2000, 2001, Interval(3.0, 4.0));
  auto snapshot = donor.SaveRecent();
  ASSERT_NE(snapshot, nullptr);

  BoundsCache cache(/*capacity=*/16);
  for (int64_t i = 0; i < 16; ++i) {
    cache.Insert(0, i, i + 1, Interval(0.0, 1.0));
  }
  ASSERT_EQ(cache.size(), 16u);
  cache.Restore(*snapshot);
  // Both snapshot entries landed (the old policy silently dropped them
  // when the cache was full), displacing cold entries one-for-one.
  EXPECT_NE(cache.Find(0, 1000, 1001), nullptr);
  EXPECT_NE(cache.Find(0, 2000, 2001), nullptr);
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.stats().restore_evictions, 2);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(BoundsCacheTest, StatsCountHitsAndMisses) {
  BoundsCache cache;
  EXPECT_EQ(cache.Find(0, 0, 8), nullptr);
  cache.Insert(0, 0, 8, Interval(0.0, 1.0));
  EXPECT_NE(cache.Find(0, 0, 8), nullptr);
  EXPECT_NE(cache.Find(0, 0, 8), nullptr);
  const cp::FunctionMemoStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
}

TEST(FunctionsTest, MemoStatsExposeCacheCounters) {
  Fixture f = MakeFixture(256, 77);
  MaxFunction mx(f.Ctx());
  const cp::DomainBox box = {cp::IntDomain(10, 40), cp::IntDomain(4, 8)};
  (void)mx.Estimate(box);
  (void)mx.Estimate(box);  // same box: pure cache hits
  const cp::FunctionMemoStats stats = mx.memo_stats();
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace dqr::searchlight
