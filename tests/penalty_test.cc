#include "core/penalty.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dqr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The running MIMIC example of §3.1: c1 = avg in [150, 200], c2/c3 =
// contrast >= 80; avg/max values lie within [50, 250], so the contrast
// ranges over [0, 200]. Default weights 1, alpha 0.5.
PenaltyModel MimicModel(double alpha = 0.5) {
  std::vector<PenaltySpec> specs = {
      {Interval(150, 200), Interval(50, 250), 1.0, true},
      {Interval(80, kInf), Interval(0, 200), 1.0, true},
      {Interval(80, kInf), Interval(0, 200), 1.0, true},
  };
  return PenaltyModel(std::move(specs), alpha);
}

TEST(PenaltyModelTest, Section31WorkedExample) {
  const PenaltyModel model = MimicModel();

  // r1 = (180, 85, 85) satisfies everything: RP = 0.
  EXPECT_DOUBLE_EQ(model.Penalty({180, 85, 85}), 0.0);
  // r2 = (190, 80, 90): boundary values still satisfy.
  EXPECT_DOUBLE_EQ(model.Penalty({190, 80, 90}), 0.0);

  // r3 = (160, 70, 60): violates c2 and c3.
  // RD_c2 = 10/80 = 0.125, RD_c3 = 20/80 = 0.25, RD = 0.25,
  // RP = (0.25 + 2/3)/2 = 0.458.
  EXPECT_DOUBLE_EQ(model.RelaxDistance(1, 70), 0.125);
  EXPECT_DOUBLE_EQ(model.RelaxDistance(2, 60), 0.25);
  EXPECT_DOUBLE_EQ(model.TotalDistance({160, 70, 60}), 0.25);
  EXPECT_NEAR(model.ViolationFraction({160, 70, 60}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(model.Penalty({160, 70, 60}), 0.5 * (0.25 + 2.0 / 3.0),
              1e-12);

  // r4 = (130, 80, 80): violates only c1.
  // RD_c1 = 20/100 = 0.2, RP = (0.2 + 1/3)/2 = 0.267.
  EXPECT_DOUBLE_EQ(model.RelaxDistance(0, 130), 0.2);
  EXPECT_NEAR(model.Penalty({130, 80, 80}), 0.5 * (0.2 + 1.0 / 3.0),
              1e-12);
  // r4 beats r3, as the paper concludes.
  EXPECT_LT(model.Penalty({130, 80, 80}), model.Penalty({160, 70, 60}));
}

TEST(PenaltyModelTest, Section41FailBrpExample) {
  // Figure 2's fails: the lower fail has c1 in [10, 110] (violating, with
  // best distance 40/100) and c2 in [10, 60] (best distance 20/80);
  // BRP = 1/2 * max(0.4, 0.25) + 1/2 * 2/3 = 0.53.
  // The paper shows only c1/c2, so c3's estimate satisfies its bounds.
  const PenaltyModel model = MimicModel();
  const std::vector<char> known = {1, 1, 1};

  const std::vector<Interval> lower_fail = {
      Interval(10, 110), Interval(10, 60), Interval(90, 150)};
  EXPECT_NEAR(model.BestPenalty(lower_fail, known),
              0.5 * 0.4 + 0.5 * (2.0 / 3.0), 1e-12);

  // Upper fail: only c2 violated with best distance 20/80;
  // BRP = 1/2 * 0.25 + 1/2 * 1/3 = 0.29.
  const std::vector<Interval> upper_fail = {
      Interval(150, 200), Interval(10, 60), Interval(90, 150)};
  EXPECT_NEAR(model.BestPenalty(upper_fail, known),
              0.5 * 0.25 + 0.5 * (1.0 / 3.0), 1e-12);
}

TEST(PenaltyModelTest, Section41TighteningExample) {
  // With MRP = 0.5 and the lower fail's VC = 2/3:
  // RD <= (0.5 - 0.5 * 2/3) / 0.5 = 1/3, and c2's lower bound relaxes to
  // 80 - (1/3) * 80 = 53.3 (the paper rounds to 53).
  const PenaltyModel model = MimicModel();
  const double allowed = model.MaxAllowedDistance(0.5, 2.0 / 3.0);
  EXPECT_NEAR(allowed, 1.0 / 3.0, 1e-12);
  const Interval relaxed = model.RelaxedBounds(1, allowed);
  EXPECT_NEAR(relaxed.lo, 80.0 - (1.0 / 3.0) * 80.0, 1e-9);
  EXPECT_TRUE(std::isinf(relaxed.hi));
}

TEST(PenaltyModelTest, UnknownEstimatesAssumeBestCase) {
  // Lazy fail recording: unevaluated constraints contribute nothing.
  const PenaltyModel model = MimicModel();
  const std::vector<Interval> estimates = {
      Interval(10, 110), Interval(), Interval()};
  const std::vector<char> known = {1, 0, 0};
  EXPECT_NEAR(model.BestPenalty(estimates, known),
              0.5 * 0.4 + 0.5 * (1.0 / 3.0), 1e-12);
}

TEST(PenaltyModelTest, HardLimitsGiveInfinitePenalty) {
  const PenaltyModel model = MimicModel();
  // avg = 20 lies below the declared min 50: beyond the hard limit.
  EXPECT_TRUE(std::isinf(model.Penalty({20, 85, 85})));
  // A sub-tree entirely beyond the limit can never qualify.
  const std::vector<Interval> estimates = {
      Interval(10, 30), Interval(90, 150), Interval(90, 150)};
  EXPECT_TRUE(
      std::isinf(model.BestPenalty(estimates, {1, 1, 1})));
}

TEST(PenaltyModelTest, NonRelaxableConstraintsAreHard) {
  std::vector<PenaltySpec> specs = {
      {Interval(150, 200), Interval(50, 250), 1.0, true},
      {Interval(80, kInf), Interval(0, 200), 1.0, false},  // hard
  };
  const PenaltyModel model(std::move(specs), 0.5);
  EXPECT_EQ(model.num_relaxable(), 1);
  EXPECT_TRUE(std::isinf(model.Penalty({180, 70})));  // hard violated
  EXPECT_DOUBLE_EQ(model.Penalty({180, 90}), 0.0);
  // Violating only the relaxable constraint: VC uses |C^r| = 1.
  EXPECT_NEAR(model.Penalty({140, 90}), 0.5 * 0.1 + 0.5 * 1.0, 1e-12);

  const std::vector<Interval> hard_fail = {Interval(160, 180),
                                           Interval(10, 60)};
  EXPECT_TRUE(std::isinf(model.BestPenalty(hard_fail, {1, 1})));
}

TEST(PenaltyModelTest, WeightsScaleDistances) {
  std::vector<PenaltySpec> specs = {
      {Interval(150, 200), Interval(50, 250), 0.5, true},
      {Interval(80, kInf), Interval(0, 200), 1.0, true},
  };
  const PenaltyModel model(std::move(specs), 1.0);  // distance only
  // c1 distance 0.2 weighted 0.5 -> 0.1; c2 distance 0.25 weighted 1.
  EXPECT_NEAR(model.Penalty({130, 60}), 0.25, 1e-12);
  EXPECT_NEAR(model.TotalDistance({130, 100}), 0.1, 1e-12);
}

TEST(PenaltyModelTest, AlphaExtremes) {
  // alpha = 1: penalty is the distance alone.
  EXPECT_NEAR(MimicModel(1.0).Penalty({160, 70, 60}), 0.25, 1e-12);
  // alpha = 0: penalty is the violation fraction alone; no tightening.
  const PenaltyModel vc_only = MimicModel(0.0);
  EXPECT_NEAR(vc_only.Penalty({160, 70, 60}), 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(std::isinf(vc_only.MaxAllowedDistance(0.5, 0.0)));
}

TEST(PenaltyModelTest, WorstPenaltyBoundsBestPenalty) {
  const PenaltyModel model = MimicModel();
  const std::vector<Interval> estimates = {
      Interval(120, 180), Interval(40, 100), Interval(60, 90)};
  const std::vector<char> known = {1, 1, 1};
  const double best = model.BestPenalty(estimates, known);
  const double worst = model.WorstPenalty(estimates, known);
  EXPECT_LE(best, worst);
  // A concrete member of the box has a penalty between the two.
  const double rp = model.Penalty({130, 50, 70});
  EXPECT_LE(best, rp);
  EXPECT_GE(worst, rp);
}

TEST(PenaltyModelTest, RelaxedBoundsClipToRangeAndKeepHalfOpenSides) {
  const PenaltyModel model = MimicModel();
  // Full relaxation of c1 reaches the declared value range.
  const Interval full = model.RelaxedBounds(0, 1.0);
  EXPECT_DOUBLE_EQ(full.lo, 50.0);
  EXPECT_DOUBLE_EQ(full.hi, 250.0);
  // rd = 0 keeps the original bounds.
  const Interval none = model.RelaxedBounds(0, 0.0);
  EXPECT_DOUBLE_EQ(none.lo, 150.0);
  EXPECT_DOUBLE_EQ(none.hi, 200.0);
  // Oversized rd is clamped to the hard range.
  const Interval over = model.RelaxedBounds(0, 5.0);
  EXPECT_DOUBLE_EQ(over.lo, 50.0);
  EXPECT_DOUBLE_EQ(over.hi, 250.0);
}

}  // namespace
}  // namespace dqr::core
