// Online answering (§2): confirmed solutions stream to the user while
// the query is still running, via RefineOptions::on_result.

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

TEST(StreamingTest, EveryFinalResultWasStreamed) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;  // over-constrained: relaxation engages
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  std::mutex mu;
  std::set<std::vector<int64_t>> streamed;
  RefineOptions options;
  options.on_result = [&](const Solution& s) {
    std::lock_guard<std::mutex> lock(mu);
    streamed.insert(s.point);
  };

  const auto run = ExecuteQuery(query, options).value();
  ASSERT_FALSE(run.results.empty());
  // Streaming is online: relaxed results may be streamed and later
  // superseded, but every final result must have been streamed.
  for (const Solution& s : run.results) {
    EXPECT_TRUE(streamed.count(s.point) > 0)
        << "final result never streamed: " << s.ToString();
  }
  EXPECT_GE(streamed.size(), run.results.size());
}

TEST(StreamingTest, ExactResultsStreamForLooseQueries) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  std::mutex mu;
  std::set<std::vector<int64_t>> streamed_exact;
  int streamed = 0;
  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  options.on_result = [&](const Solution& s) {
    std::lock_guard<std::mutex> lock(mu);
    ++streamed;
    // Relaxed near-misses may stream before k exact results are known —
    // that is the online feedback the paper touts. Track the exact ones.
    if (s.rp == 0.0) streamed_exact.insert(s.point);
  };
  const auto run = ExecuteQuery(query, options).value();
  EXPECT_GE(streamed, static_cast<int>(run.results.size()));
  for (const Solution& s : run.results) {
    EXPECT_DOUBLE_EQ(s.rp, 0.0);
    EXPECT_TRUE(streamed_exact.count(s.point) > 0);
  }
}

TEST(StreamingTest, NoCallbackNoCrash) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, TestQueryParams{});
  RefineOptions options;
  options.on_result = nullptr;
  EXPECT_TRUE(ExecuteQuery(query, options).ok());
}

TEST(StreamingTest, PerInstanceStatsCoverAllInstances) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, TestQueryParams{});
  RefineOptions options;
  options.num_instances = 3;
  const auto run = ExecuteQuery(query, options).value();
  ASSERT_EQ(run.per_instance.size(), 3u);
  int64_t nodes = 0;
  for (const RunStats& stats : run.per_instance) {
    nodes += stats.main_search.nodes;
  }
  EXPECT_EQ(nodes, run.stats.main_search.nodes);
}

}  // namespace
}  // namespace dqr::core
