#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

// An over-constrained query on the small bundle: contrast >= 70 only
// matches nothing exactly, so relaxation must kick in.
TestQueryParams OverConstrained() {
  TestQueryParams p;
  p.avg_bounds = Interval(150, 200);
  p.contrast_min = 70.0;
  p.k = 5;
  return p;
}

struct NamedOptions {
  std::string name;
  RefineOptions options;
};

std::vector<NamedOptions> OptionMatrix() {
  std::vector<NamedOptions> out;
  {
    NamedOptions o{"defaults", {}};
    out.push_back(o);
  }
  {
    NamedOptions o{"full_eval", {}};
    o.options.fail_eval = FailEvalMode::kFull;
    out.push_back(o);
  }
  {
    NamedOptions o{"no_state_saving", {}};
    o.options.save_function_state = false;
    out.push_back(o);
  }
  {
    NamedOptions o{"partial_rrd", {}};
    o.options.replay_relaxation_distance = 0.3;
    out.push_back(o);
  }
  {
    NamedOptions o{"fifo_replay", {}};
    o.options.replay_order = ReplayOrder::kFifo;
    out.push_back(o);
  }
  {
    NamedOptions o{"fifo_validator_queue", {}};
    o.options.validator_queue = ValidatorQueueOrder::kFifo;
    out.push_back(o);
  }
  {
    NamedOptions o{"three_instances", {}};
    o.options.num_instances = 3;
    out.push_back(o);
  }
  {
    NamedOptions o{"speculative", {}};
    o.options.speculative = true;
    out.push_back(o);
  }
  {
    NamedOptions o{"delayed_broadcast", {}};
    o.options.num_instances = 2;
    o.options.broadcast_delay_us = 500;
    out.push_back(o);
  }
  {
    NamedOptions o{"alpha_one", {}};
    o.options.alpha = 1.0;
    out.push_back(o);
  }
  {
    NamedOptions o{"alpha_zero", {}};
    o.options.alpha = 0.0;
    out.push_back(o);
  }
  {
    NamedOptions o{"alt_heuristics", {}};
    o.options.var_select = cp::VarSelect::kFirstUnbound;
    o.options.value_split = cp::ValueSplit::kBisectHighFirst;
    out.push_back(o);
  }
  {
    NamedOptions o{"fail_first_heuristic", {}};
    o.options.var_select = cp::VarSelect::kSmallestDomain;
    out.push_back(o);
  }
  {
    NamedOptions o{"kitchen_sink", {}};
    o.options.fail_eval = FailEvalMode::kFull;
    o.options.save_function_state = false;
    o.options.replay_relaxation_distance = 0.5;
    o.options.num_instances = 2;
    o.options.speculative = true;
    out.push_back(o);
  }
  return out;
}

// The relaxation guarantee (§3.1): the query returns the k results with
// the lowest possible RP, under every option combination. Verified
// against exhaustive enumeration.
class RelaxGuaranteeTest : public ::testing::TestWithParam<NamedOptions> {};

TEST_P(RelaxGuaranteeTest, MatchesBruteForceTopK) {
  const auto bundle = MakeSmallBundle();
  const TestQueryParams params = OverConstrained();
  const searchlight::QuerySpec query = MakeTestQuery(bundle, params);
  const RefineOptions& options = GetParam().options;

  const auto all = BruteForceAll(query, options.alpha);
  ASSERT_GE(all.size(), static_cast<size_t>(params.k));
  // The scenario must actually require relaxation.
  ASSERT_LT(ExactOnly(all).size(), static_cast<size_t>(params.k));

  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const RunResult& result = run.value();
  EXPECT_TRUE(result.stats.completed);

  ASSERT_EQ(result.results.size(), static_cast<size_t>(params.k))
      << GetParam().name;
  for (int64_t i = 0; i < params.k; ++i) {
    EXPECT_EQ(result.results[static_cast<size_t>(i)].point,
              all[static_cast<size_t>(i)].point)
        << GetParam().name << " at rank " << i;
    EXPECT_NEAR(result.results[static_cast<size_t>(i)].rp,
                all[static_cast<size_t>(i)].rp, 1e-9)
        << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, RelaxGuaranteeTest, ::testing::ValuesIn(OptionMatrix()),
    [](const ::testing::TestParamInfo<NamedOptions>& info) {
      return info.param.name;
    });

TEST(RelaxTest, ExactResultsComeFirstAndHaveZeroPenalty) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p = OverConstrained();
  p.contrast_min = 42.0;  // some exact hits exist (spikes of height 45+)
  // Ask for a few more results than exist exactly, so the returned set
  // mixes exact and relaxed results.
  {
    const searchlight::QuerySpec probe = MakeTestQuery(bundle, p);
    const auto exact_probe = ExactOnly(BruteForceAll(probe));
    ASSERT_GT(exact_probe.size(), 0u);
    p.k = static_cast<int64_t>(exact_probe.size()) + 3;
  }
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto all = BruteForceAll(query);
  const auto exact = ExactOnly(all);
  ASSERT_LT(exact.size(), static_cast<size_t>(p.k));

  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  ASSERT_EQ(run.results.size(), static_cast<size_t>(p.k));
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.results[i].rp, 0.0);
  }
  EXPECT_GT(run.results.back().rp, 0.0);
  EXPECT_EQ(run.stats.exact_results, static_cast<int64_t>(exact.size()));
}

TEST(RelaxTest, HardConstraintsNeverRelaxed) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p = OverConstrained();
  p.contrast_relaxable = false;  // contrasts are hard
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  // Nothing passes contrast >= 70, and it may not be relaxed: every
  // returned result (if any, via avg relaxation) must satisfy it.
  for (const Solution& s : run.results) {
    EXPECT_GE(s.values[1], 70.0);
    EXPECT_GE(s.values[2], 70.0);
  }
  EXPECT_TRUE(run.results.empty());
}

TEST(RelaxTest, FewerFeasibleThanKReturnsAllFeasible) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p = OverConstrained();
  // Tight hard ranges: only values close to the bounds are acceptable.
  p.avg_bounds = Interval(150, 200);
  p.avg_range = Interval(148, 202);
  p.contrast_min = 70.0;
  p.contrast_range = Interval(55, 80);
  p.k = 500;  // more than can exist
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto all = BruteForceAll(query);
  ASSERT_LT(all.size(), 500u);

  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  EXPECT_EQ(Points(run.results), Points(all));
}

TEST(RelaxTest, RelaxationDisabledReturnsOnlyExact) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, OverConstrained());
  RefineOptions options;
  options.enable = false;
  const auto run = ExecuteQuery(query, options).value();
  EXPECT_TRUE(run.results.empty());  // over-constrained: zero results
  EXPECT_EQ(run.stats.fails_recorded, 0);
  EXPECT_EQ(run.stats.replays, 0);
}

TEST(RelaxTest, StatsAreCoherent) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, OverConstrained());
  const auto run = ExecuteQuery(query, RefineOptions{}).value();

  EXPECT_GT(run.stats.main_search.nodes, 0);
  EXPECT_GT(run.stats.fails_recorded, 0);
  EXPECT_GT(run.stats.replays, 0);
  EXPECT_GT(run.stats.candidates, 0);
  EXPECT_GE(run.stats.candidates,
            run.stats.validated + run.stats.dropped_precheck -
                run.stats.duplicates);
  EXPECT_GE(run.stats.first_result_s, 0.0);
  EXPECT_LE(run.stats.first_result_s, run.stats.total_s);
  EXPECT_GE(run.stats.main_search_s, 0.0);
}

}  // namespace
}  // namespace dqr::core
