// Tenant-fair admission tests: the deficit round-robin scheduler's exact
// grant order under a controlled backlog (Pause/Resume + GrantLog), its
// budget rejections, and the end-to-end acceptance property — two
// saturating tenants with 8:1 weights complete work in an 8:1 ratio
// (within 15%) over the loopback server, with the light tenant never
// starved past a bounded admission wait.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine_session.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "testing/generator.h"

namespace dqr::serve {
namespace {

// Blocks until both tenants have the expected backlog queued (the
// Acquire calls run on their own threads, so enqueueing is asynchronous).
void AwaitQueueDepths(const TenantScheduler& sched, int64_t heavy,
                      int64_t light) {
  for (int spin = 0; spin < 5000; ++spin) {
    if (sched.StatsFor("heavy").queue_depth == heavy &&
        sched.StatsFor("light").queue_depth == light) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "backlog never reached " << heavy << "/" << light;
}

TEST(ServeFairness, DeficitRoundRobinGrantsExactWeightedPattern) {
  // One slot, equal per-query demand, weights 8:1: each DRR top-up
  // credits heavy with 8 grants' worth of deficit and light with 1, so
  // the grant log must be the deterministic pattern (H x8, L x1)
  // repeating. Pause freezes granting while the backlog builds.
  TenantScheduler sched(1);
  ASSERT_TRUE(sched.Configure("heavy", TenantConfig{8.0, 0, 0}).ok());
  ASSERT_TRUE(sched.Configure("light", TenantConfig{1.0, 0, 0}).ok());
  sched.Pause();

  constexpr int64_t kDemand = 2;
  std::vector<std::thread> workers;
  const auto worker = [&sched](const std::string& tenant) {
    Result<double> got = sched.Acquire(tenant, kDemand);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    sched.Release(tenant, kDemand);
  };
  for (int i = 0; i < 16; ++i) workers.emplace_back(worker, "heavy");
  for (int i = 0; i < 2; ++i) workers.emplace_back(worker, "light");
  AwaitQueueDepths(sched, 16, 2);

  sched.Resume();
  for (std::thread& w : workers) w.join();

  const std::vector<std::string> log = sched.GrantLog();
  ASSERT_EQ(log.size(), 18u);
  // Positions 0-7 and 9-16 are heavy; 8 and 17 are light.
  for (size_t i = 0; i < log.size(); ++i) {
    const bool light_slot = i == 8 || i == 17;
    EXPECT_EQ(log[i], light_slot ? "light" : "heavy") << "grant " << i;
  }
  EXPECT_EQ(sched.StatsFor("heavy").completed, 16);
  EXPECT_EQ(sched.StatsFor("light").completed, 2);
  // 8:1 in completed demand, exactly.
  EXPECT_EQ(sched.StatsFor("heavy").completed_demand, 32);
  EXPECT_EQ(sched.StatsFor("light").completed_demand, 4);
}

TEST(ServeFairness, BudgetRejectionsAreImmediateAndPrecise) {
  TenantScheduler sched(4);
  TenantConfig config;
  config.weight = 1.0;
  config.max_in_flight = 1;
  config.max_task_demand = 4;
  ASSERT_TRUE(sched.Configure("b", config).ok());

  // Demand above the per-query cap: rejected before queueing.
  Result<double> oversized = sched.Acquire("b", 8);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(oversized.status().message(),
            "tenant 'b' query demand 8 exceeds max_task_demand 4");

  // First query fits; a second, with one in flight, trips max_in_flight.
  Result<double> first = sched.Acquire("b", 2);
  ASSERT_TRUE(first.ok());
  Result<double> second = sched.Acquire("b", 2);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(second.status().message(), "tenant 'b' is at max_in_flight 1");
  sched.Release("b", 2);

  // After release the budget frees up.
  Result<double> third = sched.Acquire("b", 2);
  EXPECT_TRUE(third.ok());
  sched.Release("b", 2);

  EXPECT_EQ(sched.StatsFor("b").rejected, 2);
  EXPECT_EQ(sched.StatsFor("b").completed, 2);

  // Non-positive weights are rejected at configuration time.
  const Status bad = sched.Configure("b", TenantConfig{0.0, 0, 0});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("tenant 'b' weight must be > 0"),
            std::string::npos);
}

TEST(ServeFairness, ShutdownCancelsQueuedWaiters) {
  TenantScheduler sched(1);
  Result<double> holder = sched.Acquire("a", 1);
  ASSERT_TRUE(holder.ok());

  std::atomic<bool> cancelled{false};
  std::thread waiter([&] {
    Result<double> got = sched.Acquire("a", 1);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
    cancelled = true;
  });
  for (int spin = 0; spin < 5000 && sched.StatsFor("a").queue_depth == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sched.StatsFor("a").queue_depth, 1);

  sched.Shutdown();
  waiter.join();
  EXPECT_TRUE(cancelled);
  // Acquire after shutdown fails too.
  EXPECT_EQ(sched.Acquire("a", 1).status().code(), StatusCode::kCancelled);
}

// The acceptance property, end to end over real sockets: heavy (weight
// 8) and light (weight 1) both keep the server saturated with identical
// queries; when the light tenant has completed 10, the completed-work
// ratio must sit within 15% of 8:1, and the light tenant's worst
// admission wait must stay bounded (no starvation).
TEST(ServeFairness, SaturatingTenantsCompleteWorkInWeightRatio) {
  const fuzz::Workload w = fuzz::MakeWorkload(2, fuzz::FuzzMode::kRelax);

  // A private single-slot session makes completions strictly sequential
  // in DRR grant order, so the ratio is the scheduler's doing alone.
  exec::WorkerPool pool(4);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  session_options.max_concurrent_queries = 1;
  exec::EngineSession session(session_options);

  ServerOptions options;
  options.session = &session;
  options.tenants["heavy"] = TenantConfig{8.0, 0, 0};
  options.tenants["light"] = TenantConfig{1.0, 0, 0};
  // Give every query a real execution weight (an answer-preserving
  // busy-wait per estimate): execution must dominate the client
  // round-trip, else the backlog drains between completions and DRR
  // degenerates to arrival order.
  options.estimate_cost_ns = 50'000;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      server.RegisterDataset("d", data::DatasetBundle{w.array, w.synopsis})
          .ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  const auto saturate = [&](const std::string& tenant, int thread_id) {
    Client client;
    if (!client.Connect(server.port()).ok() ||
        !client.Hello(tenant).ok()) {
      ++failures;
      return;
    }
    int n = 0;
    while (!stop.load()) {
      Frame q;
      q.type = frame::kQuery;
      q.Set("id", tenant + std::to_string(thread_id) + "_" +
                      std::to_string(n++));
      q.Set("dataset", std::string("d"));
      q.Set("alpha", w.alpha);
      q.Set("constrain", std::string("rank"));
      q.body = w.query_text;
      if (!client.RunQuery(q).ok()) {
        // Expected once the test stops the server mid-stream; only count
        // failures while the run is live.
        if (!stop.load()) ++failures;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) threads.emplace_back(saturate, "heavy", t);
  for (int t = 0; t < 6; ++t) threads.emplace_back(saturate, "light", t);

  // Snapshot both counters atomically the moment light reaches 10
  // completions; Stats() reads under one mutex, so the pair is
  // consistent with the grant order.
  std::map<std::string, TenantStats> snapshot;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    snapshot = server.scheduler().Stats();
    if (snapshot["light"].completed >= 10 ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop = true;
  server.Stop();  // unblocks clients waiting on in-flight queries
  for (std::thread& t : threads) t.join();

  ASSERT_GE(snapshot["light"].completed, 10)
      << "light tenant starved after 120s";
  EXPECT_EQ(failures.load(), 0);
  const double heavy_demand =
      static_cast<double>(snapshot["heavy"].completed_demand);
  const double light_demand =
      static_cast<double>(snapshot["light"].completed_demand);
  ASSERT_GT(light_demand, 0.0);
  const double ratio = heavy_demand / light_demand;
  EXPECT_GE(ratio, 8.0 * 0.85) << "heavy under-served: " << ratio;
  EXPECT_LE(ratio, 8.0 * 1.15) << "heavy over-served: " << ratio;
  // No starvation: the light tenant's worst admission wait is bounded by
  // a handful of DRR rounds, far under the test's own runtime.
  EXPECT_GT(snapshot["light"].completed, 0);
  EXPECT_LT(snapshot["light"].max_admission_wait_s, 30.0);
}

}  // namespace
}  // namespace dqr::serve
