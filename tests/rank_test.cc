#include "core/rank.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dqr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// §3.2's example: the MIMIC query with C^c = {c1, c2, c3}, all maximized,
// equal weights 1/3. c1 = avg in [150, 200]; c2/c3 are half-open
// (contrast >= 80) and close their upper bound with the domain maximum
// 200, giving b - a = 120.
RankModel MimicRank() {
  std::vector<RankSpec> specs = {
      {Interval(150, 200), Interval(50, 250), -1.0, true, true},
      {Interval(80, kInf), Interval(0, 200), -1.0, true, true},
      {Interval(80, kInf), Interval(0, 200), -1.0, true, true},
  };
  return RankModel(std::move(specs));
}

TEST(RankModelTest, Section32WorkedExample) {
  const RankModel model = MimicRank();

  // r1 = (160, 100, 100): RK = 1 - (40/50 + 100/120 + 100/120)/3 = 0.178.
  EXPECT_NEAR(model.Rank({160, 100, 100}),
              1.0 - (0.8 + 100.0 / 120 + 100.0 / 120) / 3.0, 1e-12);
  EXPECT_NEAR(model.Rank({160, 100, 100}), 0.178, 5e-4);

  // r2 = (150, 80, 85): RK = 0.014.
  EXPECT_NEAR(model.Rank({150, 80, 85}), 0.014, 5e-4);

  // r3 = (190, 120, 120): the paper prints RK = 0.289, but its own
  // formula gives 1 - (10/50 + 80/120 + 80/120)/3 = 0.489 (see DESIGN.md
  // on this erratum). Either way r3 outranks r1, which is the example's
  // point.
  EXPECT_NEAR(model.Rank({190, 120, 120}),
              1.0 - (0.2 + 80.0 / 120 + 80.0 / 120) / 3.0, 1e-12);
  EXPECT_NEAR(model.Rank({190, 120, 120}), 0.4889, 5e-4);
  EXPECT_GT(model.Rank({190, 120, 120}), model.Rank({160, 100, 100}));
  EXPECT_LT(model.Rank({150, 80, 85}), model.Rank({160, 100, 100}));
}

TEST(RankModelTest, Section43BrkExample) {
  const RankModel model = MimicRank();

  // Sub-tree with c1 in [100, 190], c2/c3 in [100, 200]:
  // BRK = 1 - (10/50)/3 = 0.933.
  const std::vector<Interval> open_box = {
      Interval(100, 190), Interval(100, 200), Interval(100, 200)};
  EXPECT_NEAR(model.BestRank(open_box), 1.0 - (10.0 / 50.0) / 3.0, 1e-12);

  // Deeper node with c1 in [100, 180], c2/c3 in [100, 150]:
  // BRK = 1 - (20/50 + 2 * 50/120)/3 = 0.589 < MRK = 0.8 -> prunable.
  const std::vector<Interval> deep_box = {
      Interval(100, 180), Interval(100, 150), Interval(100, 150)};
  EXPECT_NEAR(model.BestRank(deep_box),
              1.0 - (20.0 / 50.0 + 2 * 50.0 / 120.0) / 3.0, 1e-9);
  EXPECT_LT(model.BestRank(deep_box), 0.8);
  EXPECT_GT(model.BestRank(open_box), 0.8);
}

TEST(RankModelTest, BestRankInfeasibleSubtree) {
  const RankModel model = MimicRank();
  // c2's estimate lies entirely below its bounds: no valid solutions.
  const std::vector<Interval> estimates = {
      Interval(160, 180), Interval(10, 60), Interval(100, 150)};
  EXPECT_TRUE(std::isinf(model.BestRank(estimates)));
  EXPECT_LT(model.BestRank(estimates), 0.0);
}

TEST(RankModelTest, MinimizedConstraintOrientation) {
  std::vector<RankSpec> specs = {
      {Interval(0, 10), Interval(0, 10), -1.0, false, true},  // minimize
  };
  const RankModel model(std::move(specs));
  // Smaller values rank higher.
  EXPECT_DOUBLE_EQ(model.Rank({0}), 1.0);
  EXPECT_DOUBLE_EQ(model.Rank({10}), 0.0);
  EXPECT_GT(model.Rank({2}), model.Rank({7}));
  // BRK picks the preferred (low) end of the feasible interval.
  EXPECT_DOUBLE_EQ(model.BestRank({Interval(4, 8)}), model.Rank({4}));
}

TEST(RankModelTest, ExplicitWeightsNormalize) {
  std::vector<RankSpec> specs = {
      {Interval(0, 10), Interval(0, 10), 3.0, true, true},
      {Interval(0, 10), Interval(0, 10), 1.0, true, true},
  };
  const RankModel model(std::move(specs));
  // Weights normalize to 0.75/0.25: worst values give RK = 0.
  EXPECT_NEAR(model.Rank({0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(model.Rank({10, 0}), 0.75, 1e-12);
  EXPECT_NEAR(model.Rank({0, 10}), 0.25, 1e-12);
}

TEST(RankModelTest, NonConstrainableConstraintsIgnored) {
  std::vector<RankSpec> specs = {
      {Interval(0, 10), Interval(0, 10), -1.0, true, true},
      {Interval(0, 10), Interval(0, 10), -1.0, true, false},  // not in C^c
  };
  const RankModel model(std::move(specs));
  EXPECT_EQ(model.num_constrainable(), 1);
  EXPECT_DOUBLE_EQ(model.Rank({10, 0}), 1.0);  // second value irrelevant
  EXPECT_DOUBLE_EQ(model.Rank({10, 10}), 1.0);
}

TEST(RankModelTest, SkylineOrientationNegatesMinimized) {
  std::vector<RankSpec> specs = {
      {Interval(0, 10), Interval(0, 10), -1.0, true, true},   // maximize
      {Interval(0, 10), Interval(0, 10), -1.0, false, true},  // minimize
      {Interval(0, 10), Interval(0, 10), -1.0, true, false},  // skipped
  };
  const RankModel model(std::move(specs));
  const std::vector<double> oriented = model.OrientForSkyline({3, 4, 5});
  ASSERT_EQ(oriented.size(), 2u);
  EXPECT_DOUBLE_EQ(oriented[0], 3.0);
  EXPECT_DOUBLE_EQ(oriented[1], -4.0);

  const std::vector<double> corner = model.BestCornerForSkyline(
      {Interval(1, 3), Interval(2, 6), Interval(0, 9)});
  ASSERT_EQ(corner.size(), 2u);
  EXPECT_DOUBLE_EQ(corner[0], 3.0);   // maximize: upper end
  EXPECT_DOUBLE_EQ(corner[1], -2.0);  // minimize: negated lower end
}

TEST(RankModelTest, ValuesOutsideBoundsClampForRanking) {
  // Constraining only ranks valid results, but BestRank intersects
  // estimates with bounds; values at the edge clamp cleanly.
  const RankModel model = MimicRank();
  EXPECT_DOUBLE_EQ(model.Rank({200, 200, 200}), 1.0);
  EXPECT_DOUBLE_EQ(model.Rank({250, 250, 250}), 1.0);  // clamped
}

}  // namespace
}  // namespace dqr::core
