#include "synopsis/synopsis.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace dqr::synopsis {
namespace {

struct Fixture {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<Synopsis> synopsis;
  std::vector<double> data;
};

Fixture MakeFixture(int64_t n, uint64_t seed, SynopsisOptions options) {
  Fixture f;
  Rng rng(seed);
  f.data.resize(static_cast<size_t>(n));
  for (double& v : f.data) v = rng.Uniform(50, 250);
  array::ArraySchema schema;
  schema.name = "syn_test";
  schema.length = n;
  schema.chunk_size = 64;
  f.array = array::Array::FromData(schema, f.data).value();
  f.synopsis = Synopsis::Build(*f.array, options).value();
  return f;
}

TEST(SynopsisTest, BuildRejectsBadOptions) {
  auto f = MakeFixture(100, 1, SynopsisOptions{{16, 4}, 8});
  SynopsisOptions bad;
  bad.cell_sizes = {};
  EXPECT_FALSE(Synopsis::Build(*f.array, bad).ok());
  bad.cell_sizes = {8, 16};  // not decreasing
  EXPECT_FALSE(Synopsis::Build(*f.array, bad).ok());
  bad.cell_sizes = {16, 16};
  EXPECT_FALSE(Synopsis::Build(*f.array, bad).ok());
  bad.cell_sizes = {0};
  EXPECT_FALSE(Synopsis::Build(*f.array, bad).ok());
  bad.cell_sizes = {16};
  bad.max_cells_per_query = 1;
  EXPECT_FALSE(Synopsis::Build(*f.array, bad).ok());
}

TEST(SynopsisTest, GlobalRangeMatchesData) {
  auto f = MakeFixture(500, 3, SynopsisOptions{{64, 8}, 16});
  double mn = f.data[0];
  double mx = f.data[0];
  for (const double v : f.data) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().lo, mn);
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().hi, mx);
}

// The central synopsis contract: every bound query returns an interval
// containing the exact aggregate over the base data.
class SynopsisSoundnessTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SynopsisSoundnessTest, BoundsContainExactAggregates) {
  const uint64_t seed = std::get<0>(GetParam());
  const int levels = std::get<1>(GetParam());
  SynopsisOptions options;
  options.cell_sizes.clear();
  for (int cell = 512, l = 0; l < levels; ++l, cell /= 4) {
    options.cell_sizes.push_back(cell);
  }
  options.max_cells_per_query = 16;
  auto f = MakeFixture(3000, seed, options);

  Rng rng(seed ^ 0xabcdef);
  for (int iter = 0; iter < 400; ++iter) {
    const int64_t lo = rng.UniformInt(0, 2998);
    const int64_t hi = rng.UniformInt(lo + 1, 3000);
    const array::WindowAggregates exact = f.array->AggregateWindow(lo, hi);

    const Interval value = f.synopsis->ValueBounds(lo, hi);
    EXPECT_LE(value.lo, exact.min);
    EXPECT_GE(value.hi, exact.max);

    const Interval sum = f.synopsis->SumBounds(lo, hi);
    EXPECT_LE(sum.lo, exact.sum + 1e-9);
    EXPECT_GE(sum.hi, exact.sum - 1e-9);

    const Interval avg = f.synopsis->AvgBounds(lo, hi);
    EXPECT_LE(avg.lo, exact.avg() + 1e-9);
    EXPECT_GE(avg.hi, exact.avg() - 1e-9);

    const Interval mx = f.synopsis->MaxBounds(lo, hi);
    EXPECT_LE(mx.lo, exact.max + 1e-9);
    EXPECT_GE(mx.hi, exact.max - 1e-9);

    const Interval mn = f.synopsis->MinBounds(lo, hi);
    EXPECT_LE(mn.lo, exact.min + 1e-9);
    EXPECT_GE(mn.hi, exact.min - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLevels, SynopsisSoundnessTest,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 1234u),
                       ::testing::Values(1, 2, 3)));

TEST(SynopsisTest, FinerLevelsTightenCellAlignedEstimates) {
  // On cell-aligned windows the synopsis is exact at a level whose cells
  // divide the window; a multi-level synopsis must be at least as tight.
  auto coarse = MakeFixture(1024, 5, SynopsisOptions{{256}, 16});
  auto multi = MakeFixture(1024, 5, SynopsisOptions{{256, 16}, 16});
  const Interval c = coarse.synopsis->ValueBounds(0, 64);
  const Interval m = multi.synopsis->ValueBounds(0, 64);
  EXPECT_GE(m.lo, c.lo);
  EXPECT_LE(m.hi, c.hi);
}

TEST(SynopsisTest, ExactOnCellAlignedSums) {
  auto f = MakeFixture(256, 9, SynopsisOptions{{16}, 64});
  const array::WindowAggregates exact = f.array->AggregateWindow(16, 64);
  const Interval sum = f.synopsis->SumBounds(16, 64);
  EXPECT_NEAR(sum.lo, exact.sum, 1e-9);
  EXPECT_NEAR(sum.hi, exact.sum, 1e-9);
}

TEST(SynopsisTest, PickLevelUsesExactCellCount) {
  // Budget 4, levels of 256 and 64. A cell-aligned [0, 256) window
  // overlaps exactly 4 cells of size 64, so the exact count admits the
  // finer level; the old `span / cell_size + 2` estimate (6 > 4) pushed
  // it a level coarser. A misaligned window of the same span overlaps 5
  // cells and must stay coarse.
  auto f = MakeFixture(4096, 21, SynopsisOptions{{256, 64}, 4});
  EXPECT_EQ(f.synopsis->PickLevelIndex(0, 256), 1u);
  EXPECT_EQ(f.synopsis->PickLevelIndex(1, 257), 0u);
  // And the finer routing is visible in the bounds: aligned windows now
  // get estimates at least as tight as the coarse level's.
  const Interval fine = f.synopsis->ValueBounds(0, 256);
  const Interval coarse = f.synopsis->ValueBounds(1, 257);
  EXPECT_GE(fine.lo, coarse.lo);
  EXPECT_LE(fine.hi, coarse.hi);
}

TEST(SynopsisTest, QueryCounterSumsAcrossThreads) {
  auto f = MakeFixture(4096, 13, SynopsisOptions{{256, 32}, 16});
  f.synopsis->ResetQueryCount();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&syn = *f.synopsis] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        (void)syn.ValueBounds(i % 100, i % 100 + 64);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(f.synopsis->queries_served(), kThreads * kQueriesPerThread);
}

TEST(SynopsisTest, QueryCounterTracks) {
  auto f = MakeFixture(256, 9, SynopsisOptions{{16}, 64});
  f.synopsis->ResetQueryCount();
  (void)f.synopsis->ValueBounds(0, 10);
  (void)f.synopsis->MaxBounds(0, 10);
  EXPECT_EQ(f.synopsis->queries_served(), 2);
}

TEST(SynopsisTest, MemoryBytesPositiveAndProportional) {
  auto small = MakeFixture(256, 9, SynopsisOptions{{64}, 16});
  auto large = MakeFixture(256, 9, SynopsisOptions{{64, 8}, 16});
  EXPECT_GT(small.synopsis->MemoryBytes(), 0);
  EXPECT_GT(large.synopsis->MemoryBytes(), small.synopsis->MemoryBytes());
}

}  // namespace
}  // namespace dqr::synopsis
