#ifndef DQR_TESTS_REFINER_TEST_UTIL_H_
#define DQR_TESTS_REFINER_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "array/array.h"
#include "common/rng.h"
#include "core/bundle.h"
#include "core/model_builders.h"
#include "core/solution.h"
#include "searchlight/functions.h"
#include "searchlight/query.h"
#include "synopsis/synopsis.h"

namespace dqr::testutil {

struct SmallBundle {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<synopsis::Synopsis> synopsis;
};

// A small crafted signal: calm base around 100, two elevated plateaus
// (120 and 160), and a handful of spikes of varying height on and off the
// plateaus. Gives the canned test queries non-trivial exact and relaxed
// result sets while staying brute-forceable.
inline SmallBundle MakeSmallBundle(int64_t n = 600, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double v = 100.0 + 2.0 * rng.NextGaussian();
    if (i >= n / 4 && i < n / 4 + 60) v += 20.0;        // plateau A: ~120
    if (i >= n / 2 && i < n / 2 + 80) v += 60.0;        // plateau B: ~160
    data[static_cast<size_t>(i)] = v;
  }
  // Spikes: position -> height.
  const int64_t spike_at[] = {60, n / 4 + 20, n / 2 + 10, n / 2 + 40,
                              5 * n / 6};
  const double heights[] = {35.0, 35.0, 45.0, 60.0, 50.0};
  for (size_t s = 0; s < 5; ++s) {
    for (int64_t i = spike_at[s]; i < spike_at[s] + 3 && i < n; ++i) {
      data[static_cast<size_t>(i)] += heights[s];
    }
  }
  for (double& v : data) v = std::clamp(v, 50.0, 250.0);

  array::ArraySchema schema;
  schema.name = "refiner_test";
  schema.length = n;
  schema.chunk_size = 64;
  SmallBundle bundle;
  bundle.array = array::Array::FromData(schema, std::move(data)).value();
  bundle.synopsis =
      synopsis::Synopsis::Build(*bundle.array,
                                synopsis::SynopsisOptions{{128, 16}, 16})
          .value();
  return bundle;
}

struct TestQueryParams {
  Interval avg_bounds = Interval(150, 200);
  Interval avg_range = Interval(50, 250);
  double contrast_min = 40.0;
  Interval contrast_range = Interval(0, 200);
  int64_t k = 5;
  int64_t len_lo = 4;
  int64_t len_hi = 10;
  int64_t nbhd = 6;
  bool contrast_relaxable = true;
};

inline searchlight::QuerySpec MakeTestQuery(const SmallBundle& bundle,
                                            const TestQueryParams& p) {
  searchlight::QuerySpec query;
  query.name = "test_query";
  query.k = p.k;
  const int64_t n = bundle.array->length();
  query.domains = {cp::IntDomain(p.nbhd, n - p.len_hi - p.nbhd - 1),
                   cp::IntDomain(p.len_lo, p.len_hi)};

  searchlight::WindowFunctionContext ctx;
  ctx.array = bundle.array;
  ctx.synopsis = bundle.synopsis;
  ctx.x_var = 0;
  ctx.len_var = 1;

  {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext avg_ctx = ctx;
    avg_ctx.value_range = p.avg_range;
    c.make_function = [avg_ctx] {
      return std::make_unique<searchlight::AvgFunction>(avg_ctx);
    };
    c.bounds = p.avg_bounds;
    c.name = "avg";
    query.constraints.push_back(std::move(c));
  }
  for (const auto side :
       {searchlight::NeighborhoodContrastFunction::Side::kLeft,
        searchlight::NeighborhoodContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    searchlight::WindowFunctionContext con_ctx = ctx;
    con_ctx.value_range = p.contrast_range;
    const int64_t width = p.nbhd;
    c.make_function = [con_ctx, side, width] {
      return std::make_unique<searchlight::NeighborhoodContrastFunction>(
          con_ctx, side, width);
    };
    c.bounds =
        Interval(p.contrast_min, std::numeric_limits<double>::infinity());
    c.relaxable = p.contrast_relaxable;
    query.constraints.push_back(std::move(c));
  }
  return query;
}

// Exhaustively evaluates every assignment of `query` the way the engine's
// Validator would, returning all solutions with finite RP sorted by
// (rp, point). rk is filled from the query's rank model.
inline std::vector<core::Solution> BruteForceAll(
    const searchlight::QuerySpec& query, double alpha = 0.5) {
  const core::PenaltyModel penalty =
      core::BuildPenaltyModel(query, alpha).value();
  const core::RankModel rank = core::BuildRankModel(query).value();
  core::ConstraintBundle bundle(query);

  std::vector<core::Solution> out;
  for (int64_t x = query.domains[0].lo; x <= query.domains[0].hi; ++x) {
    for (int64_t l = query.domains[1].lo; l <= query.domains[1].hi; ++l) {
      core::Solution s;
      s.point = {x, l};
      s.values = bundle.EvaluateAll(s.point);
      s.rp = penalty.Penalty(s.values);
      if (std::isinf(s.rp)) continue;
      s.rk = rank.Rank(s.values);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const core::Solution& a, const core::Solution& b) {
              if (a.rp != b.rp) return a.rp < b.rp;
              return a.point < b.point;
            });
  return out;
}

inline std::vector<core::Solution> ExactOnly(
    std::vector<core::Solution> all) {
  std::vector<core::Solution> out;
  for (auto& s : all) {
    if (s.rp == 0.0) out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<std::vector<int64_t>> Points(
    const std::vector<core::Solution>& solutions) {
  std::vector<std::vector<int64_t>> out;
  out.reserve(solutions.size());
  for (const auto& s : solutions) out.push_back(s.point);
  return out;
}

}  // namespace dqr::testutil

#endif  // DQR_TESTS_REFINER_TEST_UTIL_H_
