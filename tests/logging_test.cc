// DQR_LOG plumbing: the SetLogSink hook captures formatted lines, and the
// prefix carries a monotonic timestamp plus a stable per-thread id
// ("[I 12.345678 t03 file.cc:42] message").

#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dqr {
namespace {

// Restores global logging state even when an assertion fails mid-test.
class SinkCapture {
 public:
  SinkCapture() : previous_level_(GetLogLevel()) {
    SetLogLevel(LogLevel::kDebug);
    SetLogSink([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  ~SinkCapture() {
    SetLogSink(nullptr);
    SetLogLevel(previous_level_);
  }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  LogLevel previous_level_;
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(LoggingTest, SinkCapturesFormattedLine) {
  SinkCapture capture;
  DQR_LOG(kInfo) << "hello " << 42;

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("[I ", 0), 0u) << line;
  EXPECT_NE(line.find("logging_test.cc:"), std::string::npos) << line;
  EXPECT_NE(line.find("] hello 42"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "sink line has newline";
}

TEST(LoggingTest, PrefixCarriesTimestampAndThreadId) {
  SinkCapture capture;
  DQR_LOG(kWarning) << "first";
  DQR_LOG(kError) << "second";

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("[W ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("[E ", 0), 0u) << lines[1];

  // "[W <seconds> t<NN> file:line] msg" — parse the two middle fields.
  for (const std::string& line : lines) {
    double seconds = -1.0;
    int tid = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "%*2c%lf t%d", &seconds, &tid), 2)
        << line;
    EXPECT_GE(seconds, 0.0) << line;
    EXPECT_GE(tid, 0) << line;
  }
}

TEST(LoggingTest, DistinctThreadsGetDistinctIds) {
  SinkCapture capture;
  DQR_LOG(kInfo) << "from main";
  std::thread other([] { DQR_LOG(kInfo) << "from other"; });
  other.join();

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  auto tid_of = [](const std::string& line) {
    int tid = -1;
    EXPECT_EQ(std::sscanf(line.c_str(), "%*2c%*f t%d", &tid), 1) << line;
    return tid;
  };
  EXPECT_NE(tid_of(lines[0]), tid_of(lines[1]));
}

TEST(LoggingTest, LevelFilterStillApplies) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kError);
  DQR_LOG(kInfo) << "suppressed";
  DQR_LOG(kError) << "kept";
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

TEST(LoggingTest, NullSinkRestoresStderr) {
  {
    SinkCapture capture;
    DQR_LOG(kError) << "captured";
    ASSERT_EQ(capture.lines().size(), 1u);
  }
  // After restore this must not crash (goes to stderr, not the dead sink).
  DQR_LOG(kDebug) << "to stderr if enabled";
}

}  // namespace
}  // namespace dqr
