// Scheduler independence of the work-stealing engine: the result set must
// be identical — point for point, penalty for penalty — no matter how the
// search space is sharded or how many instances steal from the pool, in
// both refinement directions, and must match exhaustive enumeration. Also
// pins the shard-accounting and replay-provenance statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

// The shared canonical form (see core/canonical.h); every determinism
// check in the repo compares these strings byte for byte.
std::string Fingerprint(const std::vector<Solution>& results) {
  return Canonicalize(results);
}

int64_t ExpectedShards(const searchlight::QuerySpec& query,
                       const RefineOptions& options) {
  const int64_t dom_size =
      std::max<int64_t>(1, query.domains.front().size());
  const int64_t instances =
      std::min<int64_t>(options.num_instances, dom_size);
  const int64_t want = std::min<int64_t>(
      dom_size,
      static_cast<int64_t>(options.shards_per_instance) * instances);
  const int64_t chunk = (query.domains.front().size() + want - 1) / want;
  return (query.domains.front().size() + chunk - 1) / chunk;
}

class WorkStealingTest : public ::testing::Test {
 protected:
  void SetUp() override { bundle_ = MakeSmallBundle(600, 5); }
  testutil::SmallBundle bundle_;
};

// Relaxation direction: fewer than k exact results, the engine replays
// fails from the shared pool. Results must be byte-identical across every
// shards_per_instance x num_instances combination and equal to the
// brute-force best-k by RP.
TEST_F(WorkStealingTest, RelaxationInvariantUnderSharding) {
  TestQueryParams p;
  p.avg_bounds = Interval(228, 250);  // scarce: forces relaxation
  p.k = 6;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);
  const auto all = BruteForceAll(query);
  ASSERT_LT(ExactOnly(all).size(), static_cast<size_t>(p.k));

  std::string reference;
  for (const int instances : {1, 2, 4, 8}) {
    for (const int shards : {1, 4, 8}) {
      RefineOptions options;
      options.num_instances = instances;
      options.shards_per_instance = shards;
      const auto run = ExecuteQuery(query, options);
      ASSERT_TRUE(run.ok());
      const auto& results = run.value().results;

      const size_t expect_n =
          std::min(all.size(), static_cast<size_t>(p.k));
      ASSERT_EQ(results.size(), expect_n)
          << "instances=" << instances << " shards=" << shards;
      for (size_t i = 0; i < expect_n; ++i) {
        EXPECT_EQ(results[i].point, all[i].point)
            << "rank " << i << " instances=" << instances
            << " shards=" << shards;
        EXPECT_NEAR(results[i].rp, all[i].rp, 1e-9);
      }
      const std::string fp = Fingerprint(results);
      if (reference.empty()) reference = fp;
      EXPECT_EQ(fp, reference)
          << "result bytes differ at instances=" << instances
          << " shards=" << shards;
    }
  }
}

// Constraining direction: more than k exact results, the engine
// constrains by rank. Same invariance contract.
TEST_F(WorkStealingTest, ConstrainingInvariantUnderSharding) {
  TestQueryParams p;
  p.avg_bounds = Interval(110, 200);  // plentiful: forces constraining
  p.contrast_min = 20.0;
  p.k = 5;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);
  auto exact = ExactOnly(BruteForceAll(query));
  ASSERT_GT(exact.size(), static_cast<size_t>(p.k));
  std::sort(exact.begin(), exact.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rk != b.rk) return a.rk > b.rk;
              return a.point < b.point;
            });
  exact.resize(static_cast<size_t>(p.k));

  std::string reference;
  for (const int instances : {1, 2, 4, 8}) {
    for (const int shards : {1, 4, 8}) {
      RefineOptions options;
      options.num_instances = instances;
      options.shards_per_instance = shards;
      options.constrain = ConstrainMode::kRank;
      const auto run = ExecuteQuery(query, options);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(Points(run.value().results), Points(exact))
          << "instances=" << instances << " shards=" << shards;
      const std::string fp = Fingerprint(run.value().results);
      if (reference.empty()) reference = fp;
      EXPECT_EQ(fp, reference)
          << "instances=" << instances << " shards=" << shards;
    }
  }
}

// Speculative replayers pull from the same shared pool; invariance and
// completion must hold with them enabled too.
TEST_F(WorkStealingTest, SpeculationPullsFromSharedPool) {
  TestQueryParams p;
  p.avg_bounds = Interval(228, 250);
  p.k = 6;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);
  const auto all = BruteForceAll(query);

  RefineOptions base;
  base.num_instances = 1;
  base.shards_per_instance = 1;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  RefineOptions options;
  options.num_instances = 4;
  options.shards_per_instance = 8;
  options.speculative = true;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
  // Stolen replays are a subset of all replays performed.
  const RunStats& stats = run.value().stats;
  EXPECT_LE(stats.replays_stolen, stats.replays + stats.speculative_replays);
}

// Every seeded shard is executed exactly once, and the per-instance
// breakdown accounts for all of them.
TEST_F(WorkStealingTest, ShardAccounting) {
  TestQueryParams p;
  p.k = 4;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);

  for (const int instances : {1, 3, 4}) {
    for (const int shards : {1, 4, 8}) {
      RefineOptions options;
      options.num_instances = instances;
      options.shards_per_instance = shards;
      const auto run = ExecuteQuery(query, options);
      ASSERT_TRUE(run.ok());
      const RunResult& result = run.value();
      EXPECT_EQ(result.stats.shards_executed,
                ExpectedShards(query, options))
          << "instances=" << instances << " shards=" << shards;
      int64_t per_instance_sum = 0;
      for (const RunStats& s : result.per_instance) {
        per_instance_sum += s.shards_executed;
      }
      EXPECT_EQ(per_instance_sum, result.stats.shards_executed);
      // Aggregate gauges stay coherent: the max view never exceeds the
      // summed view.
      EXPECT_LE(result.stats.max_peak_queue, result.stats.peak_queue);
      EXPECT_LE(result.stats.max_peak_fail_count,
                result.stats.peak_fail_count);
    }
  }
}

// The degenerate escape hatch: shards_per_instance = 1 must split
// variable 0 exactly like the legacy static partitioning did.
TEST_F(WorkStealingTest, SingleShardDegeneratesToStaticSlicing) {
  TestQueryParams p;
  p.k = 4;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);
  RefineOptions options;
  options.num_instances = 4;
  options.shards_per_instance = 1;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());
  // Legacy arithmetic: ceil(|dom0| / instances) wide chunks.
  const int64_t size = query.domains.front().size();
  const int64_t chunk = (size + 4 - 1) / 4;
  EXPECT_EQ(run.value().stats.shards_executed, (size + chunk - 1) / chunk);
}

// A seeded crash at the moment a shard is stolen: the leased shard must
// be neither lost nor executed twice. The crashed instance never counts
// it (it died before running it), the detector requeues it exactly once,
// and a survivor executes it — so the exactly-once shard accounting and
// the result set are both intact.
TEST_F(WorkStealingTest, CrashDuringStealKeepsExactlyOnceAccounting) {
  TestQueryParams p;
  p.avg_bounds = Interval(228, 250);
  p.k = 6;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);

  RefineOptions base;
  base.num_instances = 3;
  base.shards_per_instance = 8;
  base.lease_timeout_us = 120000;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  // Pace the peers so the pool cannot drain before instance 1's first
  // steal, then kill instance 1 right as it takes its shard.
  plan.Stall(0, FaultSite::kShardPickup, 0, 20000)
      .Stall(2, FaultSite::kShardPickup, 0, 20000)
      .Crash(1, FaultSite::kShardPickup, 0);
  RefineOptions options = base;
  options.fault_plan = &plan;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());
  const RunResult& result = run.value();

  EXPECT_TRUE(result.stats.completed);
  EXPECT_EQ(result.stats.instances_lost, 1);
  EXPECT_EQ(result.stats.shards_requeued, 1);
  // Every seeded shard ran to completion exactly once, the requeued one
  // included — on a survivor, since the victim died before executing any.
  EXPECT_EQ(result.stats.shards_executed, ExpectedShards(query, options));
  EXPECT_EQ(result.per_instance[1].shards_executed, 0);
  int64_t per_instance_sum = 0;
  for (const RunStats& s : result.per_instance) {
    per_instance_sum += s.shards_executed;
  }
  EXPECT_EQ(per_instance_sum, result.stats.shards_executed);
  EXPECT_EQ(Fingerprint(result.results),
            Fingerprint(reference.value().results));
}

TEST_F(WorkStealingTest, RejectsNonPositiveShardKnob) {
  TestQueryParams p;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);
  RefineOptions options;
  options.shards_per_instance = 0;
  EXPECT_FALSE(ExecuteQuery(query, options).ok());
}

}  // namespace
}  // namespace dqr::core
