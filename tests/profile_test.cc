// Profiler unit tests: assembly of the phase → site → instance tree from
// synthetic flight-recorder rings (deterministic EmitAt timestamps), the
// JSON codec round trip, the pretty/diff report shapes, and the
// end-to-end estimator-accuracy contract on real 1-D and grid queries.

#include <gtest/gtest.h>

#include <string>

#include "core/refiner.h"
#include "core/stats.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "testing/generator.h"

namespace dqr::obs {
namespace {

using EK = EventKind;
using EN = EventName;

// One solver ring and one validator ring, with a phase flip mid-stream
// and deliberately unbalanced spans. Timestamps are synthetic, so every
// derived number is exact.
QueryProfile AssembleSynthetic(core::RunStats stats) {
  Trace trace;
  const int epoch = trace.BeginQuery();
  TraceRing* solver = trace.CreateRing(0, ThreadRole::kSolver, 64, epoch);
  TraceRing* validator =
      trace.CreateRing(1, ThreadRole::kValidator, 64, epoch);

  // collecting: one shard span, one counter sample, one validate span.
  solver->EmitAt(50, EK::kEnd, EN::kShardExecute, 0.0);  // no Begin: drop
  solver->EmitAt(100, EK::kBegin, EN::kShardExecute, 0.0);
  solver->EmitAt(150, EK::kCounter, EN::kMrp, 1.5);
  solver->EmitAt(400, EK::kEnd, EN::kShardExecute, 0.0);
  validator->EmitAt(200, EK::kBegin, EN::kValidate, 0.0);
  validator->EmitAt(300, EK::kEnd, EN::kValidate, 0.0);

  // Flip to constraining at t=1000; spans beginning after it belong to
  // the new phase even if the flip was seen on another ring.
  validator->EmitAt(1000, EK::kInstant, EN::kPhaseConstraining, 0.0);
  validator->EmitAt(1100, EK::kInstant, EN::kResultExact, 3.0);
  solver->EmitAt(1200, EK::kBegin, EN::kShardExecute, 0.0);
  solver->EmitAt(1500, EK::kEnd, EN::kShardExecute, 0.0);
  solver->EmitAt(2000, EK::kBegin, EN::kShardExecute, 0.0);  // never ends

  // A ring from a *different* query epoch must not leak into this one.
  TraceRing* stale =
      trace.CreateRing(0, ThreadRole::kSolver, 64, epoch + 1);
  stale->EmitAt(10, EK::kInstant, EN::kResultExact, 9.0);

  return AssembleProfile(trace, epoch, stats);
}

TEST(ProfileAssemblyTest, BuildsPhaseSiteInstanceTree) {
  core::RunStats stats;
  stats.total_s = 2e-6;  // 2000 ns wall
  const QueryProfile p = AssembleSynthetic(stats);

  EXPECT_EQ(p.root.name, "query");
  EXPECT_EQ(p.root.count, 1);
  EXPECT_EQ(p.root.total_ns, 2000);

  // Canonical phase order: collecting first, then the flip.
  ASSERT_EQ(p.root.children.size(), 2u);
  EXPECT_EQ(p.root.children[0].name, "collecting");
  EXPECT_EQ(p.root.children[1].name, "constraining");

  // collecting: mrp + shard_execute + validate, alphabetical.
  const ProfileNode& collecting = p.root.children[0];
  ASSERT_EQ(collecting.children.size(), 3u);
  EXPECT_EQ(collecting.children[0].name, "mrp");
  EXPECT_EQ(collecting.children[1].name, "shard_execute");
  EXPECT_EQ(collecting.children[2].name, "validate");

  const ProfileNode* shard = collecting.Find("shard_execute");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->count, 1);      // the unbalanced pair was dropped
  EXPECT_EQ(shard->total_ns, 300);  // 400 - 100
  EXPECT_EQ(shard->max_ns, 300);
  ASSERT_EQ(shard->children.size(), 1u);
  EXPECT_EQ(shard->children[0].name, "i0/solver");

  const ProfileNode* validate = collecting.Find("validate");
  ASSERT_NE(validate, nullptr);
  EXPECT_EQ(validate->total_ns, 100);
  ASSERT_EQ(validate->children.size(), 1u);
  EXPECT_EQ(validate->children[0].name, "i1/validator");

  // The phase aggregates its sites.
  EXPECT_EQ(collecting.total_ns, 400);
  EXPECT_EQ(collecting.count, 3);  // 1 span + 1 counter + 1 span

  // constraining: the post-flip span and the result instant — and
  // nothing from the stale epoch's ring.
  const ProfileNode& constraining = p.root.children[1];
  const ProfileNode* late = constraining.Find("shard_execute");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->count, 1);
  EXPECT_EQ(late->total_ns, 300);  // 1500 - 1200
  const ProfileNode* result = constraining.Find("result_exact");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->count, 1);

  EXPECT_GT(p.trace_emitted, 0);
  EXPECT_EQ(p.trace_dropped, 0);
}

core::RunStats PopulatedStats() {
  core::RunStats stats;
  stats.total_s = 0.25;
  stats.exact_results = 7;
  stats.completed = true;
  stats.query_latency.RecordSeconds(0.25);
  stats.bound_latency.Record(1500);
  stats.bound_latency.Record(90000);
  stats.steal_latency.Record(333);
  stats.admission_wait.RecordSeconds(0.001);
  stats.estimator_accuracy.Record(0, 1.0, 3.0, 2.0, 10.0, false);
  stats.estimator_accuracy.Record(2, 0.0, 8.0, 9.0, 10.0, true);
  return stats;
}

TEST(ProfileJsonTest, RoundTripsExactly) {
  const QueryProfile p = AssembleSynthetic(PopulatedStats());
  const std::string json = ProfileToJson(p);

  Result<QueryProfile> back = ProfileFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Deep equality via the canonical serialization.
  EXPECT_EQ(ProfileToJson(back.value()), json);

  const QueryProfile& q = back.value();
  EXPECT_EQ(q.root.name, "query");
  EXPECT_EQ(q.stats.exact_results, 7);
  EXPECT_EQ(q.stats.query_latency.count(), 1);
  EXPECT_EQ(q.stats.bound_latency.count(), 2);
  EXPECT_EQ(q.stats.bound_latency.max_ns(), 90000);
  EXPECT_EQ(q.stats.estimator_accuracy.total_samples(), 2);
  EXPECT_EQ(q.stats.estimator_accuracy.level(2).wasted, 1);
  EXPECT_EQ(q.trace_emitted, p.trace_emitted);
}

TEST(ProfileJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ProfileFromJson("").ok());
  EXPECT_FALSE(ProfileFromJson("not json").ok());
  EXPECT_FALSE(ProfileFromJson("[1,2,3]").ok());
  // Wrong version.
  EXPECT_FALSE(ProfileFromJson("{\"version\":2,\"query\":{\"name\":\"q\"},"
                               "\"stats\":{}}")
                   .ok());
  // Missing pieces.
  EXPECT_FALSE(ProfileFromJson("{\"version\":1,\"stats\":{}}").ok());
  EXPECT_FALSE(
      ProfileFromJson("{\"version\":1,\"query\":{\"name\":\"q\"}}").ok());
  // Present-but-malformed stats field (histograms are strings).
  EXPECT_FALSE(ProfileFromJson("{\"version\":1,\"query\":{\"name\":\"q\"},"
                               "\"stats\":{\"query_latency\":5}}")
                   .ok());
  EXPECT_FALSE(ProfileFromJson("{\"version\":1,\"query\":{\"name\":\"q\"},"
                               "\"stats\":{\"query_latency\":\"junk\"}}")
                   .ok());

  // Missing stats fields keep defaults: forward compatibility.
  Result<QueryProfile> minimal = ProfileFromJson(
      "{\"version\":1,\"query\":{\"name\":\"query\"},\"stats\":{}}");
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_TRUE(minimal.value().stats.query_latency.empty());
}

TEST(ProfileFormatTest, ReportCarriesEverySection) {
  const QueryProfile p = AssembleSynthetic(PopulatedStats());
  const std::string report = FormatProfile(p);
  EXPECT_NE(report.find("query count=1"), std::string::npos) << report;
  EXPECT_NE(report.find("collecting"), std::string::npos);
  EXPECT_NE(report.find("constraining"), std::string::npos);
  EXPECT_NE(report.find("i0/solver"), std::string::npos);
  EXPECT_NE(report.find("trace emitted="), std::string::npos);
  EXPECT_NE(report.find("latency\n"), std::string::npos);
  EXPECT_NE(report.find("query_latency"), std::string::npos);
  EXPECT_NE(report.find("estimator accuracy\n"), std::string::npos);
  EXPECT_NE(report.find("level 0"), std::string::npos);
  EXPECT_NE(report.find("contained=100.0%"), std::string::npos);
  EXPECT_NE(report.find("timings (s)\n"), std::string::npos);
  EXPECT_NE(report.find("counters\n"), std::string::npos);
}

TEST(ProfileDiffTest, ReportsDeltasAndNewNodes) {
  QueryProfile a;
  a.root.name = "query";
  a.root.count = 1;
  a.root.total_ns = 1000;
  ProfileNode& pa = a.root.Child("collecting");
  pa.count = 2;
  pa.total_ns = 1000;
  a.stats.exact_results = 10;
  a.stats.query_latency.Record(1000);

  QueryProfile b;
  b.root.name = "query";
  b.root.count = 1;
  b.root.total_ns = 1500;
  ProfileNode& pb = b.root.Child("collecting");
  pb.count = 2;
  pb.total_ns = 1200;
  ProfileNode& nb = b.root.Child("relaxing");  // B-only: reported as new
  nb.count = 1;
  nb.total_ns = 300;
  b.stats.exact_results = 10;
  b.stats.query_latency.Record(2000);

  const std::string diff = DiffProfiles(a, b);
  EXPECT_NE(diff.find("query: "), std::string::npos) << diff;
  EXPECT_NE(diff.find("(+50.0%)"), std::string::npos) << diff;   // root busy
  EXPECT_NE(diff.find("query/collecting: "), std::string::npos);
  EXPECT_NE(diff.find("(+20.0%)"), std::string::npos);
  EXPECT_NE(diff.find("query/relaxing: "), std::string::npos);
  EXPECT_NE(diff.find("(new)"), std::string::npos);
  EXPECT_NE(diff.find("query_latency p50:"), std::string::npos);
  // Identical counters print their values with a zero delta.
  EXPECT_NE(diff.find("exact_results: 10 -> 10 (+0.0%)"),
            std::string::npos);
}

// End-to-end estimator accuracy: a profiled run over each synopsis shape
// must leave a populated predicted-vs-actual ledger (the validator is
// the only recorder) and a coherent one: containment cannot exceed the
// sample count, and a sound estimator keeps it at 100%.
void CheckEstimatorAccuracy(bool grid) {
  const fuzz::Workload w =
      fuzz::MakeWorkload(7, fuzz::FuzzMode::kRelax, {}, grid);
  fuzz::EngineConfig config;
  config.num_instances = 2;
  config.shards_per_instance = 4;
  core::RefineOptions options = config.ToOptions(w, nullptr);
  Profile profile;
  options.profile = &profile;

  const auto run = core::ExecuteQuery(w.query, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run.value().stats.completed);

  const EstimatorAccuracy& acc = profile.query().stats.estimator_accuracy;
  ASSERT_GT(acc.total_samples(), 0)
      << (grid ? "grid" : "1-D") << " run recorded no estimator samples";
  int64_t contained = 0;
  for (int i = 0; i < EstimatorAccuracy::kMaxLevels; ++i) {
    const EstimatorAccuracy::Level& l = acc.level(i);
    ASSERT_LE(l.contained, l.samples) << "level " << i;
    ASSERT_LE(l.wasted, l.samples) << "level " << i;
    ASSERT_GE(l.width_sum, 0.0) << "level " << i;
    contained += l.contained;
  }
  // Soundness: the synopsis interval must always contain the exact value.
  EXPECT_EQ(contained, acc.total_samples());

  // The profiled run also fills the bound-latency histogram (validator
  // miss paths) and exactly one query-latency sample.
  EXPECT_EQ(profile.query().stats.query_latency.count(), 1);
  EXPECT_GT(profile.query().stats.bound_latency.count(), 0);
}

TEST(EstimatorAccuracyEndToEndTest, OneDimensionalSynopsis) {
  CheckEstimatorAccuracy(/*grid=*/false);
}

TEST(EstimatorAccuracyEndToEndTest, GridSynopsis) {
  CheckEstimatorAccuracy(/*grid=*/true);
}

}  // namespace
}  // namespace dqr::obs
