#include "data/waveform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "array/array.h"

namespace dqr::data {
namespace {

WaveformOptions SmallOptions(uint64_t seed = 7) {
  WaveformOptions opts;
  opts.length = 1 << 14;
  opts.chunk_size = 1 << 10;
  opts.seed = seed;
  return opts;
}

TEST(WaveformTest, DeterministicRegenerationFromFixedSeed) {
  const auto a = GenerateAbpWaveform(SmallOptions(42));
  const auto b = GenerateAbpWaveform(SmallOptions(42));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Bit-identical, not merely statistically similar: replay of a recorded
  // workload (fuzz repro files, benchmarks) depends on exact regeneration.
  EXPECT_EQ(a.value()->Dump(), b.value()->Dump());
}

TEST(WaveformTest, DifferentSeedsDiverge) {
  const auto a = GenerateAbpWaveform(SmallOptions(1));
  const auto b = GenerateAbpWaveform(SmallOptions(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->Dump(), b.value()->Dump());
}

TEST(WaveformTest, ValuesStayWithinThePhysiologicalClamp) {
  const auto result = GenerateAbpWaveform(SmallOptions());
  ASSERT_TRUE(result.ok());
  const array::Array& arr = *result.value();
  const array::WindowAggregates all = arr.AggregateWindow(0, arr.length());
  EXPECT_GE(all.min, 50.0);
  EXPECT_LE(all.max, 250.0);
  EXPECT_EQ(all.count, arr.length());
}

TEST(WaveformTest, WindowAveragesReachTheHypertensiveBand) {
  // The paper's running query searches for 8-16 second windows with an
  // average in [150, 200]; the simulator must produce some (episodes) but
  // not be dominated by them (the baseline sits near 95).
  const auto result = GenerateAbpWaveform(SmallOptions());
  ASSERT_TRUE(result.ok());
  const array::Array& arr = *result.value();
  const int64_t w = 12;
  int64_t in_band = 0;
  int64_t windows = 0;
  for (int64_t x = 0; x + w <= arr.length(); x += w) {
    const double avg = arr.AggregateWindow(x, x + w).avg();
    in_band += (avg >= 150.0 && avg <= 200.0) ? 1 : 0;
    ++windows;
  }
  EXPECT_GT(in_band, 0);
  EXPECT_LT(in_band, windows / 2);
}

TEST(WaveformTest, EventsCreateNeighborhoodContrast) {
  const auto result = GenerateAbpWaveform(SmallOptions());
  ASSERT_TRUE(result.ok());
  const array::Array& arr = *result.value();
  // Somewhere a short window's max exceeds its 16-cell left neighborhood's
  // max by a strong-event margin.
  double best = 0.0;
  for (int64_t x = 16; x + 3 <= arr.length(); ++x) {
    const double here = arr.MaxOver(x, x + 3);
    const double left = arr.MaxOver(x - 16, x);
    best = std::max(best, here - left);
  }
  EXPECT_GE(best, 35.0);
}

TEST(WaveformTest, EdgeLengthRecords) {
  // A single-cell array: every stage (episodes, events, clamp) must cope
  // with windows that collapse to one position.
  WaveformOptions one = SmallOptions();
  one.length = 1;
  one.chunk_size = 4;
  const auto single = GenerateAbpWaveform(one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value()->length(), 1);
  const double v = single.value()->At(0);
  EXPECT_GE(v, 50.0);
  EXPECT_LE(v, 250.0);

  // Shorter than one episode and one event width: placement clamps to 0.
  WaveformOptions tiny = SmallOptions();
  tiny.length = 2;
  tiny.episode_len_lo = 64;
  tiny.episode_len_hi = 1024;
  tiny.episodes_per_million = 1e6;  // force at least one episode
  tiny.events_per_million = 1e6;    // and at least one event
  const auto two = GenerateAbpWaveform(tiny);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.value()->length(), 2);

  // Length not a multiple of the chunk size: the last chunk is partial.
  WaveformOptions ragged = SmallOptions();
  ragged.length = 1000;
  ragged.chunk_size = 64;
  const auto partial = GenerateAbpWaveform(ragged);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value()->length(), 1000);
  EXPECT_EQ(partial.value()->schema().num_chunks(), 16);
  EXPECT_EQ(partial.value()->AggregateWindow(960, 1000).count, 40);
}

TEST(WaveformTest, RejectsBadOptions) {
  WaveformOptions empty = SmallOptions();
  empty.length = 0;
  EXPECT_FALSE(GenerateAbpWaveform(empty).ok());

  WaveformOptions negative = SmallOptions();
  negative.length = -5;
  EXPECT_FALSE(GenerateAbpWaveform(negative).ok());

  WaveformOptions bad_episodes = SmallOptions();
  bad_episodes.episode_len_lo = 10;
  bad_episodes.episode_len_hi = 5;
  EXPECT_FALSE(GenerateAbpWaveform(bad_episodes).ok());

  WaveformOptions zero_len_episode = SmallOptions();
  zero_len_episode.episode_len_lo = 0;
  EXPECT_FALSE(GenerateAbpWaveform(zero_len_episode).ok());
}

}  // namespace
}  // namespace dqr::data
