#include "core/canonical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dqr::core {
namespace {

Solution Make(std::vector<int64_t> point, std::vector<double> values,
              double rp, double rk) {
  Solution s;
  s.point = std::move(point);
  s.values = std::move(values);
  s.rp = rp;
  s.rk = rk;
  return s;
}

TEST(CanonicalTest, LineFormat) {
  EXPECT_EQ(CanonicalLine(Make({3, 7}, {92.5, 0.25}, 0.0, 1.0)),
            "(3,7) f=(92.5,0.25) rp=0 rk=1");
}

TEST(CanonicalTest, NormalizesNegativeZeroAndNonFinite) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const std::string line =
      CanonicalLine(Make({0}, {-0.0, inf, -inf, std::nan("")}, -0.0, 0.0));
  EXPECT_EQ(line, "(0) f=(0,inf,-inf,nan) rp=0 rk=0");
}

TEST(CanonicalTest, TwelveSignificantDigits) {
  // Doubles differing beyond 12 significant digits canonicalize equal —
  // the determinism checks demand bit-identical engine behaviour, and
  // %.12g leaves slack only below any plausible scoring difference.
  const std::string a = CanonicalLine(Make({1}, {}, 0.1234567890123, 0.0));
  const std::string b =
      CanonicalLine(Make({1}, {}, 0.12345678901234, 0.0));
  EXPECT_EQ(a, b);
  const std::string c = CanonicalLine(Make({1}, {}, 0.123456789013, 0.0));
  EXPECT_NE(a, c);
}

TEST(CanonicalTest, ListFormIsLinePerSolution) {
  const std::vector<Solution> results = {Make({1, 2}, {5.0}, 0.0, 1.0),
                                         Make({3, 4}, {6.0}, 0.5, 0.0)};
  EXPECT_EQ(Canonicalize(results),
            "(1,2) f=(5) rp=0 rk=1\n(3,4) f=(6) rp=0.5 rk=0\n");
  EXPECT_EQ(Canonicalize({}), "");
}

TEST(CanonicalTest, PreservesResultOrder) {
  const std::vector<Solution> ab = {Make({1}, {}, 0.0, 0.0),
                                    Make({2}, {}, 0.0, 0.0)};
  const std::vector<Solution> ba = {ab[1], ab[0]};
  EXPECT_NE(Canonicalize(ab), Canonicalize(ba));
}

}  // namespace
}  // namespace dqr::core
