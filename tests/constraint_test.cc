#include "cp/constraint.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dqr::cp {
namespace {

using testutil::ExactFunction;

std::unique_ptr<ExactFunction> SumFunction() {
  return std::make_unique<ExactFunction>(
      "sum", [](const std::vector<int64_t>& p) {
        return static_cast<double>(p[0] + p[1]);
      },
      Interval(0, 100));
}

TEST(RangeConstraintTest, ClassifyAgainstBounds) {
  RangeConstraint c(SumFunction(), Interval(5, 10));

  // Box sums span [2, 4]: disjoint below -> violated.
  CheckResult r = c.Check({IntDomain(1, 2), IntDomain(1, 2)});
  EXPECT_EQ(r.status, CheckStatus::kViolated);
  EXPECT_EQ(r.estimate, Interval(2, 4));

  // Box sums span [6, 8]: inside -> satisfied.
  r = c.Check({IntDomain(3, 4), IntDomain(3, 4)});
  EXPECT_EQ(r.status, CheckStatus::kSatisfied);

  // Box sums span [4, 12]: straddles -> unknown.
  r = c.Check({IntDomain(2, 6), IntDomain(2, 6)});
  EXPECT_EQ(r.status, CheckStatus::kUnknown);
}

TEST(RangeConstraintTest, EffectiveBoundsRelaxAndReset) {
  RangeConstraint c(SumFunction(), Interval(5, 10));
  EXPECT_FALSE(c.IsRelaxed());

  c.SetEffectiveBounds(Interval(2, 10));
  EXPECT_TRUE(c.IsRelaxed());
  EXPECT_EQ(c.effective_bounds(), Interval(2, 10));
  EXPECT_EQ(c.original_bounds(), Interval(5, 10));

  // Previously violated box now passes under the relaxed bounds.
  const CheckResult r = c.Check({IntDomain(1, 2), IntDomain(1, 2)});
  EXPECT_NE(r.status, CheckStatus::kViolated);

  c.ResetEffectiveBounds();
  EXPECT_FALSE(c.IsRelaxed());
  EXPECT_EQ(c.effective_bounds(), Interval(5, 10));
}

TEST(RangeConstraintDeathTest, RelaxationMustWiden) {
  RangeConstraint c(SumFunction(), Interval(5, 10));
  EXPECT_DEATH(c.SetEffectiveBounds(Interval(6, 10)), "relaxed bounds");
}

TEST(RangeConstraintTest, HalfOpenBounds) {
  RangeConstraint c(SumFunction(),
                    Interval(5, std::numeric_limits<double>::infinity()));
  EXPECT_EQ(c.Check({IntDomain(10, 20), IntDomain(10, 20)}).status,
            CheckStatus::kSatisfied);
  EXPECT_EQ(c.Check({IntDomain(0, 1), IntDomain(0, 1)}).status,
            CheckStatus::kViolated);
}

}  // namespace
}  // namespace dqr::cp
