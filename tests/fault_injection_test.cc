// Differential fault-injection sweep: a run that loses instances to
// deterministic crashes must return the byte-identical solution set of the
// fault-free run, in both refinement directions. Crashes are planted at
// every fault site at early/mid/late event indices, on each instance of
// the cluster, plus seeded pseudo-random multi-crash plans. Losing the
// whole cluster must cancel cleanly instead of hanging.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

// The shared canonical form (see core/canonical.h); every determinism
// check in the repo compares these strings byte for byte.
std::string Fingerprint(const std::vector<Solution>& results) {
  return Canonicalize(results);
}

// Short enough to keep the sweep fast, long enough that the (independent)
// heartbeat thread cannot plausibly miss the lease even under TSan.
constexpr int64_t kLeaseTimeoutUs = 120000;

RefineOptions SweepOptions(const FaultPlan* plan) {
  RefineOptions options;
  options.num_instances = 3;
  options.shards_per_instance = 8;
  options.fault_plan = plan;
  options.lease_timeout_us = kLeaseTimeoutUs;
  return options;
}

// The bundle is small enough that one eager instance can drain the whole
// shard pool before the others' threads start, in which case a fault
// planted on an idle instance never fires (its event counters never
// advance). Pacing the *other* two instances with a brief first-pickup
// stall guarantees the target instance actually works, so the planted
// crash is actually exercised. Stalls must not change results — that is
// itself part of the contract under test.
void PaceOthers(FaultPlan& plan, int target, int num_instances) {
  for (int i = 0; i < num_instances; ++i) {
    if (i != target) plan.Stall(i, FaultSite::kShardPickup, 0, 15000);
  }
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { bundle_ = MakeSmallBundle(600, 5); }

  searchlight::QuerySpec RelaxQuery() const {
    TestQueryParams p;
    p.avg_bounds = Interval(228, 250);  // scarce: forces relaxation
    p.k = 6;
    return MakeTestQuery(bundle_, p);
  }

  searchlight::QuerySpec ConstrainQuery() const {
    TestQueryParams p;
    p.avg_bounds = Interval(110, 200);  // plentiful: forces constraining
    p.contrast_min = 20.0;
    p.k = 5;
    return MakeTestQuery(bundle_, p);
  }

  testutil::SmallBundle bundle_;
};

struct CrashSpec {
  FaultSite site;
  int64_t at_index;
  const char* tag;
};

// Relaxation direction: crash each instance at each site, early / mid /
// late in that site's event stream. Whether or not a given index is
// reached before the run ends, the returned solution set must match the
// fault-free reference byte for byte.
TEST_F(FaultInjectionTest, RelaxCrashSweepKeepsResults) {
  const searchlight::QuerySpec query = RelaxQuery();
  const auto reference = ExecuteQuery(query, SweepOptions(nullptr));
  ASSERT_TRUE(reference.ok());
  const std::string want = Fingerprint(reference.value().results);
  ASSERT_FALSE(want.empty());

  const CrashSpec kSpecs[] = {
      {FaultSite::kShardPickup, 0, "pickup/early"},
      {FaultSite::kShardPickup, 2, "pickup/mid"},
      {FaultSite::kShardPickup, 5, "pickup/late"},
      {FaultSite::kFailRecord, 1, "failrecord/early"},
      {FaultSite::kFailRecord, 10, "failrecord/mid"},
      {FaultSite::kFailRecord, 40, "failrecord/late"},
      {FaultSite::kCandidateValidate, 0, "validate/early"},
      {FaultSite::kCandidateValidate, 5, "validate/mid"},
      {FaultSite::kCandidateValidate, 25, "validate/late"},
  };

  int64_t fired = 0;
  for (int target = 0; target < 3; ++target) {
    for (const CrashSpec& spec : kSpecs) {
      FaultPlan plan;
      PaceOthers(plan, target, 3);
      plan.Crash(target, spec.site, spec.at_index);
      const auto run = ExecuteQuery(query, SweepOptions(&plan));
      ASSERT_TRUE(run.ok()) << spec.tag << " instance=" << target;
      EXPECT_TRUE(run.value().stats.completed)
          << spec.tag << " instance=" << target;
      EXPECT_EQ(Fingerprint(run.value().results), want)
          << spec.tag << " instance=" << target;
      fired += run.value().stats.instances_lost;
    }
  }
  // The sweep must actually exercise recovery, not pass vacuously: with
  // pacing, the bulk of the planted crashes genuinely fire.
  EXPECT_GE(fired, 9);
}

// Constraining direction: same contract, one crash per site at a mid
// index on each instance.
TEST_F(FaultInjectionTest, ConstrainCrashSweepKeepsResults) {
  const searchlight::QuerySpec query = ConstrainQuery();
  RefineOptions base = SweepOptions(nullptr);
  base.constrain = ConstrainMode::kRank;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());
  const std::string want = Fingerprint(reference.value().results);
  ASSERT_FALSE(want.empty());

  const CrashSpec kSpecs[] = {
      {FaultSite::kShardPickup, 1, "pickup"},
      {FaultSite::kFailRecord, 3, "failrecord"},
      {FaultSite::kCandidateValidate, 5, "validate"},
  };

  int64_t fired = 0;
  for (int target = 0; target < 3; ++target) {
    for (const CrashSpec& spec : kSpecs) {
      FaultPlan plan;
      PaceOthers(plan, target, 3);
      plan.Crash(target, spec.site, spec.at_index);
      RefineOptions options = SweepOptions(&plan);
      options.constrain = ConstrainMode::kRank;
      const auto run = ExecuteQuery(query, options);
      ASSERT_TRUE(run.ok()) << spec.tag << " instance=" << target;
      EXPECT_TRUE(run.value().stats.completed)
          << spec.tag << " instance=" << target;
      EXPECT_EQ(Fingerprint(run.value().results), want)
          << spec.tag << " instance=" << target;
      fired += run.value().stats.instances_lost;
    }
  }
  EXPECT_GE(fired, 3);
}

// Seeded pseudo-random plans: a quick stress sweep over plans nobody
// hand-tuned. Invariance must hold whatever combination of instances,
// sites and indices the seed produces.
TEST_F(FaultInjectionTest, RandomCrashPlansKeepResults) {
  const searchlight::QuerySpec query = RelaxQuery();
  const auto reference = ExecuteQuery(query, SweepOptions(nullptr));
  ASSERT_TRUE(reference.ok());
  const std::string want = Fingerprint(reference.value().results);

  for (const uint64_t seed : {5u, 11u, 42u}) {
    const FaultPlan plan = MakeRandomCrashPlan(seed, 3, 2, 30);
    const auto run = ExecuteQuery(query, SweepOptions(&plan));
    ASSERT_TRUE(run.ok()) << "seed=" << seed;
    EXPECT_TRUE(run.value().stats.completed) << "seed=" << seed;
    EXPECT_EQ(Fingerprint(run.value().results), want) << "seed=" << seed;
  }
}

// Losing two of three instances still yields the full, identical result
// set — the lone survivor inherits every requeued shard, reclaimed replay
// and orphaned candidate.
TEST_F(FaultInjectionTest, TwoOfThreeCrashedStillCompletes) {
  const searchlight::QuerySpec query = RelaxQuery();
  const auto reference = ExecuteQuery(query, SweepOptions(nullptr));
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  plan.Crash(0, FaultSite::kShardPickup, 0)
      .Crash(1, FaultSite::kShardPickup, 1);
  const auto run = ExecuteQuery(query, SweepOptions(&plan));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().stats.completed);
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
}

// Losing the whole cluster cannot be recovered from: the query must
// cancel (completed = false) instead of hanging in a barrier, and every
// loss must be counted.
TEST_F(FaultInjectionTest, AllInstancesCrashedCancelsCleanly) {
  const searchlight::QuerySpec query = RelaxQuery();
  FaultPlan plan;
  plan.Crash(0, FaultSite::kShardPickup, 0)
      .Crash(1, FaultSite::kShardPickup, 0)
      .Crash(2, FaultSite::kShardPickup, 0);
  const auto run = ExecuteQuery(query, SweepOptions(&plan));
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run.value().stats.completed);
  EXPECT_EQ(run.value().stats.instances_lost, 3);
}

// A fault plan referencing nonsense must be rejected up front.
TEST_F(FaultInjectionTest, RejectsMalformedPlans) {
  const searchlight::QuerySpec query = RelaxQuery();
  {
    FaultPlan plan;
    plan.Crash(-1, FaultSite::kShardPickup, 0);
    EXPECT_FALSE(ExecuteQuery(query, SweepOptions(&plan)).ok());
  }
  {
    FaultPlan plan;
    plan.Crash(0, FaultSite::kShardPickup, -2);
    EXPECT_FALSE(ExecuteQuery(query, SweepOptions(&plan)).ok());
  }
  {
    FaultPlan plan;
    plan.Stall(0, FaultSite::kShardPickup, 0, -5);
    EXPECT_FALSE(ExecuteQuery(query, SweepOptions(&plan)).ok());
  }
  {
    RefineOptions options = SweepOptions(nullptr);
    options.enable_failure_detector = true;
    options.lease_timeout_us = options.heartbeat_interval_us;  // too tight
    EXPECT_FALSE(ExecuteQuery(query, options).ok());
  }
}

}  // namespace
}  // namespace dqr::core
