#include "core/skyline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace dqr::core {
namespace {

SkylineEntry Entry(std::vector<double> oriented) {
  SkylineEntry e;
  e.solution.point = {static_cast<int64_t>(oriented[0] * 100)};
  e.oriented = std::move(oriented);
  return e;
}

TEST(SkylineTest, DominatesSemantics) {
  EXPECT_TRUE(Skyline::Dominates({2, 2}, {1, 2}));
  EXPECT_TRUE(Skyline::Dominates({2, 3}, {1, 2}));
  EXPECT_FALSE(Skyline::Dominates({2, 2}, {2, 2}));  // needs strictness
  EXPECT_FALSE(Skyline::Dominates({3, 1}, {1, 3}));  // incomparable
  EXPECT_FALSE(Skyline::Dominates({1, 2}, {2, 2}));
}

TEST(SkylineTest, AddRejectsDominatedAndEvicts) {
  Skyline sky;
  EXPECT_TRUE(sky.Add(Entry({2, 2})));
  EXPECT_FALSE(sky.Add(Entry({1, 1})));   // dominated
  EXPECT_TRUE(sky.Add(Entry({3, 1})));    // incomparable
  EXPECT_EQ(sky.size(), 2u);
  EXPECT_TRUE(sky.Add(Entry({4, 3})));    // dominates both
  EXPECT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.entries()[0].oriented, (std::vector<double>{4, 3}));
}

TEST(SkylineTest, EqualVectorsCoexist) {
  Skyline sky;
  EXPECT_TRUE(sky.Add(Entry({2, 2})));
  EXPECT_TRUE(sky.Add(Entry({2, 2})));  // tie: not dominated
  EXPECT_EQ(sky.size(), 2u);
}

TEST(SkylineTest, DominatesBoxPrunesOnlyStrictly) {
  Skyline sky;
  sky.Add(Entry({5, 5}));
  EXPECT_TRUE(sky.DominatesBox({4, 4}));
  EXPECT_TRUE(sky.DominatesBox({5, 4}));
  EXPECT_FALSE(sky.DominatesBox({5, 5}));  // corner ties: keep searching
  EXPECT_FALSE(sky.DominatesBox({6, 0}));
}

// Property: incrementally built skyline equals the brute-force Pareto
// front, regardless of insertion order.
class SkylinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylinePropertyTest, MatchesBruteForcePareto) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> vectors;
  for (int i = 0; i < 200; ++i) {
    vectors.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10),
                       rng.Uniform(0, 10)});
  }

  Skyline sky;
  for (const auto& v : vectors) sky.Add(Entry(v));

  std::set<std::vector<double>> expected;
  for (const auto& v : vectors) {
    bool dominated = false;
    for (const auto& w : vectors) {
      if (Skyline::Dominates(w, v)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expected.insert(v);
  }

  std::set<std::vector<double>> actual;
  for (const auto& e : sky.entries()) actual.insert(e.oriented);
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylinePropertyTest,
                         ::testing::Values(3u, 11u, 29u, 123u));

}  // namespace
}  // namespace dqr::core
