#include "core/stats.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace dqr::core {
namespace {

RunStats WithPeaks(int64_t fail_bytes, int64_t fail_count, int64_t queue) {
  RunStats s;
  s.peak_fail_bytes = fail_bytes;
  s.peak_fail_count = fail_count;
  s.peak_queue = queue;
  s.max_peak_fail_bytes = fail_bytes;
  s.max_peak_fail_count = fail_count;
  s.max_peak_queue = queue;
  return s;
}

// The peak_* fields aggregate by sum (a cluster-wide footprint upper
// bound) while the max_peak_* twins aggregate by max (the worst single
// component) — summing per-component high-water marks must not be passed
// off as a per-component peak.
TEST(RunStatsTest, PeakAggregationReportsBothSumAndMax) {
  RunStats total = WithPeaks(100, 8, 3);
  total += WithPeaks(40, 2, 7);
  total += WithPeaks(60, 5, 5);

  EXPECT_EQ(total.peak_fail_bytes, 200);
  EXPECT_EQ(total.peak_fail_count, 15);
  EXPECT_EQ(total.peak_queue, 15);

  EXPECT_EQ(total.max_peak_fail_bytes, 100);
  EXPECT_EQ(total.max_peak_fail_count, 8);
  EXPECT_EQ(total.max_peak_queue, 7);
}

TEST(RunStatsTest, MaxAggregatedFieldsAreOrderIndependent) {
  RunStats ab = WithPeaks(10, 1, 9);
  ab += WithPeaks(90, 6, 2);
  RunStats ba = WithPeaks(90, 6, 2);
  ba += WithPeaks(10, 1, 9);
  EXPECT_EQ(ab.max_peak_fail_bytes, ba.max_peak_fail_bytes);
  EXPECT_EQ(ab.max_peak_fail_count, ba.max_peak_fail_count);
  EXPECT_EQ(ab.max_peak_queue, ba.max_peak_queue);
  EXPECT_EQ(ab.peak_fail_bytes, ba.peak_fail_bytes);
}

TEST(RunStatsTest, BusyTimeAggregatesByMax) {
  RunStats a;
  a.main_busy_s = 1.5;
  RunStats b;
  b.main_busy_s = 4.0;
  a += b;
  // The cluster is as slow as its busiest instance, not the sum.
  EXPECT_DOUBLE_EQ(a.main_busy_s, 4.0);
}

TEST(RunStatsTest, CountersStillSum) {
  RunStats a;
  a.shards_executed = 3;
  a.replays_stolen = 1;
  a.fails_recorded = 10;
  RunStats b;
  b.shards_executed = 5;
  b.replays_stolen = 2;
  b.fails_recorded = 7;
  a += b;
  EXPECT_EQ(a.shards_executed, 8);
  EXPECT_EQ(a.replays_stolen, 3);
  EXPECT_EQ(a.fails_recorded, 17);
}

// Regression: the hand-written operator+= silently dropped the MRP/MRK
// update counters, so any merged (per-instance or multi-query) stats
// reported 0 refinement activity. The X-macro field table makes the
// merge total by construction; this pins the two fields that were lost.
TEST(RunStatsTest, MrpMrkUpdateCountersSurviveMerge) {
  RunStats a;
  a.mrp_updates = 3;
  a.mrk_updates = 2;
  RunStats b;
  b.mrp_updates = 4;
  b.mrk_updates = 5;
  a += b;
  EXPECT_EQ(a.mrp_updates, 7);
  EXPECT_EQ(a.mrk_updates, 7);
}

TEST(RunStatsTest, CompletedAggregatesByAnd) {
  RunStats a;
  RunStats b;
  b.completed = false;
  a += b;
  EXPECT_FALSE(a.completed);
}

TEST(MetricsSnapshotTest, CoversEveryFieldWithHelpAndType) {
  RunStats s;
  s.shards_executed = 12;
  s.mrp_updates = 4;
  s.main_busy_s = 1.25;
  s.completed = true;
  s.main_search.nodes = 99;
  const std::string text = obs::MetricsSnapshot(s);

  // One HELP/TYPE pair per sample, `dqr_` prefix throughout.
  EXPECT_NE(text.find("# HELP dqr_shards_executed "), std::string::npos);
  EXPECT_NE(text.find("# TYPE dqr_shards_executed counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dqr_shards_executed 12\n"), std::string::npos);
  EXPECT_NE(text.find("dqr_mrp_updates 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dqr_main_busy_s gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dqr_completed 1\n"), std::string::npos);
  // Nested SearchStats expand with a suffix per sub-counter.
  EXPECT_NE(text.find("dqr_main_search_nodes 99\n"), std::string::npos);
  EXPECT_NE(text.find("dqr_replay_search_nodes 0\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, LabelsAreInsertedVerbatim) {
  RunStats s;
  s.replays = 3;
  const std::string text = obs::MetricsSnapshot(s, "query=\"q7\"");
  EXPECT_NE(text.find("dqr_replays{query=\"q7\"} 3\n"), std::string::npos);
}

TEST(RunStatsTest, EstimatorCacheCountersSum) {
  RunStats a;
  a.estimator_cache_hits = 100;
  a.estimator_cache_misses = 20;
  a.estimator_cache_evictions = 5;
  a.estimator_cache_restore_evictions = 1;
  RunStats b;
  b.estimator_cache_hits = 50;
  b.estimator_cache_misses = 10;
  b.estimator_cache_evictions = 2;
  b.estimator_cache_restore_evictions = 3;
  a += b;
  EXPECT_EQ(a.estimator_cache_hits, 150);
  EXPECT_EQ(a.estimator_cache_misses, 30);
  EXPECT_EQ(a.estimator_cache_evictions, 7);
  EXPECT_EQ(a.estimator_cache_restore_evictions, 4);
}

}  // namespace
}  // namespace dqr::core
