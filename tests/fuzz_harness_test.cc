// Tests of the fuzz harness itself: the oracle against hand-checkable
// queries, generator determinism, config round-trips, and — the part that
// justifies trusting a clean campaign — proof that an injected engine bug
// is caught and shrunk to a small reproducer.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/canonical.h"
#include "core/refiner.h"
#include "testing/generator.h"
#include "testing/harness.h"
#include "testing/oracle.h"

namespace dqr::fuzz {
namespace {

TEST(OracleTest, AgreesWithEngineOnGeneratedWorkloads) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    const Workload w = MakeWorkload(seed, FuzzMode::kRelax);
    EngineConfig config;  // 1x1 baseline
    const core::RefineOptions options = config.ToOptions(w, nullptr);
    const auto oracle = OracleRun(w.query, options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    const auto engine = core::ExecuteQuery(w.query, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(core::Canonicalize(oracle.value().results),
              core::Canonicalize(engine.value().results))
        << w.summary;
  }
}

TEST(OracleTest, CountsAreConsistent) {
  const Workload w = MakeWorkload(55, FuzzMode::kConstrain);
  EngineConfig config;
  const auto oracle = OracleRun(w.query, config.ToOptions(w, nullptr));
  ASSERT_TRUE(oracle.ok());
  const auto& r = oracle.value();
  EXPECT_GT(r.space_size, 0);
  EXPECT_LE(r.exact_count, r.finite_count);
  EXPECT_LE(r.finite_count, r.space_size);
  EXPECT_LE(static_cast<int64_t>(r.results.size()),
            std::max<int64_t>(w.query.k, r.exact_count));
}

TEST(OracleTest, RefusesOversizedSearchSpaces) {
  const Workload w = MakeWorkload(1, FuzzMode::kRelax);
  EngineConfig config;
  const auto result =
      OracleRun(w.query, config.ToOptions(w, nullptr), /*max_space=*/4);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("brute-force cap"),
            std::string::npos);
}

TEST(GeneratorTest, WorkloadsAreDeterministicInSeedAndOverrides) {
  const Workload a = MakeWorkload(77, FuzzMode::kSkyline);
  const Workload b = MakeWorkload(77, FuzzMode::kSkyline);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.array->Dump(), b.array->Dump());
  EXPECT_EQ(a.query.k, b.query.k);
  EXPECT_EQ(a.query.domains, b.query.domains);
  ASSERT_EQ(a.query.constraints.size(), b.query.constraints.size());

  const Workload c = MakeWorkload(78, FuzzMode::kSkyline);
  EXPECT_NE(a.summary, c.summary);
}

TEST(GeneratorTest, OverridesShrinkTheWorkload) {
  const Workload full = MakeWorkload(9, FuzzMode::kRelax);
  WorkloadOverrides overrides;
  overrides.length_cap = 32;
  overrides.max_constraints = 1;
  overrides.k_cap = 1;
  overrides.x_width_cap = 4;
  const Workload small = MakeWorkload(9, FuzzMode::kRelax, overrides);
  EXPECT_LE(small.array->length(), std::max<int64_t>(32, full.array->length()));
  EXPECT_EQ(small.query.constraints.size(), 1u);
  EXPECT_EQ(small.query.k, 1);
  EXPECT_LE(small.query.domains[0].hi - small.query.domains[0].lo + 1, 4);
}

TEST(GeneratorTest, GridWorkloadsAreDeterministicAndShrink) {
  const Workload a = MakeWorkload(12, FuzzMode::kRelax, {}, /*grid=*/true);
  ASSERT_TRUE(a.grid_workload);
  ASSERT_NE(a.grid, nullptr);
  ASSERT_NE(a.grid_synopsis, nullptr);
  EXPECT_EQ(a.array, nullptr);
  ASSERT_EQ(a.query.domains.size(), 4u);

  const Workload b = MakeWorkload(12, FuzzMode::kRelax, {}, /*grid=*/true);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.query.domains, b.query.domains);

  // The grid draw must come from a decorrelated stream: the 1-D workload
  // of the same seed is what it always was, grid flag or not.
  const Workload one_d = MakeWorkload(12, FuzzMode::kRelax);
  EXPECT_FALSE(one_d.grid_workload);
  ASSERT_NE(one_d.array, nullptr);
  EXPECT_EQ(one_d.query.domains.size(), 2u);

  WorkloadOverrides overrides;
  overrides.length_cap = 16;
  overrides.max_constraints = 1;
  overrides.k_cap = 1;
  overrides.x_width_cap = 4;
  const Workload small =
      MakeWorkload(12, FuzzMode::kRelax, overrides, /*grid=*/true);
  EXPECT_LE(small.grid->rows(), 16);
  EXPECT_LE(small.grid->cols(), 16);
  EXPECT_EQ(small.query.constraints.size(), 1u);
  EXPECT_EQ(small.query.k, 1);
  EXPECT_LE(small.query.domains[0].hi - small.query.domains[0].lo + 1, 4);
}

TEST(HarnessTest, GridCaseMatchesOracleUnderScalarAndSimd) {
  CaseResult runs[2];
  for (int simd = 0; simd < 2; ++simd) {
    CaseConfig c;
    c.seed = 21;
    c.mode = FuzzMode::kConstrain;
    c.grid = true;
    c.config.simd = simd == 1;
    runs[simd] = RunCase(c);
    EXPECT_TRUE(runs[simd].ok) << runs[simd].detail << "\n"
                               << runs[simd].error;
  }
  // Both agreed with the oracle; the kernels must also agree with each
  // other bit for bit.
  EXPECT_EQ(runs[0].actual, runs[1].actual);
}

TEST(GeneratorTest, ConfigStringRoundTrips) {
  for (const EngineConfig& config : MakeConfigMatrix(5, 8)) {
    const std::string text = config.ToString();
    const auto parsed = EngineConfig::FromString(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed.value().ToString(), text);
  }
  EXPECT_FALSE(EngineConfig::FromString("inst=0").ok());
  EXPECT_FALSE(EngineConfig::FromString("bogus=1").ok());
  EXPECT_FALSE(EngineConfig::FromString("rrd=2").ok());
  EXPECT_FALSE(EngineConfig::FromString("noequals").ok());
}

TEST(GeneratorTest, ConfigMatrixCoversTheRequiredShapes) {
  const auto configs = MakeConfigMatrix(123, 4);
  ASSERT_GE(configs.size(), 3u);
  EXPECT_EQ(configs[0].num_instances, 1);
  EXPECT_EQ(configs[0].shards_per_instance, 1);
  EXPECT_GT(configs[1].num_instances, 1);        // work stealing
  EXPECT_GT(configs[2].fault_crashes, 0);        // fault injection
  EXPECT_TRUE(configs[2].enable_failure_detector);
  EXPECT_TRUE(configs[0].simd);                  // SIMD baseline...
  EXPECT_FALSE(configs[1].simd);                 // ...vs a scalar replica
}

TEST(HarnessTest, CleanEngineMatchesOracleUnderAllConfigs) {
  for (const EngineConfig& config : MakeConfigMatrix(31, 3)) {
    CaseConfig c;
    c.seed = 31;
    c.mode = FuzzMode::kConstrain;
    c.config = config;
    const CaseResult r = RunCase(c);
    EXPECT_TRUE(r.ok) << r.detail << "\n" << r.error;
  }
}

TEST(HarnessTest, InjectedBugIsCaughtAndShrunk) {
  // Find a seed whose baseline run returns a non-empty result set, plant
  // a lost-result bug, and demand that (a) the differential check fires
  // and (b) the shrunk reproducer is small.
  CaseConfig c;
  c.mode = FuzzMode::kRelax;
  c.config = MakeConfigMatrix(1, 3)[1];  // multi-instance
  CaseResult clean;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    c.seed = seed;
    clean = RunCase(c);
    if (clean.ok && !clean.actual.empty()) break;
  }
  ASSERT_TRUE(clean.ok) << clean.detail;
  ASSERT_FALSE(clean.actual.empty());

  const CaseResult buggy = RunCase(c, InjectedBug::kDropLast);
  ASSERT_FALSE(buggy.ok) << "dropped result not detected";

  const CaseConfig shrunk = Shrink(c, InjectedBug::kDropLast);
  const CaseResult still_failing = RunCase(shrunk, InjectedBug::kDropLast);
  EXPECT_FALSE(still_failing.ok) << "shrinking lost the failure";
  // Shrinking must reach the trivial cluster and a reduced workload.
  EXPECT_EQ(shrunk.config.num_instances, 1);
  EXPECT_EQ(shrunk.config.shards_per_instance, 1);
  EXPECT_NE(shrunk.overrides.length_cap, 0);

  const std::string line = ReproLine(shrunk);
  EXPECT_NE(line.find("dqr_fuzz --seed="), std::string::npos);
  EXPECT_LE(line.size(), 240u) << line;
}

TEST(HarnessTest, PerturbedScoreIsCaught) {
  CaseConfig c;
  c.seed = 3;
  c.mode = FuzzMode::kRelax;
  const CaseResult clean = RunCase(c);
  ASSERT_TRUE(clean.ok) << clean.detail;
  if (clean.actual.empty()) GTEST_SKIP() << "no results to perturb";
  EXPECT_FALSE(RunCase(c, InjectedBug::kPerturbRp).ok);
}

TEST(HarnessTest, ReproFileContainsTheReproducer) {
  CaseConfig c;
  c.seed = 4;
  c.mode = FuzzMode::kRelax;
  const CaseResult r = RunCase(c, InjectedBug::kDropLast);
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  const auto path = WriteReproFile(dir, c, r);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  std::FILE* f = std::fopen(path.value().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 14, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.value().c_str());
  EXPECT_NE(content.find(ReproLine(c)), std::string::npos);
  EXPECT_NE(content.find("expected (oracle)"), std::string::npos);
}

TEST(HarnessTest, CampaignReportAggregates) {
  FuzzOptions options;
  options.start_seed = 50;
  options.num_seeds = 2;
  options.configs_per_seed = 3;
  const FuzzReport clean = RunFuzz(options);
  EXPECT_EQ(clean.seeds_run, 2);
  EXPECT_EQ(clean.cases_run, 6);
  EXPECT_TRUE(clean.clean());

  options.inject_bug = InjectedBug::kDropLast;
  options.num_seeds = 1;
  const FuzzReport buggy = RunFuzz(options);
  // The bug drops a result from every non-empty run; at least one case
  // must fail and carry a reproducer.
  EXPECT_FALSE(buggy.clean());
  EXPECT_FALSE(buggy.repro_lines.empty());
}

}  // namespace
}  // namespace dqr::fuzz
