#include "cp/search.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace dqr::cp {
namespace {

using testutil::AllPoints;
using testutil::ExactFunction;

// Collects search events for inspection.
class RecordingListener : public SearchListener {
 public:
  void OnFail(FailInfo info) override { fails.push_back(std::move(info)); }

  bool OnNode(const DomainBox& box,
              const std::vector<Interval>& estimates) override {
    (void)estimates;
    ++nodes_seen;
    if (prune_predicate && prune_predicate(box)) return false;
    return true;
  }

  void OnSolution(const std::vector<int64_t>& point,
                  const std::vector<Interval>& estimates) override {
    (void)estimates;
    solutions.insert(point);
  }

  std::vector<FailInfo> fails;
  std::set<std::vector<int64_t>> solutions;
  int64_t nodes_seen = 0;
  std::function<bool(const DomainBox&)> prune_predicate;
};

std::unique_ptr<ExactFunction> Sum(Interval range = Interval(-100, 100)) {
  return std::make_unique<ExactFunction>(
      "sum",
      [](const std::vector<int64_t>& p) {
        return static_cast<double>(p[0] + p[1]);
      },
      range);
}

TEST(SearchTest, CompleteEnumerationMatchesBruteForce) {
  const DomainBox root = {IntDomain(0, 12), IntDomain(0, 7)};
  RangeConstraint c(Sum(), Interval(6, 9));
  RecordingListener listener;
  SearchTree tree(root, {&c}, &listener, SearchOptions{});
  const SearchStats stats = tree.Run();
  EXPECT_TRUE(stats.completed);

  std::set<std::vector<int64_t>> expected;
  for (const auto& p : AllPoints(root)) {
    const double v = static_cast<double>(p[0] + p[1]);
    if (v >= 6 && v <= 9) expected.insert(p);
  }
  EXPECT_EQ(listener.solutions, expected);
  EXPECT_GT(stats.fails, 0);
  EXPECT_EQ(stats.leaves,
            static_cast<int64_t>(listener.solutions.size()));
}

TEST(SearchTest, MultipleConstraintsIntersect) {
  const DomainBox root = {IntDomain(0, 20), IntDomain(0, 20)};
  RangeConstraint c1(Sum(), Interval(10, 30));
  auto diff_fn = std::make_unique<ExactFunction>(
      "diff",
      [](const std::vector<int64_t>& p) {
        return static_cast<double>(p[0] - p[1]);
      },
      Interval(-100, 100));
  RangeConstraint c2(std::move(diff_fn), Interval(-2, 2));

  RecordingListener listener;
  SearchTree tree(root, {&c1, &c2}, &listener, SearchOptions{});
  tree.Run();

  for (const auto& p : AllPoints(root)) {
    const double sum = static_cast<double>(p[0] + p[1]);
    const double diff = static_cast<double>(p[0] - p[1]);
    const bool valid = sum >= 10 && sum <= 30 && diff >= -2 && diff <= 2;
    EXPECT_EQ(listener.solutions.count(p), valid ? 1u : 0u);
  }
}

TEST(SearchTest, FailInfoDescribesViolation) {
  // Sum over the whole root is [0, 4]; bounds [10, 12] can never match,
  // so the very first node fails and the search records exactly one fail.
  const DomainBox root = {IntDomain(0, 2), IntDomain(0, 2)};
  RangeConstraint c(Sum(), Interval(10, 12));
  RecordingListener listener;
  SearchTree tree(root, {&c}, &listener, SearchOptions{});
  const SearchStats stats = tree.Run();

  EXPECT_EQ(stats.fails, 1);
  ASSERT_EQ(listener.fails.size(), 1u);
  const FailInfo& fail = listener.fails[0];
  EXPECT_EQ(fail.box, root);
  EXPECT_EQ(fail.violated, std::vector<int>{0});
  ASSERT_EQ(fail.estimates.size(), 1u);
  EXPECT_EQ(fail.estimates[0], Interval(0, 4));
  EXPECT_TRUE(fail.evaluated[0]);
  EXPECT_EQ(fail.depth, 0);
}

TEST(SearchTest, FailFastLeavesLaterConstraintsUnevaluated) {
  const DomainBox root = {IntDomain(0, 2), IntDomain(0, 2)};
  RangeConstraint c1(Sum(), Interval(10, 12));    // violated at the root
  RangeConstraint c2(Sum(), Interval(0, 4));      // never reached
  RecordingListener listener;
  SearchOptions options;
  options.fail_fast = true;
  SearchTree tree(root, {&c1, &c2}, &listener, options);
  tree.Run();

  ASSERT_EQ(listener.fails.size(), 1u);
  EXPECT_TRUE(listener.fails[0].evaluated[0]);
  EXPECT_FALSE(listener.fails[0].evaluated[1]);
}

TEST(SearchTest, NoFailFastEvaluatesEverything) {
  const DomainBox root = {IntDomain(0, 2), IntDomain(0, 2)};
  RangeConstraint c1(Sum(), Interval(10, 12));
  RangeConstraint c2(Sum(), Interval(20, 22));
  RecordingListener listener;
  SearchOptions options;
  options.fail_fast = false;
  SearchTree tree(root, {&c1, &c2}, &listener, options);
  tree.Run();

  ASSERT_EQ(listener.fails.size(), 1u);
  EXPECT_TRUE(listener.fails[0].evaluated[0]);
  EXPECT_TRUE(listener.fails[0].evaluated[1]);
  EXPECT_EQ(listener.fails[0].violated, (std::vector<int>{0, 1}));
}

TEST(SearchTest, MonitorPrunesSubtrees) {
  const DomainBox root = {IntDomain(0, 15), IntDomain(0, 0)};
  RangeConstraint c(Sum(), Interval(-100, 100));  // always satisfied
  RecordingListener listener;
  // Prune every box whose x-domain lies fully above 7.
  listener.prune_predicate = [](const DomainBox& box) {
    return box[0].lo > 7;
  };
  SearchTree tree(root, {&c}, &listener, SearchOptions{});
  const SearchStats stats = tree.Run();

  EXPECT_GT(stats.monitor_prunes, 0);
  for (const auto& p : listener.solutions) EXPECT_LE(p[0], 7);
  EXPECT_EQ(listener.solutions.size(), 8u);
}

TEST(SearchTest, CancellationStopsSearch) {
  const DomainBox root = {IntDomain(0, 1000), IntDomain(0, 1000)};
  RangeConstraint c(Sum(), Interval(-1e9, 1e9));
  RecordingListener listener;
  std::atomic<bool> cancel{true};
  SearchOptions options;
  options.cancel = &cancel;
  SearchTree tree(root, {&c}, &listener, options);
  const SearchStats stats = tree.Run();
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.nodes, 0);
}

TEST(SearchTest, MaxNodesBudget) {
  const DomainBox root = {IntDomain(0, 1000), IntDomain(0, 1000)};
  RangeConstraint c(Sum(), Interval(-1e9, 1e9));
  RecordingListener listener;
  SearchOptions options;
  options.max_nodes = 50;
  SearchTree tree(root, {&c}, &listener, options);
  const SearchStats stats = tree.Run();
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.nodes, 50);
}

TEST(SearchTest, NoConstraintsEnumeratesEverything) {
  const DomainBox root = {IntDomain(3, 5), IntDomain(7, 8)};
  RecordingListener listener;
  SearchTree tree(root, {}, &listener, SearchOptions{});
  const SearchStats stats = tree.Run();
  EXPECT_EQ(stats.leaves, 6);
  EXPECT_EQ(listener.solutions.size(), 6u);
}

TEST(SearchTest, HeuristicsChangeOrderNotResults) {
  const DomainBox root = {IntDomain(0, 17), IntDomain(0, 11)};
  RangeConstraint c(Sum(), Interval(8, 14));

  std::set<std::vector<int64_t>> reference;
  bool first = true;
  for (const VarSelect vs :
       {VarSelect::kWidestDomain, VarSelect::kFirstUnbound,
        VarSelect::kSmallestDomain}) {
    for (const ValueSplit split :
         {ValueSplit::kBisectLowFirst, ValueSplit::kBisectHighFirst}) {
      RecordingListener listener;
      SearchOptions options;
      options.var_select = vs;
      options.value_split = split;
      SearchTree tree(root, {&c}, &listener, options);
      const SearchStats stats = tree.Run();
      EXPECT_TRUE(stats.completed);
      if (first) {
        reference = listener.solutions;
        first = false;
        EXPECT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(listener.solutions, reference)
            << "heuristic changed the solution set";
      }
    }
  }
}

TEST(SearchTest, HighFirstSplitFindsHighSolutionsEarlier) {
  // With a single unconstrained variable, the first emitted leaf reveals
  // the exploration order.
  const DomainBox root = {IntDomain(0, 100), IntDomain(0, 0)};
  std::vector<std::vector<int64_t>> order;
  class OrderListener : public SearchListener {
   public:
    explicit OrderListener(std::vector<std::vector<int64_t>>* order)
        : order_(*order) {}
    void OnSolution(const std::vector<int64_t>& point,
                    const std::vector<Interval>&) override {
      order_.push_back(point);
    }

   private:
    std::vector<std::vector<int64_t>>& order_;
  };

  SearchOptions low;
  OrderListener low_listener(&order);
  SearchTree(root, {}, &low_listener, low).Run();
  EXPECT_EQ(order.front()[0], 0);

  order.clear();
  SearchOptions high;
  high.value_split = ValueSplit::kBisectHighFirst;
  OrderListener high_listener(&order);
  SearchTree(root, {}, &high_listener, high).Run();
  EXPECT_EQ(order.front()[0], 100);
  EXPECT_EQ(order.size(), 101u);
}

TEST(SearchTest, ResumeFromRecordedFailBox) {
  // A search restarted from a fail's box with relaxed bounds discovers
  // exactly the assignments inside that box satisfying the new bounds —
  // the primitive fail replaying builds on.
  const DomainBox root = {IntDomain(0, 7), IntDomain(0, 7)};
  RangeConstraint c(Sum(), Interval(100, 120));  // everything fails
  RecordingListener listener;
  SearchTree tree(root, {&c}, &listener, SearchOptions{});
  tree.Run();
  ASSERT_FALSE(listener.fails.empty());

  const DomainBox replay_box = listener.fails[0].box;
  c.SetEffectiveBounds(Interval(10, 120));
  RecordingListener replay_listener;
  SearchTree replay(replay_box, {&c}, &replay_listener, SearchOptions{});
  replay.Run();
  c.ResetEffectiveBounds();

  std::set<std::vector<int64_t>> expected;
  for (const auto& p : AllPoints(replay_box)) {
    if (p[0] + p[1] >= 10) expected.insert(p);
  }
  EXPECT_EQ(replay_listener.solutions, expected);
}

}  // namespace
}  // namespace dqr::cp
