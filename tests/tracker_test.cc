#include "core/tracker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dqr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Solution Sol(int64_t x, double rp, double rk = 0.0,
             std::vector<double> values = {}) {
  Solution s;
  s.point = {x};
  s.values = values.empty() ? std::vector<double>{static_cast<double>(x)}
                            : std::move(values);
  s.rp = rp;
  s.rk = rk;
  return s;
}

RankModel SimpleRank() {
  return RankModel({{Interval(0, 10), Interval(0, 10), -1.0, true, true}});
}

TEST(ResultTrackerTest, MrpDropsOnceKTracked) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(2, ConstrainMode::kNone, &rank);
  EXPECT_DOUBLE_EQ(tracker.Mrp(), 1.0);
  EXPECT_EQ(tracker.Add(Sol(1, 0.5)), AddOutcome::kAcceptedRelaxed);
  EXPECT_DOUBLE_EQ(tracker.Mrp(), 1.0);  // still fewer than k
  EXPECT_EQ(tracker.Add(Sol(2, 0.3)), AddOutcome::kAcceptedRelaxed);
  EXPECT_DOUBLE_EQ(tracker.Mrp(), 0.5);
  // Better result displaces the worst; MRP shrinks monotonically.
  EXPECT_EQ(tracker.Add(Sol(3, 0.2)), AddOutcome::kAcceptedRelaxed);
  EXPECT_DOUBLE_EQ(tracker.Mrp(), 0.3);
  EXPECT_EQ(tracker.Add(Sol(4, 0.9)), AddOutcome::kRejected);
  EXPECT_GT(tracker.mrp_updates(), 0);
}

TEST(ResultTrackerTest, EqualRpTieBreaksLexicographically) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(1, ConstrainMode::kNone, &rank);
  EXPECT_EQ(tracker.Add(Sol(5, 0.4)), AddOutcome::kAcceptedRelaxed);
  // Same penalty but smaller point: wins the tie.
  EXPECT_EQ(tracker.Add(Sol(3, 0.4)), AddOutcome::kAcceptedRelaxed);
  // Same penalty, larger point: rejected.
  EXPECT_EQ(tracker.Add(Sol(9, 0.4)), AddOutcome::kRejected);
  const auto results = tracker.FinalResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].point[0], 3);
}

TEST(ResultTrackerTest, DuplicatesDetected) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(3, ConstrainMode::kNone, &rank);
  EXPECT_EQ(tracker.Add(Sol(1, 0.5)), AddOutcome::kAcceptedRelaxed);
  EXPECT_EQ(tracker.Add(Sol(1, 0.5)), AddOutcome::kDuplicate);
}

TEST(ResultTrackerTest, RelaxedFinalResultsAreBestKByPenalty) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(2, ConstrainMode::kNone, &rank);
  tracker.Add(Sol(1, 0.8));
  tracker.Add(Sol(2, 0.0));  // exact
  tracker.Add(Sol(3, 0.4));
  tracker.Add(Sol(4, 0.6));
  const auto results = tracker.FinalResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].point[0], 2);  // exact first
  EXPECT_EQ(results[1].point[0], 3);
  EXPECT_EQ(tracker.exact_count(), 1);
}

TEST(ResultTrackerTest, ModeNoneKeepsAllExactWhenEnough) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(2, ConstrainMode::kNone, &rank);
  for (int64_t x = 0; x < 5; ++x) tracker.Add(Sol(x, 0.0));
  EXPECT_EQ(tracker.phase(), QueryPhase::kCollecting);
  EXPECT_EQ(tracker.FinalResults().size(), 5u);  // all exact, point order
  EXPECT_EQ(tracker.exact_count(), 5);
}

TEST(ResultTrackerTest, KZeroKeepsEverythingExactOnly) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(0, ConstrainMode::kNone, &rank);
  EXPECT_EQ(tracker.Add(Sol(1, 0.0)), AddOutcome::kAcceptedExact);
  EXPECT_EQ(tracker.Add(Sol(2, 0.3)), AddOutcome::kRejected);
  EXPECT_EQ(tracker.FinalResults().size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.Mrp(), 1.0);
}

TEST(ResultTrackerTest, RankConstrainingFlipsPhaseAndRanks) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(2, ConstrainMode::kRank, &rank);
  EXPECT_EQ(tracker.phase(), QueryPhase::kCollecting);
  EXPECT_TRUE(std::isinf(tracker.Mrk()));

  tracker.Add(Sol(1, 0.0, /*rk=*/0.2));
  EXPECT_EQ(tracker.phase(), QueryPhase::kCollecting);
  tracker.Add(Sol(2, 0.0, /*rk=*/0.5));
  EXPECT_EQ(tracker.phase(), QueryPhase::kConstraining);
  EXPECT_DOUBLE_EQ(tracker.Mrk(), 0.2);

  // Better-ranked result enters; worst evicted; MRK rises.
  EXPECT_EQ(tracker.Add(Sol(3, 0.0, /*rk=*/0.7)),
            AddOutcome::kAcceptedExact);
  EXPECT_DOUBLE_EQ(tracker.Mrk(), 0.5);
  EXPECT_EQ(tracker.Add(Sol(4, 0.0, /*rk=*/0.1)), AddOutcome::kRejected);

  // Relaxed solutions are ignored once constraining is active.
  EXPECT_EQ(tracker.Add(Sol(5, 0.4)), AddOutcome::kRejected);

  const auto results = tracker.FinalResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].point[0], 3);  // rk 0.7 first
  EXPECT_EQ(results[1].point[0], 2);
  EXPECT_GT(tracker.mrk_updates(), 0);
}

TEST(ResultTrackerTest, RankTieBreaksLexicographically) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(1, ConstrainMode::kRank, &rank);
  tracker.Add(Sol(5, 0.0, 0.5));
  EXPECT_EQ(tracker.Add(Sol(3, 0.0, 0.5)), AddOutcome::kAcceptedExact);
  EXPECT_EQ(tracker.Add(Sol(9, 0.0, 0.5)), AddOutcome::kRejected);
  EXPECT_EQ(tracker.FinalResults()[0].point[0], 3);
}

TEST(ResultTrackerTest, SkylineConstrainingKeepsPareto) {
  const RankModel rank = RankModel(
      {{Interval(0, 10), Interval(0, 10), -1.0, true, true},
       {Interval(0, 10), Interval(0, 10), -1.0, true, true}});
  ResultTracker tracker(1, ConstrainMode::kSkyline, &rank);

  tracker.Add(Sol(1, 0.0, 0.0, {2, 2}));
  EXPECT_EQ(tracker.phase(), QueryPhase::kConstraining);
  tracker.Add(Sol(2, 0.0, 0.0, {5, 1}));  // incomparable: kept
  tracker.Add(Sol(3, 0.0, 0.0, {1, 1}));  // dominated: dropped
  EXPECT_EQ(tracker.Add(Sol(4, 0.0, 0.0, {4, 4})),
            AddOutcome::kAcceptedExact);  // dominates (2,2)

  const auto results = tracker.FinalResults();
  EXPECT_EQ(results.size(), 2u);  // (5,1) and (4,4); skyline may exceed k

  EXPECT_TRUE(tracker.SkylineDominatesBox({3, 3}));
  EXPECT_FALSE(tracker.SkylineDominatesBox({5, 5}));
}

TEST(ResultTrackerTest, MrpMonotoneUnderRandomInserts) {
  const RankModel rank = SimpleRank();
  ResultTracker tracker(5, ConstrainMode::kNone, &rank);
  double last = tracker.Mrp();
  for (int i = 0; i < 200; ++i) {
    tracker.Add(Sol(i, static_cast<double>((i * 37) % 100) / 100.0));
    const double now = tracker.Mrp();
    EXPECT_LE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace dqr::core
