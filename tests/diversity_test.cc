// The diversity extension (§3.3 future work, implemented as greedy
// result spacing): top-k results are forced apart in the decision space,
// avoiding the "many overlapping intervals" of Figure 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

// Greedy brute-force reference: walk the quality-ordered list, keep a
// candidate unless it lies within the spacing box of a kept one.
std::vector<Solution> GreedyDiverse(std::vector<Solution> ordered,
                                    const std::vector<int64_t>& spacing,
                                    int64_t k) {
  std::vector<Solution> out;
  for (Solution& s : ordered) {
    if (static_cast<int64_t>(out.size()) >= k) break;
    bool conflict = false;
    for (const Solution& kept : out) {
      bool all_close = true;
      for (size_t i = 0; i < spacing.size(); ++i) {
        if (std::abs(s.point[i] - kept.point[i]) >= spacing[i]) {
          all_close = false;
          break;
        }
      }
      if (all_close) {
        conflict = true;
        break;
      }
    }
    if (!conflict) out.push_back(std::move(s));
  }
  return out;
}

TEST(DiversityTest, RelaxedResultsRespectSpacing) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;  // over-constrained: relaxation engages
  p.k = 4;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  RefineOptions options;
  // Windows must start at least 20 cells apart (the length coordinate is
  // effectively ignored via a huge spacing).
  options.result_spacing = {20, 1000};
  options.diversity_pool_factor = 1000;  // pool covers everything

  const auto all = BruteForceAll(query, options.alpha);
  const auto expected = GreedyDiverse(all, options.result_spacing, p.k);
  ASSERT_GE(expected.size(), 2u);

  const auto run = ExecuteQuery(query, options).value();
  ASSERT_EQ(testutil::Points(run.results), testutil::Points(expected));
  for (size_t i = 0; i < run.results.size(); ++i) {
    for (size_t j = i + 1; j < run.results.size(); ++j) {
      EXPECT_GE(std::abs(run.results[i].point[0] -
                         run.results[j].point[0]),
                20);
    }
  }
}

TEST(DiversityTest, WithoutSpacingResultsMayOverlap) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;
  p.k = 4;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto run = ExecuteQuery(query, RefineOptions{}).value();
  // The undiversified top-k clusters around the best spike: at least two
  // results start within a few cells of each other.
  bool overlapping = false;
  for (size_t i = 0; i < run.results.size() && !overlapping; ++i) {
    for (size_t j = i + 1; j < run.results.size(); ++j) {
      if (std::abs(run.results[i].point[0] - run.results[j].point[0]) <
          20) {
        overlapping = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlapping);
}

TEST(DiversityTest, RankConstrainingRespectsSpacing) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  p.k = 3;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  options.result_spacing = {15, 1000};
  options.diversity_pool_factor = 1000;

  auto exact = ExactOnly(BruteForceAll(query));
  ASSERT_GT(exact.size(), 3u);
  std::sort(exact.begin(), exact.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rk != b.rk) return a.rk > b.rk;
              return a.point < b.point;
            });
  const auto expected = GreedyDiverse(exact, options.result_spacing, p.k);

  const auto run = ExecuteQuery(query, options).value();
  EXPECT_EQ(testutil::Points(run.results), testutil::Points(expected));
}

TEST(DiversityTest, RejectsBadSpacingConfigs) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, TestQueryParams{});

  RefineOptions wrong_arity;
  wrong_arity.result_spacing = {10};  // query has two variables
  EXPECT_FALSE(ExecuteQuery(query, wrong_arity).ok());

  RefineOptions negative;
  negative.result_spacing = {-1, 10};
  EXPECT_FALSE(ExecuteQuery(query, negative).ok());

  RefineOptions bad_pool;
  bad_pool.result_spacing = {10, 10};
  bad_pool.diversity_pool_factor = 0;
  EXPECT_FALSE(ExecuteQuery(query, bad_pool).ok());
}

}  // namespace
}  // namespace dqr::core
