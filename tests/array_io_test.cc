#include "array/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"

namespace dqr::array {
namespace {

std::string TempPath(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += "/dqr_array_io_test_";
  path += tag;
  path += ".bin";
  return path;
}

std::shared_ptr<Array> RandomArray(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(n));
  for (double& v : data) v = rng.Uniform(-1000, 1000);
  ArraySchema schema;
  schema.name = "io_test";
  schema.attribute = "value";
  schema.length = n;
  schema.chunk_size = 37;  // deliberately odd chunking
  return Array::FromData(schema, std::move(data)).value();
}

TEST(ArrayIoTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("roundtrip");
  auto original = RandomArray(1001, 5);
  ASSERT_TRUE(SaveArray(*original, path).ok());

  auto loaded_result = LoadArray(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  auto loaded = loaded_result.value();

  EXPECT_EQ(loaded->schema().name, "io_test");
  EXPECT_EQ(loaded->schema().attribute, "value");
  EXPECT_EQ(loaded->schema().chunk_size, 37);
  ASSERT_EQ(loaded->length(), original->length());
  const auto a = original->Dump();
  const auto b = loaded->Dump();
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(ArrayIoTest, EmptyArrayRoundTrips) {
  const std::string path = TempPath("empty");
  ArraySchema schema;
  schema.name = "empty";
  schema.length = 0;
  schema.chunk_size = 8;
  auto original = Array::FromData(schema, {}).value();
  ASSERT_TRUE(SaveArray(*original, path).ok());
  auto loaded = LoadArray(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->length(), 0);
  std::remove(path.c_str());
}

TEST(ArrayIoTest, MissingFileReported) {
  const auto result = LoadArray("/nonexistent/dir/nothing.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ArrayIoTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not an array", f);
  std::fclose(f);
  const auto result = LoadArray(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ArrayIoTest, TruncatedDataRejected) {
  const std::string path = TempPath("truncated");
  auto original = RandomArray(256, 9);
  ASSERT_TRUE(SaveArray(*original, path).ok());
  // Chop off the tail of the data section.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 64), 0);
  const auto result = LoadArray(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(ArrayDumpTest, MatchesAt) {
  auto arr = RandomArray(100, 11);
  const auto data = arr->Dump();
  arr->ResetAccessStats();
  ASSERT_EQ(data.size(), 100u);
  for (int64_t i = 0; i < 100; i += 7) {
    EXPECT_DOUBLE_EQ(data[static_cast<size_t>(i)], arr->At(i));
  }
  // Dump itself charged nothing.
  EXPECT_EQ(arr->GetAccessStats().cells_read, 100 / 7 + 1);
}

}  // namespace
}  // namespace dqr::array
