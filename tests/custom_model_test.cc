// §3.3 customization: user-supplied penalty and ranking models replace
// the built-in defaults and still enjoy the refinement guarantees (given
// that they respect the documented contract).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

// A Euclidean (p = 2) relaxation penalty instead of the built-in max-norm
// + violation-count blend. MaxAllowedDistance returns infinity: replays
// relax to the recorded [a', b'] with no MRP-driven tightening — the
// paper's prescription for black-box custom penalties.
class EuclideanPenalty : public PenaltyModel {
 public:
  EuclideanPenalty(std::vector<PenaltySpec> specs)
      : PenaltyModel(std::move(specs), /*alpha=*/0.5) {}

  double Penalty(const std::vector<double>& values) const override {
    double sum = 0.0;
    for (int c = 0; c < num_constraints(); ++c) {
      if (!spec(c).relaxable) {
        if (!spec(c).bounds.Contains(values[static_cast<size_t>(c)])) {
          return kInfinitePenalty;
        }
        continue;
      }
      const double d =
          RelaxDistance(c, values[static_cast<size_t>(c)]);
      if (d > 1.0 + 1e-9) return kInfinitePenalty;
      sum += d * d;
    }
    return std::sqrt(sum) / std::sqrt(static_cast<double>(
                                 std::max(1, num_relaxable())));
  }

  double BestPenalty(const std::vector<Interval>& estimates,
                     const std::vector<char>& known) const override {
    double sum = 0.0;
    for (int c = 0; c < num_constraints(); ++c) {
      if (!known[static_cast<size_t>(c)]) continue;
      const Interval& est = estimates[static_cast<size_t>(c)];
      if (spec(c).bounds.Intersects(est)) continue;
      const double t = est.hi < spec(c).bounds.lo ? est.hi : est.lo;
      const double d = RelaxDistance(c, t);
      if (!spec(c).relaxable || d > 1.0 + 1e-9) return kInfinitePenalty;
      sum += d * d;
    }
    return std::sqrt(sum) / std::sqrt(static_cast<double>(
                                 std::max(1, num_relaxable())));
  }

  double MaxAllowedDistance(double, double) const override {
    return kInfinitePenalty;  // black box: no interval tightening
  }
};

std::vector<PenaltySpec> SpecsFor(const searchlight::QuerySpec& query) {
  std::vector<PenaltySpec> specs;
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    specs.push_back(PenaltySpec{qc.bounds,
                                qc.make_function()->value_range(),
                                qc.relax_weight, qc.relaxable});
  }
  return specs;
}

TEST(CustomModelTest, CustomPenaltyDrivesRelaxation) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.contrast_min = 70.0;  // over-constrained
  p.k = 5;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const EuclideanPenalty custom(SpecsFor(query));
  RefineOptions options;
  options.custom_penalty = &custom;

  // Brute force under the *custom* penalty.
  auto all = BruteForceAll(query);
  for (Solution& s : all) s.rp = custom.Penalty(s.values);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [](const Solution& s) {
                             return std::isinf(s.rp);
                           }),
            all.end());
  std::sort(all.begin(), all.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rp != b.rp) return a.rp < b.rp;
              return a.point < b.point;
            });
  ASSERT_GE(all.size(), 5u);

  const auto run = ExecuteQuery(query, options).value();
  ASSERT_EQ(run.results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(run.results[i].point, all[i].point) << "rank " << i;
    EXPECT_NEAR(run.results[i].rp, all[i].rp, 1e-9);
  }
}

// A custom rank that scores by the first constraint only.
class FirstConstraintRank : public RankModel {
 public:
  explicit FirstConstraintRank(std::vector<RankSpec> specs)
      : RankModel(std::move(specs)) {}

  double Rank(const std::vector<double>& values) const override {
    return 1.0 - RankComponent(0, values[0]);
  }
  double BestRank(const std::vector<Interval>& estimates) const override {
    // Best case: the preferred (upper) end of the first estimate.
    return 1.0 - RankComponent(0, estimates[0].hi);
  }
};

std::vector<RankSpec> RankSpecsFor(const searchlight::QuerySpec& query) {
  std::vector<RankSpec> specs;
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    specs.push_back(RankSpec{
        qc.bounds, qc.make_function()->value_range(), qc.rank_weight,
        qc.preference == searchlight::RankPreference::kMaximize,
        qc.constrainable});
  }
  return specs;
}

TEST(CustomModelTest, CustomRankDrivesConstraining) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  p.k = 6;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const FirstConstraintRank custom(RankSpecsFor(query));
  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  options.custom_rank = &custom;

  auto exact = ExactOnly(BruteForceAll(query));
  ASSERT_GT(exact.size(), 6u);
  for (Solution& s : exact) s.rk = custom.Rank(s.values);
  std::sort(exact.begin(), exact.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rk != b.rk) return a.rk > b.rk;
              return a.point < b.point;
            });
  exact.resize(6);

  const auto run = ExecuteQuery(query, options).value();
  EXPECT_EQ(Points(run.results), Points(exact));
}

TEST(CustomModelTest, MismatchedCustomModelRejected) {
  const auto bundle = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(bundle, TestQueryParams{});
  const EuclideanPenalty too_small(
      {PenaltySpec{Interval(0, 1), Interval(0, 1), 1.0, true}});
  RefineOptions options;
  options.custom_penalty = &too_small;
  EXPECT_FALSE(ExecuteQuery(query, options).ok());
}

}  // namespace
}  // namespace dqr::core
