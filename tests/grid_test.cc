#include "array/grid.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace dqr::array {
namespace {

std::shared_ptr<Grid> RandomGrid(int64_t rows, int64_t cols,
                                 uint64_t seed, int64_t tile = 8) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(rows * cols));
  for (double& v : data) v = rng.Uniform(-100, 100);
  GridSchema schema;
  schema.name = "grid_test";
  schema.rows = rows;
  schema.cols = cols;
  schema.tile_size = tile;
  return Grid::FromData(schema, std::move(data)).value();
}

TEST(GridTest, FromDataRejectsBadInputs) {
  GridSchema schema;
  schema.rows = 2;
  schema.cols = 3;
  schema.tile_size = 0;
  EXPECT_FALSE(Grid::FromData(schema, std::vector<double>(6)).ok());
  schema.tile_size = 4;
  EXPECT_FALSE(Grid::FromData(schema, std::vector<double>(5)).ok());
  schema.rows = -1;
  EXPECT_FALSE(Grid::FromData(schema, {}).ok());
}

TEST(GridTest, AtReadsRowMajor) {
  GridSchema schema;
  schema.rows = 2;
  schema.cols = 3;
  auto grid = Grid::FromData(schema, {1, 2, 3, 4, 5, 6}).value();
  EXPECT_DOUBLE_EQ(grid->At(0, 0), 1);
  EXPECT_DOUBLE_EQ(grid->At(0, 2), 3);
  EXPECT_DOUBLE_EQ(grid->At(1, 0), 4);
  EXPECT_DOUBLE_EQ(grid->At(1, 2), 6);
}

TEST(GridTest, AggregateRectMatchesNaive) {
  auto grid = RandomGrid(37, 53, 7);
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t r0 = rng.UniformInt(0, 36);
    const int64_t r1 = rng.UniformInt(r0 + 1, 37);
    const int64_t c0 = rng.UniformInt(0, 52);
    const int64_t c1 = rng.UniformInt(c0 + 1, 53);
    const WindowAggregates agg = grid->AggregateRect(r0, r1, c0, c1);

    double mn = grid->At(r0, c0);
    double mx = mn;
    double sum = 0.0;
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = c0; c < c1; ++c) {
        const double v = grid->At(r, c);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      }
    }
    EXPECT_DOUBLE_EQ(agg.min, mn);
    EXPECT_DOUBLE_EQ(agg.max, mx);
    EXPECT_NEAR(agg.sum, sum, 1e-9);
    EXPECT_EQ(agg.count, (r1 - r0) * (c1 - c0));
  }
}

TEST(GridTest, AccessStatsCountTiles) {
  auto grid = RandomGrid(16, 16, 5, /*tile=*/8);
  grid->ResetAccessStats();
  (void)grid->AggregateRect(0, 16, 0, 16);  // 2x2 tiles
  EXPECT_EQ(grid->GetAccessStats().chunks_touched, 4);
  EXPECT_EQ(grid->GetAccessStats().cells_read, 256);
}

TEST(GridDeathTest, OutOfRangeRejected) {
  auto grid = RandomGrid(4, 4, 5);
  EXPECT_DEATH((void)grid->At(4, 0), "DQR_CHECK");
  EXPECT_DEATH((void)grid->AggregateRect(0, 5, 0, 4), "DQR_CHECK");
  EXPECT_DEATH((void)grid->AggregateRect(2, 2, 0, 4), "DQR_CHECK");
}

}  // namespace
}  // namespace dqr::array
