#include "common/status.h"

#include <gtest/gtest.h>

namespace dqr {
namespace {

TEST(StatusTest, OkByDefault) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorConstructors) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);

  const Status status = InvalidArgumentError("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  const Result<int> r(InternalError("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

}  // namespace
}  // namespace dqr
