// TraceRing semantics: emission order, drop-oldest overflow, capacity
// rounding, and — the part TSan is for — snapshotting a ring while its
// producer is still writing. The seqlock discipline must make concurrent
// snapshots linearizable-enough: every event a snapshot returns is a
// fully written one, in emission order, never torn.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dqr::obs {
namespace {

TEST(TraceRingTest, EmitsInOrderBelowCapacity) {
  TraceRing ring(/*instance=*/0, ThreadRole::kSolver, /*epoch=*/1,
                 /*capacity=*/64);
  ring.EmitAt(10, EventKind::kBegin, EventName::kShardExecute, 0.0);
  ring.EmitAt(20, EventKind::kInstant, EventName::kShardPickup, 5.0);
  ring.EmitAt(30, EventKind::kEnd, EventName::kShardExecute, 0.0);

  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_ns, 10);
  EXPECT_EQ(events[0].kind, EventKind::kBegin);
  EXPECT_EQ(events[0].name, EventName::kShardExecute);
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_DOUBLE_EQ(events[1].value, 5.0);
  EXPECT_EQ(events[2].ts_ns, 30);
  EXPECT_EQ(ring.emitted(), 3);
  EXPECT_EQ(ring.dropped(), 0);
}

TEST(TraceRingTest, OverflowDropsOldestKeepsNewest) {
  TraceRing ring(0, ThreadRole::kSolver, 1, /*capacity=*/8);
  ASSERT_EQ(ring.capacity(), 8);
  for (int i = 0; i < 20; ++i) {
    ring.EmitAt(i, EventKind::kInstant, EventName::kHeartbeat,
                static_cast<double>(i));
  }
  EXPECT_EQ(ring.emitted(), 20);
  EXPECT_EQ(ring.dropped(), 12);

  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The surviving window is exactly the newest `capacity()` events.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, 12.0 + static_cast<double>(i));
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0, ThreadRole::kSolver, 1, 5).capacity(), 8);
  EXPECT_EQ(TraceRing(0, ThreadRole::kSolver, 1, 1).capacity(), 2);
  EXPECT_EQ(TraceRing(0, ThreadRole::kSolver, 1, 256).capacity(), 256);
}

// The TSan target: one producer hammers the ring through many wraps while
// readers snapshot concurrently. Every snapshot must contain only fully
// written events (value == ts pattern) in strictly increasing order.
TEST(TraceRingTest, SnapshotRacesProducerWithoutTearing) {
  TraceRing ring(0, ThreadRole::kSolver, 1, /*capacity=*/64);
  constexpr int kEvents = 200000;
  std::atomic<bool> done{false};
  std::atomic<int64_t> snapshots{0};

  std::thread producer([&] {
    for (int i = 0; i < kEvents; ++i) {
      // ts and value move in lockstep; a torn slot would break the pair.
      ring.EmitAt(i, EventKind::kInstant, EventName::kHeartbeat,
                  static_cast<double>(i));
      // Rendezvous mid-stream so at least one snapshot provably races
      // live emission (the producer is otherwise too fast to catch).
      if (i == kEvents / 2) {
        while (snapshots.load(std::memory_order_acquire) == 0) {
          std::this_thread::yield();
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  while (!done.load(std::memory_order_acquire)) {
    const std::vector<TraceEvent> events = ring.Snapshot();
    snapshots.fetch_add(1, std::memory_order_release);
    int64_t prev = -1;
    for (const TraceEvent& e : events) {
      EXPECT_EQ(e.ts_ns, static_cast<int64_t>(e.value)) << "torn slot";
      EXPECT_GT(e.ts_ns, prev) << "events out of order";
      prev = e.ts_ns;
    }
  }
  producer.join();
  EXPECT_GT(snapshots.load(), 0);
  EXPECT_EQ(ring.emitted(), kEvents);

  const std::vector<TraceEvent> final_events = ring.Snapshot();
  EXPECT_EQ(final_events.size(), 64u);
  EXPECT_EQ(final_events.back().ts_ns, kEvents - 1);
}

TEST(TraceTest, RingsCarryEpochAndAggregateTotals) {
  Trace trace;
  EXPECT_EQ(trace.BeginQuery(), 1);
  TraceRing* a = trace.CreateRing(0, ThreadRole::kSolver, 16);
  EXPECT_EQ(trace.BeginQuery(), 2);
  TraceRing* b = trace.CreateRing(1, ThreadRole::kValidator, 4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->epoch(), 1);
  EXPECT_EQ(b->epoch(), 2);

  for (int i = 0; i < 3; ++i) {
    a->EmitAt(i, EventKind::kInstant, EventName::kHeartbeat, 0.0);
  }
  for (int i = 0; i < 10; ++i) {
    b->EmitAt(i, EventKind::kInstant, EventName::kHeartbeat, 0.0);
  }
  EXPECT_EQ(trace.rings().size(), 2u);
  EXPECT_EQ(trace.total_emitted(), 13);
  EXPECT_EQ(trace.total_dropped(), 6);  // b holds 4 of 10
}

// Ring creation must be thread-safe: every engine thread registers its
// own ring against the shared Trace on startup.
TEST(TraceTest, ConcurrentRingCreation) {
  Trace trace;
  trace.BeginQuery();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      TraceRing* ring = trace.CreateRing(t, ThreadRole::kSolver, 8);
      ring->EmitAt(t, EventKind::kInstant, EventName::kHeartbeat,
                   static_cast<double>(t));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.rings().size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(trace.total_emitted(), kThreads);
}

TEST(ThreadTracerTest, NullTracerIsInertEverywhere) {
  ThreadTracer tracer;  // tracing disabled
  EXPECT_FALSE(tracer.enabled());
  tracer.Instant(EventName::kHeartbeat);
  tracer.Counter(EventName::kMrp, 1.0);
  { SpanScope span = tracer.Scope(EventName::kValidate); }
  ThreadTracer made = MakeTracer(nullptr, 0, ThreadRole::kSolver, 64);
  EXPECT_FALSE(made.enabled());
}

TEST(ThreadTracerTest, ScopeEmitsBeginEndPair) {
  Trace trace;
  trace.BeginQuery();
  ThreadTracer tracer = MakeTracer(&trace, 0, ThreadRole::kValidator, 16);
  ASSERT_TRUE(tracer.enabled());
  { SpanScope span = tracer.Scope(EventName::kValidate); }
  const std::vector<TraceEvent> events = tracer.ring()->Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kBegin);
  EXPECT_EQ(events[1].kind, EventKind::kEnd);
  EXPECT_EQ(events[0].name, EventName::kValidate);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST(EventNameTest, WireNamesAreStable) {
  EXPECT_STREQ(EventNameString(EventName::kShardExecute), "shard_execute");
  EXPECT_STREQ(EventNameString(EventName::kMrk), "mrk");
  EXPECT_STREQ(ThreadRoleString(ThreadRole::kDetector), "detector");
}

}  // namespace
}  // namespace dqr::obs
