// Exporter <-> reader round trip: a hand-built trace with deterministic
// timestamps exports to Chrome trace_event JSON, loads back through the
// reader, passes the CI schema check, and summarizes to the expected
// numbers. Plus the checker's rejection cases, which are what make
// `dqr_trace --check` a real gate.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export_chrome.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace dqr::obs {
namespace {

// Emits at origin + us so exported timestamps are exactly `us`.
void At(TraceRing* ring, const Trace& trace, double us, EventKind kind,
        EventName name, double value = 0.0) {
  ring->EmitAt(trace.origin_ns() + static_cast<int64_t>(us * 1000.0), kind,
               name, value);
}

TEST(ChromeExportTest, GoldenRoundTrip) {
  Trace trace;
  trace.BeginQuery();
  TraceRing* solver = trace.CreateRing(0, ThreadRole::kSolver, 64);
  TraceRing* detector = trace.CreateRing(-1, ThreadRole::kDetector, 64);

  At(solver, trace, 1.0, EventKind::kBegin, EventName::kShardExecute);
  At(solver, trace, 1.5, EventKind::kInstant, EventName::kShardPickup, 7.0);
  At(solver, trace, 2.0, EventKind::kInstant, EventName::kResultExact, 2.5);
  At(solver, trace, 3.0, EventKind::kEnd, EventName::kShardExecute);
  At(solver, trace, 3.5, EventKind::kCounter, EventName::kMrp, 5.0);
  At(detector, trace, 4.0, EventKind::kInstant, EventName::kInstanceDead,
     1.0);

  const std::string json = ExportChromeJson(trace);
  const Result<LoadedTrace> loaded = ParseChromeTrace(json);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedTrace& t = loaded.value();
  EXPECT_TRUE(CheckChromeTrace(t).ok())
      << CheckChromeTrace(t).ToString() << "\n" << json;

  // pid layout: epoch 1 => detector (instance -1) at 4096, instance 0 at
  // 4097; thread ids are the role enum values.
  ASSERT_EQ(t.process_names.count(4097), 1u);
  EXPECT_EQ(t.process_names.at(4097), "q1/instance 0");
  ASSERT_EQ(t.process_names.count(4096), 1u);
  EXPECT_EQ(t.process_names.at(4096), "q1/cluster");
  EXPECT_EQ(t.thread_names.at({4097, 0}), "solver");
  EXPECT_EQ(t.thread_names.at({4096, 4}), "detector");

  ASSERT_EQ(t.events.size(), 6u);
  EXPECT_EQ(t.events[0].ph, "B");
  EXPECT_EQ(t.events[0].name, "shard_execute");
  EXPECT_DOUBLE_EQ(t.events[0].ts_us, 1.0);
  EXPECT_FALSE(t.events[0].has_value);
  EXPECT_EQ(t.events[1].ph, "i");
  EXPECT_TRUE(t.events[1].has_value);
  EXPECT_DOUBLE_EQ(t.events[1].value, 7.0);
  EXPECT_EQ(t.events[2].name, "result_exact");
  EXPECT_DOUBLE_EQ(t.events[2].value, 2.5);
  EXPECT_EQ(t.events[3].ph, "E");
  EXPECT_DOUBLE_EQ(t.events[3].ts_us, 3.0);
  EXPECT_EQ(t.events[4].ph, "C");
  EXPECT_EQ(t.events[4].name, "mrp");
  EXPECT_EQ(t.events[5].name, "instance_dead");
  EXPECT_EQ(t.events[5].pid, 4096);

  EXPECT_EQ(t.emitted, 6);
  EXPECT_EQ(t.dropped, 0);

  const TraceSummary summary = Summarize(t);
  EXPECT_EQ(summary.events, 6);
  EXPECT_DOUBLE_EQ(summary.duration_us, 3.0);  // 1.0 .. 4.0
  EXPECT_DOUBLE_EQ(summary.first_result_us, 1.0);  // result_exact at 2.0
  ASSERT_EQ(summary.tracks.size(), 2u);
  // Map order: pid 4096 (cluster) before 4097 (instance 0).
  EXPECT_EQ(summary.tracks[0].process, "q1/cluster");
  EXPECT_EQ(summary.tracks[1].thread, "solver");
  EXPECT_DOUBLE_EQ(summary.tracks[1].busy_us, 2.0);  // span 1.0 -> 3.0
  EXPECT_EQ(summary.tracks[1].spans, 1);
  EXPECT_EQ(summary.tracks[1].instants.at("shard_pickup"), 1);
}

TEST(ChromeExportTest, UnclosedSpanIsSynthesizedClosed) {
  Trace trace;
  trace.BeginQuery();
  TraceRing* ring = trace.CreateRing(0, ThreadRole::kSolver, 64);
  At(ring, trace, 1.0, EventKind::kBegin, EventName::kShardExecute);
  At(ring, trace, 2.0, EventKind::kInstant, EventName::kHeartbeat, 0.0);
  // No End: the producer thread died (or the run was snapshotted live).

  const Result<LoadedTrace> loaded =
      ParseChromeTrace(ExportChromeJson(trace));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(CheckChromeTrace(loaded.value()).ok())
      << CheckChromeTrace(loaded.value()).ToString();
  ASSERT_EQ(loaded.value().events.size(), 3u);
  const LoadedEvent& synthetic = loaded.value().events.back();
  EXPECT_EQ(synthetic.ph, "E");
  EXPECT_EQ(synthetic.name, "shard_execute");
  EXPECT_DOUBLE_EQ(synthetic.ts_us, 2.0);  // closed at the last timestamp
}

TEST(ChromeExportTest, OrphanEndFromTruncationIsDropped) {
  Trace trace;
  trace.BeginQuery();
  // Capacity 2: the Begin is overwritten, leaving an orphaned End — the
  // drop-oldest shape the exporter must tolerate.
  TraceRing* ring = trace.CreateRing(0, ThreadRole::kSolver, 2);
  At(ring, trace, 1.0, EventKind::kBegin, EventName::kShardExecute);
  At(ring, trace, 2.0, EventKind::kEnd, EventName::kShardExecute);
  At(ring, trace, 3.0, EventKind::kInstant, EventName::kHeartbeat, 0.0);

  const Result<LoadedTrace> loaded =
      ParseChromeTrace(ExportChromeJson(trace));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedTrace& t = loaded.value();
  EXPECT_TRUE(CheckChromeTrace(t).ok()) << CheckChromeTrace(t).ToString();
  // The ring kept {End, heartbeat}; the End's Begin is gone, so the
  // exporter must drop the End or the schema check would fail.
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].name, "heartbeat");
  EXPECT_EQ(t.dropped, 1);
}

TEST(ChromeExportTest, EmptyTraceIsValidJson) {
  Trace trace;
  const Result<LoadedTrace> loaded =
      ParseChromeTrace(ExportChromeJson(trace));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(CheckChromeTrace(loaded.value()).ok());
  EXPECT_TRUE(loaded.value().events.empty());
  const TraceSummary summary = Summarize(loaded.value());
  EXPECT_EQ(summary.events, 0);
  EXPECT_LT(summary.first_result_us, 0.0);
}

// --- checker rejections ---------------------------------------------

LoadedTrace NamedTrack() {
  LoadedTrace t;
  t.process_names[1] = "q1/instance 0";
  t.thread_names[{1, 0}] = "solver";
  return t;
}

LoadedEvent Ev(const char* name, const char* ph, double ts,
               bool has_value = false) {
  LoadedEvent e;
  e.name = name;
  e.ph = ph;
  e.pid = 1;
  e.tid = 0;
  e.ts_us = ts;
  e.has_value = has_value;
  return e;
}

TEST(CheckChromeTraceTest, RejectsUnknownPh) {
  LoadedTrace t = NamedTrack();
  t.events.push_back(Ev("heartbeat", "X", 1.0));
  EXPECT_FALSE(CheckChromeTrace(t).ok());
}

TEST(CheckChromeTraceTest, RejectsUnnamedThread) {
  LoadedTrace t = NamedTrack();
  LoadedEvent e = Ev("heartbeat", "i", 1.0, /*has_value=*/true);
  e.tid = 9;  // no thread_name metadata for tid 9
  t.events.push_back(e);
  EXPECT_FALSE(CheckChromeTrace(t).ok());
}

TEST(CheckChromeTraceTest, RejectsTimestampRegression) {
  LoadedTrace t = NamedTrack();
  t.events.push_back(Ev("heartbeat", "i", 2.0, true));
  t.events.push_back(Ev("heartbeat", "i", 1.0, true));
  EXPECT_FALSE(CheckChromeTrace(t).ok());
}

TEST(CheckChromeTraceTest, RejectsUnbalancedSpans) {
  {
    LoadedTrace t = NamedTrack();
    t.events.push_back(Ev("validate", "E", 1.0));  // E without B
    EXPECT_FALSE(CheckChromeTrace(t).ok());
  }
  {
    LoadedTrace t = NamedTrack();
    t.events.push_back(Ev("validate", "B", 1.0));  // B never closed
    EXPECT_FALSE(CheckChromeTrace(t).ok());
  }
  {
    LoadedTrace t = NamedTrack();
    t.events.push_back(Ev("validate", "B", 1.0));
    t.events.push_back(Ev("shard_execute", "E", 2.0));  // name mismatch
    EXPECT_FALSE(CheckChromeTrace(t).ok());
  }
}

TEST(CheckChromeTraceTest, RejectsInstantWithoutValue) {
  LoadedTrace t = NamedTrack();
  t.events.push_back(Ev("heartbeat", "i", 1.0, /*has_value=*/false));
  EXPECT_FALSE(CheckChromeTrace(t).ok());
}

TEST(CheckChromeTraceTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[").ok());
  EXPECT_FALSE(ParseChromeTrace("[]").ok());
  EXPECT_FALSE(ParseChromeTrace("{}").ok());
}

TEST(SummarizeTest, StealLatencyBucketsGapToNextPickup) {
  LoadedTrace t = NamedTrack();
  t.events.push_back(Ev("shard_execute", "B", 0.0));
  t.events.push_back(Ev("shard_execute", "E", 100.0));
  t.events.push_back(Ev("shard_pickup", "i", 105.0, true));   // gap 5us
  t.events.push_back(Ev("shard_execute", "B", 105.0));
  t.events.push_back(Ev("shard_execute", "E", 200.0));
  t.events.push_back(Ev("shard_pickup", "i", 250.0, true));   // gap 50us
  t.events.push_back(Ev("shard_execute", "B", 250.0));
  t.events.push_back(Ev("shard_execute", "E", 300.0));
  t.events.push_back(Ev("shard_pickup", "i", 800.0, true));   // gap 500us
  t.events.push_back(Ev("shard_execute", "B", 800.0));
  t.events.push_back(Ev("shard_execute", "E", 900.0));
  ASSERT_TRUE(CheckChromeTrace(t).ok()) << CheckChromeTrace(t).ToString();

  const TraceSummary summary = Summarize(t);
  EXPECT_EQ(summary.steal_latency[0], 1);
  EXPECT_EQ(summary.steal_latency[1], 1);
  EXPECT_EQ(summary.steal_latency[2], 1);
  EXPECT_EQ(summary.steal_latency[3], 0);
  ASSERT_EQ(summary.tracks.size(), 1u);
  EXPECT_EQ(summary.tracks[0].spans, 4);
  const std::string text = FormatSummary(summary);
  EXPECT_NE(text.find("shard handoff latency"), std::string::npos);
}

}  // namespace
}  // namespace dqr::obs
