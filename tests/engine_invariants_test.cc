// Cross-cutting engine invariants, checked over a sweep of random query
// geometries: output ordering and bounds discipline, stats coherence,
// and hard-limit enforcement. Complements the brute-force equivalence
// suites with cheaper, broader checks.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/model_builders.h"
#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

class EngineInvariantsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineInvariantsTest, OutputsRespectModelDiscipline) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    const auto bundle = MakeSmallBundle(500, rng.NextUint64());
    TestQueryParams p;
    const double lo = rng.Uniform(100, 170);
    p.avg_bounds = Interval(lo, lo + rng.Uniform(15, 80));
    p.contrast_min = rng.Uniform(10, 80);
    p.k = rng.UniformInt(1, 12);
    const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

    RefineOptions options;
    options.num_instances = static_cast<int>(rng.UniformInt(1, 4));
    options.speculative = rng.Bernoulli(0.3);
    const auto run_result = ExecuteQuery(query, options);
    ASSERT_TRUE(run_result.ok());
    const RunResult& run = run_result.value();
    const PenaltyModel penalty =
        BuildPenaltyModel(query, options.alpha).value();

    EXPECT_LE(run.results.size(), static_cast<size_t>(p.k));
    double last_rp = -1.0;
    for (const Solution& s : run.results) {
      // Recomputing the penalty from the values must agree.
      EXPECT_NEAR(penalty.Penalty(s.values), s.rp, 1e-9);
      // Hard limits: every returned value lies within the declared
      // function ranges (the paper's "we will not relax beyond").
      EXPECT_TRUE(std::isfinite(s.rp));
      for (size_t c = 0; c < s.values.size(); ++c) {
        const Interval& range = penalty.spec(static_cast<int>(c)).value_range;
        EXPECT_GE(s.values[c], range.lo - 1e-9);
        EXPECT_LE(s.values[c], range.hi + 1e-9);
      }
      // Relaxation output is ordered by penalty (phase never flips here
      // unless >= k exact, in which case all rp are equal to 0 anyway).
      EXPECT_GE(s.rp, last_rp - 1e-12);
      last_rp = s.rp;
      // Points lie within the declared domains.
      for (size_t v = 0; v < s.point.size(); ++v) {
        EXPECT_TRUE(query.domains[v].Contains(s.point[v]));
      }
    }

    // Stats coherence.
    const RunStats& st = run.stats;
    EXPECT_GE(st.candidates, st.validated + st.dropped_precheck -
                                 st.duplicates);
    EXPECT_GE(st.validated, st.exact_results);
    EXPECT_GE(st.fails_recorded, 0);
    EXPECT_GE(st.main_search.nodes, st.main_search.fails);
    EXPECT_TRUE(st.completed);
    EXPECT_GE(st.total_s, 0.0);
    if (!run.results.empty()) {
      EXPECT_GE(st.first_result_s, 0.0);
      EXPECT_LE(st.first_result_s, st.total_s + 1e-9);
    }
    EXPECT_EQ(run.per_instance.size(),
              static_cast<size_t>(options.num_instances));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariantsTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(EngineInvariantsTest, ConstrainingOutputsSortedByRank) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  p.k = 6;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);
  RefineOptions options;
  options.constrain = ConstrainMode::kRank;
  const auto run = ExecuteQuery(query, options).value();
  ASSERT_EQ(run.results.size(), 6u);
  for (size_t i = 1; i < run.results.size(); ++i) {
    EXPECT_GE(run.results[i - 1].rk, run.results[i].rk - 1e-12);
    EXPECT_DOUBLE_EQ(run.results[i].rp, 0.0);
  }
}

TEST(EngineInvariantsTest, SkylineOutputsAreMutuallyNonDominated) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_bounds = Interval(105, 250);
  p.contrast_min = 20.0;
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);
  RefineOptions options;
  options.constrain = ConstrainMode::kSkyline;
  const auto run = ExecuteQuery(query, options).value();
  const RankModel rank = BuildRankModel(query).value();
  ASSERT_GT(run.results.size(), 1u);
  for (const Solution& a : run.results) {
    for (const Solution& b : run.results) {
      if (&a == &b) continue;
      EXPECT_FALSE(Skyline::Dominates(rank.OrientForSkyline(a.values),
                                      rank.OrientForSkyline(b.values)))
          << a.ToString() << " dominates " << b.ToString();
    }
  }
}

}  // namespace
}  // namespace dqr::core
