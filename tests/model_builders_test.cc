#include "core/model_builders.h"

#include <gtest/gtest.h>

#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

TEST(ModelBuildersTest, PenaltyModelMirrorsQuery) {
  const auto bundle = MakeSmallBundle();
  TestQueryParams p;
  p.avg_range = Interval(60, 240);
  const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

  const auto model = BuildPenaltyModel(query, 0.5);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_constraints(), 3);
  EXPECT_EQ(model.value().spec(0).bounds, query.constraints[0].bounds);
  EXPECT_EQ(model.value().spec(0).value_range, Interval(60, 240));
}

TEST(ModelBuildersTest, RankModelMirrorsQuery) {
  const auto bundle = MakeSmallBundle();
  searchlight::QuerySpec query = MakeTestQuery(bundle, TestQueryParams{});
  query.constraints[1].constrainable = false;
  const auto model = BuildRankModel(query);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_constraints(), 3);
  EXPECT_EQ(model.value().num_constrainable(), 2);
}

TEST(ModelBuildersTest, RejectsBadInputs) {
  const auto bundle = MakeSmallBundle();
  searchlight::QuerySpec query = MakeTestQuery(bundle, TestQueryParams{});

  EXPECT_FALSE(BuildPenaltyModel(query, -0.1).ok());

  searchlight::QuerySpec no_factory = query;
  no_factory.constraints[0].make_function = nullptr;
  EXPECT_FALSE(BuildPenaltyModel(no_factory, 0.5).ok());
  EXPECT_FALSE(BuildRankModel(no_factory).ok());

  searchlight::QuerySpec null_factory = query;
  null_factory.constraints[0].make_function = [] {
    return std::unique_ptr<cp::ConstraintFunction>();
  };
  EXPECT_FALSE(BuildPenaltyModel(null_factory, 0.5).ok());

  searchlight::QuerySpec bad_weight = query;
  bad_weight.constraints[0].relax_weight = 1.5;
  EXPECT_FALSE(BuildPenaltyModel(bad_weight, 0.5).ok());
}

}  // namespace
}  // namespace dqr::core
