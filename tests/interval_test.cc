#include "common/interval.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dqr {
namespace {

TEST(IntervalTest, BasicsAndEmptiness) {
  const Interval iv(1.0, 3.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_DOUBLE_EQ(iv.width(), 2.0);
  EXPECT_DOUBLE_EQ(iv.mid(), 2.0);
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_FALSE(iv.Contains(3.0001));

  const Interval empty = Interval::Empty();
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.width(), 0.0);
  EXPECT_FALSE(empty.Contains(0.0));
  EXPECT_TRUE(iv.Contains(empty));  // empty set is a subset of anything

  const Interval all = Interval::All();
  EXPECT_TRUE(all.Contains(1e300));
  EXPECT_TRUE(all.Contains(iv));

  EXPECT_EQ(Interval::Point(2.0), Interval(2.0, 2.0));
  EXPECT_TRUE(Interval::Point(2.0).IsPoint());
}

TEST(IntervalTest, IntersectUnion) {
  const Interval a(0.0, 5.0);
  const Interval b(3.0, 8.0);
  EXPECT_EQ(a.Intersect(b), Interval(3.0, 5.0));
  EXPECT_EQ(a.Union(b), Interval(0.0, 8.0));
  EXPECT_TRUE(a.Intersects(b));

  const Interval c(6.0, 7.0);
  EXPECT_TRUE(a.Intersect(c).empty());
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.Union(Interval::Empty()), a);
  EXPECT_EQ(Interval::Empty().Union(a), a);
}

TEST(IntervalTest, Distances) {
  const Interval iv(10.0, 20.0);
  EXPECT_DOUBLE_EQ(iv.DistanceTo(15.0), 0.0);
  EXPECT_DOUBLE_EQ(iv.DistanceTo(8.0), 2.0);
  EXPECT_DOUBLE_EQ(iv.DistanceTo(23.0), 3.0);

  EXPECT_DOUBLE_EQ(iv.DistanceTo(Interval(0.0, 7.0)), 3.0);
  EXPECT_DOUBLE_EQ(iv.DistanceTo(Interval(25.0, 30.0)), 5.0);
  EXPECT_DOUBLE_EQ(iv.DistanceTo(Interval(18.0, 30.0)), 0.0);
}

TEST(IntervalTest, ArithmeticBasics) {
  const Interval a(1.0, 2.0);
  const Interval b(-3.0, 4.0);
  EXPECT_EQ(a + b, Interval(-2.0, 6.0));
  EXPECT_EQ(a - b, Interval(-3.0, 5.0));
  EXPECT_EQ(a * b, Interval(-6.0, 8.0));
  EXPECT_EQ(Min(a, b), Interval(-3.0, 2.0));
  EXPECT_EQ(Max(a, b), Interval(1.0, 4.0));
  EXPECT_EQ(Abs(Interval(-5.0, 3.0)), Interval(0.0, 5.0));
  EXPECT_EQ(Abs(Interval(-5.0, -3.0)), Interval(3.0, 5.0));
  EXPECT_EQ(Abs(Interval(3.0, 5.0)), Interval(3.0, 5.0));
}

// Property: every interval operation is conservative — the result of the
// pointwise operation on members lies inside the interval result.
class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalPropertyTest, OperationsAreConservative) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const double a_lo = rng.Uniform(-100, 100);
    const double b_lo = rng.Uniform(-100, 100);
    const Interval a(a_lo, a_lo + rng.Uniform(0, 50));
    const Interval b(b_lo, b_lo + rng.Uniform(0, 50));
    const double x = rng.Uniform(a.lo, a.hi);
    const double y = rng.Uniform(b.lo, b.hi);

    EXPECT_TRUE((a + b).Contains(x + y));
    EXPECT_TRUE((a - b).Contains(x - y));
    EXPECT_TRUE((a * b).Contains(x * y));
    EXPECT_TRUE(Min(a, b).Contains(std::min(x, y)));
    EXPECT_TRUE(Max(a, b).Contains(std::max(x, y)));
    EXPECT_TRUE(Abs(a).Contains(std::abs(x)));
    EXPECT_TRUE(a.Union(b).Contains(x));
    EXPECT_TRUE(a.Union(b).Contains(y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace dqr
