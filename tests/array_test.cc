#include "array/array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"

namespace dqr::array {
namespace {

std::shared_ptr<Array> MakeArray(std::vector<double> data,
                                 int64_t chunk_size = 8) {
  ArraySchema schema;
  schema.name = "test";
  schema.length = static_cast<int64_t>(data.size());
  schema.chunk_size = chunk_size;
  auto result = Array::FromData(std::move(schema), std::move(data));
  EXPECT_TRUE(result.ok());
  return result.value();
}

TEST(ArrayTest, FromDataRejectsBadInputs) {
  ArraySchema schema;
  schema.length = 3;
  schema.chunk_size = 0;
  EXPECT_FALSE(Array::FromData(schema, {1, 2, 3}).ok());

  schema.chunk_size = 4;
  EXPECT_FALSE(Array::FromData(schema, {1, 2}).ok());  // size mismatch

  schema.length = -1;
  EXPECT_FALSE(Array::FromData(schema, {}).ok());
}

TEST(ArrayTest, AtReadsAcrossChunks) {
  std::vector<double> data(20);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  auto arr = MakeArray(data, /*chunk_size=*/8);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(arr->At(i), static_cast<double>(i));
  }
}

TEST(ArrayTest, AggregateWindowMatchesNaive) {
  Rng rng(77);
  std::vector<double> data(257);
  for (double& v : data) v = rng.Uniform(-10, 10);
  auto arr = MakeArray(data, /*chunk_size=*/16);

  for (int iter = 0; iter < 300; ++iter) {
    const int64_t lo = rng.UniformInt(0, 255);
    const int64_t hi = rng.UniformInt(lo + 1, 257);
    const WindowAggregates agg = arr->AggregateWindow(lo, hi);

    double mn = data[static_cast<size_t>(lo)];
    double mx = mn;
    double sum = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      mn = std::min(mn, data[static_cast<size_t>(i)]);
      mx = std::max(mx, data[static_cast<size_t>(i)]);
      sum += data[static_cast<size_t>(i)];
    }
    EXPECT_DOUBLE_EQ(agg.min, mn);
    EXPECT_DOUBLE_EQ(agg.max, mx);
    EXPECT_NEAR(agg.sum, sum, 1e-9);
    EXPECT_EQ(agg.count, hi - lo);
    EXPECT_NEAR(agg.avg(), sum / static_cast<double>(hi - lo), 1e-9);
  }
}

TEST(ArrayTest, SingleElementWindow) {
  auto arr = MakeArray({5.0, -1.0, 2.0});
  const WindowAggregates agg = arr->AggregateWindow(1, 2);
  EXPECT_DOUBLE_EQ(agg.min, -1.0);
  EXPECT_DOUBLE_EQ(agg.max, -1.0);
  EXPECT_DOUBLE_EQ(agg.sum, -1.0);
  EXPECT_EQ(agg.count, 1);
}

TEST(ArrayTest, AccessStatsAccumulateAndReset) {
  auto arr = MakeArray(std::vector<double>(64, 1.0), /*chunk_size=*/8);
  arr->ResetAccessStats();
  (void)arr->At(0);
  (void)arr->AggregateWindow(0, 24);  // touches chunks 0, 1, 2
  const AccessStats stats = arr->GetAccessStats();
  EXPECT_EQ(stats.chunks_touched, 1 + 3);
  EXPECT_EQ(stats.cells_read, 1 + 24);
  arr->ResetAccessStats();
  const AccessStats zero = arr->GetAccessStats();
  EXPECT_EQ(zero.chunks_touched, 0);
  EXPECT_EQ(zero.cells_read, 0);
}

TEST(ArrayTest, ChunkAccessCostSlowsReads) {
  auto arr = MakeArray(std::vector<double>(16, 1.0), /*chunk_size=*/4);
  arr->set_chunk_access_cost_ns(200000);  // 0.2 ms per chunk
  const auto start = std::chrono::steady_clock::now();
  (void)arr->AggregateWindow(0, 16);  // 4 chunks -> >= 0.8 ms
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(ms, 0.7);
}

TEST(ArrayDeathTest, OutOfRangeAccessAborts) {
  auto arr = MakeArray({1.0, 2.0});
  EXPECT_DEATH((void)arr->At(2), "DQR_CHECK");
  EXPECT_DEATH((void)arr->AggregateWindow(1, 1), "DQR_CHECK");
}

}  // namespace
}  // namespace dqr::array
