// The HTTP metrics gateway (DESIGN.md §12): `--http-metrics-port` puts
// the same Prometheus exposition the METRICS frame serves behind a
// plain `GET /metrics`, so scrapers need not speak the frame protocol.
// One request per connection, HTTP/1.0 close semantics; anything but
// GET /metrics is a 404 with a hint, and a stalled client cannot wedge
// shutdown past the receive timeout.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "exec/engine_session.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "serve/server.h"

namespace dqr::serve {
namespace {

// One raw HTTP exchange: connect, send, half-close, drain to EOF.
std::string HttpExchange(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "<connect failed>";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(ServeHttpGateway, ServesMetricsAndRejectsOtherPaths) {
  exec::WorkerPool pool(2);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  exec::EngineSession session(session_options);

  ServerOptions options;
  options.session = &session;
  options.http_metrics_port = 0;  // ephemeral
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.http_port(), 0);

  const std::string ok =
      HttpExchange(server.http_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // The body is the same exposition the METRICS frame returns.
  EXPECT_NE(ok.find("# TYPE dqr_serve_http_requests counter"),
            std::string::npos);
  EXPECT_NE(ok.find("dqr_serve_connections_active"), std::string::npos);

  // The path match is exact — /metrics with a query string, a prefix
  // path, or any other target all fall through to the 404 hint.
  const std::string with_query = HttpExchange(
      server.http_port(), "GET /metrics?x=1 HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_EQ(with_query.rfind("HTTP/1.0 404", 0), 0u) << with_query;
  const std::string missing =
      HttpExchange(server.http_port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << missing;
  EXPECT_NE(missing.find("try GET /metrics"), std::string::npos);

  // The gateway bumps its counter after the response socket closes, so
  // the client can observe EOF first — poll briefly instead of racing.
  for (int i = 0; i < 200 && server.stats().http_requests < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().http_requests, 3);
  server.Stop();
}

TEST(ServeHttpGateway, OffByDefault) {
  exec::WorkerPool pool(2);
  exec::TimerWheel wheel;
  exec::EngineSessionOptions session_options;
  session_options.pool = &pool;
  session_options.wheel = &wheel;
  exec::EngineSession session(session_options);

  ServerOptions options;
  options.session = &session;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.http_port(), 0);
  server.Stop();
}

}  // namespace
}  // namespace dqr::serve
