// Differential property test for the sparse-table synopsis kernel: every
// bounds query must return an interval *identical* (exact double
// equality, not tolerance) to a naive cell-scan oracle that replicates
// the pre-RMQ per-cell loops over the same level. Randomized across
// array lengths (including non-divisible tails), level chains (divisible
// and not), budgets, and spans.

#include "synopsis/synopsis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dqr::synopsis {
namespace {

using View = Synopsis::LevelView;

// ---------------------------------------------------------------------
// Naive oracle: the pre-change implementation's per-cell scans, executed
// over the SoA view of the level the synopsis itself picked.

Interval OracleValueBounds(const View& v, int64_t lo, int64_t hi) {
  const int64_t first = lo / v.cell_size;
  const int64_t last = (hi - 1) / v.cell_size;
  double mn = v.min[first];
  double mx = v.max[first];
  for (int64_t c = first + 1; c <= last; ++c) {
    mn = std::min(mn, v.min[c]);
    mx = std::max(mx, v.max[c]);
  }
  return Interval(mn, mx);
}

Interval OracleSumBounds(const View& v, int64_t length, int64_t lo,
                         int64_t hi) {
  const int64_t cs = v.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;
  if (first == last) {
    const double overlap = static_cast<double>(hi - lo);
    return Interval(overlap * v.min[first], overlap * v.max[first]);
  }
  double sum_lo = 0.0;
  double sum_hi = 0.0;
  const int64_t lead_overlap = (first + 1) * cs - lo;
  if (lead_overlap == cs) {
    sum_lo += v.sum[first];
    sum_hi += v.sum[first];
  } else {
    sum_lo += static_cast<double>(lead_overlap) * v.min[first];
    sum_hi += static_cast<double>(lead_overlap) * v.max[first];
  }
  if (last - first >= 2) {
    const double mid = v.prefix_sum[last] - v.prefix_sum[first + 1];
    sum_lo += mid;
    sum_hi += mid;
  }
  const int64_t cell_lo = last * cs;
  const int64_t cell_end = std::min(length, cell_lo + cs);
  const int64_t tail_overlap = hi - cell_lo;
  if (tail_overlap == cell_end - cell_lo) {
    sum_lo += v.sum[last];
    sum_hi += v.sum[last];
  } else {
    sum_lo += static_cast<double>(tail_overlap) * v.min[last];
    sum_hi += static_cast<double>(tail_overlap) * v.max[last];
  }
  return Interval(sum_lo, sum_hi);
}

Interval OracleMaxBounds(const View& v, int64_t length, int64_t lo,
                         int64_t hi) {
  const int64_t cs = v.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;
  double upper = v.max[first];
  double overlap_floor = v.min[first];
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t c = first; c <= last; ++c) {
    upper = std::max(upper, v.max[c]);
    overlap_floor = std::max(overlap_floor, v.min[c]);
    const int64_t cell_lo = c * cs;
    const int64_t cell_end = std::min(length, cell_lo + cs);
    if (lo <= cell_lo && cell_end <= hi) {
      witness = have_contained ? std::max(witness, v.max[c]) : v.max[c];
      have_contained = true;
    }
  }
  const double lower =
      have_contained ? std::max(witness, overlap_floor) : overlap_floor;
  return Interval(lower, upper);
}

Interval OracleMinBounds(const View& v, int64_t length, int64_t lo,
                         int64_t hi) {
  const int64_t cs = v.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;
  double lower = v.min[first];
  double overlap_ceil = v.max[first];
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t c = first; c <= last; ++c) {
    lower = std::min(lower, v.min[c]);
    overlap_ceil = std::min(overlap_ceil, v.max[c]);
    const int64_t cell_lo = c * cs;
    const int64_t cell_end = std::min(length, cell_lo + cs);
    if (lo <= cell_lo && cell_end <= hi) {
      witness = have_contained ? std::min(witness, v.min[c]) : v.min[c];
      have_contained = true;
    }
  }
  const double upper =
      have_contained ? std::min(witness, overlap_ceil) : overlap_ceil;
  return Interval(lower, upper);
}

// ---------------------------------------------------------------------

struct Config {
  std::string name;
  int64_t length;
  SynopsisOptions options;
};

std::vector<Config> Configs() {
  return {
      {"divisible_pow2", 4096, {{512, 64, 16}, 16}},
      {"divisible_tail", 3001, {{512, 64, 16}, 16}},
      {"non_divisible", 777, {{96, 36, 10}, 16}},
      {"single_level", 250, {{16}, 64}},
      {"tiny_budget_fallback", 3000, {{16, 8}, 2}},
      {"deep_levels", 20000, {{2048, 256, 32}, 64}},
      {"big_budget", 8192, {{1024, 128}, 512}},
  };
}

class SynopsisRmqDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SynopsisRmqDifferentialTest, SparseTableMatchesNaiveOracle) {
  const Config cfg =
      Configs()[static_cast<size_t>(std::get<0>(GetParam()))];
  const uint64_t seed = std::get<1>(GetParam());
  SCOPED_TRACE(cfg.name);

  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(cfg.length));
  for (double& v : data) v = rng.Uniform(-100, 100);
  array::ArraySchema schema;
  schema.name = "rmq_test";
  schema.length = cfg.length;
  schema.chunk_size = 64;
  auto array = array::Array::FromData(schema, data).value();
  auto synopsis = Synopsis::Build(*array, cfg.options).value();

  Rng spans(seed ^ 0x5eed5eedULL);
  for (int iter = 0; iter < 300; ++iter) {
    int64_t lo;
    int64_t hi;
    if (iter % 3 == 0) {
      // Cell-aligned spans at a random level: the level-selection change
      // makes these routable one level finer, so they deserve coverage.
      const size_t li = static_cast<size_t>(spans.UniformInt(
          0, static_cast<int64_t>(cfg.options.cell_sizes.size()) - 1));
      const int64_t cs = cfg.options.cell_sizes[li];
      const int64_t cells = (cfg.length + cs - 1) / cs;
      const int64_t c0 = spans.UniformInt(0, cells - 1);
      const int64_t c1 = spans.UniformInt(c0 + 1, cells);
      lo = c0 * cs;
      hi = std::min(cfg.length, c1 * cs);
    } else {
      lo = spans.UniformInt(0, cfg.length - 1);
      hi = spans.UniformInt(lo + 1, cfg.length);
    }

    const View v = synopsis->level_view(synopsis->PickLevelIndex(lo, hi));

    const Interval value = synopsis->ValueBounds(lo, hi);
    const Interval value_oracle = OracleValueBounds(v, lo, hi);
    EXPECT_EQ(value.lo, value_oracle.lo) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(value.hi, value_oracle.hi) << "lo=" << lo << " hi=" << hi;

    const Interval sum = synopsis->SumBounds(lo, hi);
    const Interval sum_oracle = OracleSumBounds(v, cfg.length, lo, hi);
    EXPECT_EQ(sum.lo, sum_oracle.lo) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(sum.hi, sum_oracle.hi) << "lo=" << lo << " hi=" << hi;

    const Interval avg = synopsis->AvgBounds(lo, hi);
    const double len = static_cast<double>(hi - lo);
    EXPECT_EQ(avg.lo, sum_oracle.lo / len) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(avg.hi, sum_oracle.hi / len) << "lo=" << lo << " hi=" << hi;

    const Interval mx = synopsis->MaxBounds(lo, hi);
    const Interval mx_oracle = OracleMaxBounds(v, cfg.length, lo, hi);
    EXPECT_EQ(mx.lo, mx_oracle.lo) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(mx.hi, mx_oracle.hi) << "lo=" << lo << " hi=" << hi;

    const Interval mn = synopsis->MinBounds(lo, hi);
    const Interval mn_oracle = OracleMinBounds(v, cfg.length, lo, hi);
    EXPECT_EQ(mn.lo, mn_oracle.lo) << "lo=" << lo << " hi=" << hi;
    EXPECT_EQ(mn.hi, mn_oracle.hi) << "lo=" << lo << " hi=" << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndSeeds, SynopsisRmqDifferentialTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(1u, 99u, 20260805u)));

// The bottom-up build must produce cells identical (min/max exactly; sum
// up to FP reassociation) to a direct base-array scan — including the
// shortened tail cell of a non-divisible array length.
TEST(SynopsisRmqTest, BottomUpCellsMatchDirectScan) {
  const int64_t n = 3001;
  Rng rng(7);
  std::vector<double> data(static_cast<size_t>(n));
  for (double& v : data) v = rng.Uniform(50, 250);
  array::ArraySchema schema;
  schema.name = "rmq_build";
  schema.length = n;
  schema.chunk_size = 64;
  auto array = array::Array::FromData(schema, data).value();
  auto synopsis =
      Synopsis::Build(*array, SynopsisOptions{{512, 64, 16}, 16}).value();

  for (size_t li = 0; li < synopsis->num_levels(); ++li) {
    const View v = synopsis->level_view(li);
    ASSERT_EQ(v.num_cells, (n + v.cell_size - 1) / v.cell_size);
    for (int64_t c = 0; c < v.num_cells; ++c) {
      const int64_t lo = c * v.cell_size;
      const int64_t hi = std::min(n, lo + v.cell_size);
      const array::WindowAggregates exact = array->AggregateWindow(lo, hi);
      EXPECT_EQ(v.min[c], exact.min) << "level=" << li << " cell=" << c;
      EXPECT_EQ(v.max[c], exact.max) << "level=" << li << " cell=" << c;
      EXPECT_NEAR(v.sum[c], exact.sum, 1e-6 * std::abs(exact.sum) + 1e-9)
          << "level=" << li << " cell=" << c;
      // Prefix differences recover the cell sum only up to the rounding
      // the running accumulation introduced.
      EXPECT_NEAR(v.prefix_sum[c + 1] - v.prefix_sum[c], v.sum[c],
                  1e-6 * std::abs(v.sum[c]) + 1e-9);
    }
  }
}

// Whole-array spans exceed every level's budget and fall back to the
// coarsest level — the one place the full-height sparse table is needed.
TEST(SynopsisRmqTest, CoarsestFallbackCoversWholeArraySpans) {
  const int64_t n = 5000;
  Rng rng(11);
  std::vector<double> data(static_cast<size_t>(n));
  for (double& v : data) v = rng.Uniform(-10, 10);
  array::ArraySchema schema;
  schema.name = "rmq_fallback";
  schema.length = n;
  schema.chunk_size = 64;
  auto array = array::Array::FromData(schema, data).value();
  auto synopsis =
      Synopsis::Build(*array, SynopsisOptions{{8, 4}, 2}).value();

  EXPECT_EQ(synopsis->PickLevelIndex(0, n), 0u);
  const View v = synopsis->level_view(0);
  const Interval value = synopsis->ValueBounds(0, n);
  const Interval oracle = OracleValueBounds(v, 0, n);
  EXPECT_EQ(value.lo, oracle.lo);
  EXPECT_EQ(value.hi, oracle.hi);
}

}  // namespace
}  // namespace dqr::synopsis
