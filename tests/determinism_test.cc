// Cross-configuration determinism: the same seeded workload must produce
// byte-identical canonicalized final results under every cluster shape.
// This is the engine's §3 answer-preservation guarantee stated as an
// executable invariant — scheduling, sharding, and work stealing may
// reorder everything internal, but never the answer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/semantic_cache.h"
#include "core/canonical.h"
#include "core/refiner.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "testing/generator.h"

namespace dqr::fuzz {
namespace {

struct Shape {
  int instances;
  int shards;
};

constexpr Shape kShapes[] = {{1, 1}, {2, 4}, {4, 8}};

std::string RunCanonical(const Workload& workload, const Shape& shape,
                         obs::Trace* trace = nullptr,
                         int64_t trace_ring = 1 << 16,
                         obs::Profile* profile = nullptr) {
  EngineConfig config;
  config.num_instances = shape.instances;
  config.shards_per_instance = shape.shards;
  core::RefineOptions options = config.ToOptions(workload, nullptr);
  options.trace = trace;
  options.trace_buffer_events = trace_ring;
  options.profile = profile;
  const auto run = core::ExecuteQuery(workload.query, options);
  if (!run.ok()) return "error: " + run.status().ToString();
  if (!run.value().stats.completed) return "error: incomplete";
  return core::Canonicalize(run.value().results);
}

class DeterminismTest : public ::testing::TestWithParam<FuzzMode> {};

TEST_P(DeterminismTest, SameSeedSameResultsAcrossClusterShapes) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Workload workload = MakeWorkload(seed, GetParam());
    const std::string baseline = RunCanonical(workload, kShapes[0]);
    ASSERT_EQ(baseline.rfind("error:", 0), std::string::npos)
        << workload.summary << ": " << baseline;
    for (size_t i = 1; i < std::size(kShapes); ++i) {
      const std::string got = RunCanonical(workload, kShapes[i]);
      EXPECT_EQ(got, baseline)
          << workload.summary << " diverged at " << kShapes[i].instances
          << "x" << kShapes[i].shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeterminismTest,
                         ::testing::Values(FuzzMode::kRelax,
                                           FuzzMode::kConstrain,
                                           FuzzMode::kSkyline),
                         [](const auto& info) {
                           return FuzzModeName(info.param);
                         });

// The flight recorder is an observer, not a participant: with tracing
// off, on, and on-with-a-tiny-ring (forcing drop-oldest wraps mid-run),
// every cluster shape must still produce byte-identical results.
TEST(DeterminismTest, TracingIsAnswerPreserving) {
  for (const FuzzMode mode : {FuzzMode::kRelax, FuzzMode::kConstrain}) {
    const Workload workload = MakeWorkload(4, mode);
    for (const Shape& shape : kShapes) {
      const std::string baseline = RunCanonical(workload, shape);
      ASSERT_EQ(baseline.rfind("error:", 0), std::string::npos)
          << workload.summary << ": " << baseline;

      obs::Trace traced;
      EXPECT_EQ(RunCanonical(workload, shape, &traced), baseline)
          << workload.summary << " diverged under tracing at "
          << shape.instances << "x" << shape.shards;
      EXPECT_GT(traced.total_emitted(), 0);

      obs::Trace tiny;
      EXPECT_EQ(RunCanonical(workload, shape, &tiny, /*trace_ring=*/16),
                baseline)
          << workload.summary << " diverged under ring-wrap tracing at "
          << shape.instances << "x" << shape.shards;
    }
  }
}

// The profiler rides the same observer contract: with profiling on —
// whether it spins up its internal flight recorder or piggybacks on a
// caller-supplied trace — every cluster shape must still produce
// byte-identical results, and the assembled profile must be non-trivial
// (a phase tree plus at least one query-latency sample).
TEST(DeterminismTest, ProfilingIsAnswerPreserving) {
  for (const FuzzMode mode : {FuzzMode::kRelax, FuzzMode::kConstrain}) {
    const Workload workload = MakeWorkload(4, mode);
    for (const Shape& shape : kShapes) {
      const std::string baseline = RunCanonical(workload, shape);
      ASSERT_EQ(baseline.rfind("error:", 0), std::string::npos)
          << workload.summary << ": " << baseline;

      obs::Profile profiled;
      EXPECT_EQ(RunCanonical(workload, shape, nullptr, 1 << 16, &profiled),
                baseline)
          << workload.summary << " diverged under profiling at "
          << shape.instances << "x" << shape.shards;
      EXPECT_FALSE(profiled.query().root.children.empty())
          << workload.summary << ": profile has no phases";
      EXPECT_GT(profiled.query().stats.query_latency.count(), 0);

      obs::Trace trace;
      obs::Profile both;
      EXPECT_EQ(RunCanonical(workload, shape, &trace, 1 << 16, &both),
                baseline)
          << workload.summary << " diverged under tracing+profiling at "
          << shape.instances << "x" << shape.shards;
      EXPECT_FALSE(both.query().root.children.empty());
    }
  }
}

// The semantic cache is an execution knob like the cluster shape: a
// warm-cache session replayed under every engine shape must produce
// byte-identical per-step results — equal to each other and to the cold
// runs of the same queries. Exact hits, subsumption, and warm starts all
// short-circuit or steer execution, so this is the strongest statement
// that reuse never leaks into answers.
TEST(DeterminismTest, WarmCacheRunsMatchColdAcrossClusterShapes) {
  for (const FuzzMode mode : {FuzzMode::kRelax, FuzzMode::kConstrain}) {
    const SessionPlan plan = MakeSessionPlan(21, 3);
    const QuerySession cold = MakeSession(21, mode, plan);

    std::vector<std::string> baseline;
    for (const Workload& w : cold.steps) {
      baseline.push_back(RunCanonical(w, kShapes[0]));
      ASSERT_EQ(baseline.back().rfind("error:", 0), std::string::npos)
          << w.summary << ": " << baseline.back();
    }

    for (const Shape& shape : kShapes) {
      cache::SemanticCache sem;
      const QuerySession warm =
          MakeSession(21, mode, plan, {}, false, &sem.memo(),
                      sem.MemoSpace(cold.dataset_id));
      for (size_t i = 0; i < warm.steps.size(); ++i) {
        EngineConfig config;
        config.num_instances = shape.instances;
        config.shards_per_instance = shape.shards;
        const core::RefineOptions options =
            config.ToOptions(warm.steps[i], nullptr);
        cache::CachedQuery cq;
        cq.query = warm.steps[i].query;
        cq.dataset_id = cold.dataset_id;
        cq.function_ids = warm.steps[i].function_ids;
        const auto run = cache::ExecuteQueryCached(&sem, cq, options);
        ASSERT_TRUE(run.ok()) << warm.steps[i].summary << ": "
                              << run.status().ToString();
        ASSERT_TRUE(run.value().stats.completed) << warm.steps[i].summary;
        EXPECT_EQ(core::Canonicalize(run.value().results), baseline[i])
            << warm.steps[i].summary << " diverged warm at "
            << shape.instances << "x" << shape.shards << " step " << i;
      }
    }
  }
}

// Repeated runs of the *same* shape must agree too (no dependence on
// thread interleaving within a shape).
TEST(DeterminismTest, RepeatedRunsAreStable) {
  const Workload workload = MakeWorkload(11, FuzzMode::kConstrain);
  const Shape shape{3, 6};
  const std::string first = RunCanonical(workload, shape);
  ASSERT_EQ(first.rfind("error:", 0), std::string::npos) << first;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunCanonical(workload, shape), first) << "run " << i;
  }
}

}  // namespace
}  // namespace dqr::fuzz
