#include "data/query_parser.h"

#include <gtest/gtest.h>

#include "core/refiner.h"

namespace dqr::data {
namespace {

DatasetBundle Bundle() {
  static const DatasetBundle* bundle = [] {
    return new DatasetBundle(
        MakeWaveformDataset(1 << 14, 7).value());
  }();
  return *bundle;
}

constexpr char kMimicQuery[] = R"(
# the paper's running MIMIC query
k 10
var x 8 16000
var lx 8 16
avg x lx in 150 200 range 50 250
contrast_left x lx 8 in 80 inf range 0 200
contrast_right x lx 8 in 80 inf range 0 200
)";

TEST(QueryParserTest, ParsesTheRunningExample) {
  const auto result = ParseQuery(kMimicQuery, Bundle());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const searchlight::QuerySpec& query = result.value();
  EXPECT_EQ(query.k, 10);
  ASSERT_EQ(query.domains.size(), 2u);
  EXPECT_EQ(query.domains[0], cp::IntDomain(8, 16000));
  EXPECT_EQ(query.domains[1], cp::IntDomain(8, 16));
  ASSERT_EQ(query.constraints.size(), 3u);
  EXPECT_EQ(query.constraints[0].name, "avg");
  EXPECT_EQ(query.constraints[0].bounds, Interval(150, 200));
  EXPECT_TRUE(std::isinf(query.constraints[1].bounds.hi));
  auto fn = query.constraints[0].make_function();
  EXPECT_EQ(fn->value_range(), Interval(50, 250));
}

TEST(QueryParserTest, ParsedQueryExecutes) {
  const auto query = ParseQuery(kMimicQuery, Bundle());
  ASSERT_TRUE(query.ok());
  const auto run = core::ExecuteQuery(query.value(), core::RefineOptions{});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(run.value().results.size(), 10u);
}

TEST(QueryParserTest, OptionsApply) {
  const auto result = ParseQuery(R"(
k 3
var x 8 1000
var lx 4 8
avg x lx in 100 200 range 50 250 weight 0.5 minimize rankweight 0.9
max x lx in 120 inf range 50 250 norelax noconstrain
)",
                                 Bundle());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& q = result.value();
  EXPECT_EQ(q.k, 3);
  EXPECT_DOUBLE_EQ(q.constraints[0].relax_weight, 0.5);
  EXPECT_DOUBLE_EQ(q.constraints[0].rank_weight, 0.9);
  EXPECT_EQ(q.constraints[0].preference,
            searchlight::RankPreference::kMinimize);
  EXPECT_FALSE(q.constraints[1].relaxable);
  EXPECT_FALSE(q.constraints[1].constrainable);
}

TEST(QueryParserTest, ReportsErrorsWithLineNumbers) {
  const char* bad_cases[] = {
      "var x 10 5\n",                          // inverted domain
      "var x 0 10\nvar x 0 10\n",              // duplicate
      "k -3\n",                                // negative k
      "frobnicate x\n",                        // unknown statement
      "var x 0 10\nvar l 1 4\navg x l in 5\n",     // missing bound
      "var x 0 10\nvar l 1 4\navg x y in 5 9\n",   // unknown variable
      "var x 0 10\nvar l 1 4\navg l x in 5 9\n",   // swapped roles
      "var x 0 10\nvar l 1 4\navg x l in 5 9 bogus\n",  // bad option
      "var x 0 10\nvar l 1 4\ncontrast_left x l 0 in 5 9\n",  // width < 1
  };
  for (const char* text : bad_cases) {
    const auto result = ParseQuery(text, Bundle());
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
  }
}

TEST(QueryParserTest, SemanticChecksAgainstBundle) {
  // Start domain beyond the array.
  auto result = ParseQuery(
      "var x 0 99999999\nvar l 1 4\navg x l in 5 9\n", Bundle());
  EXPECT_FALSE(result.ok());
  // No constraints.
  result = ParseQuery("var x 0 10\nvar l 1 4\n", Bundle());
  EXPECT_FALSE(result.ok());
  // Not exactly two variables.
  result = ParseQuery("var x 0 10\n", Bundle());
  EXPECT_FALSE(result.ok());
}

TEST(QueryParserTest, SerializeParseRoundTripIsIdentity) {
  const auto parsed = ParseQueryText(kMimicQuery);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string canonical = SerializeQuery(parsed.value());

  const auto reparsed = ParseQueryText(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  // The canonical form is a fixed point: serialize(parse(serialize(q)))
  // == serialize(q), so nothing is lost or altered in either direction.
  EXPECT_EQ(SerializeQuery(reparsed.value()), canonical);

  const ParsedQuery& q = reparsed.value();
  EXPECT_EQ(q.k, 10);
  ASSERT_EQ(q.var_names.size(), 2u);
  EXPECT_EQ(q.var_names[0], "x");
  EXPECT_EQ(q.var_names[1], "lx");
  ASSERT_EQ(q.constraints.size(), 3u);
  EXPECT_EQ(q.constraints[0].fn, "avg");
  EXPECT_EQ(q.constraints[1].width, 8);
  EXPECT_TRUE(std::isinf(q.constraints[2].bounds.hi));
}

TEST(QueryParserTest, RoundTripPreservesOptionsAndAwkwardNumbers) {
  // 0.1 is not exactly representable; weight printing must round-trip the
  // exact double, not a 6-digit approximation of it.
  const auto parsed = ParseQueryText(R"(
k 3
var x 8 1000
var lx 4 8
avg x lx in 100.25 200 range 50 250 weight 0.1 minimize rankweight 0.9
max x lx in 120 inf norelax noconstrain
contrast_right x lx 5 in -inf 80 weight 0.75
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string canonical = SerializeQuery(parsed.value());
  const auto reparsed = ParseQueryText(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeQuery(reparsed.value()), canonical);

  const ParsedQuery& q = reparsed.value();
  EXPECT_DOUBLE_EQ(q.constraints[0].weight, 0.1);
  EXPECT_DOUBLE_EQ(q.constraints[0].rank_weight, 0.9);
  EXPECT_FALSE(q.constraints[0].maximize);
  EXPECT_FALSE(q.constraints[1].relaxable);
  EXPECT_FALSE(q.constraints[1].constrainable);
  EXPECT_TRUE(q.constraints[1].range.empty());
  EXPECT_EQ(q.constraints[2].width, 5);
  EXPECT_TRUE(std::isinf(q.constraints[2].bounds.lo));
}

TEST(QueryParserTest, SerializeOmitsDefaults) {
  const auto parsed = ParseQueryText(
      "var x 0 10\nvar l 1 4\navg x l in 5 9\n");
  ASSERT_TRUE(parsed.ok());
  const std::string canonical = SerializeQuery(parsed.value());
  EXPECT_EQ(canonical, "k 10\nvar x 0 10\nvar l 1 4\navg x l in 5 9\n");
}

TEST(QueryParserTest, BuiltQueryMatchesDirectParse) {
  // Building from the IR must behave exactly like the one-shot ParseQuery.
  const auto parsed = ParseQueryText(kMimicQuery);
  ASSERT_TRUE(parsed.ok());
  const auto built = BuildQuery(parsed.value(), Bundle());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto direct = ParseQuery(kMimicQuery, Bundle());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(built.value().k, direct.value().k);
  EXPECT_EQ(built.value().domains, direct.value().domains);
  ASSERT_EQ(built.value().constraints.size(),
            direct.value().constraints.size());
  for (size_t i = 0; i < built.value().constraints.size(); ++i) {
    EXPECT_EQ(built.value().constraints[i].name,
              direct.value().constraints[i].name);
    EXPECT_EQ(built.value().constraints[i].bounds,
              direct.value().constraints[i].bounds);
  }
}

TEST(QueryParserTest, RejectionsCarryUsefulMessages) {
  const struct {
    const char* text;
    const char* want;  // substring the message must contain
  } cases[] = {
      {"var x 10 5\n", "line 1"},
      {"var x 0 10\nvar x 0 10\n", "duplicate variable 'x'"},
      {"k -3\n", "k needs a non-negative integer"},
      {"frobnicate x\n", "unknown statement 'frobnicate'"},
      {"var x 0 10\nvar l 1 4\navg x l in 5\n", "line 3"},
      {"var x 0 10\nvar l 1 4\navg x y in 5 9\n",
       "unknown variable in constraint"},
      {"var x 0 10\nvar l 1 4\navg l x in 5 9\n",
       "first declared variable as start"},
      {"var x 0 10\nvar l 1 4\navg x l in 5 9 bogus\n",
       "unknown option 'bogus'"},
      {"var x 0 10\nvar l 1 4\ncontrast_left x l 0 in 5 9\n",
       "contrast width must be >= 1"},
      {"var x 0 10\nvar l 1 4\navg x l in 5 9 weight 2\n",
       "weight needs a number in [0, 1]"},
      {"var x 0 10\n", "exactly two variables"},
      {"var x 0 10\nvar l 1 4\n", "no constraints"},
  };
  for (const auto& c : cases) {
    const auto result = ParseQueryText(c.text);
    ASSERT_FALSE(result.ok()) << "accepted: " << c.text;
    EXPECT_NE(result.status().message().find(c.want), std::string::npos)
        << "message for <" << c.text << "> was: "
        << result.status().message() << "\nwanted substring: " << c.want;
  }
}

TEST(QueryParserTest, FileRoundTrip) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += "/dqr_parser_test.query";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(kMimicQuery, f);
  std::fclose(f);

  const auto result = ParseQueryFile(path, Bundle());
  EXPECT_TRUE(result.ok());
  std::remove(path.c_str());

  EXPECT_FALSE(ParseQueryFile("/no/such/file.query", Bundle()).ok());
}

}  // namespace
}  // namespace dqr::data
