// Unit coverage for the exec layer (DESIGN.md §10): WorkerPool dispatch
// and overflow accounting, TimerWheel periodic/one-shot/cancel
// semantics, and EngineSession admission bookkeeping — the pieces the
// concurrent determinism test composes end-to-end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"

namespace dqr::exec {
namespace {

TEST(WorkerPoolTest, RunsTasksAndReportsWarmStarts) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2);

  std::atomic<int> ran{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(pool.Dispatch([&ran] { ++ran; }));
  }
  for (TaskHandle& handle : handles) handle.Wait();
  EXPECT_EQ(ran.load(), 8);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.threads, 2);
  EXPECT_EQ(stats.dispatched, 8);
  EXPECT_EQ(stats.spawn_avoided + stats.overflow_spawns, 8);
  EXPECT_GT(stats.spawn_avoided, 0);
  EXPECT_EQ(stats.busy, 0);
}

TEST(WorkerPoolTest, OverflowBeyondPoolWidthStillRunsEverything) {
  WorkerPool pool(2);
  // Hold both persistent workers hostage so further dispatches must
  // overflow; engine tasks block like this all the time (barriers).
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<TaskHandle> hostages;
  for (int i = 0; i < 2; ++i) {
    hostages.push_back(pool.Dispatch([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }));
  }

  std::atomic<int> ran{0};
  std::vector<TaskHandle> overflow;
  for (int i = 0; i < 4; ++i) {
    overflow.push_back(pool.Dispatch([&ran] { ++ran; }));
  }
  for (TaskHandle& handle : overflow) handle.Wait();
  EXPECT_EQ(ran.load(), 4);
  for (const TaskHandle& handle : overflow) {
    EXPECT_FALSE(handle.warm_start());
  }
  EXPECT_GE(pool.stats().overflow_spawns, 4);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (TaskHandle& handle : hostages) handle.Wait();
}

TEST(WorkerPoolTest, LaunchWithoutPoolUsesDedicatedThread) {
  std::atomic<bool> ran{false};
  TaskHandle handle = Launch(nullptr, [&ran] { ran = true; });
  handle.Wait();
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(handle.warm_start());
}

TEST(WorkerPoolTest, EmptyHandleWaitReturnsImmediately) {
  TaskHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.Wait();  // must not block or crash
}

TEST(TimerWheelTest, PeriodicFiresRepeatedlyUntilCancelled) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  const TimerWheel::TimerId id = wheel.AddPeriodic(2000, [&fired] { ++fired; });
  while (fired.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wheel.Cancel(id);
  const int at_cancel = fired.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Cancel quiesces: at most the firing in flight at cancel time lands.
  EXPECT_LE(fired.load(), at_cancel + 1);
  EXPECT_EQ(wheel.active(), 0);
}

TEST(TimerWheelTest, OnceFiresExactlyOnce) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  wheel.AddOnce(1000, [&fired] { ++fired; });
  while (fired.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(wheel.active(), 0);
}

TEST(TimerWheelTest, CancelFromInsideCallbackDoesNotDeadlock) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  std::atomic<TimerWheel::TimerId> self{0};
  std::mutex mu;
  std::condition_variable cv;
  const TimerWheel::TimerId id = wheel.AddPeriodic(1000, [&] {
    if (++fired == 2) {
      wheel.Cancel(self.load());  // self-cancel must not self-wait
      cv.notify_all();
    }
  });
  self.store(id);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return fired.load() >= 2; });
  while (wheel.active() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 2);
}

TEST(TimerWheelTest, CancelUnknownIdIsANoOp) {
  TimerWheel wheel;
  wheel.Cancel(0);
  wheel.Cancel(12345);
  EXPECT_EQ(wheel.active(), 0);
}

}  // namespace
}  // namespace dqr::exec
