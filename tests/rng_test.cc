#include "common/rng.h"

#include <gtest/gtest.h>

namespace dqr {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  Rng c(124);
  Rng d(123);
  EXPECT_NE(c.NextUint64(), d.NextUint64());
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace dqr
