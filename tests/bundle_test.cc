#include "core/bundle.h"

#include <gtest/gtest.h>

#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

TEST(ConstraintBundleTest, BuildsOneConstraintPerQueryEntry) {
  const auto data = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(data, TestQueryParams{});
  ConstraintBundle bundle(query);
  EXPECT_EQ(bundle.size(), 3);
  EXPECT_EQ(bundle.pointers().size(), 3u);
  EXPECT_EQ(bundle.at(0).original_bounds(),
            query.constraints[0].bounds);
}

TEST(ConstraintBundleTest, EvaluateAllMatchesFunctionEvaluation) {
  const auto data = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(data, TestQueryParams{});
  ConstraintBundle bundle(query);
  const std::vector<int64_t> point = {100, 6};
  const std::vector<double> values = bundle.EvaluateAll(point);
  ASSERT_EQ(values.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    auto fn = query.constraints[c].make_function();
    EXPECT_DOUBLE_EQ(values[c], fn->Evaluate(point));
  }
}

TEST(ConstraintBundleTest, CompleteEstimatesFillsLazyGaps) {
  const auto data = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(data, TestQueryParams{});
  ConstraintBundle bundle(query);

  FailRecord fail;
  fail.box = {cp::IntDomain(50, 90), cp::IntDomain(4, 8)};
  fail.estimates.assign(3, Interval::Empty());
  fail.evaluated.assign(3, 0);
  fail.estimates[0] = bundle.at(0).function().Estimate(fail.box);
  fail.evaluated[0] = 1;

  bundle.CompleteEstimates(&fail);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(fail.evaluated[c]);
    EXPECT_FALSE(fail.estimates[c].empty());
  }
  // Completed estimates match direct evaluation.
  EXPECT_EQ(fail.estimates[1],
            bundle.at(1).function().Estimate(fail.box));
}

TEST(ConstraintBundleTest, EffectiveBoundsResetAcrossReplays) {
  const auto data = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(data, TestQueryParams{});
  ConstraintBundle bundle(query);

  bundle.at(0).SetEffectiveBounds(Interval(100, 250));
  EXPECT_TRUE(bundle.at(0).IsRelaxed());
  bundle.ResetEffectiveBounds();
  EXPECT_FALSE(bundle.at(0).IsRelaxed());
}

TEST(ConstraintBundleTest, StateSaveRestoreRoundTripsThroughRecords) {
  const auto data = MakeSmallBundle();
  const searchlight::QuerySpec query =
      MakeTestQuery(data, TestQueryParams{});
  ConstraintBundle bundle(query);

  const cp::DomainBox box = {cp::IntDomain(50, 90), cp::IntDomain(4, 8)};
  for (int c = 0; c < bundle.size(); ++c) {
    (void)bundle.at(c).function().Estimate(box);
  }
  FailRecord fail;
  fail.box = box;
  fail.states = bundle.SaveStates(box);
  EXPECT_EQ(fail.states.size(), 3u);

  bundle.ClearStates();
  bundle.RestoreStates(fail);  // must not crash; estimates still correct
  const Interval estimate = bundle.at(0).function().Estimate(box);
  EXPECT_FALSE(estimate.empty());
}

}  // namespace
}  // namespace dqr::core
