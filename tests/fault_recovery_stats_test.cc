// Recovery accounting of the instance-failure model: the counters
// surfaced in RunStats (instances_lost / shards_requeued /
// replays_reclaimed / candidates_revalidated) must match the injected
// fault plan, stall and slow events must recover without any requeue, and
// the FailRegistry lease lifecycle must be exact at the unit level.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fail_registry.h"
#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::TestQueryParams;

// The shared canonical form (see core/canonical.h); every determinism
// check in the repo compares these strings byte for byte.
std::string Fingerprint(const std::vector<Solution>& results) {
  return Canonicalize(results);
}

FailRecord MakeRecord(double brp) {
  FailRecord r;
  r.brp = brp;
  return r;
}

// --- FailRegistry lease lifecycle (deterministic unit level) ---

TEST(FailRegistryLeaseTest, CommitDestroysRequeueRepools) {
  FailRegistry registry(ReplayOrder::kBestFirst, 100);
  registry.Record(MakeRecord(0.1), 1.0);
  registry.Record(MakeRecord(0.2), 1.0);
  ASSERT_EQ(registry.size(), 2u);

  FailRecord* a = registry.Lease(1.0, /*instance=*/0);
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->brp, 0.1);  // best-first: lowest BRP leaves first
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.leased_count(), 1u);

  registry.Commit(0, a);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.leased_count(), 0u);

  FailRecord* b = registry.Lease(1.0, 0);
  ASSERT_NE(b, nullptr);
  registry.Requeue(0, b);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.leased_count(), 0u);
  EXPECT_EQ(registry.reclaimed(), 0);
}

TEST(FailRegistryLeaseTest, ReclaimTakesOnlyAbandonedLeases) {
  FailRegistry registry(ReplayOrder::kBestFirst, 100);
  registry.Record(MakeRecord(0.1), 1.0);
  registry.Record(MakeRecord(0.2), 1.0);
  registry.Record(MakeRecord(0.3), 1.0);

  FailRecord* a = registry.Lease(1.0, /*instance=*/1);
  FailRecord* b = registry.Lease(1.0, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(registry.leased_count(), 2u);

  // Nothing abandoned yet: the detector's pass must take nothing (the
  // dying instance may still be unwinding with the lease in hand).
  EXPECT_EQ(registry.ReclaimFrom(1), 0);
  EXPECT_EQ(registry.leased_count(), 2u);

  registry.AbandonLease(1, a);
  EXPECT_EQ(registry.ReclaimFrom(1), 1);
  EXPECT_EQ(registry.size(), 2u);  // a is back in the pool
  EXPECT_EQ(registry.leased_count(), 1u);
  EXPECT_EQ(registry.reclaimed(), 1);

  // The reclaimed record is replayable again, best-first order intact.
  FailRecord* again = registry.Lease(1.0, 2);
  ASSERT_NE(again, nullptr);
  EXPECT_DOUBLE_EQ(again->brp, 0.1);

  // The still-held lease abandons later; a second pass picks it up.
  registry.AbandonLease(1, b);
  EXPECT_EQ(registry.ReclaimFrom(1), 1);
  EXPECT_EQ(registry.reclaimed(), 2);

  // ReclaimFrom on an instance with no leases is a no-op.
  EXPECT_EQ(registry.ReclaimFrom(7), 0);
}

// --- end-to-end counters against injected plans ---

constexpr int64_t kLeaseTimeoutUs = 120000;

class FaultRecoveryStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { bundle_ = MakeSmallBundle(600, 5); }

  searchlight::QuerySpec RelaxQuery() const {
    TestQueryParams p;
    p.avg_bounds = Interval(228, 250);
    p.k = 6;
    return MakeTestQuery(bundle_, p);
  }

  testutil::SmallBundle bundle_;
};

// One instance crashes at a shard pickup while two paced peers hold their
// first shards: exactly one instance is lost and exactly its one leased
// shard is requeued. No replay lease was involved, so replays_reclaimed
// must stay zero — matching the plan is also matching its absences.
TEST_F(FaultRecoveryStatsTest, PickupCrashCountsOneLossOneRequeue) {
  const searchlight::QuerySpec query = RelaxQuery();
  RefineOptions base;
  base.num_instances = 3;
  base.shards_per_instance = 8;
  base.lease_timeout_us = kLeaseTimeoutUs;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  // Pace the peers so instance 1 is guaranteed to reach its pickup (the
  // tiny pool can otherwise drain before its thread starts).
  plan.Stall(0, FaultSite::kShardPickup, 0, 20000)
      .Stall(2, FaultSite::kShardPickup, 0, 20000)
      .Crash(1, FaultSite::kShardPickup, 0);
  RefineOptions options = base;
  options.fault_plan = &plan;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());

  const RunStats& stats = run.value().stats;
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.instances_lost, 1);
  EXPECT_EQ(stats.shards_requeued, 1);
  EXPECT_EQ(stats.replays_reclaimed, 0);
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
}

// Stall events pause a thread but the instance keeps heartbeating: no
// loss, no requeue, no reclaim — and the results are untouched.
TEST_F(FaultRecoveryStatsTest, StallRecoversWithoutRequeue) {
  const searchlight::QuerySpec query = RelaxQuery();
  RefineOptions base;
  base.num_instances = 3;
  base.shards_per_instance = 8;
  base.lease_timeout_us = kLeaseTimeoutUs;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  plan.Stall(0, FaultSite::kShardPickup, 0, 20000)
      .Stall(1, FaultSite::kFailRecord, 3, 20000)
      .Stall(2, FaultSite::kCandidateValidate, 0, 20000);
  RefineOptions options = base;
  options.fault_plan = &plan;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());

  const RunStats& stats = run.value().stats;
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.instances_lost, 0);
  EXPECT_EQ(stats.shards_requeued, 0);
  EXPECT_EQ(stats.replays_reclaimed, 0);
  EXPECT_EQ(stats.candidates_revalidated, 0);
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
}

// A persistently slow straggler (kSlow sleeps on every pickup) outlives
// its sluggishness: as long as heartbeats flow, slowness is never failure.
TEST_F(FaultRecoveryStatsTest, SlowStragglerIsNotDeclaredDead) {
  const searchlight::QuerySpec query = RelaxQuery();
  RefineOptions base;
  base.num_instances = 2;
  base.shards_per_instance = 4;
  base.lease_timeout_us = kLeaseTimeoutUs;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  plan.Slow(1, FaultSite::kShardPickup, 0, 3000);
  RefineOptions options = base;
  options.fault_plan = &plan;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());

  const RunStats& stats = run.value().stats;
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.instances_lost, 0);
  EXPECT_EQ(stats.shards_requeued, 0);
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
}

// A validator crash stashes its in-flight candidate before dying; the
// survivor re-validates it (and anything still queued) from the orphan
// depot, which the candidates_revalidated counter records. The query is
// chosen so *every* shard emits candidates (all windows satisfy all
// constraints), making the victim's first validate event — and thus the
// planted crash — independent of which shards it happens to steal.
TEST_F(FaultRecoveryStatsTest, ValidatorCrashRevalidatesOrphans) {
  TestQueryParams p;
  p.avg_bounds = Interval(50, 250);  // every window qualifies
  p.contrast_min = -1e6;
  p.k = 5;
  const searchlight::QuerySpec query = MakeTestQuery(bundle_, p);

  RefineOptions base;
  base.num_instances = 2;
  base.shards_per_instance = 8;
  base.constrain = ConstrainMode::kRank;
  base.lease_timeout_us = 250000;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());

  FaultPlan plan;
  // A long first-pickup stall on the peer guarantees the victim steals
  // shards (and hence validates candidates) before the pool can drain.
  plan.Stall(0, FaultSite::kShardPickup, 0, 100000)
      .Crash(1, FaultSite::kCandidateValidate, 0);
  RefineOptions options = base;
  options.fault_plan = &plan;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());

  const RunStats& stats = run.value().stats;
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.instances_lost, 1);
  EXPECT_GE(stats.candidates_revalidated, 1);
  EXPECT_EQ(Fingerprint(run.value().results),
            Fingerprint(reference.value().results));
}

// Crashing at a fail-record event during the replay phase abandons the
// replay lease, and the detector must re-pool it: whenever a fail-record
// crash fires with no shard in flight, the instance was replaying a
// leased fail, so replays_reclaimed has to account for it. (Which phase a
// given index lands in depends on scheduling; the implication — and the
// result set — must hold either way.)
TEST_F(FaultRecoveryStatsTest, ReplayPhaseCrashReclaimsLease) {
  const searchlight::QuerySpec query = RelaxQuery();
  RefineOptions base;
  base.num_instances = 2;
  base.shards_per_instance = 8;
  base.lease_timeout_us = kLeaseTimeoutUs;
  const auto reference = ExecuteQuery(query, base);
  ASSERT_TRUE(reference.ok());
  const std::string want = Fingerprint(reference.value().results);

  int64_t fired = 0;
  for (const int64_t at : {10, 20, 40}) {
    FaultPlan plan;
    plan.Crash(1, FaultSite::kFailRecord, at);
    RefineOptions options = base;
    options.fault_plan = &plan;
    const auto run = ExecuteQuery(query, options);
    ASSERT_TRUE(run.ok()) << "at=" << at;
    const RunStats& stats = run.value().stats;
    EXPECT_TRUE(stats.completed) << "at=" << at;
    EXPECT_EQ(Fingerprint(run.value().results), want) << "at=" << at;
    fired += stats.instances_lost;
    if (stats.instances_lost == 1 && stats.shards_requeued == 0) {
      // No shard leased at crash time => the fail-record event came from
      // replaying, with a registry lease in hand.
      EXPECT_GE(stats.replays_reclaimed, 1) << "at=" << at;
    }
  }
  // The plan must not be a no-op across the whole ladder.
  EXPECT_GE(fired, 1);
}

// Faults on instance ids outside the cluster never fire and never count.
TEST_F(FaultRecoveryStatsTest, OutOfRangeInstanceIsInert) {
  const searchlight::QuerySpec query = RelaxQuery();
  FaultPlan plan;
  plan.Crash(5, FaultSite::kShardPickup, 0);
  RefineOptions options;
  options.num_instances = 2;
  options.shards_per_instance = 4;
  options.fault_plan = &plan;
  options.lease_timeout_us = kLeaseTimeoutUs;
  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().stats.completed);
  EXPECT_EQ(run.value().stats.instances_lost, 0);
  EXPECT_EQ(run.value().stats.shards_requeued, 0);
}

}  // namespace
}  // namespace dqr::core
