// The PR-CI fuzz slice: a short oracle-differential campaign (label
// `fuzz`, run via `ctest -L fuzz`). Small enough for every PR; the
// nightly CI job runs the same campaign two orders of magnitude longer
// with a date-derived seed.

#include <gtest/gtest.h>

#include "testing/harness.h"

namespace dqr::fuzz {
namespace {

TEST(FuzzSmokeTest, ShortCampaignIsClean) {
  FuzzOptions options;
  options.start_seed = 1;
  options.num_seeds = 12;
  options.configs_per_seed = 3;
  options.time_budget_ms = 30000;
  const FuzzReport report = RunFuzz(options);
  EXPECT_GT(report.cases_run, 0);
  EXPECT_EQ(report.mismatches, 0) << "reproducers:\n"
                                  << (report.repro_lines.empty()
                                          ? ""
                                          : report.repro_lines[0]);
  EXPECT_EQ(report.errors, 0);
}

// The smoke slice also proves the harness would notice a wrong answer —
// a fuzzer that cannot fail is worse than no fuzzer.
TEST(FuzzSmokeTest, CampaignDetectsAPlantedBug) {
  FuzzOptions options;
  options.start_seed = 1;
  options.num_seeds = 3;
  options.configs_per_seed = 3;
  options.inject_bug = InjectedBug::kDropLast;
  const FuzzReport report = RunFuzz(options);
  EXPECT_GT(report.mismatches, 0);
  EXPECT_FALSE(report.repro_lines.empty());
}

}  // namespace
}  // namespace dqr::fuzz
