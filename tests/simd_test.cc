#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dqr::simd {
namespace {

// Random doubles with the edge shapes the synopsis planes can produce:
// negatives, exact duplicates, and both zero signs (the kernels' only
// tolerated tie-break divergence, which compares equal under ==).
std::vector<double> MakeInput(Rng& rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Uniform(-100, 100);
  if (n >= 3) {
    v[static_cast<size_t>(n / 3)] = 0.0;
    v[static_cast<size_t>(2 * n / 3)] = -0.0;
    v[static_cast<size_t>(n - 1)] = v[0];
  }
  return v;
}

TEST(SimdTest, OverrideControlsDispatch) {
  EXPECT_FALSE(KernelName(ActiveKernel()).empty());
  EXPECT_FALSE(KernelName(DetectedKernel()).empty());
  {
    ScopedSimdOverride off(false);
    EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  }
  {
    ScopedSimdOverride on(true);
    EXPECT_EQ(ActiveKernel(), DetectedKernel());
  }
}

TEST(SimdTest, ScalarKernelsMatchStdFolds) {
  Rng rng(41);
  for (int64_t n = 1; n <= 67; ++n) {
    const std::vector<double> v = MakeInput(rng, n);
    const std::vector<double> w = MakeInput(rng, n);
    EXPECT_EQ(MinReduceScalar(v.data(), n),
              *std::min_element(v.begin(), v.end()));
    EXPECT_EQ(MaxReduceScalar(v.data(), n),
              *std::max_element(v.begin(), v.end()));
    double mn = 0.0, mx = 0.0;
    MinMaxReduceScalar(v.data(), w.data(), n, &mn, &mx);
    EXPECT_EQ(mn, *std::min_element(v.begin(), v.end()));
    EXPECT_EQ(mx, *std::max_element(w.begin(), w.end()));
  }
}

// The dispatch target of this CPU must agree with the scalar kernels on
// every length through several vector widths (tails of 0..width-1
// lanes), element for element under ==.
TEST(SimdTest, DetectedKernelAgreesWithScalar) {
  const Kernel kernel = DetectedKernel();
  if (kernel == Kernel::kScalar) {
    GTEST_SKIP() << "no SIMD extension on this CPU";
  }
  Rng rng(43);
  for (int64_t n = 1; n <= 130; ++n) {
    const std::vector<double> v = MakeInput(rng, n);
    const std::vector<double> w = MakeInput(rng, n);
    double mn = 0.0, mx = 0.0;
    double smn = 0.0, smx = 0.0;
    MinMaxReduceScalar(v.data(), w.data(), n, &smn, &smx);
    switch (kernel) {
#if defined(__x86_64__) || defined(_M_X64)
      case Kernel::kAvx2:
        EXPECT_EQ(MinReduceAvx2(v.data(), n),
                  MinReduceScalar(v.data(), n));
        EXPECT_EQ(MaxReduceAvx2(v.data(), n),
                  MaxReduceScalar(v.data(), n));
        MinMaxReduceAvx2(v.data(), w.data(), n, &mn, &mx);
        break;
#endif
#if defined(__aarch64__)
      case Kernel::kNeon:
        EXPECT_EQ(MinReduceNeon(v.data(), n),
                  MinReduceScalar(v.data(), n));
        EXPECT_EQ(MaxReduceNeon(v.data(), n),
                  MaxReduceScalar(v.data(), n));
        MinMaxReduceNeon(v.data(), w.data(), n, &mn, &mx);
        break;
#endif
      default:
        FAIL() << "unexpected kernel " << KernelName(kernel);
    }
    EXPECT_EQ(mn, smn) << "n=" << n;
    EXPECT_EQ(mx, smx) << "n=" << n;
  }
}

TEST(SimdTest, DispatchedReductionsAreOverrideInvariant) {
  Rng rng(47);
  for (const int64_t n : {1, 2, 3, 7, 16, 33, 128}) {
    const std::vector<double> v = MakeInput(rng, n);
    const std::vector<double> w = MakeInput(rng, n);
    double results[2][4];
    for (int pass = 0; pass < 2; ++pass) {
      ScopedSimdOverride guard(pass == 1);
      results[pass][0] = MinReduce(v.data(), n);
      results[pass][1] = MaxReduce(v.data(), n);
      MinMaxReduce(v.data(), w.data(), n, &results[pass][2],
                   &results[pass][3]);
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(results[0][i], results[1][i]) << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace dqr::simd
