// Randomized end-to-end stress: random small data sets and random query
// bounds, checked against exhaustive enumeration for both refinement
// directions. Broader than the fixed-fixture suites — this sweeps the
// estimator and replay machinery across many data/bound geometries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/refiner.h"
#include "refiner_test_util.h"

namespace dqr::core {
namespace {

using testutil::BruteForceAll;
using testutil::ExactOnly;
using testutil::MakeSmallBundle;
using testutil::MakeTestQuery;
using testutil::Points;
using testutil::TestQueryParams;

class RefinerStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefinerStressTest, RandomQueriesMatchBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 4; ++iter) {
    const auto bundle =
        MakeSmallBundle(/*n=*/400 + 50 * iter, /*seed=*/rng.NextUint64());

    TestQueryParams p;
    const double lo = rng.Uniform(100, 160);
    p.avg_bounds = Interval(lo, lo + rng.Uniform(20, 90));
    p.contrast_min = rng.Uniform(15, 75);
    p.k = rng.UniformInt(1, 8);
    p.len_lo = rng.UniformInt(2, 5);
    p.len_hi = p.len_lo + rng.UniformInt(1, 6);
    p.nbhd = rng.UniformInt(3, 8);
    const searchlight::QuerySpec query = MakeTestQuery(bundle, p);

    RefineOptions options;
    options.num_instances = static_cast<int>(rng.UniformInt(1, 3));
    options.constrain = ConstrainMode::kRank;

    const auto all = BruteForceAll(query, options.alpha);
    const auto exact = ExactOnly(all);
    const auto run = ExecuteQuery(query, options);
    ASSERT_TRUE(run.ok());
    const auto& results = run.value().results;

    if (exact.size() >= static_cast<size_t>(p.k)) {
      // Constraining: top-k by (rk desc, point).
      auto expected = exact;
      std::sort(expected.begin(), expected.end(),
                [](const Solution& a, const Solution& b) {
                  if (a.rk != b.rk) return a.rk > b.rk;
                  return a.point < b.point;
                });
      expected.resize(static_cast<size_t>(p.k));
      ASSERT_EQ(Points(results), Points(expected))
          << "constraining mismatch, seed=" << GetParam()
          << " iter=" << iter << " exact=" << exact.size();
    } else {
      // Relaxation: best-k by (rp, point) among feasible.
      const size_t expect_n =
          std::min(all.size(), static_cast<size_t>(p.k));
      ASSERT_EQ(results.size(), expect_n)
          << "relaxation size mismatch, seed=" << GetParam()
          << " iter=" << iter;
      for (size_t i = 0; i < expect_n; ++i) {
        ASSERT_EQ(results[i].point, all[i].point)
            << "relaxation mismatch at rank " << i
            << ", seed=" << GetParam() << " iter=" << iter;
        ASSERT_NEAR(results[i].rp, all[i].rp, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinerStressTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace dqr::core
