// Server-differential harness (the headline test of the dqr_serve front
// end): seeded generator workloads are shipped to a loopback server as
// text-IR QUERY frames and the streamed FINAL answer must be
// byte-identical — same canonical body, same fingerprint — to a direct
// in-process run of the same query, across pool widths {2, 8} and
// concurrent client counts {1, 4}. The streamed event sequence is also
// checked for protocol shape (ACCEPTED, then phases in order) and bound
// monotonicity (MRP non-increasing, MRK non-decreasing), and cached
// resubmission must produce an exact hit with the identical answer.

#include <gtest/gtest.h>

#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "exec/engine_session.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "testing/generator.h"

namespace dqr::serve {
namespace {

fuzz::FuzzMode ModeFor(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return fuzz::FuzzMode::kSkyline;
    case 1:
      return fuzz::FuzzMode::kRelax;
    default:
      return fuzz::FuzzMode::kConstrain;
  }
}

// The QUERY frame a workload maps to: semantic knobs as attributes, the
// text IR as the body. Engine knobs are left at server defaults, which
// match the direct leg's EngineConfig defaults.
Frame QueryFrameFor(const std::string& id, const std::string& dataset,
                    const fuzz::Workload& w, bool cached) {
  Frame q;
  q.type = frame::kQuery;
  q.Set("id", id);
  q.Set("dataset", dataset);
  q.Set("alpha", w.alpha);
  q.Set("constrain", w.constrain == core::ConstrainMode::kNone ? "none"
                     : w.constrain == core::ConstrainMode::kRank
                         ? "rank"
                         : "skyline");
  if (!w.result_spacing.empty()) {
    std::string spacing;
    for (int64_t s : w.result_spacing) {
      if (!spacing.empty()) spacing += ',';
      spacing += std::to_string(s);
    }
    q.Set("spacing", spacing);
    q.Set("divpool", w.diversity_pool_factor);
  }
  if (cached) q.Set("cached", std::string("1"));
  q.body = w.query_text;
  return q;
}

// The direct leg: the exact in-process execution the server performs for
// a default-attribute QUERY frame.
std::string DirectCanonical(const fuzz::Workload& w) {
  core::FaultPlan plan;
  const core::RefineOptions options =
      fuzz::EngineConfig{}.ToOptions(w, &plan);
  Result<core::RunResult> run = core::ExecuteQuery(w.query, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (!run.ok()) return "<direct leg failed>";
  EXPECT_TRUE(run.value().stats.completed);
  return core::Canonicalize(run.value().results);
}

// Protocol-shape and bound-monotonicity checks over one query's streamed
// frames.
void CheckStream(const QueryRun& run, const std::string& id) {
  ASSERT_FALSE(run.events.empty()) << id;
  EXPECT_EQ(run.events.front().type, frame::kAccepted) << id;
  int collecting_at = -1;
  int constraining_at = -1;
  double last_mrp = std::numeric_limits<double>::infinity();
  double last_mrk = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < run.events.size(); ++i) {
    const Frame& f = run.events[i];
    ASSERT_NE(f.Get("id"), nullptr);
    EXPECT_EQ(*f.Get("id"), id);
    if (f.type == frame::kAccepted) {
      EXPECT_EQ(i, 0u) << id;
    } else if (f.type == frame::kPhase) {
      ASSERT_NE(f.Get("phase"), nullptr);
      if (*f.Get("phase") == "collecting") {
        collecting_at = static_cast<int>(i);
      } else {
        ASSERT_EQ(*f.Get("phase"), "constraining");
        constraining_at = static_cast<int>(i);
      }
    } else if (f.type == frame::kBound) {
      ASSERT_NE(f.Get("bound"), nullptr);
      Result<double> value = f.GetDouble("value", 0.0);
      ASSERT_TRUE(value.ok());
      if (*f.Get("bound") == "mrp") {
        EXPECT_LE(value.value(), last_mrp) << id << " event " << i;
        last_mrp = value.value();
      } else {
        ASSERT_EQ(*f.Get("bound"), "mrk");
        EXPECT_GE(value.value(), last_mrk) << id << " event " << i;
        last_mrk = value.value();
      }
    } else {
      ASSERT_EQ(f.type, frame::kResult) << id << " event " << i;
      EXPECT_FALSE(f.body.empty());
    }
  }
  // The admission phase always fires once, before any constraining flip.
  ASSERT_GE(collecting_at, 0) << id;
  if (constraining_at >= 0) {
    EXPECT_LT(collecting_at, constraining_at);
  }
}

struct Expected {
  fuzz::Workload workload;
  std::string canonical;
};

// The matrix cell: `clients` concurrent connections, each running every
// seeded workload against `server`, all answers checked byte-for-byte
// against the precomputed direct leg.
void RunClients(Server& server, const std::vector<Expected>& expected,
                int clients) {
  std::vector<std::thread> threads;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const auto record = [&](const std::string& what) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back(what);
      };
      Client client;
      Status st = client.Connect(server.port());
      if (st.ok()) st = client.Hello("client" + std::to_string(t));
      if (!st.ok()) {
        record("connect: " + st.ToString());
        return;
      }
      for (size_t i = 0; i < expected.size(); ++i) {
        const std::string id =
            "c" + std::to_string(t) + "q" + std::to_string(i);
        const std::string dataset =
            "w" + std::to_string(expected[i].workload.seed);
        Result<QueryRun> run = client.RunQuery(
            QueryFrameFor(id, dataset, expected[i].workload, false));
        if (!run.ok()) {
          record(id + ": " + run.status().ToString());
          continue;
        }
        if (run.value().canonical() != expected[i].canonical) {
          record(id + ": canonical body diverged from direct run");
        }
        if (run.value().fingerprint() !=
            core::CanonicalFingerprint(run.value().canonical())) {
          record(id + ": fingerprint does not match body");
        }
        CheckStream(run.value(), id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

TEST(ServeDifferential, StreamedAnswersMatchDirectRunsUnderConcurrency) {
  // Precompute workloads + direct-leg answers once; reused across every
  // (pool width, clients) cell so divergence isolates the serve path.
  std::vector<Expected> expected;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Expected e;
    e.workload = fuzz::MakeWorkload(seed, ModeFor(seed));
    e.canonical = DirectCanonical(e.workload);
    expected.push_back(std::move(e));
  }

  for (const int pool_width : {2, 8}) {
    exec::WorkerPool pool(pool_width);
    exec::TimerWheel wheel;
    exec::EngineSessionOptions session_options;
    session_options.pool = &pool;
    session_options.wheel = &wheel;
    session_options.max_concurrent_queries = 4;
    exec::EngineSession session(session_options);

    ServerOptions options;
    options.session = &session;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    for (const Expected& e : expected) {
      ASSERT_TRUE(server
                      .RegisterDataset("w" + std::to_string(e.workload.seed),
                                       data::DatasetBundle{
                                           e.workload.array,
                                           e.workload.synopsis})
                      .ok());
    }

    for (const int clients : {1, 4}) {
      RunClients(server, expected, clients);
    }

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.queries_failed, 0) << "pool=" << pool_width;
    EXPECT_EQ(stats.queries_completed,
              static_cast<int64_t>((1 + 4) * expected.size()))
        << "pool=" << pool_width;
    server.Stop();
  }
}

TEST(ServeDifferential, CachedResubmissionHitsExactlyWithSameAnswer) {
  const fuzz::Workload w = fuzz::MakeWorkload(2, fuzz::FuzzMode::kRelax);
  const std::string direct = DirectCanonical(w);

  Server server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      server.RegisterDataset("d", data::DatasetBundle{w.array, w.synopsis})
          .ok());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Hello("cachetest").ok());

  Result<QueryRun> first =
      client.RunQuery(QueryFrameFor("q1", "d", w, true));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_NE(first.value().final.Get("outcome"), nullptr);
  EXPECT_EQ(*first.value().final.Get("outcome"), "miss");
  EXPECT_EQ(first.value().canonical(), direct);

  Result<QueryRun> second =
      client.RunQuery(QueryFrameFor("q2", "d", w, true));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_NE(second.value().final.Get("outcome"), nullptr);
  EXPECT_EQ(*second.value().final.Get("outcome"), "exact");
  EXPECT_EQ(second.value().canonical(), direct);
  EXPECT_EQ(second.value().fingerprint(), first.value().fingerprint());

  server.Stop();
}

TEST(ServeDifferential, MetricsAndTraceEndpointsServeCompletedQueries) {
  const fuzz::Workload w = fuzz::MakeWorkload(3, fuzz::FuzzMode::kConstrain);

  Server server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      server.RegisterDataset("d", data::DatasetBundle{w.array, w.synopsis})
          .ok());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Hello("obs").ok());

  Frame query = QueryFrameFor("traced", "d", w, false);
  query.Set("trace", std::string("1"));
  Result<QueryRun> run = client.RunQuery(query);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Aggregate exposition carries engine, serve, tenant and session
  // samples with the dqr_ prefix.
  Result<std::string> metrics = client.FetchMetrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.value().find("dqr_serve_queries_completed"),
            std::string::npos);
  EXPECT_NE(metrics.value().find("tenant=\"obs\""), std::string::npos);
  EXPECT_NE(metrics.value().find("dqr_serve_session_queries_admitted"),
            std::string::npos);

  // Per-query metrics and the Chrome trace are fetchable by id.
  Result<std::string> per_query = client.FetchMetrics("traced");
  ASSERT_TRUE(per_query.ok()) << per_query.status().ToString();
  EXPECT_NE(per_query.value().find("query=\"traced\""), std::string::npos);
  Result<std::string> trace = client.FetchTrace("traced");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_NE(trace.value().find("traceEvents"), std::string::npos);

  // Precise errors for unknown ids and untraced queries.
  Result<std::string> missing = client.FetchTrace("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find(
                "no completed query with id 'nope'"),
            std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace dqr::serve
