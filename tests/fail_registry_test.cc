#include "core/fail_registry.h"

#include <gtest/gtest.h>

#include <thread>

namespace dqr::core {
namespace {

FailRecord Rec(double brp, int64_t x = 0) {
  FailRecord r;
  r.box = {cp::IntDomain(x, x + 1)};
  r.estimates = {Interval(0, 1)};
  r.evaluated = {1};
  r.violated = {0};
  r.brp = brp;
  return r;
}

TEST(FailRegistryTest, BestFirstPopsLowestBrp) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.5), 1.0);
  reg.Record(Rec(0.1), 1.0);
  reg.Record(Rec(0.3), 1.0);
  EXPECT_DOUBLE_EQ(reg.Pop(1.0)->brp, 0.1);
  EXPECT_DOUBLE_EQ(reg.Pop(1.0)->brp, 0.3);
  EXPECT_DOUBLE_EQ(reg.Pop(1.0)->brp, 0.5);
  EXPECT_FALSE(reg.Pop(1.0).has_value());
}

TEST(FailRegistryTest, TiesPopInRecordOrder) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.5, 10), 1.0);
  reg.Record(Rec(0.5, 20), 1.0);
  reg.Record(Rec(0.5, 30), 1.0);
  EXPECT_EQ(reg.Pop(1.0)->box[0].lo, 10);
  EXPECT_EQ(reg.Pop(1.0)->box[0].lo, 20);
  EXPECT_EQ(reg.Pop(1.0)->box[0].lo, 30);
}

TEST(FailRegistryTest, FifoPopsInEncounterOrder) {
  FailRegistry reg(ReplayOrder::kFifo, 100);
  reg.Record(Rec(0.5), 1.0);
  reg.Record(Rec(0.1), 1.0);
  EXPECT_DOUBLE_EQ(reg.Pop(1.0)->brp, 0.5);
  EXPECT_DOUBLE_EQ(reg.Pop(1.0)->brp, 0.1);
}

TEST(FailRegistryTest, DiscardsHopelessAtRecordTime) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.9), /*mrp=*/0.5);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.discarded_at_record(), 1);
  EXPECT_EQ(reg.recorded(), 0);
}

TEST(FailRegistryTest, DiscardsStaleAtPopTime) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.4), 1.0);
  reg.Record(Rec(0.8), 1.0);
  // MRP shrank to 0.5 since: the 0.8 fail is now hopeless.
  EXPECT_DOUBLE_EQ(reg.Pop(0.5)->brp, 0.4);
  EXPECT_FALSE(reg.Pop(0.5).has_value());
  EXPECT_EQ(reg.discarded_at_pop(), 1);
}

TEST(FailRegistryTest, EqualBrpSurvivesMrpChecks) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.5), 0.5);  // equal: kept
  EXPECT_TRUE(reg.Pop(0.5).has_value());
}

TEST(FailRegistryTest, CapacityDropsNewcomers) {
  FailRegistry reg(ReplayOrder::kBestFirst, 2);
  reg.Record(Rec(0.1), 1.0);
  reg.Record(Rec(0.2), 1.0);
  reg.Record(Rec(0.3), 1.0);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.dropped_full(), 1);
}

TEST(FailRegistryTest, StatsAndClear) {
  FailRegistry reg(ReplayOrder::kBestFirst, 100);
  reg.Record(Rec(0.1), 1.0);
  reg.Record(Rec(0.2), 1.0);
  EXPECT_EQ(reg.recorded(), 2);
  EXPECT_EQ(reg.peak_size(), 2);
  EXPECT_GT(reg.state_bytes(), 0);
  EXPECT_GE(reg.peak_state_bytes(), reg.state_bytes());
  reg.Clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.state_bytes(), 0);
  EXPECT_EQ(reg.peak_size(), 2);  // peak persists
}

TEST(FailRegistryTest, MemoryBytesCountsComponents) {
  FailRecord r = Rec(0.5);
  const int64_t base = r.MemoryBytes();
  EXPECT_GT(base, 0);
  r.estimates.push_back(Interval(0, 1));
  EXPECT_GT(r.MemoryBytes(), base);
}

TEST(FailRegistryTest, ConcurrentRecordAndPop) {
  FailRegistry reg(ReplayOrder::kBestFirst, 1 << 20);
  constexpr int kEach = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kEach; ++i) {
      reg.Record(Rec(static_cast<double>(i % 97) / 100.0, i), 1.0);
    }
  });
  int popped = 0;
  std::thread consumer([&] {
    // Keep popping until the producer is done and the registry drains.
    while (popped < kEach) {
      if (reg.Pop(1.0).has_value()) ++popped;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(popped, kEach);
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace dqr::core
