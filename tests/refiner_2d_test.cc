// End-to-end refinement over the 2-D substrate: the framework is
// dimension-agnostic, so the relaxation and constraining guarantees must
// hold verbatim for rectangle queries with four decision variables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bundle.h"
#include "core/model_builders.h"
#include "core/refiner.h"
#include "data/grid_synthetic.h"

namespace dqr::core {
namespace {

// Exhaustive evaluation of every (y, x, h, w) assignment.
std::vector<Solution> BruteForce2d(const searchlight::QuerySpec& query,
                                   double alpha) {
  const PenaltyModel penalty = BuildPenaltyModel(query, alpha).value();
  const RankModel rank = BuildRankModel(query).value();
  ConstraintBundle bundle(query);

  std::vector<Solution> out;
  std::vector<int64_t> point(4);
  for (point[0] = query.domains[0].lo; point[0] <= query.domains[0].hi;
       ++point[0]) {
    for (point[1] = query.domains[1].lo; point[1] <= query.domains[1].hi;
         ++point[1]) {
      for (point[2] = query.domains[2].lo;
           point[2] <= query.domains[2].hi; ++point[2]) {
        for (point[3] = query.domains[3].lo;
             point[3] <= query.domains[3].hi; ++point[3]) {
          Solution s;
          s.point = point;
          s.values = bundle.EvaluateAll(point);
          s.rp = penalty.Penalty(s.values);
          if (std::isinf(s.rp)) continue;
          s.rk = rank.Rank(s.values);
          out.push_back(std::move(s));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rp != b.rp) return a.rp < b.rp;
              return a.point < b.point;
            });
  return out;
}

TEST(Refiner2dTest, RelaxationGuaranteeHoldsInTwoDimensions) {
  const auto bundle = data::MakeGridDataset(48, 64, 17).value();
  data::GridQueryTuning tuning;
  tuning.k = 5;
  tuning.extent_lo = 2;
  tuning.extent_hi = 4;
  tuning.selective = false;  // wide ranges: plenty of relaxed candidates
  const searchlight::QuerySpec query =
      data::MakeGridQuery(bundle, tuning);

  RefineOptions options;
  const auto all = BruteForce2d(query, options.alpha);
  ASSERT_GE(all.size(), 5u);

  const auto run = ExecuteQuery(query, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const auto& results = run.value().results;
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].point, all[i].point) << "rank " << i;
    EXPECT_NEAR(results[i].rp, all[i].rp, 1e-9);
  }
}

TEST(Refiner2dTest, ConstrainingGuaranteeHoldsInTwoDimensions) {
  const auto bundle = data::MakeGridDataset(48, 64, 23).value();
  data::GridQueryTuning tuning;
  tuning.k = 4;
  tuning.extent_lo = 2;
  tuning.extent_hi = 4;
  tuning.selective = false;
  tuning.relax_fraction = 1.0;  // maximally relaxed: many exact results
  const searchlight::QuerySpec query =
      data::MakeGridQuery(bundle, tuning);

  RefineOptions options;
  options.constrain = ConstrainMode::kRank;

  auto all = BruteForce2d(query, options.alpha);
  std::vector<Solution> exact;
  for (auto& s : all) {
    if (s.rp == 0.0) exact.push_back(std::move(s));
  }
  ASSERT_GT(exact.size(), 4u);
  std::sort(exact.begin(), exact.end(),
            [](const Solution& a, const Solution& b) {
              if (a.rk != b.rk) return a.rk > b.rk;
              return a.point < b.point;
            });
  exact.resize(4);

  const auto run = ExecuteQuery(query, options).value();
  ASSERT_EQ(run.results.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(run.results[i].point, exact[i].point) << "rank " << i;
    EXPECT_NEAR(run.results[i].rk, exact[i].rk, 1e-9);
  }
}

TEST(Refiner2dTest, MultiInstancePartitionsFourVariableSearch) {
  const auto bundle = data::MakeGridDataset(48, 64, 29).value();
  data::GridQueryTuning tuning;
  tuning.k = 5;
  tuning.extent_lo = 2;
  tuning.extent_hi = 4;
  tuning.selective = false;
  const searchlight::QuerySpec query =
      data::MakeGridQuery(bundle, tuning);

  RefineOptions one;
  RefineOptions four;
  four.num_instances = 4;
  const auto run1 = ExecuteQuery(query, one).value();
  const auto run4 = ExecuteQuery(query, four).value();
  ASSERT_EQ(run1.results.size(), run4.results.size());
  for (size_t i = 0; i < run1.results.size(); ++i) {
    EXPECT_EQ(run1.results[i].point, run4.results[i].point);
  }
}

}  // namespace
}  // namespace dqr::core
