#include "synopsis/grid_synopsis.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dqr::synopsis {
namespace {

struct Fixture {
  std::shared_ptr<array::Grid> grid;
  std::shared_ptr<GridSynopsis> synopsis;
};

Fixture MakeFixture(int64_t rows, int64_t cols, uint64_t seed,
                    GridSynopsisOptions options) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(rows * cols));
  for (double& v : data) v = rng.Uniform(50, 250);
  array::GridSchema schema;
  schema.name = "gsyn_test";
  schema.rows = rows;
  schema.cols = cols;
  schema.tile_size = 16;
  Fixture f;
  f.grid = array::Grid::FromData(schema, std::move(data)).value();
  f.synopsis = GridSynopsis::Build(*f.grid, options).value();
  return f;
}

TEST(GridSynopsisTest, BuildRejectsBadOptions) {
  auto f = MakeFixture(32, 32, 1, GridSynopsisOptions{{16, 4}, 64});
  GridSynopsisOptions bad;
  bad.cell_sizes = {};
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
  bad.cell_sizes = {4, 16};
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
  bad.cell_sizes = {16};
  bad.max_cells_per_query = 2;
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
}

// Soundness: every interval query contains the exact aggregate.
class GridSynopsisSoundnessTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridSynopsisSoundnessTest, BoundsContainExactAggregates) {
  auto f = MakeFixture(100, 140, GetParam(),
                       GridSynopsisOptions{{32, 8}, 64});
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 300; ++iter) {
    const int64_t r0 = rng.UniformInt(0, 98);
    const int64_t r1 = rng.UniformInt(r0 + 1, 100);
    const int64_t c0 = rng.UniformInt(0, 138);
    const int64_t c1 = rng.UniformInt(c0 + 1, 140);
    const array::WindowAggregates exact =
        f.grid->AggregateRect(r0, r1, c0, c1);

    const Interval value = f.synopsis->ValueBounds(r0, r1, c0, c1);
    EXPECT_LE(value.lo, exact.min);
    EXPECT_GE(value.hi, exact.max);

    const Interval sum = f.synopsis->SumBounds(r0, r1, c0, c1);
    EXPECT_LE(sum.lo, exact.sum + 1e-6) << r0 << " " << r1 << " " << c0
                                        << " " << c1;
    EXPECT_GE(sum.hi, exact.sum - 1e-6);

    const Interval avg = f.synopsis->AvgBounds(r0, r1, c0, c1);
    EXPECT_LE(avg.lo, exact.avg() + 1e-9);
    EXPECT_GE(avg.hi, exact.avg() - 1e-9);

    const Interval mx = f.synopsis->MaxBounds(r0, r1, c0, c1);
    EXPECT_LE(mx.lo, exact.max + 1e-9);
    EXPECT_GE(mx.hi, exact.max - 1e-9);

    const Interval mn = f.synopsis->MinBounds(r0, r1, c0, c1);
    EXPECT_LE(mn.lo, exact.min + 1e-9);
    EXPECT_GE(mn.hi, exact.min - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSynopsisSoundnessTest,
                         ::testing::Values(1u, 9u, 77u, 4242u));

TEST(GridSynopsisTest, ExactOnCellAlignedSums) {
  auto f = MakeFixture(64, 64, 3, GridSynopsisOptions{{8}, 256});
  const array::WindowAggregates exact =
      f.grid->AggregateRect(8, 40, 16, 56);
  const Interval sum = f.synopsis->SumBounds(8, 40, 16, 56);
  EXPECT_NEAR(sum.lo, exact.sum, 1e-6);
  EXPECT_NEAR(sum.hi, exact.sum, 1e-6);
}

TEST(GridSynopsisTest, GlobalRangeAndMemory) {
  auto f = MakeFixture(64, 64, 3, GridSynopsisOptions{{32, 8}, 64});
  const array::WindowAggregates all = f.grid->AggregateRect(0, 64, 0, 64);
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().lo, all.min);
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().hi, all.max);
  EXPECT_GT(f.synopsis->MemoryBytes(), 0);
  (void)f.synopsis->ValueBounds(0, 8, 0, 8);
  EXPECT_GT(f.synopsis->queries_served(), 0);
}

}  // namespace
}  // namespace dqr::synopsis
