#include "synopsis/grid_synopsis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace dqr::synopsis {
namespace {

struct Fixture {
  std::shared_ptr<array::Grid> grid;
  std::shared_ptr<GridSynopsis> synopsis;
};

Fixture MakeFixture(int64_t rows, int64_t cols, uint64_t seed,
                    GridSynopsisOptions options) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(rows * cols));
  for (double& v : data) v = rng.Uniform(50, 250);
  array::GridSchema schema;
  schema.name = "gsyn_test";
  schema.rows = rows;
  schema.cols = cols;
  schema.tile_size = 16;
  Fixture f;
  f.grid = array::Grid::FromData(schema, std::move(data)).value();
  f.synopsis = GridSynopsis::Build(*f.grid, options).value();
  return f;
}

TEST(GridSynopsisTest, BuildRejectsBadOptions) {
  auto f = MakeFixture(32, 32, 1, GridSynopsisOptions{{16, 4}, 64});
  GridSynopsisOptions bad;
  bad.cell_sizes = {};
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
  bad.cell_sizes = {4, 16};
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
  bad.cell_sizes = {16};
  bad.max_cells_per_query = 2;
  EXPECT_FALSE(GridSynopsis::Build(*f.grid, bad).ok());
}

// Soundness: every interval query contains the exact aggregate.
class GridSynopsisSoundnessTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridSynopsisSoundnessTest, BoundsContainExactAggregates) {
  auto f = MakeFixture(100, 140, GetParam(),
                       GridSynopsisOptions{{32, 8}, 64});
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 300; ++iter) {
    const int64_t r0 = rng.UniformInt(0, 98);
    const int64_t r1 = rng.UniformInt(r0 + 1, 100);
    const int64_t c0 = rng.UniformInt(0, 138);
    const int64_t c1 = rng.UniformInt(c0 + 1, 140);
    const array::WindowAggregates exact =
        f.grid->AggregateRect(r0, r1, c0, c1);

    const Interval value = f.synopsis->ValueBounds(r0, r1, c0, c1);
    EXPECT_LE(value.lo, exact.min);
    EXPECT_GE(value.hi, exact.max);

    const Interval sum = f.synopsis->SumBounds(r0, r1, c0, c1);
    EXPECT_LE(sum.lo, exact.sum + 1e-6) << r0 << " " << r1 << " " << c0
                                        << " " << c1;
    EXPECT_GE(sum.hi, exact.sum - 1e-6);

    const Interval avg = f.synopsis->AvgBounds(r0, r1, c0, c1);
    EXPECT_LE(avg.lo, exact.avg() + 1e-9);
    EXPECT_GE(avg.hi, exact.avg() - 1e-9);

    const Interval mx = f.synopsis->MaxBounds(r0, r1, c0, c1);
    EXPECT_LE(mx.lo, exact.max + 1e-9);
    EXPECT_GE(mx.hi, exact.max - 1e-9);

    const Interval mn = f.synopsis->MinBounds(r0, r1, c0, c1);
    EXPECT_LE(mn.lo, exact.min + 1e-9);
    EXPECT_GE(mn.hi, exact.min - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSynopsisSoundnessTest,
                         ::testing::Values(1u, 9u, 77u, 4242u));

TEST(GridSynopsisTest, ExactOnCellAlignedSums) {
  auto f = MakeFixture(64, 64, 3, GridSynopsisOptions{{8}, 256});
  const array::WindowAggregates exact =
      f.grid->AggregateRect(8, 40, 16, 56);
  const Interval sum = f.synopsis->SumBounds(8, 40, 16, 56);
  EXPECT_NEAR(sum.lo, exact.sum, 1e-6);
  EXPECT_NEAR(sum.hi, exact.sum, 1e-6);
}

// --- bit-identical replica sweep ---------------------------------------
//
// Per-cell replica of the pre-SoA bounds queries, evaluated over a
// LevelView's planes. PickLevelIndex routes both sides to the same
// level, and Interval::operator== demands bit identity — the sparse
// tables and 1-D fringe/strip tables must reproduce the all-cell scan
// exactly, not just soundly.

using View = GridSynopsis::LevelView;

Interval ReplicaValueBounds(const View& v, int64_t r0, int64_t r1,
                            int64_t c0, int64_t c1) {
  const int64_t cs = v.cell_size;
  const int64_t cc = v.cell_cols;
  const int64_t i0 = r0 / cs, i1 = (r1 - 1) / cs;
  const int64_t j0 = c0 / cs, j1 = (c1 - 1) / cs;
  double mn = v.min[i0 * cc + j0];
  double mx = v.max[i0 * cc + j0];
  for (int64_t i = i0; i <= i1; ++i) {
    for (int64_t j = j0; j <= j1; ++j) {
      mn = std::min(mn, v.min[i * cc + j]);
      mx = std::max(mx, v.max[i * cc + j]);
    }
  }
  return Interval(mn, mx);
}

Interval ReplicaMaxBounds(const View& v, int64_t rows, int64_t cols,
                          int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  const int64_t cs = v.cell_size;
  const int64_t cc = v.cell_cols;
  const int64_t i0 = r0 / cs, i1 = (r1 - 1) / cs;
  const int64_t j0 = c0 / cs, j1 = (c1 - 1) / cs;
  double upper = v.max[i0 * cc + j0];
  double floor = v.min[i0 * cc + j0];
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t i = i0; i <= i1; ++i) {
    for (int64_t j = j0; j <= j1; ++j) {
      upper = std::max(upper, v.max[i * cc + j]);
      floor = std::max(floor, v.min[i * cc + j]);
      const int64_t cr0 = i * cs, cr1 = std::min(rows, cr0 + cs);
      const int64_t cc0 = j * cs, cc1 = std::min(cols, cc0 + cs);
      if (r0 <= cr0 && cr1 <= r1 && c0 <= cc0 && cc1 <= c1) {
        witness =
            have_contained ? std::max(witness, v.max[i * cc + j])
                           : v.max[i * cc + j];
        have_contained = true;
      }
    }
  }
  return Interval(have_contained ? std::max(witness, floor) : floor,
                  upper);
}

Interval ReplicaMinBounds(const View& v, int64_t rows, int64_t cols,
                          int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  const int64_t cs = v.cell_size;
  const int64_t cc = v.cell_cols;
  const int64_t i0 = r0 / cs, i1 = (r1 - 1) / cs;
  const int64_t j0 = c0 / cs, j1 = (c1 - 1) / cs;
  double lower = v.min[i0 * cc + j0];
  double ceil = v.max[i0 * cc + j0];
  double witness = 0.0;
  bool have_contained = false;
  for (int64_t i = i0; i <= i1; ++i) {
    for (int64_t j = j0; j <= j1; ++j) {
      lower = std::min(lower, v.min[i * cc + j]);
      ceil = std::min(ceil, v.max[i * cc + j]);
      const int64_t cr0 = i * cs, cr1 = std::min(rows, cr0 + cs);
      const int64_t cc0 = j * cs, cc1 = std::min(cols, cc0 + cs);
      if (r0 <= cr0 && cr1 <= r1 && c0 <= cc0 && cc1 <= c1) {
        witness =
            have_contained ? std::min(witness, v.min[i * cc + j])
                           : v.min[i * cc + j];
        have_contained = true;
      }
    }
  }
  return Interval(lower,
                  have_contained ? std::min(witness, ceil) : ceil);
}

void ExpectBitIdentical(const Fixture& f, int64_t r0, int64_t r1,
                        int64_t c0, int64_t c1) {
  const int64_t rows = f.grid->rows();
  const int64_t cols = f.grid->cols();
  const View v =
      f.synopsis->level_view(f.synopsis->PickLevelIndex(r0, r1, c0, c1));
  const auto label = [&] {
    return ::testing::Message() << "[" << r0 << "," << r1 << ")x[" << c0
                                << "," << c1 << ") cs=" << v.cell_size;
  };
  EXPECT_TRUE(f.synopsis->ValueBounds(r0, r1, c0, c1) ==
              ReplicaValueBounds(v, r0, r1, c0, c1))
      << label();
  EXPECT_TRUE(f.synopsis->MaxBounds(r0, r1, c0, c1) ==
              ReplicaMaxBounds(v, rows, cols, r0, r1, c0, c1))
      << label();
  EXPECT_TRUE(f.synopsis->MinBounds(r0, r1, c0, c1) ==
              ReplicaMinBounds(v, rows, cols, r0, r1, c0, c1))
      << label();
}

// Every span shape — thin 1 x N / N x 1 strips, squares, full-grid — at
// corner / far-edge / interior offsets, so spans cross every level
// threshold of the budget; plus a randomized sweep.
void SweepAgainstReplica(const Fixture& f, uint64_t seed) {
  const int64_t rows = f.grid->rows();
  const int64_t cols = f.grid->cols();
  const int64_t row_spans[] = {1, 3, 8, 17, 33, 64, rows};
  const int64_t col_spans[] = {1, 6, 16, 39, 70, cols};
  for (const int64_t rs : row_spans) {
    for (const int64_t csp : col_spans) {
      ExpectBitIdentical(f, 0, rs, 0, csp);
      ExpectBitIdentical(f, rows - rs, rows, cols - csp, cols);
      ExpectBitIdentical(f, (rows - rs) / 2, (rows - rs) / 2 + rs,
                         (cols - csp) / 2, (cols - csp) / 2 + csp);
    }
  }
  Rng rng(seed);
  for (int iter = 0; iter < 300; ++iter) {
    const int64_t r0 = rng.UniformInt(0, rows - 1);
    const int64_t r1 = rng.UniformInt(r0 + 1, rows);
    const int64_t c0 = rng.UniformInt(0, cols - 1);
    const int64_t c1 = rng.UniformInt(c0 + 1, cols);
    ExpectBitIdentical(f, r0, r1, c0, c1);
  }
}

TEST(GridSynopsisTest, BitIdenticalToReplicaPowerOfTwoCells) {
  SweepAgainstReplica(
      MakeFixture(100, 140, 11, GridSynopsisOptions{{32, 8}, 64}), 0xB17);
}

TEST(GridSynopsisTest, BitIdenticalToReplicaNonPowerOfTwoCells) {
  // 36 / 6 are not powers of two, so the query path takes the division
  // fallback instead of cell_shift.
  SweepAgainstReplica(
      MakeFixture(100, 140, 13, GridSynopsisOptions{{36, 6}, 64}), 0xB18);
}

TEST(GridSynopsisTest, GlobalRangeAndMemory) {
  auto f = MakeFixture(64, 64, 3, GridSynopsisOptions{{32, 8}, 64});
  const array::WindowAggregates all = f.grid->AggregateRect(0, 64, 0, 64);
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().lo, all.min);
  EXPECT_DOUBLE_EQ(f.synopsis->global_value_range().hi, all.max);
  EXPECT_GT(f.synopsis->MemoryBytes(), 0);
  (void)f.synopsis->ValueBounds(0, 8, 0, 8);
  EXPECT_GT(f.synopsis->queries_served(), 0);
}

}  // namespace
}  // namespace dqr::synopsis
