// LatencyHistogram edge cases: empty and single-sample behavior, bucket
// boundary mapping, count saturation, merge identity against a single
// histogram fed the combined stream (the cross-thread contract: each
// thread records into its own copy, operator+= folds them), and quantile
// monotonicity under merge. Plus the sparse codec round trip the profile
// JSON depends on.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/histogram.h"

namespace dqr::obs {
namespace {

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum_ns(), 0);
  EXPECT_EQ(h.max_ns(), 0);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0);
  EXPECT_EQ(FormatLatencySummary(h), "empty");
}

TEST(LatencyHistogramTest, SingleSampleOwnsEveryQuantile) {
  LatencyHistogram h;
  h.Record(12345);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum_ns(), 12345);
  EXPECT_EQ(h.max_ns(), 12345);
  // Every quantile reports the one sample's bucket lower bound, capped by
  // the exact max — within the 1/kSubBuckets relative error contract.
  for (const double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_LE(v, 12345) << "q=" << q;
    EXPECT_GE(v, 12345 - 12345 / LatencyHistogram::kSubBuckets)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, NegativeAndZeroClampIntoBucketZero) {
  LatencyHistogram h;
  h.Record(-5);
  h.Record(0);
  h.RecordSeconds(-1.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket_count(0), 3);
  EXPECT_EQ(h.max_ns(), 0);
}

TEST(LatencyHistogramTest, BucketBoundariesMapExactly) {
  // Small values are exact: bucket index == value.
  for (int64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  // Every bucket's lower bound maps back to that bucket, and the value
  // one below it maps to the previous bucket — the boundary is tight.
  for (int i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo - 1), i - 1)
        << "bucket " << i;
  }
  // The saturation cap: anything at or above 2^kMaxExponent lands in the
  // last bucket.
  const int64_t cap = int64_t{1} << LatencyHistogram::kMaxExponent;
  EXPECT_EQ(LatencyHistogram::BucketIndex(cap),
            LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(kInt64Max),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, CountsSaturateInsteadOfWrapping) {
  LatencyHistogram h;
  h.RecordMany(100, kInt64Max);
  h.RecordMany(100, kInt64Max);  // would wrap without saturation
  EXPECT_EQ(h.count(), kInt64Max);
  EXPECT_EQ(h.sum_ns(), kInt64Max);  // 100 * INT64_MAX saturates too
  EXPECT_EQ(h.max_ns(), 100);

  // Merging two saturated histograms stays saturated and well-defined.
  LatencyHistogram other;
  other.RecordMany(200, kInt64Max);
  h += other;
  EXPECT_EQ(h.count(), kInt64Max);
  EXPECT_EQ(h.max_ns(), 200);
  EXPECT_GT(h.ValueAtQuantile(0.5), 0);
}

// Merging per-thread histograms must equal one histogram fed the
// combined stream — buckets are aligned by construction, so the merge is
// exact, not approximate.
TEST(LatencyHistogramTest, CrossThreadMergeEqualsCombinedStream) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<LatencyHistogram> parts(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &parts] {
      uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kPerThread; ++i) {
        // splitmix64 draw, spread across many magnitudes.
        x += 0x9e3779b97f4a7c15ULL;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        parts[static_cast<size_t>(t)].Record(
            static_cast<int64_t>(z % (uint64_t{1} << (8 + z % 32))));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  LatencyHistogram merged;
  LatencyHistogram combined;
  for (const LatencyHistogram& part : parts) {
    merged += part;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      combined.RecordMany(LatencyHistogram::BucketLowerBound(i),
                          part.bucket_count(i));
    }
  }
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(merged.bucket_count(i), combined.bucket_count(i))
        << "bucket " << i;
  }
  // Bucket-identical histograms agree on every quantile's bucket (the
  // reported values may differ only by the exact-max clamp, which stays
  // inside the same bucket).
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(merged.ValueAtQuantile(q)),
              LatencyHistogram::BucketIndex(combined.ValueAtQuantile(q)))
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesMonotoneWithinAndAcrossMerges) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 1; i <= 1000; ++i) a.Record(i * 37);
  for (int i = 1; i <= 1000; ++i) b.Record(i * 9133);

  // Monotone in q for a single histogram.
  int64_t prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t v = a.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }

  // A merge's quantiles are bracketed by its inputs' quantiles, and
  // still monotone in q.
  LatencyHistogram merged = a;
  merged += b;
  prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t v = merged.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
    EXPECT_GE(v, std::min(a.ValueAtQuantile(q), b.ValueAtQuantile(q)))
        << "q=" << q;
    EXPECT_LE(v, std::max(a.ValueAtQuantile(q), b.ValueAtQuantile(q)))
        << "q=" << q;
  }
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.max_ns(), std::max(a.max_ns(), b.max_ns()));
}

TEST(LatencyHistogramTest, CodecRoundTripsExactly) {
  LatencyHistogram h;
  for (int i = 0; i < 257; ++i) h.Record(i * i * 13);
  h.RecordMany(kInt64Max, 3);

  LatencyHistogram back;
  ASSERT_TRUE(DecodeHistogram(EncodeHistogram(h), &back));
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum_ns(), h.sum_ns());
  EXPECT_EQ(back.max_ns(), h.max_ns());
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(back.bucket_count(i), h.bucket_count(i)) << "bucket " << i;
  }

  LatencyHistogram empty_back;
  ASSERT_TRUE(DecodeHistogram(EncodeHistogram(LatencyHistogram{}),
                              &empty_back));
  EXPECT_TRUE(empty_back.empty());

  LatencyHistogram reject;
  EXPECT_FALSE(DecodeHistogram("", &reject));
  EXPECT_FALSE(DecodeHistogram("not-a-histogram", &reject));
  EXPECT_FALSE(DecodeHistogram("1;2", &reject));
  EXPECT_FALSE(DecodeHistogram("1;2;3;99999:1", &reject));
}

TEST(EstimatorAccuracyTest, RecordsAndMerges) {
  EstimatorAccuracy a;
  EXPECT_TRUE(a.empty());
  a.Record(0, 1.0, 3.0, 2.0, 10.0, false);
  a.Record(0, 1.0, 3.0, 5.0, 10.0, true);  // not contained, wasted
  a.Record(2, -1.0, 1.0, 0.0, 0.0, false);  // degenerate range -> 1.0
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.total_samples(), 3);
  EXPECT_EQ(a.level(0).samples, 2);
  EXPECT_EQ(a.level(0).contained, 1);
  EXPECT_EQ(a.level(0).wasted, 1);
  EXPECT_DOUBLE_EQ(a.level(0).width_sum, 0.4);
  EXPECT_DOUBLE_EQ(a.level(2).width_sum, 2.0);

  // Out-of-range levels fold into the edge slots.
  a.Record(-7, 0.0, 1.0, 0.5, 1.0, false);
  EXPECT_EQ(a.level(0).samples, 3);
  a.Record(1000, 0.0, 1.0, 0.5, 1.0, false);
  EXPECT_EQ(a.level(EstimatorAccuracy::kMaxLevels - 1).samples, 1);

  EstimatorAccuracy b;
  b.Record(0, 0.0, 2.0, 1.0, 10.0, false);
  b += a;
  EXPECT_EQ(b.total_samples(), a.total_samples() + 1);
  EXPECT_EQ(b.level(0).samples, 4);
}

TEST(ThreadLatencySinkTest, ScopedInstallAndTimer) {
  EXPECT_EQ(ThreadLatencySink(), nullptr);
  LatencyHistogram sink;
  {
    ScopedLatencySink install(&sink);
    EXPECT_EQ(ThreadLatencySink(), &sink);
    { ScopedSinkTimer timer; }
    {
      ScopedLatencySink inner(nullptr);  // nesting restores on unwind
      EXPECT_EQ(ThreadLatencySink(), nullptr);
      { ScopedSinkTimer timer; }  // no sink: must not record anywhere
    }
    EXPECT_EQ(ThreadLatencySink(), &sink);
  }
  EXPECT_EQ(ThreadLatencySink(), nullptr);
  EXPECT_EQ(sink.count(), 1);
}

}  // namespace
}  // namespace dqr::obs
