#include "cache/bounds_memo.h"

#include <algorithm>

#include "common/check.h"

namespace dqr::cache {
namespace {

// splitmix64 finalizer, the repo's standard bit mixer (common/rng.h).
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t MemoSpaceKey(const std::string& dataset_id, uint64_t epoch) {
  uint64_t h = Mix(epoch);
  for (const char c : dataset_id) {
    h = Mix(h ^ static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

uint64_t EpochRegistry::Current(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = epochs_.find(dataset_id);
  return it == epochs_.end() ? 1 : it->second;
}

uint64_t EpochRegistry::Bump(const std::string& dataset_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = epochs_.emplace(dataset_id, 2);
  if (!inserted) ++it->second;
  return it->second;
}

SharedBoundsMemo::SharedBoundsMemo(size_t capacity_per_shard, int num_shards)
    : capacity_per_shard_(std::max<size_t>(1, capacity_per_shard)),
      shards_(static_cast<size_t>(std::max(1, num_shards))) {}

bool SharedBoundsMemo::Lookup(uint64_t space, int kind, int64_t lo,
                              int64_t hi, Interval* out) {
  DQR_CHECK(out != nullptr);
  const Key key{space, kind, lo, hi};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

bool SharedBoundsMemo::Insert(uint64_t space, int kind, int64_t lo,
                              int64_t hi, const Interval& value) {
  const Key key{space, kind, lo, hi};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.emplace(key, value);
  if (!inserted) {
    it->second = value;
    return false;
  }
  shard.fifo.push_back(key);
  bool evicted = false;
  while (shard.map.size() > capacity_per_shard_) {
    DQR_CHECK(!shard.fifo.empty());
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evicted = true;
  }
  return evicted;
}

void SharedBoundsMemo::EraseSpace(uint64_t space) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      it = it->first.space == space ? shard.map.erase(it) : std::next(it);
    }
    std::erase_if(shard.fifo,
                  [space](const Key& k) { return k.space == space; });
  }
}

void SharedBoundsMemo::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
}

size_t SharedBoundsMemo::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

SharedMemoStats SharedBoundsMemo::stats() const {
  SharedMemoStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dqr::cache
