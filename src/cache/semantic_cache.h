#ifndef DQR_CACHE_SEMANTIC_CACHE_H_
#define DQR_CACHE_SEMANTIC_CACHE_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/bounds_memo.h"
#include "common/status.h"
#include "core/options.h"
#include "core/refiner.h"
#include "core/solution.h"
#include "searchlight/query.h"

namespace dqr::cache {

// A query as the semantic cache sees it: the spec plus the identity of
// the data it runs over and of each constraint's function. Two queries
// may share cache state only when their dataset ids match and equal
// function ids really mean "the same UDF with the same parameters and
// value range over the same data" — the caller owns that contract (the
// fuzz generator derives ids from the function kind, its parameters and
// its value range at full precision).
struct CachedQuery {
  searchlight::QuerySpec query;
  std::string dataset_id;
  // One id per constraint, in query.constraints order.
  std::vector<std::string> function_ids;
};

// How ExecuteQueryCached answered one query.
enum class CacheOutcome {
  // Cache unusable for this query (custom penalty/rank models).
  kBypass,
  // Nothing reusable; executed cold (possibly populating the cache).
  kMiss,
  // Byte-identical query seen before on this epoch; answer returned
  // without executing.
  kExactHit,
  // A looser cached answer subsumed this query (every exact answer lies
  // within its certified relaxation radius); answer synthesized without
  // executing.
  kSubsumeHit,
  // Cached answers warm-started MRP/MRK bounds; executed with pruning
  // head start.
  kWarmStart,
};

const char* CacheOutcomeName(CacheOutcome outcome);

// One completed, reusable answer. Stores a full copy of the query spec
// (factories are value-captured and shared-ptr backed, so copies are
// cheap and safe) plus the semantic knobs that defined the answer.
struct CachedAnswer {
  std::string fingerprint;
  std::string dataset_id;
  uint64_t epoch = 1;
  searchlight::QuerySpec query;
  std::vector<std::string> function_ids;
  bool enable = true;
  double alpha = 0.5;
  core::ConstrainMode constrain = core::ConstrainMode::kRank;
  std::vector<int64_t> result_spacing;
  std::vector<core::Solution> results;
  // Distinct exact results the run confirmed (RunStats::exact_results).
  int64_t exact_results = 0;

  // Effective cardinality / constrain mode, mirroring ExecuteQuery.
  int64_t effective_k() const { return enable ? query.k : 0; }
  core::ConstrainMode effective_mode() const {
    return effective_k() > 0 ? constrain : core::ConstrainMode::kNone;
  }
};

// Admissible warm-start bounds for a query (see DESIGN.md "Cross-query
// semantic cache"): executing with these injected is equivalent to a
// legal schedule in which the cached solutions they were derived from
// were validated first, so final results are byte-identical to a cold
// run.
struct WarmBounds {
  double mrp_cap = std::numeric_limits<double>::infinity();
  double mrk_floor = -std::numeric_limits<double>::infinity();

  bool any() const {
    return mrp_cap != std::numeric_limits<double>::infinity() ||
           mrk_floor != -std::numeric_limits<double>::infinity();
  }
};

// Derives warm-start bounds for `tight` from cached answers over the same
// dataset/epoch/functions. The MRP cap is the k-th smallest exact
// re-scored penalty over the cached points inside the tight query's
// domains (requires >= k finite candidates: they prove the cold pool
// fills at least that well). The MRK floor (rank constraining only) is
// the k-th largest rank over cached points that are exact under the
// tight query. Answers with mismatched functions/dataset are ignored.
// Exposed for the cache_invariants property tests.
WarmBounds ComputeWarmBounds(
    const CachedQuery& tight, const core::RefineOptions& options,
    const std::vector<std::shared_ptr<const CachedAnswer>>& candidates);

// Attempts to answer `tight` from the single looser cached answer: checks
// the certificate ("every point with re-scored penalty below B is in the
// stored answer"), computes the relaxation radius of the tight query's
// search region under the loose penalty model, and — when radius < B —
// synthesizes the exact answer in the engine's final ordering. Returns
// nullopt when no sound certificate applies. Exposed for the
// cache_invariants property tests.
std::optional<std::vector<core::Solution>> TrySubsume(
    const CachedQuery& tight, const core::RefineOptions& options,
    const CachedAnswer& loose);

// The process-wide semantic cache: a shared bounds memo (L2 behind every
// query's BoundsCache) plus a bounded FIFO of completed answers, both
// epoch-invalidated per dataset. Thread-safe; one instance may serve
// concurrent queries.
class SemanticCache {
 public:
  struct Stats {
    int64_t exact_hits = 0;
    int64_t subsume_hits = 0;
    int64_t warm_starts = 0;
    int64_t misses = 0;
    int64_t bypasses = 0;
    int64_t insertions = 0;
    int64_t invalidations = 0;
  };

  explicit SemanticCache(size_t max_answers = 64);

  SharedBoundsMemo& memo() { return memo_; }

  uint64_t CurrentEpoch(const std::string& dataset_id) const {
    return epochs_.Current(dataset_id);
  }
  // Current memo-space key for queries over `dataset_id`; attach it (with
  // &memo()) to the function contexts of a query to share bounds lookups.
  uint64_t MemoSpace(const std::string& dataset_id) const {
    return MemoSpaceKey(dataset_id, epochs_.Current(dataset_id));
  }

  // The dataset mutated: advances its epoch, drops its cached answers and
  // erases its memo space. Returns the new epoch.
  uint64_t InvalidateDataset(const std::string& dataset_id);

  // Exact-match lookup on the current epoch; nullptr on miss.
  std::shared_ptr<const CachedAnswer> LookupExact(
      const std::string& fingerprint, uint64_t epoch);
  // Every cached answer for (dataset, epoch), newest first.
  std::vector<std::shared_ptr<const CachedAnswer>> AnswersFor(
      const std::string& dataset_id, uint64_t epoch);

  void InsertAnswer(CachedAnswer answer);

  Stats stats() const;
  size_t answer_count() const;

  // Outcome accounting used by ExecuteQueryCached.
  void CountOutcome(CacheOutcome outcome);

 private:
  const size_t max_answers_;
  SharedBoundsMemo memo_;
  EpochRegistry epochs_;

  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const CachedAnswer>> answers_;  // newest front
  std::unordered_map<std::string, std::shared_ptr<const CachedAnswer>>
      by_fingerprint_;
  Stats stats_;
};

// The fingerprint of everything that defines a query's answer: dataset,
// domains, constraints (function ids, bounds, weights, flags), k, and the
// semantic options (enable, alpha, constrain mode, diversity). Engine
// shape and scheduling knobs are deliberately excluded — they are
// answer-preserving by the §3 guarantees the fuzz harness enforces.
std::string QueryFingerprint(const CachedQuery& cq,
                             const core::RefineOptions& options);

// Semantic-cache-aware ExecuteQuery. Resolution order: exact hit →
// subsumption → warm-started execution → cold execution; completed runs
// without custom models are inserted back into the cache. Cached answers
// short-circuit execution entirely, so RunStats of a hit carry only the
// cache counters (and on_result callbacks do not replay). `outcome`, when
// non-null, receives how the query was answered.
Result<core::RunResult> ExecuteQueryCached(SemanticCache* cache,
                                           const CachedQuery& cq,
                                           const core::RefineOptions& options,
                                           CacheOutcome* outcome = nullptr);

}  // namespace dqr::cache

#endif  // DQR_CACHE_SEMANTIC_CACHE_H_
