#include "cache/semantic_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "common/check.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "obs/trace.h"

namespace dqr::cache {
namespace {

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
  *out += ';';
}

void AppendInt(std::string* out, int64_t v) {
  *out += std::to_string(v);
  *out += ';';
}

bool PointInDomains(const std::vector<int64_t>& point,
                    const cp::DomainBox& domains) {
  if (point.size() != domains.size()) return false;
  for (size_t i = 0; i < point.size(); ++i) {
    if (!domains[i].Contains(point[i])) return false;
  }
  return true;
}

// Whether `answer` describes the same dataset and the same constraint
// functions as `cq` — the precondition for re-scoring its stored values
// under cq's models.
bool SameFunctions(const CachedQuery& cq, const CachedAnswer& answer) {
  return answer.dataset_id == cq.dataset_id &&
         answer.function_ids == cq.function_ids &&
         answer.query.constraints.size() == cq.query.constraints.size();
}

// domains_t lies inside domains_l, dimension by dimension.
bool DomainsContained(const cp::DomainBox& tight, const cp::DomainBox& loose) {
  if (tight.size() != loose.size()) return false;
  for (size_t i = 0; i < tight.size(); ++i) {
    if (tight[i].lo < loose[i].lo || tight[i].hi > loose[i].hi) return false;
  }
  return true;
}

struct ByPointOrder {
  bool operator()(const core::Solution& a, const core::Solution& b) const {
    return a.point < b.point;
  }
};

struct ByRankOrder {
  bool operator()(const core::Solution& a, const core::Solution& b) const {
    if (a.rk != b.rk) return a.rk > b.rk;
    return a.point < b.point;
  }
};

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kExactHit:
      return "exact";
    case CacheOutcome::kSubsumeHit:
      return "subsume";
    case CacheOutcome::kWarmStart:
      return "warm";
  }
  return "unknown";
}

std::string QueryFingerprint(const CachedQuery& cq,
                             const core::RefineOptions& options) {
  std::string fp;
  fp.reserve(256);
  fp += "ds=";
  fp += cq.dataset_id;
  fp += ';';
  AppendInt(&fp, cq.query.k);
  AppendInt(&fp, options.enable ? 1 : 0);
  AppendDouble(&fp, options.alpha);
  AppendInt(&fp, static_cast<int64_t>(options.constrain));
  fp += "sp=";
  for (const int64_t s : options.result_spacing) AppendInt(&fp, s);
  AppendInt(&fp, options.diversity_pool_factor);
  fp += "dom=";
  for (const cp::IntDomain& d : cq.query.domains) {
    AppendInt(&fp, d.lo);
    AppendInt(&fp, d.hi);
  }
  for (size_t c = 0; c < cq.query.constraints.size(); ++c) {
    const searchlight::QueryConstraint& qc = cq.query.constraints[c];
    fp += "c=";
    fp += c < cq.function_ids.size() ? cq.function_ids[c] : "?";
    fp += ';';
    AppendDouble(&fp, qc.bounds.lo);
    AppendDouble(&fp, qc.bounds.hi);
    AppendDouble(&fp, qc.relax_weight);
    AppendInt(&fp, qc.relaxable ? 1 : 0);
    AppendInt(&fp, qc.constrainable ? 1 : 0);
    AppendDouble(&fp, qc.rank_weight);
    AppendInt(&fp,
              qc.preference == searchlight::RankPreference::kMaximize ? 1 : 0);
  }
  return fp;
}

WarmBounds ComputeWarmBounds(
    const CachedQuery& tight, const core::RefineOptions& options,
    const std::vector<std::shared_ptr<const CachedAnswer>>& candidates) {
  WarmBounds warm;
  if (options.custom_penalty != nullptr || options.custom_rank != nullptr) {
    return warm;
  }
  const int64_t k_eff = options.enable ? tight.query.k : 0;
  // No pools to seed without a cardinality target; with diversity the
  // tracked pool is larger than k and cached answers cannot prove it
  // fills, so no sound cap exists.
  if (k_eff <= 0 || !options.result_spacing.empty()) return warm;
  if (tight.function_ids.size() != tight.query.constraints.size()) {
    return warm;
  }

  Result<core::PenaltyModel> penalty_r =
      core::BuildPenaltyModel(tight.query, options.alpha);
  if (!penalty_r.ok()) return warm;
  const core::PenaltyModel penalty = std::move(penalty_r).value();
  std::optional<core::RankModel> rank;
  if (options.constrain == core::ConstrainMode::kRank) {
    Result<core::RankModel> rank_r = core::BuildRankModel(tight.query);
    if (!rank_r.ok()) return warm;
    rank.emplace(std::move(rank_r).value());
  }

  // Re-score every distinct cached point inside the tight query's search
  // space under the tight models. Each is a real solution the cold search
  // will validate, so the k-th best re-score is a bound the cold run is
  // guaranteed to reach — injecting it is equivalent to a schedule where
  // these solutions were validated first.
  const size_t n = tight.query.constraints.size();
  std::set<std::vector<int64_t>> seen;
  std::vector<double> finite_rp;
  std::vector<double> exact_rk;
  for (const std::shared_ptr<const CachedAnswer>& cand : candidates) {
    if (cand == nullptr || !SameFunctions(tight, *cand)) continue;
    for (const core::Solution& s : cand->results) {
      if (s.values.size() != n) continue;
      if (!PointInDomains(s.point, tight.query.domains)) continue;
      if (!seen.insert(s.point).second) continue;
      const double rp = penalty.Penalty(s.values);
      if (!std::isfinite(rp)) continue;
      finite_rp.push_back(rp);
      if (rp == 0.0 && rank.has_value()) {
        exact_rk.push_back(rank->Rank(s.values));
      }
    }
  }

  // MRP cap: the k-th smallest re-scored penalty. Needs >= k finite
  // candidates — they witness that the cold relax pool fills at least to
  // this level, so the cap can never prune a final pool member.
  if (static_cast<int64_t>(finite_rp.size()) >= k_eff) {
    auto kth = finite_rp.begin() + (k_eff - 1);
    std::nth_element(finite_rp.begin(), kth, finite_rp.end());
    warm.mrp_cap = *kth;
  }
  // MRK floor: the k-th largest rank over cached points that are exact
  // under the tight query. Applied only once the engine's constraining
  // phase is active (coordinator-side gate), so it cannot perturb the
  // relax-vs-constrain decision.
  if (rank.has_value() && static_cast<int64_t>(exact_rk.size()) >= k_eff) {
    auto kth = exact_rk.begin() + (k_eff - 1);
    std::nth_element(exact_rk.begin(), kth, exact_rk.end(),
                     std::greater<double>());
    warm.mrk_floor = *kth;
  }
  return warm;
}

std::optional<std::vector<core::Solution>> TrySubsume(
    const CachedQuery& tight, const core::RefineOptions& options,
    const CachedAnswer& loose) {
  if (options.custom_penalty != nullptr || options.custom_rank != nullptr) {
    return std::nullopt;
  }
  // Diversity distorts both the stored pool (certificate) and the final
  // selection (synthesis); neither side may use it.
  if (!options.result_spacing.empty() || !loose.result_spacing.empty()) {
    return std::nullopt;
  }
  if (!SameFunctions(tight, loose)) return std::nullopt;
  if (tight.function_ids.size() != tight.query.constraints.size()) {
    return std::nullopt;
  }
  if (!DomainsContained(tight.query.domains, loose.query.domains)) {
    return std::nullopt;
  }

  const size_t n = tight.query.constraints.size();
  Result<core::PenaltyModel> penalty_l_r =
      core::BuildPenaltyModel(loose.query, loose.alpha);
  Result<core::PenaltyModel> penalty_t_r =
      core::BuildPenaltyModel(tight.query, options.alpha);
  Result<core::RankModel> rank_t_r = core::BuildRankModel(tight.query);
  if (!penalty_l_r.ok() || !penalty_t_r.ok() || !rank_t_r.ok()) {
    return std::nullopt;
  }
  const core::PenaltyModel penalty_l = std::move(penalty_l_r).value();
  const core::PenaltyModel penalty_t = std::move(penalty_t_r).value();
  const core::RankModel rank_t = std::move(rank_t_r).value();

  // Exactness under the tight query must imply "every value inside the
  // tight bounds". That fails only when alpha == 1 hides a violated
  // relaxable constraint whose relax weight is 0.
  if (options.alpha >= 1.0) {
    for (int c = 0; c < penalty_t.num_constraints(); ++c) {
      if (penalty_t.spec(c).relaxable && penalty_t.spec(c).weight <= 0.0) {
        return std::nullopt;
      }
    }
  }

  // Radius soundness, constraint by constraint: the worst-case loose
  // penalty over the tight bounds must really bound the loose penalty of
  // any value inside them. Outside both the loose bounds and the value
  // range the loose penalty is infinite while WorstPenalty clamps at
  // distance 1, and WorstPenalty ignores non-relaxable constraints
  // entirely — so each constraint needs its tight bounds inside the loose
  // bounds (penalty contribution 0) or, if relaxable, inside the value
  // range (no hard-limit region).
  std::vector<Interval> estimates;
  estimates.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    const Interval& bt = tight.query.constraints[c].bounds;
    const core::PenaltySpec& sl = penalty_l.spec(static_cast<int>(c));
    const bool inside_loose = sl.bounds.Contains(bt);
    if (!inside_loose && !(sl.relaxable && sl.value_range.Contains(bt))) {
      return std::nullopt;
    }
    estimates.push_back(bt);
  }

  // Completeness certificate of the stored answer: a threshold B such
  // that every point of the loose search space with loose penalty < B
  // (or == 0 when B == 0) appears in it.
  const int64_t k_l = loose.effective_k();
  const core::ConstrainMode mode_l = loose.effective_mode();
  double certificate;
  if (k_l == 0) {
    certificate = 0.0;  // every exact result stored
  } else if (loose.exact_results >= k_l) {
    if (mode_l != core::ConstrainMode::kNone) {
      // Rank/skyline constraining kept only the top slice of the exact
      // set — no penalty-threshold certificate exists.
      return std::nullopt;
    }
    certificate = 0.0;
  } else if (static_cast<int64_t>(loose.results.size()) < k_l) {
    // Relax branch that ran out of finite-penalty points: the answer is
    // every one of them.
    certificate = std::numeric_limits<double>::infinity();
  } else {
    // Relax branch best-k: complete below the worst stored penalty.
    certificate = 0.0;
    for (const core::Solution& s : loose.results) {
      certificate = std::max(certificate, s.rp);
    }
  }

  const std::vector<char> known(n, 1);
  const double radius = penalty_l.WorstPenalty(estimates, known);
  const bool covered =
      certificate == 0.0 ? radius == 0.0 : radius < certificate;
  if (!covered) return std::nullopt;

  // Every exact answer of the tight query now provably lies in the stored
  // results; collect and re-score them.
  std::vector<core::Solution> exact;
  for (const core::Solution& s : loose.results) {
    if (s.values.size() != n) continue;
    if (!PointInDomains(s.point, tight.query.domains)) continue;
    if (penalty_t.Penalty(s.values) != 0.0) continue;
    core::Solution out;
    out.point = s.point;
    out.values = s.values;
    out.rp = 0.0;
    out.rk = rank_t.Rank(s.values);
    exact.push_back(std::move(out));
  }

  // Synthesize the final list exactly as ResultTracker::FinalResults
  // would order it. Anything needing relaxation or skyline semantics
  // falls back to (warm-started) execution.
  const int64_t k_t = options.enable ? tight.query.k : 0;
  const core::ConstrainMode mode_t =
      k_t > 0 ? options.constrain : core::ConstrainMode::kNone;
  if (k_t == 0 || (mode_t == core::ConstrainMode::kNone &&
                   static_cast<int64_t>(exact.size()) >= k_t)) {
    std::sort(exact.begin(), exact.end(), ByPointOrder());
    return exact;
  }
  if (mode_t == core::ConstrainMode::kRank &&
      static_cast<int64_t>(exact.size()) >= k_t) {
    std::sort(exact.begin(), exact.end(), ByRankOrder());
    exact.resize(static_cast<size_t>(k_t));
    return exact;
  }
  return std::nullopt;
}

SemanticCache::SemanticCache(size_t max_answers)
    : max_answers_(std::max<size_t>(1, max_answers)) {}

uint64_t SemanticCache::InvalidateDataset(const std::string& dataset_id) {
  // Erase the old memo space before bumping so no stale interval can be
  // observed under the new epoch's key (different key anyway — the erase
  // just reclaims memory promptly).
  memo_.EraseSpace(MemoSpaceKey(dataset_id, epochs_.Current(dataset_id)));
  const uint64_t epoch = epochs_.Bump(dataset_id);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = answers_.begin(); it != answers_.end();) {
    if ((*it)->dataset_id == dataset_id) {
      by_fingerprint_.erase((*it)->fingerprint);
      it = answers_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.invalidations;
  return epoch;
}

std::shared_ptr<const CachedAnswer> SemanticCache::LookupExact(
    const std::string& fingerprint, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end() || it->second->epoch != epoch) {
    return nullptr;
  }
  return it->second;
}

std::vector<std::shared_ptr<const CachedAnswer>> SemanticCache::AnswersFor(
    const std::string& dataset_id, uint64_t epoch) {
  std::vector<std::shared_ptr<const CachedAnswer>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& answer : answers_) {
    if (answer->dataset_id == dataset_id && answer->epoch == epoch) {
      out.push_back(answer);
    }
  }
  return out;
}

void SemanticCache::InsertAnswer(CachedAnswer answer) {
  auto shared = std::make_shared<const CachedAnswer>(std::move(answer));
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = by_fingerprint_.find(shared->fingerprint);
      it != by_fingerprint_.end()) {
    // Refresh: drop the superseded entry from the FIFO as well.
    for (auto d = answers_.begin(); d != answers_.end(); ++d) {
      if (*d == it->second) {
        answers_.erase(d);
        break;
      }
    }
    by_fingerprint_.erase(it);
  }
  answers_.push_front(shared);
  by_fingerprint_[shared->fingerprint] = shared;
  while (answers_.size() > max_answers_) {
    const auto victim = answers_.back();
    answers_.pop_back();
    const auto it = by_fingerprint_.find(victim->fingerprint);
    if (it != by_fingerprint_.end() && it->second == victim) {
      by_fingerprint_.erase(it);
    }
  }
  ++stats_.insertions;
}

SemanticCache::Stats SemanticCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SemanticCache::answer_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_.size();
}

void SemanticCache::CountOutcome(CacheOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case CacheOutcome::kBypass:
      ++stats_.bypasses;
      break;
    case CacheOutcome::kMiss:
      ++stats_.misses;
      break;
    case CacheOutcome::kExactHit:
      ++stats_.exact_hits;
      break;
    case CacheOutcome::kSubsumeHit:
      ++stats_.subsume_hits;
      break;
    case CacheOutcome::kWarmStart:
      ++stats_.warm_starts;
      break;
  }
}

namespace {

// Builds the RunResult of a cache hit: the stored/synthesized results
// plus a stats block carrying only the cache counters. Streams results
// through on_result, matching the online-answering contract.
core::RunResult SynthesizeResult(std::vector<core::Solution> results,
                                 const core::RefineOptions& options,
                                 bool exact_hit) {
  core::RunResult run;
  run.results = std::move(results);
  for (const core::Solution& s : run.results) {
    if (s.rp == 0.0) ++run.stats.exact_results;
    if (options.on_result) options.on_result(s);
  }
  if (exact_hit) {
    run.stats.answer_cache_exact_hits = 1;
  } else {
    run.stats.answer_cache_subsumption_hits = 1;
  }
  return run;
}

}  // namespace

Result<core::RunResult> ExecuteQueryCached(SemanticCache* cache,
                                           const CachedQuery& cq,
                                           const core::RefineOptions& options,
                                           CacheOutcome* outcome) {
  CacheOutcome resolved = CacheOutcome::kBypass;
  if (outcome != nullptr) *outcome = resolved;
  if (cq.function_ids.size() != cq.query.constraints.size()) {
    return InvalidArgumentError(
        "CachedQuery needs one function id per constraint");
  }
  const bool custom_models =
      options.custom_penalty != nullptr || options.custom_rank != nullptr;
  if (cache == nullptr || custom_models) {
    if (cache != nullptr) cache->CountOutcome(CacheOutcome::kBypass);
    return core::ExecuteQuery(cq.query, options);
  }

  const uint64_t epoch = cache->CurrentEpoch(cq.dataset_id);
  const std::string fingerprint = QueryFingerprint(cq, options);

  // --- exact hit: the same semantic query on the same epoch ---
  if (std::shared_ptr<const CachedAnswer> hit =
          cache->LookupExact(fingerprint, epoch)) {
    const int trace_epoch =
        options.trace != nullptr ? options.trace->BeginQuery() : -1;
    obs::ThreadTracer tracer =
        obs::MakeTracer(options.trace, /*instance=*/-1,
                        obs::ThreadRole::kSession,
                        options.trace_buffer_events, trace_epoch);
    obs::SpanScope span = tracer.Scope(obs::EventName::kCacheLookup);
    core::RunResult run =
        SynthesizeResult(hit->results, options, /*exact_hit=*/true);
    run.trace_epoch = trace_epoch;
    tracer.Instant(obs::EventName::kCacheExactHit,
                   static_cast<double>(run.results.size()));
    resolved = CacheOutcome::kExactHit;
    if (outcome != nullptr) *outcome = resolved;
    cache->CountOutcome(resolved);
    return run;
  }

  const std::vector<std::shared_ptr<const CachedAnswer>> candidates =
      cache->AnswersFor(cq.dataset_id, epoch);

  // --- subsumption: a looser answer certifiably contains every exact ---
  for (const std::shared_ptr<const CachedAnswer>& candidate : candidates) {
    std::optional<std::vector<core::Solution>> subsumed =
        TrySubsume(cq, options, *candidate);
    if (!subsumed.has_value()) continue;
    const int trace_epoch =
        options.trace != nullptr ? options.trace->BeginQuery() : -1;
    obs::ThreadTracer tracer =
        obs::MakeTracer(options.trace, /*instance=*/-1,
                        obs::ThreadRole::kSession,
                        options.trace_buffer_events, trace_epoch);
    obs::SpanScope span = tracer.Scope(obs::EventName::kCacheLookup);
    core::RunResult run = SynthesizeResult(std::move(subsumed).value(),
                                           options, /*exact_hit=*/false);
    run.trace_epoch = trace_epoch;
    tracer.Instant(obs::EventName::kCacheSubsume,
                   static_cast<double>(run.results.size()));
    resolved = CacheOutcome::kSubsumeHit;
    if (outcome != nullptr) *outcome = resolved;
    cache->CountOutcome(resolved);
    return run;
  }

  // --- execute, possibly warm-started, sharing the bounds memo ---
  const WarmBounds warm = ComputeWarmBounds(cq, options, candidates);
  core::RefineOptions exec_options = options;
  if (warm.any()) {
    exec_options.warm_mrp_cap = warm.mrp_cap;
    exec_options.warm_mrk_floor = warm.mrk_floor;
    resolved = CacheOutcome::kWarmStart;
  } else {
    resolved = CacheOutcome::kMiss;
  }

  Result<core::RunResult> run = core::ExecuteQuery(cq.query, exec_options);
  if (outcome != nullptr) *outcome = resolved;
  cache->CountOutcome(resolved);
  if (!run.ok()) return run;

  // The session tracer ring is pinned to the epoch ExecuteQuery began, so
  // these events land in this query's process group even when concurrent
  // queries have since begun newer epochs.
  obs::ThreadTracer tracer =
      obs::MakeTracer(options.trace, /*instance=*/-1,
                      obs::ThreadRole::kSession, options.trace_buffer_events,
                      run.value().trace_epoch);
  tracer.Instant(resolved == CacheOutcome::kWarmStart
                     ? obs::EventName::kCacheWarmStart
                     : obs::EventName::kCacheMiss,
                 static_cast<double>(run.value().results.size()));
  if (resolved == CacheOutcome::kWarmStart) {
    run.value().stats.answer_cache_warm_starts = 1;
  }

  if (run.value().stats.completed) {
    CachedAnswer answer;
    answer.fingerprint = fingerprint;
    answer.dataset_id = cq.dataset_id;
    answer.epoch = epoch;
    answer.query = cq.query;
    answer.function_ids = cq.function_ids;
    answer.enable = options.enable;
    answer.alpha = options.alpha;
    answer.constrain = options.constrain;
    answer.result_spacing = options.result_spacing;
    answer.results = run.value().results;
    answer.exact_results = run.value().stats.exact_results;
    cache->InsertAnswer(std::move(answer));
    tracer.Instant(obs::EventName::kCacheStore,
                   static_cast<double>(run.value().results.size()));
  }
  return run;
}

}  // namespace dqr::cache
