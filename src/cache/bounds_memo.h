#ifndef DQR_CACHE_BOUNDS_MEMO_H_
#define DQR_CACHE_BOUNDS_MEMO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/interval.h"

namespace dqr::cache {

// Derives the memo-space key of one (dataset, epoch) pair. A memo space
// must identify everything a cached interval depends on: the base data,
// the synopsis built over it, and the mutation epoch. Callers that run
// several synopsis configurations over the same dataset must fold the
// configuration into `dataset_id`.
uint64_t MemoSpaceKey(const std::string& dataset_id, uint64_t epoch);

// Per-dataset mutation epochs. Epochs start at 1 and only grow; bumping
// the epoch retires every memo space and cached answer keyed under the
// old one (they simply stop matching), which is how array mutation
// invalidates the semantic cache without scanning it.
class EpochRegistry {
 public:
  // Current epoch of `dataset_id` (1 if never bumped).
  uint64_t Current(const std::string& dataset_id) const;
  // Advances the epoch after a mutation; returns the new value.
  uint64_t Bump(const std::string& dataset_id);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> epochs_;
};

// Cumulative counters of a SharedBoundsMemo.
struct SharedMemoStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

// The process-wide L2 behind the per-query searchlight::BoundsCache:
// synopsis window bounds keyed on (memo space, kind, lo, hi), shared by
// every function instance of every concurrent query over the same data.
// A window's bounds are a pure function of (synopsis, kind, window), so a
// hit returns exactly the interval the synopsis would recompute — reuse
// is value-identical, it only skips the (possibly artificially expensive)
// lookup.
//
// Thread-safe via sharded mutexes: a key hashes to one of `num_shards`
// independent shards, so concurrent queries contend only on colliding
// shards. Eviction is per-shard FIFO under a per-shard capacity.
class SharedBoundsMemo {
 public:
  explicit SharedBoundsMemo(size_t capacity_per_shard = size_t{1} << 14,
                            int num_shards = 16);

  // Copies the memoized interval into *out and returns true on a hit.
  bool Lookup(uint64_t space, int kind, int64_t lo, int64_t hi,
              Interval* out);
  // Publishes an interval; overwrites silently if present. Returns true
  // when an unrelated entry was evicted to make room.
  bool Insert(uint64_t space, int kind, int64_t lo, int64_t hi,
              const Interval& value);

  // Drops every entry of one memo space (epoch invalidation).
  void EraseSpace(uint64_t space);
  void Clear();

  size_t size() const;
  SharedMemoStats stats() const;

 private:
  struct Key {
    uint64_t space;
    int kind;
    int64_t lo;
    int64_t hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.space * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.kind) + 0x9e3779b97f4a7c15ULL + (h << 6);
      h ^= static_cast<uint64_t>(k.lo) + 0x9e3779b97f4a7c15ULL + (h << 6);
      h ^= static_cast<uint64_t>(k.hi) + 0x9e3779b97f4a7c15ULL + (h << 6);
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Interval, KeyHash> map;
    // Insertion order over the map's keys; front = eviction candidate.
    std::deque<Key> fifo;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  const size_t capacity_per_shard_;
  std::deque<Shard> shards_;  // deque: Shard is not movable (mutex)
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace dqr::cache

#endif  // DQR_CACHE_BOUNDS_MEMO_H_
