#ifndef DQR_TESTING_HARNESS_H_
#define DQR_TESTING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "testing/generator.h"

namespace dqr::fuzz {

// Engine bugs the harness can plant on purpose — applied to the engine's
// result list after a run, before canonicalization. Used by the harness's
// own tests (and --inject-bug) to prove that the differential check
// catches a wrong answer and that the shrinker reduces it.
enum class InjectedBug {
  kNone,
  kDropLast,    // drop the last final result (a lost-result bug)
  kPerturbRp,   // add 1e-3 to the first result's RP (a scoring bug)
};

Result<InjectedBug> InjectedBugFromName(const std::string& name);

// One fully specified differential case: which workload and which engine
// configuration. Everything derives from (seed, mode, grid, overrides,
// config), so a case is its own reproducer.
struct CaseConfig {
  uint64_t seed = 0;
  FuzzMode mode = FuzzMode::kRelax;
  // Run the 2-D grid workload of this seed instead of the 1-D one.
  bool grid = false;
  // > 0 runs a correlated session of (session + 1) queries instead of a
  // single workload: the seed-derived mutation chain is replayed twice —
  // per-query cold and against one warm semantic cache — and both legs
  // must match the oracle byte-for-byte at every step.
  int session = 0;
  WorkloadOverrides overrides;
  EngineConfig config;
};

// Outcome of running one case engine-vs-oracle.
struct CaseResult {
  bool ok = false;
  // Canonicalized result sets (core::Canonicalize) — byte-comparable.
  std::string expected;  // oracle
  std::string actual;    // engine
  // Populated diagnostics (search-space size, exact/finite counts, the
  // workload summary line). For logs and repro files.
  std::string detail;
  // Set when the case could not even run (engine/oracle returned an
  // error); distinct from a differential mismatch.
  std::string error;
  bool failed() const { return !ok; }
};

// Runs one case: generates the workload, runs the oracle and the engine,
// canonicalizes both result lists, compares byte-for-byte. `bug` plants an
// artificial engine bug post-run (kNone in production fuzzing).
CaseResult RunCase(const CaseConfig& c, InjectedBug bug = InjectedBug::kNone);

// Runs one correlated-session case (c.session > 0): derives the mutation
// plan from the seed and executes every step three ways — oracle, cold
// engine, and warm engine behind a single SemanticCache (shared bounds
// memo attached to the warm leg's functions, answers routed through
// ExecuteQueryCached) — demanding all three canonical result sets agree
// at every step. The per-step cache outcome trail ("cache=miss,warm,
// exact,...") lands in `detail` and therefore in repro files, so a
// failing session shows which reuse path produced the wrong answer.
// `bug` perturbs the warm leg's results (self-test only).
CaseResult RunSessionCase(const CaseConfig& c,
                          InjectedBug bug = InjectedBug::kNone);

// Dispatches on c.session: RunSessionCase when > 0, else RunCase.
CaseResult RunAnyCase(const CaseConfig& c,
                      InjectedBug bug = InjectedBug::kNone);

// Greedy shrinking: starting from a failing case, repeatedly tries
// reductions (strip the fault plan, collapse to one instance, reset engine
// knobs to defaults, halve the array, drop satellite constraints, lower k,
// narrow the x domain, drop diversity, default alpha) and keeps each
// reduction only if the case still fails. Deterministic; bounded by a
// fixed pass budget. Returns the reduced case (== input if nothing could
// be removed).
CaseConfig Shrink(CaseConfig failing, InjectedBug bug = InjectedBug::kNone);

// The one-line reproducer for a case:
//   dqr_fuzz --seed=92 --mode=relax --config="inst=1;..." [--len-cap=64 ...]
std::string ReproLine(const CaseConfig& c);

// Options for a fuzz campaign.
struct FuzzOptions {
  uint64_t start_seed = 1;
  int num_seeds = 100;
  // Configs drawn per seed (clamped to [3, 8] by MakeConfigMatrix).
  int configs_per_seed = 4;
  // Stop early once this many milliseconds have elapsed (0 = no budget).
  int64_t time_budget_ms = 0;
  // Directory for repro files of failing cases ("" = don't write files).
  std::string repro_dir;
  // Plant an artificial bug in every engine run (self-test only).
  InjectedBug inject_bug = InjectedBug::kNone;
  // Enable flight-recorder tracing on roughly half the cases (alternating
  // deterministically per seed/config), adding a trace dimension to the
  // matrix: tracing must never change an answer.
  bool trace_mix = false;
  // Which modes to cycle through; empty = all three.
  std::vector<FuzzMode> modes;
  // Driver threads running seeds concurrently (<= 1 = the serial
  // campaign, byte-identical to the pre-jobs harness). With jobs > 1 the
  // simd dimension is pinned to the SIMD kernels for every case —
  // ScopedSimdOverride is process-global, and the kernels are
  // value-identical by design, so pinning changes no expected answer —
  // and repro lines are sorted (thread completion order is not
  // deterministic; the set of failures is).
  int jobs = 1;
  // Run correlated-session cases (seed-derived mutation chains, warm
  // semantic cache differentialed against cold runs and the oracle)
  // instead of the single-query config matrix. Session cases run under
  // the matrix's baseline and work-stealing configs only — the session
  // dimension multiplies the per-case cost by the chain length.
  bool sessions = false;
  // Route every eligible case (single-query, 1-D, no fault injection)
  // through a loopback dqr_serve server instead of in-process execution:
  // the workload's text IR ships over the framed protocol into the shared
  // engine session and the FINAL frame's canonical body is differentialed
  // against the oracle. With jobs > 1 the concurrent drivers double as
  // concurrent clients of the one shared server. The serve dimension
  // rides the config codec (serve=1), so repro lines replay it and the
  // shrinker tries dropping it first.
  bool serve = false;
  bool verbose = false;
};

// Aggregate outcome of a campaign.
struct FuzzReport {
  int64_t cases_run = 0;
  int64_t seeds_run = 0;
  int64_t mismatches = 0;
  int64_t errors = 0;
  // Reproducer lines for (shrunk) failures, in discovery order.
  std::vector<std::string> repro_lines;
  // Paths of repro files written (when repro_dir was set).
  std::vector<std::string> repro_files;
  bool clean() const { return mismatches == 0 && errors == 0; }
};

// Runs the campaign: for each seed, derives a workload per mode and runs
// it under the seed's config matrix, comparing every run against the
// oracle. Every fourth seed runs its 2-D grid workload instead of the
// 1-D one, so a campaign always covers both data shapes (and, via the
// matrix's simd dimension, both kernel paths over both shapes). Each
// failure is shrunk before being reported. Progress and failures go to
// stderr; the report is the machine-readable summary.
FuzzReport RunFuzz(const FuzzOptions& options);

// Serializes a failing (already shrunk) case into a self-contained repro
// file: the reproducer line, the workload summary, and the expected vs
// actual canonical result sets. Returns the path written.
Result<std::string> WriteReproFile(const std::string& dir,
                                   const CaseConfig& c,
                                   const CaseResult& result);

}  // namespace dqr::fuzz

#endif  // DQR_TESTING_HARNESS_H_
