#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/bundle.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "core/skyline.h"
#include "cp/domain.h"

namespace dqr::fuzz {
namespace {

using core::Solution;

bool ByPenalty(const Solution& a, const Solution& b) {
  if (a.rp != b.rp) return a.rp < b.rp;
  return a.point < b.point;
}

bool ByRank(const Solution& a, const Solution& b) {
  if (a.rk != b.rk) return a.rk > b.rk;
  return a.point < b.point;
}

bool ByPoint(const Solution& a, const Solution& b) {
  return a.point < b.point;
}

// Mirrors ResultTracker::Conflicts/SelectDiverse: two results conflict
// when they lie within a common spacing box on *every* coordinate; the
// filter keeps up to k results greedily in quality order.
bool Conflicts(const std::vector<int64_t>& a, const std::vector<int64_t>& b,
               const std::vector<int64_t>& spacing) {
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t gap = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (gap >= spacing[i]) return false;
  }
  return true;
}

std::vector<Solution> SelectDiverse(std::vector<Solution> ordered,
                                    const std::vector<int64_t>& spacing,
                                    int64_t k) {
  if (spacing.empty()) {
    if (static_cast<int64_t>(ordered.size()) > k) {
      ordered.resize(static_cast<size_t>(k));
    }
    return ordered;
  }
  std::vector<Solution> out;
  for (Solution& candidate : ordered) {
    if (static_cast<int64_t>(out.size()) >= k) break;
    bool conflicting = false;
    for (const Solution& kept : out) {
      if (Conflicts(candidate.point, kept.point, spacing)) {
        conflicting = true;
        break;
      }
    }
    if (!conflicting) out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace

Result<OracleResult> OracleRun(const searchlight::QuerySpec& query,
                               const core::RefineOptions& options,
                               int64_t max_space) {
  if (query.domains.empty()) {
    return InvalidArgumentError("oracle: query has no decision variables");
  }
  const int64_t space = cp::BoxCardinality(query.domains);
  if (space <= 0) {
    return InvalidArgumentError("oracle: empty search space");
  }
  if (space > max_space) {
    return InvalidArgumentError("oracle: search space of " +
                                std::to_string(space) +
                                " assignments exceeds the brute-force cap");
  }

  // Score with the engine's own models (or the caller's custom ones, the
  // way ExecuteQuery would pick them).
  Result<core::PenaltyModel> penalty_result =
      core::BuildPenaltyModel(query, options.alpha);
  if (!penalty_result.ok()) return penalty_result.status();
  Result<core::RankModel> rank_result = core::BuildRankModel(query);
  if (!rank_result.ok()) return rank_result.status();
  const core::PenaltyModel default_penalty = std::move(penalty_result).value();
  const core::RankModel default_rank = std::move(rank_result).value();
  const core::PenaltyModel& penalty = options.custom_penalty != nullptr
                                          ? *options.custom_penalty
                                          : default_penalty;
  const core::RankModel& rank =
      options.custom_rank != nullptr ? *options.custom_rank : default_rank;

  core::ConstraintBundle bundle(query);

  OracleResult out;
  out.space_size = space;

  // Odometer enumeration of the domain box; every assignment is scored
  // exactly the way the engine's Validator scores a candidate.
  std::vector<Solution> finite;
  std::vector<int64_t> point;
  point.reserve(query.domains.size());
  for (const cp::IntDomain& d : query.domains) point.push_back(d.lo);
  bool done = false;
  while (!done) {
    Solution s;
    s.point = point;
    s.values = bundle.EvaluateAll(s.point);
    s.rp = penalty.Penalty(s.values);
    if (std::isfinite(s.rp)) {
      s.rk = rank.Rank(s.values);
      if (s.rp == 0.0) ++out.exact_count;
      finite.push_back(std::move(s));
    }
    // Odometer increment, last variable fastest.
    size_t i = point.size();
    for (;;) {
      if (i == 0) {
        done = true;
        break;
      }
      --i;
      if (point[i] < query.domains[i].hi) {
        ++point[i];
        break;
      }
      point[i] = query.domains[i].lo;
    }
  }
  out.finite_count = static_cast<int64_t>(finite.size());

  // Final-result assembly, mirroring ResultTracker::FinalResults and the
  // effective-mode arithmetic at the top of ExecuteQuery.
  const int64_t k = options.enable ? query.k : 0;
  const core::ConstrainMode mode =
      k > 0 ? options.constrain : core::ConstrainMode::kNone;
  const int64_t pool_k =
      options.result_spacing.empty()
          ? k
          : std::max(k, k * options.diversity_pool_factor);

  std::vector<Solution> exact;
  for (const Solution& s : finite) {
    if (s.rp == 0.0) exact.push_back(s);
  }

  if (k == 0 || (mode == core::ConstrainMode::kNone &&
                 out.exact_count >= k)) {
    std::sort(exact.begin(), exact.end(), ByPoint);
    out.results = std::move(exact);
    return out;
  }

  if (out.exact_count >= k) {
    if (mode == core::ConstrainMode::kSkyline) {
      // The exact non-dominated frontier. Insertion order does not matter:
      // Skyline::Add keeps every mutually non-dominated member.
      core::Skyline skyline;
      for (Solution& s : exact) {
        core::SkylineEntry entry;
        entry.oriented = rank.OrientForSkyline(s.values);
        entry.solution = std::move(s);
        skyline.Add(std::move(entry));
      }
      for (const core::SkylineEntry& entry : skyline.entries()) {
        out.results.push_back(entry.solution);
      }
      std::sort(out.results.begin(), out.results.end(), ByPoint);
      return out;
    }
    // Rank constraining: top-pool_k by RK, then the diversity filter.
    std::sort(exact.begin(), exact.end(), ByRank);
    if (static_cast<int64_t>(exact.size()) > pool_k) {
      exact.resize(static_cast<size_t>(pool_k));
    }
    out.results = SelectDiverse(std::move(exact), options.result_spacing, k);
    return out;
  }

  // Relaxation: best-pool_k by RP over everything reachable, exact
  // results first (their RP is 0), then the diversity filter.
  std::sort(finite.begin(), finite.end(), ByPenalty);
  if (static_cast<int64_t>(finite.size()) > pool_k) {
    finite.resize(static_cast<size_t>(pool_k));
  }
  out.results = SelectDiverse(std::move(finite), options.result_spacing, k);
  return out;
}

}  // namespace dqr::fuzz
