#ifndef DQR_TESTING_ORACLE_H_
#define DQR_TESTING_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "core/solution.h"
#include "searchlight/query.h"

namespace dqr::fuzz {

// What the reference oracle computed for one (query, options) pair.
struct OracleResult {
  // The final result set the engine is required to return, in the
  // engine's own final ordering (see core::ResultTracker::FinalResults).
  std::vector<core::Solution> results;
  // Size of the enumerated search space (product of domain sizes).
  int64_t space_size = 0;
  // Assignments with RP == 0 (exact results).
  int64_t exact_count = 0;
  // Assignments with finite RP (reachable by relaxation at all).
  int64_t finite_count = 0;
};

// The brute-force reference oracle of the differential fuzz harness: it
// enumerates *every* assignment of the query's domains, scores each one
// with the engine's own penalty/rank models, and assembles the final
// result set straight from the paper's §3 guarantees:
//
//   * refinement off (or k == 0): every exact result, in point order;
//   * >= k exact results, rank constraining: the top-k by RK
//     (descending, point tie-break), diversity-filtered if configured;
//   * >= k exact results, skyline constraining: the exact non-dominated
//     frontier, in point order;
//   * fewer than k exact results: the best-k by RP (ascending, point
//     tie-break) over all finite-RP assignments, diversity-filtered.
//
// The oracle shares only the Solution scoring path (ConstraintBundle +
// models) with the engine; it is independent of the CP solver, the
// synopsis estimator, the fail registry/replay machinery, the scheduler,
// and the failure model — which is exactly what makes engine-vs-oracle
// disagreement evidence of an engine bug.
//
// Honors options.enable / constrain / alpha / result_spacing /
// diversity_pool_factor / custom models; every other option is, by the
// engine's correctness contract, irrelevant to the final result set.
//
// Returns InvalidArgument when the search space exceeds `max_space`
// assignments (the generator keeps fuzz workloads far below this).
Result<OracleResult> OracleRun(const searchlight::QuerySpec& query,
                               const core::RefineOptions& options,
                               int64_t max_space = int64_t{1} << 22);

}  // namespace dqr::fuzz

#endif  // DQR_TESTING_ORACLE_H_
