#include "testing/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "data/query_parser.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "searchlight/functions.h"
#include "searchlight/grid_functions.h"

namespace dqr::fuzz {
namespace {

using searchlight::AvgFunction;
using searchlight::GridFunctionContext;
using searchlight::MaxFunction;
using searchlight::MinFunction;
using searchlight::NeighborhoodContrastFunction;
using searchlight::RectAvgFunction;
using searchlight::RectContrastFunction;
using searchlight::RectMaxFunction;
using searchlight::WindowFunctionContext;

constexpr double kInf = std::numeric_limits<double>::infinity();

void AppendKv(std::string* out, const char* key, const std::string& value) {
  if (!out->empty()) *out += ';';
  *out += key;
  *out += '=';
  *out += value;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Semantic function id: kind + parameters + value range at full
// precision (the cache::CachedQuery contract). An empty range derives
// from the synopsis, which the session's dataset_id pins, so "derived"
// is unambiguous within a session.
std::string FunctionId(const std::string& kind, const Interval& vr,
                       int64_t param = -1) {
  std::string id = kind;
  if (param >= 0) id += ";p=" + std::to_string(param);
  if (vr.empty()) {
    id += ";vr=derived";
  } else {
    char buf[80];
    std::snprintf(buf, sizeof(buf), ";vr=%.17g,%.17g", vr.lo, vr.hi);
    id += buf;
  }
  return id;
}

// Quantile over a sorted sample, q in [0, 1].
double Quantile(const std::vector<double>& sorted, double q) {
  DQR_CHECK(!sorted.empty());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] + frac * (sorted[i + 1] - sorted[i]);
}

// Deterministic crash plan that always leaves instance 0 alive: victims
// are drawn (without repetition) from instances 1..n-1, sites and event
// indices from small ranges so the events actually fire on tiny
// workloads. A first-pickup stall on every instance keeps the whole
// cluster in play long enough for victims to reach their events — stalls
// are themselves answer-preserving, which is part of what's under test.
core::FaultPlan MakeSurvivorCrashPlan(uint64_t seed, int num_instances,
                                      int crashes) {
  Rng rng(seed);
  core::FaultPlan plan;
  if (num_instances < 2) return plan;
  for (int i = 0; i < num_instances; ++i) {
    plan.Stall(i, core::FaultSite::kShardPickup, 0, 5000);
  }
  std::vector<int> victims;
  for (int i = 1; i < num_instances; ++i) victims.push_back(i);
  const int want = std::min<int>(crashes, static_cast<int>(victims.size()));
  for (int c = 0; c < want; ++c) {
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(victims.size()) - 1));
    const int victim = victims[pick];
    victims.erase(victims.begin() + static_cast<int64_t>(pick));
    const auto site = static_cast<core::FaultSite>(
        rng.UniformInt(0, core::kNumFaultSites - 1));
    const int64_t max_index =
        site == core::FaultSite::kShardPickup ? 3 : 12;
    plan.Crash(victim, site, rng.UniformInt(0, max_index));
  }
  return plan;
}

// The 2-D sibling of MakeWorkload's 1-D body: a tiled grid with planted
// rectangular plateaus and square spikes, a GridSynopsis, and rectangle
// constraints over four decision variables (0 = y, 1 = x, 2 = h, 3 = w).
// Draws come from a stream decorrelated from the 1-D generator, so
// flipping the grid flag never disturbs the 1-D workload of the same
// seed. Override semantics carry over with the obvious reinterpretation:
// length_cap clamps both grid extents, x_width_cap the width of variable
// 0's (y's) domain.
Workload MakeGridWorkload(uint64_t seed, FuzzMode mode,
                          const WorkloadOverrides& overrides,
                          cache::SharedBoundsMemo* shared_memo,
                          uint64_t memo_space) {
  Rng rng(seed ^ 0x5eed2d5eed2d5eedULL);
  Workload w;
  w.seed = seed;
  w.mode = mode;
  w.overrides = overrides;
  w.grid_workload = true;

  // --- grid schema + synthetic signal ---
  int64_t rows = rng.UniformInt(24, 44);
  int64_t cols = rng.UniformInt(24, 44);
  if (overrides.length_cap > 0) {
    const int64_t cap = std::max<int64_t>(16, overrides.length_cap);
    rows = std::min(rows, cap);
    cols = std::min(cols, cap);
  }
  const int64_t tile_choices[] = {8, 16, 32};
  const int64_t tile = tile_choices[rng.UniformInt(0, 2)];

  std::vector<double> data(static_cast<size_t>(rows * cols));
  const double noise = rng.Uniform(0.5, 3.0);
  for (double& v : data) v = 100.0 + noise * rng.NextGaussian();
  const int64_t plateaus = rng.UniformInt(1, 3);
  for (int64_t p = 0; p < plateaus; ++p) {
    const int64_t ph =
        rng.UniformInt(std::max<int64_t>(3, rows / 8), rows / 3);
    const int64_t pw =
        rng.UniformInt(std::max<int64_t>(3, cols / 8), cols / 3);
    const int64_t pr = rng.UniformInt(0, rows - ph);
    const int64_t pc = rng.UniformInt(0, cols - pw);
    const double offset = rng.Bernoulli(0.75) ? rng.Uniform(10.0, 60.0)
                                              : rng.Uniform(-30.0, -10.0);
    for (int64_t r = pr; r < pr + ph; ++r) {
      for (int64_t c = pc; c < pc + pw; ++c) {
        data[static_cast<size_t>(r * cols + c)] += offset;
      }
    }
  }
  const int64_t spikes = rng.UniformInt(2, 8);
  for (int64_t s = 0; s < spikes; ++s) {
    const int64_t size = rng.UniformInt(1, 3);
    const int64_t sr = rng.UniformInt(0, rows - size);
    const int64_t sc = rng.UniformInt(0, cols - size);
    const double height = rng.Uniform(20.0, 90.0);
    for (int64_t r = sr; r < sr + size; ++r) {
      for (int64_t c = sc; c < sc + size; ++c) {
        data[static_cast<size_t>(r * cols + c)] += height;
      }
    }
  }
  for (double& v : data) v = std::clamp(v, 50.0, 250.0);

  array::GridSchema schema;
  schema.name = "fuzz_grid_" + std::to_string(seed);
  schema.rows = rows;
  schema.cols = cols;
  schema.tile_size = tile;
  w.grid =
      array::Grid::FromData(std::move(schema), std::move(data)).value();

  synopsis::GridSynopsisOptions syn;
  switch (rng.UniformInt(0, 3)) {
    case 0:
      syn.cell_sizes = {16, 4};
      break;
    case 1:
      syn.cell_sizes = {8, 2};
      break;
    case 2:
      syn.cell_sizes = {32, 8};
      break;
    default:
      syn.cell_sizes = {16, 8, 4};
      break;
  }
  syn.max_cells_per_query = rng.Bernoulli(0.5) ? 16 : 64;
  w.grid_synopsis = synopsis::GridSynopsis::Build(*w.grid, syn).value();

  // --- rectangle geometry ---
  const int64_t h_lo = rng.UniformInt(2, 3);
  const int64_t h_hi = h_lo + rng.UniformInt(1, 3);
  const int64_t w_lo = rng.UniformInt(2, 3);
  const int64_t w_hi = w_lo + rng.UniformInt(1, 3);
  const int64_t nbhd = rng.UniformInt(2, 4);
  const int64_t y_lo = 0;
  int64_t y_hi = rows - h_hi;
  const int64_t x_lo = nbhd;
  const int64_t x_hi = cols - w_hi - nbhd;
  DQR_CHECK(y_hi >= y_lo && x_hi >= x_lo);
  if (overrides.x_width_cap > 0) {
    y_hi = std::min(y_hi, y_lo + overrides.x_width_cap - 1);
  }
  w.query.name = "fuzz_grid_query_" + std::to_string(seed);
  w.query.domains = {cp::IntDomain(y_lo, y_hi), cp::IntDomain(x_lo, x_hi),
                     cp::IntDomain(h_lo, h_hi), cp::IntDomain(w_lo, w_hi)};

  // --- cardinality + scoring knobs ---
  int64_t k = rng.UniformInt(1, 8);
  if (overrides.k_cap > 0) {
    k = std::min(k, std::max<int64_t>(1, overrides.k_cap));
  }
  w.query.k = k;

  const double alpha_choices[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  w.alpha = alpha_choices[rng.UniformInt(0, 4)];
  if (overrides.default_alpha) w.alpha = 0.5;

  switch (mode) {
    case FuzzMode::kConstrain:
      w.constrain = core::ConstrainMode::kRank;
      break;
    case FuzzMode::kSkyline:
      w.constrain = core::ConstrainMode::kSkyline;
      break;
    case FuzzMode::kRelax: {
      const int64_t roll = rng.UniformInt(0, 9);
      w.constrain = roll < 6   ? core::ConstrainMode::kRank
                    : roll < 8 ? core::ConstrainMode::kNone
                               : core::ConstrainMode::kSkyline;
      break;
    }
  }

  // --- mode-targeted anchor constraint (rectangle average) ---
  const int64_t h_mid = (h_lo + h_hi) / 2;
  const int64_t w_mid = (w_lo + w_hi) / 2;
  std::vector<double> rect_avgs;
  rect_avgs.reserve(static_cast<size_t>((y_hi - y_lo + 1) *
                                        (x_hi - x_lo + 1)));
  for (int64_t y = y_lo; y <= y_hi; ++y) {
    for (int64_t x = x_lo; x <= x_hi; ++x) {
      rect_avgs.push_back(
          w.grid->AggregateRect(y, y + h_mid, x, x + w_mid).avg());
    }
  }
  std::sort(rect_avgs.begin(), rect_avgs.end());

  Interval avg_bounds;
  if (mode == FuzzMode::kRelax) {
    const double a = Quantile(rect_avgs, rng.Uniform(0.975, 0.999));
    avg_bounds = Interval(a, a + rng.Uniform(5.0, 40.0));
  } else {
    const double a = Quantile(rect_avgs, rng.Uniform(0.2, 0.5));
    const double b = Quantile(rect_avgs, rng.Uniform(0.75, 0.98));
    avg_bounds = Interval(std::min(a, b), std::max(a, b));
  }
  Interval avg_range(50.0, 250.0);
  if (rng.Bernoulli(0.3)) {
    avg_range = Interval(avg_bounds.lo - rng.Uniform(5.0, 30.0),
                         avg_bounds.hi + rng.Uniform(5.0, 30.0));
  }

  GridFunctionContext base_ctx;
  base_ctx.grid = w.grid;
  base_ctx.synopsis = w.grid_synopsis;
  base_ctx.estimate_cost_ns = overrides.cost_ns;
  base_ctx.shared_memo = shared_memo;
  base_ctx.shared_memo_key = memo_space;

  {
    searchlight::QueryConstraint c;
    GridFunctionContext ctx = base_ctx;
    ctx.value_range = avg_range;
    c.make_function = [ctx] {
      return std::make_unique<RectAvgFunction>(ctx);
    };
    w.function_ids.push_back(FunctionId("rect_avg", ctx.value_range));
    c.bounds = avg_bounds;
    c.relaxable = rng.Bernoulli(0.9);
    c.relax_weight = rng.Uniform(0.3, 1.0);
    c.constrainable = rng.Bernoulli(0.9);
    c.rank_weight = rng.Bernoulli(0.6) ? -1.0 : rng.Uniform(0.1, 1.0);
    c.preference = rng.Bernoulli(0.7)
                       ? searchlight::RankPreference::kMaximize
                       : searchlight::RankPreference::kMinimize;
    c.name = "rect_avg";
    w.query.constraints.push_back(std::move(c));
  }

  // --- satellite constraints: rect_max / rect_contrast ---
  const double data_lo = Quantile(rect_avgs, 0.0);
  const double data_hi = Quantile(rect_avgs, 1.0);
  const int extra = static_cast<int>(rng.UniformInt(0, 3));
  for (int e = 0; e < extra; ++e) {
    searchlight::QueryConstraint c;
    GridFunctionContext ctx = base_ctx;
    if (rng.Bernoulli(0.5)) {
      ctx.value_range = Interval::Empty();
    } else {
      ctx.value_range = Interval(40.0, 260.0);
    }
    const int64_t kind = rng.UniformInt(0, 2);
    if (kind == 0) {
      c.make_function = [ctx] {
        return std::make_unique<RectMaxFunction>(ctx);
      };
      const double cut =
          rng.Bernoulli(0.75)
              ? rng.Uniform(data_lo, (data_lo + data_hi) / 2)
              : rng.Uniform((data_lo + data_hi) / 2, data_hi + 30.0);
      c.bounds = Interval(cut, kInf);
      c.name = "rect_max";
      w.function_ids.push_back(FunctionId("rect_max", ctx.value_range));
    } else {
      const auto side = kind == 1 ? RectContrastFunction::Side::kLeft
                                  : RectContrastFunction::Side::kRight;
      const int64_t width = nbhd;
      c.make_function = [ctx, side, width] {
        return std::make_unique<RectContrastFunction>(ctx, side, width);
      };
      c.bounds = Interval(rng.Uniform(0.0, 60.0), kInf);
      c.name = kind == 1 ? "rect_contrast_left" : "rect_contrast_right";
      w.function_ids.push_back(FunctionId(c.name, ctx.value_range, width));
    }
    c.relaxable = rng.Bernoulli(0.8);
    c.relax_weight = rng.Uniform(0.3, 1.0);
    c.constrainable = rng.Bernoulli(0.75);
    c.rank_weight = rng.Bernoulli(0.6) ? -1.0 : rng.Uniform(0.1, 1.0);
    c.preference = rng.Bernoulli(0.7)
                       ? searchlight::RankPreference::kMaximize
                       : searchlight::RankPreference::kMinimize;
    w.query.constraints.push_back(std::move(c));
  }
  if (overrides.max_constraints > 0 &&
      static_cast<int>(w.query.constraints.size()) >
          overrides.max_constraints) {
    w.query.constraints.resize(
        static_cast<size_t>(std::max(1, overrides.max_constraints)));
    w.function_ids.resize(w.query.constraints.size());
  }

  // --- diversity (one spacing entry per decision variable) ---
  if (mode != FuzzMode::kSkyline && rng.Bernoulli(0.15) &&
      !overrides.no_diversity) {
    w.result_spacing = {rng.UniformInt(2, 8), rng.UniformInt(2, 8), 0, 0};
    w.diversity_pool_factor = rng.UniformInt(4, 8);
  }

  // --- summary line ---
  std::string s;
  AppendKv(&s, "seed", std::to_string(seed));
  AppendKv(&s, "mode", FuzzModeName(mode));
  AppendKv(&s, "grid",
           std::to_string(rows) + "x" + std::to_string(cols));
  AppendKv(&s, "tile", std::to_string(tile));
  AppendKv(&s, "y", std::to_string(y_lo) + ".." + std::to_string(y_hi));
  AppendKv(&s, "x", std::to_string(x_lo) + ".." + std::to_string(x_hi));
  AppendKv(&s, "h", std::to_string(h_lo) + ".." + std::to_string(h_hi));
  AppendKv(&s, "w", std::to_string(w_lo) + ".." + std::to_string(w_hi));
  AppendKv(&s, "k", std::to_string(k));
  AppendKv(&s, "alpha", FormatDouble(w.alpha));
  std::string cons;
  for (const searchlight::QueryConstraint& qc : w.query.constraints) {
    if (!cons.empty()) cons += '+';
    cons += qc.name;
  }
  AppendKv(&s, "cons", cons);
  if (!w.result_spacing.empty()) {
    AppendKv(&s, "spacing",
             std::to_string(w.result_spacing[0]) + "," +
                 std::to_string(w.result_spacing[1]));
  }
  if (overrides.any()) AppendKv(&s, "overrides", overrides.ToString());
  w.summary = s;
  return w;
}

}  // namespace

const char* FuzzModeName(FuzzMode mode) {
  switch (mode) {
    case FuzzMode::kRelax:
      return "relax";
    case FuzzMode::kConstrain:
      return "constrain";
    case FuzzMode::kSkyline:
      return "skyline";
  }
  return "unknown";
}

Result<FuzzMode> FuzzModeFromName(const std::string& name) {
  if (name == "relax") return FuzzMode::kRelax;
  if (name == "constrain") return FuzzMode::kConstrain;
  if (name == "skyline") return FuzzMode::kSkyline;
  return InvalidArgumentError("unknown fuzz mode: " + name);
}

std::string WorkloadOverrides::ToString() const {
  std::string out;
  const auto append = [&out](const std::string& piece) {
    if (!out.empty()) out += ' ';
    out += piece;
  };
  if (length_cap != 0) append("len<=" + std::to_string(length_cap));
  if (max_constraints != 0) {
    append("cons<=" + std::to_string(max_constraints));
  }
  if (k_cap != 0) append("k<=" + std::to_string(k_cap));
  if (x_width_cap != 0) append("xw<=" + std::to_string(x_width_cap));
  if (no_diversity) append("nodiv");
  if (default_alpha) append("alpha=0.5");
  if (cost_ns != 0) append("cost=" + std::to_string(cost_ns));
  return out;
}

Workload MakeWorkload(uint64_t seed, FuzzMode mode,
                      const WorkloadOverrides& overrides, bool grid,
                      cache::SharedBoundsMemo* shared_memo,
                      uint64_t memo_space) {
  if (grid) {
    return MakeGridWorkload(seed, mode, overrides, shared_memo, memo_space);
  }
  Rng rng(seed);
  Workload w;
  w.seed = seed;
  w.mode = mode;
  w.overrides = overrides;

  // --- array schema + synthetic signal ---
  int64_t n = rng.UniformInt(48, 384);
  if (overrides.length_cap > 0) {
    n = std::min(n, std::max<int64_t>(32, overrides.length_cap));
  }
  const int64_t chunk_choices[] = {16, 32, 64};
  const int64_t chunk = chunk_choices[rng.UniformInt(0, 2)];

  std::vector<double> data(static_cast<size_t>(n));
  const double noise = rng.Uniform(0.5, 3.0);
  for (int64_t i = 0; i < n; ++i) {
    data[static_cast<size_t>(i)] = 100.0 + noise * rng.NextGaussian();
  }
  const int64_t plateaus = rng.UniformInt(1, 3);
  for (int64_t p = 0; p < plateaus; ++p) {
    const int64_t len = rng.UniformInt(std::max<int64_t>(4, n / 10), n / 3);
    const int64_t start = rng.UniformInt(0, std::max<int64_t>(0, n - len));
    const double offset = rng.Bernoulli(0.75) ? rng.Uniform(10.0, 60.0)
                                              : rng.Uniform(-30.0, -10.0);
    for (int64_t i = start; i < std::min(n, start + len); ++i) {
      data[static_cast<size_t>(i)] += offset;
    }
  }
  const int64_t spikes = rng.UniformInt(2, 8);
  for (int64_t s = 0; s < spikes; ++s) {
    const int64_t width = rng.UniformInt(1, 4);
    const int64_t pos = rng.UniformInt(0, std::max<int64_t>(0, n - width));
    const double height = rng.Uniform(20.0, 90.0);
    for (int64_t i = pos; i < std::min(n, pos + width); ++i) {
      data[static_cast<size_t>(i)] += height;
    }
  }
  for (double& v : data) v = std::clamp(v, 50.0, 250.0);

  array::ArraySchema schema;
  schema.name = "fuzz_" + std::to_string(seed);
  schema.length = n;
  schema.chunk_size = chunk;
  w.array = array::Array::FromData(std::move(schema), std::move(data))
                .value();

  synopsis::SynopsisOptions syn;
  switch (rng.UniformInt(0, 3)) {
    case 0:
      syn.cell_sizes = {64, 8};
      break;
    case 1:
      syn.cell_sizes = {32, 8};
      break;
    case 2:
      syn.cell_sizes = {16, 4};
      break;
    default:
      syn.cell_sizes = {128, 16};
      break;
  }
  syn.max_cells_per_query = rng.Bernoulli(0.5) ? 16 : 64;
  w.synopsis = synopsis::Synopsis::Build(*w.array, syn).value();

  // --- window geometry ---
  const int64_t len_lo = rng.UniformInt(2, 4);
  const int64_t len_hi = len_lo + rng.UniformInt(1, 6);
  const int64_t nbhd = rng.UniformInt(2, 6);
  const int64_t x_lo = nbhd;
  int64_t x_hi = n - len_hi - nbhd - 1;
  DQR_CHECK(x_hi >= x_lo);
  if (overrides.x_width_cap > 0) {
    x_hi = std::min(x_hi, x_lo + overrides.x_width_cap - 1);
  }
  w.query.name = "fuzz_query_" + std::to_string(seed);
  w.query.domains = {cp::IntDomain(x_lo, x_hi),
                     cp::IntDomain(len_lo, len_hi)};

  // --- cardinality + scoring knobs (drawn before mode targeting so that
  // overrides never shift later draws) ---
  int64_t k = rng.UniformInt(1, 8);
  if (overrides.k_cap > 0) k = std::min(k, std::max<int64_t>(1, overrides.k_cap));
  w.query.k = k;

  const double alpha_choices[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  w.alpha = alpha_choices[rng.UniformInt(0, 4)];
  if (overrides.default_alpha) w.alpha = 0.5;

  switch (mode) {
    case FuzzMode::kConstrain:
      w.constrain = core::ConstrainMode::kRank;
      break;
    case FuzzMode::kSkyline:
      w.constrain = core::ConstrainMode::kSkyline;
      break;
    case FuzzMode::kRelax: {
      // The constrain mode only matters if the workload unexpectedly
      // lands on >= k exact results — worth covering rather than pinning.
      const int64_t roll = rng.UniformInt(0, 9);
      w.constrain = roll < 6   ? core::ConstrainMode::kRank
                    : roll < 8 ? core::ConstrainMode::kNone
                               : core::ConstrainMode::kSkyline;
      break;
    }
  }

  // --- mode-targeted anchor constraint (window average) ---
  // Quantiles of the mid-length sliding-window average steer how many
  // exact results exist relative to k: scarce for relax, plentiful for
  // constrain/skyline.
  const int64_t len_mid = (len_lo + len_hi) / 2;
  std::vector<double> window_avgs;
  window_avgs.reserve(static_cast<size_t>(x_hi - x_lo + 1));
  for (int64_t x = x_lo; x <= x_hi; ++x) {
    window_avgs.push_back(w.array->AggregateWindow(x, x + len_mid).avg());
  }
  std::sort(window_avgs.begin(), window_avgs.end());

  Interval avg_bounds;
  if (mode == FuzzMode::kRelax) {
    const double a = Quantile(window_avgs, rng.Uniform(0.975, 0.999));
    avg_bounds = Interval(a, a + rng.Uniform(5.0, 40.0));
  } else {
    const double a = Quantile(window_avgs, rng.Uniform(0.2, 0.5));
    const double b = Quantile(window_avgs, rng.Uniform(0.75, 0.98));
    avg_bounds = Interval(std::min(a, b), std::max(a, b));
  }
  Interval avg_range(50.0, 250.0);
  if (rng.Bernoulli(0.3)) {
    // SEL-style tight range: a hard limit close to the bounds, so maximal
    // relaxation stays selective (and some values become hard violations).
    avg_range = Interval(avg_bounds.lo - rng.Uniform(5.0, 30.0),
                         avg_bounds.hi + rng.Uniform(5.0, 30.0));
  }

  WindowFunctionContext base_ctx;
  base_ctx.array = w.array;
  base_ctx.synopsis = w.synopsis;
  base_ctx.x_var = 0;
  base_ctx.len_var = 1;
  base_ctx.estimate_cost_ns = overrides.cost_ns;
  base_ctx.shared_memo = shared_memo;
  base_ctx.shared_memo_key = memo_space;

  // Parsed-IR mirror of each constraint, built alongside the factories
  // so Workload::query_text stays answer-identical to `query` by
  // construction (serve transport contract).
  std::vector<data::ParsedConstraint> parsed_cons;
  {
    searchlight::QueryConstraint c;
    WindowFunctionContext ctx = base_ctx;
    ctx.value_range = avg_range;
    c.make_function = [ctx] { return std::make_unique<AvgFunction>(ctx); };
    w.function_ids.push_back(FunctionId("avg", ctx.value_range));
    c.bounds = avg_bounds;
    c.relaxable = rng.Bernoulli(0.9);
    c.relax_weight = rng.Uniform(0.3, 1.0);
    c.constrainable = rng.Bernoulli(0.9);
    c.rank_weight = rng.Bernoulli(0.6) ? -1.0 : rng.Uniform(0.1, 1.0);
    c.preference = rng.Bernoulli(0.7)
                       ? searchlight::RankPreference::kMaximize
                       : searchlight::RankPreference::kMinimize;
    c.name = "avg";
    data::ParsedConstraint pc;
    pc.fn = c.name;
    pc.bounds = c.bounds;
    pc.range = ctx.value_range;
    pc.weight = c.relax_weight;
    pc.rank_weight = c.rank_weight;
    pc.relaxable = c.relaxable;
    pc.constrainable = c.constrainable;
    pc.maximize = c.preference == searchlight::RankPreference::kMaximize;
    parsed_cons.push_back(std::move(pc));
    w.query.constraints.push_back(std::move(c));
  }

  // --- satellite constraints: min/max/neighborhood contrast ---
  const double data_lo = Quantile(window_avgs, 0.0);
  const double data_hi = Quantile(window_avgs, 1.0);
  const int extra = static_cast<int>(rng.UniformInt(0, 3));
  for (int e = 0; e < extra; ++e) {
    searchlight::QueryConstraint c;
    WindowFunctionContext ctx = base_ctx;
    if (rng.Bernoulli(0.5)) {
      // Empty range: the function derives it from the synopsis.
      ctx.value_range = Interval::Empty();
    } else {
      ctx.value_range = Interval(40.0, 260.0);
    }
    const int64_t kind = rng.UniformInt(0, 3);
    if (kind == 0) {
      c.make_function = [ctx] { return std::make_unique<MaxFunction>(ctx); };
      // Mostly-feasible half-open lower bound; occasionally demanding.
      const double cut = rng.Bernoulli(0.75)
                             ? rng.Uniform(data_lo, (data_lo + data_hi) / 2)
                             : rng.Uniform((data_lo + data_hi) / 2, data_hi + 30.0);
      c.bounds = Interval(cut, kInf);
      c.name = "max";
      w.function_ids.push_back(FunctionId("max", ctx.value_range));
    } else if (kind == 1) {
      c.make_function = [ctx] { return std::make_unique<MinFunction>(ctx); };
      const double cut = rng.Bernoulli(0.75)
                             ? rng.Uniform((data_lo + data_hi) / 2, data_hi)
                             : rng.Uniform(data_lo - 30.0, (data_lo + data_hi) / 2);
      c.bounds = Interval(-kInf, cut);
      c.name = "min";
      w.function_ids.push_back(FunctionId("min", ctx.value_range));
    } else {
      const auto side = kind == 2
                            ? NeighborhoodContrastFunction::Side::kLeft
                            : NeighborhoodContrastFunction::Side::kRight;
      const int64_t width = nbhd;
      c.make_function = [ctx, side, width] {
        return std::make_unique<NeighborhoodContrastFunction>(ctx, side,
                                                              width);
      };
      c.bounds = Interval(rng.Uniform(0.0, 60.0), kInf);
      c.name = kind == 2 ? "contrast_left" : "contrast_right";
      w.function_ids.push_back(FunctionId(c.name, ctx.value_range, width));
    }
    c.relaxable = rng.Bernoulli(0.8);
    c.relax_weight = rng.Uniform(0.3, 1.0);
    c.constrainable = rng.Bernoulli(0.75);
    c.rank_weight = rng.Bernoulli(0.6) ? -1.0 : rng.Uniform(0.1, 1.0);
    c.preference = rng.Bernoulli(0.7)
                       ? searchlight::RankPreference::kMaximize
                       : searchlight::RankPreference::kMinimize;
    data::ParsedConstraint pc;
    pc.fn = c.name;
    if (c.name == "contrast_left" || c.name == "contrast_right") {
      pc.width = nbhd;
    }
    pc.bounds = c.bounds;
    pc.range = ctx.value_range;
    pc.weight = c.relax_weight;
    pc.rank_weight = c.rank_weight;
    pc.relaxable = c.relaxable;
    pc.constrainable = c.constrainable;
    pc.maximize = c.preference == searchlight::RankPreference::kMaximize;
    parsed_cons.push_back(std::move(pc));
    w.query.constraints.push_back(std::move(c));
  }
  if (overrides.max_constraints > 0 &&
      static_cast<int>(w.query.constraints.size()) >
          overrides.max_constraints) {
    w.query.constraints.resize(
        static_cast<size_t>(std::max(1, overrides.max_constraints)));
    w.function_ids.resize(w.query.constraints.size());
    parsed_cons.resize(w.query.constraints.size());
  }
  {
    data::ParsedQuery pq;
    pq.k = k;
    pq.var_names = {"x", "len"};
    pq.domains = w.query.domains;
    pq.constraints = std::move(parsed_cons);
    w.query_text = data::SerializeQuery(pq);
  }

  // --- diversity (rank/relax only; skyline output is unfiltered) ---
  if (mode != FuzzMode::kSkyline && rng.Bernoulli(0.15) &&
      !overrides.no_diversity) {
    w.result_spacing = {rng.UniformInt(2, 10), rng.UniformInt(0, 2)};
    w.diversity_pool_factor = rng.UniformInt(4, 8);
  }

  // --- summary line ---
  std::string s;
  AppendKv(&s, "seed", std::to_string(seed));
  AppendKv(&s, "mode", FuzzModeName(mode));
  AppendKv(&s, "n", std::to_string(n));
  AppendKv(&s, "chunk", std::to_string(chunk));
  AppendKv(&s, "x", std::to_string(x_lo) + ".." + std::to_string(x_hi));
  AppendKv(&s, "len",
           std::to_string(len_lo) + ".." + std::to_string(len_hi));
  AppendKv(&s, "k", std::to_string(k));
  AppendKv(&s, "alpha", FormatDouble(w.alpha));
  std::string cons;
  for (const searchlight::QueryConstraint& qc : w.query.constraints) {
    if (!cons.empty()) cons += '+';
    cons += qc.name;
  }
  AppendKv(&s, "cons", cons);
  if (!w.result_spacing.empty()) {
    AppendKv(&s, "spacing",
             std::to_string(w.result_spacing[0]) + "," +
                 std::to_string(w.result_spacing[1]));
  }
  if (overrides.any()) AppendKv(&s, "overrides", overrides.ToString());
  w.summary = s;
  return w;
}

std::string EngineConfig::ToString() const {
  std::string out;
  AppendKv(&out, "inst", std::to_string(num_instances));
  AppendKv(&out, "shards", std::to_string(shards_per_instance));
  AppendKv(&out, "eval",
           fail_eval == core::FailEvalMode::kLazy ? "lazy" : "full");
  AppendKv(&out, "spec", speculative ? "1" : "0");
  AppendKv(&out, "state", save_function_state ? "1" : "0");
  AppendKv(&out, "rrd", FormatDouble(rrd));
  AppendKv(&out, "replay",
           replay_order == core::ReplayOrder::kBestFirst ? "brp" : "fifo");
  AppendKv(&out, "vq",
           validator_queue == core::ValidatorQueueOrder::kBrpPriority
               ? "brp"
               : "fifo");
  AppendKv(&out, "crashes", std::to_string(fault_crashes));
  AppendKv(&out, "det", enable_failure_detector ? "1" : "0");
  AppendKv(&out, "trace", trace ? "1" : "0");
  AppendKv(&out, "simd", simd ? "1" : "0");
  AppendKv(&out, "pool", pool ? "1" : "0");
  AppendKv(&out, "serve", serve ? "1" : "0");
  AppendKv(&out, "profile", profile ? "1" : "0");
  return out;
}

Result<EngineConfig> EngineConfig::FromString(const std::string& text) {
  EngineConfig config;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string piece = text.substr(pos, end - pos);
    pos = end + 1;
    if (piece.empty()) continue;
    const size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("config: expected key=value, got '" +
                                  piece + "'");
    }
    const std::string key = piece.substr(0, eq);
    const std::string value = piece.substr(eq + 1);
    if (key == "inst") {
      config.num_instances = std::atoi(value.c_str());
      if (config.num_instances < 1) {
        return InvalidArgumentError("config: inst must be >= 1");
      }
    } else if (key == "shards") {
      config.shards_per_instance = std::atoi(value.c_str());
      if (config.shards_per_instance < 1) {
        return InvalidArgumentError("config: shards must be >= 1");
      }
    } else if (key == "eval") {
      if (value != "lazy" && value != "full") {
        return InvalidArgumentError("config: eval must be lazy|full");
      }
      config.fail_eval = value == "lazy" ? core::FailEvalMode::kLazy
                                         : core::FailEvalMode::kFull;
    } else if (key == "spec") {
      config.speculative = value == "1";
    } else if (key == "state") {
      config.save_function_state = value == "1";
    } else if (key == "rrd") {
      config.rrd = std::atof(value.c_str());
      if (config.rrd <= 0.0 || config.rrd > 1.0) {
        return InvalidArgumentError("config: rrd must lie in (0, 1]");
      }
    } else if (key == "replay") {
      if (value != "brp" && value != "fifo") {
        return InvalidArgumentError("config: replay must be brp|fifo");
      }
      config.replay_order = value == "brp" ? core::ReplayOrder::kBestFirst
                                           : core::ReplayOrder::kFifo;
    } else if (key == "vq") {
      if (value != "brp" && value != "fifo") {
        return InvalidArgumentError("config: vq must be brp|fifo");
      }
      config.validator_queue =
          value == "brp" ? core::ValidatorQueueOrder::kBrpPriority
                         : core::ValidatorQueueOrder::kFifo;
    } else if (key == "crashes") {
      config.fault_crashes = std::atoi(value.c_str());
      if (config.fault_crashes < 0) {
        return InvalidArgumentError("config: crashes must be >= 0");
      }
    } else if (key == "det") {
      config.enable_failure_detector = value == "1";
    } else if (key == "trace") {
      config.trace = value == "1";
    } else if (key == "simd") {
      config.simd = value == "1";
    } else if (key == "pool") {
      config.pool = value == "1";
    } else if (key == "serve") {
      config.serve = value == "1";
    } else if (key == "profile") {
      config.profile = value == "1";
    } else {
      return InvalidArgumentError("config: unknown key '" + key + "'");
    }
  }
  return config;
}

core::RefineOptions EngineConfig::ToOptions(const Workload& workload,
                                            core::FaultPlan* plan) const {
  core::RefineOptions options;
  options.alpha = workload.alpha;
  options.constrain = workload.constrain;
  options.result_spacing = workload.result_spacing;
  options.diversity_pool_factor = workload.diversity_pool_factor;

  options.num_instances = num_instances;
  options.shards_per_instance = shards_per_instance;
  options.fail_eval = fail_eval;
  options.speculative = speculative;
  options.save_function_state = save_function_state;
  options.replay_relaxation_distance = rrd;
  options.replay_order = replay_order;
  options.validator_queue = validator_queue;
  options.enable_failure_detector = enable_failure_detector;
  if (pool) {
    options.worker_pool = &exec::WorkerPool::Shared();
    options.timer_wheel = &exec::TimerWheel::Shared();
  }

  if (fault_crashes > 0 && num_instances > 1 && plan != nullptr) {
    *plan = MakeSurvivorCrashPlan(workload.seed ^ 0xfa57fa57fa57fa57ULL,
                                  num_instances, fault_crashes);
    options.fault_plan = plan;
    // Short lease for fast recovery on tiny fuzz problems, long enough
    // that an independent heartbeat thread cannot plausibly miss it.
    options.heartbeat_interval_us = 20000;
    options.lease_timeout_us = 120000;
  }
  return options;
}

std::vector<EngineConfig> MakeConfigMatrix(uint64_t seed, int count) {
  count = std::clamp(count, 3, 8);
  Rng rng(seed ^ 0xc0f1c0f1c0f1c0f1ULL);
  // Pool-mode draws come from a decorrelated stream so adding the pool
  // dimension left every pre-existing matrix draw byte-identical.
  Rng pool_rng(seed ^ 0x9001900190019001ULL);
  // Same trick for the profile dimension.
  Rng profile_rng(seed ^ 0x50f11e5050f11e50ULL);
  std::vector<EngineConfig> configs;

  // [0] the sequential baseline: one instance, one shard, paper defaults.
  configs.push_back(EngineConfig{});

  // [1] work stealing + seeded optimization toggles; always scalar, so
  // every matrix differentials the scalar kernels against the SIMD
  // baseline at [0].
  {
    EngineConfig c;
    c.num_instances = static_cast<int>(rng.UniformInt(2, 4));
    c.shards_per_instance = static_cast<int>(rng.UniformInt(4, 8));
    c.speculative = rng.Bernoulli(0.5);
    c.fail_eval = rng.Bernoulli(0.5) ? core::FailEvalMode::kLazy
                                     : core::FailEvalMode::kFull;
    const double rrd_choices[] = {1.0, 0.5, 0.25};
    c.rrd = rrd_choices[rng.UniformInt(0, 2)];
    c.save_function_state = rng.Bernoulli(0.8);
    c.simd = false;
    // Always pool-mode, so every matrix differentials the shared-pool
    // scheduler against the per-query-thread baseline at [0].
    c.pool = true;
    // Always profiled, so every matrix differentials a profiled
    // work-stealing run against the unprofiled baseline at [0].
    c.profile = true;
    configs.push_back(c);
  }

  // [2] deterministic fault injection under work stealing.
  {
    EngineConfig c;
    c.num_instances = 3;
    c.shards_per_instance = 8;
    c.speculative = rng.Bernoulli(0.3);
    c.fault_crashes = static_cast<int>(rng.UniformInt(1, 2));
    c.enable_failure_detector = true;
    c.pool = pool_rng.Bernoulli(0.5);
    c.profile = profile_rng.Bernoulli(0.5);
    configs.push_back(c);
  }

  // [3..] fully random draws.
  for (int i = 3; i < count; ++i) {
    EngineConfig c;
    c.num_instances = static_cast<int>(rng.UniformInt(1, 4));
    c.shards_per_instance = static_cast<int>(rng.UniformInt(1, 8));
    c.speculative = rng.Bernoulli(0.4);
    c.fail_eval = rng.Bernoulli(0.5) ? core::FailEvalMode::kLazy
                                     : core::FailEvalMode::kFull;
    c.rrd = rng.Bernoulli(0.5) ? 1.0 : rng.Uniform(0.2, 1.0);
    c.save_function_state = rng.Bernoulli(0.8);
    c.replay_order = rng.Bernoulli(0.8) ? core::ReplayOrder::kBestFirst
                                        : core::ReplayOrder::kFifo;
    c.validator_queue = rng.Bernoulli(0.8)
                            ? core::ValidatorQueueOrder::kBrpPriority
                            : core::ValidatorQueueOrder::kFifo;
    c.simd = rng.Bernoulli(0.7);
    if (c.num_instances > 1 && rng.Bernoulli(0.25)) {
      c.fault_crashes = 1;
      c.enable_failure_detector = true;
    }
    c.pool = pool_rng.Bernoulli(0.5);
    c.profile = profile_rng.Bernoulli(0.5);
    configs.push_back(c);
  }
  return configs;
}

// --- correlated query sessions ---

namespace {

// Applies one mutation to `prev`, drawing from a stream keyed on
// (seed, step) only — never on the outcome of earlier mutations — so a
// shortened plan replays its surviving steps bit-for-bit.
Workload ApplyMutation(const Workload& base, const Workload& prev,
                       SessionMutation mutation, uint64_t seed, int step) {
  Workload next = prev;
  Rng rng(seed ^ (0x6d75746174650000ULL +
                  static_cast<uint64_t>(step) * 0x9e3779b97f4a7c15ULL));
  switch (mutation) {
    case SessionMutation::kRepeat:
      break;
    case SessionMutation::kRelax:
      // Widen every finite bound side by a seeded fraction of the
      // constraint's span; half-open constraints widen their one finite
      // side against a fallback span.
      for (auto& qc : next.query.constraints) {
        Interval& b = qc.bounds;
        const double span =
            (std::isfinite(b.lo) && std::isfinite(b.hi) && b.hi > b.lo)
                ? b.hi - b.lo
                : 20.0;
        if (std::isfinite(b.lo)) b.lo -= rng.Uniform(0.05, 0.35) * span;
        if (std::isfinite(b.hi)) b.hi += rng.Uniform(0.05, 0.35) * span;
      }
      break;
    case SessionMutation::kTighten:
      // Shrink each finite side by at most 25% of the width — the two
      // cuts sum below the width, so the interval stays non-empty.
      for (auto& qc : next.query.constraints) {
        Interval& b = qc.bounds;
        if (std::isfinite(b.lo) && std::isfinite(b.hi)) {
          const double width = b.hi - b.lo;
          b.lo += rng.Uniform(0.0, 0.25) * width;
          b.hi -= rng.Uniform(0.0, 0.25) * width;
        } else if (std::isfinite(b.lo)) {
          b.lo += rng.Uniform(1.0, 10.0);
        } else if (std::isfinite(b.hi)) {
          b.hi -= rng.Uniform(1.0, 10.0);
        }
      }
      break;
    case SessionMutation::kShift: {
      // Move variable 0 to a sub-window of the *base* domain, so shifted
      // sessions stay inside the base query's universe (and inside any
      // x_width_cap the shrinker applied to it).
      const cp::IntDomain& d0 = base.query.domains[0];
      const int64_t width = d0.size();
      DQR_CHECK(width >= 1);
      const int64_t new_w =
          std::max<int64_t>(1, width - rng.UniformInt(0, width / 2));
      const int64_t off = rng.UniformInt(0, width - new_w);
      next.query.domains[0] =
          cp::IntDomain(d0.lo + off, d0.lo + off + new_w - 1);
      break;
    }
  }
  AppendKv(&next.summary, "mut",
           std::string(SessionMutationName(mutation)) + "@" +
               std::to_string(step));
  return next;
}

}  // namespace

const char* SessionMutationName(SessionMutation mutation) {
  switch (mutation) {
    case SessionMutation::kRepeat:
      return "repeat";
    case SessionMutation::kRelax:
      return "relax";
    case SessionMutation::kTighten:
      return "tighten";
    case SessionMutation::kShift:
      return "shift";
  }
  return "unknown";
}

Result<SessionMutation> SessionMutationFromName(const std::string& name) {
  if (name == "repeat") return SessionMutation::kRepeat;
  if (name == "relax") return SessionMutation::kRelax;
  if (name == "tighten") return SessionMutation::kTighten;
  if (name == "shift") return SessionMutation::kShift;
  return InvalidArgumentError("unknown session mutation: " + name);
}

std::string SessionPlan::ToString() const {
  std::string out;
  for (const SessionMutation m : steps) {
    if (!out.empty()) out += ',';
    out += SessionMutationName(m);
  }
  return out;
}

Result<SessionPlan> SessionPlan::FromString(const std::string& text) {
  SessionPlan plan;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string piece = text.substr(pos, end - pos);
    pos = end + 1;
    if (piece.empty()) {
      if (text.empty()) break;
      return InvalidArgumentError("session plan: empty step in '" + text +
                                  "'");
    }
    auto m = SessionMutationFromName(piece);
    if (!m.ok()) return m.status();
    plan.steps.push_back(m.value());
    if (end == text.size()) break;
  }
  return plan;
}

SessionPlan MakeSessionPlan(uint64_t seed, int num_steps) {
  SessionPlan plan;
  plan.steps.reserve(static_cast<size_t>(std::max(0, num_steps)));
  for (int i = 0; i < num_steps; ++i) {
    // One decorrelated stream per index => prefix stability.
    Rng rng(seed ^ (0x5e55104e00000000ULL +
                    static_cast<uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL));
    const int64_t roll = rng.UniformInt(0, 99);
    plan.steps.push_back(roll < 15   ? SessionMutation::kRepeat
                         : roll < 45 ? SessionMutation::kRelax
                         : roll < 75 ? SessionMutation::kTighten
                                     : SessionMutation::kShift);
  }
  return plan;
}

QuerySession MakeSession(uint64_t seed, FuzzMode mode,
                         const SessionPlan& plan,
                         const WorkloadOverrides& overrides, bool grid,
                         cache::SharedBoundsMemo* shared_memo,
                         uint64_t memo_space) {
  QuerySession session;
  session.plan = plan;
  // The id must pin everything that shapes the data/synopsis/functions:
  // overrides change the generated array (length_cap) and the constraint
  // list (max_constraints), so they are part of the dataset identity.
  session.dataset_id =
      (grid ? "fuzz_grid_" : "fuzz_") + std::to_string(seed);
  if (overrides.any()) session.dataset_id += "|" + overrides.ToString();
  session.steps.reserve(plan.steps.size() + 1);
  session.steps.push_back(
      MakeWorkload(seed, mode, overrides, grid, shared_memo, memo_space));
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    session.steps.push_back(ApplyMutation(session.steps.front(),
                                          session.steps.back(),
                                          plan.steps[i], seed,
                                          static_cast<int>(i)));
  }
  return session;
}

}  // namespace dqr::fuzz
