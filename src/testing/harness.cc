#include "testing/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "cache/semantic_cache.h"
#include "common/check.h"
#include "common/simd.h"
#include "core/canonical.h"
#include "core/fault.h"
#include "core/refiner.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "testing/oracle.h"

namespace dqr::fuzz {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ApplyBug(InjectedBug bug, std::vector<core::Solution>* results) {
  switch (bug) {
    case InjectedBug::kNone:
      break;
    case InjectedBug::kDropLast:
      if (!results->empty()) results->pop_back();
      break;
    case InjectedBug::kPerturbRp:
      if (!results->empty()) results->front().rp += 1e-3;
      break;
  }
}

// Text-level twin of ApplyBug for the serve transport, whose engine leg
// arrives as a canonical string rather than Solution objects. Each bug
// mirrors its solution-level sibling closely enough that the self-test
// and the shrinker behave identically on both transports.
void ApplyBugToCanonical(InjectedBug bug, std::string* canonical) {
  switch (bug) {
    case InjectedBug::kNone:
      break;
    case InjectedBug::kDropLast: {
      if (canonical->empty()) break;
      // Lines are '\n'-terminated; drop the last one.
      const size_t last =
          canonical->rfind('\n', canonical->size() - 2);
      canonical->resize(last == std::string::npos ? 0 : last + 1);
      break;
    }
    case InjectedBug::kPerturbRp:
      if (!canonical->empty()) canonical->insert(0, "bug ");
      break;
  }
}

// The process-wide loopback server the serve transport routes cases
// through: one dqr_serve over EngineSession::Shared(), started on first
// use and never stopped (the WorkerPool::Shared() lifetime policy) — so
// concurrent fuzz drivers exercise real multi-client multiplexing.
serve::Server& FuzzServer() {
  static serve::Server* server = [] {
    auto* s = new serve::Server();
    const Status st = s->Start();
    DQR_CHECK_MSG(st.ok(), "fuzz serve transport failed to start");
    return s;
  }();
  return *server;
}

// Builds the QUERY frame that reproduces exactly the RefineOptions
// EngineConfig::ToOptions would build for this workload — the serve leg
// must run the same semantics or the differential is vacuous.
serve::Frame MakeQueryFrame(const std::string& dataset, const Workload& w,
                            const EngineConfig& config) {
  serve::Frame q;
  q.type = serve::frame::kQuery;
  q.Set("id", "q");
  q.Set("dataset", dataset);
  q.Set("alpha", w.alpha);
  switch (w.constrain) {
    case core::ConstrainMode::kNone:
      q.Set("constrain", "none");
      break;
    case core::ConstrainMode::kRank:
      q.Set("constrain", "rank");
      break;
    case core::ConstrainMode::kSkyline:
      q.Set("constrain", "skyline");
      break;
  }
  if (!w.result_spacing.empty()) {
    std::string spacing;
    for (int64_t s : w.result_spacing) {
      if (!spacing.empty()) spacing += ',';
      spacing += std::to_string(s);
    }
    q.Set("spacing", spacing);
    q.Set("divpool", w.diversity_pool_factor);
  }
  q.Set("inst", static_cast<int64_t>(config.num_instances));
  q.Set("shards", static_cast<int64_t>(config.shards_per_instance));
  q.Set("eval",
        config.fail_eval == core::FailEvalMode::kLazy ? "lazy" : "full");
  q.Set("spec", config.speculative ? "1" : "0");
  q.Set("state", config.save_function_state ? "1" : "0");
  q.Set("rrd", config.rrd);
  q.Set("replay",
        config.replay_order == core::ReplayOrder::kBestFirst ? "brp"
                                                             : "fifo");
  q.Set("vq", config.validator_queue ==
                      core::ValidatorQueueOrder::kBrpPriority
                  ? "brp"
                  : "fifo");
  if (config.trace) q.Set("trace", "1");
  if (config.profile) q.Set("profile", "1");
  q.body = w.query_text;
  return q;
}

// Runs the engine leg of a case over the loopback server; returns the
// canonical result string from the FINAL frame. The dataset gets a
// unique name per call so concurrent drivers never collide, and is
// unregistered before returning.
Result<std::string> RunCaseOverServe(const Workload& workload,
                                     const EngineConfig& config) {
  serve::Server& server = FuzzServer();
  static std::atomic<uint64_t> counter{0};
  const std::string dataset =
      "fuzz_serve_" + std::to_string(counter.fetch_add(1));
  Status st = server.RegisterDataset(
      dataset, data::DatasetBundle{workload.array, workload.synopsis});
  if (!st.ok()) return st;

  serve::Client client;
  st = client.Connect(server.port());
  if (st.ok()) st = client.Hello("fuzz");
  Result<std::string> out = InternalError("unreachable");
  if (st.ok()) {
    Result<serve::QueryRun> run =
        client.RunQuery(MakeQueryFrame(dataset, workload, config));
    if (!run.ok()) {
      out = run.status();
    } else {
      const serve::QueryRun& qr = run.value();
      Result<int64_t> completed = qr.final.GetInt("completed", 0);
      const std::string fp = qr.fingerprint();
      if (!completed.ok() || completed.value() != 1) {
        out = InternalError("serve: FINAL frame reports incomplete run");
      } else if (fp != core::CanonicalFingerprint(qr.canonical())) {
        out = InternalError(
            "serve: FINAL fingerprint does not match its canonical body");
      } else {
        out = qr.canonical();
      }
    }
  } else {
    out = st;
  }
  client.Close();
  server.UnregisterDataset(dataset);
  return out;
}

}  // namespace

Result<InjectedBug> InjectedBugFromName(const std::string& name) {
  if (name == "none") return InjectedBug::kNone;
  if (name == "drop-last") return InjectedBug::kDropLast;
  if (name == "perturb-rp") return InjectedBug::kPerturbRp;
  return InvalidArgumentError("unknown injected bug: " + name +
                              " (want none|drop-last|perturb-rp)");
}

CaseResult RunCase(const CaseConfig& c, InjectedBug bug) {
  CaseResult out;
  // The simd dimension covers the whole case — workload build, oracle,
  // and engine all dispatch through the same kernels, so a case with
  // simd=0 is a complete scalar replica whose canonical answer must
  // still match the (SIMD-built) answers of its sibling configs.
  simd::ScopedSimdOverride simd_scope(c.config.simd);
  const Workload workload = MakeWorkload(c.seed, c.mode, c.overrides, c.grid);

  core::FaultPlan plan;
  core::RefineOptions options = c.config.ToOptions(workload, &plan);

  Result<OracleResult> oracle = OracleRun(workload.query, options);
  if (!oracle.ok()) {
    out.error = "oracle: " + oracle.status().ToString();
    return out;
  }

  // The serve dimension replaces the in-process engine leg with a round
  // trip through the loopback server: query_text over the framed
  // protocol, execution in the shared EngineSession, FINAL frame body
  // back. Grid workloads have no text IR and fault plans are not
  // expressible over the wire, so those cases run direct regardless.
  const bool use_serve =
      c.config.serve && !c.grid && c.config.fault_crashes == 0;

  std::string actual_canon;
  if (use_serve) {
    Result<std::string> served = RunCaseOverServe(workload, c.config);
    if (!served.ok()) {
      out.error = "serve engine: " + served.status().ToString();
      return out;
    }
    actual_canon = std::move(served).value();
    ApplyBugToCanonical(bug, &actual_canon);
  } else {
    // The recorder only observes the engine run; a small ring forces the
    // drop-oldest path on any non-trivial case, so the differential check
    // also covers truncated-trace bookkeeping.
    obs::Trace trace;
    if (c.config.trace) {
      options.trace = &trace;
      options.trace_buffer_events = 1 << 10;
    }
    // The profile dimension: per-query attribution + histograms must
    // observe the run without changing its answer.
    obs::Profile profile;
    if (c.config.profile) options.profile = &profile;

    Result<core::RunResult> engine =
        core::ExecuteQuery(workload.query, options);
    if (!engine.ok()) {
      out.error = "engine: " + engine.status().ToString();
      return out;
    }
    if (!engine.value().stats.completed) {
      out.error = "engine: run did not complete (lost work not recovered?)";
      return out;
    }

    std::vector<core::Solution> actual = std::move(engine.value().results);
    ApplyBug(bug, &actual);
    actual_canon = core::Canonicalize(actual);
  }

  out.expected = core::Canonicalize(oracle.value().results);
  out.actual = std::move(actual_canon);
  out.ok = out.expected == out.actual;
  out.detail = workload.summary +
               " space=" + std::to_string(oracle.value().space_size) +
               " exact=" + std::to_string(oracle.value().exact_count) +
               " finite=" + std::to_string(oracle.value().finite_count) +
               " | config " + c.config.ToString();
  return out;
}

CaseResult RunSessionCase(const CaseConfig& c, InjectedBug bug) {
  CaseResult out;
  simd::ScopedSimdOverride simd_scope(c.config.simd);
  const SessionPlan plan = MakeSessionPlan(c.seed, c.session);

  // Two structurally identical sessions over the same data: the cold leg
  // runs each query fresh, the warm leg shares one SemanticCache — its
  // bounds memo attached to every step's functions, answers routed
  // through ExecuteQueryCached so exact hits, subsumption, and warm
  // starts all get exercised by whatever the mutation chain produces.
  const QuerySession cold =
      MakeSession(c.seed, c.mode, plan, c.overrides, c.grid);
  cache::SemanticCache sem;
  const std::string& dataset = cold.dataset_id;
  const QuerySession warm =
      MakeSession(c.seed, c.mode, plan, c.overrides, c.grid, &sem.memo(),
                  sem.MemoSpace(dataset));

  std::string trail;
  const auto step_tag = [&](size_t step) {
    return "step " + std::to_string(step) + "/" +
           std::to_string(cold.steps.size() - 1);
  };
  for (size_t step = 0; step < cold.steps.size(); ++step) {
    const Workload& cw = cold.steps[step];
    const Workload& ww = warm.steps[step];

    core::FaultPlan cold_fault;
    core::FaultPlan warm_fault;
    core::RefineOptions cold_options = c.config.ToOptions(cw, &cold_fault);
    core::RefineOptions warm_options = c.config.ToOptions(ww, &warm_fault);

    Result<OracleResult> oracle = OracleRun(cw.query, cold_options);
    if (!oracle.ok()) {
      out.error = step_tag(step) + " oracle: " + oracle.status().ToString();
      return out;
    }

    obs::Trace cold_trace;
    obs::Trace warm_trace;
    if (c.config.trace) {
      cold_options.trace = &cold_trace;
      cold_options.trace_buffer_events = 1 << 10;
      warm_options.trace = &warm_trace;
      warm_options.trace_buffer_events = 1 << 10;
    }
    obs::Profile cold_profile;
    obs::Profile warm_profile;
    if (c.config.profile) {
      cold_options.profile = &cold_profile;
      warm_options.profile = &warm_profile;
    }

    Result<core::RunResult> cold_run =
        core::ExecuteQuery(cw.query, cold_options);
    if (!cold_run.ok()) {
      out.error =
          step_tag(step) + " cold engine: " + cold_run.status().ToString();
      return out;
    }
    if (!cold_run.value().stats.completed) {
      out.error = step_tag(step) + " cold engine: run did not complete";
      return out;
    }

    cache::CachedQuery cq;
    cq.query = ww.query;
    cq.dataset_id = dataset;
    cq.function_ids = ww.function_ids;
    cache::CacheOutcome outcome = cache::CacheOutcome::kMiss;
    Result<core::RunResult> warm_run =
        cache::ExecuteQueryCached(&sem, cq, warm_options, &outcome);
    if (!warm_run.ok()) {
      out.error =
          step_tag(step) + " warm engine: " + warm_run.status().ToString();
      return out;
    }
    if (!warm_run.value().stats.completed) {
      out.error = step_tag(step) + " warm engine: run did not complete";
      return out;
    }
    if (!trail.empty()) trail += ',';
    trail += cache::CacheOutcomeName(outcome);

    std::vector<core::Solution> warm_results =
        std::move(warm_run.value().results);
    ApplyBug(bug, &warm_results);

    const std::string expected = core::Canonicalize(oracle.value().results);
    const std::string cold_canon =
        core::Canonicalize(cold_run.value().results);
    const std::string warm_canon = core::Canonicalize(warm_results);
    if (expected != cold_canon || expected != warm_canon) {
      const bool warm_wrong = expected != warm_canon;
      out.expected = expected;
      out.actual = warm_wrong ? warm_canon : cold_canon;
      out.detail = cw.summary + " | session " + step_tag(step) +
                   " plan=" + plan.ToString() +
                   " leg=" + (warm_wrong ? "warm" : "cold") +
                   " cache=" + trail + " | config " + c.config.ToString();
      return out;
    }
  }
  out.ok = true;
  out.detail = cold.steps.front().summary +
               " | session plan=" + plan.ToString() + " cache=" + trail +
               " | config " + c.config.ToString();
  return out;
}

CaseResult RunAnyCase(const CaseConfig& c, InjectedBug bug) {
  return c.session > 0 ? RunSessionCase(c, bug) : RunCase(c, bug);
}

namespace {

// One shrink attempt: a named transformation of the case. Returns false
// when the transformation does not apply (already at the floor).
using ShrinkStep = bool (*)(CaseConfig*);

// First step tried: if a failure reproduces without the network round
// trip, the transport is exonerated and every later reduction runs at
// direct-execution speed.
bool DropServe(CaseConfig* c) {
  if (!c->config.serve) return false;
  c->config.serve = false;
  return true;
}

bool DropTrace(CaseConfig* c) {
  if (!c->config.trace) return false;
  c->config.trace = false;
  return true;
}

bool DropProfile(CaseConfig* c) {
  if (!c->config.profile) return false;
  c->config.profile = false;
  return true;
}

bool StripFaults(CaseConfig* c) {
  if (c->config.fault_crashes == 0 && !c->config.enable_failure_detector) {
    return false;
  }
  c->config.fault_crashes = 0;
  c->config.enable_failure_detector = false;
  return true;
}

bool SingleInstance(CaseConfig* c) {
  if (c->config.num_instances == 1 && c->config.shards_per_instance == 1) {
    return false;
  }
  c->config.num_instances = 1;
  c->config.shards_per_instance = 1;
  c->config.fault_crashes = 0;
  c->config.enable_failure_detector = false;
  return true;
}

bool DefaultEngineKnobs(CaseConfig* c) {
  EngineConfig plain;
  plain.num_instances = c->config.num_instances;
  plain.shards_per_instance = c->config.shards_per_instance;
  plain.fault_crashes = c->config.fault_crashes;
  plain.enable_failure_detector = c->config.enable_failure_detector;
  if (plain.ToString() == c->config.ToString()) return false;
  c->config = plain;
  return true;
}

bool HalveArray(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  // For grid workloads the cap clamps both extents; halve the larger one.
  const int64_t current =
      w.grid_workload ? std::max(w.grid->rows(), w.grid->cols())
                      : w.array->length();
  const int64_t floor = w.grid_workload ? 16 : 32;
  if (current <= floor) return false;
  c->overrides.length_cap = std::max<int64_t>(floor, current / 2);
  return true;
}

bool DropConstraints(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  const int current = static_cast<int>(w.query.constraints.size());
  if (current <= 1) return false;
  c->overrides.max_constraints = current - 1;
  return true;
}

bool LowerK(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  if (w.query.k <= 1) return false;
  c->overrides.k_cap = w.query.k / 2;
  return true;
}

bool NarrowX(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  const int64_t width = w.query.domains[0].hi - w.query.domains[0].lo + 1;
  if (width <= 8) return false;
  c->overrides.x_width_cap = width / 2;
  return true;
}

bool DropDiversity(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  if (w.result_spacing.empty()) return false;
  c->overrides.no_diversity = true;
  return true;
}

bool DefaultAlpha(CaseConfig* c) {
  const Workload w = MakeWorkload(c->seed, c->mode, c->overrides, c->grid);
  if (w.alpha == 0.5) return false;
  c->overrides.default_alpha = true;
  return true;
}

// Drops the last mutation of a failing session. The plan derivation is
// prefix-stable (MakeSessionPlan), so the surviving steps replay exactly.
// Floor is a 1-step session: shrinking to session=0 would change the
// harness shape and lose the cache dimension under test.
bool ShortenSession(CaseConfig* c) {
  if (c->session <= 1) return false;
  c->session -= 1;
  return true;
}

}  // namespace

CaseConfig Shrink(CaseConfig failing, InjectedBug bug) {
  static constexpr ShrinkStep kSteps[] = {
      DropServe,
      DropTrace,       DropProfile, StripFaults,    SingleInstance,
      DefaultEngineKnobs,
      ShortenSession,  ShortenSession, ShortenSession,
      HalveArray,      HalveArray,  HalveArray,     DropConstraints,
      DropConstraints, DropConstraints, LowerK,     LowerK,
      NarrowX,         NarrowX,     NarrowX,        DropDiversity,
      DefaultAlpha,
  };
  // Up to two passes: a step that was a no-op early (e.g. NarrowX when
  // the domain was already small) can become productive after HalveArray.
  for (int pass = 0; pass < 2; ++pass) {
    bool any = false;
    for (ShrinkStep step : kSteps) {
      CaseConfig candidate = failing;
      if (!step(&candidate)) continue;
      if (RunAnyCase(candidate, bug).failed()) {
        failing = std::move(candidate);
        any = true;
      }
    }
    if (!any) break;
  }
  return failing;
}

std::string ReproLine(const CaseConfig& c) {
  std::string line = "dqr_fuzz --seed=" + std::to_string(c.seed) +
                     " --mode=" + FuzzModeName(c.mode) + " --config=\"" +
                     c.config.ToString() + "\"";
  if (c.grid) line += " --grid";
  if (c.session > 0) line += " --session=" + std::to_string(c.session);
  if (c.overrides.length_cap != 0) {
    line += " --len-cap=" + std::to_string(c.overrides.length_cap);
  }
  if (c.overrides.max_constraints != 0) {
    line += " --max-cons=" + std::to_string(c.overrides.max_constraints);
  }
  if (c.overrides.k_cap != 0) {
    line += " --k-cap=" + std::to_string(c.overrides.k_cap);
  }
  if (c.overrides.x_width_cap != 0) {
    line += " --x-width-cap=" + std::to_string(c.overrides.x_width_cap);
  }
  if (c.overrides.no_diversity) line += " --no-diversity";
  if (c.overrides.default_alpha) line += " --default-alpha";
  return line;
}

Result<std::string> WriteReproFile(const std::string& dir,
                                   const CaseConfig& c,
                                   const CaseResult& result) {
  const std::string path = dir + "/repro_" + std::to_string(c.seed) + "_" +
                           FuzzModeName(c.mode) + (c.grid ? "_grid" : "") +
                           (c.session > 0 ? "_session" : "") + ".txt";
  std::ofstream out(path);
  if (!out) return InvalidArgumentError("cannot write repro file: " + path);
  out << "# replay with:\n" << ReproLine(c) << "\n\n";
  out << "# case: " << result.detail << "\n";
  if (!result.error.empty()) {
    out << "\n# error:\n" << result.error << "\n";
  } else {
    out << "\n# expected (oracle):\n"
        << (result.expected.empty() ? "<empty>" : result.expected) << "\n";
    out << "\n# actual (engine):\n"
        << (result.actual.empty() ? "<empty>" : result.actual) << "\n";
  }
  out.close();
  return path;
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  std::vector<FuzzMode> modes = options.modes;
  if (modes.empty()) {
    modes = {FuzzMode::kRelax, FuzzMode::kConstrain, FuzzMode::kSkyline};
  }
  const int jobs = std::max(1, options.jobs);
  const int64_t started_ms = NowMs();

  // Guards the report and keeps a failure's multi-line stderr block
  // contiguous when jobs > 1.
  std::mutex mu;

  // Shared run-report-shrink path for single-query and session cases.
  const auto run_one = [&report, &options, &mu](const CaseConfig& c) {
    CaseResult r = RunAnyCase(c, options.inject_bug);
    if (r.ok) {
      std::lock_guard<std::mutex> lock(mu);
      ++report.cases_run;
      if (options.verbose) {
        std::fprintf(stderr, "dqr_fuzz: ok   %s\n", r.detail.c_str());
      }
      return;
    }
    // Shrinking re-runs the case many times; keep it outside the lock so
    // other driver threads keep fuzzing while one shrinks a failure.
    const CaseConfig shrunk = Shrink(c, options.inject_bug);
    const CaseResult shrunk_result = RunAnyCase(shrunk, options.inject_bug);
    const std::string line = ReproLine(shrunk);

    std::lock_guard<std::mutex> lock(mu);
    ++report.cases_run;
    if (!r.error.empty()) ++report.errors;
    if (r.error.empty()) ++report.mismatches;
    std::fprintf(stderr, "dqr_fuzz: FAIL %s\n", r.detail.c_str());
    if (!r.error.empty()) {
      std::fprintf(stderr, "dqr_fuzz:   %s\n", r.error.c_str());
    }
    report.repro_lines.push_back(line);
    std::fprintf(stderr, "dqr_fuzz:   reproduce: %s\n", line.c_str());
    if (!options.repro_dir.empty()) {
      Result<std::string> file =
          WriteReproFile(options.repro_dir, shrunk, shrunk_result);
      if (file.ok()) {
        std::fprintf(stderr, "dqr_fuzz:   repro file: %s\n",
                     file.value().c_str());
        report.repro_files.push_back(std::move(file).value());
      } else {
        std::fprintf(stderr, "dqr_fuzz:   %s\n",
                     file.status().ToString().c_str());
      }
    }
  };

  // Runs every case of seed index `i`.
  const auto run_seed = [&](int i) {
    const uint64_t seed = options.start_seed + static_cast<uint64_t>(i);
    // One mode per seed (cycled) keeps a campaign of N seeds at N
    // workloads; --mode pins it for reproduction. Every fourth seed runs
    // its 2-D grid workload so both data shapes stay covered (--grid
    // pins that for reproduction).
    const FuzzMode mode = modes[static_cast<size_t>(i) % modes.size()];
    const bool grid = i % 4 == 3;
    const std::vector<EngineConfig> configs =
        MakeConfigMatrix(seed, options.configs_per_seed);

    if (options.sessions) {
      // Session campaign: the seed's mutation chain (length 3..5, seeded)
      // replayed warm-vs-cold under the matrix's baseline and
      // work-stealing configs. Two configs, not the full matrix — each
      // session case already multiplies cost by 2x the chain length.
      for (size_t ci = 0; ci < configs.size() && ci < 2; ++ci) {
        CaseConfig c;
        c.seed = seed;
        c.mode = mode;
        c.grid = grid;
        c.session = 2 + static_cast<int>(seed % 3);
        c.config = configs[ci];
        if (options.trace_mix) c.config.trace = ((seed + ci) & 1) != 0;
        // The simd override is process-global: concurrent drivers pin the
        // dimension instead of racing it (kernels are value-identical, so
        // no expected answer changes).
        if (jobs > 1) c.config.simd = true;
        run_one(c);
      }
      return;
    }

    for (size_t ci = 0; ci < configs.size(); ++ci) {
      CaseConfig c;
      c.seed = seed;
      c.mode = mode;
      c.grid = grid;
      c.config = configs[ci];
      // Alternate the trace dimension deterministically across the
      // matrix so every campaign covers traced and untraced runs of
      // otherwise-identical configs.
      if (options.trace_mix) c.config.trace = ((seed + ci) & 1) != 0;
      if (jobs > 1) c.config.simd = true;
      // The serve slice: every eligible case goes over the wire. RunCase
      // itself falls back to direct execution for grid and fault-plan
      // cases, so gating here only keeps repro lines honest (a line with
      // serve=1 really ran over the transport).
      if (options.serve && !c.grid && c.config.fault_crashes == 0) {
        c.config.serve = true;
      }
      run_one(c);
    }
  };

  // Concurrent drivers pull seed indices from one atomic cursor; the
  // time budget is re-checked per claim so every driver stops promptly.
  std::atomic<int> cursor{0};
  std::atomic<bool> budget_hit{false};
  const auto drive = [&] {
    for (;;) {
      const int i = cursor.fetch_add(1);
      if (i >= options.num_seeds) return;
      if (options.time_budget_ms > 0 &&
          NowMs() - started_ms >= options.time_budget_ms) {
        budget_hit.store(true);
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        ++report.seeds_run;
      }
      run_seed(i);
    }
  };

  if (jobs <= 1) {
    drive();
  } else {
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) drivers.emplace_back(drive);
    for (std::thread& d : drivers) d.join();
    // Thread completion order is nondeterministic; the set of failures is
    // not. Sorted repro lines make concurrent campaign output comparable.
    std::sort(report.repro_lines.begin(), report.repro_lines.end());
    std::sort(report.repro_files.begin(), report.repro_files.end());
  }
  if (budget_hit.load()) {
    std::fprintf(stderr, "dqr_fuzz: time budget reached after %lld seeds\n",
                 static_cast<long long>(report.seeds_run));
  }
  return report;
}

}  // namespace dqr::fuzz
