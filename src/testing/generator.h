#ifndef DQR_TESTING_GENERATOR_H_
#define DQR_TESTING_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/array.h"
#include "array/grid.h"
#include "common/status.h"
#include "core/fault.h"
#include "core/options.h"
#include "searchlight/query.h"
#include "synopsis/grid_synopsis.h"
#include "synopsis/synopsis.h"

namespace dqr::cache {
class SharedBoundsMemo;
}  // namespace dqr::cache

namespace dqr::fuzz {

// Which refinement direction a generated workload targets. Targeting is
// statistical (the generator aims the anchor constraint's bounds at a
// scarce or plentiful quantile of the generated signal); the oracle and
// the differential check are direction-agnostic, so a workload that lands
// on the other side of k still checks something real.
enum class FuzzMode { kRelax, kConstrain, kSkyline };

const char* FuzzModeName(FuzzMode mode);
Result<FuzzMode> FuzzModeFromName(const std::string& name);

// Shrinking knobs: caps applied on top of the seed-derived draw. 0 / false
// means "no override". Same seed + same overrides = same workload, which
// is what lets the shrinker re-run a failing case at reduced size and keep
// a reduction only when the failure persists.
struct WorkloadOverrides {
  int64_t length_cap = 0;    // clamp the array length (min 32 cells)
  int max_constraints = 0;   // truncate the constraint list (min 1)
  int64_t k_cap = 0;         // clamp the result cardinality (min 1)
  int64_t x_width_cap = 0;   // clamp the width of variable 0's domain
  bool no_diversity = false; // drop any result-spacing configuration
  bool default_alpha = false;  // force alpha = 0.5
  // Artificial busy-wait per uncached synopsis estimate (bench sessions
  // only). Timing-only: charged on bounds-cache misses, never changes
  // any computed value or answer.
  int64_t cost_ns = 0;

  bool any() const {
    return length_cap != 0 || max_constraints != 0 || k_cap != 0 ||
           x_width_cap != 0 || no_diversity || default_alpha ||
           cost_ns != 0;
  }
  // "len<=96 cons<=2 k<=1 ..." for reproducer lines; "" when !any().
  std::string ToString() const;
};

// One self-contained generated problem: data + synopsis + query + the
// semantic knobs (alpha, constrain mode, diversity) that define what the
// correct answer *is*. Engine-side execution knobs that must never change
// the answer live in EngineConfig instead.
struct Workload {
  uint64_t seed = 0;
  FuzzMode mode = FuzzMode::kRelax;
  WorkloadOverrides overrides;

  // Exactly one data shape is populated: (array, synopsis) for 1-D
  // window workloads, (grid, grid_synopsis) when grid_workload is set —
  // the refinement engine and the oracle are dimension-agnostic, so both
  // shapes run through the same differential check.
  bool grid_workload = false;
  std::shared_ptr<array::Array> array;
  std::shared_ptr<const synopsis::Synopsis> synopsis;
  std::shared_ptr<array::Grid> grid;
  std::shared_ptr<const synopsis::GridSynopsis> grid_synopsis;
  searchlight::QuerySpec query;

  double alpha = 0.5;
  core::ConstrainMode constrain = core::ConstrainMode::kRank;
  std::vector<int64_t> result_spacing;  // empty = diversity off
  int64_t diversity_pool_factor = 8;

  // Semantic identity of each constraint's function (kind + parameters +
  // value range at full precision), in query.constraints order — the
  // function_ids contract of cache::CachedQuery. Two workloads of one
  // session share ids exactly when the functions compute the same thing.
  std::vector<std::string> function_ids;

  // The query in the data/query_parser text IR, such that
  // BuildQuery(ParseQueryText(query_text), {array, synopsis}) rebuilds
  // `query` answer-identically (same functions, bounds, weights, flags;
  // estimate_cost_ns / shared_memo are timing-only and deliberately not
  // expressible). This is what the fuzz harness's serve transport ships
  // over the wire. Empty for grid workloads — the text IR is 1-D only.
  std::string query_text;

  // One-line human-readable description for logs and repro files.
  std::string summary;
};

// Derives a complete workload from a single uint64 seed: array schema +
// synthetic signal (plateaus, spikes, noise over a calm base), a synopsis,
// 1-4 window constraints (avg/min/max/neighborhood contrast) with seeded
// bounds/ranges/weights/relaxability/preferences, k, alpha, constrain
// mode, and optional diversity spacing. Deterministic in (seed, mode,
// overrides, grid); independent draws are decorrelated across seeds by
// splitmix64. With grid=true the workload is two-dimensional: a tiled
// grid + GridSynopsis and rectangle constraints (rect_avg anchor,
// rect_max / rect_contrast satellites) over four decision variables
// (y, x, h, w). The grid draw uses a decorrelated stream, so 1-D
// workloads of the same seed are unchanged.
// When `shared_memo` is non-null every constraint function of the
// workload attaches it (under `memo_space`) as the L2 behind its local
// BoundsCache — the warm-session configuration. The memo never changes
// any function value (a hit returns exactly what the synopsis would
// recompute), and the workload draw itself is byte-identical with or
// without it.
Workload MakeWorkload(uint64_t seed, FuzzMode mode,
                      const WorkloadOverrides& overrides = {},
                      bool grid = false,
                      cache::SharedBoundsMemo* shared_memo = nullptr,
                      uint64_t memo_space = 0);

// --- correlated query sessions (the session fuzz dimension) ---

// One session step's change relative to the previous step's query.
enum class SessionMutation {
  kRepeat,   // identical query (exact-hit coverage)
  kRelax,    // widen every finite constraint bound (looser query)
  kTighten,  // shrink constraint bounds (tighter query; subsumption prey)
  kShift,    // move variable 0's domain to a sub-window of the base domain
};

const char* SessionMutationName(SessionMutation mutation);
Result<SessionMutation> SessionMutationFromName(const std::string& name);

// An ordered chain of mutations applied cumulatively after the base
// query. Codec round-trips through "relax,shift,repeat".
struct SessionPlan {
  std::vector<SessionMutation> steps;

  std::string ToString() const;
  static Result<SessionPlan> FromString(const std::string& text);
};

// Derives a plan of `num_steps` mutations from the seed. Prefix-stable:
// the first n steps of MakeSessionPlan(seed, m >= n) equal
// MakeSessionPlan(seed, n) — which is what lets the shrinker shorten a
// failing session without changing the steps it keeps.
SessionPlan MakeSessionPlan(uint64_t seed, int num_steps);

// A correlated query session: the base workload plus one mutated copy per
// plan step, all over the same data/synopsis/functions (mutations only
// move constraint bounds and domains). steps[0] is the base;
// steps[i + 1] applies plan.steps[i] to steps[i].
struct QuerySession {
  SessionPlan plan;
  // Identifies the data + synopsis configuration every step shares; the
  // dataset_id of cache::CachedQuery.
  std::string dataset_id;
  std::vector<Workload> steps;
};

// Deterministic in (seed, mode, plan, overrides, grid); each mutation's
// draws depend only on the seed and its step index, never on earlier
// mutations. shared_memo/memo_space thread through to every step's
// functions (the warm-session configuration).
QuerySession MakeSession(uint64_t seed, FuzzMode mode,
                         const SessionPlan& plan,
                         const WorkloadOverrides& overrides = {},
                         bool grid = false,
                         cache::SharedBoundsMemo* shared_memo = nullptr,
                         uint64_t memo_space = 0);

// One engine execution configuration. Everything here is, per the §3
// guarantees, answer-preserving: the differential harness runs the same
// workload under several of these and demands byte-identical canonical
// results, all equal to the oracle.
struct EngineConfig {
  int num_instances = 1;
  int shards_per_instance = 1;
  core::FailEvalMode fail_eval = core::FailEvalMode::kLazy;
  bool speculative = false;
  bool save_function_state = true;
  double rrd = 1.0;  // replay_relaxation_distance
  core::ReplayOrder replay_order = core::ReplayOrder::kBestFirst;
  core::ValidatorQueueOrder validator_queue =
      core::ValidatorQueueOrder::kBrpPriority;
  // > 0 plants this many deterministic crash events (derived from the
  // workload seed) on distinct victim instances; instance 0 is never a
  // victim, so the cluster always retains a survivor and the run must
  // still complete with the full, correct result set.
  int fault_crashes = 0;
  bool enable_failure_detector = false;
  // Attach a flight recorder to the engine run (DESIGN.md §8). Tracing is
  // an execution knob like the others: it must never change the answer,
  // and the differential check proves that per case.
  bool trace = false;
  // Dispatch min/max reductions to the CPU's vector kernels (AVX2/NEON)
  // instead of the scalar folds. The kernels are value-identical by
  // design (common/simd.h); running each case under both settings makes
  // the differential check prove scalar == SIMD answers.
  bool simd = true;
  // Run the engine loops on the process-shared WorkerPool + TimerWheel
  // (DESIGN.md §10) instead of per-query threads. Scheduling is
  // answer-preserving, so the differential harness proves pool == legacy
  // per case.
  bool pool = false;
  // Route the case through a loopback dqr_serve server: the workload's
  // query_text ships over the framed protocol, executes in the shared
  // engine session, and the FINAL frame's canonical body is compared
  // against the oracle. Transport must be answer-preserving; the
  // differential check proves serve == direct per case. Ignored (runs
  // direct) for grid workloads and fault-injection configs — neither is
  // expressible over the wire.
  bool serve = false;
  // Attach a query profiler (obs/profile.h) to the run. Profiling rides
  // an internal flight recorder plus the RunStats histograms, all of
  // which observe the search without steering it — the differential
  // check proves profiled == unprofiled answers per case.
  bool profile = false;

  // Compact, parseable "inst=4;shards=8;..." form used by --config= and
  // reproducer lines. FromString accepts exactly what ToString emits
  // (order-insensitive, unknown keys rejected).
  std::string ToString() const;
  static Result<EngineConfig> FromString(const std::string& text);

  // Materializes RefineOptions for `workload`. When fault_crashes > 0 the
  // derived crash plan is written into *plan (which must outlive the
  // query execution) and referenced from the returned options.
  core::RefineOptions ToOptions(const Workload& workload,
                                core::FaultPlan* plan) const;
};

// The per-seed config matrix: [0] is always the 1x1 sequential baseline,
// [1] a work-stealing multi-instance config (always with simd=0, so every
// matrix differentials the scalar kernels against the SIMD baseline),
// [2] a fault-injection config (crashes + detector + stealing), and any
// further entries are fully seeded random draws. count is clamped to
// [3, 8].
std::vector<EngineConfig> MakeConfigMatrix(uint64_t seed, int count);

}  // namespace dqr::fuzz

#endif  // DQR_TESTING_GENERATOR_H_
