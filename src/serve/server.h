#ifndef DQR_SERVE_SERVER_H_
#define DQR_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/semantic_cache.h"
#include "common/status.h"
#include "data/queries.h"
#include "exec/engine_session.h"
#include "serve/protocol.h"
#include "serve/tenant.h"

namespace dqr::serve {

struct ServerOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  // port() after Start). The server binds loopback only: dqr_serve is a
  // local front end, not an internet-facing daemon.
  int port = 0;
  // listen() backlog.
  int backlog = 64;
  // Engine session queries are admitted into; null = the process-shared
  // EngineSession::Shared().
  exec::EngineSession* session = nullptr;
  // Per-tenant budgets; tenants not listed get defaults (weight 1,
  // unlimited) on first use.
  std::map<std::string, TenantConfig> tenants;
  // Tenant charged for connections that skip HELLO or omit tenant=.
  std::string default_tenant = "anonymous";
  // Completed per-query records (stats + trace + canonical answer) kept
  // for the METRICS id= / TRACE id= endpoints, evicted FIFO.
  size_t history_capacity = 64;
  // Artificial busy-wait charged per uncached synopsis estimate in every
  // query this server builds (data::BuildQuery). Timing-only — answers
  // are byte-identical at any value. Benchmarks and fairness tests use
  // it to give queries a controllable execution weight.
  int64_t estimate_cost_ns = 0;
  // Plain-HTTP Prometheus gateway on 127.0.0.1: `GET /metrics` returns
  // MetricsText() as a text exposition, so a stock Prometheus scraper
  // needs no frame codec. -1 disables it; 0 picks an ephemeral port
  // (read back with http_port()).
  int http_metrics_port = -1;
};

// Server-level counters (the serve section of the METRICS exposition).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;  // gauge
  int64_t frames_received = 0;
  int64_t frames_sent = 0;
  int64_t queries_started = 0;
  int64_t queries_completed = 0;
  int64_t queries_failed = 0;  // ERROR-terminated (parse/budget/engine)
  int64_t http_requests = 0;   // requests served by the metrics gateway
};

// The dqr_serve network front end (ISSUE 9): accepts framed connections
// on localhost, parses queries from the text IR, admits them through a
// TenantScheduler (weighted deficit round-robin) layered on the shared
// EngineSession's FIFO gate, streams progress (PHASE / BOUND), online
// results (RESULT) and the canonical final answer (FINAL, carrying the
// core/canonical fingerprint) back to the client, and exposes Prometheus
// metrics and per-query Chrome traces as fetchable frames.
//
// Connection protocol: see protocol.h. Each QUERY runs in its own
// thread, so one connection can pipeline queries and a slow query never
// blocks frame dispatch; all frames of a query carry its id= attribute.
//
// Answer fidelity: the serve path reproduces the exact ExecuteQuery /
// ExecuteQueryCached call a direct caller would make — the FINAL body is
// the engine's Canonicalize output, byte-identical to a direct run of
// the same query text (serve_differential_test proves this under
// concurrency).
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the accept loop. Fails on bind errors
  // (port in use) or double Start.
  Status Start();

  // Drains: cancels queued admissions, unblocks readers, joins every
  // connection thread and waits for in-flight queries. Idempotent.
  void Stop();

  // The bound port (valid after Start).
  int port() const { return port_; }
  // The metrics gateway's bound port (valid after Start when
  // http_metrics_port >= 0; otherwise 0).
  int http_port() const { return http_port_; }

  // Datasets queries may target by name. Thread-safe; re-registering a
  // name replaces the bundle and invalidates its semantic-cache entries.
  Status RegisterDataset(const std::string& name,
                         data::DatasetBundle bundle);
  void UnregisterDataset(const std::string& name);

  TenantScheduler& scheduler() { return scheduler_; }
  exec::EngineSession& session() { return *session_; }
  ServerStats stats() const;

  // The full Prometheus exposition (aggregate engine stats over
  // completed queries + serve/tenant/session samples) — what the
  // METRICS frame returns; exposed for tests and the CLI.
  std::string MetricsText() const;

 private:
  struct Connection;
  struct QueryRecord {
    std::string id;
    std::string tenant;
    core::RunStats stats;
    std::string canonical;
    std::string fingerprint;
    std::string outcome;  // cache outcome name, or "executed"
    std::shared_ptr<obs::Trace> trace;  // null when trace=0
    // Serialized obs::ProfileToJson document; null when profile=0.
    std::shared_ptr<const std::string> profile_json;
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  // Dispatches one decoded frame; query frames fork a query thread.
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void RunQuery(std::shared_ptr<Connection> conn, Frame frame);
  void HandleMetrics(const std::shared_ptr<Connection>& conn,
                     const Frame& frame);
  void HandleTrace(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleProfile(const std::shared_ptr<Connection>& conn,
                     const Frame& frame);

  // The HTTP metrics gateway: accepts one plain-HTTP request per
  // connection, serves GET /metrics, closes. Runs on http_thread_.
  void HttpLoop();

  // Frame writers (serialize on the connection's write mutex).
  void SendFrame(const std::shared_ptr<Connection>& conn,
                 const Frame& frame);
  void SendError(const std::shared_ptr<Connection>& conn,
                 const std::string& id, const std::string& code,
                 const std::string& message);

  void RecordQuery(QueryRecord record);
  std::shared_ptr<const QueryRecord> FindRecord(
      const std::string& id) const;

  ServerOptions options_;
  exec::EngineSession* session_;
  TenantScheduler scheduler_;
  cache::SemanticCache cache_;

  // Atomic: AcceptLoop reads it concurrently with Stop() closing it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<int> http_listen_fd_{-1};
  int http_port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::thread http_thread_;

  mutable std::mutex mu_;
  std::condition_variable queries_done_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::shared_ptr<const QueryRecord>> history_;
  std::map<std::string, data::DatasetBundle> datasets_;
  ServerStats stats_;
  int64_t active_queries_ = 0;
};

}  // namespace dqr::serve

#endif  // DQR_SERVE_SERVER_H_
