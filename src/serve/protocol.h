#ifndef DQR_SERVE_PROTOCOL_H_
#define DQR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dqr::serve {

// The dqr_serve wire format (DESIGN.md §11): length-prefixed text
// frames over a byte stream.
//
//   +--------------------+-----------------------------------------+
//   | 4-byte big-endian  |  payload (exactly `length` bytes):      |
//   | payload length     |    TYPE key=value key=value ...\n       |
//   |                    |    <body: arbitrary bytes>              |
//   +--------------------+-----------------------------------------+
//
// The payload's first line — everything up to the first '\n', which is
// mandatory — is the header: a frame type token plus space-separated
// key=value attributes. Everything after that newline is the opaque
// body (query text, canonical result lines, Prometheus text, Chrome
// JSON). Type tokens, keys and values must be non-empty and free of
// spaces and newlines; the body has no character restrictions.
//
// The conversation (client frames -> server frames):
//   HELLO tenant=t             -> WELCOME tenant=t proto=1
//   QUERY id=q dataset=d ...   -> ACCEPTED, then streamed PHASE /
//     (body: text-IR query)       BOUND / RESULT frames, terminated by
//                                 FINAL (or ERROR); with profile=1 a
//                                 PROFILE frame follows the FINAL
//   METRICS [id=q]             -> METRICS (body: Prometheus text)
//   TRACE id=q                 -> TRACE (body: Chrome trace JSON)
//   PROFILE id=q               -> PROFILE (body: profile JSON, see
//                                 obs/profile.h)
//   BYE                        -> BYE, connection closes
// Every server frame about a query carries its id= attribute, so a
// client may pipeline queries on one connection.

// Frame type tokens. The codec itself is type-agnostic (any token
// round-trips); the server validates types at dispatch.
namespace frame {
inline constexpr char kHello[] = "HELLO";
inline constexpr char kWelcome[] = "WELCOME";
inline constexpr char kQuery[] = "QUERY";
inline constexpr char kAccepted[] = "ACCEPTED";
inline constexpr char kPhase[] = "PHASE";
inline constexpr char kBound[] = "BOUND";
inline constexpr char kResult[] = "RESULT";
inline constexpr char kFinal[] = "FINAL";
inline constexpr char kError[] = "ERROR";
inline constexpr char kMetrics[] = "METRICS";
inline constexpr char kTrace[] = "TRACE";
inline constexpr char kProfile[] = "PROFILE";
inline constexpr char kBye[] = "BYE";
}  // namespace frame

// Upper bound on one frame's payload. Large enough for any canonical
// result set or Chrome trace the engine produces, small enough that a
// corrupt length prefix cannot make the reader buffer gigabytes.
inline constexpr uint64_t kMaxFramePayload = 8ull << 20;  // 8 MiB

struct Frame {
  std::string type;
  // Insertion-ordered; duplicate keys are preserved (Get returns the
  // first). Order round-trips exactly through encode/decode.
  std::vector<std::pair<std::string, std::string>> attrs;
  std::string body;

  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, int64_t value);
  // %.17g: doubles round-trip exactly (inf/-inf spelled out).
  void Set(const std::string& key, double value);

  // First value of `key`, or nullptr.
  const std::string* Get(const std::string& key) const;
  // Typed reads: `fallback` when the key is absent, an error when the
  // value does not parse.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;

  bool operator==(const Frame& other) const {
    return type == other.type && attrs == other.attrs &&
           body == other.body;
  }
};

// Encodes one frame (length prefix included). Rejects — with the same
// precise messages the decoder produces — frames that could not be
// decoded back: empty or whitespace-carrying type tokens, malformed
// attributes, oversized payloads.
Result<std::string> EncodeFrame(const Frame& frame);

// Incremental frame decoder, resilient to arbitrary read fragmentation:
// feed whatever chunk the socket produced (down to one byte), then poll
// complete frames out. Any framing error (oversized or zero length,
// missing header newline, malformed header) is sticky: once poisoned,
// every later call reports the same error, because a byte stream cannot
// be resynchronized after a framing violation.
class FrameReader {
 public:
  // Appends raw bytes to the internal buffer.
  Status Feed(const char* data, size_t n);
  Status Feed(const std::string& chunk) {
    return Feed(chunk.data(), chunk.size());
  }

  // Pops the next complete frame into *out; nullopt when more bytes are
  // needed. Errors on malformed input.
  Status Poll(std::optional<Frame>* out);

  // End-of-stream check: an error when the stream ended mid-frame.
  Status Finish() const;

  // Bytes buffered but not yet consumed by a complete frame.
  size_t pending_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  Status error_;
};

// Splits a decoded payload (header line + body) into a frame — the
// decoder's parsing stage, exposed for tests.
Status ParseFramePayload(const std::string& payload, Frame* out);

}  // namespace dqr::serve

#endif  // DQR_SERVE_PROTOCOL_H_
