#include "serve/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>

namespace dqr::serve {

Status Client::Connect(int port) {
  if (fd_ >= 0) return FailedPreconditionError("client already connected");
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket(): ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = strerror(errno);
    close(fd_);
    fd_ = -1;
    return InternalError("connect(127.0.0.1:" + std::to_string(port) +
                         "): " + err);
  }
  // Frames are small and latency-bound; without this, Nagle + delayed
  // ACK turns every query round trip into a ~40ms stall.
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Client::Send(const Frame& frame) {
  if (fd_ < 0) return FailedPreconditionError("client is not connected");
  Result<std::string> wire = EncodeFrame(frame);
  if (!wire.ok()) return wire.status();
  const std::string& data = wire.value();
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return InternalError(std::string("send(): ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Frame> Client::Receive() {
  if (fd_ < 0) return FailedPreconditionError("client is not connected");
  char buf[4096];
  while (true) {
    std::optional<Frame> frame;
    Status st = reader_.Poll(&frame);
    if (!st.ok()) return st;
    if (frame.has_value()) return std::move(*frame);
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      return InternalError(std::string("recv(): ") + strerror(errno));
    }
    if (n == 0) {
      st = reader_.Finish();
      if (!st.ok()) return st;
      return InternalError("connection closed by server");
    }
    st = reader_.Feed(buf, static_cast<size_t>(n));
    if (!st.ok()) return st;
  }
}

Status Client::Hello(const std::string& tenant) {
  Frame hello;
  hello.type = frame::kHello;
  if (!tenant.empty()) hello.Set("tenant", tenant);
  Status st = Send(hello);
  if (!st.ok()) return st;
  Result<Frame> reply = Receive();
  if (!reply.ok()) return reply.status();
  if (reply.value().type == frame::kError) {
    return InternalError("server rejected HELLO: " + reply.value().body);
  }
  if (reply.value().type != frame::kWelcome) {
    return InternalError("expected WELCOME, got " + reply.value().type);
  }
  return Status::Ok();
}

Result<QueryRun> Client::RunQuery(const Frame& query) {
  const std::string* id = query.Get("id");
  if (id == nullptr) {
    return InvalidArgumentError("QUERY frame missing id attribute");
  }
  Status st = Send(query);
  if (!st.ok()) return st;
  QueryRun run;
  while (true) {
    Result<Frame> next = Receive();
    if (!next.ok()) return next.status();
    Frame f = std::move(next).value();
    const std::string* fid = f.Get("id");
    if (fid == nullptr || *fid != *id) {
      return InternalError("frame for unexpected query id '" +
                           (fid != nullptr ? *fid : "<none>") +
                           "' on a serial connection");
    }
    if (f.type == frame::kError) {
      const std::string* code = f.Get("code");
      return InternalError("server error (" +
                           (code != nullptr ? *code : "?") +
                           "): " + f.body);
    }
    if (f.type == frame::kFinal) {
      run.final = std::move(f);
      break;
    }
    run.events.push_back(std::move(f));
  }
  // profile=1 queries get exactly one PROFILE frame behind the FINAL.
  const std::string* profile = query.Get("profile");
  if (profile != nullptr && *profile == "1") {
    Result<Frame> next = Receive();
    if (!next.ok()) return next.status();
    Frame f = std::move(next).value();
    const std::string* fid = f.Get("id");
    if (f.type != frame::kProfile || fid == nullptr || *fid != *id) {
      return InternalError("expected PROFILE after FINAL, got " + f.type);
    }
    run.profile_json = std::move(f.body);
  }
  return run;
}

Result<std::string> Client::FetchMetrics(const std::string& id) {
  Frame req;
  req.type = frame::kMetrics;
  if (!id.empty()) req.Set("id", id);
  Status st = Send(req);
  if (!st.ok()) return st;
  Result<Frame> reply = Receive();
  if (!reply.ok()) return reply.status();
  if (reply.value().type == frame::kError) {
    return InternalError("METRICS failed: " + reply.value().body);
  }
  if (reply.value().type != frame::kMetrics) {
    return InternalError("expected METRICS, got " + reply.value().type);
  }
  return std::move(reply).value().body;
}

Result<std::string> Client::FetchTrace(const std::string& id) {
  Frame req;
  req.type = frame::kTrace;
  req.Set("id", id);
  Status st = Send(req);
  if (!st.ok()) return st;
  Result<Frame> reply = Receive();
  if (!reply.ok()) return reply.status();
  if (reply.value().type == frame::kError) {
    return InternalError("TRACE failed: " + reply.value().body);
  }
  if (reply.value().type != frame::kTrace) {
    return InternalError("expected TRACE, got " + reply.value().type);
  }
  return std::move(reply).value().body;
}

Result<std::string> Client::FetchProfile(const std::string& id) {
  Frame req;
  req.type = frame::kProfile;
  req.Set("id", id);
  Status st = Send(req);
  if (!st.ok()) return st;
  Result<Frame> reply = Receive();
  if (!reply.ok()) return reply.status();
  if (reply.value().type == frame::kError) {
    return InternalError("PROFILE failed: " + reply.value().body);
  }
  if (reply.value().type != frame::kProfile) {
    return InternalError("expected PROFILE, got " + reply.value().type);
  }
  return std::move(reply).value().body;
}

}  // namespace dqr::serve
