#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace dqr::serve {
namespace {

// A header token (frame type, attribute key or value) must survive the
// space-separated single-line header format.
Status CheckToken(const std::string& token, const char* what) {
  if (token.empty()) {
    return InvalidArgumentError(std::string("frame ") + what +
                                " must be non-empty");
  }
  for (char c : token) {
    if (c == ' ' || c == '\n' || c == '\r') {
      return InvalidArgumentError(std::string("frame ") + what + " '" +
                                  token +
                                  "' contains whitespace");
    }
  }
  return Status::Ok();
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Frame::Set(const std::string& key, const std::string& value) {
  attrs.emplace_back(key, value);
}

void Frame::Set(const std::string& key, int64_t value) {
  attrs.emplace_back(key, std::to_string(value));
}

void Frame::Set(const std::string& key, double value) {
  attrs.emplace_back(key, FormatDouble(value));
}

const std::string* Frame::Get(const std::string& key) const {
  for (const auto& kv : attrs) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

Result<int64_t> Frame::GetInt(const std::string& key,
                              int64_t fallback) const {
  const std::string* raw = Get(key);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError("frame attribute '" + key +
                                "' is not an integer: '" + *raw + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> Frame::GetDouble(const std::string& key,
                                double fallback) const {
  const std::string* raw = Get(key);
  if (raw == nullptr) return fallback;
  if (*raw == "inf") return std::numeric_limits<double>::infinity();
  if (*raw == "-inf") return -std::numeric_limits<double>::infinity();
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError("frame attribute '" + key +
                                "' is not a number: '" + *raw + "'");
  }
  return v;
}

Result<std::string> EncodeFrame(const Frame& frame) {
  Status st = CheckToken(frame.type, "type");
  if (!st.ok()) return st;
  std::string payload = frame.type;
  for (const auto& kv : frame.attrs) {
    st = CheckToken(kv.first, "attribute key");
    if (!st.ok()) return st;
    if (kv.first.find('=') != std::string::npos) {
      return InvalidArgumentError("frame attribute key '" + kv.first +
                                  "' contains '='");
    }
    st = CheckToken(kv.second, "attribute value");
    if (!st.ok()) return st;
    payload += ' ';
    payload += kv.first;
    payload += '=';
    payload += kv.second;
  }
  payload += '\n';
  payload += frame.body;
  if (payload.size() > kMaxFramePayload) {
    return InvalidArgumentError(
        "frame length " + std::to_string(payload.size()) +
        " exceeds limit " + std::to_string(kMaxFramePayload));
  }
  std::string wire;
  wire.reserve(4 + payload.size());
  const uint32_t n = static_cast<uint32_t>(payload.size());
  wire.push_back(static_cast<char>((n >> 24) & 0xff));
  wire.push_back(static_cast<char>((n >> 16) & 0xff));
  wire.push_back(static_cast<char>((n >> 8) & 0xff));
  wire.push_back(static_cast<char>(n & 0xff));
  wire += payload;
  return wire;
}

Status ParseFramePayload(const std::string& payload, Frame* out) {
  const size_t nl = payload.find('\n');
  if (nl == std::string::npos) {
    return InvalidArgumentError(
        "frame header: missing terminating newline");
  }
  const std::string header = payload.substr(0, nl);
  Frame frame;
  frame.body = payload.substr(nl + 1);
  size_t pos = 0;
  // Type token first, then key=value attributes; tokens are separated
  // by single spaces (empty tokens — doubled spaces, leading space —
  // are malformed).
  bool have_type = false;
  while (pos <= header.size()) {
    size_t sp = header.find(' ', pos);
    if (sp == std::string::npos) sp = header.size();
    const std::string token = header.substr(pos, sp - pos);
    if (token.empty()) {
      return InvalidArgumentError(
          "frame header: empty token (doubled or leading space)");
    }
    if (!have_type) {
      frame.type = token;
      have_type = true;
    } else {
      const size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 ||
          eq + 1 == token.size()) {
        return InvalidArgumentError("frame header: attribute '" + token +
                                    "' missing '='");
      }
      frame.attrs.emplace_back(token.substr(0, eq),
                               token.substr(eq + 1));
    }
    if (sp == header.size()) break;
    pos = sp + 1;
  }
  if (!have_type) {
    return InvalidArgumentError("frame header: missing type token");
  }
  *out = std::move(frame);
  return Status::Ok();
}

Status FrameReader::Feed(const char* data, size_t n) {
  if (!error_.ok()) return error_;
  buffer_.append(data, n);
  return Status::Ok();
}

Status FrameReader::Poll(std::optional<Frame>* out) {
  out->reset();
  if (!error_.ok()) return error_;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buffer_.size() - pos_;
  if (avail < 4) return Status::Ok();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + pos_;
  const uint64_t len = (static_cast<uint64_t>(p[0]) << 24) |
                       (static_cast<uint64_t>(p[1]) << 16) |
                       (static_cast<uint64_t>(p[2]) << 8) |
                       static_cast<uint64_t>(p[3]);
  if (len == 0) {
    error_ = InvalidArgumentError(
        "frame length 0: a frame must carry a header line");
    return error_;
  }
  if (len > kMaxFramePayload) {
    error_ = InvalidArgumentError(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(kMaxFramePayload));
    return error_;
  }
  if (avail < 4 + len) return Status::Ok();
  const std::string payload = buffer_.substr(pos_ + 4, len);
  pos_ += 4 + len;
  Frame frame;
  Status st = ParseFramePayload(payload, &frame);
  if (!st.ok()) {
    error_ = st;
    return error_;
  }
  *out = std::move(frame);
  return Status::Ok();
}

Status FrameReader::Finish() const {
  if (!error_.ok()) return error_;
  const size_t leftover = buffer_.size() - pos_;
  if (leftover != 0) {
    return InvalidArgumentError(
        "frame truncated: stream ended with " + std::to_string(leftover) +
        " unconsumed bytes inside a frame");
  }
  return Status::Ok();
}

}  // namespace dqr::serve
