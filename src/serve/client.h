#ifndef DQR_SERVE_CLIENT_H_
#define DQR_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

namespace dqr::serve {

// Everything one query streamed back, in arrival order.
struct QueryRun {
  // PHASE / BOUND / RESULT frames as received, before the FINAL.
  std::vector<Frame> events;
  Frame final;  // the FINAL frame (body = canonical answer)
  // Body of the PROFILE frame pushed behind the FINAL (queries submitted
  // with profile=1); empty otherwise. Feed to obs::ProfileFromJson.
  std::string profile_json;

  const std::string& canonical() const { return final.body; }
  std::string fingerprint() const {
    const std::string* fp = final.Get("fingerprint");
    return fp != nullptr ? *fp : "";
  }
};

// A minimal blocking client for dqr_serve: one socket, strictly serial
// requests (send one frame, read frames until the reply completes).
// This is the loopback driver of the differential tests and the fuzz
// harness's serve transport — deliberately simple, not a production
// client (no pipelining, no reconnects). Not thread-safe.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to 127.0.0.1:port.
  Status Connect(int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // HELLO/WELCOME handshake; empty tenant keeps the server default.
  Status Hello(const std::string& tenant);

  // One raw frame out / one raw frame in (blocking). Receive fails on
  // decode errors and on connection loss ("connection closed by server"
  // mid-frame surfaces the reader's truncation message).
  Status Send(const Frame& frame);
  Result<Frame> Receive();

  // Sends a QUERY frame and collects its stream until FINAL. An ERROR
  // frame for this query fails with its code and message; frames for
  // other ids (from earlier queries on a shared connection) fail —
  // serial use only.
  Result<QueryRun> RunQuery(const Frame& query);

  // METRICS round trip; empty id = the aggregate exposition. Returns
  // the Prometheus text body.
  Result<std::string> FetchMetrics(const std::string& id = "");
  // TRACE round trip; returns the Chrome JSON body.
  Result<std::string> FetchTrace(const std::string& id);
  // PROFILE round trip; returns the profile JSON body (obs/profile.h)
  // of a completed query that ran with profile=1.
  Result<std::string> FetchProfile(const std::string& id);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace dqr::serve

#endif  // DQR_SERVE_CLIENT_H_
