#ifndef DQR_SERVE_TENANT_H_
#define DQR_SERVE_TENANT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dqr::serve {

// Per-tenant resource budget. A tenant not explicitly configured uses
// the defaults below (weight 1, unbounded queue/demand).
struct TenantConfig {
  // Relative share of execution slots under contention; must be > 0.
  // A weight-8 tenant completes ~8x the pool-task demand of a weight-1
  // tenant while both keep their queues saturated.
  double weight = 1.0;
  // Queries this tenant may have admitted-or-queued at once; further
  // submissions are rejected immediately (kResourceExhausted). <= 0
  // means unlimited.
  int64_t max_in_flight = 0;
  // Largest single-query task demand (EngineSession::TaskDemand units)
  // this tenant may submit; oversized queries are rejected. <= 0 means
  // unlimited.
  int64_t max_task_demand = 0;
};

struct TenantStats {
  int64_t submitted = 0;   // Acquire calls (incl. rejected)
  int64_t granted = 0;     // Acquire calls that got a slot
  int64_t completed = 0;   // Release calls
  int64_t rejected = 0;    // budget rejections
  int64_t queue_depth = 0;     // waiting in Acquire right now (gauge)
  int64_t in_flight = 0;       // granted but not released (gauge)
  int64_t completed_demand = 0;  // summed task demand of completions
  double admission_wait_s = 0.0;      // summed Acquire wait
  double max_admission_wait_s = 0.0;  // worst single Acquire wait
  double weight = 1.0;
};

// Weighted fair admission across tenants: deficit round-robin (DRR)
// layered above the EngineSession's FIFO gate. The scheduler hands out
// `slots` concurrent grants (sized to the session's
// max_concurrent_queries so its own FIFO queue stays shallow and the
// DRR order is what reaches the engine). Each tenant has a deficit
// counter in task-demand units; a round-robin pump visits tenants in a
// fixed (lexicographic) ring order and grants a tenant's head query
// when its deficit covers the query's demand. When a full pass over
// non-empty queues grants nothing, every non-empty queue's deficit is
// topped up by quantum * weight — so over time each backlogged tenant's
// granted demand converges to its weight share, and a light tenant is
// served at least once per Σweights/weight_i top-ups (no starvation).
// Tenants with empty queues have their deficit reset to zero: an idle
// tenant does not bank credit (classic DRR, keeps latency bounded).
//
// Demand is measured in EngineSession::TaskDemand units, the same unit
// the session's admission gate charges, so "fair share of grants"
// equals "fair share of the worker pool".
class TenantScheduler {
 public:
  // `slots`: concurrent grants allowed; <= 0 means 1.
  explicit TenantScheduler(int slots);

  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  // Sets (or replaces) `tenant`'s budget. Unconfigured tenants are
  // created on first Acquire with default TenantConfig. Weight must be
  // > 0.
  Status Configure(const std::string& tenant, const TenantConfig& config);

  // Blocks until `tenant` is granted a slot for a query of `demand`
  // task units, and returns the seconds waited. Fails fast (without
  // queueing) when the tenant's max_in_flight or max_task_demand budget
  // is exceeded (kResourceExhausted), and fails with kCancelled for
  // all waiters when Shutdown is called.
  Result<double> Acquire(const std::string& tenant, int64_t demand);

  // Returns the slot of a granted query. `demand` must match Acquire's.
  void Release(const std::string& tenant, int64_t demand);

  // Wakes every waiter with kCancelled; later Acquires also fail.
  void Shutdown();

  // Testing hooks: while paused, no grants are made, so a test can
  // enqueue a known backlog and then observe the exact DRR grant order.
  void Pause();
  void Resume();

  // Tenant names in grant order since construction (testing).
  std::vector<std::string> GrantLog() const;

  TenantStats StatsFor(const std::string& tenant) const;
  std::map<std::string, TenantStats> Stats() const;

  int slots() const { return slots_; }

 private:
  struct Waiter {
    int64_t demand = 0;
    uint64_t seq = 0;      // FIFO order within the tenant
    bool granted = false;
    bool cancelled = false;
  };
  struct Tenant {
    TenantConfig config;
    TenantStats stats;
    std::deque<Waiter*> queue;
    double deficit = 0.0;
  };

  // Grants as many queued queries as slots and deficits allow; tops up
  // deficits when a full pass stalls. Caller holds mu_.
  void Pump();
  Tenant& GetTenant(const std::string& name);

  const int slots_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // std::map: stable lexicographic iteration is the DRR ring order.
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> grant_log_;
  int64_t active_ = 0;
  uint64_t next_seq_ = 0;
  double quantum_ = 1.0;  // max demand seen; DRR's O(1) service bound
  bool paused_ = false;
  bool shutdown_ = false;
};

}  // namespace dqr::serve

#endif  // DQR_SERVE_TENANT_H_
