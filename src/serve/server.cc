#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "core/canonical.h"
#include "data/query_parser.h"
#include "obs/export_chrome.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace dqr::serve {

namespace {

// Error codes carried by ERROR frames (the code= attribute; the human
// message rides in the body, where spaces are legal).
constexpr char kErrBadFrame[] = "bad_frame";  // malformed request frame
constexpr char kErrParse[] = "parse";         // query text rejected
constexpr char kErrNotFound[] = "not_found";  // unknown dataset/query id
constexpr char kErrBudget[] = "budget";       // tenant budget rejection
constexpr char kErrOverload[] = "overload";   // shutdown/cancelled
constexpr char kErrEngine[] = "engine";       // ExecuteQuery failed

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string FormatG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Derives the semantic-cache function identity of a parsed constraint:
// the function kind, its neighborhood width and its hard value range —
// exactly what defines "the same UDF with the same parameters" for the
// cache contract (constraint bounds/weights are query state, not
// function identity, and are fingerprinted separately).
std::string FunctionId(const data::ParsedConstraint& c) {
  std::string id = c.fn;
  if (c.width > 0) id += "|w=" + std::to_string(c.width);
  if (!c.range.empty()) {
    id += "|r=[" + FormatG(c.range.lo) + "," + FormatG(c.range.hi) + "]";
  }
  return id;
}

// Builds RefineOptions from a QUERY frame's attributes. Unknown
// attributes are rejected, so a typo cannot silently run with defaults.
Status OptionsFromFrame(const Frame& frame, core::RefineOptions* opts,
                        bool* cached, bool* want_trace,
                        bool* want_profile) {
  *cached = false;
  *want_trace = false;
  *want_profile = false;
  for (const auto& [key, value] : frame.attrs) {
    if (key == "id" || key == "dataset") continue;
    if (key == "cached") {
      *cached = value == "1";
    } else if (key == "trace") {
      *want_trace = value == "1";
    } else if (key == "profile") {
      *want_profile = value == "1";
    } else if (key == "alpha") {
      auto v = frame.GetDouble(key, opts->alpha);
      if (!v.ok()) return v.status();
      if (v.value() < 0.0 || v.value() > 1.0) {
        return InvalidArgumentError("QUERY alpha must lie in [0, 1]");
      }
      opts->alpha = v.value();
    } else if (key == "constrain") {
      if (value == "none") {
        opts->constrain = core::ConstrainMode::kNone;
      } else if (value == "rank") {
        opts->constrain = core::ConstrainMode::kRank;
      } else if (value == "skyline") {
        opts->constrain = core::ConstrainMode::kSkyline;
      } else {
        return InvalidArgumentError(
            "QUERY constrain must be none|rank|skyline, got '" + value +
            "'");
      }
    } else if (key == "spacing") {
      // Comma-separated per-variable spacing, e.g. spacing=64,0.
      opts->result_spacing.clear();
      size_t pos = 0;
      while (pos <= value.size()) {
        size_t comma = value.find(',', pos);
        if (comma == std::string::npos) comma = value.size();
        const std::string tok = value.substr(pos, comma - pos);
        char* end = nullptr;
        const long long s = std::strtoll(tok.c_str(), &end, 10);
        if (tok.empty() || end == tok.c_str() || *end != '\0' || s < 0) {
          return InvalidArgumentError(
              "QUERY spacing must be comma-separated non-negative "
              "integers, got '" +
              value + "'");
        }
        opts->result_spacing.push_back(s);
        if (comma == value.size()) break;
        pos = comma + 1;
      }
    } else if (key == "divpool") {
      auto v = frame.GetInt(key, opts->diversity_pool_factor);
      if (!v.ok()) return v.status();
      if (v.value() < 1) {
        return InvalidArgumentError("QUERY divpool must be >= 1");
      }
      opts->diversity_pool_factor = v.value();
    } else if (key == "inst") {
      auto v = frame.GetInt(key, opts->num_instances);
      if (!v.ok()) return v.status();
      if (v.value() < 1 || v.value() > 64) {
        return InvalidArgumentError("QUERY inst must lie in [1, 64]");
      }
      opts->num_instances = static_cast<int>(v.value());
    } else if (key == "shards") {
      auto v = frame.GetInt(key, opts->shards_per_instance);
      if (!v.ok()) return v.status();
      if (v.value() < 1) {
        return InvalidArgumentError("QUERY shards must be >= 1");
      }
      opts->shards_per_instance = static_cast<int>(v.value());
    } else if (key == "eval") {
      if (value != "lazy" && value != "full") {
        return InvalidArgumentError("QUERY eval must be lazy|full");
      }
      opts->fail_eval = value == "lazy" ? core::FailEvalMode::kLazy
                                        : core::FailEvalMode::kFull;
    } else if (key == "spec") {
      opts->speculative = value == "1";
    } else if (key == "state") {
      opts->save_function_state = value == "1";
    } else if (key == "rrd") {
      auto v = frame.GetDouble(key, opts->replay_relaxation_distance);
      if (!v.ok()) return v.status();
      if (v.value() <= 0.0 || v.value() > 1.0) {
        return InvalidArgumentError("QUERY rrd must lie in (0, 1]");
      }
      opts->replay_relaxation_distance = v.value();
    } else if (key == "replay") {
      if (value != "brp" && value != "fifo") {
        return InvalidArgumentError("QUERY replay must be brp|fifo");
      }
      opts->replay_order = value == "brp" ? core::ReplayOrder::kBestFirst
                                          : core::ReplayOrder::kFifo;
    } else if (key == "vq") {
      if (value != "brp" && value != "fifo") {
        return InvalidArgumentError("QUERY vq must be brp|fifo");
      }
      opts->validator_queue = value == "brp"
                                  ? core::ValidatorQueueOrder::kBrpPriority
                                  : core::ValidatorQueueOrder::kFifo;
    } else {
      return InvalidArgumentError("QUERY has unknown attribute '" + key +
                                  "'");
    }
  }
  return Status::Ok();
}

}  // namespace

// One accepted socket. Shared between the reader thread and any query
// threads it forked; the fd closes when the last holder drops it.
struct Server::Connection {
  ~Connection() {
    if (fd >= 0) close(fd);
  }
  int fd = -1;
  std::string tenant;      // set by HELLO; reader thread only
  std::mutex write_mu;     // serializes whole frames onto the socket
  std::atomic<bool> open{true};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      session_(options_.session != nullptr ? options_.session
                                           : &exec::EngineSession::Shared()),
      scheduler_(session_->max_concurrent_queries()) {
  for (const auto& [name, config] : options_.tenants) {
    const Status st = scheduler_.Configure(name, config);
    if (!st.ok()) {
      DQR_LOG(kWarning) << "dqr_serve: " << st.ToString();
    }
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("server already started");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    running_ = false;
    return InternalError(std::string("socket(): ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    close(fd);
    running_ = false;
    return InternalError("bind(127.0.0.1:" +
                         std::to_string(options_.port) + "): " + err);
  }
  if (listen(fd, options_.backlog) != 0) {
    const std::string err = strerror(errno);
    close(fd);
    running_ = false;
    return InternalError("listen(): " + err);
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (options_.http_metrics_port >= 0) {
    const int hfd = socket(AF_INET, SOCK_STREAM, 0);
    if (hfd < 0) {
      close(fd);
      running_ = false;
      return InternalError(std::string("socket(): ") + strerror(errno));
    }
    setsockopt(hfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in haddr{};
    haddr.sin_family = AF_INET;
    haddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    haddr.sin_port =
        htons(static_cast<uint16_t>(options_.http_metrics_port));
    if (bind(hfd, reinterpret_cast<sockaddr*>(&haddr), sizeof(haddr)) !=
            0 ||
        listen(hfd, options_.backlog) != 0) {
      const std::string err = strerror(errno);
      close(hfd);
      close(fd);
      running_ = false;
      return InternalError(
          "http metrics bind(127.0.0.1:" +
          std::to_string(options_.http_metrics_port) + "): " + err);
    }
    socklen_t hlen = sizeof(haddr);
    getsockname(hfd, reinterpret_cast<sockaddr*>(&haddr), &hlen);
    http_port_ = ntohs(haddr.sin_port);
    http_listen_fd_.store(hfd);
    http_thread_ = std::thread([this] { HttpLoop(); });
  }
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock queued admissions first: waiters get kCancelled, their
  // queries terminate with ERROR overload frames.
  scheduler_.Shutdown();
  // Unblock the accept loop, then every connection reader.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    shutdown(lfd, SHUT_RDWR);
    close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  const int hfd = http_listen_fd_.exchange(-1);
  if (hfd >= 0) {
    shutdown(hfd, SHUT_RDWR);
    close(hfd);
  }
  if (http_thread_.joinable()) http_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  for (const auto& conn : conns) {
    conn->open = false;
    shutdown(conn->fd, SHUT_RDWR);
  }
  // Wait for in-flight query threads (they run to completion: a query
  // already admitted to the engine finishes and records its answer) and
  // for every detached connection reader to take its last look at server
  // state — otherwise destroying the server races their teardown.
  std::unique_lock<std::mutex> lock(mu_);
  queries_done_cv_.wait(lock, [this] {
    return active_queries_ == 0 && stats_.connections_active == 0;
  });
}

Status Server::RegisterDataset(const std::string& name,
                               data::DatasetBundle bundle) {
  if (name.empty() || name.find(' ') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return InvalidArgumentError(
        "dataset name must be non-empty and whitespace-free");
  }
  if (bundle.array == nullptr || bundle.synopsis == nullptr) {
    return InvalidArgumentError("dataset '" + name +
                                "' bundle is incomplete");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it != datasets_.end()) {
    cache_.InvalidateDataset(name);
    it->second = std::move(bundle);
  } else {
    datasets_.emplace(name, std::move(bundle));
  }
  return Status::Ok();
}

void Server::UnregisterDataset(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.erase(name) > 0) cache_.InvalidateDataset(name);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Server::AcceptLoop() {
  while (running_) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;  // transient (EINTR / aborted handshake)
    }
    // Small latency-bound frames: disable Nagle or every streamed
    // progress/FINAL round trip eats a delayed-ACK stall.
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->tenant = options_.default_tenant;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
      connections_.push_back(conn);
    }
    std::thread([this, conn] { ConnectionLoop(conn); }).detach();
  }
}

void Server::HttpLoop() {
  while (running_) {
    const int lfd = http_listen_fd_.load();
    if (lfd < 0) break;
    const int fd = accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;
    }
    // One request per connection, HTTP/1.0 close semantics: read the
    // request line, answer, hang up. A stalled client cannot wedge
    // Stop() past the receive timeout.
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    std::string request;
    char buf[2048];
    while (request.find('\n') == std::string::npos &&
           request.size() < 16384) {
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    size_t eol = request.find('\n');
    if (eol == std::string::npos) eol = request.size();
    std::string line = request.substr(0, eol);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::string response;
    if (line.rfind("GET /metrics", 0) == 0 &&
        (line.size() == 12 || line[12] == ' ')) {
      const std::string body = MetricsText();
      response =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
    } else {
      const std::string body = "not found (try GET /metrics)\n";
      response =
          "HTTP/1.0 404 Not Found\r\n"
          "Content-Type: text/plain; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
    }
    WriteAll(fd, response);
    close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.http_requests;
  }
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  FrameReader reader;
  char buf[4096];
  while (conn->open) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed / shutdown
    Status st = reader.Feed(buf, static_cast<size_t>(n));
    std::optional<Frame> frame;
    while (st.ok()) {
      st = reader.Poll(&frame);
      if (!st.ok() || !frame.has_value()) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_received;
      }
      HandleFrame(conn, std::move(*frame));
    }
    if (!st.ok()) {
      // Framing violations are unrecoverable on a byte stream: report
      // the precise decoder message, then hang up.
      SendError(conn, "-", kErrBadFrame, st.message());
      break;
    }
  }
  conn->open = false;
  shutdown(conn->fd, SHUT_RDWR);
  // Final touch of server state on this detached thread: Stop() waits on
  // the connections_active gauge, and the notify happens under mu_, so
  // once the waiter observes zero this thread can no longer reference
  // the server.
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.connections_active;
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), conn),
      connections_.end());
  queries_done_cv_.notify_all();
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  if (frame.type == frame::kHello) {
    if (const std::string* tenant = frame.Get("tenant")) {
      conn->tenant = *tenant;
    }
    Frame welcome;
    welcome.type = frame::kWelcome;
    welcome.Set("tenant", conn->tenant);
    welcome.Set("proto", static_cast<int64_t>(1));
    SendFrame(conn, welcome);
  } else if (frame.type == frame::kQuery) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_queries_;
      ++stats_.queries_started;
    }
    // Each query gets its own thread so a connection can pipeline
    // queries; Stop() waits on active_queries_ before returning.
    std::thread([this, conn, f = std::move(frame)]() mutable {
      RunQuery(conn, std::move(f));
      std::lock_guard<std::mutex> lock(mu_);
      --active_queries_;
      queries_done_cv_.notify_all();
    }).detach();
  } else if (frame.type == frame::kMetrics) {
    HandleMetrics(conn, frame);
  } else if (frame.type == frame::kTrace) {
    HandleTrace(conn, frame);
  } else if (frame.type == frame::kProfile) {
    HandleProfile(conn, frame);
  } else if (frame.type == frame::kBye) {
    Frame bye;
    bye.type = frame::kBye;
    SendFrame(conn, bye);
    conn->open = false;
  } else {
    SendError(conn, "-", kErrBadFrame,
              "unknown frame type '" + frame.type + "'");
  }
}

void Server::RunQuery(std::shared_ptr<Connection> conn, Frame frame) {
  const std::string* id_attr = frame.Get("id");
  const std::string id = id_attr != nullptr ? *id_attr : "-";
  const std::string tenant = conn->tenant;
  auto fail = [&](const char* code, const std::string& message) {
    // Count before the ERROR frame goes out, mirroring the completion
    // path: observers that saw the outcome see the counter.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.queries_failed;
    }
    SendError(conn, id, code, message);
  };
  if (id_attr == nullptr) {
    fail(kErrBadFrame, "QUERY frame missing id attribute");
    return;
  }
  const std::string* dataset = frame.Get("dataset");
  if (dataset == nullptr) {
    fail(kErrBadFrame, "QUERY frame missing dataset attribute");
    return;
  }
  data::DatasetBundle bundle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(*dataset);
    if (it != datasets_.end()) bundle = it->second;
  }
  if (bundle.array == nullptr) {
    fail(kErrNotFound, "dataset '" + *dataset + "' is not registered");
    return;
  }
  core::RefineOptions opts;
  bool cached = false;
  bool want_trace = false;
  bool want_profile = false;
  Status st =
      OptionsFromFrame(frame, &opts, &cached, &want_trace, &want_profile);
  if (!st.ok()) {
    fail(kErrBadFrame, st.message());
    return;
  }
  Result<data::ParsedQuery> parsed = data::ParseQueryText(frame.body);
  if (!parsed.ok()) {
    fail(kErrParse, parsed.status().message());
    return;
  }
  Result<searchlight::QuerySpec> spec =
      data::BuildQuery(parsed.value(), bundle, options_.estimate_cost_ns);
  if (!spec.ok()) {
    fail(kErrParse, spec.status().message());
    return;
  }

  std::shared_ptr<obs::Trace> trace;
  if (want_trace) {
    trace = std::make_shared<obs::Trace>();
    opts.trace = trace.get();
  }
  std::shared_ptr<obs::Profile> profile;
  if (want_profile) {
    profile = std::make_shared<obs::Profile>();
    opts.profile = profile.get();
  }
  // Stream every confirmed result and every bound improvement as it
  // happens — the incremental half of the protocol. The callbacks run
  // on validator threads; SendFrame serializes on the connection's
  // write mutex.
  opts.on_result = [this, conn, id](const core::Solution& solution) {
    Frame f;
    f.type = frame::kResult;
    f.Set("id", id);
    f.body = core::CanonicalLine(solution);
    SendFrame(conn, f);
  };
  opts.on_progress = [this, conn, id](const core::ProgressEvent& ev) {
    Frame f;
    f.Set("id", id);
    if (ev.kind == core::ProgressKind::kPhaseConstraining) {
      f.type = frame::kPhase;
      f.Set("phase", "constraining");
    } else {
      f.type = frame::kBound;
      f.Set("bound",
            ev.kind == core::ProgressKind::kMrp ? "mrp" : "mrk");
      f.Set("value", ev.value);
    }
    SendFrame(conn, f);
  };

  const int64_t demand = exec::EngineSession::TaskDemand(opts);
  Frame accepted;
  accepted.type = frame::kAccepted;
  accepted.Set("id", id);
  accepted.Set("tenant", tenant);
  accepted.Set("demand", demand);
  SendFrame(conn, accepted);

  Result<double> admitted = scheduler_.Acquire(tenant, demand);
  if (!admitted.ok()) {
    fail(admitted.status().code() == StatusCode::kResourceExhausted
             ? kErrBudget
             : kErrOverload,
         admitted.status().message());
    return;
  }
  Frame phase;
  phase.type = frame::kPhase;
  phase.Set("id", id);
  phase.Set("phase", "collecting");
  SendFrame(conn, phase);

  Result<core::RunResult> run = InternalError("unreachable");
  std::string outcome = "executed";
  if (cached) {
    cache::CachedQuery cq;
    cq.query = spec.value();
    cq.dataset_id = *dataset;
    for (const auto& c : parsed.value().constraints) {
      cq.function_ids.push_back(FunctionId(c));
    }
    cache::CacheOutcome cache_outcome = cache::CacheOutcome::kMiss;
    run = session_->ExecuteCached(&cache_, cq, opts, &cache_outcome);
    if (run.ok()) outcome = cache::CacheOutcomeName(cache_outcome);
  } else {
    run = session_->Execute(spec.value(), opts);
  }
  scheduler_.Release(tenant, demand);
  if (!run.ok()) {
    fail(kErrEngine, run.status().message());
    return;
  }

  const core::RunResult& result = run.value();
  const std::string canonical = core::Canonicalize(result.results);
  const std::string fingerprint = core::CanonicalFingerprint(canonical);
  Frame final_frame;
  final_frame.type = frame::kFinal;
  final_frame.Set("id", id);
  final_frame.Set("completed",
                  static_cast<int64_t>(result.stats.completed ? 1 : 0));
  final_frame.Set("results",
                  static_cast<int64_t>(result.results.size()));
  final_frame.Set("outcome", outcome);
  final_frame.Set("wait_s", admitted.value());
  final_frame.Set("fingerprint", fingerprint);
  final_frame.body = canonical;

  // Record and count before FINAL goes out: a client that has seen the
  // answer must be able to fetch the query's record (METRICS id= /
  // TRACE id=) and observe the completion counter immediately.
  std::shared_ptr<const std::string> profile_json;
  if (profile != nullptr) {
    profile_json = std::make_shared<const std::string>(
        obs::ProfileToJson(profile->query()));
  }
  QueryRecord record;
  record.id = id;
  record.tenant = tenant;
  record.stats = result.stats;
  record.canonical = canonical;
  record.fingerprint = fingerprint;
  record.outcome = outcome;
  record.trace = trace;
  record.profile_json = profile_json;
  RecordQuery(std::move(record));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_completed;
  }
  SendFrame(conn, final_frame);
  // The profile rides behind the FINAL: clients that asked for profile=1
  // read exactly one more frame; everyone else never sees it.
  if (profile_json != nullptr) {
    Frame profile_frame;
    profile_frame.type = frame::kProfile;
    profile_frame.Set("id", id);
    profile_frame.body = *profile_json;
    SendFrame(conn, profile_frame);
  }
}

void Server::HandleMetrics(const std::shared_ptr<Connection>& conn,
                           const Frame& frame) {
  Frame reply;
  reply.type = frame::kMetrics;
  if (const std::string* id = frame.Get("id")) {
    std::shared_ptr<const QueryRecord> record = FindRecord(*id);
    if (record == nullptr) {
      SendError(conn, *id, kErrNotFound,
                "no completed query with id '" + *id +
                    "' in the history window");
      return;
    }
    reply.Set("id", *id);
    reply.body =
        obs::MetricsSnapshot(record->stats, "query=\"" + *id + "\"");
  } else {
    reply.body = MetricsText();
  }
  SendFrame(conn, reply);
}

void Server::HandleTrace(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  const std::string* id = frame.Get("id");
  if (id == nullptr) {
    SendError(conn, "-", kErrBadFrame, "TRACE frame missing id attribute");
    return;
  }
  std::shared_ptr<const QueryRecord> record = FindRecord(*id);
  if (record == nullptr) {
    SendError(conn, *id, kErrNotFound,
              "no completed query with id '" + *id +
                  "' in the history window");
    return;
  }
  if (record->trace == nullptr) {
    SendError(conn, *id, kErrNotFound,
              "query '" + *id +
                  "' ran without tracing (submit with trace=1)");
    return;
  }
  Frame reply;
  reply.type = frame::kTrace;
  reply.Set("id", *id);
  reply.body = obs::ExportChromeJson(*record->trace);
  SendFrame(conn, reply);
}

void Server::HandleProfile(const std::shared_ptr<Connection>& conn,
                           const Frame& frame) {
  const std::string* id = frame.Get("id");
  if (id == nullptr) {
    SendError(conn, "-", kErrBadFrame,
              "PROFILE frame missing id attribute");
    return;
  }
  std::shared_ptr<const QueryRecord> record = FindRecord(*id);
  if (record == nullptr) {
    SendError(conn, *id, kErrNotFound,
              "no completed query with id '" + *id +
                  "' in the history window");
    return;
  }
  if (record->profile_json == nullptr) {
    SendError(conn, *id, kErrNotFound,
              "query '" + *id +
                  "' ran without profiling (submit with profile=1)");
    return;
  }
  Frame reply;
  reply.type = frame::kProfile;
  reply.Set("id", *id);
  reply.body = *record->profile_json;
  SendFrame(conn, reply);
}

std::string Server::MetricsText() const {
  // Aggregate engine stats over the history window, then the serve /
  // tenant / session layers as dqr_serve_* samples.
  core::RunStats agg;
  ServerStats server_stats;
  std::vector<std::shared_ptr<const QueryRecord>> history;
  {
    std::lock_guard<std::mutex> lock(mu_);
    history = history_;
    server_stats = stats_;
  }
  // Per-tenant latency histograms over the same window: the engine
  // records query_latency unconditionally, so these populate whether or
  // not the queries were profiled.
  std::map<std::string, obs::LatencyHistogram> tenant_latency;
  for (const auto& record : history) {
    agg += record->stats;
    tenant_latency[record->tenant] += record->stats.query_latency;
  }
  std::string out = obs::MetricsSnapshot(agg, "scope=\"history\"");
  for (const auto& [name, hist] : tenant_latency) {
    obs::AppendLatencyHistogram(
        out, "serve_tenant_query_latency_seconds",
        "End-to-end latency of completed queries, per tenant",
        "tenant=\"" + name + "\"", hist);
  }
  const auto sample = [&out](const std::string& name, const char* help,
                             const char* type, const std::string& labels,
                             double value) {
    obs::AppendMetricSample(out, "serve_" + name, help, type, labels,
                            value);
  };
  sample("connections_accepted", "Connections accepted", "counter", "",
         static_cast<double>(server_stats.connections_accepted));
  sample("connections_active", "Connections open right now", "gauge", "",
         static_cast<double>(server_stats.connections_active));
  sample("frames_received", "Frames decoded from clients", "counter", "",
         static_cast<double>(server_stats.frames_received));
  sample("frames_sent", "Frames written to clients", "counter", "",
         static_cast<double>(server_stats.frames_sent));
  sample("queries_started", "QUERY frames dispatched", "counter", "",
         static_cast<double>(server_stats.queries_started));
  sample("queries_completed", "Queries that reached FINAL", "counter", "",
         static_cast<double>(server_stats.queries_completed));
  sample("queries_failed", "Queries terminated by ERROR", "counter", "",
         static_cast<double>(server_stats.queries_failed));
  sample("http_requests", "Requests served by the HTTP metrics gateway",
         "counter", "", static_cast<double>(server_stats.http_requests));
  for (const auto& [name, t] : scheduler_.Stats()) {
    const std::string labels = "tenant=\"" + name + "\"";
    sample("tenant_weight", "Configured tenant weight", "gauge", labels,
           t.weight);
    sample("tenant_submitted", "Admission requests", "counter", labels,
           static_cast<double>(t.submitted));
    sample("tenant_granted", "Admissions granted", "counter", labels,
           static_cast<double>(t.granted));
    sample("tenant_completed", "Queries completed", "counter", labels,
           static_cast<double>(t.completed));
    sample("tenant_rejected", "Budget rejections", "counter", labels,
           static_cast<double>(t.rejected));
    sample("tenant_queue_depth", "Queries queued right now", "gauge",
           labels, static_cast<double>(t.queue_depth));
    sample("tenant_in_flight", "Queries admitted right now", "gauge",
           labels, static_cast<double>(t.in_flight));
    sample("tenant_completed_demand",
           "Summed task demand of completed queries", "counter", labels,
           static_cast<double>(t.completed_demand));
    sample("tenant_admission_wait_seconds", "Summed admission wait",
           "counter", labels, t.admission_wait_s);
    sample("tenant_max_admission_wait_seconds",
           "Worst single admission wait", "gauge", labels,
           t.max_admission_wait_s);
  }
  const exec::SessionStats session_stats = session_->stats();
  sample("session_active_slots", "Engine session slots running", "gauge",
         "", static_cast<double>(session_stats.active_slots));
  sample("session_peak_slots", "Engine session slot high-water", "gauge",
         "", static_cast<double>(session_stats.peak_slots));
  sample("session_queries_admitted", "Engine session admissions",
         "counter", "",
         static_cast<double>(session_stats.queries_admitted));
  sample("session_queries_queued", "Admissions that waited", "counter",
         "", static_cast<double>(session_stats.queries_queued));
  sample("session_admission_wait_seconds",
         "Summed engine-session admission wait", "counter", "",
         session_stats.admission_wait_s);
  sample("session_max_admission_wait_seconds",
         "Worst single engine-session admission wait", "gauge", "",
         session_stats.max_admission_wait_s);
  sample("session_tasks_in_flight", "Pool-task demand of active slots",
         "gauge", "",
         static_cast<double>(session_stats.tasks_in_flight));
  sample("pool_threads", "Persistent pool workers", "gauge", "",
         static_cast<double>(session_stats.pool.threads));
  sample("pool_busy", "Pool workers running a task", "gauge", "",
         static_cast<double>(session_stats.pool.busy));
  sample("pool_dispatched", "Tasks handed to the pool", "counter", "",
         static_cast<double>(session_stats.pool.dispatched));
  sample("pool_overflow_spawns", "Tasks that needed a transient thread",
         "counter", "",
         static_cast<double>(session_stats.pool.overflow_spawns));
  return out;
}

void Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       const Frame& frame) {
  Result<std::string> wire = EncodeFrame(frame);
  if (!wire.ok()) {
    DQR_LOG(kWarning) << "dqr_serve: dropping unencodable " << frame.type
                  << " frame: " << wire.status().ToString();
    return;
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    sent = WriteAll(conn->fd, wire.value());
  }
  if (sent) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_sent;
  }
}

void Server::SendError(const std::shared_ptr<Connection>& conn,
                       const std::string& id, const std::string& code,
                       const std::string& message) {
  Frame frame;
  frame.type = frame::kError;
  frame.Set("id", id.empty() ? "-" : id);
  frame.Set("code", code);
  frame.body = message;
  SendFrame(conn, frame);
}

void Server::RecordQuery(QueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(
      std::make_shared<const QueryRecord>(std::move(record)));
  if (history_.size() > options_.history_capacity) {
    history_.erase(history_.begin());
  }
}

std::shared_ptr<const Server::QueryRecord> Server::FindRecord(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->id == id) return *it;
  }
  return nullptr;
}

}  // namespace dqr::serve
