#include "serve/tenant.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace dqr::serve {

TenantScheduler::TenantScheduler(int slots)
    : slots_(slots > 0 ? slots : 1) {}

TenantScheduler::Tenant& TenantScheduler::GetTenant(
    const std::string& name) {
  Tenant& t = tenants_[name];
  if (t.stats.weight != t.config.weight) {
    t.stats.weight = t.config.weight;
  }
  return t;
}

Status TenantScheduler::Configure(const std::string& tenant,
                                  const TenantConfig& config) {
  if (!(config.weight > 0.0)) {
    return InvalidArgumentError("tenant '" + tenant +
                                "' weight must be > 0, got " +
                                std::to_string(config.weight));
  }
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  t.config = config;
  t.stats.weight = config.weight;
  return Status::Ok();
}

void TenantScheduler::Pump() {
  if (paused_ || shutdown_) return;
  bool granted_any = true;
  while (active_ < slots_ && granted_any) {
    granted_any = false;
    bool any_backlog = false;
    // One DRR pass in ring order: grant every head whose deficit covers
    // its demand, while slots remain.
    for (auto& [name, t] : tenants_) {
      if (t.queue.empty()) {
        t.deficit = 0.0;  // idle tenants do not bank credit
        continue;
      }
      any_backlog = true;
      while (!t.queue.empty() && active_ < slots_ &&
             t.deficit >= static_cast<double>(t.queue.front()->demand)) {
        Waiter* w = t.queue.front();
        t.queue.pop_front();
        t.deficit -= static_cast<double>(w->demand);
        w->granted = true;
        ++active_;
        ++t.stats.granted;
        --t.stats.queue_depth;
        ++t.stats.in_flight;
        grant_log_.push_back(name);
        granted_any = true;
      }
      if (active_ >= slots_) break;
    }
    if (!any_backlog) return;
    if (!granted_any && active_ < slots_) {
      // Stalled: no head is affordable. Top up every backlogged tenant
      // by quantum * weight and try again — this is the DRR round
      // boundary, and the only place credit is issued.
      for (auto& [name, t] : tenants_) {
        (void)name;
        if (!t.queue.empty()) {
          t.deficit += quantum_ * t.config.weight;
        }
      }
      granted_any = true;  // retry the pass with fresh credit
    }
  }
}

Result<double> TenantScheduler::Acquire(const std::string& tenant,
                                        int64_t demand) {
  demand = std::max<int64_t>(1, demand);
  Stopwatch wait;
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return CancelledError("tenant scheduler is shut down");
  }
  Tenant& t = GetTenant(tenant);
  ++t.stats.submitted;
  if (t.config.max_task_demand > 0 && demand > t.config.max_task_demand) {
    ++t.stats.rejected;
    return ResourceExhaustedError(
        "tenant '" + tenant + "' query demand " + std::to_string(demand) +
        " exceeds max_task_demand " +
        std::to_string(t.config.max_task_demand));
  }
  const int64_t occupancy = t.stats.in_flight + t.stats.queue_depth;
  if (t.config.max_in_flight > 0 && occupancy >= t.config.max_in_flight) {
    ++t.stats.rejected;
    return ResourceExhaustedError(
        "tenant '" + tenant + "' is at max_in_flight " +
        std::to_string(t.config.max_in_flight));
  }
  quantum_ = std::max(quantum_, static_cast<double>(demand));
  Waiter w;
  w.demand = demand;
  w.seq = next_seq_++;
  t.queue.push_back(&w);
  ++t.stats.queue_depth;
  Pump();
  // This Pump may have granted other tenants' waiters too (a top-up
  // round credits everyone); wake them.
  cv_.notify_all();
  if (!w.granted) {
    cv_.wait(lock, [&] { return w.granted || w.cancelled; });
  }
  if (w.cancelled) {
    return CancelledError("tenant scheduler shut down while '" + tenant +
                          "' was queued");
  }
  const double waited_s = wait.ElapsedSeconds();
  t.stats.admission_wait_s += waited_s;
  t.stats.max_admission_wait_s =
      std::max(t.stats.max_admission_wait_s, waited_s);
  return waited_s;
}

void TenantScheduler::Release(const std::string& tenant, int64_t demand) {
  demand = std::max<int64_t>(1, demand);
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  --active_;
  --t.stats.in_flight;
  ++t.stats.completed;
  t.stats.completed_demand += demand;
  Pump();
  cv_.notify_all();
}

void TenantScheduler::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (auto& [name, t] : tenants_) {
    (void)name;
    for (Waiter* w : t.queue) {
      w->cancelled = true;
      --t.stats.queue_depth;
    }
    t.queue.clear();
  }
  cv_.notify_all();
}

void TenantScheduler::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void TenantScheduler::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  Pump();
  cv_.notify_all();
}

std::vector<std::string> TenantScheduler::GrantLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grant_log_;
}

TenantStats TenantScheduler::StatsFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TenantStats{};
  return it->second.stats;
}

std::map<std::string, TenantStats> TenantScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, t] : tenants_) out[name] = t.stats;
  return out;
}

}  // namespace dqr::serve
