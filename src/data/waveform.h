#ifndef DQR_DATA_WAVEFORM_H_
#define DQR_DATA_WAVEFORM_H_

#include <cstdint>
#include <memory>

#include "array/array.h"
#include "common/status.h"

namespace dqr::data {

// Parameters of the MIMIC-like ABP (Arterial Blood Pressure) waveform
// simulator. The real MIMIC II waveform set is a credentialed PhysioNet
// download and unavailable offline; this generator reproduces the
// statistics the paper's queries observe (see DESIGN.md §3): a
// quasi-periodic pressure signal around a wandering baseline, extended
// hypertensive episodes where window averages reach the [150, 200] band,
// and short high-amplitude events (pressure spikes / artifacts) that
// create neighborhood contrast. One cell = one second of signal
// (per-second mean pressure), matching the paper's 8-16 second intervals.
struct WaveformOptions {
  int64_t length = 1 << 21;
  int64_t chunk_size = 1 << 16;
  uint64_t seed = 1234;

  // Baseline pressure and slow wander.
  double base_pressure = 95.0;
  double wander_amp = 12.0;
  int64_t wander_period = 4096;
  // Pulse pressure ripple (respiratory/heart-rate aliasing at 1 Hz
  // sampling) and measurement noise.
  double ripple_amp = 6.0;
  double noise_sigma = 2.5;

  // Hypertensive episodes: stretches where the baseline is raised into
  // [episode_lo, episode_hi].
  double episodes_per_million = 180.0;
  int64_t episode_len_lo = 64;
  int64_t episode_len_hi = 1024;
  double episode_lo = 140.0;
  double episode_hi = 205.0;

  // Short pressure events (flush artifacts, transients): plateaus of
  // `event_width` cells raised `height` above the local signal.
  double events_per_million = 260.0;
  int64_t event_width = 3;
  double event_height_lo = 35.0;
  double event_height_hi = 75.0;
  double strong_fraction = 0.07;
  double strong_height_lo = 85.0;
  double strong_height_hi = 115.0;

  // Physiological clamp, as in the paper's running example.
  double value_lo = 50.0;
  double value_hi = 250.0;
};

// Generates the ABP-like waveform; deterministic in `options.seed`.
Result<std::shared_ptr<array::Array>> GenerateAbpWaveform(
    const WaveformOptions& options);

}  // namespace dqr::data

#endif  // DQR_DATA_WAVEFORM_H_
