#include "data/waveform.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace dqr::data {

Result<std::shared_ptr<array::Array>> GenerateAbpWaveform(
    const WaveformOptions& options) {
  if (options.length <= 0) {
    return InvalidArgumentError("waveform length must be positive");
  }
  if (options.episode_len_lo <= 0 ||
      options.episode_len_hi < options.episode_len_lo) {
    return InvalidArgumentError("bad episode length range");
  }

  Rng rng(options.seed);
  const int64_t n = options.length;
  std::vector<double> values(static_cast<size_t>(n));

  // Base signal: wandering baseline + ripple + noise.
  constexpr double kTwoPi = 6.283185307179586;
  const double wander_w = kTwoPi / static_cast<double>(options.wander_period);
  double walk = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    walk += 0.05 * rng.NextGaussian();
    walk *= 0.9995;  // mean-reverting drift
    const double wander =
        options.wander_amp * std::sin(wander_w * static_cast<double>(i));
    const double ripple =
        options.ripple_amp * std::sin(0.9 * static_cast<double>(i));
    values[static_cast<size_t>(i)] = options.base_pressure + wander +
                                     ripple + walk +
                                     options.noise_sigma * rng.NextGaussian();
  }

  // Hypertensive episodes.
  const int64_t episodes = static_cast<int64_t>(
      options.episodes_per_million * static_cast<double>(n) / 1e6);
  for (int64_t e = 0; e < episodes; ++e) {
    const int64_t len =
        rng.UniformInt(options.episode_len_lo, options.episode_len_hi);
    const int64_t lo = rng.UniformInt(0, std::max<int64_t>(0, n - len));
    const int64_t hi = std::min(n, lo + len);
    const double level = rng.Uniform(options.episode_lo, options.episode_hi);
    for (int64_t i = lo; i < hi; ++i) {
      // Smooth ramp at the episode edges.
      const double edge = std::min<double>(
          1.0, 0.1 * static_cast<double>(std::min(i - lo, hi - 1 - i) + 1));
      double& v = values[static_cast<size_t>(i)];
      v += edge * (level - options.base_pressure);
    }
  }

  // Short pressure events.
  const int64_t events = static_cast<int64_t>(
      options.events_per_million * static_cast<double>(n) / 1e6);
  for (int64_t e = 0; e < events; ++e) {
    const bool strong = rng.Bernoulli(options.strong_fraction);
    const double height =
        strong
            ? rng.Uniform(options.strong_height_lo, options.strong_height_hi)
            : rng.Uniform(options.event_height_lo, options.event_height_hi);
    const int64_t pos =
        rng.UniformInt(0, std::max<int64_t>(0, n - options.event_width));
    const int64_t end = std::min(n, pos + options.event_width);
    for (int64_t i = pos; i < end; ++i) {
      values[static_cast<size_t>(i)] += height;
    }
  }

  for (double& v : values) {
    v = std::clamp(v, options.value_lo, options.value_hi);
  }

  array::ArraySchema schema;
  schema.name = "mimic_abp_sim";
  schema.attribute = "ABP";
  schema.length = n;
  schema.chunk_size = options.chunk_size;
  return array::Array::FromData(std::move(schema), std::move(values));
}

}  // namespace dqr::data
