#ifndef DQR_DATA_SYNTHETIC_H_
#define DQR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <memory>

#include "array/array.h"
#include "common/status.h"

namespace dqr::data {

// Parameters of the synthetic data set, modelled on the Searchlight
// paper's generator: contiguous regions of varying base amplitude with
// additive noise, plus planted "spikes" whose height above the local base
// controls the neighborhood-contrast selectivity of the canned queries.
// All values are clamped to [50, 250] — the signal range quoted by the
// paper's running example.
struct SyntheticOptions {
  int64_t length = 1 << 21;
  int64_t chunk_size = 1 << 16;
  uint64_t seed = 42;

  // Regions of constant base amplitude.
  int64_t region_len = 32768;
  double base_lo = 60.0;
  double base_hi = 190.0;
  double noise_sigma = 3.0;

  // Spikes: short plateaus raised `height` above the local base. Heights
  // are drawn uniformly from [spike_height_lo, spike_height_hi]; a small
  // fraction (strong_fraction) instead uses
  // [strong_height_lo, strong_height_hi], giving the selective queries a
  // thin tail of qualifying intervals.
  double spikes_per_region = 2.0;
  int64_t spike_width = 4;
  double spike_height_lo = 30.0;
  double spike_height_hi = 70.0;
  double strong_fraction = 0.08;
  double strong_height_lo = 85.0;
  double strong_height_hi = 120.0;

  // Hard clamp of all values.
  double value_lo = 50.0;
  double value_hi = 250.0;
};

// Generates the synthetic array; deterministic in `options.seed`.
Result<std::shared_ptr<array::Array>> GenerateSynthetic(
    const SyntheticOptions& options);

}  // namespace dqr::data

#endif  // DQR_DATA_SYNTHETIC_H_
