#ifndef DQR_DATA_GRID_SYNTHETIC_H_
#define DQR_DATA_GRID_SYNTHETIC_H_

#include <cstdint>
#include <memory>

#include "array/grid.h"
#include "common/status.h"
#include "searchlight/query.h"
#include "synopsis/grid_synopsis.h"

namespace dqr::data {

// Parameters of the two-dimensional synthetic data set: rectangular
// regions of varying base amplitude (the Searchlight paper's synthetic
// workload is 2-D) with noise and planted square "spikes".
struct GridSyntheticOptions {
  int64_t rows = 1024;
  int64_t cols = 1024;
  int64_t tile_size = 256;
  uint64_t seed = 42;

  int64_t region_size = 128;  // square regions of constant base
  double base_lo = 60.0;
  double base_hi = 190.0;
  double noise_sigma = 3.0;

  double spikes_per_region = 2.0;
  int64_t spike_size = 3;  // square spikes
  double spike_height_lo = 30.0;
  double spike_height_hi = 70.0;
  double strong_fraction = 0.12;
  double strong_height_lo = 85.0;
  double strong_height_hi = 120.0;

  double value_lo = 50.0;
  double value_hi = 250.0;
};

Result<std::shared_ptr<array::Grid>> GenerateGridSynthetic(
    const GridSyntheticOptions& options);

// A grid plus its synopsis, ready to be queried.
struct GridBundle {
  std::shared_ptr<array::Grid> grid;
  std::shared_ptr<const synopsis::GridSynopsis> synopsis;
};

Result<GridBundle> MakeGridDataset(int64_t rows, int64_t cols,
                                   uint64_t seed);

// Knobs of the canned 2-D query (the 2-D analogue of S-SEL/S-LOS): find
// h x w rectangles whose average lies in a band and whose max exceeds
// both horizontal neighborhood bands by a threshold.
struct GridQueryTuning {
  int64_t k = 10;
  int64_t extent_lo = 3;
  int64_t extent_hi = 6;   // h, w domains
  int64_t nbhd_width = 4;
  bool selective = true;   // tight value ranges (hard relaxation limits)
  double relax_fraction = 0.0;
  int64_t estimate_cost_ns = 0;
};

// Builds the canned 2-D query. Variables: 0 = y, 1 = x, 2 = h, 3 = w.
searchlight::QuerySpec MakeGridQuery(const GridBundle& bundle,
                                     const GridQueryTuning& tuning);

}  // namespace dqr::data

#endif  // DQR_DATA_GRID_SYNTHETIC_H_
