#include "data/grid_synthetic.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "searchlight/grid_functions.h"

namespace dqr::data {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<std::shared_ptr<array::Grid>> GenerateGridSynthetic(
    const GridSyntheticOptions& options) {
  if (options.rows <= 0 || options.cols <= 0) {
    return InvalidArgumentError("grid extents must be positive");
  }
  if (options.region_size <= 0 || options.spike_size <= 0) {
    return InvalidArgumentError("region and spike sizes must be positive");
  }

  Rng rng(options.seed);
  std::vector<double> values(
      static_cast<size_t>(options.rows * options.cols));

  for (int64_t ry = 0; ry < options.rows; ry += options.region_size) {
    for (int64_t rx = 0; rx < options.cols; rx += options.region_size) {
      const int64_t ry1 = std::min(options.rows, ry + options.region_size);
      const int64_t rx1 = std::min(options.cols, rx + options.region_size);
      const double base = rng.Uniform(options.base_lo, options.base_hi);
      for (int64_t y = ry; y < ry1; ++y) {
        for (int64_t x = rx; x < rx1; ++x) {
          values[static_cast<size_t>(y * options.cols + x)] =
              base + options.noise_sigma * rng.NextGaussian();
        }
      }
      const int64_t spikes =
          static_cast<int64_t>(options.spikes_per_region) +
          (rng.NextDouble() < (options.spikes_per_region -
                               static_cast<int64_t>(
                                   options.spikes_per_region))
               ? 1
               : 0);
      for (int64_t s = 0; s < spikes; ++s) {
        const bool strong = rng.Bernoulli(options.strong_fraction);
        const double height =
            strong ? rng.Uniform(options.strong_height_lo,
                                 options.strong_height_hi)
                   : rng.Uniform(options.spike_height_lo,
                                 options.spike_height_hi);
        const int64_t sy = rng.UniformInt(
            ry, std::max(ry, ry1 - options.spike_size));
        const int64_t sx = rng.UniformInt(
            rx, std::max(rx, rx1 - options.spike_size));
        for (int64_t y = sy; y < std::min(ry1, sy + options.spike_size);
             ++y) {
          for (int64_t x = sx; x < std::min(rx1, sx + options.spike_size);
               ++x) {
            values[static_cast<size_t>(y * options.cols + x)] += height;
          }
        }
      }
    }
  }

  for (double& v : values) {
    v = std::clamp(v, options.value_lo, options.value_hi);
  }

  array::GridSchema schema;
  schema.name = "grid_synthetic";
  schema.attribute = "amp";
  schema.rows = options.rows;
  schema.cols = options.cols;
  schema.tile_size = options.tile_size;
  return array::Grid::FromData(std::move(schema), std::move(values));
}

Result<GridBundle> MakeGridDataset(int64_t rows, int64_t cols,
                                   uint64_t seed) {
  GridSyntheticOptions options;
  options.rows = rows;
  options.cols = cols;
  options.seed = seed;
  auto grid_result = GenerateGridSynthetic(options);
  if (!grid_result.ok()) return grid_result.status();
  std::shared_ptr<array::Grid> grid = std::move(grid_result).value();
  auto synopsis_result =
      synopsis::GridSynopsis::Build(*grid, synopsis::GridSynopsisOptions{});
  if (!synopsis_result.ok()) return synopsis_result.status();
  grid->ResetAccessStats();
  GridBundle bundle;
  bundle.grid = std::move(grid);
  bundle.synopsis = std::move(synopsis_result).value();
  return bundle;
}

searchlight::QuerySpec MakeGridQuery(const GridBundle& bundle,
                                     const GridQueryTuning& tuning) {
  DQR_CHECK(bundle.grid != nullptr && bundle.synopsis != nullptr);
  const int64_t rows = bundle.grid->rows();
  const int64_t cols = bundle.grid->cols();
  const int64_t margin = tuning.nbhd_width;
  DQR_CHECK(rows > tuning.extent_hi + 2);
  DQR_CHECK(cols > 2 * margin + tuning.extent_hi + 2);

  // Bounds: the 2-D analogue of S-SEL / S-LOS. Selective queries declare
  // tight hard ranges (relaxation stays selective even maximal).
  const Interval avg_bounds(150, 200);
  const Interval avg_range =
      tuning.selective ? Interval(140, 210) : Interval(50, 250);
  const double contrast_min = 112.0;
  const Interval contrast_range =
      tuning.selective ? Interval(64, 130) : Interval(0, 200);

  const auto relax = [&](const Interval& bounds, const Interval& range) {
    double lo = bounds.lo;
    double hi = bounds.hi;
    if (std::isfinite(lo)) {
      lo -= tuning.relax_fraction * std::max(0.0, lo - range.lo);
    }
    if (std::isfinite(hi)) {
      hi += tuning.relax_fraction * std::max(0.0, range.hi - hi);
    }
    return Interval(lo, hi);
  };

  searchlight::QuerySpec query;
  query.name = tuning.selective ? "G-SEL" : "G-LOS";
  query.k = tuning.k;
  query.domains = {
      cp::IntDomain(0, rows - tuning.extent_hi - 1),            // y
      cp::IntDomain(margin, cols - tuning.extent_hi - margin - 1),  // x
      cp::IntDomain(tuning.extent_lo, tuning.extent_hi),        // h
      cp::IntDomain(tuning.extent_lo, tuning.extent_hi),        // w
  };

  searchlight::GridFunctionContext base_ctx;
  base_ctx.grid = bundle.grid;
  base_ctx.synopsis = bundle.synopsis;
  base_ctx.estimate_cost_ns = tuning.estimate_cost_ns;

  {
    searchlight::QueryConstraint c;
    searchlight::GridFunctionContext ctx = base_ctx;
    ctx.value_range = avg_range;
    c.make_function = [ctx] {
      return std::make_unique<searchlight::RectAvgFunction>(ctx);
    };
    c.bounds = relax(avg_bounds, avg_range);
    c.name = "c1_rect_avg";
    query.constraints.push_back(std::move(c));
  }
  for (const auto side : {searchlight::RectContrastFunction::Side::kLeft,
                          searchlight::RectContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    searchlight::GridFunctionContext ctx = base_ctx;
    ctx.value_range = contrast_range;
    const int64_t width = tuning.nbhd_width;
    c.make_function = [ctx, side, width] {
      return std::make_unique<searchlight::RectContrastFunction>(ctx, side,
                                                                 width);
    };
    c.bounds = relax(Interval(contrast_min, kInf), contrast_range);
    c.name = side == searchlight::RectContrastFunction::Side::kLeft
                 ? "c2_rect_left"
                 : "c3_rect_right";
    query.constraints.push_back(std::move(c));
  }
  return query;
}

}  // namespace dqr::data
