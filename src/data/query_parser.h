#ifndef DQR_DATA_QUERY_PARSER_H_
#define DQR_DATA_QUERY_PARSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "cp/domain.h"
#include "data/queries.h"
#include "searchlight/query.h"

namespace dqr::data {

// A small line-oriented query language, so tools can run ad-hoc searches
// without recompiling. Grammar (one statement per line; '#' starts a
// comment; 'inf'/'-inf' are accepted as bounds):
//
//   k <cardinality>
//   var <name> <lo> <hi>
//   avg <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   max <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   min <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   contrast_left  <start_var> <len_var> <width> in <a> <b> [range ...]
//   contrast_right <start_var> <len_var> <width> in <a> <b> [range ...]
//
// Constraint options: `weight <w>` (relax weight), `rankweight <w>`,
// `norelax` (exclude from C^r), `noconstrain` (exclude from C^c),
// `minimize` (ranking preference; default maximize).
//
// Example:
//   # the paper's running MIMIC query
//   k 10
//   var x 8 1000000
//   var lx 8 16
//   avg x lx in 150 200 range 50 250
//   contrast_left x lx 8 in 80 inf range 0 200
//   contrast_right x lx 8 in 80 inf range 0 200
//
// Exactly two variables must be declared (window start and length, in
// that order). Parsing is split into a data-independent front end
// (ParseQueryText -> ParsedQuery) and a binding stage (BuildQuery), with
// SerializeQuery as the exact inverse of the front end.

// One parsed constraint statement, before any binding to data.
struct ParsedConstraint {
  // avg | max | min | contrast_left | contrast_right.
  std::string fn;
  int64_t width = 0;  // contrast only
  Interval bounds = Interval::All();
  Interval range = Interval::Empty();  // empty = function default
  double weight = 1.0;
  double rank_weight = -1.0;
  bool relaxable = true;
  bool constrainable = true;
  bool maximize = true;
};

// The parsed, data-independent form of a query text: what the grammar
// expresses, syntactically validated (two variables in start/length
// order, known functions, well-formed numbers and options) but not yet
// bound to a dataset.
struct ParsedQuery {
  int64_t k = 10;
  std::vector<std::string> var_names;  // size 2: start, length
  std::vector<cp::IntDomain> domains;  // parallel to var_names
  std::vector<ParsedConstraint> constraints;
};

// Parses query text into the IR. Errors carry the 1-based line number of
// the offending statement where one applies.
Result<ParsedQuery> ParseQueryText(const std::string& text);

// Emits the canonical text form: one statement per line, default-valued
// options omitted, doubles printed round-trip-exactly ("%.17g", with
// inf/-inf spelled out). For any q from ParseQueryText,
// ParseQueryText(SerializeQuery(q)) reproduces q exactly.
std::string SerializeQuery(const ParsedQuery& query);

// Binds the IR to a dataset: validates the domains against the array and
// materializes the constraint function factories. The only stage that
// needs the data. `estimate_cost_ns`, when non-zero, is the artificial
// per-estimate busy-wait every bound function charges on bounds-cache
// misses (WindowFunctionContext::estimate_cost_ns) — timing-only, never
// changes a computed value, used by benchmarks and saturation tests.
Result<searchlight::QuerySpec> BuildQuery(const ParsedQuery& query,
                                          const DatasetBundle& bundle,
                                          int64_t estimate_cost_ns = 0);

// ParseQueryText + BuildQuery in one step.
Result<searchlight::QuerySpec> ParseQuery(const std::string& text,
                                          const DatasetBundle& bundle);

// Convenience: reads `path` and parses its contents.
Result<searchlight::QuerySpec> ParseQueryFile(const std::string& path,
                                              const DatasetBundle& bundle);

}  // namespace dqr::data

#endif  // DQR_DATA_QUERY_PARSER_H_
