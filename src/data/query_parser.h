#ifndef DQR_DATA_QUERY_PARSER_H_
#define DQR_DATA_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "data/queries.h"
#include "searchlight/query.h"

namespace dqr::data {

// Parses a small line-oriented query language into a QuerySpec bound to a
// 1-D dataset bundle, so tools can run ad-hoc searches without
// recompiling. Grammar (one statement per line; '#' starts a comment;
// 'inf'/'-inf' are accepted as bounds):
//
//   k <cardinality>
//   var <name> <lo> <hi>
//   avg <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   max <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   min <start_var> <len_var> in <a> <b> [range <lo> <hi>] [opts...]
//   contrast_left  <start_var> <len_var> <width> in <a> <b> [range ...]
//   contrast_right <start_var> <len_var> <width> in <a> <b> [range ...]
//
// Constraint options: `weight <w>` (relax weight), `rankweight <w>`,
// `norelax` (exclude from C^r), `noconstrain` (exclude from C^c),
// `minimize` (ranking preference; default maximize).
//
// Example:
//   # the paper's running MIMIC query
//   k 10
//   var x 8 1000000
//   var lx 8 16
//   avg x lx in 150 200 range 50 250
//   contrast_left x lx 8 in 80 inf range 0 200
//   contrast_right x lx 8 in 80 inf range 0 200
//
// Exactly two variables must be declared (window start and length, in
// that order). Returns InvalidArgument with a line number on syntax or
// semantic errors.
Result<searchlight::QuerySpec> ParseQuery(const std::string& text,
                                          const DatasetBundle& bundle);

// Convenience: reads `path` and parses its contents.
Result<searchlight::QuerySpec> ParseQueryFile(const std::string& path,
                                              const DatasetBundle& bundle);

}  // namespace dqr::data

#endif  // DQR_DATA_QUERY_PARSER_H_
