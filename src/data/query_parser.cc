#include "data/query_parser.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "searchlight/functions.h"

namespace dqr::data {
namespace {

using searchlight::AvgFunction;
using searchlight::MaxFunction;
using searchlight::MinFunction;
using searchlight::NeighborhoodContrastFunction;
using searchlight::WindowFunctionContext;

// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line.substr(0, line.find('#')));
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status ParseError(int line_no, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                              message);
}

bool ParseNumber(const std::string& token, double* out) {
  if (token == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

bool ParseInt(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !token.empty();
}

// Round-trip-exact double for the serializer; strtod reads back the same
// bit pattern.
std::string NumberToken(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Parses trailing options: range/weight/rankweight/norelax/noconstrain/
// minimize. `i` indexes the first option token.
Status ParseConstraintOptions(const std::vector<std::string>& t, size_t i,
                              int line_no, ParsedConstraint* c) {
  while (i < t.size()) {
    if (t[i] == "range") {
      double lo = 0.0;
      double hi = 0.0;
      if (i + 2 >= t.size() || !ParseNumber(t[i + 1], &lo) ||
          !ParseNumber(t[i + 2], &hi) || lo > hi) {
        return ParseError(line_no, "range needs two ordered numbers");
      }
      c->range = Interval(lo, hi);
      i += 3;
    } else if (t[i] == "weight") {
      if (i + 1 >= t.size() || !ParseNumber(t[i + 1], &c->weight) ||
          c->weight < 0.0 || c->weight > 1.0) {
        return ParseError(line_no, "weight needs a number in [0, 1]");
      }
      i += 2;
    } else if (t[i] == "rankweight") {
      if (i + 1 >= t.size() || !ParseNumber(t[i + 1], &c->rank_weight)) {
        return ParseError(line_no, "rankweight needs a number");
      }
      i += 2;
    } else if (t[i] == "norelax") {
      c->relaxable = false;
      ++i;
    } else if (t[i] == "noconstrain") {
      c->constrainable = false;
      ++i;
    } else if (t[i] == "minimize") {
      c->maximize = false;
      ++i;
    } else {
      return ParseError(line_no, "unknown option '" + t[i] + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ParsedQuery> ParseQueryText(const std::string& text) {
  ParsedQuery query;
  std::map<std::string, int> var_index;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = Tokenize(line);
    if (t.empty()) continue;

    if (t[0] == "k") {
      int64_t k = 0;
      if (t.size() != 2 || !ParseInt(t[1], &k) || k < 0) {
        return ParseError(line_no, "k needs a non-negative integer");
      }
      query.k = k;
    } else if (t[0] == "var") {
      int64_t lo = 0;
      int64_t hi = 0;
      if (t.size() != 4 || !ParseInt(t[2], &lo) || !ParseInt(t[3], &hi) ||
          lo > hi) {
        return ParseError(line_no, "var needs: var <name> <lo> <hi>");
      }
      if (var_index.count(t[1]) != 0) {
        return ParseError(line_no, "duplicate variable '" + t[1] + "'");
      }
      var_index[t[1]] = static_cast<int>(query.domains.size());
      query.var_names.push_back(t[1]);
      query.domains.emplace_back(lo, hi);
    } else if (t[0] == "avg" || t[0] == "max" || t[0] == "min" ||
               t[0] == "contrast_left" || t[0] == "contrast_right") {
      ParsedConstraint c;
      c.fn = t[0];
      const bool contrast = t[0].rfind("contrast", 0) == 0;
      // Fixed part: <start> <len> [width] in <a> <b>
      const size_t in_pos = contrast ? 4 : 3;
      if (t.size() < in_pos + 3 || t[in_pos] != "in") {
        return ParseError(line_no,
                          "expected: " + t[0] + " <start> <len>" +
                              (contrast ? " <width>" : "") +
                              " in <a> <b> [options]");
      }
      const auto start_it = var_index.find(t[1]);
      const auto len_it = var_index.find(t[2]);
      if (start_it == var_index.end() || len_it == var_index.end()) {
        return ParseError(line_no, "unknown variable in constraint");
      }
      if (start_it->second != 0 || len_it->second != 1) {
        return ParseError(line_no,
                          "constraints must use the first declared "
                          "variable as start and the second as length");
      }
      if (contrast && (!ParseInt(t[3], &c.width) || c.width < 1)) {
        return ParseError(line_no, "contrast width must be >= 1");
      }
      double a = 0.0;
      double b = 0.0;
      if (!ParseNumber(t[in_pos + 1], &a) ||
          !ParseNumber(t[in_pos + 2], &b) || a > b) {
        return ParseError(line_no, "bounds need two ordered numbers");
      }
      c.bounds = Interval(a, b);
      if (Status s = ParseConstraintOptions(t, in_pos + 3, line_no, &c);
          !s.ok()) {
        return s;
      }
      query.constraints.push_back(std::move(c));
    } else {
      return ParseError(line_no, "unknown statement '" + t[0] + "'");
    }
  }

  if (query.domains.size() != 2) {
    return InvalidArgumentError(
        "exactly two variables (window start, length) must be declared");
  }
  if (query.domains[0].lo < 0) {
    return InvalidArgumentError("start variable must be >= 0");
  }
  if (query.domains[1].lo < 1) {
    return InvalidArgumentError("length variable must be >= 1");
  }
  if (query.constraints.empty()) {
    return InvalidArgumentError("query declares no constraints");
  }
  return query;
}

std::string SerializeQuery(const ParsedQuery& query) {
  std::string out = "k " + std::to_string(query.k) + "\n";
  for (size_t i = 0; i < query.domains.size(); ++i) {
    out += "var " + query.var_names[i] + " " +
           std::to_string(query.domains[i].lo) + " " +
           std::to_string(query.domains[i].hi) + "\n";
  }
  for (const ParsedConstraint& c : query.constraints) {
    out += c.fn + " " + query.var_names[0] + " " + query.var_names[1];
    if (c.fn.rfind("contrast", 0) == 0) {
      out += " " + std::to_string(c.width);
    }
    out += " in " + NumberToken(c.bounds.lo) + " " +
           NumberToken(c.bounds.hi);
    if (!c.range.empty()) {
      out += " range " + NumberToken(c.range.lo) + " " +
             NumberToken(c.range.hi);
    }
    if (c.weight != 1.0) out += " weight " + NumberToken(c.weight);
    if (c.rank_weight != -1.0) {
      out += " rankweight " + NumberToken(c.rank_weight);
    }
    if (!c.relaxable) out += " norelax";
    if (!c.constrainable) out += " noconstrain";
    if (!c.maximize) out += " minimize";
    out += "\n";
  }
  return out;
}

Result<searchlight::QuerySpec> BuildQuery(const ParsedQuery& parsed,
                                          const DatasetBundle& bundle,
                                          int64_t estimate_cost_ns) {
  if (bundle.array == nullptr || bundle.synopsis == nullptr) {
    return InvalidArgumentError("dataset bundle is incomplete");
  }
  if (parsed.domains.size() != 2 ||
      parsed.var_names.size() != parsed.domains.size()) {
    return InvalidArgumentError(
        "parsed query must declare exactly two variables");
  }
  if (parsed.domains[0].lo < 0 ||
      parsed.domains[0].hi >= bundle.array->length()) {
    return InvalidArgumentError("start variable exceeds the array");
  }
  if (parsed.domains[1].lo < 1) {
    return InvalidArgumentError("length variable must be >= 1");
  }
  if (parsed.constraints.empty()) {
    return InvalidArgumentError("query declares no constraints");
  }

  searchlight::QuerySpec query;
  query.name = "parsed_query";
  query.k = parsed.k;
  query.domains = parsed.domains;

  WindowFunctionContext base_ctx;
  base_ctx.array = bundle.array;
  base_ctx.synopsis = bundle.synopsis;
  base_ctx.x_var = 0;
  base_ctx.len_var = 1;
  base_ctx.estimate_cost_ns = estimate_cost_ns;

  for (const ParsedConstraint& c : parsed.constraints) {
    searchlight::QueryConstraint qc;
    WindowFunctionContext ctx = base_ctx;
    ctx.value_range = c.range;
    if (c.fn == "avg") {
      qc.make_function = [ctx] {
        return std::make_unique<AvgFunction>(ctx);
      };
    } else if (c.fn == "max") {
      qc.make_function = [ctx] {
        return std::make_unique<MaxFunction>(ctx);
      };
    } else if (c.fn == "min") {
      qc.make_function = [ctx] {
        return std::make_unique<MinFunction>(ctx);
      };
    } else if (c.fn == "contrast_left" || c.fn == "contrast_right") {
      const auto side = c.fn == "contrast_left"
                            ? NeighborhoodContrastFunction::Side::kLeft
                            : NeighborhoodContrastFunction::Side::kRight;
      const int64_t width = c.width;
      qc.make_function = [ctx, side, width] {
        return std::make_unique<NeighborhoodContrastFunction>(ctx, side,
                                                              width);
      };
    } else {
      return InvalidArgumentError("unknown constraint function '" + c.fn +
                                  "'");
    }
    qc.bounds = c.bounds;
    qc.relax_weight = c.weight;
    qc.rank_weight = c.rank_weight;
    qc.relaxable = c.relaxable;
    qc.constrainable = c.constrainable;
    qc.preference = c.maximize ? searchlight::RankPreference::kMaximize
                               : searchlight::RankPreference::kMinimize;
    qc.name = c.fn;
    query.constraints.push_back(std::move(qc));
  }
  return query;
}

Result<searchlight::QuerySpec> ParseQuery(const std::string& text,
                                          const DatasetBundle& bundle) {
  Result<ParsedQuery> parsed = ParseQueryText(text);
  if (!parsed.ok()) return parsed.status();
  return BuildQuery(parsed.value(), bundle);
}

Result<searchlight::QuerySpec> ParseQueryFile(const std::string& path,
                                              const DatasetBundle& bundle) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFoundError("cannot open: " + path);
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseQuery(text, bundle);
}

}  // namespace dqr::data
