#include "data/queries.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "data/synthetic.h"
#include "data/waveform.h"
#include "searchlight/functions.h"

namespace dqr::data {
namespace {

using searchlight::AvgFunction;
using searchlight::NeighborhoodContrastFunction;
using searchlight::WindowFunctionContext;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-kind constraint parameters: original bounds plus the hard value
// ranges that normalize relaxation distances and cap how far the query
// may ever be relaxed. SELective kinds declare tight ranges; LOoSe kinds
// default to the full signal range.
struct QueryParams {
  Interval avg_bounds;
  Interval avg_range;
  double contrast_min = 0.0;
  Interval contrast_range;
};

QueryParams ParamsFor(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSSel:
      return {Interval(150, 200), Interval(140, 210), 126.0,
              Interval(72, 134)};
    case QueryKind::kSLos:
      return {Interval(150, 200), Interval(50, 250), 126.0,
              Interval(0, 200)};
    case QueryKind::kMSel:
      return {Interval(150, 200), Interval(138, 212), 122.0,
              Interval(70, 130)};
    case QueryKind::kMLos:
      return {Interval(150, 200), Interval(50, 250), 122.0,
              Interval(0, 200)};
    case QueryKind::kMSelPrime:
      return {Interval(120, 165), Interval(112, 175), 112.0,
              Interval(64, 126)};
  }
  DQR_CHECK_MSG(false, "unknown query kind");
  return {};
}

// Interpolates the original bounds toward the hard range by `fraction`
// (the manual USER-x relaxation knob).
Interval RelaxBounds(const Interval& bounds, const Interval& range,
                     double fraction) {
  double lo = bounds.lo;
  double hi = bounds.hi;
  if (std::isfinite(lo)) lo -= fraction * std::max(0.0, lo - range.lo);
  if (std::isfinite(hi)) hi += fraction * std::max(0.0, range.hi - hi);
  return Interval(lo, hi);
}

Result<DatasetBundle> BundleFor(
    Result<std::shared_ptr<array::Array>> array_result) {
  if (!array_result.ok()) return array_result.status();
  std::shared_ptr<array::Array> array = std::move(array_result).value();
  auto synopsis_result =
      synopsis::Synopsis::Build(*array, synopsis::SynopsisOptions{});
  if (!synopsis_result.ok()) return synopsis_result.status();
  array->ResetAccessStats();
  DatasetBundle bundle;
  bundle.array = std::move(array);
  bundle.synopsis = std::move(synopsis_result).value();
  return bundle;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSSel:
      return "S-SEL";
    case QueryKind::kSLos:
      return "S-LOS";
    case QueryKind::kMSel:
      return "M-SEL";
    case QueryKind::kMLos:
      return "M-LOS";
    case QueryKind::kMSelPrime:
      return "M-SEL'";
  }
  return "?";
}

Result<DatasetBundle> MakeSyntheticDataset(int64_t length, uint64_t seed) {
  SyntheticOptions options;
  options.length = length;
  options.seed = seed;
  return BundleFor(GenerateSynthetic(options));
}

Result<DatasetBundle> MakeWaveformDataset(int64_t length, uint64_t seed) {
  WaveformOptions options;
  options.length = length;
  options.seed = seed;
  return BundleFor(GenerateAbpWaveform(options));
}

searchlight::QuerySpec MakeQuery(const DatasetBundle& bundle,
                                 QueryKind kind,
                                 const QueryTuning& tuning) {
  DQR_CHECK(bundle.array != nullptr && bundle.synopsis != nullptr);
  const QueryParams params = ParamsFor(kind);
  const int64_t n = bundle.array->length();
  const int64_t margin = tuning.nbhd_width;
  DQR_CHECK(n > 2 * margin + tuning.len_hi + 2);

  searchlight::QuerySpec query;
  query.name = QueryKindName(kind);
  query.k = tuning.k;
  // Variable 0: window start x; variable 1: window length lx.
  query.domains = {
      cp::IntDomain(margin, n - tuning.len_hi - margin - 1),
      cp::IntDomain(tuning.len_lo, tuning.len_hi),
  };

  WindowFunctionContext base_ctx;
  base_ctx.array = bundle.array;
  base_ctx.synopsis = bundle.synopsis;
  base_ctx.x_var = 0;
  base_ctx.len_var = 1;
  base_ctx.estimate_cost_ns = tuning.estimate_cost_ns;

  // c1: average amplitude within [a, b].
  {
    searchlight::QueryConstraint c1;
    WindowFunctionContext ctx = base_ctx;
    ctx.value_range = params.avg_range;
    c1.make_function = [ctx] { return std::make_unique<AvgFunction>(ctx); };
    c1.bounds = RelaxBounds(params.avg_bounds, params.avg_range,
                            tuning.relax_fraction);
    c1.name = "c1_avg";
    c1.preference = searchlight::RankPreference::kMaximize;
    query.constraints.push_back(std::move(c1));
  }
  // c2/c3: neighborhood contrast >= threshold, left and right.
  for (const auto side : {NeighborhoodContrastFunction::Side::kLeft,
                          NeighborhoodContrastFunction::Side::kRight}) {
    searchlight::QueryConstraint c;
    WindowFunctionContext ctx = base_ctx;
    ctx.value_range = params.contrast_range;
    const int64_t width = tuning.nbhd_width;
    c.make_function = [ctx, side, width] {
      return std::make_unique<NeighborhoodContrastFunction>(ctx, side,
                                                            width);
    };
    const Interval contrast_bounds(params.contrast_min, kInf);
    c.bounds = RelaxBounds(contrast_bounds, params.contrast_range,
                           tuning.relax_fraction);
    c.name = side == NeighborhoodContrastFunction::Side::kLeft ? "c2_left"
                                                               : "c3_right";
    c.preference = searchlight::RankPreference::kMaximize;
    query.constraints.push_back(std::move(c));
  }
  return query;
}

}  // namespace dqr::data
