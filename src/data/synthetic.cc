#include "data/synthetic.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dqr::data {

Result<std::shared_ptr<array::Array>> GenerateSynthetic(
    const SyntheticOptions& options) {
  if (options.length <= 0) {
    return InvalidArgumentError("synthetic length must be positive");
  }
  if (options.region_len <= 0 || options.spike_width <= 0) {
    return InvalidArgumentError("region and spike sizes must be positive");
  }

  Rng rng(options.seed);
  std::vector<double> values(static_cast<size_t>(options.length));

  for (int64_t region_lo = 0; region_lo < options.length;
       region_lo += options.region_len) {
    const int64_t region_hi =
        std::min(options.length, region_lo + options.region_len);
    const double base = rng.Uniform(options.base_lo, options.base_hi);
    for (int64_t i = region_lo; i < region_hi; ++i) {
      values[static_cast<size_t>(i)] =
          base + options.noise_sigma * rng.NextGaussian();
    }
    // Plant spikes: short plateaus above the local base.
    const int64_t spikes = static_cast<int64_t>(options.spikes_per_region) +
                           (rng.NextDouble() <
                                    (options.spikes_per_region -
                                     static_cast<int64_t>(
                                         options.spikes_per_region))
                                ? 1
                                : 0);
    for (int64_t s = 0; s < spikes; ++s) {
      const bool strong = rng.Bernoulli(options.strong_fraction);
      const double height =
          strong ? rng.Uniform(options.strong_height_lo,
                               options.strong_height_hi)
                 : rng.Uniform(options.spike_height_lo,
                               options.spike_height_hi);
      const int64_t pos = rng.UniformInt(
          region_lo, std::max(region_lo, region_hi - options.spike_width));
      const int64_t end =
          std::min(region_hi, pos + options.spike_width);
      for (int64_t i = pos; i < end; ++i) {
        values[static_cast<size_t>(i)] += height;
      }
    }
  }

  for (double& v : values) {
    v = std::clamp(v, options.value_lo, options.value_hi);
  }

  array::ArraySchema schema;
  schema.name = "synthetic";
  schema.attribute = "amp";
  schema.length = options.length;
  schema.chunk_size = options.chunk_size;
  return array::Array::FromData(std::move(schema), std::move(values));
}

}  // namespace dqr::data
