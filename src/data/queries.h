#ifndef DQR_DATA_QUERIES_H_
#define DQR_DATA_QUERIES_H_

#include <cstdint>
#include <memory>

#include "array/array.h"
#include "common/status.h"
#include "searchlight/query.h"
#include "synopsis/synopsis.h"

namespace dqr::data {

// The paper's characteristic queries (§5): SELective queries stay
// selective even maximally relaxed (the user declared tight min/max value
// ranges, which act as hard relaxation limits), while LOoSe queries use
// default ranges, so their maximal relaxation is vacuous and produces an
// avalanche of results.
enum class QueryKind { kSSel, kSLos, kMSel, kMLos, kMSelPrime };

const char* QueryKindName(QueryKind kind);

// An array plus its synopsis, ready to be queried.
struct DatasetBundle {
  std::shared_ptr<array::Array> array;
  std::shared_ptr<const synopsis::Synopsis> synopsis;
};

// Builds the synthetic / MIMIC-like data sets at the given size (cells)
// with their synopses. Access stats are reset after synopsis
// construction (synopsis building is an offline step).
Result<DatasetBundle> MakeSyntheticDataset(int64_t length, uint64_t seed);
Result<DatasetBundle> MakeWaveformDataset(int64_t length, uint64_t seed);

// Knobs shared by all canned queries.
struct QueryTuning {
  int64_t k = 10;
  // Interval length domain and neighborhood width, in cells (the paper's
  // 8-16 second intervals with 8-second neighborhoods).
  int64_t len_lo = 8;
  int64_t len_hi = 16;
  int64_t nbhd_width = 8;
  // Artificial cost per uncached synopsis lookup (models expensive UDF
  // estimation; see WindowFunctionContext::estimate_cost_ns).
  int64_t estimate_cost_ns = 0;
  // Manual relaxation knob for the USER-x scenarios: 0 = the original
  // (over-constrained) bounds, 1 = maximally relaxed (bounds equal to the
  // hard value ranges). The automatic framework always starts from 0.
  double relax_fraction = 0.0;
};

// Builds one of the canned queries against `bundle`. kS* kinds expect a
// synthetic bundle, kM* kinds a waveform bundle (the query only reads the
// array/synopsis, so this is a convention, not a hard requirement).
searchlight::QuerySpec MakeQuery(const DatasetBundle& bundle,
                                 QueryKind kind, const QueryTuning& tuning);

}  // namespace dqr::data

#endif  // DQR_DATA_QUERIES_H_
