#ifndef DQR_SEARCHLIGHT_QUERY_H_
#define DQR_SEARCHLIGHT_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "cp/domain.h"
#include "cp/function.h"

namespace dqr::searchlight {

// Ranking preference for a constraint function during query constraining
// (§3.2): whether larger or smaller f_c values are better.
enum class RankPreference { kMaximize, kMinimize };

// Produces a fresh, thread-owned instance of a constraint function. Called
// once per solver/validator thread; instances share only immutable inputs
// (array, synopsis).
using FunctionFactory =
    std::function<std::unique_ptr<cp::ConstraintFunction>()>;

// One search constraint a <= f_c(X) <= b plus its refinement attributes.
struct QueryConstraint {
  FunctionFactory make_function;
  // Original query bounds [a, b]; may be half-open via +-infinity.
  Interval bounds = Interval::All();

  // --- relaxation attributes (§3.1) ---
  // w_c in RD(r) = max_c w_c RD_c(r); must lie in [0, 1].
  double relax_weight = 1.0;
  // Whether the constraint belongs to C^r (may be relaxed). Constraints
  // outside C^r are hard: a sub-tree violating one is never replayed.
  bool relaxable = true;

  // --- constraining attributes (§3.2) ---
  // Whether the constraint belongs to C^c (participates in ranking).
  bool constrainable = true;
  // w_c in RK(r); negative means "use the default 1/|C^c|". Weights are
  // normalized to sum to 1 across C^c.
  double rank_weight = -1.0;
  RankPreference preference = RankPreference::kMaximize;

  // Display name; empty means "use the function's name".
  std::string name;
};

// A complete search query: decision variables (as domains), constraints,
// and the user's desired result cardinality k.
struct QuerySpec {
  std::string name;
  // Initial domains of the decision variables; index = variable id.
  cp::DomainBox domains;
  std::vector<QueryConstraint> constraints;
  // Desired result cardinality. k > 0 enables refinement (relax if fewer
  // results, constrain if more); k == 0 means "no cardinality
  // requirement": the query returns every exact result, as plain
  // Searchlight would.
  int64_t k = 10;
};

}  // namespace dqr::searchlight

#endif  // DQR_SEARCHLIGHT_QUERY_H_
