#include "searchlight/grid_functions.h"

#include "obs/histogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"

namespace dqr::searchlight {
namespace {

// Cache kinds for rectangle lookups (distinct from the 1-D kinds, which
// live in separate function instances anyway).
constexpr int kKindRectValue = 10;
constexpr int kKindRectMax = 11;

void BusyWait(int64_t ns) {
  if (ns <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < ns) {
  }
}

// Packs a rectangle into the BoundsCache's (lo, hi) key pair. Extents are
// checked to fit 31 bits at construction.
int64_t Pack(int64_t a, int64_t b) { return (a << 32) | b; }

GridFunctionContext WithContrastDefaultRange(GridFunctionContext ctx) {
  if (ctx.value_range.empty() && ctx.synopsis != nullptr) {
    ctx.value_range =
        Interval(0.0, ctx.synopsis->global_value_range().width());
  }
  return ctx;
}

}  // namespace

RectFunction::RectFunction(GridFunctionContext ctx)
    : ctx_(std::move(ctx)) {
  DQR_CHECK(ctx_.grid != nullptr && ctx_.synopsis != nullptr);
  DQR_CHECK(ctx_.grid->rows() < (int64_t{1} << 31) &&
            ctx_.grid->cols() < (int64_t{1} << 31));
  value_range_ = ctx_.value_range.empty()
                     ? ctx_.synopsis->global_value_range()
                     : ctx_.value_range;
  if (ctx_.shared_memo != nullptr) {
    cache_.AttachShared(ctx_.shared_memo, ctx_.shared_memo_key);
  }
}

std::unique_ptr<cp::FunctionState> RectFunction::SaveState(
    const cp::DomainBox& box) const {
  (void)box;
  if (cache_.size() == 0) return nullptr;
  return cache_.SaveRecent();
}

void RectFunction::RestoreState(const cp::FunctionState& state) {
  cache_.Restore(state);
}

void RectFunction::ClearState() { cache_.Clear(); }

RectFunction::RectBox RectFunction::ReadRect(
    const cp::DomainBox& box) const {
  const auto dom = [&](int var) -> const cp::IntDomain& {
    DQR_CHECK(var >= 0 && static_cast<size_t>(var) < box.size());
    return box[static_cast<size_t>(var)];
  };
  const cp::IntDomain& y = dom(ctx_.y_var);
  const cp::IntDomain& x = dom(ctx_.x_var);
  const cp::IntDomain& h = dom(ctx_.h_var);
  const cp::IntDomain& w = dom(ctx_.w_var);
  DQR_CHECK(y.lo >= 0 && y.hi < grid_rows());
  DQR_CHECK(x.lo >= 0 && x.hi < grid_cols());
  DQR_CHECK(h.lo >= 1 && w.lo >= 1);

  RectBox r;
  r.y_lo = y.lo;
  r.y_hi = y.hi;
  r.x_lo = x.lo;
  r.x_hi = x.hi;
  r.h_lo = h.lo;
  r.h_hi = h.hi;
  r.w_lo = w.lo;
  r.w_hi = w.hi;
  r.span_r1 = std::min(grid_rows(), y.hi + h.hi);
  r.span_c1 = std::min(grid_cols(), x.hi + w.hi);
  r.bound = y.IsBound() && x.IsBound() && h.IsBound() && w.IsBound();
  return r;
}

int RectFunction::EstimateLevel(const std::vector<int64_t>& point) const {
  const auto read = [&point](int var, int64_t* out) {
    if (var < 0 || static_cast<size_t>(var) >= point.size()) return false;
    *out = point[static_cast<size_t>(var)];
    return true;
  };
  int64_t y = 0, x = 0, h = 0, w = 0;
  if (!read(ctx_.y_var, &y) || !read(ctx_.x_var, &x) ||
      !read(ctx_.h_var, &h) || !read(ctx_.w_var, &w)) {
    return -1;
  }
  const int64_t r1 = std::min(grid_rows(), y + h);
  const int64_t c1 = std::min(grid_cols(), x + w);
  if (y < 0 || x < 0 || r1 <= y || c1 <= x) return -1;
  return static_cast<int>(ctx_.synopsis->PickLevelIndex(y, r1, x, c1));
}

void RectFunction::ChargeMiss() const { BusyWait(ctx_.estimate_cost_ns); }

Interval RectFunction::CachedValueBounds(int64_t r0, int64_t r1,
                                         int64_t c0, int64_t c1) {
  const int64_t klo = Pack(r0, r1);
  const int64_t khi = Pack(c0, c1);
  if (const Interval* hit = cache_.Find(kKindRectValue, klo, khi)) {
    return *hit;
  }
  const obs::ScopedSinkTimer bound_timer;
  ChargeMiss();
  const Interval result = ctx_.synopsis->ValueBounds(r0, r1, c0, c1);
  cache_.Insert(kKindRectValue, klo, khi, result);
  return result;
}

Interval RectFunction::CachedMaxBounds(int64_t r0, int64_t r1, int64_t c0,
                                       int64_t c1) {
  const int64_t klo = Pack(r0, r1);
  const int64_t khi = Pack(c0, c1);
  if (const Interval* hit = cache_.Find(kKindRectMax, klo, khi)) {
    return *hit;
  }
  const obs::ScopedSinkTimer bound_timer;
  ChargeMiss();
  const Interval result = ctx_.synopsis->MaxBounds(r0, r1, c0, c1);
  cache_.Insert(kKindRectMax, klo, khi, result);
  return result;
}

Interval RectFunction::MaxOverRects(int64_t y_lo, int64_t y_hi,
                                    int64_t x_lo, int64_t x_hi,
                                    int64_t h_lo, int64_t h_hi,
                                    int64_t w_lo, int64_t w_hi) {
  const int64_t rows = grid_rows();
  const int64_t cols = grid_cols();
  DQR_CHECK(0 <= y_lo && y_lo <= y_hi && y_hi < rows);
  DQR_CHECK(0 <= x_lo && x_lo <= x_hi && x_hi < cols);
  DQR_CHECK(1 <= h_lo && h_lo <= h_hi && 1 <= w_lo && w_lo <= w_hi);

  if (y_lo == y_hi && x_lo == x_hi) {
    // Fixed origin: max over a clipped rectangle is monotone in both
    // extents, so the smallest and largest rectangles bound all others.
    const Interval small = CachedMaxBounds(
        y_lo, std::min(rows, y_lo + h_lo), x_lo,
        std::min(cols, x_lo + w_lo));
    const Interval large =
        (h_lo == h_hi && w_lo == w_hi)
            ? small
            : CachedMaxBounds(y_lo, std::min(rows, y_lo + h_hi), x_lo,
                              std::min(cols, x_lo + w_hi));
    return Interval(small.lo, large.hi);
  }

  const int64_t span_r1 = std::min(rows, y_hi + h_hi);
  const int64_t span_c1 = std::min(cols, x_hi + w_hi);
  const Interval span_values =
      CachedValueBounds(y_lo, span_r1, x_lo, span_c1);
  // The common core is contained in every rectangle of the box.
  const int64_t core_r0 = y_hi;
  const int64_t core_r1 = std::min(rows, y_lo + h_lo);
  const int64_t core_c0 = x_hi;
  const int64_t core_c1 = std::min(cols, x_lo + w_lo);
  double lower = span_values.lo;
  if (core_r0 < core_r1 && core_c0 < core_c1) {
    lower = std::max(
        lower, CachedMaxBounds(core_r0, core_r1, core_c0, core_c1).lo);
  }
  return Interval(lower, span_values.hi);
}

// ---------------------------------------------------------------------
// RectAvgFunction

Interval RectAvgFunction::Estimate(const cp::DomainBox& box) {
  const RectBox r = ReadRect(box);
  if (r.bound) {
    const int64_t r1 = std::min(grid_rows(), r.y_lo + r.h_lo);
    const int64_t c1 = std::min(grid_cols(), r.x_lo + r.w_lo);
    DQR_CHECK(r1 > r.y_lo && c1 > r.x_lo);
    const obs::ScopedSinkTimer bound_timer;
    ChargeMiss();
    return synopsis().AvgBounds(r.y_lo, r1, r.x_lo, c1);
  }
  return CachedValueBounds(r.y_lo, r.span_r1, r.x_lo, r.span_c1);
}

double RectAvgFunction::Evaluate(const std::vector<int64_t>& point) {
  const int64_t y = point[static_cast<size_t>(ctx().y_var)];
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t h = point[static_cast<size_t>(ctx().h_var)];
  const int64_t w = point[static_cast<size_t>(ctx().w_var)];
  const int64_t r1 = std::min(grid_rows(), y + h);
  const int64_t c1 = std::min(grid_cols(), x + w);
  DQR_CHECK(r1 > y && c1 > x);
  return grid().AggregateRect(y, r1, x, c1).avg();
}

// ---------------------------------------------------------------------
// RectMaxFunction

Interval RectMaxFunction::Estimate(const cp::DomainBox& box) {
  const RectBox r = ReadRect(box);
  return MaxOverRects(r.y_lo, r.y_hi, r.x_lo, r.x_hi, r.h_lo, r.h_hi,
                      r.w_lo, r.w_hi);
}

double RectMaxFunction::Evaluate(const std::vector<int64_t>& point) {
  const int64_t y = point[static_cast<size_t>(ctx().y_var)];
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t h = point[static_cast<size_t>(ctx().h_var)];
  const int64_t w = point[static_cast<size_t>(ctx().w_var)];
  const int64_t r1 = std::min(grid_rows(), y + h);
  const int64_t c1 = std::min(grid_cols(), x + w);
  DQR_CHECK(r1 > y && c1 > x);
  return grid().MaxOver(y, r1, x, c1);
}

void RectMaxFunction::EvaluateBatch(
    const std::vector<const std::vector<int64_t>*>& points, double* out) {
  const size_t n = points.size();
  std::vector<int64_t> r0(n), r1(n), c0(n), c1(n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int64_t>& point = *points[i];
    const int64_t y = point[static_cast<size_t>(ctx().y_var)];
    const int64_t x = point[static_cast<size_t>(ctx().x_var)];
    const int64_t h = point[static_cast<size_t>(ctx().h_var)];
    const int64_t w = point[static_cast<size_t>(ctx().w_var)];
    r0[i] = y;
    r1[i] = std::min(grid_rows(), y + h);
    c0[i] = x;
    c1[i] = std::min(grid_cols(), x + w);
    DQR_CHECK(r1[i] > y && c1[i] > x);
  }
  grid().MaxOverRectsBatch(r0.data(), r1.data(), c0.data(), c1.data(),
                           static_cast<int64_t>(n), out);
}

// ---------------------------------------------------------------------
// RectContrastFunction

RectContrastFunction::RectContrastFunction(GridFunctionContext ctx,
                                           Side side, int64_t width)
    : RectFunction(WithContrastDefaultRange(std::move(ctx))),
      side_(side),
      width_(width) {
  DQR_CHECK(width_ >= 1);
}

std::pair<int64_t, int64_t> RectContrastFunction::NeighborhoodCols(
    int64_t x, int64_t w) const {
  if (side_ == Side::kLeft) {
    return {std::max<int64_t>(0, x - width_), x};
  }
  const int64_t end = std::min(grid_cols(), x + w);
  return {end, std::min(grid_cols(), end + width_)};
}

Interval RectContrastFunction::Estimate(const cp::DomainBox& box) {
  const RectBox r = ReadRect(box);
  const Interval main = MaxOverRects(r.y_lo, r.y_hi, r.x_lo, r.x_hi,
                                     r.h_lo, r.h_hi, r.w_lo, r.w_hi);

  // Bounds on max(neighborhood band) over all assignments, handling
  // column truncation at the grid edges soundly (see the 1-D analogue in
  // NeighborhoodContrastFunction::Estimate).
  const int64_t rows = grid_rows();
  const int64_t cols = grid_cols();
  const int64_t row_span_r1 = std::min(rows, r.y_hi + r.h_hi);
  Interval nbhd = Interval::Empty();
  bool can_be_empty = false;
  if (side_ == Side::kLeft) {
    if (r.x_hi == 0) {
      can_be_empty = true;
    } else if (r.x_lo >= width_) {
      nbhd = MaxOverRects(r.y_lo, r.y_hi, r.x_lo - width_,
                          r.x_hi - width_, r.h_lo, r.h_hi, width_, width_);
    } else {
      nbhd = CachedValueBounds(r.y_lo, row_span_r1, 0, r.x_hi);
      can_be_empty = r.x_lo == 0;
    }
  } else {
    const int64_t e_lo = std::min(cols, r.x_lo + r.w_lo);
    const int64_t e_hi = std::min(cols, r.x_hi + r.w_hi);
    if (e_lo >= cols) {
      can_be_empty = true;
    } else if (e_hi + width_ <= cols) {
      nbhd = MaxOverRects(r.y_lo, r.y_hi, e_lo, e_hi, r.h_lo, r.h_hi,
                          width_, width_);
    } else {
      nbhd = CachedValueBounds(r.y_lo, row_span_r1, e_lo, cols);
      can_be_empty = e_hi >= cols;
    }
  }

  Interval estimate = nbhd.empty() ? Interval::Empty() : Abs(main - nbhd);
  if (can_be_empty) {
    estimate = estimate.Union(Interval::Point(0.0));
  }
  DQR_CHECK(!estimate.empty());
  return estimate;
}

double RectContrastFunction::Evaluate(const std::vector<int64_t>& point) {
  const int64_t y = point[static_cast<size_t>(ctx().y_var)];
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t h = point[static_cast<size_t>(ctx().h_var)];
  const int64_t w = point[static_cast<size_t>(ctx().w_var)];
  const int64_t r1 = std::min(grid_rows(), y + h);
  const int64_t c1 = std::min(grid_cols(), x + w);
  DQR_CHECK(r1 > y && c1 > x);
  const double main = grid().MaxOver(y, r1, x, c1);
  const auto [nb_c0, nb_c1] = NeighborhoodCols(x, w);
  if (nb_c0 >= nb_c1) return 0.0;
  const double nbhd = grid().MaxOver(y, r1, nb_c0, nb_c1);
  return std::abs(main - nbhd);
}

void RectContrastFunction::EvaluateBatch(
    const std::vector<const std::vector<int64_t>*>& points, double* out) {
  const size_t n = points.size();
  std::vector<int64_t> mr0(n), mr1(n), mc0(n), mc1(n);
  std::vector<int64_t> nr0, nr1, nc0, nc1;
  std::vector<size_t> nb_owner;  // point index of each neighborhood band
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int64_t>& point = *points[i];
    const int64_t y = point[static_cast<size_t>(ctx().y_var)];
    const int64_t x = point[static_cast<size_t>(ctx().x_var)];
    const int64_t h = point[static_cast<size_t>(ctx().h_var)];
    const int64_t w = point[static_cast<size_t>(ctx().w_var)];
    mr0[i] = y;
    mr1[i] = std::min(grid_rows(), y + h);
    mc0[i] = x;
    mc1[i] = std::min(grid_cols(), x + w);
    DQR_CHECK(mr1[i] > y && mc1[i] > x);
    const auto [nb_c0, nb_c1] = NeighborhoodCols(x, w);
    if (nb_c0 < nb_c1) {
      nr0.push_back(y);
      nr1.push_back(mr1[i]);
      nc0.push_back(nb_c0);
      nc1.push_back(nb_c1);
      nb_owner.push_back(i);
    }
  }
  // The scalar path reads the main rectangle even when the band is empty
  // (and then returns 0), so the batch must charge it for every point.
  std::vector<double> main_max(n);
  grid().MaxOverRectsBatch(mr0.data(), mr1.data(), mc0.data(), mc1.data(),
                           static_cast<int64_t>(n), main_max.data());
  std::fill(out, out + n, 0.0);
  if (nb_owner.empty()) return;
  std::vector<double> nb_max(nb_owner.size());
  grid().MaxOverRectsBatch(nr0.data(), nr1.data(), nc0.data(), nc1.data(),
                           static_cast<int64_t>(nb_owner.size()),
                           nb_max.data());
  for (size_t k = 0; k < nb_owner.size(); ++k) {
    out[nb_owner[k]] = std::abs(main_max[nb_owner[k]] - nb_max[k]);
  }
}

}  // namespace dqr::searchlight
