#ifndef DQR_SEARCHLIGHT_FUNCTIONS_H_
#define DQR_SEARCHLIGHT_FUNCTIONS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "array/array.h"
#include "common/interval.h"
#include "cp/function.h"
#include "synopsis/synopsis.h"

namespace dqr::cache {
class SharedBoundsMemo;
}  // namespace dqr::cache

namespace dqr::searchlight {

// Memoized window-bound lookups shared by the aggregate functions below.
// Keys are (lo, hi) windows; values are synopsis intervals together with
// the "support" information that makes re-derivation unnecessary. This is
// the state captured by the UDF-state-saving optimization (§4.2): fails
// snapshot the cache, replays restore it and skip recomputation.
//
// Eviction is second-chance FIFO: when the cache is full, the oldest
// entry is evicted — unless it sits in the recency ring, in which case it
// is given a second chance (rotated to the back) so the working set that
// SaveRecent snapshots survives. The cache never drops everything at
// once, and Restore always lands every snapshot entry, evicting cold
// entries to make room if necessary.
class BoundsCache {
 public:
  // Saved snapshot of a cache (a cp::FunctionState).
  class Snapshot;

  explicit BoundsCache(size_t capacity = 4096) : capacity_(capacity) {}

  // Attaches the process-wide cross-query memo as an L2 behind this
  // cache: local misses probe it under `space` before recomputing, and
  // fresh local inserts publish to it. Restore never publishes (snapshot
  // entries were published when first derived). The L2 is thread-safe;
  // this cache remains single-owner.
  void AttachShared(cache::SharedBoundsMemo* shared, uint64_t space) {
    shared_ = shared;
    shared_space_ = space;
  }

  // Returns the cached interval for (kind, lo, hi) or nullptr. Touched
  // keys (hits and inserts) are remembered in a small recency ring. An
  // attached-L2 hit counts as a hit (no recomputation, no miss cost) and
  // is adopted locally without republishing.
  const Interval* Find(int kind, int64_t lo, int64_t hi);
  void Insert(int kind, int64_t lo, int64_t hi, const Interval& value);

  // Snapshot of the recently touched entries — the window bounds (with
  // their support information) that the most recent Estimate calls used.
  // O(recency ring) in time and size: this is what a fail record saves.
  std::unique_ptr<cp::FunctionState> SaveRecent() const;
  // Inserts every snapshot entry, evicting cold (non-recent) entries when
  // the cache is full — restored UDF state always lands.
  void Restore(const cp::FunctionState& state);

  size_t size() const { return map_.size(); }
  void Clear();

  // Cumulative counters since construction (Clear does not reset them):
  // `evictions` counts Insert-path evictions, `restore_evictions` the
  // cold entries displaced to make room during Restore.
  cp::FunctionMemoStats stats() const { return stats_; }

 private:
  struct Key {
    int kind;
    int64_t lo;
    int64_t hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.kind) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.lo) + 0x9e3779b97f4a7c15ULL + (h << 6);
      h ^= static_cast<uint64_t>(k.hi) + 0x9e3779b97f4a7c15ULL + (h << 6);
      return static_cast<size_t>(h);
    }
  };

  void Touch(const Key& key);
  bool IsRecent(const Key& key) const;
  // Evicts exactly one entry (second-chance FIFO). Precondition: the map
  // is non-empty.
  void EvictOne();

  size_t capacity_;
  cache::SharedBoundsMemo* shared_ = nullptr;
  uint64_t shared_space_ = 0;
  std::unordered_map<Key, Interval, KeyHash> map_;
  // Insertion-order queue over the map's keys (each key appears exactly
  // once); front = eviction candidate, second-chance rotations move
  // recently used keys to the back.
  std::deque<Key> fifo_;
  // Ring of recently touched keys; bounds the cost and size of per-fail
  // state snapshots and marks the entries eviction must protect.
  static constexpr size_t kRecentCapacity = 6;
  std::vector<Key> recent_;
  size_t recent_next_ = 0;
  cp::FunctionMemoStats stats_;
};

// Shared construction context of a window aggregate function.
struct WindowFunctionContext {
  std::shared_ptr<const array::Array> array;
  std::shared_ptr<const synopsis::Synopsis> synopsis;
  // Indices of the decision variables: window start x and length lx.
  int x_var = 0;
  int len_var = 1;
  // Static range of the function value (normalization + hard relaxation
  // limit). Empty => derive from the synopsis global value range.
  Interval value_range = Interval::Empty();
  // Artificial per-synopsis-lookup cost in ns on cache misses; models
  // expensive UDF estimation so that the optimizations of §4.2 reproduce
  // their measured effects at laptop scale. 0 by default.
  int64_t estimate_cost_ns = 0;
  // How the miss cost is charged. false (default) spins, modeling
  // CPU-bound estimation. true sleeps, modeling latency-bound misses
  // (cold chunk fetches from disk/network-backed arrays, the dominant
  // cost in the paper's SciDB deployment) — sleeping threads overlap, so
  // scheduling quality shows up in wall clock even on few cores.
  bool cost_is_latency = false;
  // Optional cross-query shared bounds memo (L2 behind the per-function
  // BoundsCache); see cache/bounds_memo.h. The key must identify the
  // (dataset, synopsis configuration, epoch) these bounds are valid for.
  // Null disables sharing. Clones inherit the attachment.
  cache::SharedBoundsMemo* shared_memo = nullptr;
  uint64_t shared_memo_key = 0;
};

// Base class implementing the window geometry shared by the concrete
// aggregates: the window is [x, x + lx) for decision variables x, lx.
class WindowFunction : public cp::ConstraintFunction {
 public:
  explicit WindowFunction(WindowFunctionContext ctx);

  Interval value_range() const override { return value_range_; }

  // Synopsis level the estimator consults for the candidate's own window
  // — the profiler's per-level accuracy attribution.
  int EstimateLevel(const std::vector<int64_t>& point) const override;

  std::unique_ptr<cp::FunctionState> SaveState(
      const cp::DomainBox& box) const override;
  void RestoreState(const cp::FunctionState& state) override;
  void ClearState() override;

  // Number of exact (Validator-side) evaluations performed.
  int64_t evaluate_calls() const { return evaluate_calls_; }

  cp::FunctionMemoStats memo_stats() const override {
    return cache_.stats();
  }

 protected:
  // Window start/length domains from the box, with the window end clamped
  // to the array length.
  struct WindowBox {
    int64_t x_lo, x_hi;    // start domain
    int64_t l_lo, l_hi;    // length domain
    int64_t span_lo, span_hi;  // union of all windows, clamped
    bool bound;            // both variables bound
  };
  WindowBox ReadWindow(const cp::DomainBox& box) const;

  // Sound bounds on max over every window [s, s+l), s in [s_lo, s_hi],
  // l in [l_lo, l_hi]; memoized, clamped to the array.
  Interval MaxOverWindows(int64_t s_lo, int64_t s_hi, int64_t l_lo,
                          int64_t l_hi);

  // Memoized synopsis primitives (kind-tagged cache entries).
  Interval CachedValueBounds(int64_t lo, int64_t hi);
  Interval CachedMaxBounds(int64_t lo, int64_t hi);
  Interval CachedMinBounds(int64_t lo, int64_t hi);

  // Charges the artificial estimation cost of one uncached lookup.
  void ChargeMiss() const;

  int64_t array_length() const { return ctx_.array->length(); }
  const array::Array& array() const { return *ctx_.array; }
  const synopsis::Synopsis& synopsis() const { return *ctx_.synopsis; }
  const WindowFunctionContext& ctx() const { return ctx_; }

  void CountEvaluate() { ++evaluate_calls_; }

 private:
  WindowFunctionContext ctx_;
  Interval value_range_;
  BoundsCache cache_;
  int64_t evaluate_calls_ = 0;
};

// avg(x, x + lx) — the paper's c1-style amplitude constraint.
class AvgFunction : public WindowFunction {
 public:
  explicit AvgFunction(WindowFunctionContext ctx)
      : WindowFunction(std::move(ctx)) {}

  std::string name() const override { return "avg"; }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<AvgFunction>(ctx());
  }
};

// max(x, x + lx).
class MaxFunction : public WindowFunction {
 public:
  explicit MaxFunction(WindowFunctionContext ctx)
      : WindowFunction(std::move(ctx)) {}

  std::string name() const override { return "max"; }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  // Batched windows share one SIMD pass over the base array.
  void EvaluateBatch(const std::vector<const std::vector<int64_t>*>& points,
                     double* out) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<MaxFunction>(ctx());
  }
};

// min(x, x + lx).
class MinFunction : public WindowFunction {
 public:
  explicit MinFunction(WindowFunctionContext ctx)
      : WindowFunction(std::move(ctx)) {}

  std::string name() const override { return "min"; }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  // Batched windows share one SIMD pass over the base array.
  void EvaluateBatch(const std::vector<const std::vector<int64_t>*>& points,
                     double* out) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<MinFunction>(ctx());
  }
};

// |max(x, x + lx) - max(neighborhood)| — the paper's c2/c3 neighborhood
// contrast. The neighborhood is the `width`-cell window immediately left
// of the interval (kLeft) or right of it (kRight), clamped to the array.
class NeighborhoodContrastFunction : public WindowFunction {
 public:
  enum class Side { kLeft, kRight };

  NeighborhoodContrastFunction(WindowFunctionContext ctx, Side side,
                               int64_t width);

  std::string name() const override {
    return side_ == Side::kLeft ? "contrast_left" : "contrast_right";
  }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  // Main windows and non-empty neighborhoods are gathered into one SIMD
  // batch each; empty neighborhoods keep their scalar value of 0.
  void EvaluateBatch(const std::vector<const std::vector<int64_t>*>& points,
                     double* out) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<NeighborhoodContrastFunction>(ctx(), side_,
                                                          width_);
  }

 private:
  // Neighborhood window for a bound (x, l); empty (lo == hi) possible at
  // array edges, where the contrast degenerates to max(main) - max(main).
  std::pair<int64_t, int64_t> NeighborhoodFor(int64_t x, int64_t l) const;

  Side side_;
  int64_t width_;
};

}  // namespace dqr::searchlight

#endif  // DQR_SEARCHLIGHT_FUNCTIONS_H_
