#include "searchlight/functions.h"

#include "obs/histogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "cache/bounds_memo.h"
#include "common/check.h"

namespace dqr::searchlight {
namespace {

// Cache entry kinds; part of the memo key.
constexpr int kKindValue = 0;
constexpr int kKindMax = 1;
constexpr int kKindMin = 2;

void BusyWait(int64_t ns) {
  if (ns <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < ns) {
  }
}

// Charges one cache miss: spin for CPU-bound estimation, sleep for
// latency-bound (I/O) estimation. Sleeping yields the core, so concurrent
// misses on different threads overlap — see WindowFunctionContext.
void ChargeCost(int64_t ns, bool latency) {
  if (ns <= 0) return;
  if (latency) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  BusyWait(ns);
}

// Picks the default value range for a contrast function: differences of
// values within the global range span [0, range width].
WindowFunctionContext WithContrastDefaultRange(WindowFunctionContext ctx) {
  if (ctx.value_range.empty() && ctx.synopsis != nullptr) {
    ctx.value_range =
        Interval(0.0, ctx.synopsis->global_value_range().width());
  }
  return ctx;
}

}  // namespace

// ---------------------------------------------------------------------
// BoundsCache

class BoundsCache::Snapshot : public cp::FunctionState {
 public:
  explicit Snapshot(std::unordered_map<Key, Interval, KeyHash> map)
      : map_(std::move(map)) {}

  std::unique_ptr<cp::FunctionState> Clone() const override {
    return std::make_unique<Snapshot>(map_);
  }

  int64_t SizeBytes() const override {
    // Key (kind + window coordinates) + interval + the support coordinates
    // a real aggregate keeps; comparable to the ~80 bytes/save the paper
    // reports for 2-D aggregate states.
    return static_cast<int64_t>(map_.size()) *
           static_cast<int64_t>(sizeof(Key) + sizeof(Interval) +
                                2 * sizeof(int64_t));
  }

  const std::unordered_map<Key, Interval, KeyHash>& map() const {
    return map_;
  }

 private:
  std::unordered_map<Key, Interval, KeyHash> map_;
};

void BoundsCache::Touch(const Key& key) {
  if (recent_.size() < kRecentCapacity) {
    recent_.push_back(key);
    return;
  }
  recent_[recent_next_] = key;
  recent_next_ = (recent_next_ + 1) % kRecentCapacity;
}

bool BoundsCache::IsRecent(const Key& key) const {
  for (const Key& r : recent_) {
    if (r == key) return true;
  }
  return false;
}

void BoundsCache::EvictOne() {
  // Second-chance FIFO: rotate recency-protected keys to the back, evict
  // the first unprotected one. If one full pass finds only protected keys
  // (tiny capacities), fall through and evict the oldest anyway — the
  // cache must shrink, just never wholesale.
  for (size_t guard = fifo_.size(); guard > 0; --guard) {
    const Key key = fifo_.front();
    fifo_.pop_front();
    if (IsRecent(key)) {
      fifo_.push_back(key);
      continue;
    }
    map_.erase(key);
    return;
  }
  if (!fifo_.empty()) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
  }
}

const Interval* BoundsCache::Find(int kind, int64_t lo, int64_t hi) {
  const Key key{kind, lo, hi};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    Touch(it->first);
    return &it->second;
  }
  if (shared_ != nullptr) {
    Interval value;
    if (shared_->Lookup(shared_space_, kind, lo, hi, &value)) {
      // Adopt the L2 entry locally without republishing it. Serving the
      // lookup from the memo means the caller skips recomputation and the
      // artificial miss cost — the cross-query perf lever.
      ++stats_.shared_hits;
      const auto [ins, inserted] = map_.emplace(key, value);
      if (inserted) fifo_.push_back(key);
      Touch(key);
      while (map_.size() > capacity_) {
        EvictOne();
        ++stats_.evictions;
      }
      return &ins->second;
    }
    ++stats_.shared_misses;
  }
  ++stats_.misses;
  return nullptr;
}

void BoundsCache::Insert(int kind, int64_t lo, int64_t hi,
                         const Interval& value) {
  const Key key{kind, lo, hi};
  const auto [it, inserted] = map_.emplace(key, value);
  (void)it;
  if (inserted) fifo_.push_back(key);
  Touch(key);
  if (shared_ != nullptr &&
      shared_->Insert(shared_space_, kind, lo, hi, value)) {
    ++stats_.shared_evictions;
  }
  while (map_.size() > capacity_) {
    EvictOne();
    ++stats_.evictions;
  }
}

std::unique_ptr<cp::FunctionState> BoundsCache::SaveRecent() const {
  std::unordered_map<Key, Interval, KeyHash> subset;
  for (const Key& key : recent_) {
    const auto it = map_.find(key);
    if (it != map_.end()) subset.emplace(it->first, it->second);
  }
  if (subset.empty()) return nullptr;
  return std::make_unique<Snapshot>(std::move(subset));
}

void BoundsCache::Restore(const cp::FunctionState& state) {
  const auto* snapshot = dynamic_cast<const Snapshot*>(&state);
  DQR_CHECK_MSG(snapshot != nullptr, "foreign function state");
  for (const auto& [key, value] : snapshot->map()) {
    const auto [it, inserted] = map_.emplace(key, value);
    (void)it;
    if (!inserted) continue;
    fifo_.push_back(key);
    // Restored entries sit at the back of the FIFO, so the evictions
    // making room for them hit the coldest entries first; a restore is
    // never silently truncated.
    while (map_.size() > capacity_) {
      EvictOne();
      ++stats_.restore_evictions;
    }
  }
}

void BoundsCache::Clear() {
  map_.clear();
  fifo_.clear();
  recent_.clear();
  recent_next_ = 0;
}

// ---------------------------------------------------------------------
// WindowFunction

WindowFunction::WindowFunction(WindowFunctionContext ctx)
    : ctx_(std::move(ctx)) {
  DQR_CHECK(ctx_.array != nullptr && ctx_.synopsis != nullptr);
  DQR_CHECK(ctx_.x_var != ctx_.len_var);
  value_range_ = ctx_.value_range.empty()
                     ? ctx_.synopsis->global_value_range()
                     : ctx_.value_range;
  if (ctx_.shared_memo != nullptr) {
    cache_.AttachShared(ctx_.shared_memo, ctx_.shared_memo_key);
  }
}

std::unique_ptr<cp::FunctionState> WindowFunction::SaveState(
    const cp::DomainBox& box) const {
  // The recently touched entries are exactly the window bounds the failed
  // node's estimate derived (the search checks constraints on `box` right
  // before a fail is recorded), so no box-based filtering is needed.
  (void)box;
  if (cache_.size() == 0) return nullptr;
  return cache_.SaveRecent();
}

void WindowFunction::RestoreState(const cp::FunctionState& state) {
  cache_.Restore(state);
}

void WindowFunction::ClearState() { cache_.Clear(); }

WindowFunction::WindowBox WindowFunction::ReadWindow(
    const cp::DomainBox& box) const {
  DQR_CHECK(ctx_.x_var >= 0 &&
            static_cast<size_t>(ctx_.x_var) < box.size());
  DQR_CHECK(ctx_.len_var >= 0 &&
            static_cast<size_t>(ctx_.len_var) < box.size());
  const cp::IntDomain& x = box[static_cast<size_t>(ctx_.x_var)];
  const cp::IntDomain& l = box[static_cast<size_t>(ctx_.len_var)];
  DQR_CHECK(x.lo >= 0 && x.hi < array_length());
  DQR_CHECK(l.lo >= 1);

  WindowBox w;
  w.x_lo = x.lo;
  w.x_hi = x.hi;
  w.l_lo = l.lo;
  w.l_hi = l.hi;
  w.span_lo = x.lo;
  w.span_hi = std::min(array_length(), x.hi + l.hi);
  w.bound = x.IsBound() && l.IsBound();
  return w;
}

int WindowFunction::EstimateLevel(const std::vector<int64_t>& point) const {
  if (ctx_.x_var < 0 || static_cast<size_t>(ctx_.x_var) >= point.size() ||
      ctx_.len_var < 0 ||
      static_cast<size_t>(ctx_.len_var) >= point.size()) {
    return -1;
  }
  const int64_t x = point[static_cast<size_t>(ctx_.x_var)];
  const int64_t l = point[static_cast<size_t>(ctx_.len_var)];
  const int64_t hi = std::min(array_length(), x + l);
  if (x < 0 || hi <= x) return -1;
  return static_cast<int>(ctx_.synopsis->PickLevelIndex(x, hi));
}

void WindowFunction::ChargeMiss() const {
  ChargeCost(ctx_.estimate_cost_ns, ctx_.cost_is_latency);
}

Interval WindowFunction::CachedValueBounds(int64_t lo, int64_t hi) {
  if (const Interval* hit = cache_.Find(kKindValue, lo, hi)) return *hit;
  const obs::ScopedSinkTimer bound_timer;
  ChargeMiss();
  const Interval result = ctx_.synopsis->ValueBounds(lo, hi);
  cache_.Insert(kKindValue, lo, hi, result);
  return result;
}

Interval WindowFunction::CachedMaxBounds(int64_t lo, int64_t hi) {
  if (const Interval* hit = cache_.Find(kKindMax, lo, hi)) return *hit;
  const obs::ScopedSinkTimer bound_timer;
  ChargeMiss();
  const Interval result = ctx_.synopsis->MaxBounds(lo, hi);
  cache_.Insert(kKindMax, lo, hi, result);
  return result;
}

Interval WindowFunction::CachedMinBounds(int64_t lo, int64_t hi) {
  if (const Interval* hit = cache_.Find(kKindMin, lo, hi)) return *hit;
  const obs::ScopedSinkTimer bound_timer;
  ChargeMiss();
  const Interval result = ctx_.synopsis->MinBounds(lo, hi);
  cache_.Insert(kKindMin, lo, hi, result);
  return result;
}

Interval WindowFunction::MaxOverWindows(int64_t s_lo, int64_t s_hi,
                                        int64_t l_lo, int64_t l_hi) {
  const int64_t n = array_length();
  DQR_CHECK(0 <= s_lo && s_lo <= s_hi && s_hi < n);
  DQR_CHECK(1 <= l_lo && l_lo <= l_hi);
  if (s_lo == s_hi) {
    // Fixed start: the max over [s, s+l) (clamped to the array) is
    // monotone in l, so the shortest and longest windows bound every
    // window in between.
    const int64_t short_hi = std::min(n, s_lo + l_lo);
    const int64_t long_hi = std::min(n, s_lo + l_hi);
    const Interval small = CachedMaxBounds(s_lo, short_hi);
    const Interval large =
        long_hi == short_hi ? small : CachedMaxBounds(s_lo, long_hi);
    return Interval(small.lo, large.hi);
  }

  const int64_t span_hi = std::min(n, s_hi + l_hi);
  const Interval span_values = CachedValueBounds(s_lo, span_hi);
  // Every window contains the common core [s_hi, s_lo + l_lo) when that
  // range is non-empty, so the core's max bounds every window max from
  // below.
  const int64_t core_lo = s_hi;
  const int64_t core_hi = std::min(n, s_lo + l_lo);
  double lower = span_values.lo;
  if (core_lo < core_hi) {
    lower = std::max(lower, CachedMaxBounds(core_lo, core_hi).lo);
  }
  return Interval(lower, span_values.hi);
}

// ---------------------------------------------------------------------
// AvgFunction

Interval AvgFunction::Estimate(const cp::DomainBox& box) {
  const WindowBox w = ReadWindow(box);
  if (w.bound) {
    const int64_t hi = std::min(array_length(), w.x_lo + w.l_lo);
    DQR_CHECK(hi > w.x_lo);
    // Window sums are keyed by (x, l) pairs that rarely repeat, so they
    // are not memoized; the estimation cost is charged directly.
    const obs::ScopedSinkTimer bound_timer;
    ChargeMiss();
    return synopsis().AvgBounds(w.x_lo, hi);
  }
  return CachedValueBounds(w.span_lo, w.span_hi);
}

double AvgFunction::Evaluate(const std::vector<int64_t>& point) {
  CountEvaluate();
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t l = point[static_cast<size_t>(ctx().len_var)];
  const int64_t hi = std::min(array_length(), x + l);
  DQR_CHECK(x >= 0 && hi > x);
  return array().AggregateWindow(x, hi).avg();
}

// ---------------------------------------------------------------------
// MaxFunction

Interval MaxFunction::Estimate(const cp::DomainBox& box) {
  const WindowBox w = ReadWindow(box);
  return MaxOverWindows(w.x_lo, w.x_hi, w.l_lo, w.l_hi);
}

double MaxFunction::Evaluate(const std::vector<int64_t>& point) {
  CountEvaluate();
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t l = point[static_cast<size_t>(ctx().len_var)];
  const int64_t hi = std::min(array_length(), x + l);
  DQR_CHECK(x >= 0 && hi > x);
  return array().MaxOver(x, hi);
}

void MaxFunction::EvaluateBatch(
    const std::vector<const std::vector<int64_t>*>& points, double* out) {
  const int64_t n = static_cast<int64_t>(points.size());
  std::vector<int64_t> lo(points.size());
  std::vector<int64_t> hi(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    CountEvaluate();
    const std::vector<int64_t>& point = *points[i];
    const int64_t x = point[static_cast<size_t>(ctx().x_var)];
    const int64_t l = point[static_cast<size_t>(ctx().len_var)];
    const int64_t end = std::min(array_length(), x + l);
    DQR_CHECK(x >= 0 && end > x);
    lo[i] = x;
    hi[i] = end;
  }
  array().MaxOverBatch(lo.data(), hi.data(), n, out);
}

// ---------------------------------------------------------------------
// MinFunction

Interval MinFunction::Estimate(const cp::DomainBox& box) {
  const WindowBox w = ReadWindow(box);
  const int64_t n = array_length();
  if (w.bound) {
    const int64_t hi = std::min(n, w.x_lo + w.l_lo);
    DQR_CHECK(hi > w.x_lo);
    return CachedMinBounds(w.x_lo, hi);
  }
  const Interval span_values = CachedValueBounds(w.span_lo, w.span_hi);
  // Mirror of MaxOverWindows: the common core bounds the min from above.
  const int64_t core_lo = w.x_hi;
  const int64_t core_hi = std::min(n, w.x_lo + w.l_lo);
  double upper = span_values.hi;
  if (core_lo < core_hi) {
    upper = std::min(upper, CachedMinBounds(core_lo, core_hi).hi);
  }
  return Interval(span_values.lo, upper);
}

double MinFunction::Evaluate(const std::vector<int64_t>& point) {
  CountEvaluate();
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t l = point[static_cast<size_t>(ctx().len_var)];
  const int64_t hi = std::min(array_length(), x + l);
  DQR_CHECK(x >= 0 && hi > x);
  return array().AggregateWindow(x, hi).min;
}

void MinFunction::EvaluateBatch(
    const std::vector<const std::vector<int64_t>*>& points, double* out) {
  const int64_t n = static_cast<int64_t>(points.size());
  std::vector<int64_t> lo(points.size());
  std::vector<int64_t> hi(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    CountEvaluate();
    const std::vector<int64_t>& point = *points[i];
    const int64_t x = point[static_cast<size_t>(ctx().x_var)];
    const int64_t l = point[static_cast<size_t>(ctx().len_var)];
    const int64_t end = std::min(array_length(), x + l);
    DQR_CHECK(x >= 0 && end > x);
    lo[i] = x;
    hi[i] = end;
  }
  array().MinOverBatch(lo.data(), hi.data(), n, out);
}

// ---------------------------------------------------------------------
// NeighborhoodContrastFunction

NeighborhoodContrastFunction::NeighborhoodContrastFunction(
    WindowFunctionContext ctx, Side side, int64_t width)
    : WindowFunction(WithContrastDefaultRange(std::move(ctx))),
      side_(side),
      width_(width) {
  DQR_CHECK(width_ >= 1);
}

std::pair<int64_t, int64_t> NeighborhoodContrastFunction::NeighborhoodFor(
    int64_t x, int64_t l) const {
  const int64_t n = array_length();
  if (side_ == Side::kLeft) {
    return {std::max<int64_t>(0, x - width_), x};
  }
  const int64_t end = std::min(n, x + l);
  return {end, std::min(n, end + width_)};
}

Interval NeighborhoodContrastFunction::Estimate(const cp::DomainBox& box) {
  const WindowBox w = ReadWindow(box);
  const int64_t n = array_length();
  const Interval main = MaxOverWindows(w.x_lo, w.x_hi, w.l_lo, w.l_hi);

  // Bounds on max(neighborhood) over every (x, l) in the box, handling
  // edge truncation soundly. `can_be_empty` marks boxes containing at
  // least one assignment whose neighborhood collapses entirely, where the
  // function value degenerates to 0.
  Interval nbhd = Interval::Empty();
  bool can_be_empty = false;
  if (side_ == Side::kLeft) {
    if (w.x_hi == 0) {
      can_be_empty = true;  // the only neighborhood is empty
    } else if (w.x_lo >= width_) {
      // No truncation: a fixed-length window sliding with x.
      nbhd = MaxOverWindows(w.x_lo - width_, w.x_hi - width_, width_,
                            width_);
    } else {
      // Truncated near the left edge: the neighborhood is some non-empty
      // sub-window of [0, x_hi) for x > 0; value bounds over that span
      // are sound for its max.
      nbhd = CachedValueBounds(0, w.x_hi);
      can_be_empty = w.x_lo == 0;
    }
  } else {
    const int64_t e_lo = std::min(n, w.x_lo + w.l_lo);
    const int64_t e_hi = std::min(n, w.x_hi + w.l_hi);
    if (e_lo >= n) {
      can_be_empty = true;  // every neighborhood starts past the end
    } else if (e_hi + width_ <= n) {
      // No truncation: a fixed-length window sliding with the window end.
      nbhd = MaxOverWindows(e_lo, e_hi, width_, width_);
    } else {
      nbhd = CachedValueBounds(e_lo, n);
      can_be_empty = e_hi >= n;
    }
  }

  Interval estimate =
      nbhd.empty() ? Interval::Empty() : Abs(main - nbhd);
  if (can_be_empty) {
    // Assignments with an empty neighborhood evaluate to exactly 0.
    estimate = estimate.Union(Interval::Point(0.0));
  }
  DQR_CHECK(!estimate.empty());
  return estimate;
}

double NeighborhoodContrastFunction::Evaluate(
    const std::vector<int64_t>& point) {
  CountEvaluate();
  const int64_t x = point[static_cast<size_t>(ctx().x_var)];
  const int64_t l = point[static_cast<size_t>(ctx().len_var)];
  const int64_t hi = std::min(array_length(), x + l);
  DQR_CHECK(x >= 0 && hi > x);
  const double main = array().MaxOver(x, hi);
  const auto [nb_lo, nb_hi] = NeighborhoodFor(x, l);
  if (nb_lo >= nb_hi) return 0.0;
  const double nbhd = array().MaxOver(nb_lo, nb_hi);
  return std::abs(main - nbhd);
}

void NeighborhoodContrastFunction::EvaluateBatch(
    const std::vector<const std::vector<int64_t>*>& points, double* out) {
  const size_t n = points.size();
  std::vector<int64_t> main_lo(n);
  std::vector<int64_t> main_hi(n);
  std::vector<int64_t> nb_lo;
  std::vector<int64_t> nb_hi;
  std::vector<size_t> nb_owner;  // point index of each neighborhood window
  for (size_t i = 0; i < n; ++i) {
    CountEvaluate();
    const std::vector<int64_t>& point = *points[i];
    const int64_t x = point[static_cast<size_t>(ctx().x_var)];
    const int64_t l = point[static_cast<size_t>(ctx().len_var)];
    const int64_t end = std::min(array_length(), x + l);
    DQR_CHECK(x >= 0 && end > x);
    main_lo[i] = x;
    main_hi[i] = end;
    const auto [b, e] = NeighborhoodFor(x, l);
    if (b < e) {
      nb_lo.push_back(b);
      nb_hi.push_back(e);
      nb_owner.push_back(i);
    }
  }
  // The scalar path reads the main window even when the neighborhood is
  // empty (and then returns 0), so the batch must charge it for every
  // point too.
  std::vector<double> main_max(n);
  array().MaxOverBatch(main_lo.data(), main_hi.data(),
                       static_cast<int64_t>(n), main_max.data());
  std::fill(out, out + n, 0.0);
  if (nb_lo.empty()) return;
  std::vector<double> nb_max(nb_lo.size());
  array().MaxOverBatch(nb_lo.data(), nb_hi.data(),
                       static_cast<int64_t>(nb_lo.size()), nb_max.data());
  for (size_t k = 0; k < nb_owner.size(); ++k) {
    out[nb_owner[k]] = std::abs(main_max[nb_owner[k]] - nb_max[k]);
  }
}

}  // namespace dqr::searchlight
