#ifndef DQR_SEARCHLIGHT_GRID_FUNCTIONS_H_
#define DQR_SEARCHLIGHT_GRID_FUNCTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/grid.h"
#include "common/interval.h"
#include "cp/function.h"
#include "searchlight/functions.h"
#include "synopsis/grid_synopsis.h"

namespace dqr::searchlight {

// Shared construction context of a 2-D rectangle aggregate function. The
// search rectangle is rows [y, y+h) x cols [x, x+w) over four decision
// variables.
struct GridFunctionContext {
  std::shared_ptr<const array::Grid> grid;
  std::shared_ptr<const synopsis::GridSynopsis> synopsis;
  int y_var = 0;
  int x_var = 1;
  int h_var = 2;
  int w_var = 3;
  // Static range of the function value; empty => synopsis global range.
  Interval value_range = Interval::Empty();
  // Artificial per-uncached-lookup cost, as in WindowFunctionContext.
  int64_t estimate_cost_ns = 0;
  // Optional cross-query shared bounds memo (L2), as in
  // WindowFunctionContext. Clones inherit the attachment.
  cache::SharedBoundsMemo* shared_memo = nullptr;
  uint64_t shared_memo_key = 0;
};

// Base class for 2-D rectangle aggregates: geometry, memoized synopsis
// lookups (rect-keyed), and fail-time state snapshots — the 2-D
// counterpart of WindowFunction. The refinement framework above is
// dimension-agnostic; these functions are all it takes to run the full
// relax/constrain machinery on Searchlight's multidimensional workloads.
class RectFunction : public cp::ConstraintFunction {
 public:
  explicit RectFunction(GridFunctionContext ctx);

  Interval value_range() const override { return value_range_; }

  // Synopsis level the estimator consults for the candidate's own
  // rectangle — the profiler's per-level accuracy attribution.
  int EstimateLevel(const std::vector<int64_t>& point) const override;

  std::unique_ptr<cp::FunctionState> SaveState(
      const cp::DomainBox& box) const override;
  void RestoreState(const cp::FunctionState& state) override;
  void ClearState() override;

  cp::FunctionMemoStats memo_stats() const override {
    return cache_.stats();
  }

 protected:
  struct RectBox {
    int64_t y_lo, y_hi, x_lo, x_hi;
    int64_t h_lo, h_hi, w_lo, w_hi;
    // Union of all rectangles, clipped to the grid.
    int64_t span_r1, span_c1;
    bool bound;
  };
  RectBox ReadRect(const cp::DomainBox& box) const;

  // Sound bounds on max over every rectangle [y, y+h) x [x, x+w) with
  // the given variable ranges; clipped to the grid, memoized.
  Interval MaxOverRects(int64_t y_lo, int64_t y_hi, int64_t x_lo,
                        int64_t x_hi, int64_t h_lo, int64_t h_hi,
                        int64_t w_lo, int64_t w_hi);

  // Memoized synopsis primitives over rectangles.
  Interval CachedValueBounds(int64_t r0, int64_t r1, int64_t c0,
                             int64_t c1);
  Interval CachedMaxBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1);

  void ChargeMiss() const;

  int64_t grid_rows() const { return ctx_.grid->rows(); }
  int64_t grid_cols() const { return ctx_.grid->cols(); }
  const array::Grid& grid() const { return *ctx_.grid; }
  const synopsis::GridSynopsis& synopsis() const { return *ctx_.synopsis; }
  const GridFunctionContext& ctx() const { return ctx_; }

 private:
  GridFunctionContext ctx_;
  Interval value_range_;
  BoundsCache cache_;
};

// avg over the rectangle.
class RectAvgFunction : public RectFunction {
 public:
  explicit RectAvgFunction(GridFunctionContext ctx)
      : RectFunction(std::move(ctx)) {}

  std::string name() const override { return "rect_avg"; }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<RectAvgFunction>(ctx());
  }
};

// max over the rectangle.
class RectMaxFunction : public RectFunction {
 public:
  explicit RectMaxFunction(GridFunctionContext ctx)
      : RectFunction(std::move(ctx)) {}

  std::string name() const override { return "rect_max"; }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  // Batched rectangles share one SIMD pass over the base grid.
  void EvaluateBatch(const std::vector<const std::vector<int64_t>*>& points,
                     double* out) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<RectMaxFunction>(ctx());
  }
};

// |max(rect) - max(neighborhood)| where the neighborhood is the
// `width`-column band immediately left/right of the rectangle, over the
// same rows — the 2-D analogue of the paper's c2/c3.
class RectContrastFunction : public RectFunction {
 public:
  enum class Side { kLeft, kRight };

  RectContrastFunction(GridFunctionContext ctx, Side side, int64_t width);

  std::string name() const override {
    return side_ == Side::kLeft ? "rect_contrast_left"
                                : "rect_contrast_right";
  }
  Interval Estimate(const cp::DomainBox& box) override;
  double Evaluate(const std::vector<int64_t>& point) override;
  // Main rectangles and non-empty neighborhood bands are gathered into
  // one SIMD batch each; empty bands keep their scalar value of 0.
  void EvaluateBatch(const std::vector<const std::vector<int64_t>*>& points,
                     double* out) override;
  std::unique_ptr<cp::ConstraintFunction> Clone() const override {
    return std::make_unique<RectContrastFunction>(ctx(), side_, width_);
  }

 private:
  // Neighborhood columns for a bound (x, w); may collapse at grid edges.
  std::pair<int64_t, int64_t> NeighborhoodCols(int64_t x, int64_t w) const;

  Side side_;
  int64_t width_;
};

}  // namespace dqr::searchlight

#endif  // DQR_SEARCHLIGHT_GRID_FUNCTIONS_H_
