#include "searchlight/candidate_queue.h"

#include <algorithm>

#include "common/check.h"

namespace dqr::searchlight {
namespace {

// Min-heap on priority: the comparator inverts for std::push_heap's
// max-heap convention.
bool HeapLater(const Candidate& a, const Candidate& b) {
  return a.priority > b.priority;
}

}  // namespace

void CandidateQueue::HeapPush(Candidate c) {
  heap_.push_back(std::move(c));
  std::push_heap(heap_.begin(), heap_.end(), HeapLater);
}

Candidate CandidateQueue::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapLater);
  Candidate c = std::move(heap_.back());
  heap_.pop_back();
  return c;
}

bool CandidateQueue::Push(Candidate c) { return PushIfOpen(c); }

bool CandidateQueue::PushIfOpen(Candidate& c) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return closed_ || aborted_ ||
           (order_ == Order::kFifo ? fifo_.size() : heap_.size()) <
               capacity_;
  });
  if (closed_ || aborted_) return false;
  if (order_ == Order::kFifo) {
    fifo_.push_back(std::move(c));
  } else {
    HeapPush(std::move(c));
  }
  const int64_t sz = static_cast<int64_t>(
      order_ == Order::kFifo ? fifo_.size() : heap_.size());
  peak_size_ = std::max(peak_size_, sz);
  not_empty_.notify_one();
  return true;
}

std::optional<Candidate> CandidateQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] {
    return closed_ || aborted_ || !fifo_.empty() || !heap_.empty();
  });
  if (aborted_) return std::nullopt;
  Candidate c;
  if (order_ == Order::kFifo) {
    if (fifo_.empty()) return std::nullopt;
    c = std::move(fifo_.front());
    fifo_.pop_front();
  } else {
    if (heap_.empty()) return std::nullopt;
    c = HeapPop();
  }
  ++in_flight_;
  not_full_.notify_one();
  return c;
}

void CandidateQueue::FinishedCurrent() { FinishedN(1); }

bool CandidateQueue::PopBatch(size_t max_n, std::vector<Candidate>* out) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] {
    return closed_ || aborted_ || !fifo_.empty() || !heap_.empty();
  });
  if (aborted_) return false;
  while (out->size() < max_n) {
    if (order_ == Order::kFifo) {
      if (fifo_.empty()) break;
      out->push_back(std::move(fifo_.front()));
      fifo_.pop_front();
    } else {
      if (heap_.empty()) break;
      out->push_back(HeapPop());
    }
  }
  if (out->empty()) return false;  // closed and drained
  in_flight_ += static_cast<int>(out->size());
  not_full_.notify_all();
  return true;
}

void CandidateQueue::FinishedN(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return;
  DQR_CHECK(in_flight_ >= static_cast<int>(n));
  in_flight_ -= static_cast<int>(n);
  if (fifo_.empty() && heap_.empty() && in_flight_ == 0) {
    drained_.notify_all();
  }
}

void CandidateQueue::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] {
    return aborted_ || (fifo_.empty() && heap_.empty() && in_flight_ == 0);
  });
}

void CandidateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

void CandidateQueue::Abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
  drained_.notify_all();
}

std::vector<Candidate> CandidateQueue::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Candidate> out;
  out.reserve(fifo_.size() + heap_.size());
  for (Candidate& c : fifo_) out.push_back(std::move(c));
  fifo_.clear();
  for (Candidate& c : heap_) out.push_back(std::move(c));
  heap_.clear();
  return out;
}

size_t CandidateQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_ == Order::kFifo ? fifo_.size() : heap_.size();
}

bool CandidateQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

bool CandidateQueue::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

int64_t CandidateQueue::peak_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_size_;
}

}  // namespace dqr::searchlight
