#ifndef DQR_SEARCHLIGHT_CANDIDATE_H_
#define DQR_SEARCHLIGHT_CANDIDATE_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"

namespace dqr::searchlight {

// A candidate solution streamed from a Solver to a Validator: a fully
// bound assignment plus the synopsis estimates observed at the leaf.
// Candidates may be false positives; the Validator re-evaluates them over
// the base data.
struct Candidate {
  std::vector<int64_t> point;
  // Per-constraint [a', b'] estimates at the leaf (same order as the
  // query's constraints).
  std::vector<Interval> estimates;
  // Best possible relaxation penalty of the leaf w.r.t. the *original*
  // bounds; drives the BRP pre-check and BRP-sorted queues (§4.2).
  double brp = 0.0;
  // Best possible rank (BRK) of the leaf; drives the constraining
  // pre-check (§4.3).
  double brk = 1.0;
  // Queue ordering key, set by the producer (lower pops first).
  double priority = 0.0;
};

}  // namespace dqr::searchlight

#endif  // DQR_SEARCHLIGHT_CANDIDATE_H_
