#ifndef DQR_SEARCHLIGHT_CANDIDATE_QUEUE_H_
#define DQR_SEARCHLIGHT_CANDIDATE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "searchlight/candidate.h"

namespace dqr::searchlight {

// Bounded producer/consumer queue between a Solver and its Validator.
//
// Two orders (§4.2 "Sorting the Validator queue on BRP"):
//   * kFifo       — arrival order (the Searchlight default);
//   * kPriority   — by Candidate::priority, lowest first; producers set
//                   the priority to BRP during relaxation (best candidates
//                   validate first, shrinking MRP faster).
//
// Push blocks while the queue is full (back-pressure on the Solver); Pop
// blocks while it is empty. Close() releases everybody.
class CandidateQueue {
 public:
  enum class Order { kFifo, kPriority };

  CandidateQueue(Order order, size_t capacity)
      : order_(order), capacity_(capacity == 0 ? 1 : capacity) {}

  CandidateQueue(const CandidateQueue&) = delete;
  CandidateQueue& operator=(const CandidateQueue&) = delete;

  // Enqueues `c`; blocks while full. Returns false if the queue was
  // closed or aborted (the candidate is dropped).
  bool Push(Candidate c);

  // Like Push, but on rejection `c` is left intact so the caller can
  // re-route it (orphan re-deposit during crash recovery).
  bool PushIfOpen(Candidate& c);

  // Dequeues the next candidate; blocks while empty. Returns nullopt once
  // the queue is closed and drained. The consumer must call
  // FinishedCurrent() after fully processing each popped candidate so
  // that WaitDrained() accounts for in-flight work.
  std::optional<Candidate> Pop();

  // Marks the most recently popped candidate as fully processed.
  void FinishedCurrent();

  // Dequeues up to `max_n` candidates into `out` (cleared first): blocks
  // for the first like Pop, then drains whatever is immediately available
  // without further waiting (heap order preserved under kPriority).
  // Returns false with `out` empty once the queue is closed and drained,
  // or aborted. Every popped candidate counts as in-flight until
  // FinishedN accounts for it.
  bool PopBatch(size_t max_n, std::vector<Candidate>* out);

  // Marks `n` previously popped candidates as fully processed.
  void FinishedN(size_t n);

  // Blocks until the queue is empty and no candidate is being processed.
  void WaitDrained();

  // No more pushes accepted; pending candidates can still be popped.
  void Close();

  // Crash support: the owning instance died. Releases every waiter; Pop
  // returns nullopt immediately even while candidates remain (a dead
  // validator must not consume), Push is rejected, WaitDrained no longer
  // blocks and FinishedCurrent becomes a no-op. The undelivered
  // candidates stay harvestable via TakeAll() for re-validation
  // elsewhere. Idempotent.
  void Abort();

  // Removes and returns every undelivered candidate (recovery after
  // Abort). Priority order is irrelevant to the harvester.
  std::vector<Candidate> TakeAll();

  size_t size() const;
  bool closed() const;
  bool aborted() const;
  int64_t peak_size() const;

 private:
  // Heap helpers for kPriority; `heap_` is a min-heap on priority.
  void HeapPush(Candidate c);
  Candidate HeapPop();

  const Order order_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<Candidate> fifo_;
  std::vector<Candidate> heap_;
  int in_flight_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
  int64_t peak_size_ = 0;
};

}  // namespace dqr::searchlight

#endif  // DQR_SEARCHLIGHT_CANDIDATE_QUEUE_H_
