#ifndef DQR_EXEC_ENGINE_SESSION_H_
#define DQR_EXEC_ENGINE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "cache/semantic_cache.h"
#include "common/status.h"
#include "core/options.h"
#include "core/refiner.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "searchlight/query.h"

namespace dqr::exec {

struct EngineSessionOptions {
  // Null = the process-shared pool / wheel.
  WorkerPool* pool = nullptr;
  TimerWheel* wheel = nullptr;
  // Query slots allowed to run at once; <= 0 resolves the
  // DQR_MAX_CONCURRENT_QUERIES environment knob, defaulting to 8.
  int max_concurrent_queries = 0;
};

// Session-level counters (admission + a pool snapshot).
struct SessionStats {
  int active_slots = 0;       // queries executing right now (gauge)
  int peak_slots = 0;         // high-water mark of active_slots
  int64_t queries_admitted = 0;
  int64_t queries_queued = 0;  // admissions that had to wait
  double admission_wait_s = 0.0;  // summed wait of all admissions
  double max_admission_wait_s = 0.0;  // worst single admission wait
  int64_t tasks_in_flight = 0;    // pool-task demand of active slots
  PoolStats pool;
};

// The multi-query front end (DESIGN.md §10): N concurrent Execute /
// ExecuteCached calls multiplex over one persistent WorkerPool + shared
// TimerWheel instead of each spawning its own thread complement. Every
// call runs in a *query slot* with fully isolated per-query state — the
// coordinator, fail registry, replay pool and DelayedBroadcast epochs
// are constructed per call inside ExecuteQuery, so slots share only the
// scheduler and results stay byte-identical to the single-query engine.
//
// Admission control is FIFO with a task-demand gate: a query needs
// instances * (2 + speculative) pool tasks, and the head of the queue is
// admitted once (a) a slot is free under max_concurrent_queries and
// (b) its demand fits the pool's in-flight task budget — or the session
// is empty, which guarantees progress for queries wider than the pool.
// FIFO means no query can be starved by a stream of later, smaller ones.
class EngineSession {
 public:
  explicit EngineSession(EngineSessionOptions options = {});

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  // ExecuteQuery in this session's slot discipline. Thread-safe; blocks
  // in admission when the session is full. The returned stats carry
  // admission_wait_s and the pool_* dispatch counters.
  Result<core::RunResult> Execute(const searchlight::QuerySpec& query,
                                  const core::RefineOptions& options);

  // ExecuteQueryCached under the same slot discipline (cache probes and
  // hit synthesis are admitted too — they are cheap, and bounding them
  // keeps the concurrency cap honest).
  Result<core::RunResult> ExecuteCached(cache::SemanticCache* cache,
                                        const cache::CachedQuery& cq,
                                        const core::RefineOptions& options,
                                        cache::CacheOutcome* outcome = nullptr);

  SessionStats stats() const;
  int max_concurrent_queries() const { return max_concurrent_; }
  // The in-flight pool-task budget of the admission gate (2x the pool's
  // worker count). Tenant schedulers layered above the session size
  // their per-tenant demand budgets against this.
  int64_t task_capacity() const { return task_capacity_; }
  WorkerPool* pool() const { return pool_; }
  TimerWheel* wheel() const { return wheel_; }

  // Pool tasks a query with these options occupies while running
  // (solver + validator per instance, plus the speculative loop) — the
  // demand unit of both the session's admission gate and any tenant
  // scheduler layered above it (serve's deficit round-robin charges
  // tenants in exactly these units, so "fair share of work" and "fair
  // share of the pool" coincide).
  static int64_t TaskDemand(const core::RefineOptions& options);

  // The process-wide session over the shared pool/wheel (never
  // destroyed, same lifetime policy as WorkerPool::Shared()).
  static EngineSession& Shared();

 private:
  // Blocks until this query may run; returns its wait in seconds.
  double Admit(int64_t demand);
  void Release(int64_t demand);

  WorkerPool* pool_;
  TimerWheel* wheel_;
  int max_concurrent_;
  int64_t task_capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;  // issued to arrivals
  uint64_t serving_ = 0;      // ticket currently allowed to admit
  int active_ = 0;
  int peak_ = 0;
  int64_t tasks_in_flight_ = 0;
  int64_t admitted_ = 0;
  int64_t queued_ = 0;
  double wait_s_ = 0.0;
  double max_wait_s_ = 0.0;
};

}  // namespace dqr::exec

#endif  // DQR_EXEC_ENGINE_SESSION_H_
