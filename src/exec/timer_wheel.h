#ifndef DQR_EXEC_TIMER_WHEEL_H_
#define DQR_EXEC_TIMER_WHEEL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace dqr::exec {

// One shared timer thread that hosts every query slot's periodic work:
// per-slot heartbeat beats, failure-detector lease sweeps, and time-budget
// watchdogs (DESIGN.md §10). Replaces the per-query watchdog + detector
// threads and the per-instance heartbeat threads of the legacy engine —
// with Q concurrent queries of I instances each, Q*(I+2) timer threads
// collapse into this one.
//
// Callbacks run sequentially on the timer thread, so they must be short
// and non-blocking (a heartbeat is a couple of atomic stores; a detector
// sweep is one bounded pass under the coordinator lock). Cancel()
// guarantees the callback is not running and will never run again when it
// returns, which is what lets a query slot tear down state the callback
// reads.
class TimerWheel {
 public:
  using TimerId = int64_t;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Fires `fn` every `period_us` microseconds, first firing one period
  // from now. Periods are measured firing-to-scheduled-firing; if the
  // wheel falls behind (long callback), missed firings are skipped, not
  // bursted.
  TimerId AddPeriodic(int64_t period_us, std::function<void()> fn);

  // Fires `fn` once, `delay_us` from now.
  TimerId AddOnce(int64_t delay_us, std::function<void()> fn);

  // Removes the timer. On return the callback is not executing and will
  // never execute again. Safe for unknown/already-fired ids; callable
  // from inside the timer's own callback (it then skips the quiescence
  // wait — the callback is trivially not running concurrently with
  // itself).
  void Cancel(TimerId id);

  // Active (scheduled, uncancelled) timer count.
  int64_t active() const;

  // The process-wide wheel, created on first use and intentionally never
  // destroyed (same lifetime policy as WorkerPool::Shared()).
  static TimerWheel& Shared();

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    int64_t period_us = 0;  // 0 = one-shot
    std::function<void()> fn;
  };
  struct Due {
    Clock::time_point deadline;
    TimerId id;
    bool operator>(const Due& other) const {
      return deadline > other.deadline ||
             (deadline == other.deadline && id > other.id);
    }
  };

  void TimerMain();
  TimerId AddLocked(int64_t delay_us, int64_t period_us,
                    std::function<void()> fn);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  TimerId next_id_ = 1;
  TimerId running_id_ = 0;  // callback currently executing, 0 = none
  std::map<TimerId, Entry> entries_;
  std::priority_queue<Due, std::vector<Due>, std::greater<Due>> heap_;
  std::thread thread_;
};

}  // namespace dqr::exec

#endif  // DQR_EXEC_TIMER_WHEEL_H_
