#ifndef DQR_EXEC_WORKER_POOL_H_
#define DQR_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dqr::exec {

// Pool occupancy / dispatch counters, all monotonic except the gauges.
// Exposed per query through the RunStats pool_* fields and process-wide
// through EngineSession::stats() (DESIGN.md §10).
struct PoolStats {
  int threads = 0;             // persistent workers alive
  int busy = 0;                // workers running a task right now (gauge)
  int peak_busy = 0;           // high-water mark of `busy`
  int64_t dispatched = 0;      // total tasks handed to the pool
  int64_t spawn_avoided = 0;   // tasks served by an already-warm worker
  int64_t overflow_spawns = 0; // tasks that needed a transient thread
  int64_t overflow_live = 0;   // transient threads not yet reaped (gauge)
};

class TaskHandle;
class WorkerPool;

// Unified task launcher: dispatches onto `pool` when non-null, else runs
// `fn` on a fresh dedicated thread (the legacy per-query engine path).
// Either way the returned handle's Wait() blocks until `fn` returned.
TaskHandle Launch(WorkerPool* pool, std::function<void()> fn);

// Completion handle for one dispatched task. Copyable (shared state);
// Wait() blocks until the task body returned. A default-constructed
// handle is empty and Wait() returns immediately.
class TaskHandle {
 public:
  TaskHandle() = default;

  void Wait() const;
  bool valid() const { return state_ != nullptr; }
  // True when the task ran on a warm persistent worker (no thread was
  // spawned for it); false for overflow / legacy dedicated threads.
  bool warm_start() const;

 private:
  friend class WorkerPool;
  friend TaskHandle Launch(WorkerPool* pool, std::function<void()> fn);

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool warm = false;
    // Dedicated thread backing this task (legacy / overflow path); joined
    // by the first Wait() so no thread outlives its handle.
    std::thread thread;
  };
  std::shared_ptr<State> state_;
};

// A process-lifetime pool of M persistent threads that engine loops
// (solver / validator / speculative, per instance) are dispatched onto,
// replacing the per-query std::thread spawn/join storm (DESIGN.md §10).
//
// Engine tasks are long-running and block on each other (barriers,
// candidate queues), so Dispatch never parks a task behind a busy
// worker: a task is either handed directly to an idle persistent worker
// or run on a transient overflow thread, spawned on the spot. Deadlock
// by queueing is impossible by construction; admission control
// (EngineSession) keeps overflow rare by bounding concurrent queries to
// the pool's task capacity.
class WorkerPool {
 public:
  // num_threads <= 0 resolves DQR_POOL_THREADS, falling back to
  // max(4, 2 * hardware_concurrency) — engine tasks spend most of their
  // life blocked on queues/barriers, so the pool oversubscribes cores by
  // design.
  explicit WorkerPool(int num_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs `fn` concurrently: on an idle persistent worker when one is
  // free, else on a transient overflow thread. Never blocks behind other
  // tasks.
  TaskHandle Dispatch(std::function<void()> fn);

  int thread_count() const { return static_cast<int>(workers_.size()); }
  PoolStats stats() const;

  // The process-wide pool (created on first use, never destroyed, so
  // late overflow reaps can't race static teardown). Sized by
  // DQR_POOL_THREADS.
  static WorkerPool& Shared();

 private:
  struct Worker {
    std::thread thread;
    // Per-worker wakeup (still under the pool mu_): Dispatch signals
    // exactly the worker it handed the task to — notify_all on a shared
    // cv would wake every parked worker per dispatch, which on few cores
    // costs more than the spawn it avoids.
    std::condition_variable cv;
    std::function<void()> task;                  // guarded by pool mu_
    std::shared_ptr<TaskHandle::State> handle;   // guarded by pool mu_
  };

  void WorkerMain(Worker* self);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes idle workers + the destructor
  bool stop_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> idle_;  // stack of workers parked with no task
  // Detached overflow threads still running; the destructor waits for
  // zero so a transient thread can never outlive the pool it counts
  // against.
  int64_t overflow_live_ = 0;

  int busy_ = 0;
  int peak_busy_ = 0;
  int64_t dispatched_ = 0;
  int64_t spawn_avoided_ = 0;
  int64_t overflow_spawns_ = 0;
};

}  // namespace dqr::exec

#endif  // DQR_EXEC_WORKER_POOL_H_
