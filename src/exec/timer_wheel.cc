#include "exec/timer_wheel.h"

namespace dqr::exec {

namespace {
std::chrono::microseconds Micros(int64_t us) {
  return std::chrono::microseconds(us < 0 ? 0 : us);
}
}  // namespace

TimerWheel::TimerWheel() {
  thread_ = std::thread([this] { TimerMain(); });
}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
}

TimerWheel::TimerId TimerWheel::AddLocked(int64_t delay_us, int64_t period_us,
                                          std::function<void()> fn) {
  TimerId id = next_id_++;
  entries_[id] = Entry{period_us, std::move(fn)};
  heap_.push(Due{Clock::now() + Micros(delay_us), id});
  cv_.notify_all();
  return id;
}

TimerWheel::TimerId TimerWheel::AddPeriodic(int64_t period_us,
                                            std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(period_us, period_us, std::move(fn));
}

TimerWheel::TimerId TimerWheel::AddOnce(int64_t delay_us,
                                        std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(delay_us, 0, std::move(fn));
}

void TimerWheel::Cancel(TimerId id) {
  // Real ids start at 1; 0 doubles as "no timer" in callers' slot state
  // (and is running_id_'s idle value, so waiting on it would hang).
  if (id <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  entries_.erase(id);
  // Quiesce: do not return while the callback is mid-flight — unless we
  // *are* the callback (self-cancel from the timer thread).
  if (std::this_thread::get_id() == thread_.get_id()) return;
  cv_.wait(lock, [&] { return running_id_ != id; });
}

int64_t TimerWheel::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

void TimerWheel::TimerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) break;
    if (heap_.empty()) {
      cv_.wait(lock);
      continue;
    }
    Due top = heap_.top();
    if (top.deadline > Clock::now()) {
      cv_.wait_until(lock, top.deadline);
      continue;  // re-evaluate: a nearer timer or stop may have arrived
    }
    heap_.pop();
    auto it = entries_.find(top.id);
    if (it == entries_.end()) continue;  // cancelled while queued
    // Copy out the callback: the entry may be erased (self-cancel) while
    // the lock is dropped.
    std::function<void()> fn = it->second.fn;
    int64_t period_us = it->second.period_us;
    running_id_ = top.id;
    lock.unlock();
    fn();
    lock.lock();
    running_id_ = 0;
    cv_.notify_all();  // wake Cancel() quiescence waiters
    if (period_us > 0) {
      if (entries_.find(top.id) != entries_.end()) {
        Clock::time_point next = top.deadline + Micros(period_us);
        Clock::time_point now = Clock::now();
        // Fell behind: skip missed firings instead of bursting.
        if (next <= now) next = now + Micros(period_us);
        heap_.push(Due{next, top.id});
      }
    } else {
      entries_.erase(top.id);
    }
  }
}

TimerWheel& TimerWheel::Shared() {
  // Leaked on purpose, same as WorkerPool::Shared(): slot teardown may
  // Cancel() timers arbitrarily late in process shutdown.
  static TimerWheel* wheel = new TimerWheel();
  return *wheel;
}

}  // namespace dqr::exec
