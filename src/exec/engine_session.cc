#include "exec/engine_session.h"

#include "obs/profile.h"

#include <algorithm>
#include <cstdlib>

#include "common/stopwatch.h"

namespace dqr::exec {

namespace {

int ResolveMaxConcurrent(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DQR_MAX_CONCURRENT_QUERIES")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  return 8;
}

}  // namespace

EngineSession::EngineSession(EngineSessionOptions options)
    : pool_(options.pool != nullptr ? options.pool : &WorkerPool::Shared()),
      wheel_(options.wheel != nullptr ? options.wheel
                                      : &TimerWheel::Shared()),
      max_concurrent_(ResolveMaxConcurrent(options.max_concurrent_queries)),
      // The in-flight task budget: admitting up to 2x the worker count
      // keeps the pool saturated (engine tasks block on queues/barriers
      // a lot) while bounding overflow spawns.
      task_capacity_(2 * std::max(1, pool_->thread_count())) {}

int64_t EngineSession::TaskDemand(const core::RefineOptions& options) {
  // Solver + validator per instance, plus the speculative loop. The
  // heartbeat/detector/watchdog ride the timer wheel, not the pool.
  const int64_t per_instance = options.speculative ? 3 : 2;
  return per_instance * std::max(1, options.num_instances);
}

double EngineSession::Admit(int64_t demand) {
  Stopwatch wait;
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  const auto admissible = [&] {
    if (ticket != serving_) return false;  // strict FIFO: no overtaking
    if (active_ == 0) return true;         // progress guarantee
    return active_ < max_concurrent_ &&
           tasks_in_flight_ + demand <= task_capacity_;
  };
  const bool waited = !admissible();
  if (waited) {
    ++queued_;
    cv_.wait(lock, admissible);
  }
  ++serving_;
  ++active_;
  peak_ = std::max(peak_, active_);
  tasks_in_flight_ += demand;
  ++admitted_;
  const double waited_s = waited ? wait.ElapsedSeconds() : 0.0;
  wait_s_ += waited_s;
  max_wait_s_ = std::max(max_wait_s_, waited_s);
  // The next ticket may be admissible now (several slots can run
  // concurrently); wake the queue to re-check.
  cv_.notify_all();
  return waited_s;
}

void EngineSession::Release(int64_t demand) {
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  tasks_in_flight_ -= demand;
  cv_.notify_all();
}

namespace {

// Admission wait is measured here, around ExecuteQuery, so the engine
// cannot stamp it itself — patch both the result's stats and (if
// profiling) the already-assembled profile.
void StampAdmissionWait(const core::RefineOptions& opts, double waited_s,
                        core::RunResult* result) {
  result->stats.admission_wait_s = waited_s;
  result->stats.admission_wait.RecordSeconds(waited_s);
  if (opts.profile != nullptr) opts.profile->RecordAdmissionWait(waited_s);
}

}  // namespace

Result<core::RunResult> EngineSession::Execute(
    const searchlight::QuerySpec& query,
    const core::RefineOptions& options) {
  core::RefineOptions opts = options;
  opts.worker_pool = pool_;
  opts.timer_wheel = wheel_;
  const int64_t demand = TaskDemand(opts);
  const double waited_s = Admit(demand);
  Result<core::RunResult> result = core::ExecuteQuery(query, opts);
  Release(demand);
  if (result.ok()) StampAdmissionWait(opts, waited_s, &result.value());
  return result;
}

Result<core::RunResult> EngineSession::ExecuteCached(
    cache::SemanticCache* cache, const cache::CachedQuery& cq,
    const core::RefineOptions& options, cache::CacheOutcome* outcome) {
  core::RefineOptions opts = options;
  opts.worker_pool = pool_;
  opts.timer_wheel = wheel_;
  const int64_t demand = TaskDemand(opts);
  const double waited_s = Admit(demand);
  Result<core::RunResult> result =
      cache::ExecuteQueryCached(cache, cq, opts, outcome);
  Release(demand);
  if (result.ok()) StampAdmissionWait(opts, waited_s, &result.value());
  return result;
}

SessionStats EngineSession::stats() const {
  SessionStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.active_slots = active_;
    out.peak_slots = peak_;
    out.queries_admitted = admitted_;
    out.queries_queued = queued_;
    out.admission_wait_s = wait_s_;
    out.max_admission_wait_s = max_wait_s_;
    out.tasks_in_flight = tasks_in_flight_;
  }
  out.pool = pool_->stats();
  return out;
}

EngineSession& EngineSession::Shared() {
  static EngineSession* session = new EngineSession();
  return *session;
}

}  // namespace dqr::exec
