#include "exec/worker_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace dqr::exec {

namespace {

int ResolvePoolThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DQR_POOL_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  // Engine tasks block on barriers and candidate queues for most of
  // their life, so the default oversubscribes cores: enough workers that
  // a handful of concurrent queries land warm.
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(4, 2 * std::max(hw, 1));
}

}  // namespace

void TaskHandle::Wait() const {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  std::thread backing;
  if (state_->thread.joinable()) backing = std::move(state_->thread);
  lock.unlock();
  if (backing.joinable()) backing.join();
}

bool TaskHandle::warm_start() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->warm;
}

WorkerPool::WorkerPool(int num_threads) {
  int n = ResolvePoolThreads(num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    workers_.push_back(std::move(worker));
    raw->thread = std::thread([this, raw] { WorkerMain(raw); });
  }
  // Wait for every worker to park before accepting dispatches: a fresh
  // thread takes a while to reach idle_, and dispatches arriving in that
  // window would all overflow even though the pool is nominally free.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return idle_.size() == workers_.size(); });
}

WorkerPool::~WorkerPool() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_ = true;
  cv_.notify_all();
  for (auto& worker : workers_) worker->cv.notify_all();
  // Transient overflow threads are detached; they only touch this pool
  // to decrement overflow_live_, which strictly precedes their handle's
  // completion signal, so waiting for zero here makes destruction safe
  // even if some caller dropped a handle without Wait().
  cv_.wait(lock, [&] { return overflow_live_ == 0; });
  lock.unlock();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void WorkerPool::WorkerMain(Worker* self) {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.push_back(self);
  cv_.notify_all();  // the constructor waits for a fully parked pool
  for (;;) {
    self->cv.wait(lock, [&] { return stop_ || self->task != nullptr; });
    if (self->task) {
      std::function<void()> task = std::move(self->task);
      self->task = nullptr;
      std::shared_ptr<TaskHandle::State> handle = std::move(self->handle);
      lock.unlock();
      task();
      {
        std::lock_guard<std::mutex> signal(handle->mu);
        handle->done = true;
      }
      handle->cv.notify_all();
      lock.lock();
      --busy_;
      idle_.push_back(self);
      continue;
    }
    if (stop_) break;
  }
}

TaskHandle WorkerPool::Dispatch(std::function<void()> fn) {
  TaskHandle handle;
  handle.state_ = std::make_shared<TaskHandle::State>();
  std::shared_ptr<TaskHandle::State> state = handle.state_;
  std::unique_lock<std::mutex> lock(mu_);
  ++dispatched_;
  if (!idle_.empty() && !stop_) {
    Worker* worker = idle_.back();
    idle_.pop_back();
    ++busy_;
    peak_busy_ = std::max(peak_busy_, busy_);
    ++spawn_avoided_;
    state->warm = true;
    worker->handle = std::move(state);
    worker->task = std::move(fn);
    lock.unlock();
    worker->cv.notify_one();
    return handle;
  }
  // No idle worker: run on a transient thread rather than queueing.
  // Engine tasks block on each other (barriers, queues), so parking one
  // behind a busy worker could deadlock the query it belongs to.
  ++overflow_spawns_;
  ++overflow_live_;
  lock.unlock();
  std::thread([this, state, task = std::move(fn)] {
    task();
    {
      // Notify under the lock: once overflow_live_ hits zero and the
      // lock drops, the destructor may free the pool, so this thread
      // must not touch `this` after the critical section.
      std::lock_guard<std::mutex> pool_lock(mu_);
      --overflow_live_;
      cv_.notify_all();
    }
    {
      std::lock_guard<std::mutex> signal(state->mu);
      state->done = true;
    }
    state->cv.notify_all();
  }).detach();
  return handle;
}

PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats out;
  out.threads = static_cast<int>(workers_.size());
  out.busy = busy_;
  out.peak_busy = peak_busy_;
  out.dispatched = dispatched_;
  out.spawn_avoided = spawn_avoided_;
  out.overflow_spawns = overflow_spawns_;
  out.overflow_live = overflow_live_;
  return out;
}

WorkerPool& WorkerPool::Shared() {
  // Leaked on purpose: overflow threads and late Wait() calls must never
  // race static destruction at process exit.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

TaskHandle Launch(WorkerPool* pool, std::function<void()> fn) {
  if (pool != nullptr) return pool->Dispatch(std::move(fn));
  TaskHandle handle;
  handle.state_ = std::make_shared<TaskHandle::State>();
  std::shared_ptr<TaskHandle::State> state = handle.state_;
  state->thread = std::thread([state, task = std::move(fn)] {
    task();
    {
      std::lock_guard<std::mutex> signal(state->mu);
      state->done = true;
    }
    state->cv.notify_all();
  });
  return handle;
}

}  // namespace dqr::exec
