#ifndef DQR_ARRAY_IO_H_
#define DQR_ARRAY_IO_H_

#include <memory>
#include <string>

#include "array/array.h"
#include "common/status.h"

namespace dqr::array {

// Simple binary persistence for arrays, so generated data sets can be
// saved once and reloaded across benchmark runs and tools.
//
// Format (native endianness, not a portable interchange format):
//   magic "DQRA" | u32 version | u32 name_len | name bytes
//   | u32 attr_len | attr bytes | i64 length | i64 chunk_size
//   | length doubles
Status SaveArray(const Array& array, const std::string& path);

// Loads an array previously written by SaveArray. Returns
// InvalidArgument on malformed or truncated files.
Result<std::shared_ptr<Array>> LoadArray(const std::string& path);

}  // namespace dqr::array

#endif  // DQR_ARRAY_IO_H_
