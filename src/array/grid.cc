#include "array/grid.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace dqr::array {
namespace {

void BusyWait(int64_t ns) {
  if (ns <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < ns) {
  }
}

}  // namespace

Result<std::shared_ptr<Grid>> Grid::FromData(GridSchema schema,
                                             std::vector<double> data) {
  if (schema.rows < 0 || schema.cols < 0) {
    return InvalidArgumentError("grid extents must be non-negative");
  }
  if (schema.tile_size <= 0) {
    return InvalidArgumentError("tile size must be positive");
  }
  if (static_cast<int64_t>(data.size()) != schema.rows * schema.cols) {
    return InvalidArgumentError("data size does not match grid extents");
  }
  return std::shared_ptr<Grid>(new Grid(std::move(schema),
                                        std::move(data)));
}

Grid::Grid(GridSchema schema, std::vector<double> data)
    : schema_(std::move(schema)), data_(std::move(data)) {}

double Grid::At(int64_t row, int64_t col) const {
  DQR_CHECK(row >= 0 && row < schema_.rows);
  DQR_CHECK(col >= 0 && col < schema_.cols);
  ChargeAccess(1, 1);
  return data_[static_cast<size_t>(row * schema_.cols + col)];
}

WindowAggregates Grid::AggregateRect(int64_t r0, int64_t r1, int64_t c0,
                                     int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= schema_.rows);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= schema_.cols);
  WindowAggregates out;
  out.min = data_[static_cast<size_t>(r0 * schema_.cols + c0)];
  out.max = out.min;
  for (int64_t r = r0; r < r1; ++r) {
    const double* row = &data_[static_cast<size_t>(r * schema_.cols)];
    for (int64_t c = c0; c < c1; ++c) {
      const double v = row[c];
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
      out.sum += v;
    }
  }
  out.count = (r1 - r0) * (c1 - c0);

  const int64_t ts = schema_.tile_size;
  const int64_t tiles =
      ((r1 - 1) / ts - r0 / ts + 1) * ((c1 - 1) / ts - c0 / ts + 1);
  ChargeAccess(tiles, out.count);
  return out;
}

void Grid::MaxOverRectsBatch(const int64_t* r0, const int64_t* r1,
                             const int64_t* c0, const int64_t* c1,
                             int64_t n, double* out) const {
  const int64_t ts = schema_.tile_size;
  for (int64_t k = 0; k < n; ++k) {
    DQR_CHECK(0 <= r0[k] && r0[k] < r1[k] && r1[k] <= schema_.rows);
    DQR_CHECK(0 <= c0[k] && c0[k] < c1[k] && c1[k] <= schema_.cols);
    const int64_t width = c1[k] - c0[k];
    double mx = data_[static_cast<size_t>(r0[k] * schema_.cols + c0[k])];
    for (int64_t r = r0[k]; r < r1[k]; ++r) {
      const double* row =
          &data_[static_cast<size_t>(r * schema_.cols + c0[k])];
      mx = std::max(mx, simd::MaxReduce(row, width));
    }
    out[k] = mx;
    const int64_t tiles = ((r1[k] - 1) / ts - r0[k] / ts + 1) *
                          ((c1[k] - 1) / ts - c0[k] / ts + 1);
    ChargeAccess(tiles, (r1[k] - r0[k]) * width);
  }
}

void Grid::ChargeAccess(int64_t tiles, int64_t cells) const {
  tiles_touched_.fetch_add(tiles, std::memory_order_relaxed);
  cells_read_.fetch_add(cells, std::memory_order_relaxed);
  BusyWait(tile_cost_ns_ * tiles);
}

AccessStats Grid::GetAccessStats() const {
  AccessStats stats;
  stats.chunks_touched = tiles_touched_.load(std::memory_order_relaxed);
  stats.cells_read = cells_read_.load(std::memory_order_relaxed);
  return stats;
}

void Grid::ResetAccessStats() {
  tiles_touched_.store(0, std::memory_order_relaxed);
  cells_read_.store(0, std::memory_order_relaxed);
}

}  // namespace dqr::array
