#ifndef DQR_ARRAY_ARRAY_H_
#define DQR_ARRAY_ARRAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "array/schema.h"
#include "common/status.h"

namespace dqr::array {

// Exact aggregates of a window of cells; what the Validator computes over
// the base data (as opposed to the Solver's synopsis estimates).
struct WindowAggregates {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  int64_t count = 0;

  double avg() const { return count == 0 ? 0.0 : sum / count; }
};

// Cumulative access accounting for one Array. Chunk touches model I/O: in
// the real Searchlight the Validator's reads of the base array are the
// dominant cost; benchmarks can attach a per-chunk penalty to reproduce
// that balance at laptop scale.
struct AccessStats {
  int64_t chunks_touched = 0;
  int64_t cells_read = 0;
};

// An immutable, chunked, one-dimensional array of doubles.
//
// Thread-compatible for reads: all accessors are const and may be called
// concurrently from solver/validator threads. Stats counters are atomic.
//
// Example:
//   auto arr = Array::FromData({.name = "demo", .length = 4}, {1, 2, 3, 4});
//   WindowAggregates w = arr->AggregateWindow(0, 4);  // sum == 10
class Array {
 public:
  // Builds an array owning `data`; data.size() must equal schema.length.
  // Returns InvalidArgument on schema/data mismatch.
  static Result<std::shared_ptr<Array>> FromData(ArraySchema schema,
                                                 std::vector<double> data);

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;

  const ArraySchema& schema() const { return schema_; }
  int64_t length() const { return schema_.length; }

  // Value at `pos`; pos must be in [0, length).
  double At(int64_t pos) const;

  // Exact aggregates over the half-open window [lo, hi); the window must
  // be a non-empty subrange of [0, length).
  WindowAggregates AggregateWindow(int64_t lo, int64_t hi) const;

  // Exact maximum over [lo, hi). Convenience wrapper.
  double MaxOver(int64_t lo, int64_t hi) const {
    return AggregateWindow(lo, hi).max;
  }

  // Exact extrema over a batch of half-open windows:
  // out[i] = max (resp. min) over [lo[i], hi[i]). Values and per-window
  // access accounting are identical to calling MaxOver per window; the
  // scans use the SIMD kernels in common/simd.h (min/max folds are
  // order-insensitive, so results match the scalar walk bit for bit).
  void MaxOverBatch(const int64_t* lo, const int64_t* hi, int64_t n,
                    double* out) const;
  void MinOverBatch(const int64_t* lo, const int64_t* hi, int64_t n,
                    double* out) const;

  // Per-chunk artificial access cost in nanoseconds of busy-waiting; 0 by
  // default. Used by benchmarks to emulate disk-resident data, keeping the
  // Solver-fast / Validator-slow balance of the original system.
  void set_chunk_access_cost_ns(int64_t ns) { chunk_cost_ns_ = ns; }
  int64_t chunk_access_cost_ns() const { return chunk_cost_ns_; }

  AccessStats GetAccessStats() const;
  void ResetAccessStats();

  // Full copy of the cell values in positional order. Bulk export for
  // persistence/tooling: does not count toward access stats and pays no
  // simulated I/O cost.
  std::vector<double> Dump() const;

 private:
  explicit Array(ArraySchema schema, std::vector<double> data);

  void ChargeAccess(int64_t first_chunk, int64_t last_chunk,
                    int64_t cells) const;

  ArraySchema schema_;
  // Chunked storage; chunk i covers [i * chunk_size, ...).
  std::vector<std::vector<double>> chunks_;
  int64_t chunk_cost_ns_ = 0;

  mutable std::atomic<int64_t> chunks_touched_{0};
  mutable std::atomic<int64_t> cells_read_{0};
};

}  // namespace dqr::array

#endif  // DQR_ARRAY_ARRAY_H_
