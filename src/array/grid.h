#ifndef DQR_ARRAY_GRID_H_
#define DQR_ARRAY_GRID_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "array/array.h"
#include "common/status.h"

namespace dqr::array {

// Describes a two-dimensional array of a single double attribute, stored
// in square tiles — the substrate for the paper's 2-D synthetic workload
// (Searchlight's original data sets are multidimensional; the refinement
// framework above is dimension-agnostic).
struct GridSchema {
  std::string name;
  std::string attribute = "value";
  int64_t rows = 0;     // extent of dimension 0 (y)
  int64_t cols = 0;     // extent of dimension 1 (x)
  int64_t tile_size = 256;  // square tiles of tile_size x tile_size cells

  int64_t tile_rows() const {
    return tile_size <= 0 ? 0 : (rows + tile_size - 1) / tile_size;
  }
  int64_t tile_cols() const {
    return tile_size <= 0 ? 0 : (cols + tile_size - 1) / tile_size;
  }
};

// An immutable, tiled, two-dimensional array of doubles with exact
// rectangle aggregates. Thread-compatible for reads; access counters are
// atomic. Rectangles are half-open: rows [r0, r1) x cols [c0, c1).
class Grid {
 public:
  // Builds a grid owning `data` in row-major order; data.size() must be
  // rows * cols.
  static Result<std::shared_ptr<Grid>> FromData(GridSchema schema,
                                                std::vector<double> data);

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  const GridSchema& schema() const { return schema_; }
  int64_t rows() const { return schema_.rows; }
  int64_t cols() const { return schema_.cols; }

  double At(int64_t row, int64_t col) const;

  // Exact aggregates over the rectangle [r0, r1) x [c0, c1); must be a
  // non-empty subrectangle of the grid.
  WindowAggregates AggregateRect(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const;

  double MaxOver(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const {
    return AggregateRect(r0, r1, c0, c1).max;
  }

  // Exact maxima over a batch of rectangles:
  // out[i] = max over [r0[i], r1[i]) x [c0[i], c1[i]). Values and
  // per-rectangle access accounting are identical to calling MaxOver per
  // rectangle; rows are folded with the SIMD kernels in common/simd.h
  // (max folds are order-insensitive, so results match the scalar walk
  // bit for bit).
  void MaxOverRectsBatch(const int64_t* r0, const int64_t* r1,
                         const int64_t* c0, const int64_t* c1, int64_t n,
                         double* out) const;

  // Simulated I/O cost per touched tile (see Array).
  void set_tile_access_cost_ns(int64_t ns) { tile_cost_ns_ = ns; }

  AccessStats GetAccessStats() const;
  void ResetAccessStats();

 private:
  Grid(GridSchema schema, std::vector<double> data);

  void ChargeAccess(int64_t tiles, int64_t cells) const;

  GridSchema schema_;
  // Row-major storage; the tile structure is logical (tiles account for
  // simulated I/O, rows are contiguous for scan speed).
  std::vector<double> data_;
  int64_t tile_cost_ns_ = 0;

  mutable std::atomic<int64_t> tiles_touched_{0};
  mutable std::atomic<int64_t> cells_read_{0};
};

}  // namespace dqr::array

#endif  // DQR_ARRAY_GRID_H_
