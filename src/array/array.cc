#include "array/array.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace dqr::array {
namespace {

// Busy-waits for roughly `ns` nanoseconds. A sleep would be descheduled
// and under-account on loaded machines; benchmarks want a CPU-visible cost.
void BusyWait(int64_t ns) {
  if (ns <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < ns) {
  }
}

}  // namespace

Result<std::shared_ptr<Array>> Array::FromData(ArraySchema schema,
                                               std::vector<double> data) {
  if (schema.length < 0) {
    return InvalidArgumentError("array length must be non-negative");
  }
  if (schema.chunk_size <= 0) {
    return InvalidArgumentError("chunk size must be positive");
  }
  if (static_cast<int64_t>(data.size()) != schema.length) {
    return InvalidArgumentError("data size does not match schema length");
  }
  return std::shared_ptr<Array>(
      new Array(std::move(schema), std::move(data)));
}

Array::Array(ArraySchema schema, std::vector<double> data)
    : schema_(std::move(schema)) {
  const int64_t n = schema_.length;
  const int64_t cs = schema_.chunk_size;
  chunks_.reserve(static_cast<size_t>(schema_.num_chunks()));
  for (int64_t lo = 0; lo < n; lo += cs) {
    const int64_t hi = std::min(n, lo + cs);
    chunks_.emplace_back(data.begin() + lo, data.begin() + hi);
  }
}

double Array::At(int64_t pos) const {
  DQR_CHECK(pos >= 0 && pos < schema_.length);
  const int64_t chunk = pos / schema_.chunk_size;
  ChargeAccess(chunk, chunk, 1);
  return chunks_[static_cast<size_t>(chunk)]
                [static_cast<size_t>(pos % schema_.chunk_size)];
}

WindowAggregates Array::AggregateWindow(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= schema_.length);
  const int64_t cs = schema_.chunk_size;
  WindowAggregates out;
  out.min = chunks_[static_cast<size_t>(lo / cs)]
                   [static_cast<size_t>(lo % cs)];
  out.max = out.min;

  int64_t pos = lo;
  while (pos < hi) {
    const int64_t chunk = pos / cs;
    const int64_t chunk_end = std::min(hi, (chunk + 1) * cs);
    const std::vector<double>& values = chunks_[static_cast<size_t>(chunk)];
    for (int64_t p = pos; p < chunk_end; ++p) {
      const double v = values[static_cast<size_t>(p % cs)];
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
      out.sum += v;
    }
    pos = chunk_end;
  }
  out.count = hi - lo;
  ChargeAccess(lo / cs, (hi - 1) / cs, hi - lo);
  return out;
}

void Array::MaxOverBatch(const int64_t* lo, const int64_t* hi, int64_t n,
                         double* out) const {
  const int64_t cs = schema_.chunk_size;
  for (int64_t k = 0; k < n; ++k) {
    const int64_t l = lo[k];
    const int64_t h = hi[k];
    DQR_CHECK(l >= 0 && l < h && h <= schema_.length);
    double mx = chunks_[static_cast<size_t>(l / cs)]
                       [static_cast<size_t>(l % cs)];
    int64_t pos = l;
    while (pos < h) {
      const int64_t chunk = pos / cs;
      const int64_t chunk_end = std::min(h, (chunk + 1) * cs);
      const std::vector<double>& values =
          chunks_[static_cast<size_t>(chunk)];
      mx = std::max(
          mx, simd::MaxReduce(values.data() + pos % cs, chunk_end - pos));
      pos = chunk_end;
    }
    out[k] = mx;
    ChargeAccess(l / cs, (h - 1) / cs, h - l);
  }
}

void Array::MinOverBatch(const int64_t* lo, const int64_t* hi, int64_t n,
                         double* out) const {
  const int64_t cs = schema_.chunk_size;
  for (int64_t k = 0; k < n; ++k) {
    const int64_t l = lo[k];
    const int64_t h = hi[k];
    DQR_CHECK(l >= 0 && l < h && h <= schema_.length);
    double mn = chunks_[static_cast<size_t>(l / cs)]
                       [static_cast<size_t>(l % cs)];
    int64_t pos = l;
    while (pos < h) {
      const int64_t chunk = pos / cs;
      const int64_t chunk_end = std::min(h, (chunk + 1) * cs);
      const std::vector<double>& values =
          chunks_[static_cast<size_t>(chunk)];
      mn = std::min(
          mn, simd::MinReduce(values.data() + pos % cs, chunk_end - pos));
      pos = chunk_end;
    }
    out[k] = mn;
    ChargeAccess(l / cs, (h - 1) / cs, h - l);
  }
}

void Array::ChargeAccess(int64_t first_chunk, int64_t last_chunk,
                         int64_t cells) const {
  const int64_t chunks = last_chunk - first_chunk + 1;
  chunks_touched_.fetch_add(chunks, std::memory_order_relaxed);
  cells_read_.fetch_add(cells, std::memory_order_relaxed);
  BusyWait(chunk_cost_ns_ * chunks);
}

AccessStats Array::GetAccessStats() const {
  AccessStats stats;
  stats.chunks_touched = chunks_touched_.load(std::memory_order_relaxed);
  stats.cells_read = cells_read_.load(std::memory_order_relaxed);
  return stats;
}

void Array::ResetAccessStats() {
  chunks_touched_.store(0, std::memory_order_relaxed);
  cells_read_.store(0, std::memory_order_relaxed);
}

std::vector<double> Array::Dump() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(schema_.length));
  for (const std::vector<double>& chunk : chunks_) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

}  // namespace dqr::array
