#include "array/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace dqr::array {
namespace {

constexpr char kMagic[4] = {'D', 'Q', 'R', 'A'};
constexpr uint32_t kVersion = 1;

// RAII FILE* holder (the project uses no exceptions; fclose on all paths).
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadBytes(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

bool WriteString(std::FILE* f, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  return WriteBytes(f, &len, sizeof(len)) &&
         (len == 0 || WriteBytes(f, s.data(), len));
}

bool ReadString(std::FILE* f, std::string* s) {
  uint32_t len = 0;
  if (!ReadBytes(f, &len, sizeof(len))) return false;
  if (len > (1u << 20)) return false;  // sanity cap on names
  s->resize(len);
  return len == 0 || ReadBytes(f, s->data(), len);
}

}  // namespace

Status SaveArray(const Array& array, const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  const ArraySchema& schema = array.schema();
  bool ok = WriteBytes(f, kMagic, sizeof(kMagic)) &&
            WriteBytes(f, &kVersion, sizeof(kVersion)) &&
            WriteString(f, schema.name) &&
            WriteString(f, schema.attribute) &&
            WriteBytes(f, &schema.length, sizeof(schema.length)) &&
            WriteBytes(f, &schema.chunk_size, sizeof(schema.chunk_size));
  if (ok) {
    const std::vector<double> data = array.Dump();
    ok = WriteBytes(f, data.data(), data.size() * sizeof(double));
  }
  if (!ok) return InternalError("short write to " + path);
  return Status::Ok();
}

Result<std::shared_ptr<Array>> LoadArray(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFoundError("cannot open: " + path);
  }
  std::FILE* f = file.get();

  char magic[4];
  uint32_t version = 0;
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("not a dqr array file: " + path);
  }
  if (!ReadBytes(f, &version, sizeof(version)) || version != kVersion) {
    return InvalidArgumentError("unsupported array file version");
  }

  ArraySchema schema;
  if (!ReadString(f, &schema.name) || !ReadString(f, &schema.attribute) ||
      !ReadBytes(f, &schema.length, sizeof(schema.length)) ||
      !ReadBytes(f, &schema.chunk_size, sizeof(schema.chunk_size))) {
    return InvalidArgumentError("truncated array header: " + path);
  }
  if (schema.length < 0 || schema.chunk_size <= 0) {
    return InvalidArgumentError("corrupt array header: " + path);
  }

  std::vector<double> data(static_cast<size_t>(schema.length));
  if (!ReadBytes(f, data.data(), data.size() * sizeof(double))) {
    return InvalidArgumentError("truncated array data: " + path);
  }
  return Array::FromData(std::move(schema), std::move(data));
}

}  // namespace dqr::array
