#ifndef DQR_ARRAY_SCHEMA_H_
#define DQR_ARRAY_SCHEMA_H_

#include <cstdint>
#include <string>

namespace dqr::array {

// Describes a one-dimensional array of a single double attribute, chunked
// along its only dimension — the SciDB-style substrate the engine queries.
// All of the paper's workloads (waveform intervals) are one-dimensional;
// the CP layer above is dimension-agnostic (see DESIGN.md §3).
struct ArraySchema {
  // Logical name, e.g. "mimic_abp"; appears in stats and logs.
  std::string name;
  // Name of the single attribute, e.g. "ABP".
  std::string attribute = "value";
  // Total number of cells along the dimension.
  int64_t length = 0;
  // Cells per chunk; the unit of (simulated) I/O.
  int64_t chunk_size = 1 << 16;

  int64_t num_chunks() const {
    return chunk_size <= 0 ? 0 : (length + chunk_size - 1) / chunk_size;
  }
};

}  // namespace dqr::array

#endif  // DQR_ARRAY_SCHEMA_H_
