#ifndef DQR_CORE_TRACKER_H_
#define DQR_CORE_TRACKER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "core/options.h"
#include "core/rank.h"
#include "core/skyline.h"
#include "core/solution.h"

namespace dqr::core {

// Execution phase of a refined query (§4.3): while fewer than k exact
// results exist the engine records fails for possible relaxation; once k
// exact results are found it stops fail tracking and starts constraining.
enum class QueryPhase { kCollecting, kConstraining };

// Outcome of offering a validated solution to the tracker.
enum class AddOutcome {
  // An exact result (RP == 0).
  kAcceptedExact,
  // A relaxed result currently within the best-k by RP.
  kAcceptedRelaxed,
  // Worse than the current top-k (or constraining dominated/outranked it).
  kRejected,
  // The same assignment was already tracked (speculative re-exploration).
  kDuplicate,
};

// The shared, thread-safe store of validated results for one query across
// all instances. Maintains:
//   * the best-k solutions by RP (relaxation top-k) and the derived MRP;
//   * once constraining activates, the top-k by RK and the derived MRK,
//     or the skyline set;
//   * every exact result when no constraining applies (the manual "Off"
//     baseline needs them all).
//
// MRP is monotonically non-increasing and MRK monotonically non-decreasing
// over a run, which is what makes the engine's pre/post checks and eager
// fail discarding safe (see DESIGN.md §5).
class ResultTracker {
 public:
  // Optional diversity configuration (see RefineOptions::result_spacing):
  // the top sets track `pool_k` results and FinalResults() greedily
  // selects up to k results no two of which lie within a common spacing
  // box.
  struct Diversity {
    // Per-variable spacing; empty disables the filter.
    std::vector<int64_t> spacing;
    // Tracked pool size; must be >= k. Ignored when spacing is empty.
    int64_t pool_k = 0;
  };

  // `rank_model` may be null when mode != kRank/kSkyline; otherwise it
  // must outlive the tracker. k == 0 disables cardinality handling (all
  // exact results are kept; phase never flips).
  ResultTracker(int64_t k, ConstrainMode mode,
                const RankModel* rank_model);
  ResultTracker(int64_t k, ConstrainMode mode, const RankModel* rank_model,
                Diversity diversity);

  // Offers a validated solution (rp/rk must be filled in by the caller).
  AddOutcome Add(Solution solution);

  QueryPhase phase() const;
  // Maximum Relaxation Penalty: the worst RP a solution may have and
  // still enter the current top-k; 1.0 while fewer than k are tracked.
  double Mrp() const;
  // Minimum result RanK: the rank a solution must beat to enter the
  // top-k; -infinity while fewer than k exact results are ranked.
  double Mrk() const;
  int64_t exact_count() const;

  int64_t mrp_updates() const;
  int64_t mrk_updates() const;

  // True iff the current skyline dominates the sub-tree best corner
  // (skyline constraining's dynamic pruning check). Always false outside
  // skyline constraining.
  bool SkylineDominatesBox(const std::vector<double>& corner) const;

  // Assembles the query's final results:
  //   * constraining active: top-k by RK (desc) or the skyline set;
  //   * >= k exact results without constraining (or k == 0): all exact
  //     results in point order;
  //   * otherwise: best-k by RP (exact results first).
  std::vector<Solution> FinalResults() const;

 private:
  struct ByPenalty {
    bool operator()(const Solution& a, const Solution& b) const {
      if (a.rp != b.rp) return a.rp < b.rp;
      return a.point < b.point;
    }
  };
  struct ByRank {
    bool operator()(const Solution& a, const Solution& b) const {
      if (a.rk != b.rk) return a.rk > b.rk;
      return a.point < b.point;
    }
  };

  AddOutcome AddLocked(Solution solution);
  void MaybeStartConstraining();
  // True iff `a` and `b` lie within a common spacing box.
  bool Conflicts(const std::vector<int64_t>& a,
                 const std::vector<int64_t>& b) const;
  // Greedy spacing filter over a quality-ordered candidate list.
  std::vector<Solution> SelectDiverse(std::vector<Solution> ordered) const;

  const int64_t k_;
  // Cardinality of the tracked top sets: k_, or the diversity pool size.
  const int64_t pool_k_;
  const ConstrainMode mode_;
  const RankModel* rank_model_;
  const Diversity diversity_;

  mutable std::mutex mu_;
  QueryPhase phase_ = QueryPhase::kCollecting;
  std::set<std::vector<int64_t>> seen_;
  // Best-k by RP; exact results have rp == 0.
  std::set<Solution, ByPenalty> relax_top_;
  // All exact results (kept when mode == kNone or k == 0, and used to
  // seed the rank tracker when constraining activates).
  std::vector<Solution> exact_all_;
  bool keep_all_exact_ = false;
  // Top-k by RK, populated in the constraining phase.
  std::set<Solution, ByRank> rank_top_;
  Skyline skyline_;
  int64_t exact_count_ = 0;
  int64_t mrp_updates_ = 0;
  int64_t mrk_updates_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_TRACKER_H_
