#include "core/fail_registry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dqr::core {

int64_t FailRecord::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(FailRecord));
  bytes += static_cast<int64_t>(box.size() * sizeof(cp::IntDomain));
  bytes += static_cast<int64_t>(estimates.size() * sizeof(Interval));
  bytes += static_cast<int64_t>(evaluated.size());
  bytes += static_cast<int64_t>(violated.size() * sizeof(int));
  for (const auto& state : states) {
    if (state != nullptr) bytes += state->SizeBytes();
  }
  return bytes;
}

FailRegistry::FailRegistry(ReplayOrder order, int64_t max_fails)
    : order_(order), max_fails_(max_fails) {
  DQR_CHECK(max_fails_ > 0);
}

void FailRegistry::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void FailRegistry::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t best = i;
    if (left < n && Before(heap_[left], heap_[best])) best = left;
    if (right < n && Before(heap_[right], heap_[best])) best = right;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void FailRegistry::PushLocked(FailRecord record) {
  state_bytes_ += record.MemoryBytes();
  peak_state_bytes_ = std::max(peak_state_bytes_, state_bytes_);
  if (order_ == ReplayOrder::kBestFirst) {
    heap_.push_back(std::move(record));
    SiftUp(heap_.size() - 1);
  } else {
    fifo_.push_back(std::move(record));
  }
  peak_size_ = std::max(
      peak_size_, static_cast<int64_t>(order_ == ReplayOrder::kBestFirst
                                           ? heap_.size()
                                           : fifo_.size()));
}

bool FailRegistry::PopAnyLocked(FailRecord* out) {
  if (order_ == ReplayOrder::kBestFirst) {
    if (heap_.empty()) return false;
    *out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  } else {
    if (fifo_.empty()) return false;
    *out = std::move(fifo_.front());
    fifo_.pop_front();
  }
  state_bytes_ -= out->MemoryBytes();
  return true;
}

void FailRegistry::Record(FailRecord record, double mrp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.brp > mrp) {
    ++discarded_at_record_;
    return;
  }
  const int64_t count =
      static_cast<int64_t>(order_ == ReplayOrder::kBestFirst
                               ? heap_.size()
                               : fifo_.size());
  if (count >= max_fails_) {
    ++dropped_full_;
    return;
  }
  record.seq = next_seq_++;
  ++recorded_;
  PushLocked(std::move(record));
}

std::optional<FailRecord> FailRegistry::Pop(double mrp) {
  std::lock_guard<std::mutex> lock(mu_);
  FailRecord record;
  while (PopAnyLocked(&record)) {
    if (record.brp > mrp) {
      // Became hopeless since it was recorded (MRP shrank).
      ++discarded_at_pop_;
      continue;
    }
    return record;
  }
  return std::nullopt;
}

FailRecord* FailRegistry::Lease(double mrp, int instance) {
  std::lock_guard<std::mutex> lock(mu_);
  FailRecord record;
  while (PopAnyLocked(&record)) {
    if (record.brp > mrp) {
      ++discarded_at_pop_;
      continue;
    }
    LeaseEntry entry;
    entry.record = std::make_unique<FailRecord>(std::move(record));
    FailRecord* out = entry.record.get();
    leases_[instance].push_back(std::move(entry));
    ++leased_count_;
    return out;
  }
  return nullptr;
}

size_t FailRegistry::FindLeaseLocked(int instance,
                                     const FailRecord* record) const {
  const auto it = leases_.find(instance);
  DQR_CHECK(it != leases_.end());
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i].record.get() == record) return i;
  }
  DQR_CHECK(false);  // not a live lease of this instance
  return 0;
}

void FailRegistry::Commit(int instance, FailRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slots = leases_[instance];
  slots.erase(slots.begin() +
              static_cast<ptrdiff_t>(FindLeaseLocked(instance, record)));
  --leased_count_;
}

void FailRegistry::Requeue(int instance, FailRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slots = leases_[instance];
  const size_t i = FindLeaseLocked(instance, record);
  PushLocked(std::move(*slots[i].record));
  slots.erase(slots.begin() + static_cast<ptrdiff_t>(i));
  --leased_count_;
}

void FailRegistry::AbandonLease(int instance, FailRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  leases_[instance][FindLeaseLocked(instance, record)].abandoned = true;
}

int64_t FailRegistry::ReclaimFrom(int instance) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = leases_.find(instance);
  if (it == leases_.end()) return 0;
  int64_t count = 0;
  auto& slots = it->second;
  for (size_t i = 0; i < slots.size();) {
    if (!slots[i].abandoned) {
      ++i;  // still being unwound by the dying instance; next pass
      continue;
    }
    PushLocked(std::move(*slots[i].record));
    slots.erase(slots.begin() + static_cast<ptrdiff_t>(i));
    --leased_count_;
    ++count;
  }
  reclaimed_ += count;
  return count;
}

size_t FailRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_ == ReplayOrder::kBestFirst ? heap_.size() : fifo_.size();
}

size_t FailRegistry::leased_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leased_count_;
}

int64_t FailRegistry::reclaimed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reclaimed_;
}

void FailRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.clear();
  fifo_.clear();
  state_bytes_ = 0;
}

int64_t FailRegistry::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}
int64_t FailRegistry::discarded_at_record() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_at_record_;
}
int64_t FailRegistry::discarded_at_pop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_at_pop_;
}
int64_t FailRegistry::dropped_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_full_;
}
int64_t FailRegistry::peak_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_size_;
}
int64_t FailRegistry::state_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_bytes_;
}
int64_t FailRegistry::peak_state_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_state_bytes_;
}

}  // namespace dqr::core
