#include "core/instance.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/bundle.h"
#include "exec/worker_pool.h"
#include "core/fail_registry.h"
#include "core/fault.h"
#include "cp/search.h"
#include "obs/trace.h"
#include "searchlight/candidate.h"
#include "searchlight/candidate_queue.h"

namespace dqr::core {
namespace {

using searchlight::Candidate;
using searchlight::CandidateQueue;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Idle back-off of the speculative solver while the validator is busy.
constexpr auto kSpeculationNap = std::chrono::microseconds(200);

// Folds a thread-local bundle's memo-cache counters into that thread's
// RunStats when the bundle's scope ends — including the early returns the
// fault-injection paths take.
class MemoStatsGuard {
 public:
  MemoStatsGuard(const ConstraintBundle* bundle, RunStats* stats)
      : bundle_(bundle), stats_(stats) {}
  MemoStatsGuard(const MemoStatsGuard&) = delete;
  MemoStatsGuard& operator=(const MemoStatsGuard&) = delete;
  ~MemoStatsGuard() {
    const cp::FunctionMemoStats m = bundle_->MemoStats();
    stats_->estimator_cache_hits += m.hits;
    stats_->estimator_cache_misses += m.misses;
    stats_->estimator_cache_evictions += m.evictions;
    stats_->estimator_cache_restore_evictions += m.restore_evictions;
    stats_->shared_memo_hits += m.shared_hits;
    stats_->shared_memo_misses += m.shared_misses;
    stats_->shared_memo_evictions += m.shared_evictions;
  }

 private:
  const ConstraintBundle* bundle_;
  RunStats* stats_;
};

}  // namespace

struct InstanceRunner::Impl {
  explicit Impl(InstanceConfig config)
      : cfg(std::move(config)),
        queue(cfg.options->validator_queue ==
                      ValidatorQueueOrder::kBrpPriority
                  ? CandidateQueue::Order::kPriority
                  : CandidateQueue::Order::kFifo,
              cfg.options->validator_queue_capacity) {
    DQR_CHECK(cfg.query != nullptr && cfg.options != nullptr);
    DQR_CHECK(cfg.penalty != nullptr && cfg.rank != nullptr);
    DQR_CHECK(cfg.coordinator != nullptr && cfg.registry != nullptr);
    for (const searchlight::QueryConstraint& qc : cfg.query->constraints) {
      relaxable.push_back(qc.relaxable ? 1 : 0);
    }
    all_known.assign(cfg.query->constraints.size(), 1);
  }

  // ------------------------------------------------------------------
  // Search listener shared by the main search and replays.

  class RefineListener : public cp::SearchListener {
   public:
    RefineListener(Impl* impl, ConstraintBundle* bundle, bool replay_mode,
                   RunStats* stats, obs::ThreadTracer tracer)
        : impl_(*impl),
          bundle_(*bundle),
          replay_mode_(replay_mode),
          stats_(*stats),
          tracer_(tracer) {}

    void OnFail(cp::FailInfo info) override { impl_.HandleFail(
        bundle_, std::move(info), stats_, tracer_); }

    bool OnNode(const cp::DomainBox& box,
                const std::vector<Interval>& estimates) override {
      (void)box;
      // Deliberately untraced: OnNode fires once per search node and
      // would swamp the ring with no analytical payoff.
      return impl_.CheckNode(estimates, replay_mode_);
    }

    void OnSolution(const std::vector<int64_t>& point,
                    const std::vector<Interval>& estimates) override {
      impl_.EmitCandidate(point, estimates, stats_, tracer_);
    }

   private:
    Impl& impl_;
    ConstraintBundle& bundle_;
    bool replay_mode_;
    RunStats& stats_;
    obs::ThreadTracer tracer_;
  };

  // ------------------------------------------------------------------
  // Failure model (DESIGN.md §7).

  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  // Kills this instance cooperatively: all threads unwind at their next
  // check, the validator queue rejects and releases everybody, and the
  // heartbeat stops *last* — everything recovery must see (the candidate
  // stash, the aborted queue) is published before death can be detected.
  void CrashSelf() {
    bool expected = false;
    if (!crashed_.compare_exchange_strong(expected, true)) return;
    spec_stop.store(true, std::memory_order_relaxed);
    queue.Abort();
    StopHeartbeat();
  }

  // Solver-side hook. Returns true when this instance is (now) crashed.
  bool MaybeInjectFault(FaultSite site, obs::ThreadTracer& tracer) {
    if (cfg.injector == nullptr) return crashed();
    const std::optional<FaultDecision> decision =
        cfg.injector->OnEvent(cfg.id, site);
    if (decision.has_value()) {
      if (decision->action == FaultAction::kCrash) {
        tracer.Instant(obs::EventName::kCrash,
                       static_cast<double>(static_cast<int>(site)));
        CrashSelf();
      } else if (decision->delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(decision->delay_us));
      }
    }
    return crashed();
  }

  // Validator-side hook. On a crash the in-flight candidate is stashed
  // for the harvester *before* CrashSelf makes death detectable, so it
  // can never slip through the recovery sweep.
  bool InjectValidateFault(Candidate& cand, obs::ThreadTracer& tracer) {
    if (cfg.injector == nullptr) return false;
    const std::optional<FaultDecision> decision =
        cfg.injector->OnEvent(cfg.id, FaultSite::kCandidateValidate);
    if (!decision.has_value()) return false;
    if (decision->action == FaultAction::kCrash) {
      tracer.Instant(obs::EventName::kCrash,
                     static_cast<double>(static_cast<int>(
                         FaultSite::kCandidateValidate)));
      {
        std::lock_guard<std::mutex> lock(stash_mu);
        stash.push_back(std::move(cand));
      }
      CrashSelf();
      return true;
    }
    if (decision->delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(decision->delay_us));
    }
    return false;
  }

  void StopHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
  }

  void HeartbeatMain() {
    obs::ThreadTracer tracer =
        obs::MakeTracer(cfg.options->trace, cfg.id,
                        obs::ThreadRole::kHeartbeat,
                        cfg.options->trace_buffer_events, cfg.trace_epoch);
    const auto interval = std::chrono::microseconds(
        std::max<int64_t>(1, cfg.options->heartbeat_interval_us));
    std::unique_lock<std::mutex> lock(hb_mu);
    while (!hb_stop) {
      cfg.coordinator->Heartbeat(cfg.id);
      tracer.Instant(obs::EventName::kHeartbeat);
      hb_cv.wait_for(lock, interval, [&] { return hb_stop; });
    }
  }

  // Moves orphaned candidates of dead instances into our own validator
  // queue (counted as re-validations).
  void SweepOrphans(RunStats& stats) {
    while (std::optional<Candidate> orphan =
               cfg.coordinator->PopOrphan()) {
      if (!queue.PushIfOpen(*orphan)) {
        // Our own queue died under us (concurrent crash): hand it back.
        std::vector<Candidate> back;
        back.push_back(std::move(*orphan));
        cfg.coordinator->DepositOrphans(std::move(back));
        return;
      }
      ++stats.candidates_revalidated;
    }
  }

  // ------------------------------------------------------------------
  // Solver-side logic.

  bool RefinementActive() const {
    return cfg.options->enable && cfg.query->k > 0;
  }

  // Best-first replaying uses fail utility (BRP vs MRP) for ordering,
  // discarding, and interval tightening. The FIFO ablation replays fails
  // as encountered with maximal relaxation — the paper's "immediate
  // search resume" baseline, shown in §5.3 to be up to orders of
  // magnitude slower.
  bool UtilityReplays() const {
    return cfg.options->replay_order == ReplayOrder::kBestFirst;
  }

  double ReplayMrp() const {
    return UtilityReplays() ? cfg.coordinator->CurrentMrp() : 1.0;
  }

  void HandleFail(ConstraintBundle& bundle, cp::FailInfo info,
                  RunStats& stats, obs::ThreadTracer& tracer) {
    if (crashed()) return;
    if (!RefinementActive()) return;
    if (cfg.coordinator->CurrentPhase() == QueryPhase::kConstraining) {
      return;  // §4.3: constraining needs no fails
    }
    // A violated hard (non-relaxable) constraint kills the sub-tree for
    // good: nothing to replay.
    for (const int c : info.violated) {
      if (!relaxable[static_cast<size_t>(c)]) return;
    }
    if (cfg.options->fail_eval == FailEvalMode::kFull) {
      // Evaluate the estimates the fail-fast check skipped, now.
      for (size_t c = 0; c < info.evaluated.size(); ++c) {
        if (info.evaluated[c]) continue;
        info.estimates[c] = bundle.at(static_cast<int>(c))
                                .function()
                                .Estimate(info.box);
        info.evaluated[c] = 1;
      }
    }
    const double brp =
        cfg.penalty->BestPenalty(info.estimates, info.evaluated);
    if (std::isinf(brp)) return;  // can never yield an acceptable result

    // The fail is about to enter the shared pool — the kFailRecord fault
    // window. A crash here loses the record, but the whole shard (or
    // leased replay) it belongs to is re-executed by the recovery, which
    // regenerates it.
    if (MaybeInjectFault(FaultSite::kFailRecord, tracer)) return;

    FailRecord record;
    record.box = std::move(info.box);
    record.estimates = std::move(info.estimates);
    record.evaluated = std::move(info.evaluated);
    record.violated = std::move(info.violated);
    record.depth = info.depth;
    record.brp = brp;
    record.origin = cfg.id;
    if (cfg.options->save_function_state) {
      record.states = bundle.SaveStates(record.box);
    }
    cfg.registry->Record(std::move(record), ReplayMrp());
    ++stats.fails_recorded;
    tracer.Instant(obs::EventName::kFailRecord, brp);
  }

  bool CheckNode(const std::vector<Interval>& estimates, bool replay_mode) {
    if (crashed()) return false;  // prune everything: cooperative unwind
    if (!RefinementActive()) return true;
    const QueryPhase phase = cfg.coordinator->CurrentPhase();
    if (phase == QueryPhase::kConstraining) {
      if (cfg.options->constrain == ConstrainMode::kRank) {
        // The dynamic constraint BRK(r) >= MRK (§4.3).
        if (cfg.rank->BestRank(estimates) <
            cfg.coordinator->CurrentMrk()) {
          return false;
        }
      } else if (cfg.options->constrain == ConstrainMode::kSkyline) {
        if (cfg.coordinator->SkylineDominatesBox(
                cfg.rank->BestCornerForSkyline(estimates))) {
          return false;
        }
      }
    }
    if (replay_mode && UtilityReplays()) {
      // Replayed sub-trees carry relaxed bounds; prune against the
      // up-to-date MRP (the paper's per-node check, §4.1). The FIFO
      // ablation ("searching through the fail", §5.3) skips this: it
      // takes no utility information into account.
      if (cfg.penalty->BestPenalty(estimates, all_known) >
          cfg.coordinator->CurrentMrp()) {
        return false;
      }
    }
    return true;
  }

  void EmitCandidate(const std::vector<int64_t>& point,
                     const std::vector<Interval>& estimates,
                     RunStats& stats, obs::ThreadTracer& tracer) {
    Candidate cand;
    cand.point = point;
    cand.estimates = estimates;
    cand.brp = cfg.penalty->BestPenalty(estimates, all_known);
    cand.brk = cfg.rank->BestRank(estimates);
    cand.priority =
        cfg.coordinator->CurrentPhase() == QueryPhase::kConstraining
            ? -cand.brk
            : cand.brp;
    ++stats.candidates;
    tracer.Instant(obs::EventName::kCandidateEnqueue, cand.priority);
    queue.Push(std::move(cand));
  }

  struct ReplayOutcome {
    bool completed = true;
    bool discarded = false;
  };

  // Replays one recorded fail: restores state, completes lazy estimates,
  // re-checks BRP against the (possibly improved) MRP, installs relaxed
  // bounds tightened by MRP and RRD, and re-runs the search from the
  // fail's box.
  ReplayOutcome ReplayOne(ConstraintBundle& bundle,
                          RefineListener& listener, FailRecord& fail,
                          const std::atomic<bool>* cancel,
                          RunStats& stats) {
    ReplayOutcome outcome;
    bundle.ClearStates();
    if (cfg.options->save_function_state) bundle.RestoreStates(fail);
    bundle.CompleteEstimates(&fail);

    const double mrp = ReplayMrp();
    const double brp = cfg.penalty->BestPenalty(fail.estimates, all_known);
    if (brp > mrp) {
      outcome.discarded = true;
      ++stats.replays_discarded;
      return outcome;
    }

    // Which constraints actually need relaxation at this box, judged
    // against the *original* bounds.
    int must_violate = 0;
    std::vector<int> to_relax;
    for (int c = 0; c < bundle.size(); ++c) {
      const Interval& est = fail.estimates[static_cast<size_t>(c)];
      const Interval& bounds = bundle.at(c).original_bounds();
      if (bounds.Intersects(est)) continue;
      if (!relaxable[static_cast<size_t>(c)]) {
        // Hard constraint is hopeless here (can happen under lazy
        // recording, when it was not evaluated at fail time).
        outcome.discarded = true;
        ++stats.replays_discarded;
        return outcome;
      }
      to_relax.push_back(c);
      ++must_violate;
    }
    const double vc =
        cfg.penalty->num_relaxable() == 0
            ? 0.0
            : static_cast<double>(must_violate) /
                  cfg.penalty->num_relaxable();
    const double allowed_rd = cfg.penalty->MaxAllowedDistance(mrp, vc);

    for (const int c : to_relax) {
      const Interval& est = fail.estimates[static_cast<size_t>(c)];
      const Interval& orig = bundle.at(c).original_bounds();
      const double w = cfg.penalty->spec(c).weight;
      const double rd_c =
          w > 0.0 ? std::min(allowed_rd / w, 1.0) : 1.0;
      const Interval widest = cfg.penalty->RelaxedBounds(c, rd_c);
      const double rrd = cfg.options->replay_relaxation_distance;
      Interval effective = orig;
      if (est.hi < orig.lo) {
        // Relax the lower side: at most to the MRP-allowed bound, no
        // further than the recorded estimate, by the RRD fraction; and
        // always far enough that the fail's box stops failing (progress).
        const double target = std::max(widest.lo, est.lo);
        double lo = orig.lo - rrd * (orig.lo - target);
        lo = std::min(lo, est.hi);
        effective.lo = lo;
      } else {
        DQR_CHECK(est.lo > orig.hi);
        const double target = std::min(widest.hi, est.hi);
        double hi = orig.hi + rrd * (target - orig.hi);
        hi = std::max(hi, est.lo);
        effective.hi = hi;
      }
      bundle.at(c).SetEffectiveBounds(effective);
    }

    cp::SearchOptions search_opts;
    search_opts.fail_fast = true;
    search_opts.var_select = cfg.options->var_select;
    search_opts.value_split = cfg.options->value_split;
    search_opts.cancel = cancel;
    cp::SearchTree tree(fail.box, bundle.pointers(), &listener,
                        search_opts);
    const cp::SearchStats tree_stats = tree.Run();
    stats.replay_search += tree_stats;
    ++stats.replays;
    bundle.ResetEffectiveBounds();
    outcome.completed = tree_stats.completed;
    return outcome;
  }

  // ------------------------------------------------------------------
  // Threads.

  // Pulls and executes shards until the pool drains, the query is
  // cancelled, or this instance crashes. shards_executed counts only
  // *fully* executed shards: a shard interrupted by a crash stays leased
  // to us and is requeued (and counted) by the failure detector.
  void RunShardLoop(ConstraintBundle& bundle, RefineListener& listener,
                    const cp::SearchOptions& search_opts,
                    obs::ThreadTracer& tracer) {
    const Stopwatch busy;
    // Steal latency (profiled runs): the gap between finishing one shard
    // and successfully popping the next, i.e. contention on the shared
    // pool. Resets every loop entry, so barrier waits between rounds are
    // never misattributed as steal time.
    const bool profiled = cfg.options->profile != nullptr;
    int64_t last_shard_end_ns = -1;
    while (!crashed()) {
      std::optional<cp::IntDomain> shard =
          cfg.coordinator->PopShard(cfg.id);
      if (!shard.has_value()) break;
      if (profiled && last_shard_end_ns >= 0) {
        solver_stats.steal_latency.Record(obs::TraceRing::Now() -
                                          last_shard_end_ns);
      }
      tracer.Instant(obs::EventName::kShardPickup,
                     static_cast<double>(shard->lo));
      if (MaybeInjectFault(FaultSite::kShardPickup, tracer)) break;
      cp::DomainBox slice = cfg.query->domains;
      slice[0] = *shard;
      cp::SearchTree tree(std::move(slice), bundle.pointers(), &listener,
                          search_opts);
      {
        obs::SpanScope span = tracer.Scope(obs::EventName::kShardExecute);
        solver_stats.main_search += tree.Run();
      }
      if (profiled) last_shard_end_ns = obs::TraceRing::Now();
      if (crashed()) break;
      ++solver_stats.shards_executed;
    }
    solver_stats.main_busy_s += busy.ElapsedSeconds();
  }

  // Replays leased fails from the shared pool until it drains. Leases
  // keep the registry the owner: a crash mid-replay abandons the lease
  // and the detector re-pools the record for a surviving instance.
  void RunReplayLoop(ConstraintBundle& bundle, RefineListener& listener,
                     obs::ThreadTracer& tracer) {
    while (!crashed() && !cfg.coordinator->cancelled()) {
      FailRecord* fail = cfg.registry->Lease(ReplayMrp(), cfg.id);
      if (fail == nullptr) break;
      tracer.Instant(obs::EventName::kReplayPop, fail->brp);
      if (fail->origin != cfg.id) {
        ++solver_stats.replays_stolen;
        tracer.Instant(obs::EventName::kReplaySteal,
                       static_cast<double>(fail->origin));
      }
      {
        obs::SpanScope span = tracer.Scope(obs::EventName::kReplayExecute);
        ReplayOne(bundle, listener, *fail,
                  &cfg.coordinator->cancel_flag(), solver_stats);
      }
      if (crashed()) {
        cfg.registry->AbandonLease(cfg.id, fail);
        break;
      }
      cfg.registry->Commit(cfg.id, fail);
    }
  }

  void StopSpeculation() {
    spec_stop.store(true, std::memory_order_relaxed);
    spec_task.Wait();
  }

  void SolverMain() {
    obs::ThreadTracer tracer =
        obs::MakeTracer(cfg.options->trace, cfg.id, obs::ThreadRole::kSolver,
                        cfg.options->trace_buffer_events, cfg.trace_epoch);
    ConstraintBundle bundle(*cfg.query);
    MemoStatsGuard memo_guard(&bundle, &solver_stats);
    // Profiled runs route uncached synopsis bound-query timings from the
    // UDF miss paths (dqr_searchlight cannot see RunStats) into this
    // thread's own stats via a thread-local sink.
    obs::ScopedLatencySink bound_sink(cfg.options->profile != nullptr
                                          ? &solver_stats.bound_latency
                                          : nullptr);
    RefineListener main_listener(this, &bundle, /*replay_mode=*/false,
                                 &solver_stats, tracer);

    cp::SearchOptions search_opts;
    search_opts.fail_fast = true;
    search_opts.var_select = cfg.options->var_select;
    search_opts.value_split = cfg.options->value_split;
    search_opts.cancel = &cfg.coordinator->cancel_flag();

    // Work stealing: pull variable-0 shards from the shared pool until it
    // drains. The barrier can bounce us back to work when a dead
    // instance's shard is requeued or its candidates need re-validation.
    while (true) {
      RunShardLoop(bundle, main_listener, search_opts, tracer);
      if (crashed()) break;
      // Stop speculation before the quiescence barrier: the relaxation
      // decision must not race with speculative replays.
      StopSpeculation();
      obs::SpanScope barrier = tracer.Scope(obs::EventName::kBarrierWait);
      SweepOrphans(solver_stats);
      // The relaxation decision needs the confirmed result count: drain
      // our validator before declaring ourselves quiescent.
      queue.WaitDrained();
      if (crashed()) break;
      if (cfg.coordinator->AwaitMainSearchDone(cfg.id)) break;
    }
    StopSpeculation();
    if (crashed()) return;  // queue aborted; recovery is the detector's
    main_done_s = cfg.coordinator->ElapsedSeconds();

    // All instances base the decision on the same frozen snapshot, so the
    // cluster takes one branch even while results keep arriving during
    // the replay phase.
    const bool relax_needed =
        RefinementActive() && !cfg.coordinator->cancelled() &&
        cfg.coordinator->main_exact_count() < cfg.query->k;
    if (relax_needed) {
      tracer.Instant(obs::EventName::kPhaseRelaxing);
      RefineListener replay_listener(this, &bundle, /*replay_mode=*/true,
                                     &solver_stats, tracer);
      while (true) {
        // The shared pool hands every instance the globally
        // most-promising fail, whoever recorded it.
        RunReplayLoop(bundle, replay_listener, tracer);
        if (crashed()) break;
        obs::SpanScope barrier = tracer.Scope(obs::EventName::kBarrierWait);
        SweepOrphans(solver_stats);
        queue.WaitDrained();
        if (crashed()) break;
        if (cfg.coordinator->AwaitQueryDone(cfg.id, /*replaying=*/true)) {
          break;
        }
      }
    } else {
      // Not needed: free the recorded fails ("stops tracking fails").
      // Every instance takes the same branch after the barrier, so the
      // shared clear is idempotent across them.
      cfg.registry->Clear();
      while (true) {
        SweepOrphans(solver_stats);
        queue.WaitDrained();
        if (crashed()) break;
        if (cfg.coordinator->AwaitQueryDone(cfg.id, /*replaying=*/false)) {
          break;
        }
      }
    }
    if (crashed()) return;
    queue.Close();
    cfg.coordinator->RetireInstance(cfg.id);
    StopHeartbeat();
  }

  void ValidatorMain() {
    obs::ThreadTracer tracer =
        obs::MakeTracer(cfg.options->trace, cfg.id,
                        obs::ThreadRole::kValidator,
                        cfg.options->trace_buffer_events, cfg.trace_epoch);
    ConstraintBundle bundle(*cfg.query);
    MemoStatsGuard memo_guard(&bundle, &validator_stats);
    // Candidates validate in batches: the fault hook and pre-validation
    // check run per candidate in pop order, then the survivors are
    // evaluated together — one (SIMD) pass per constraint over the base
    // data instead of one per candidate — and finished in pop order.
    constexpr size_t kValidateBatch = 8;
    std::vector<Candidate> batch;
    std::vector<size_t> survivors;
    while (queue.PopBatch(kValidateBatch, &batch)) {
      survivors.clear();
      size_t crashed_at = batch.size();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (InjectValidateFault(batch[i], tracer)) {
          crashed_at = i;
          break;
        }
        if (!PrecheckDrop(batch[i])) survivors.push_back(i);
      }
      if (crashed_at < batch.size()) {
        // The hook stashed batch[crashed_at] itself; park the prechecked-
        // but-unevaluated survivors and the untouched tail too, so
        // recovery revalidates everything this batch popped but never
        // finished. Precheck drops are final: their best case cannot
        // qualify under the current (or any tighter) MRP/MRK, so a
        // revalidation elsewhere could only drop them again.
        std::lock_guard<std::mutex> lock(stash_mu);
        for (size_t i : survivors) stash.push_back(std::move(batch[i]));
        for (size_t i = crashed_at + 1; i < batch.size(); ++i) {
          stash.push_back(std::move(batch[i]));
        }
        break;
      }
      if (!survivors.empty()) {
        obs::SpanScope span = tracer.Scope(obs::EventName::kValidate);
        std::vector<const std::vector<int64_t>*> points;
        points.reserve(survivors.size());
        for (size_t i : survivors) points.push_back(&batch[i].point);
        std::vector<std::vector<double>> values =
            bundle.EvaluateAllBatch(points);
        if (survivors.size() >= 2) {
          ++validator_stats.validate_batches;
          validator_stats.validate_batched_candidates +=
              static_cast<int64_t>(survivors.size());
        }
        for (size_t k = 0; k < survivors.size(); ++k) {
          FinishCandidate(batch[survivors[k]], std::move(values[k]),
                          bundle, tracer);
        }
      }
      queue.FinishedN(batch.size());
    }
  }

  // Pre-validation check (§4): avoid the expensive exact evaluation if
  // the candidate's best case already cannot qualify. Returns true when
  // the candidate was dropped (and counted). Safe to run before earlier
  // candidates of the same batch finish: MRP/MRK only tighten over time,
  // so checking earlier can only drop fewer candidates, and any dropped
  // candidate would also be rejected by the tracker at insertion time.
  bool PrecheckDrop(const Candidate& cand) {
    if (!RefinementActive()) return false;
    RunStats& stats = validator_stats;
    const QueryPhase phase = cfg.coordinator->CurrentPhase();
    if (phase == QueryPhase::kCollecting &&
        cand.brp > cfg.coordinator->CurrentMrp()) {
      ++stats.dropped_precheck;
      return true;
    }
    if (phase == QueryPhase::kConstraining) {
      if (cfg.options->constrain == ConstrainMode::kRank &&
          cand.brk < cfg.coordinator->CurrentMrk()) {
        ++stats.dropped_precheck;
        return true;
      }
      if (cfg.options->constrain == ConstrainMode::kSkyline &&
          cfg.coordinator->SkylineDominatesBox(
              cfg.rank->BestCornerForSkyline(cand.estimates))) {
        ++stats.dropped_precheck;
        return true;
      }
    }
    return false;
  }

  // Publishes one exactly evaluated candidate — penalty/rank, tracker
  // insertion, progress and tracing — with the per-constraint values
  // precomputed by the batch evaluation.
  void FinishCandidate(const Candidate& cand, std::vector<double> values,
                       ConstraintBundle& bundle, obs::ThreadTracer& tracer) {
    RunStats& stats = validator_stats;
    const bool refined = RefinementActive();
    const QueryPhase phase = cfg.coordinator->CurrentPhase();

    ++stats.validated;
    Solution solution;
    solution.point = cand.point;
    solution.values = std::move(values);
    solution.rp = cfg.penalty->Penalty(solution.values);
    solution.rk = cfg.rank->Rank(solution.values);
    if (solution.rp != 0.0) {
      ++stats.false_positives;
      tracer.Instant(obs::EventName::kFalsePositive, solution.rp);
    }

    // Estimator-accuracy ledger (profiled runs): this is the one place
    // the predicted interval and the exact value exist side by side. A
    // "wasted" candidate is one the estimator let through that exact
    // evaluation then penalized.
    if (cfg.options->profile != nullptr &&
        cand.estimates.size() == solution.values.size()) {
      const bool wasted = solution.rp != 0.0;
      for (size_t c = 0; c < solution.values.size(); ++c) {
        const Interval& est = cand.estimates[c];
        if (est.empty() || !std::isfinite(est.lo) || !std::isfinite(est.hi)) {
          continue;
        }
        const cp::ConstraintFunction& fn =
            bundle.at(static_cast<int>(c)).function();
        stats.estimator_accuracy.Record(
            fn.EstimateLevel(cand.point), est.lo, est.hi,
            solution.values[c], fn.value_range().width(), wasted);
      }
    }

    if (solution.rp == 0.0) {
      ++stats.exact_results;
    } else if (!refined || std::isinf(solution.rp) ||
               phase == QueryPhase::kConstraining) {
      return;  // plain mode and constraining accept exact results only
    }

    const bool streaming = static_cast<bool>(cfg.options->on_result);
    const double rp = solution.rp;
    const double rk = solution.rk;
    Solution streamed;
    if (streaming) streamed = solution;
    const AddOutcome outcome =
        cfg.coordinator->tracker().Add(std::move(solution));
    switch (outcome) {
      case AddOutcome::kAcceptedExact:
        cfg.coordinator->NoteResult();
        cfg.coordinator->PublishProgress();
        tracer.Instant(obs::EventName::kResultExact, rk);
        if (streaming) cfg.options->on_result(streamed);
        break;
      case AddOutcome::kAcceptedRelaxed:
        ++stats.relaxed_accepted;
        cfg.coordinator->NoteResult();
        cfg.coordinator->PublishProgress();
        tracer.Instant(obs::EventName::kResultRelaxed, rp);
        if (streaming) cfg.options->on_result(streamed);
        break;
      case AddOutcome::kRejected:
        cfg.coordinator->PublishProgress();
        break;
      case AddOutcome::kDuplicate:
        ++stats.duplicates;
        break;
    }
    // Sampled MRP/MRK + the collecting -> constraining flip, observed
    // from the validator that just published. The extra coordinator reads
    // happen only with tracing on, keeping the disabled path untouched.
    if (tracer.enabled() && refined) {
      const double mrp = cfg.coordinator->CurrentMrp();
      const double mrk = cfg.coordinator->CurrentMrk();
      if (std::isfinite(mrp)) tracer.Counter(obs::EventName::kMrp, mrp);
      if (std::isfinite(mrk)) tracer.Counter(obs::EventName::kMrk, mrk);
      if (phase == QueryPhase::kCollecting &&
          cfg.coordinator->CurrentPhase() == QueryPhase::kConstraining) {
        tracer.Instant(obs::EventName::kPhaseConstraining);
      }
    }
  }

  void SpeculativeMain() {
    obs::ThreadTracer tracer =
        obs::MakeTracer(cfg.options->trace, cfg.id,
                        obs::ThreadRole::kSpeculative,
                        cfg.options->trace_buffer_events, cfg.trace_epoch);
    ConstraintBundle bundle(*cfg.query);
    MemoStatsGuard memo_guard(&bundle, &spec_stats);
    obs::ScopedLatencySink bound_sink(cfg.options->profile != nullptr
                                          ? &spec_stats.bound_latency
                                          : nullptr);
    RefineListener listener(this, &bundle, /*replay_mode=*/true,
                            &spec_stats, tracer);
    while (!spec_stop.load(std::memory_order_relaxed)) {
      if (!RefinementActive() ||
          cfg.coordinator->CurrentPhase() != QueryPhase::kCollecting ||
          queue.size() != 0) {
        std::this_thread::sleep_for(kSpeculationNap);
        continue;
      }
      FailRecord* fail = cfg.registry->Lease(ReplayMrp(), cfg.id);
      if (fail == nullptr) {
        std::this_thread::sleep_for(kSpeculationNap);
        continue;
      }
      tracer.Instant(obs::EventName::kReplayPop, fail->brp);
      if (fail->origin != cfg.id) {
        ++spec_stats.replays_stolen;
        tracer.Instant(obs::EventName::kReplaySteal,
                       static_cast<double>(fail->origin));
      }
      ReplayOutcome outcome;
      {
        obs::SpanScope span = tracer.Scope(obs::EventName::kReplayExecute);
        outcome = ReplayOne(bundle, listener, *fail, &spec_stop, spec_stats);
      }
      ++spec_stats.speculative_replays;
      if (!outcome.completed || crashed()) {
        // Interrupted mid-replay: hand the fail back for the regular
        // replay phase (re-exploration is deduplicated by the tracker).
        cfg.registry->Requeue(cfg.id, fail);
      } else {
        cfg.registry->Commit(cfg.id, fail);
      }
    }
  }

  RunStats CollectStats() const {
    RunStats total;
    total += solver_stats;
    total += validator_stats;
    total += spec_stats;
    // Fail-pool stats live on the shared registry and are attached once at
    // the cluster level by ExecuteQuery; only per-instance gauges here.
    total.peak_queue = queue.peak_size();
    total.max_peak_queue = queue.peak_size();
    total.main_search_s = main_done_s;
    if (cfg.pool != nullptr) {
      for (const exec::TaskHandle* task :
           {&solver_task, &validator_task, &spec_task}) {
        if (!task->valid()) continue;
        ++total.pool_tasks;
        if (task->warm_start()) {
          ++total.pool_spawn_avoided;
        } else {
          ++total.pool_overflow_spawns;
        }
      }
    }
    return total;
  }

  // ------------------------------------------------------------------

  InstanceConfig cfg;
  CandidateQueue queue;
  std::vector<char> relaxable;
  std::vector<char> all_known;

  // Engine loops as completion handles: dedicated threads in legacy mode
  // (cfg.pool == nullptr), pool tasks otherwise — exec::Launch picks.
  exec::TaskHandle solver_task;
  exec::TaskHandle validator_task;
  exec::TaskHandle spec_task;
  exec::TaskHandle heartbeat_task;
  bool started = false;
  std::atomic<bool> spec_stop{false};
  std::atomic<bool> crashed_{false};

  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;

  // The validator's in-flight candidate at crash time, parked for the
  // failure detector's harvest.
  std::mutex stash_mu;
  std::vector<Candidate> stash;

  // Written by exactly one thread each; read after Join().
  RunStats solver_stats;
  RunStats validator_stats;
  RunStats spec_stats;
  double main_done_s = 0.0;
};

InstanceRunner::InstanceRunner(InstanceConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

InstanceRunner::~InstanceRunner() {
  if (impl_->started) Join();
}

void InstanceRunner::Start() {
  Impl* impl = impl_.get();
  impl->started = true;
  exec::WorkerPool* pool = impl->cfg.pool;
  // The heartbeat is pure waiting, never work: it stays a dedicated
  // thread even in pool mode (where the slot timer beats instead and
  // run_heartbeat is off — see ExecuteQuery).
  if (impl->cfg.run_heartbeat) {
    impl->heartbeat_task =
        exec::Launch(nullptr, [impl] { impl->HeartbeatMain(); });
  }
  if (impl->cfg.options->speculative) {
    impl->spec_task = exec::Launch(pool, [impl] { impl->SpeculativeMain(); });
  }
  impl->solver_task = exec::Launch(pool, [impl] { impl->SolverMain(); });
  impl->validator_task =
      exec::Launch(pool, [impl] { impl->ValidatorMain(); });
}

void InstanceRunner::Join() {
  impl_->solver_task.Wait();
  impl_->spec_task.Wait();
  impl_->validator_task.Wait();
  impl_->StopHeartbeat();
  impl_->heartbeat_task.Wait();
}

bool InstanceRunner::crashed() const { return impl_->crashed(); }

std::vector<searchlight::Candidate> InstanceRunner::HarvestOrphans() {
  std::vector<Candidate> out = impl_->queue.TakeAll();
  std::lock_guard<std::mutex> lock(impl_->stash_mu);
  for (Candidate& c : impl_->stash) out.push_back(std::move(c));
  impl_->stash.clear();
  return out;
}

RunStats InstanceRunner::stats() const { return impl_->CollectStats(); }

}  // namespace dqr::core
