#ifndef DQR_CORE_SKYLINE_H_
#define DQR_CORE_SKYLINE_H_

#include <cstdint>
#include <vector>

#include "core/solution.h"

namespace dqr::core {

// One member of the running skyline: a validated solution plus its
// constraint-function values oriented so that larger is better on every
// coordinate (see RankModel::OrientForSkyline).
struct SkylineEntry {
  Solution solution;
  std::vector<double> oriented;
};

// Maintains the set of non-dominated results for skyline constraining
// (§3.2/§4.3). V dominates W iff v_i >= w_i for all i and v_i > w_i for
// some i. Not thread-safe; the result tracker serializes access.
class Skyline {
 public:
  static bool Dominates(const std::vector<double>& v,
                        const std::vector<double>& w);

  // Inserts `entry` unless an existing member dominates it; members
  // dominated by `entry` are evicted. Returns true iff inserted.
  bool Add(SkylineEntry entry);

  // True iff some member dominates `best_corner` — the per-coordinate
  // upper bounds achievable in a sub-tree. Then every solution in the
  // sub-tree is dominated and it can be pruned (the skyline dynamic
  // constraint).
  bool DominatesBox(const std::vector<double>& best_corner) const;

  const std::vector<SkylineEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<SkylineEntry> entries_;
};

}  // namespace dqr::core

#endif  // DQR_CORE_SKYLINE_H_
